//===- bench/BenchCommon.cpp ---------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/NwchemGen.h"
#include "baselines/Ttgt.h"
#include "core/Cogent.h"
#include "core/CostModel.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "support/JsonWriter.h"
#include "support/Random.h"
#include "tensor/Reference.h"
#include "tensor/Tensor.h"

#include <cmath>
#include <cstdio>
#include <map>

using namespace cogent;
using namespace cogent::bench;

namespace {

/// Model-vs-measured traffic cross-check: re-plan the winning config at
/// extents clamped to Options.SimExtent, run the cost model and the exact
/// simulator on the same plan, and record both counts in \p Row.
void crossCheckTraffic(ComparisonRow &Row, const ir::Contraction &TC,
                       const core::KernelConfig &Config,
                       unsigned ElementSize,
                       const ComparisonOptions &Options) {
  std::vector<std::pair<char, int64_t>> Extents;
  for (char Name : TC.allIndices())
    Extents.emplace_back(Name,
                         std::min(TC.extent(Name), Options.SimExtent));
  ErrorOr<ir::Contraction> Small = ir::Contraction::parse(TC.toString(),
                                                          Extents);
  if (!Small)
    return;
  core::KernelConfig Clamped = Config.clampedTo(*Small);
  core::KernelPlan Plan(*Small, Clamped);
  Row.SimExtent = Options.SimExtent;
  Row.SimPredictedTransactions =
      core::estimateTransactions(Plan, ElementSize).total();

  Rng Generator(0xbe7c + static_cast<uint64_t>(Row.Id));
  tensor::Tensor<double> A =
      tensor::makeOperand<double>(*Small, ir::Operand::A);
  tensor::Tensor<double> B =
      tensor::makeOperand<double>(*Small, ir::Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  tensor::Tensor<double> C =
      tensor::makeOperand<double>(*Small, ir::Operand::C);
  Row.SimMeasuredTransactions = static_cast<double>(
      gpu::simulateKernel(Plan, C, A, B).totalTransactions());
}

} // namespace

std::vector<ComparisonRow>
cogent::bench::runTccgComparison(const gpu::DeviceSpec &Device,
                                 unsigned ElementSize,
                                 const ComparisonOptions &Options) {
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  core::Cogent Generator(Device);

  std::vector<ComparisonRow> Rows;
  for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
    ir::Contraction TC = Entry.contraction();

    ComparisonRow Row;
    Row.Id = Entry.Id;
    Row.Name = Entry.Name;
    Row.Spec = TC.toString();
    Row.Category = suite::categoryName(Entry.Cat);

    core::CogentOptions GenOptions;
    GenOptions.ElementSize = ElementSize;
    ErrorOr<core::GenerationResult> Result =
        Generator.generate(TC, GenOptions);
    if (Result) {
      Row.CogentGflops = Result->best().Predicted.Gflops;
      Row.CogentConfig = Result->best().Config.toString();
      Row.CogentElapsedMs = Result->ElapsedMs;
      Row.PredictedTransactions = Result->best().Cost.total();
      Row.VerifierRejections = Result->VerifierRejections;
      Row.LintFindings = Result->LintFindings.size();
      Row.LintRejections = Result->LintRejections;
      Row.RegisterPressurePlan = Result->best().PlanPressure;
      Row.RegisterPressureSource = Result->best().SourcePressure;
      if (Options.SimTraffic)
        crossCheckTraffic(Row, TC, Result->best().Config, ElementSize,
                          Options);
    }
    Row.NwchemGflops =
        baselines::estimateNwchem(TC, Device, Calib, ElementSize).Gflops;
    Row.TalshGflops =
        baselines::estimateTtgt(TC, Device, Calib, ElementSize).Gflops;
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

double cogent::bench::geomeanSpeedup(const std::vector<ComparisonRow> &Rows,
                                     bool UseNwchem) {
  double LnSum = 0.0;
  size_t Count = 0;
  for (const ComparisonRow &Row : Rows) {
    double Other = UseNwchem ? Row.NwchemGflops : Row.TalshGflops;
    if (Row.CogentGflops <= 0.0 || Other <= 0.0)
      continue;
    LnSum += std::log(Row.CogentGflops / Other);
    ++Count;
  }
  return Count == 0 ? 0.0 : std::exp(LnSum / static_cast<double>(Count));
}

void cogent::bench::printComparison(const std::vector<ComparisonRow> &Rows,
                                    const gpu::DeviceSpec &Device,
                                    const char *FigureLabel) {
  std::printf("%s — TCCG benchmark on %s (double precision, modeled)\n",
              FigureLabel, Device.Name.c_str());
  std::printf("%-3s %-9s %-20s %-8s %9s %9s %9s   %s\n", "#", "name", "spec",
              "family", "COGENT", "NWChem", "TAL_SH", "winning mapping");
  for (const ComparisonRow &Row : Rows)
    std::printf("%-3d %-9s %-20s %-8s %9.1f %9.1f %9.1f   %s\n", Row.Id,
                Row.Name.c_str(), Row.Spec.c_str(), Row.Category.c_str(),
                Row.CogentGflops, Row.NwchemGflops, Row.TalshGflops,
                Row.CogentConfig.c_str());

  // Per-category and overall speedup summaries (paper's in-text numbers).
  std::map<std::string, std::vector<ComparisonRow>> ByCategory;
  for (const ComparisonRow &Row : Rows)
    ByCategory[Row.Category].push_back(Row);

  std::printf("\nSpeedup of COGENT (geometric mean; max in parentheses)\n");
  auto maxSpeedup = [](const std::vector<ComparisonRow> &Set, bool Nw) {
    double Max = 0.0;
    for (const ComparisonRow &Row : Set) {
      double Other = Nw ? Row.NwchemGflops : Row.TalshGflops;
      if (Other > 0.0)
        Max = std::max(Max, Row.CogentGflops / Other);
    }
    return Max;
  };
  for (const auto &[Category, Set] : ByCategory)
    std::printf("  %-8s vs NWChem %5.2fx (%4.1fx)   vs TAL_SH %5.2fx "
                "(%4.1fx)\n",
                Category.c_str(), geomeanSpeedup(Set, true),
                maxSpeedup(Set, true), geomeanSpeedup(Set, false),
                maxSpeedup(Set, false));
  std::printf("  %-8s vs NWChem %5.2fx (%4.1fx)   vs TAL_SH %5.2fx "
              "(%4.1fx)\n",
              "ALL", geomeanSpeedup(Rows, true), maxSpeedup(Rows, true),
              geomeanSpeedup(Rows, false), maxSpeedup(Rows, false));

  double TotalGenMs = 0.0;
  for (const ComparisonRow &Row : Rows)
    TotalGenMs += Row.CogentElapsedMs;
  std::printf("\nCOGENT total code-generation time for the 48 kernels: "
              "%.0f ms\n",
              TotalGenMs);
}

std::string
cogent::bench::renderComparisonJson(const std::vector<ComparisonRow> &Rows,
                                    const gpu::DeviceSpec &Device,
                                    const char *FigureLabel,
                                    unsigned ElementSize) {
  support::JsonWriter W;
  W.beginObject();
  W.member("figure", FigureLabel);
  W.member("device", Device.Name);
  W.member("element_size", ElementSize);
  W.member("suite", "tccg");

  W.key("contractions");
  W.beginArray();
  for (const ComparisonRow &Row : Rows) {
    W.beginObject();
    W.member("id", Row.Id);
    W.member("name", Row.Name);
    W.member("spec", Row.Spec);
    W.member("category", Row.Category);
    W.member("cogent_gflops", Row.CogentGflops);
    W.member("nwchem_gflops", Row.NwchemGflops);
    W.member("talsh_gflops", Row.TalshGflops);
    W.member("cogent_config", Row.CogentConfig);
    W.member("codegen_ms", Row.CogentElapsedMs);
    W.member("predicted_transactions", Row.PredictedTransactions);
    W.member("verifier_rejections", Row.VerifierRejections);
    W.member("lint_findings", Row.LintFindings);
    W.member("lint_rejections", Row.LintRejections);
    W.member("register_pressure_plan",
             static_cast<uint64_t>(Row.RegisterPressurePlan));
    W.member("register_pressure_source",
             static_cast<uint64_t>(Row.RegisterPressureSource));
    if (Row.SimExtent > 0) {
      W.key("traffic_cross_check");
      W.beginObject();
      W.member("extent", Row.SimExtent);
      W.member("predicted", Row.SimPredictedTransactions);
      W.member("simulated", Row.SimMeasuredTransactions);
      if (Row.SimMeasuredTransactions > 0.0)
        W.member("model_over_sim",
                 Row.SimPredictedTransactions / Row.SimMeasuredTransactions);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();

  W.key("summary");
  W.beginObject();
  W.member("geomean_speedup_vs_nwchem", geomeanSpeedup(Rows, true));
  W.member("geomean_speedup_vs_talsh", geomeanSpeedup(Rows, false));
  double TotalGenMs = 0.0;
  uint64_t TotalRejections = 0;
  uint64_t TotalLintFindings = 0;
  uint64_t TotalLintRejections = 0;
  uint64_t MaxPressureDelta = 0;
  for (const ComparisonRow &Row : Rows) {
    TotalGenMs += Row.CogentElapsedMs;
    TotalRejections += Row.VerifierRejections;
    TotalLintFindings += Row.LintFindings;
    TotalLintRejections += Row.LintRejections;
    if (Row.RegisterPressureSource > 0) {
      uint64_t Delta = Row.RegisterPressurePlan > Row.RegisterPressureSource
                           ? Row.RegisterPressurePlan -
                                 Row.RegisterPressureSource
                           : Row.RegisterPressureSource -
                                 Row.RegisterPressurePlan;
      MaxPressureDelta = std::max(MaxPressureDelta, Delta);
    }
  }
  W.member("total_codegen_ms", TotalGenMs);
  W.member("total_verifier_rejections", TotalRejections);
  W.member("total_lint_findings", TotalLintFindings);
  W.member("total_lint_rejections", TotalLintRejections);
  W.member("max_register_pressure_delta", MaxPressureDelta);
  W.endObject();
  W.endObject();
  return W.take();
}

bool cogent::bench::writeBenchJson(const std::string &Path,
                                   const std::string &Json) {
  std::string Err;
  if (!support::validateJson(Json, &Err)) {
    // A malformed reporter is a harness bug; surface it loudly in the text
    // output that CI archives.
    std::printf("\nwarning: refusing to write malformed JSON to %s (%s)\n",
                Path.c_str(), Err.c_str());
    return false;
  }
  std::FILE *File = std::fopen(Path.c_str(), "w");
  bool Ok = File != nullptr;
  if (Ok) {
    Ok = std::fwrite(Json.data(), 1, Json.size(), File) == Json.size();
    Ok &= std::fclose(File) == 0;
  }
  if (Ok)
    std::printf("\nwrote %s\n", Path.c_str());
  else
    std::printf("\nwarning: could not write %s\n", Path.c_str());
  return Ok;
}

std::string cogent::bench::benchJsonPath(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--json=", 0) == 0)
      return Arg.substr(7);
  }
  std::string Name = Argv[0];
  size_t Slash = Name.find_last_of('/');
  if (Slash != std::string::npos)
    Name = Name.substr(Slash + 1);
  return Name + ".json";
}
