//===- bench/BenchCommon.cpp ---------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/NwchemGen.h"
#include "baselines/Ttgt.h"
#include "core/Cogent.h"

#include <cmath>
#include <cstdio>
#include <map>

using namespace cogent;
using namespace cogent::bench;

std::vector<ComparisonRow>
cogent::bench::runTccgComparison(const gpu::DeviceSpec &Device,
                                 unsigned ElementSize) {
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  core::Cogent Generator(Device);

  std::vector<ComparisonRow> Rows;
  for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
    ir::Contraction TC = Entry.contraction();

    ComparisonRow Row;
    Row.Id = Entry.Id;
    Row.Name = Entry.Name;
    Row.Spec = TC.toString();
    Row.Category = suite::categoryName(Entry.Cat);

    core::CogentOptions Options;
    Options.ElementSize = ElementSize;
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
    if (Result) {
      Row.CogentGflops = Result->best().Predicted.Gflops;
      Row.CogentConfig = Result->best().Config.toString();
      Row.CogentElapsedMs = Result->ElapsedMs;
    }
    Row.NwchemGflops =
        baselines::estimateNwchem(TC, Device, Calib, ElementSize).Gflops;
    Row.TalshGflops =
        baselines::estimateTtgt(TC, Device, Calib, ElementSize).Gflops;
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

double cogent::bench::geomeanSpeedup(const std::vector<ComparisonRow> &Rows,
                                     bool UseNwchem) {
  double LnSum = 0.0;
  size_t Count = 0;
  for (const ComparisonRow &Row : Rows) {
    double Other = UseNwchem ? Row.NwchemGflops : Row.TalshGflops;
    if (Row.CogentGflops <= 0.0 || Other <= 0.0)
      continue;
    LnSum += std::log(Row.CogentGflops / Other);
    ++Count;
  }
  return Count == 0 ? 0.0 : std::exp(LnSum / static_cast<double>(Count));
}

void cogent::bench::printComparison(const std::vector<ComparisonRow> &Rows,
                                    const gpu::DeviceSpec &Device,
                                    const char *FigureLabel) {
  std::printf("%s — TCCG benchmark on %s (double precision, modeled)\n",
              FigureLabel, Device.Name.c_str());
  std::printf("%-3s %-9s %-20s %-8s %9s %9s %9s   %s\n", "#", "name", "spec",
              "family", "COGENT", "NWChem", "TAL_SH", "winning mapping");
  for (const ComparisonRow &Row : Rows)
    std::printf("%-3d %-9s %-20s %-8s %9.1f %9.1f %9.1f   %s\n", Row.Id,
                Row.Name.c_str(), Row.Spec.c_str(), Row.Category.c_str(),
                Row.CogentGflops, Row.NwchemGflops, Row.TalshGflops,
                Row.CogentConfig.c_str());

  // Per-category and overall speedup summaries (paper's in-text numbers).
  std::map<std::string, std::vector<ComparisonRow>> ByCategory;
  for (const ComparisonRow &Row : Rows)
    ByCategory[Row.Category].push_back(Row);

  std::printf("\nSpeedup of COGENT (geometric mean; max in parentheses)\n");
  auto maxSpeedup = [](const std::vector<ComparisonRow> &Set, bool Nw) {
    double Max = 0.0;
    for (const ComparisonRow &Row : Set) {
      double Other = Nw ? Row.NwchemGflops : Row.TalshGflops;
      if (Other > 0.0)
        Max = std::max(Max, Row.CogentGflops / Other);
    }
    return Max;
  };
  for (const auto &[Category, Set] : ByCategory)
    std::printf("  %-8s vs NWChem %5.2fx (%4.1fx)   vs TAL_SH %5.2fx "
                "(%4.1fx)\n",
                Category.c_str(), geomeanSpeedup(Set, true),
                maxSpeedup(Set, true), geomeanSpeedup(Set, false),
                maxSpeedup(Set, false));
  std::printf("  %-8s vs NWChem %5.2fx (%4.1fx)   vs TAL_SH %5.2fx "
              "(%4.1fx)\n",
              "ALL", geomeanSpeedup(Rows, true), maxSpeedup(Rows, true),
              geomeanSpeedup(Rows, false), maxSpeedup(Rows, false));

  double TotalGenMs = 0.0;
  for (const ComparisonRow &Row : Rows)
    TotalGenMs += Row.CogentElapsedMs;
  std::printf("\nCOGENT total code-generation time for the 48 kernels: "
              "%.0f ms\n",
              TotalGenMs);
}
