//===- bench/BenchCommon.h - Shared harness code for the figures ----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-figure benchmark binaries: runs the three
/// frameworks (COGENT, the NWChem-style generator, the TAL_SH-style TTGT
/// pipeline) over TCCG suite entries on a simulated device and prints the
/// rows each paper figure plots.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_BENCH_BENCHCOMMON_H
#define COGENT_BENCH_BENCHCOMMON_H

#include "gpu/DeviceSpec.h"
#include "suite/TccgSuite.h"

#include <string>
#include <vector>

namespace cogent {
namespace bench {

/// One x-axis position of Fig. 4 / Fig. 5.
struct ComparisonRow {
  int Id = 0;
  std::string Name;
  std::string Spec;
  std::string Category;
  double CogentGflops = 0.0;
  double NwchemGflops = 0.0;
  double TalshGflops = 0.0;
  /// The winning mapping, for the appendix-style dump.
  std::string CogentConfig;
  /// COGENT generation wall-clock, ms.
  double CogentElapsedMs = 0.0;
};

/// Runs the full 48-entry TCCG comparison (double precision, as in the
/// paper's Figs. 4/5) on \p Device.
std::vector<ComparisonRow> runTccgComparison(const gpu::DeviceSpec &Device,
                                             unsigned ElementSize);

/// Prints the figure: one row per contraction plus per-category and overall
/// geometric-mean/maximum speedup summaries (the paper's in-text numbers).
void printComparison(const std::vector<ComparisonRow> &Rows,
                     const gpu::DeviceSpec &Device, const char *FigureLabel);

/// Geometric mean of CogentGflops / Other over rows (Other selected by
/// \p UseNwchem).
double geomeanSpeedup(const std::vector<ComparisonRow> &Rows, bool UseNwchem);

} // namespace bench
} // namespace cogent

#endif // COGENT_BENCH_BENCHCOMMON_H
