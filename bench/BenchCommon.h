//===- bench/BenchCommon.h - Shared harness code for the figures ----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-figure benchmark binaries: runs the three
/// frameworks (COGENT, the NWChem-style generator, the TAL_SH-style TTGT
/// pipeline) over TCCG suite entries on a simulated device and prints the
/// rows each paper figure plots.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_BENCH_BENCHCOMMON_H
#define COGENT_BENCH_BENCHCOMMON_H

#include "gpu/DeviceSpec.h"
#include "suite/TccgSuite.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cogent {
namespace bench {

/// One x-axis position of Fig. 4 / Fig. 5.
struct ComparisonRow {
  int Id = 0;
  std::string Name;
  std::string Spec;
  std::string Category;
  double CogentGflops = 0.0;
  double NwchemGflops = 0.0;
  double TalshGflops = 0.0;
  /// The winning mapping, for the appendix-style dump.
  std::string CogentConfig;
  /// COGENT generation wall-clock, ms.
  double CogentElapsedMs = 0.0;
  /// Algorithm-3 modeled transactions of the winning kernel at the full
  /// representative size.
  double PredictedTransactions = 0.0;
  /// Model-vs-measured cross-check at a clamped verification size (0 when
  /// ComparisonOptions::SimTraffic is off): the extent cap, the cost
  /// model's estimate at that size, and the simulator's exact count.
  int64_t SimExtent = 0;
  double SimPredictedTransactions = 0.0;
  double SimMeasuredTransactions = 0.0;
  /// Candidates the PlanVerifier rejected while generating this row's
  /// kernel (docs/ARCHITECTURE.md §11); the winner itself always passed.
  uint64_t VerifierRejections = 0;
  /// KernelLint findings attached to this row's accepted kernels and
  /// emitted sources the strict lint gate rejected (docs/ARCHITECTURE.md
  /// §12); both are zero for a healthy emitter.
  uint64_t LintFindings = 0;
  uint64_t LintRejections = 0;
  /// Register-pressure estimates of the winning kernel: the plan-side
  /// analytic one and KernelDataflow's liveness-derived source-side one
  /// (docs/ARCHITECTURE.md §13). They agree within
  /// analysis::PressureToleranceRegs for a healthy emitter.
  unsigned RegisterPressurePlan = 0;
  unsigned RegisterPressureSource = 0;
};

/// Knobs for runTccgComparison beyond the element size.
struct ComparisonOptions {
  /// Re-plan each winning kernel at extents clamped to SimExtent and record
  /// both the modeled and the simulator-exact transaction counts — the
  /// Peise-style model-vs-measured discrepancy column of the bench JSON.
  /// Off by default: simulation across 48 entries costs seconds, which the
  /// headline-claims tests don't need.
  bool SimTraffic = false;
  int64_t SimExtent = 8;
};

/// Runs the full 48-entry TCCG comparison (double precision, as in the
/// paper's Figs. 4/5) on \p Device.
std::vector<ComparisonRow>
runTccgComparison(const gpu::DeviceSpec &Device, unsigned ElementSize,
                  const ComparisonOptions &Options = ComparisonOptions());

/// Prints the figure: one row per contraction plus per-category and overall
/// geometric-mean/maximum speedup summaries (the paper's in-text numbers).
void printComparison(const std::vector<ComparisonRow> &Rows,
                     const gpu::DeviceSpec &Device, const char *FigureLabel);

/// Geometric mean of CogentGflops / Other over rows (Other selected by
/// \p UseNwchem).
double geomeanSpeedup(const std::vector<ComparisonRow> &Rows, bool UseNwchem);

/// Serializes the comparison as machine-readable JSON (schema in
/// docs/ARCHITECTURE.md §10): figure label, device, element size, one
/// record per contraction with per-framework GFLOPS, codegen time and the
/// predicted-vs-simulated traffic cross-check, plus the summary speedups.
std::string renderComparisonJson(const std::vector<ComparisonRow> &Rows,
                                 const gpu::DeviceSpec &Device,
                                 const char *FigureLabel,
                                 unsigned ElementSize);

/// Writes \p Json to \p Path; prints a note (or a warning on failure) to
/// stdout and returns success. Shared by every bench harness so each
/// bench_fig* binary drops a structured <name>.json next to its text
/// output.
bool writeBenchJson(const std::string &Path, const std::string &Json);

/// Default JSON path for a harness: basename of \p Argv0 + ".json",
/// overridable with a --json=FILE argument (the first match in Argv wins).
std::string benchJsonPath(int Argc, char **Argv);

} // namespace bench
} // namespace cogent

#endif // COGENT_BENCH_BENCHCOMMON_H
