//===- bench/TcBenchCommon.cpp -------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "TcBenchCommon.h"

#include "baselines/TcTuner.h"
#include "core/Cogent.h"
#include "suite/TccgSuite.h"

#include <cmath>
#include <cstdio>

using namespace cogent;

void cogent::bench::runTcComparison(const gpu::DeviceSpec &Device,
                                    const char *FigureLabel) {
  std::printf("%s — COGENT vs Tensor Comprehensions on the SD2 CCSD(T) set "
              "(%s, single precision, modeled)\n",
              FigureLabel, Device.Name.c_str());
  std::printf("TC autotuner: population 100, 20 generations (as in the "
              "paper)\n");
  std::printf("%-7s %-20s %10s %12s %10s %14s %12s\n", "name", "spec",
              "COGENT", "TC untuned", "TC tuned", "TC tuning (s)",
              "COGENT (ms)");

  core::Cogent Generator(Device);
  double LnSum = 0.0;
  int Count = 0;
  for (const suite::SuiteEntry &Entry : suite::sd2Set()) {
    ir::Contraction TC = Entry.contraction();

    core::CogentOptions Options;
    Options.ElementSize = 4;
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
    double CogentGflops = Result ? Result->best().Predicted.Gflops : 0.0;
    double CogentMs = Result ? Result->ElapsedMs : 0.0;

    baselines::TcTunerOptions TunerOptions;
    TunerOptions.Seed = 0x7c00 + static_cast<uint64_t>(Entry.Id);
    baselines::TcTuneResult Tuned =
        baselines::tuneTc(TC, Device, TunerOptions);

    std::printf("%-7s %-20s %10.1f %12.2f %10.1f %14.0f %12.1f\n",
                Entry.Name.c_str(), TC.toString().c_str(), CogentGflops,
                Tuned.UntunedGflops, Tuned.BestGflops,
                Tuned.ModeledTuningSeconds, CogentMs);
    if (CogentGflops > 0.0 && Tuned.BestGflops > 0.0) {
      LnSum += std::log(CogentGflops / Tuned.BestGflops);
      ++Count;
    }
  }
  if (Count > 0)
    std::printf("\nGeometric-mean speedup of COGENT over tuned TC: %.2fx\n",
                std::exp(LnSum / Count));
}
