//===- bench/TcBenchCommon.cpp -------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "TcBenchCommon.h"

#include "baselines/TcTuner.h"
#include "core/Cogent.h"
#include "suite/TccgSuite.h"
#include "support/JsonWriter.h"

#include <cmath>
#include <cstdio>

using namespace cogent;
using namespace cogent::bench;

std::vector<TcRow>
cogent::bench::runTcComparison(const gpu::DeviceSpec &Device) {
  core::Cogent Generator(Device);

  std::vector<TcRow> Rows;
  for (const suite::SuiteEntry &Entry : suite::sd2Set()) {
    ir::Contraction TC = Entry.contraction();

    TcRow Row;
    Row.Id = Entry.Id;
    Row.Name = Entry.Name;
    Row.Spec = TC.toString();

    core::CogentOptions Options;
    Options.ElementSize = 4;
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
    if (Result) {
      Row.CogentGflops = Result->best().Predicted.Gflops;
      Row.CogentElapsedMs = Result->ElapsedMs;
    }

    baselines::TcTunerOptions TunerOptions;
    TunerOptions.Seed = 0x7c00 + static_cast<uint64_t>(Entry.Id);
    baselines::TcTuneResult Tuned =
        baselines::tuneTc(TC, Device, TunerOptions);
    Row.TcUntunedGflops = Tuned.UntunedGflops;
    Row.TcTunedGflops = Tuned.BestGflops;
    Row.TcTuningSeconds = Tuned.ModeledTuningSeconds;
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

double
cogent::bench::geomeanSpeedupVsTunedTc(const std::vector<TcRow> &Rows) {
  double LnSum = 0.0;
  size_t Count = 0;
  for (const TcRow &Row : Rows) {
    if (Row.CogentGflops <= 0.0 || Row.TcTunedGflops <= 0.0)
      continue;
    LnSum += std::log(Row.CogentGflops / Row.TcTunedGflops);
    ++Count;
  }
  return Count == 0 ? 0.0 : std::exp(LnSum / static_cast<double>(Count));
}

void cogent::bench::printTcComparison(const std::vector<TcRow> &Rows,
                                      const gpu::DeviceSpec &Device,
                                      const char *FigureLabel) {
  std::printf("%s — COGENT vs Tensor Comprehensions on the SD2 CCSD(T) set "
              "(%s, single precision, modeled)\n",
              FigureLabel, Device.Name.c_str());
  std::printf("TC autotuner: population 100, 20 generations (as in the "
              "paper)\n");
  std::printf("%-7s %-20s %10s %12s %10s %14s %12s\n", "name", "spec",
              "COGENT", "TC untuned", "TC tuned", "TC tuning (s)",
              "COGENT (ms)");
  for (const TcRow &Row : Rows)
    std::printf("%-7s %-20s %10.1f %12.2f %10.1f %14.0f %12.1f\n",
                Row.Name.c_str(), Row.Spec.c_str(), Row.CogentGflops,
                Row.TcUntunedGflops, Row.TcTunedGflops, Row.TcTuningSeconds,
                Row.CogentElapsedMs);

  double Geomean = geomeanSpeedupVsTunedTc(Rows);
  if (Geomean > 0.0)
    std::printf("\nGeometric-mean speedup of COGENT over tuned TC: %.2fx\n",
                Geomean);
}

std::string
cogent::bench::renderTcComparisonJson(const std::vector<TcRow> &Rows,
                                      const gpu::DeviceSpec &Device,
                                      const char *FigureLabel) {
  support::JsonWriter W;
  W.beginObject();
  W.member("figure", FigureLabel);
  W.member("device", Device.Name);
  W.member("element_size", 4);
  W.member("suite", "sd2");

  W.key("contractions");
  W.beginArray();
  for (const TcRow &Row : Rows) {
    W.beginObject();
    W.member("id", Row.Id);
    W.member("name", Row.Name);
    W.member("spec", Row.Spec);
    W.member("cogent_gflops", Row.CogentGflops);
    W.member("tc_untuned_gflops", Row.TcUntunedGflops);
    W.member("tc_tuned_gflops", Row.TcTunedGflops);
    W.member("tc_tuning_seconds", Row.TcTuningSeconds);
    W.member("codegen_ms", Row.CogentElapsedMs);
    W.endObject();
  }
  W.endArray();

  W.key("summary");
  W.beginObject();
  W.member("geomean_speedup_vs_tuned_tc", geomeanSpeedupVsTunedTc(Rows));
  double TotalGenMs = 0.0, TotalTuningS = 0.0;
  for (const TcRow &Row : Rows) {
    TotalGenMs += Row.CogentElapsedMs;
    TotalTuningS += Row.TcTuningSeconds;
  }
  W.member("total_codegen_ms", TotalGenMs);
  W.member("total_tc_tuning_seconds", TotalTuningS);
  W.endObject();
  W.endObject();
  return W.take();
}
