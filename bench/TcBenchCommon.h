//===- bench/TcBenchCommon.h - Shared harness for Figs. 6/7 ----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the Tensor Comprehensions comparison (paper
/// Figs. 6/7): COGENT vs TC-without-tuning vs TC-with-genetic-tuning on the
/// SD2 CCSD(T) contractions, single precision.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_BENCH_TCBENCHCOMMON_H
#define COGENT_BENCH_TCBENCHCOMMON_H

#include "gpu/DeviceSpec.h"

#include <string>
#include <vector>

namespace cogent {
namespace bench {

/// One x-axis position of Fig. 6 / Fig. 7.
struct TcRow {
  int Id = 0;
  std::string Name;
  std::string Spec;
  double CogentGflops = 0.0;
  double TcUntunedGflops = 0.0;
  double TcTunedGflops = 0.0;
  /// Modeled wall-clock of the genetic autotuner, seconds.
  double TcTuningSeconds = 0.0;
  /// COGENT generation wall-clock, ms.
  double CogentElapsedMs = 0.0;
};

/// Runs the SD2 single-precision comparison on \p Device.
std::vector<TcRow> runTcComparison(const gpu::DeviceSpec &Device);

/// Prints the figure: one row per contraction plus the geometric-mean
/// speedup over tuned TC (the paper's in-text number).
void printTcComparison(const std::vector<TcRow> &Rows,
                       const gpu::DeviceSpec &Device,
                       const char *FigureLabel);

/// Geometric mean of CogentGflops / TcTunedGflops over rows.
double geomeanSpeedupVsTunedTc(const std::vector<TcRow> &Rows);

/// Serializes the comparison as machine-readable JSON (schema in
/// docs/ARCHITECTURE.md §10).
std::string renderTcComparisonJson(const std::vector<TcRow> &Rows,
                                   const gpu::DeviceSpec &Device,
                                   const char *FigureLabel);

} // namespace bench
} // namespace cogent

#endif // COGENT_BENCH_TCBENCHCOMMON_H
