//===- bench/TcBenchCommon.h - Shared harness for Figs. 6/7 ----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the Tensor Comprehensions comparison (paper
/// Figs. 6/7): COGENT vs TC-without-tuning vs TC-with-genetic-tuning on the
/// SD2 CCSD(T) contractions, single precision.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_BENCH_TCBENCHCOMMON_H
#define COGENT_BENCH_TCBENCHCOMMON_H

#include "gpu/DeviceSpec.h"

namespace cogent {
namespace bench {

/// Runs and prints the SD2 single-precision comparison on \p Device.
void runTcComparison(const gpu::DeviceSpec &Device, const char *FigureLabel);

} // namespace bench
} // namespace cogent

#endif // COGENT_BENCH_TCBENCHCOMMON_H
