//===- bench/bench_ablation_costmodel.cpp - Cost-model quality ablation -----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A (DESIGN.md): how good is the Algorithm-3 analytic transaction
/// model at ranking configurations without running them? For a set of TCCG
/// entries at simulation-friendly sizes, this harness compares the analytic
/// estimate against the simulator's exact warp-level transaction counts
/// (accuracy + Spearman rank correlation) and reports the top-1 regret: the
/// simulated performance of the model-chosen configuration relative to the
/// best configuration in the sample.
///
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"
#include "core/Enumerator.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "gpu/PerfModel.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

using namespace cogent;
using ir::Operand;

namespace {

/// Spearman rank correlation of two equally sized samples.
double spearman(const std::vector<double> &X, const std::vector<double> &Y) {
  auto ranks = [](const std::vector<double> &Values) {
    std::vector<size_t> Order(Values.size());
    std::iota(Order.begin(), Order.end(), 0);
    std::sort(Order.begin(), Order.end(),
              [&](size_t I, size_t J) { return Values[I] < Values[J]; });
    std::vector<double> Rank(Values.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Rank[Order[I]] = static_cast<double>(I);
    return Rank;
  };
  std::vector<double> RX = ranks(X), RY = ranks(Y);
  double MeanX = 0, MeanY = 0;
  for (size_t I = 0; I < RX.size(); ++I) {
    MeanX += RX[I];
    MeanY += RY[I];
  }
  MeanX /= RX.size();
  MeanY /= RY.size();
  double Num = 0, DX = 0, DY = 0;
  for (size_t I = 0; I < RX.size(); ++I) {
    Num += (RX[I] - MeanX) * (RY[I] - MeanY);
    DX += (RX[I] - MeanX) * (RX[I] - MeanX);
    DY += (RY[I] - MeanY) * (RY[I] - MeanY);
  }
  return DX > 0 && DY > 0 ? Num / std::sqrt(DX * DY) : 1.0;
}

} // namespace

int main() {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  const int SuiteIds[] = {1, 5, 9, 12, 13, 20, 31, 40};
  constexpr int64_t ScaledExtent = 10;
  constexpr size_t MaxConfigs = 24;

  std::printf("Ablation A — Algorithm-3 cost model vs simulator-exact "
              "transactions (scaled sizes, extent<=%lld)\n",
              static_cast<long long>(ScaledExtent));
  std::printf("%-9s %8s %12s %12s %10s %10s\n", "name", "configs",
              "est/exact", "spearman", "top1 GF", "best GF");

  for (int Id : SuiteIds) {
    const suite::SuiteEntry &Entry = suite::suiteEntry(Id);
    ir::Contraction TC = Entry.contractionScaled(ScaledExtent);

    core::EnumerationOptions Options;
    Options.MinThreadBlocks = 1;
    Options.MinOccupancy = 0.0;
    core::Enumerator Enum(TC, Device, Options);
    std::vector<core::KernelConfig> Configs = Enum.enumerate();
    // Pre-rank by the analytic model so the sample always contains the
    // model's top picks (otherwise top-1 regret would compare arbitrary
    // strata).
    std::sort(Configs.begin(), Configs.end(),
              [&](const core::KernelConfig &X, const core::KernelConfig &Y) {
                core::KernelPlan PX(TC, X), PY(TC, Y);
                return core::estimateTransactions(PX, 8).total() <
                       core::estimateTransactions(PY, 8).total();
              });
    if (Configs.size() > MaxConfigs) {
      // Model top half + a stratified sample of the rest.
      std::vector<core::KernelConfig> Sampled(
          Configs.begin(), Configs.begin() + MaxConfigs / 2);
      size_t Stride = (Configs.size() - MaxConfigs / 2) / (MaxConfigs / 2);
      for (size_t I = MaxConfigs / 2;
           I < Configs.size() && Sampled.size() < MaxConfigs; I += Stride)
        Sampled.push_back(Configs[I]);
      Configs = std::move(Sampled);
    }

    Rng Generator(1234);
    tensor::Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
    tensor::Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
    A.fillRandom(Generator);
    B.fillRandom(Generator);
    tensor::Tensor<double> C = tensor::makeOperand<double>(TC, Operand::C);

    std::vector<double> Estimated, Exact, SimGflops;
    for (const core::KernelConfig &Config : Configs) {
      core::KernelPlan Plan(TC, Config);
      Estimated.push_back(
          core::estimateTransactions(Plan, 8, Device.TransactionBytes)
              .total());
      gpu::SimResult Sim = gpu::simulateKernel(Plan, C, A, B);
      Exact.push_back(static_cast<double>(Sim.totalTransactions()));
      gpu::KernelProfile Profile =
          gpu::makeProfileFromSim(Plan, Device, 8, Sim);
      SimGflops.push_back(
          gpu::estimateKernelTime(Device, Calib, Profile).Gflops);
    }

    // Mean multiplicative error of the analytic estimate.
    double LnErr = 0.0;
    for (size_t I = 0; I < Estimated.size(); ++I)
      LnErr += std::log(Estimated[I] / Exact[I]);
    double MeanRatio = std::exp(LnErr / Estimated.size());

    // Model-chosen config = argmin estimated transactions.
    size_t Chosen = 0, Best = 0;
    for (size_t I = 1; I < Estimated.size(); ++I) {
      if (Estimated[I] < Estimated[Chosen])
        Chosen = I;
      if (SimGflops[I] > SimGflops[Best])
        Best = I;
    }

    std::printf("%-9s %8zu %12.3f %12.3f %10.1f %10.1f\n",
                Entry.Name.c_str(), Configs.size(), MeanRatio,
                spearman(Estimated, Exact), SimGflops[Chosen],
                SimGflops[Best]);
  }
  std::printf("\nest/exact ~1 and spearman ~1 mean Algorithm 3 ranks "
              "configurations like the exact counter; top1 close to best "
              "means the model-driven pick loses little performance.\n");
  return 0;
}
