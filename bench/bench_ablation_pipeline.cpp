//===- bench/bench_ablation_pipeline.cpp - Double-buffering ablation --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation D: the effect of software-pipelining the staging (double-
/// buffered shared memory). Pipelining cuts the exposed non-overlap slack
/// at the cost of twice the shared-memory footprint, which can reduce
/// occupancy — the classic trade-off. Reported per TCCG family
/// representative on both devices.
///
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "core/CostModel.h"
#include "core/KernelPlan.h"
#include "gpu/Occupancy.h"
#include "suite/TccgSuite.h"

#include <cstdio>

using namespace cogent;

int main() {
  const int SuiteIds[] = {1, 9, 12, 20, 31, 40};

  for (const gpu::DeviceSpec &Device : {gpu::makeP100(), gpu::makeV100()}) {
    gpu::Calibration Calib = gpu::makeCalibration(Device);
    core::Cogent Generator(Device);
    std::printf("Ablation D — double-buffered staging on %s (double "
                "precision, modeled)\n",
                Device.Name.c_str());
    std::printf("%-9s %12s %12s %8s %12s %12s\n", "name", "classic GF",
                "pipelined", "gain", "occ classic", "occ piped");

    for (int Id : SuiteIds) {
      const suite::SuiteEntry &Entry = suite::suiteEntry(Id);
      ir::Contraction TC = Entry.contraction();
      ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
      if (!Result)
        continue;
      core::KernelPlan Plan(TC, Result->best().Config);

      gpu::KernelProfile Classic =
          core::makeKernelProfile(Plan, Device, 8);
      gpu::PerfEstimate ClassicEst =
          gpu::estimateKernelTime(Device, Calib, Classic);

      // Pipelined: doubled shared memory changes occupancy; loads overlap.
      gpu::KernelProfile Piped = Classic;
      Piped.SoftwarePipelined = true;
      gpu::BlockResources Block;
      Block.ThreadsPerBlock =
          static_cast<unsigned>(Plan.threadsPerBlock());
      Block.SharedMemBytes =
          static_cast<unsigned>(2 * Plan.config().smemBytes(8));
      Block.RegistersPerThread = Plan.config().registersPerThread(8);
      gpu::OccupancyResult PipedOcc = gpu::computeOccupancy(Device, Block);
      Piped.Occupancy = PipedOcc.Occupancy;
      Piped.WaveEff = gpu::waveEfficiency(Device, Plan.numBlocks(),
                                          PipedOcc.BlocksPerSM);
      gpu::PerfEstimate PipedEst =
          gpu::estimateKernelTime(Device, Calib, Piped);

      std::printf("%-9s %12.1f %12.1f %7.1f%% %11.1f%% %11.1f%%\n",
                  Entry.Name.c_str(), ClassicEst.Gflops, PipedEst.Gflops,
                  100.0 * (PipedEst.Gflops / ClassicEst.Gflops - 1.0),
                  100.0 * Classic.Occupancy, 100.0 * Piped.Occupancy);
    }
    std::printf("\n");
  }
  std::printf("Pipelining pays when the doubled footprint leaves occupancy "
              "intact; when it evicts a resident block, the bandwidth loss "
              "can outweigh the overlap gain.\n");
  return 0;
}
