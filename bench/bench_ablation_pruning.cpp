//===- bench/bench_ablation_pruning.cpp - Pruning-rules ablation ------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation B (DESIGN.md): what do the paper's performance constraints
/// (§IV-A2) buy? For representative TCCG entries this harness enumerates
/// with the input-FVI coalescing rule and the minimum-thread-block rule
/// individually disabled, reporting the number of surviving configurations,
/// the best modeled cost, and the enumeration + ranking wall-clock.
///
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"
#include "core/Enumerator.h"
#include "core/KernelPlan.h"
#include "gpu/DeviceSpec.h"
#include "suite/TccgSuite.h"

#include <chrono>
#include <cstdio>
#include <limits>

using namespace cogent;

namespace {

struct AblationResult {
  uint64_t Survivors = 0;
  double BestCost = 0.0;
  double ElapsedMs = 0.0;
};

AblationResult runOne(const ir::Contraction &TC,
                      const gpu::DeviceSpec &Device, bool Fvi,
                      bool MinBlocks) {
  auto Start = std::chrono::steady_clock::now();
  core::EnumerationOptions Options;
  Options.EnforceFviConstraints = Fvi;
  Options.EnforceMinBlocks = MinBlocks;
  core::Enumerator Enum(TC, Device, Options);
  core::EnumerationStats Stats;
  std::vector<core::KernelConfig> Configs = Enum.enumerate(&Stats);

  AblationResult Result;
  Result.Survivors = Configs.size();
  Result.BestCost = std::numeric_limits<double>::infinity();
  for (const core::KernelConfig &Config : Configs) {
    core::KernelPlan Plan(TC, Config);
    Result.BestCost = std::min(
        Result.BestCost,
        core::estimateTransactions(Plan, 8, Device.TransactionBytes).total());
  }
  auto End = std::chrono::steady_clock::now();
  Result.ElapsedMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  return Result;
}

} // namespace

int main() {
  gpu::DeviceSpec Device = gpu::makeV100();
  const int SuiteIds[] = {1, 9, 12, 20, 31, 40};

  std::printf("Ablation B — effect of the SSIV-A2 performance constraints "
              "(V100, double)\n");
  std::printf("%-9s | %-24s | %-24s | %-24s\n", "", "full pruning",
              "no FVI rule", "no min-blocks rule");
  std::printf("%-9s | %8s %9s %5s | %8s %9s %5s | %8s %9s %5s\n", "name",
              "survive", "bestcost", "ms", "survive", "bestcost", "ms",
              "survive", "bestcost", "ms");

  for (int Id : SuiteIds) {
    const suite::SuiteEntry &Entry = suite::suiteEntry(Id);
    ir::Contraction TC = Entry.contraction();
    AblationResult Full = runOne(TC, Device, true, true);
    AblationResult NoFvi = runOne(TC, Device, false, true);
    AblationResult NoMin = runOne(TC, Device, true, false);
    std::printf("%-9s | %8llu %9.3g %5.1f | %8llu %9.3g %5.1f | %8llu "
                "%9.3g %5.1f\n",
                Entry.Name.c_str(),
                static_cast<unsigned long long>(Full.Survivors),
                Full.BestCost, Full.ElapsedMs,
                static_cast<unsigned long long>(NoFvi.Survivors),
                NoFvi.BestCost, NoFvi.ElapsedMs,
                static_cast<unsigned long long>(NoMin.Survivors),
                NoMin.BestCost, NoMin.ElapsedMs);
  }
  std::printf("\nThe constraints shrink the ranked set (and search time) "
              "while the best modeled cost stays essentially unchanged — "
              "they discard configurations the cost model would rank low "
              "anyway.\n");
  return 0;
}
