//===- bench/bench_ablation_ranker.cpp - Selection-strategy ablation --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation C: compares the three candidate-selection strategies the system
/// offers — (1) pure Algorithm-3 cost-model ranking (the paper), (2) the
/// §VI learned ranker over the model's features, (3) simulate-the-top-K
/// refinement — against the best configuration in a simulated sample, at
/// simulation-friendly sizes.
///
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/Autotune.h"
#include "gpu/KernelSimulator.h"
#include "gpu/LearnedRanker.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <cstdio>

using namespace cogent;
using ir::Operand;

namespace {

/// Simulated GFLOPS of \p Config on the scaled contraction.
double simulatedGflops(const ir::Contraction &TC,
                       const core::KernelConfig &Config,
                       const gpu::DeviceSpec &Device) {
  core::KernelPlan Plan(TC, Config.clampedTo(TC));
  Rng Generator(5150);
  tensor::Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  tensor::Tensor<double> C = tensor::makeOperand<double>(TC, Operand::C);
  gpu::SimResult Sim = gpu::simulateKernel(Plan, C, A, B);
  gpu::KernelProfile Profile = gpu::makeProfileFromSim(Plan, Device, 8, Sim);
  return gpu::estimateKernelTime(Device, gpu::makeCalibration(Device),
                                 Profile)
      .Gflops;
}

} // namespace

int main() {
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);
  constexpr int64_t MeasureExtent = 10;
  const int SuiteIds[] = {1, 9, 12, 20, 31, 40};

  std::printf("Ablation C — candidate-selection strategies at scaled sizes "
              "(extent<=%lld, V100, simulated GFLOPS)\n",
              static_cast<long long>(MeasureExtent));
  std::printf("%-9s %12s %12s %12s %12s\n", "name", "cost model",
              "learned", "refine topK", "sample best");

  for (int Id : SuiteIds) {
    const suite::SuiteEntry &Entry = suite::suiteEntry(Id);
    ir::Contraction TC = Entry.contractionScaled(MeasureExtent);

    core::CogentOptions Options;
    Options.TopK = 12;
    Options.Enumeration.MinThreadBlocks = 1;
    Options.Enumeration.MinOccupancy = 0.0;
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
    if (!Result) {
      std::fprintf(stderr, "%s: %s\n", Entry.Name.c_str(),
                   Result.errorMessage().c_str());
      continue;
    }

    // (1) cost-model pick = rank 0.
    double CostPick = simulatedGflops(TC, Result->best().Config, Device);

    // (2) learned-ranker pick over the same top-K.
    gpu::LearnedRanker Ranker = gpu::LearnedRanker::fitFromSimulation(
        TC, Device, 8, /*MaxSamples=*/24, MeasureExtent);
    std::vector<size_t> Order = Ranker.rank(TC, *Result, Device, 8);
    double LearnedPick =
        simulatedGflops(TC, Result->Kernels[Order.front()].Config, Device);

    // (3) simulate the whole top-K and keep the winner.
    gpu::RefinementResult Refined =
        gpu::refineTopKBySimulation(TC, *Result, Device, 8, MeasureExtent);
    double RefinedPick = simulatedGflops(
        TC, Result->Kernels[Refined.WinnerIndex].Config, Device);

    double SampleBest = 0.0;
    for (const core::GeneratedKernel &Kernel : Result->Kernels)
      SampleBest =
          std::max(SampleBest, simulatedGflops(TC, Kernel.Config, Device));

    std::printf("%-9s %12.1f %12.1f %12.1f %12.1f\n", Entry.Name.c_str(),
                CostPick, LearnedPick, RefinedPick, SampleBest);
  }
  std::printf("\nrefine-topK always attains the sample best by "
              "construction; the gap between the cost-model column and the "
              "best column is what §VI's learning/refinement extensions "
              "recover.\n");
  return 0;
}
