//===- bench/bench_codegen_time.cpp - Code-generation-time microbench -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the generator itself: end-to-end
/// generation, enumeration, cost-model ranking and CUDA emission. The paper
/// contrasts COGENT's model-driven seconds with TC's hours (~8514 s of
/// autotuning for SD2_1); these timings quantify our side of that claim.
///
//===----------------------------------------------------------------------===//

#include "core/CodeGen.h"
#include "core/Cogent.h"
#include "core/CostModel.h"
#include "core/Enumerator.h"
#include "core/KernelPlan.h"
#include "gpu/DeviceSpec.h"
#include "suite/TccgSuite.h"

#include <benchmark/benchmark.h>

using namespace cogent;

namespace {

ir::Contraction entryContraction(int Id) {
  return suite::suiteEntry(Id).contraction();
}

void BM_GenerateEq1(benchmark::State &State) {
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);
  ir::Contraction TC = entryContraction(12);
  for (auto _ : State) {
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_GenerateEq1)->Unit(benchmark::kMillisecond);

void BM_GenerateSd2_1(benchmark::State &State) {
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);
  ir::Contraction TC = entryContraction(31);
  for (auto _ : State) {
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_GenerateSd2_1)->Unit(benchmark::kMillisecond);

void BM_EnumerateSd2_1(benchmark::State &State) {
  gpu::DeviceSpec Device = gpu::makeV100();
  ir::Contraction TC = entryContraction(31);
  core::Enumerator Enum(TC, Device);
  for (auto _ : State) {
    std::vector<core::KernelConfig> Configs = Enum.enumerate();
    benchmark::DoNotOptimize(Configs);
  }
}
BENCHMARK(BM_EnumerateSd2_1)->Unit(benchmark::kMillisecond);

void BM_CostModelSingleConfig(benchmark::State &State) {
  gpu::DeviceSpec Device = gpu::makeV100();
  ir::Contraction TC = entryContraction(31);
  core::Enumerator Enum(TC, Device);
  std::vector<core::KernelConfig> Configs = Enum.enumerate();
  core::KernelPlan Plan(TC, Configs.front());
  for (auto _ : State) {
    core::TransactionCost Cost = core::estimateTransactions(Plan, 8);
    benchmark::DoNotOptimize(Cost);
  }
}
BENCHMARK(BM_CostModelSingleConfig);

void BM_EmitCudaSd2_1(benchmark::State &State) {
  gpu::DeviceSpec Device = gpu::makeV100();
  ir::Contraction TC = entryContraction(31);
  core::Enumerator Enum(TC, Device);
  std::vector<core::KernelConfig> Configs = Enum.enumerate();
  core::KernelPlan Plan(TC, Configs.front());
  for (auto _ : State) {
    core::GeneratedSource Source = core::emitCuda(Plan);
    benchmark::DoNotOptimize(Source);
  }
}
BENCHMARK(BM_EmitCudaSd2_1)->Unit(benchmark::kMicrosecond);

void BM_GenerateWholeSuite(benchmark::State &State) {
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);
  for (auto _ : State) {
    for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
      ErrorOr<core::GenerationResult> Result =
          Generator.generate(Entry.contraction());
      benchmark::DoNotOptimize(Result);
    }
  }
}
BENCHMARK(BM_GenerateWholeSuite)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
