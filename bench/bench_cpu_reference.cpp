//===- bench/bench_cpu_reference.cpp - Measured CPU TTGT reference ----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's related-work aside: it "benchmark[s] achievable performance
/// for TTGT using HPTT on a multicore CPU" against GETT/TBLIS-class direct
/// CPU contractions. This harness produces the analogous reference with
/// this repository's own CPU substrates — *actually measured* wall-clock,
/// not modeled: the blocked permutation library plus the blocked GEMM run
/// the TTGT pipeline on host, and the naive loop nest provides the direct
/// lower bound. It also grounds the simulated-GPU numbers: the modeled
/// V100 GFLOPS should exceed this single-core CPU measurement by orders of
/// magnitude.
///
//===----------------------------------------------------------------------===//

#include "baselines/Ttgt.h"
#include "core/Cogent.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <chrono>
#include <cstdio>
#include <functional>

using namespace cogent;
using ir::Operand;

namespace {

double secondsOf(const std::function<void()> &Body) {
  auto Start = std::chrono::steady_clock::now();
  Body();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main() {
  // Modest sizes so the naive loop nest stays tractable.
  struct Case {
    int SuiteId;
    int64_t Extent;
  };
  const Case Cases[] = {{1, 48}, {12, 24}, {13, 24}, {31, 10}};

  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);

  std::printf("Measured single-core CPU reference (this machine) vs the "
              "modeled V100\n");
  std::printf("%-9s %-18s %8s | %12s %12s | %14s\n", "name", "spec",
              "extent", "naive GF", "TTGT-CPU GF", "V100 model GF");

  Rng Rand(3);
  for (const Case &C : Cases) {
    const suite::SuiteEntry &Entry = suite::suiteEntry(C.SuiteId);
    ir::Contraction TC = Entry.contractionScaled(C.Extent);
    double Flops = TC.flopCount();

    tensor::Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
    tensor::Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
    A.fillRandom(Rand);
    B.fillRandom(Rand);
    tensor::Tensor<double> OutNaive =
        tensor::makeOperand<double>(TC, Operand::C);
    tensor::Tensor<double> OutTtgt =
        tensor::makeOperand<double>(TC, Operand::C);

    double NaiveSec =
        secondsOf([&] { tensor::contractReference(TC, OutNaive, A, B); });
    double TtgtSec =
        secondsOf([&] { baselines::runTtgt(TC, OutTtgt, A, B); });
    double Err = tensor::maxAbsDifference(OutNaive, OutTtgt);
    if (Err > 1e-9) {
      std::fprintf(stderr, "%s: CPU paths disagree (%g)\n",
                   Entry.Name.c_str(), Err);
      return 1;
    }

    ErrorOr<core::GenerationResult> Result = Generator.generate(TC, [] {
      core::CogentOptions Options;
      Options.Enumeration.MinThreadBlocks = 1;
      Options.Enumeration.MinOccupancy = 0.0;
      return Options;
    }());
    double ModelGf =
        Result ? Result->best().Predicted.Gflops : 0.0;

    std::printf("%-9s %-18s %8lld | %12.2f %12.2f | %14.0f\n",
                Entry.Name.c_str(), Entry.Spec.c_str(),
                static_cast<long long>(C.Extent), Flops / NaiveSec / 1e9,
                Flops / TtgtSec / 1e9, ModelGf);
  }
  std::printf("\nTTGT-CPU (blocked permute + blocked GEMM) beats the naive "
              "nest by avoiding strided access — the CPU incarnation of "
              "the paper's §II argument — while the modeled GPU figures "
              "sit orders of magnitude above both, as expected for a "
              "device with ~900 GB/s of DRAM bandwidth.\n");
  return 0;
}
