//===- bench/bench_fig4_tccg_p100.cpp - Paper Fig. 4 -----------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig. 4: GFLOPS of COGENT vs the NWChem code
/// generator vs TAL_SH over the 48 TCCG contractions, double precision, on
/// the (simulated) Nvidia Pascal P100.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gpu/DeviceSpec.h"

int main(int Argc, char **Argv) {
  cogent::gpu::DeviceSpec Device = cogent::gpu::makeP100();
  cogent::bench::ComparisonOptions Options;
  Options.SimTraffic = true;
  std::vector<cogent::bench::ComparisonRow> Rows =
      cogent::bench::runTccgComparison(Device, /*ElementSize=*/8, Options);
  cogent::bench::printComparison(Rows, Device, "Fig. 4");
  std::string Json =
      cogent::bench::renderComparisonJson(Rows, Device, "Fig. 4", 8);
  return cogent::bench::writeBenchJson(
             cogent::bench::benchJsonPath(Argc, Argv), Json)
             ? 0
             : 1;
}
