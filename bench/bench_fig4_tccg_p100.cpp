//===- bench/bench_fig4_tccg_p100.cpp - Paper Fig. 4 -----------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig. 4: GFLOPS of COGENT vs the NWChem code
/// generator vs TAL_SH over the 48 TCCG contractions, double precision, on
/// the (simulated) Nvidia Pascal P100.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gpu/DeviceSpec.h"

int main() {
  cogent::gpu::DeviceSpec Device = cogent::gpu::makeP100();
  std::vector<cogent::bench::ComparisonRow> Rows =
      cogent::bench::runTccgComparison(Device, /*ElementSize=*/8);
  cogent::bench::printComparison(Rows, Device, "Fig. 4");
  return 0;
}
