//===- bench/bench_fig5_tccg_v100.cpp - Paper Fig. 5 -----------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig. 5: GFLOPS of COGENT vs the NWChem code
/// generator vs TAL_SH over the 48 TCCG contractions, double precision, on
/// the (simulated) Nvidia Volta V100.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gpu/DeviceSpec.h"

int main(int Argc, char **Argv) {
  cogent::gpu::DeviceSpec Device = cogent::gpu::makeV100();
  cogent::bench::ComparisonOptions Options;
  Options.SimTraffic = true;
  std::vector<cogent::bench::ComparisonRow> Rows =
      cogent::bench::runTccgComparison(Device, /*ElementSize=*/8, Options);
  cogent::bench::printComparison(Rows, Device, "Fig. 5");
  std::string Json =
      cogent::bench::renderComparisonJson(Rows, Device, "Fig. 5", 8);
  return cogent::bench::writeBenchJson(
             cogent::bench::benchJsonPath(Argc, Argv), Json)
             ? 0
             : 1;
}
