//===- bench/bench_fig6_tc_p100.cpp - Paper Fig. 6 --------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig. 6: COGENT vs Tensor Comprehensions
/// (untuned and genetically autotuned) on the SD2 CCSD(T) contractions,
/// single precision, (simulated) P100.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "TcBenchCommon.h"

#include "gpu/DeviceSpec.h"

int main(int Argc, char **Argv) {
  cogent::gpu::DeviceSpec Device = cogent::gpu::makeP100();
  std::vector<cogent::bench::TcRow> Rows =
      cogent::bench::runTcComparison(Device);
  cogent::bench::printTcComparison(Rows, Device, "Fig. 6");
  std::string Json =
      cogent::bench::renderTcComparisonJson(Rows, Device, "Fig. 6");
  return cogent::bench::writeBenchJson(
             cogent::bench::benchJsonPath(Argc, Argv), Json)
             ? 0
             : 1;
}
