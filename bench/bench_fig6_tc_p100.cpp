//===- bench/bench_fig6_tc_p100.cpp - Paper Fig. 6 --------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig. 6: COGENT vs Tensor Comprehensions
/// (untuned and genetically autotuned) on the SD2 CCSD(T) contractions,
/// single precision, (simulated) P100.
///
//===----------------------------------------------------------------------===//

#include "TcBenchCommon.h"

#include "gpu/DeviceSpec.h"

int main() {
  cogent::bench::runTcComparison(cogent::gpu::makeP100(), "Fig. 6");
  return 0;
}
