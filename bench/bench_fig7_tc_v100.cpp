//===- bench/bench_fig7_tc_v100.cpp - Paper Fig. 7 --------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig. 7: COGENT vs Tensor Comprehensions
/// (untuned and genetically autotuned) on the SD2 CCSD(T) contractions,
/// single precision, (simulated) V100.
///
//===----------------------------------------------------------------------===//

#include "TcBenchCommon.h"

#include "gpu/DeviceSpec.h"

int main() {
  cogent::bench::runTcComparison(cogent::gpu::makeV100(), "Fig. 7");
  return 0;
}
