//===- bench/bench_fig7_tc_v100.cpp - Paper Fig. 7 --------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig. 7: COGENT vs Tensor Comprehensions
/// (untuned and genetically autotuned) on the SD2 CCSD(T) contractions,
/// single precision, (simulated) V100.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "TcBenchCommon.h"

#include "gpu/DeviceSpec.h"

int main(int Argc, char **Argv) {
  cogent::gpu::DeviceSpec Device = cogent::gpu::makeV100();
  std::vector<cogent::bench::TcRow> Rows =
      cogent::bench::runTcComparison(Device);
  cogent::bench::printTcComparison(Rows, Device, "Fig. 7");
  std::string Json =
      cogent::bench::renderTcComparisonJson(Rows, Device, "Fig. 7");
  return cogent::bench::writeBenchJson(
             cogent::bench::benchJsonPath(Argc, Argv), Json)
             ? 0
             : 1;
}
