//===- bench/bench_fig8_tuning_curve.cpp - Paper Fig. 8 --------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Fig. 8: GFLOPS as a function of the number of
/// auto-tuned code versions for Tensor Comprehensions on SD2_1
/// (abcdef-gdab-efgc), V100, single precision. The paper's series: TC
/// without tuning stays below 1 GFLOP; TC with tuning climbs over 20
/// generations x 100 candidates (~8514 s of tuning); COGENT's model-driven
/// kernel is a flat line produced in milliseconds.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/TcTuner.h"
#include "core/Cogent.h"
#include "gpu/DeviceSpec.h"
#include "suite/TccgSuite.h"
#include "support/JsonWriter.h"

#include <cstdio>

using namespace cogent;

int main(int Argc, char **Argv) {
  gpu::DeviceSpec Device = gpu::makeV100();
  const suite::SuiteEntry &Entry = suite::suiteEntry(31); // sd2_1
  ir::Contraction TC = Entry.contraction();

  core::Cogent Generator(Device);
  core::CogentOptions Options;
  Options.ElementSize = 4;
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
  double CogentGflops = Result ? Result->best().Predicted.Gflops : 0.0;
  double CogentMs = Result ? Result->ElapsedMs : 0.0;

  baselines::TcTunerOptions TunerOptions;
  baselines::TcTuneResult Tuned = baselines::tuneTc(TC, Device, TunerOptions);

  std::printf("Fig. 8 — GFLOPS vs number of auto-tuned code versions, "
              "SD2_1 (%s), %s, single precision (modeled)\n",
              TC.toString().c_str(), Device.Name.c_str());
  std::printf("%-12s %-10s %-12s %-10s\n", "candidates", "TC tuned",
              "TC untuned", "COGENT");
  for (size_t Gen = 0; Gen < Tuned.BestGflopsPerGeneration.size(); ++Gen)
    std::printf("%-12zu %-10.1f %-12.2f %-10.1f\n",
                (Gen + 1) * static_cast<size_t>(TunerOptions.PopulationSize),
                Tuned.BestGflopsPerGeneration[Gen], Tuned.UntunedGflops,
                CogentGflops);

  std::printf("\nTotal modeled TC tuning time: %.0f s (paper reports "
              "~8514 s)\n",
              Tuned.ModeledTuningSeconds);
  std::printf("COGENT model-driven generation time: %.1f ms\n", CogentMs);

  support::JsonWriter W;
  W.beginObject();
  W.member("figure", "Fig. 8");
  W.member("device", Device.Name);
  W.member("element_size", 4);
  W.member("name", Entry.Name);
  W.member("spec", TC.toString());
  W.member("cogent_gflops", CogentGflops);
  W.member("codegen_ms", CogentMs);
  W.member("tc_untuned_gflops", Tuned.UntunedGflops);
  W.member("tc_tuning_seconds", Tuned.ModeledTuningSeconds);
  W.key("tuning_curve");
  W.beginArray();
  for (size_t Gen = 0; Gen < Tuned.BestGflopsPerGeneration.size(); ++Gen) {
    W.beginObject();
    W.member("candidates",
             static_cast<uint64_t>((Gen + 1) *
                                   static_cast<size_t>(
                                       TunerOptions.PopulationSize)));
    W.member("tc_tuned_gflops", Tuned.BestGflopsPerGeneration[Gen]);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return cogent::bench::writeBenchJson(
             cogent::bench::benchJsonPath(Argc, Argv), W.take())
             ? 0
             : 1;
}
