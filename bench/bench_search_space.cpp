//===- bench/bench_search_space.cpp - §IV search-space statistics -----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's §IV in-text numbers: the naive mapping x tile-size
/// search space (3,981,312 configurations for Eq. 1) versus COGENT's
/// domain-pruned enumeration, and the "around 97% of the configurations
/// were pruned" statistic over the TCCG benchmarks.
///
//===----------------------------------------------------------------------===//

#include "core/Enumerator.h"
#include "gpu/DeviceSpec.h"
#include "suite/TccgSuite.h"

#include <cstdio>

using namespace cogent;

int main() {
  gpu::DeviceSpec Device = gpu::makeV100();

  std::printf("Search-space statistics (paper SSIV)\n");
  std::printf("%-9s %-20s %14s %10s %10s %8s %10s\n", "name", "spec",
              "naive space", "raw combos", "survive", "pruned", "vs naive");

  double PrunedSum = 0.0, PrunedVsNaiveSum = 0.0;
  int Count = 0;
  for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
    ir::Contraction TC = Entry.contraction();
    core::Enumerator Enum(TC, Device);
    core::EnumerationStats Stats;
    Enum.enumerate(&Stats);
    double Naive = core::Enumerator::naiveSearchSpace(TC);
    double VsNaive = 1.0 - static_cast<double>(Stats.Survivors) / Naive;
    std::printf("%-9s %-20s %14.0f %10llu %10llu %7.1f%% %9.4f%%\n",
                Entry.Name.c_str(), TC.toString().c_str(), Naive,
                static_cast<unsigned long long>(Stats.RawConfigs),
                static_cast<unsigned long long>(Stats.Survivors),
                100.0 * Stats.prunedFraction(), 100.0 * VsNaive);
    PrunedSum += Stats.prunedFraction();
    PrunedVsNaiveSum += VsNaive;
    ++Count;
  }
  std::printf("\nMean pruned fraction across the suite: %.1f%% of the "
              "domain-restricted Cartesian product, %.2f%% of the naive "
              "mapping x tile space (paper: \"around 97%%\")\n",
              100.0 * PrunedSum / Count, 100.0 * PrunedVsNaiveSum / Count);

  // The paper's worked example: Eq. 1's naive space is 3,981,312.
  ir::Contraction Eq1 = suite::suiteEntry(12).contraction();
  std::printf("Naive search space for Eq. 1 (%s): %.0f (paper: 3,981,312)\n",
              Eq1.toString().c_str(),
              core::Enumerator::naiveSearchSpace(Eq1));
  return 0;
}
