//===- bench/bench_service.cpp - Service-layer throughput/latency ----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the GenerationService with the TCCG-48 suite from many client
/// threads and reports throughput plus the p50/p99 completion-latency
/// percentiles, alongside the service's resilience tallies (shed / retried
/// / coalesced / quarantined requests). Two phases:
///
///   warm-up: every suite entry is generated once, populating the sharded
///            plan cache (this is the cold-path cost, reported separately);
///   steady:  N client threads issue R random-order suite requests each
///            against the warm cache — the service-throughput headline.
///
/// Writes bench_service.json (same --json=FILE convention as the figure
/// harnesses); scripts/run_all.sh checks it into BENCH_service.json.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "service/GenerationService.h"
#include "suite/TccgSuite.h"
#include "support/Counters.h"
#include "support/JsonWriter.h"
#include "support/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace cogent;
using Clock = std::chrono::steady_clock;

namespace {

struct BenchConfig {
  unsigned ClientThreads = 8;
  unsigned RequestsPerClient = 256;
  unsigned Workers = 8;
  int64_t MaxExtent = 24;
  double DeadlineMs = 0.0;
};

/// Deterministic per-client request order (xorshift; no global RNG so runs
/// reproduce exactly).
uint64_t nextRand(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Config;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--clients=", 10) == 0)
      Config.ClientThreads = static_cast<unsigned>(std::atoi(Argv[I] + 10));
    else if (std::strncmp(Argv[I], "--requests=", 11) == 0)
      Config.RequestsPerClient =
          static_cast<unsigned>(std::atoi(Argv[I] + 11));
    else if (std::strncmp(Argv[I], "--workers=", 10) == 0)
      Config.Workers = static_cast<unsigned>(std::atoi(Argv[I] + 10));
    else if (std::strncmp(Argv[I], "--deadline-ms=", 14) == 0)
      Config.DeadlineMs = std::atof(Argv[I] + 14);
  }

  gpu::DeviceSpec Device = gpu::makeV100();
  service::ServiceOptions Options;
  Options.NumWorkers = Config.Workers;
  Options.QueueCapacity = 4096;
  Options.MaxOutstanding = 8192;
  Options.DefaultDeadlineMs = Config.DeadlineMs;
  service::GenerationService Service(Device, Options);

  // Requests are the suite scaled to simulator-friendly extents; what the
  // bench measures is the service layer, not enumeration depth.
  const std::vector<suite::SuiteEntry> &Suite = suite::tccgSuite();
  std::vector<service::ServiceRequest> Pool;
  Pool.reserve(Suite.size());
  for (const suite::SuiteEntry &Entry : Suite) {
    service::ServiceRequest Request;
    Request.Spec = Entry.Spec;
    for (const auto &[Name, Extent] : Entry.Extents)
      Request.Extents.emplace_back(
          Name, Extent > Config.MaxExtent ? Config.MaxExtent : Extent);
    Pool.push_back(std::move(Request));
  }

  std::printf("bench_service: TCCG-%zu, %u workers, %u clients x %u "
              "requests\n",
              Pool.size(), Config.Workers, Config.ClientThreads,
              Config.RequestsPerClient);

  // Phase 1: warm the sharded cache (cold-path generation cost). Warm-up
  // latencies are collected client-side from ServiceResult::TotalMs —
  // the service itself only keeps bounded histograms, so phase slicing is
  // the caller's job now.
  Clock::time_point WarmStart = Clock::now();
  size_t WarmFailures = 0;
  std::vector<double> WarmLatencies;
  WarmLatencies.reserve(Pool.size());
  for (const service::ServiceRequest &Request : Pool) {
    ErrorOr<service::ServiceResult> Result = Service.process(Request);
    if (!Result) {
      ++WarmFailures;
      std::printf("  warm-up failure: %s\n", Result.errorMessage().c_str());
    } else {
      WarmLatencies.push_back(Result->TotalMs);
    }
  }
  double WarmMs = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            WarmStart)
                      .count();
  std::printf("  warm-up: %zu requests in %.1f ms (%zu failures, "
              "p50 %.3f ms)\n",
              Pool.size(), WarmMs, WarmFailures,
              service::GenerationService::percentileMs(WarmLatencies, 50.0));

  // Phase 2: steady-state warm-cache traffic from many client threads.
  // Each client keeps its own completion latencies; the merged vector is
  // the steady-phase percentile sample (warm-up excluded by construction).
  std::atomic<uint64_t> Completed{0}, Failed{0}, Shed{0};
  std::vector<std::vector<double>> ClientLatencies(Config.ClientThreads);
  Clock::time_point SteadyStart = Clock::now();
  std::vector<std::thread> Clients;
  Clients.reserve(Config.ClientThreads);
  for (unsigned C = 0; C < Config.ClientThreads; ++C) {
    Clients.emplace_back([&, C] {
      uint64_t Rng = 0x9e3779b97f4a7c15ull + C;
      std::vector<double> &Mine = ClientLatencies[C];
      Mine.reserve(Config.RequestsPerClient);
      for (unsigned R = 0; R < Config.RequestsPerClient; ++R) {
        const service::ServiceRequest &Request =
            Pool[nextRand(Rng) % Pool.size()];
        ErrorOr<service::ServiceResult> Result = Service.process(Request);
        if (Result) {
          Completed.fetch_add(1, std::memory_order_relaxed);
          Mine.push_back(Result->TotalMs);
        } else if (Result.errorCode() == ErrorCode::QueueFull ||
                   Result.errorCode() == ErrorCode::Overloaded) {
          Shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          Failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread &Client : Clients)
    Client.join();
  double SteadyMs = std::chrono::duration<double, std::milli>(Clock::now() -
                                                              SteadyStart)
                        .count();

  uint64_t SteadyRequests =
      static_cast<uint64_t>(Config.ClientThreads) * Config.RequestsPerClient;
  double Throughput = SteadyMs > 0.0
                          ? 1000.0 * static_cast<double>(SteadyRequests) /
                                SteadyMs
                          : 0.0;
  std::vector<double> Latencies;
  Latencies.reserve(SteadyRequests);
  for (const std::vector<double> &Mine : ClientLatencies)
    Latencies.insert(Latencies.end(), Mine.begin(), Mine.end());
  double P50 = service::GenerationService::percentileMs(Latencies, 50.0);
  double P99 = service::GenerationService::percentileMs(Latencies, 99.0);
  service::ServiceStats Stats = Service.stats();

  // The service-side histogram view of the same workload (warm-up plus
  // steady, all phases): the telemetry subsystem's answer to the exact
  // client-side percentiles above, within its documented error bound.
  support::LatencyHistogram ServiceHist =
      Service.telemetry()
          .registry()
          .histogram("service.latency-ms")
          .merged();

  std::printf("  steady: %llu requests in %.1f ms = %.0f req/s "
              "(p50 %.3f ms, p99 %.3f ms)\n",
              static_cast<unsigned long long>(SteadyRequests), SteadyMs,
              Throughput, P50, P99);
  std::printf("  stats: %llu submitted, %llu completed, %llu failed, "
              "%llu shed, %llu retries, %llu coalesced, %llu cache hits, "
              "%llu quarantined\n",
              static_cast<unsigned long long>(Stats.Submitted),
              static_cast<unsigned long long>(Stats.Completed),
              static_cast<unsigned long long>(Stats.Failed),
              static_cast<unsigned long long>(Stats.ShedQueueFull +
                                              Stats.ShedOverloaded +
                                              Stats.ShedExpired),
              static_cast<unsigned long long>(Stats.Retries),
              static_cast<unsigned long long>(Stats.Coalesced),
              static_cast<unsigned long long>(Stats.CacheHits),
              static_cast<unsigned long long>(Stats.Quarantined));

  support::JsonWriter W;
  W.beginObject();
  W.member("bench", "service");
  W.member("suite", "tccg-48");
  W.member("device", Device.Name);
  W.member("workers", static_cast<uint64_t>(Config.Workers));
  W.member("client_threads", static_cast<uint64_t>(Config.ClientThreads));
  W.member("requests_per_client",
           static_cast<uint64_t>(Config.RequestsPerClient));
  W.member("deadline_ms", Config.DeadlineMs);
  W.member("warmup_requests", static_cast<uint64_t>(Pool.size()));
  W.member("warmup_ms", WarmMs);
  W.member("warmup_failures", static_cast<uint64_t>(WarmFailures));
  W.member("steady_requests", SteadyRequests);
  W.member("steady_ms", SteadyMs);
  W.member("throughput_req_per_s", Throughput);
  W.member("latency_p50_ms", P50);
  W.member("latency_p99_ms", P99);
  // Race-prover totals across every generation this process ran (warm-up
  // plus steady; cache hits generate nothing). The TCCG suite is proven
  // race-clean, so bench_compare holds race_rejections to exactly zero
  // alongside the schema check (findings may carry benign warnings).
  uint64_t RaceFindings = 0;
  uint64_t RaceRejections = 0;
  for (const support::CounterValue &C : support::snapshotCounters()) {
    if (std::strcmp(C.Name, "race.findings") == 0)
      RaceFindings = C.Value;
    else if (std::strcmp(C.Name, "race.rejections") == 0)
      RaceRejections = C.Value;
  }
  W.member("race_findings", RaceFindings);
  W.member("race_rejections", RaceRejections);
  W.key("stats");
  W.beginObject();
  W.member("submitted", Stats.Submitted);
  W.member("completed", Stats.Completed);
  W.member("failed", Stats.Failed);
  W.member("shed_queue_full", Stats.ShedQueueFull);
  W.member("shed_overloaded", Stats.ShedOverloaded);
  W.member("shed_expired", Stats.ShedExpired);
  W.member("retries", Stats.Retries);
  W.member("coalesced", Stats.Coalesced);
  W.member("cache_hits", Stats.CacheHits);
  W.member("cache_misses", Stats.CacheMisses);
  W.member("quarantined", Stats.Quarantined);
  W.member("breaker_trips", Stats.BreakerTrips);
  W.member("breaker_resets", Stats.BreakerResets);
  W.member("deadline_degraded", Stats.DeadlineDegraded);
  W.member("deadline_expired", Stats.DeadlineExpired);
  W.endObject();
  W.key("telemetry");
  W.beginObject();
  W.member("latency_hist_count", ServiceHist.count());
  W.member("latency_hist_p50_ms", ServiceHist.quantileMs(50.0));
  W.member("latency_hist_p99_ms", ServiceHist.quantileMs(99.0));
  W.member("latency_hist_p999_ms", ServiceHist.quantileMs(99.9));
  W.member("quantile_error_bound",
           support::LatencyHistogram::quantileErrorBound());
  W.member("events_recorded", Service.telemetry().eventsRecorded());
  W.member("events_dropped", Service.telemetry().eventsDropped());
  W.endObject();
  W.endObject();
  bench::writeBenchJson(bench::benchJsonPath(Argc, Argv), W.take());

  // The headline claim the checked-in BENCH_service.json is held to:
  // >= 1000 warm-cache req/s across >= 8 client threads. Failing it here
  // keeps a regressed binary from silently refreshing the artifact.
  if (Config.ClientThreads >= 8 && Throughput < 1000.0) {
    std::printf("FAIL: warm-cache throughput %.0f req/s below the 1000 "
                "req/s floor\n",
                Throughput);
    return 1;
  }
  if (WarmFailures != 0 || Failed.load() != 0) {
    std::printf("FAIL: %zu warm-up / %llu steady requests failed\n",
                WarmFailures,
                static_cast<unsigned long long>(Failed.load()));
    return 1;
  }
  return 0;
}
