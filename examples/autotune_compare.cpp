//===- examples/autotune_compare.cpp - Model-driven vs autotuned search -----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recreates the paper's headline methodology contrast (§IV, Fig. 8) as an
/// interactive example: for one CCSD(T) contraction, (a) COGENT ranks its
/// pruned configuration space with the analytic DRAM-transaction model in
/// milliseconds, while (b) a Tensor-Comprehensions-style genetic autotuner
/// "benchmarks" 2000 candidates, which on real hardware costs hours. Prints
/// the convergence curve and the final gap.
///
//===----------------------------------------------------------------------===//

#include "baselines/TcTuner.h"
#include "core/Cogent.h"
#include "gpu/DeviceSpec.h"
#include "suite/TccgSuite.h"

#include <cstdio>

using namespace cogent;

int main() {
  gpu::DeviceSpec Device = gpu::makeV100();
  const suite::SuiteEntry &Entry = suite::suiteEntry(31); // sd2_1
  ir::Contraction TC = Entry.contraction();

  std::printf("Search-strategy comparison on %s (%s, single precision)\n\n",
              Entry.Name.c_str(), Entry.Spec.c_str());

  // (a) Model-driven: enumerate + prune + rank, no execution at all.
  core::Cogent Generator(Device);
  core::CogentOptions Options;
  Options.ElementSize = 4;
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
  if (!Result) {
    std::fprintf(stderr, "generation failed: %s\n",
                 Result.errorMessage().c_str());
    return 1;
  }
  std::printf("COGENT (model-driven)\n");
  std::printf("  candidates ranked : %llu (of %llu raw, %.0f naive)\n",
              static_cast<unsigned long long>(Result->Stats.Survivors),
              static_cast<unsigned long long>(Result->Stats.RawConfigs),
              core::Enumerator::naiveSearchSpace(TC));
  std::printf("  wall-clock        : %.1f ms\n", Result->ElapsedMs);
  std::printf("  chosen mapping    : %s\n",
              Result->best().Config.toString().c_str());
  std::printf("  predicted         : %.0f GFLOPS\n\n",
              Result->best().Predicted.Gflops);

  // (b) Genetic autotuning over the raw space, TC style.
  baselines::TcTunerOptions TunerOptions;
  baselines::TcTuneResult Tuned = baselines::tuneTc(TC, Device, TunerOptions);
  std::printf("Tensor-Comprehensions-style genetic autotuner\n");
  std::printf("  untuned schedule  : %.2f GFLOPS\n", Tuned.UntunedGflops);
  std::printf("  convergence (best GFLOPS after each generation of 100):\n");
  std::printf("    ");
  for (double Best : Tuned.BestGflopsPerGeneration)
    std::printf("%.0f ", Best);
  std::printf("\n");
  std::printf("  tuned best        : %.0f GFLOPS\n", Tuned.BestGflops);
  std::printf("  candidates run    : %llu\n",
              static_cast<unsigned long long>(Tuned.CandidatesEvaluated));
  std::printf("  modeled tuning    : %.0f s on hardware (paper: ~8514 s)\n\n",
              Tuned.ModeledTuningSeconds);

  std::printf("Bottom line: %.0fx less search time for %.2fx more "
              "performance.\n",
              Tuned.ModeledTuningSeconds * 1e3 /
                  std::max(Result->ElapsedMs, 0.1),
              Result->best().Predicted.Gflops /
                  std::max(Tuned.BestGflops, 1.0));
  return 0;
}
