//===- examples/ccsd_triples.cpp - CCSD(T) triples workload ----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload that motivates the paper: the 18 CCSD(T) triples
/// contractions from quantum chemistry (6D = 4D * 4D). For each one, this
/// example generates a kernel, verifies the chosen schedule numerically on
/// the simulator against the reference contraction at a reduced tile size,
/// and contrasts the predicted performance with the TTGT baseline — the
/// configuration where COGENT's direct approach wins big because TTGT
/// spends its time transposing the 6D output.
///
//===----------------------------------------------------------------------===//

#include "baselines/Ttgt.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <cstdio>

using namespace cogent;
using ir::Operand;

int main() {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  core::Cogent Generator(Device);

  std::printf("CCSD(T) triples contractions on the simulated %s (double "
              "precision)\n\n",
              Device.Name.c_str());
  std::printf("%-7s %-18s %38s %9s %9s %8s %10s\n", "name", "spec",
              "chosen mapping", "COGENT", "TTGT", "speedup", "verified");

  Rng Generator2(2026);
  double WorstError = 0.0;
  for (const suite::SuiteEntry &Entry :
       suite::suiteByCategory(suite::Category::CcsdT)) {
    ir::Contraction TC = Entry.contraction();
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
    if (!Result) {
      std::fprintf(stderr, "%s: %s\n", Entry.Name.c_str(),
                   Result.errorMessage().c_str());
      return 1;
    }
    baselines::TtgtEstimate Ttgt =
        baselines::estimateTtgt(TC, Device, Calib, 8);

    // Verify the chosen schedule numerically at a reduced tile size (the
    // schedule is size-generic; extents 6 keep the simulation instant).
    ir::Contraction Small = Entry.contractionScaled(6);
    core::KernelPlan Plan(Small, Result->best().Config.clampedTo(Small));
    tensor::Tensor<double> A = tensor::makeOperand<double>(Small, Operand::A);
    tensor::Tensor<double> B = tensor::makeOperand<double>(Small, Operand::B);
    A.fillRandom(Generator2);
    B.fillRandom(Generator2);
    tensor::Tensor<double> Expected =
        tensor::makeOperand<double>(Small, Operand::C);
    tensor::contractReference(Small, Expected, A, B);
    tensor::Tensor<double> Actual =
        tensor::makeOperand<double>(Small, Operand::C);
    gpu::simulateKernel(Plan, Actual, A, B);
    double Error = tensor::maxAbsDifference(Expected, Actual);
    WorstError = std::max(WorstError, Error);

    std::printf("%-7s %-18s %38s %8.0f %9.0f %7.1fx %10s\n",
                Entry.Name.c_str(), Entry.Spec.c_str(),
                Result->best().Config.toString().c_str(),
                Result->best().Predicted.Gflops, Ttgt.Gflops,
                Result->best().Predicted.Gflops / Ttgt.Gflops,
                Error < 1e-10 ? "ok" : "FAIL");
  }
  std::printf("\nWorst simulator-vs-reference error: %.3g\n", WorstError);
  std::printf("TTGT loses here because every contraction transposes a 6D "
              "output tensor that dwarfs both inputs.\n");
  return WorstError < 1e-10 ? 0 : 1;
}
