//===- examples/cogent_cli.cpp - Command-line code generator ---------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line front end mirroring the original COGENT tool's workflow:
/// feed it a contraction string and a representative size, get CUDA source
/// on stdout and the search report on stderr.
///
/// Usage:
///   cogent_cli <C-A-B spec> [uniform-extent] [--device p100|v100]
///              [--fp32] [--topk N] [--opencl] [--double-buffer]
///              [--max-configs N] [--deadline-ms X] [--max-source-bytes N]
///              [--smem-per-block N] [--transaction-bytes N]
///              [--chaos-seed N] [--chaos-sites LIST]
///              [--lint=off|warn|strict] [--explain-lint]
///              [--explain-races] [--explain-dataflow] [--pressure-ranking]
///              [--trace=FILE] [--metrics=FILE] [--quiet]
/// Examples:
///   cogent_cli abcd-aebf-dfce 72
///   cogent_cli abcdef-gdab-efgc 16 --device p100 --fp32
///   cogent_cli ij-ik-kj 4096 --opencl --double-buffer
///   cogent_cli ab-ac-cb 1024 --trace=t.json --metrics=m.json --quiet
///   cogent_cli abc-abd-dc 64 --chaos-seed 7 --chaos-sites all
///
/// --trace writes a Chrome trace-event JSON file (open it in
/// chrome://tracing or https://ui.perfetto.dev) with one span per pipeline
/// phase; --metrics writes a machine-readable summary of the run (phase
/// timings, enumeration stats, per-kernel model outputs, counter deltas);
/// --quiet suppresses the stderr report and the stdout source dump so
/// scripted runs produce only the requested files (errors still print).
///
/// --lint selects the post-emit KernelLint gate mode (strict by default:
/// sources with error findings are rejected and re-emitted/demoted);
/// --explain-lint dumps the analyzer's view of the winning kernel — the
/// parsed resource table, staging strides, barrier structure and any
/// findings — to stderr.
///
/// --explain-dataflow dumps KernelDataflow's view of the winning kernel —
/// the CFG, per-location liveness, register-pressure table, staging-buffer
/// lifetimes and barrier verdicts — to stderr. --pressure-ranking makes
/// the search rank candidates by the refined liveness-backed register
/// estimate's occupancy instead of the flat per-config one (the estimates
/// are reported in --metrics either way).
///
/// --chaos-seed/--chaos-sites arm the deterministic fault-injection layer
/// (builds configured with COGENT_CHAOS=ON, the default): --chaos-sites
/// takes "all" or a comma-separated subset of the named sites in
/// support/FaultInjection.h, and the seed makes every injected fault
/// reproducible. --smem-per-block/--transaction-bytes override those two
/// fields of the selected device — the supported way to point the pipeline
/// at a constrained (or hostile) device from a script.
///
/// Batch mode: --batch-file FILE routes requests through the resilient
/// GenerationService (worker pool, sharded plan cache, deadline
/// degradation, retry/circuit-breaker — docs/ARCHITECTURE.md §15) instead
/// of a single inline generate(). Each non-comment line of FILE is one
/// request: "<C-A-B spec> [uniform-extent]". --jobs N sets the worker
/// count (default 4), --request-deadline-ms M gives every request a
/// wall-clock budget (deadline-pressured requests degrade to cheaper
/// fallback rungs rather than failing). One summary line per request goes
/// to stderr; --quiet keeps only the final tally.
///
/// Batch-mode observability: --telemetry-json FILE writes the service's
/// telemetry snapshot (counters, gauges, latency/queue-wait histograms
/// with p50/p90/p99/p999 — service/Telemetry.h) as one JSON object after
/// the batch completes; --stats-interval-ms N prints a "# stats: {...}"
/// one-line JSON progress dump to stderr every N ms while the batch runs.
/// Both flags require --batch-file (usage error otherwise).
///
/// Exit codes: 0 = success — including runs where the plan verifier
/// rejected candidates and the fallback chain rescued the result (a
/// one-line "# notice:" marks those unless --quiet); 1 = the input was
/// rejected with a diagnostic (printed to stderr as "error: <Code>:
/// <context>: <message>", e.g. InvalidDeviceSpec for a nonsense device or
/// VerificationFailed when no fallback rung could produce a verified
/// kernel) or an output file could not be written, 2 = usage error. Batch
/// mode adds 3 = the batch ran to completion but at least one request
/// failed with a typed per-request error (exit 1 is reserved there for
/// infrastructure failures: an unreadable batch file).
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelDataflow.h"
#include "analysis/KernelLint.h"
#include "analysis/KernelRaceProver.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/DeviceSpec.h"
#include "service/GenerationService.h"
#include "support/JsonWriter.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace cogent;

static void printUsage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <C-A-B spec> [uniform-extent] "
               "[--device p100|v100] [--fp32] [--topk N] [--opencl] "
               "[--double-buffer] [--explain] [--max-configs N] "
               "[--deadline-ms X] [--max-source-bytes N] "
               "[--smem-per-block N] [--transaction-bytes N] "
               "[--chaos-seed N] [--chaos-sites LIST] "
               "[--lint=off|warn|strict] [--explain-lint] "
               "[--explain-races] [--explain-dataflow] [--pressure-ranking] "
               "[--trace=FILE] "
               "[--metrics=FILE] [--quiet]\n"
               "       %s --batch-file FILE [--jobs N] "
               "[--request-deadline-ms M] [--telemetry-json FILE] "
               "[--stats-interval-ms N] [shared flags]\n",
               Argv0, Argv0);
}

/// Writes \p Content to \p Path; false on any I/O failure.
static bool writeFileOrComplain(const std::string &Path,
                                const std::string &Content,
                                const char *What) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  bool Ok = File != nullptr;
  if (Ok) {
    Ok = std::fwrite(Content.data(), 1, Content.size(), File) ==
         Content.size();
    Ok &= std::fclose(File) == 0;
  }
  if (!Ok)
    std::fprintf(stderr, "error: cannot write %s file '%s'\n", What,
                 Path.c_str());
  return Ok;
}

/// Runs --batch-file mode: every request goes through the
/// GenerationService. Returns the process exit code (0 = every request
/// produced a verified plan, 3 = completed with typed per-request errors,
/// 1 = the batch file itself was unusable or an output file could not be
/// written).
static int runBatch(const std::string &BatchPath, const gpu::DeviceSpec &Device,
                    const core::CogentOptions &Options, unsigned Jobs,
                    double RequestDeadlineMs, bool Quiet,
                    const std::string &TelemetryJsonPath,
                    double StatsIntervalMs) {
  std::ifstream File(BatchPath);
  if (!File) {
    std::fprintf(stderr, "error: cannot read batch file '%s'\n",
                 BatchPath.c_str());
    return 1;
  }

  std::vector<service::ServiceRequest> Requests;
  std::vector<std::string> Labels;
  std::string Line;
  unsigned LineNo = 0;
  size_t BadLines = 0;
  while (std::getline(File, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string Spec;
    if (!(LS >> Spec) || Spec[0] == '#')
      continue;
    int64_t Extent = 32;
    std::string ExtentToken;
    if (LS >> ExtentToken) {
      Extent = std::atoll(ExtentToken.c_str());
      if (Extent <= 0) {
        // A malformed line is that request's typed failure, not the
        // batch's: report it, count it, keep going.
        std::fprintf(stderr, "error: line %u: %s: extent '%s' must be a "
                             "positive integer\n",
                     LineNo, errorCodeName(ErrorCode::InvalidSpec),
                     ExtentToken.c_str());
        ++BadLines;
        continue;
      }
    }
    service::ServiceRequest Request;
    Request.Spec = Spec;
    for (char C = 'a'; C <= 'z'; ++C)
      if (Spec.find(C) != std::string::npos)
        Request.Extents.emplace_back(C, Extent);
    Request.DeadlineMs = RequestDeadlineMs;
    Requests.push_back(std::move(Request));
    Labels.push_back(Spec + " " + std::to_string(Extent));
  }

  service::ServiceOptions ServiceOpts;
  ServiceOpts.NumWorkers = Jobs;
  ServiceOpts.Generation = Options;
  service::GenerationService Service(Device, ServiceOpts);

  // Periodic "# stats:" JSON lines while the batch runs. The ticker reads
  // only thread-safe snapshots; it is joined before the summary prints so
  // a dump never interleaves with the final tally.
  std::atomic<bool> TickerStop{false};
  std::thread Ticker;
  if (StatsIntervalMs > 0.0) {
    Ticker = std::thread([&] {
      while (!TickerStop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(StatsIntervalMs));
        service::ServiceStats S = Service.stats();
        support::JsonWriter W;
        W.beginObject();
        W.member("submitted", S.Submitted);
        W.member("completed", S.Completed);
        W.member("failed", S.Failed);
        W.member("shed",
                 S.ShedQueueFull + S.ShedOverloaded + S.ShedExpired);
        W.member("retries", S.Retries);
        W.member("coalesced", S.Coalesced);
        W.member("cache_hits", S.CacheHits);
        W.member("events", Service.telemetry().eventsRecorded());
        W.endObject();
        std::fprintf(stderr, "# stats: %s\n", W.take().c_str());
      }
    });
  }

  std::vector<ErrorOr<service::ServiceResult>> Results =
      Service.processBatch(Requests);

  if (Ticker.joinable()) {
    TickerStop.store(true, std::memory_order_relaxed);
    Ticker.join();
  }

  size_t Failures = BadLines;
  for (size_t I = 0; I < Results.size(); ++I) {
    if (Results[I]) {
      const service::ServiceResult &R = *Results[I];
      if (!Quiet)
        std::fprintf(stderr,
                     "# ok: %-28s fallback=%-12s cached=%d coalesced=%d "
                     "degraded=%d attempts=%u %.1f ms\n",
                     Labels[I].c_str(),
                     core::fallbackLevelName(R.Fallback), R.CacheHit ? 1 : 0,
                     R.Coalesced ? 1 : 0,
                     (R.DeadlineDegraded || R.BreakerDegraded) ? 1 : 0,
                     R.Attempts, R.TotalMs);
    } else {
      ++Failures;
      std::fprintf(stderr, "error: %s: %s\n", Labels[I].c_str(),
                   Results[I].error().renderWithCode().c_str());
    }
  }
  service::ServiceStats Stats = Service.stats();
  std::fprintf(stderr,
               "# batch: %zu requests, %zu failed | %llu completed, "
               "%llu shed, %llu retries, %llu coalesced, %llu cache hits, "
               "%llu degraded\n",
               Requests.size() + BadLines, Failures,
               static_cast<unsigned long long>(Stats.Completed),
               static_cast<unsigned long long>(Stats.ShedQueueFull +
                                               Stats.ShedOverloaded +
                                               Stats.ShedExpired),
               static_cast<unsigned long long>(Stats.Retries),
               static_cast<unsigned long long>(Stats.Coalesced),
               static_cast<unsigned long long>(Stats.CacheHits),
               static_cast<unsigned long long>(Stats.DeadlineDegraded));
  if (!TelemetryJsonPath.empty() &&
      !writeFileOrComplain(TelemetryJsonPath, Service.telemetrySnapshot(),
                           "telemetry"))
    return 1;
  return Failures == 0 ? 0 : 3;
}

/// Matches "--flag=VALUE" or the two-argument "--flag VALUE" spelling;
/// advances \p I past a consumed second argument.
static bool fileArg(const char *Flag, int Argc, char **Argv, int *I,
                    std::string *Out) {
  std::string Arg = Argv[*I];
  std::string Prefix = std::string(Flag) + "=";
  if (Arg.rfind(Prefix, 0) == 0) {
    *Out = Arg.substr(Prefix.size());
    return true;
  }
  if (Arg == Flag && *I + 1 < Argc) {
    *Out = Argv[++*I];
    return true;
  }
  return false;
}

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage(Argv[0]);
    return 2;
  }
  std::string Spec;
  int64_t Extent = 32;
  gpu::DeviceSpec Device = gpu::makeV100();
  core::CogentOptions Options;
  bool UseOpenCl = false;
  bool UseDoubleBuffer = false;
  bool Explain = false;
  bool ExplainLint = false;
  bool ExplainRaces = false;
  bool ExplainDataflow = false;
  bool Quiet = false;
  std::string TracePath;
  std::string MetricsPath;
  std::string BatchPath;
  std::string TelemetryJsonPath;
  double StatsIntervalMs = 0.0;
  bool SawStatsInterval = false;
  unsigned Jobs = 4;
  double RequestDeadlineMs = 0.0;

  // Positional arguments (the spec, then the extent) may appear anywhere
  // relative to the flags.
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--fp32") {
      Options.ElementSize = 4;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (fileArg("--trace", Argc, Argv, &I, &TracePath) ||
               fileArg("--metrics", Argc, Argv, &I, &MetricsPath) ||
               fileArg("--batch-file", Argc, Argv, &I, &BatchPath) ||
               fileArg("--telemetry-json", Argc, Argv, &I,
                       &TelemetryJsonPath)) {
      // Path captured by fileArg.
    } else if (std::string IntervalArg;
               fileArg("--stats-interval-ms", Argc, Argv, &I, &IntervalArg)) {
      StatsIntervalMs = std::atof(IntervalArg.c_str());
      SawStatsInterval = true;
      if (StatsIntervalMs <= 0.0) {
        std::fprintf(stderr,
                     "error: --stats-interval-ms must be positive\n");
        return 2;
      }
    } else if (Arg == "--jobs" && I + 1 < Argc) {
      long long N = std::atoll(Argv[++I]);
      if (N < 0) {
        std::fprintf(stderr, "error: --jobs must be non-negative\n");
        return 2;
      }
      Jobs = static_cast<unsigned>(N);
    } else if (Arg == "--request-deadline-ms" && I + 1 < Argc) {
      RequestDeadlineMs = std::atof(Argv[++I]);
    } else if (Arg == "--opencl") {
      UseOpenCl = true;
    } else if (Arg == "--double-buffer") {
      UseDoubleBuffer = true;
    } else if (Arg == "--explain") {
      Explain = true;
    } else if (Arg == "--explain-lint") {
      ExplainLint = true;
    } else if (Arg == "--explain-races") {
      ExplainRaces = true;
    } else if (Arg == "--explain-dataflow") {
      ExplainDataflow = true;
    } else if (Arg == "--pressure-ranking") {
      Options.PressureAwareRanking = true;
    } else if (std::string LintArg;
               fileArg("--lint", Argc, Argv, &I, &LintArg)) {
      std::optional<analysis::LintMode> Mode =
          analysis::lintModeFromName(LintArg);
      if (!Mode) {
        std::fprintf(stderr, "error: unknown lint mode '%s' (expected "
                             "off, warn or strict)\n",
                     LintArg.c_str());
        return 2;
      }
      Options.Lint.Mode = *Mode;
    } else if (Arg == "--device" && I + 1 < Argc) {
      std::string Name = Argv[++I];
      if (Name == "p100")
        Device = gpu::makeP100();
      else if (Name == "v100")
        Device = gpu::makeV100();
      else {
        std::fprintf(stderr, "error: unknown device '%s'\n", Name.c_str());
        return 2;
      }
    } else if (Arg == "--topk" && I + 1 < Argc) {
      Options.TopK = static_cast<size_t>(std::atoll(Argv[++I]));
    } else if (Arg == "--max-configs" && I + 1 < Argc) {
      Options.Budget.MaxConfigs = static_cast<uint64_t>(std::atoll(Argv[++I]));
    } else if (Arg == "--deadline-ms" && I + 1 < Argc) {
      Options.Budget.DeadlineMs = std::atof(Argv[++I]);
    } else if (Arg == "--max-source-bytes" && I + 1 < Argc) {
      Options.Budget.MaxSourceBytes =
          static_cast<uint64_t>(std::atoll(Argv[++I]));
    } else if (Arg == "--smem-per-block" && I + 1 < Argc) {
      Device.SharedMemPerBlock = static_cast<unsigned>(std::atoll(Argv[++I]));
    } else if (Arg == "--transaction-bytes" && I + 1 < Argc) {
      Device.TransactionBytes = static_cast<unsigned>(std::atoll(Argv[++I]));
    } else if (Arg == "--chaos-seed" && I + 1 < Argc) {
      Options.Chaos.Seed = static_cast<uint64_t>(std::atoll(Argv[++I]));
      if (Options.Chaos.Sites == 0)
        Options.Chaos.Sites = support::AllChaosSites;
    } else if (Arg == "--chaos-sites" && I + 1 < Argc) {
      std::string List = Argv[++I];
      std::optional<uint32_t> Sites = support::parseChaosSites(List);
      if (!Sites) {
        std::fprintf(stderr, "error: unknown chaos site in '%s'\n",
                     List.c_str());
        return 2;
      }
      Options.Chaos.Sites = *Sites;
    } else if (Arg[0] != '-') {
      if (Spec.empty()) {
        Spec = Arg;
      } else {
        Extent = std::atoll(Arg.c_str());
        if (Extent <= 0) {
          std::fprintf(stderr, "error: extent must be positive\n");
          return 2;
        }
      }
    } else {
      printUsage(Argv[0]);
      return 2;
    }
  }
  if (BatchPath.empty() && (!TelemetryJsonPath.empty() || SawStatsInterval)) {
    // Both flags observe the GenerationService, which only batch mode
    // drives; outside it they indicate a misassembled command line.
    std::fprintf(stderr, "error: --telemetry-json and --stats-interval-ms "
                         "require --batch-file\n");
    return 2;
  }
  if (!BatchPath.empty())
    return runBatch(BatchPath, Device, Options, Jobs, RequestDeadlineMs,
                    Quiet, TelemetryJsonPath, StatsIntervalMs);
  if (Spec.empty()) {
    printUsage(Argv[0]);
    return 2;
  }

  support::TraceSession Session;
  support::ScopedTraceActivation Activation(
      TracePath.empty() ? nullptr : &Session);
  if (!TracePath.empty())
    Options.Trace = &Session;

  double ParseMs = 0.0;
  ErrorOr<ir::Contraction> TC = [&]() {
    support::TraceSpan Span("cogent.parse");
    Span.arg("spec", Spec);
    ErrorOr<ir::Contraction> Parsed =
        ir::Contraction::parseUniform(Spec, Extent);
    ParseMs = Span.elapsedMs();
    return Parsed;
  }();
  if (!TC) {
    std::fprintf(stderr, "error: %s\n", TC.error().renderWithCode().c_str());
    return 1;
  }

  core::Cogent Generator(Device);
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  if (!Result) {
    std::fprintf(stderr, "error: %s\n",
                 Result.error().renderWithCode().c_str());
    return 1;
  }
  Result->Phases.ParseMs = ParseMs;

  if (!MetricsPath.empty()) {
    std::string Json = core::renderMetricsJson(*TC, *Result, Device);
    std::FILE *File = std::fopen(MetricsPath.c_str(), "w");
    bool Ok = File != nullptr;
    if (Ok) {
      Ok = std::fwrite(Json.data(), 1, Json.size(), File) == Json.size();
      Ok &= std::fclose(File) == 0;
    }
    if (!Ok) {
      std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                   MetricsPath.c_str());
      return 1;
    }
  }
  if (!TracePath.empty() && !Session.writeChromeTrace(TracePath)) {
    std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                 TracePath.c_str());
    return 1;
  }

  // A rescued verification failure is still a success (exit 0): the
  // verifier rejected candidates but a later attempt or fallback rung
  // produced a verified kernel. One notice line marks it for log readers.
  if (!Quiet && Result->VerifierRejections > 0)
    std::fprintf(stderr,
                 "# notice: plan verifier rejected %llu candidate(s); "
                 "rescued — emitted kernel passed verification "
                 "(fallback '%s')\n",
                 static_cast<unsigned long long>(Result->VerifierRejections),
                 core::fallbackLevelName(Result->Fallback));
  if (!Quiet && Result->LintRejections > 0)
    std::fprintf(stderr,
                 "# notice: lint gate rejected %llu emitted source(s); "
                 "rescued — emitted kernel lints clean (fallback '%s')\n",
                 static_cast<unsigned long long>(Result->LintRejections),
                 core::fallbackLevelName(Result->Fallback));
  if (!Quiet)
    for (const analysis::LintFinding &Finding : Result->LintFindings)
      std::fprintf(stderr, "# lint: %s\n", Finding.render().c_str());
  if (!Quiet) {
    std::fprintf(stderr,
                 "# %s on %s: %llu candidates -> %llu survivors in %.1f ms\n",
                 TC->toStringWithExtents().c_str(), Device.Name.c_str(),
                 static_cast<unsigned long long>(Result->Stats.RawConfigs),
                 static_cast<unsigned long long>(Result->Stats.Survivors),
                 Result->ElapsedMs);
    if (Result->Stats.truncated())
      std::fprintf(stderr,
                   "# warning: search truncated by budget (%s) after %llu of "
                   "%llu candidates; ranking is best-effort\n",
                   core::searchStatusName(Result->Stats.Status),
                   static_cast<unsigned long long>(Result->Stats.Examined),
                   static_cast<unsigned long long>(Result->Stats.RawConfigs));
    if (Result->Fallback != core::FallbackLevel::None)
      std::fprintf(stderr, "# warning: fallback level '%s' produced this "
                           "kernel (no configuration survived the search)\n",
                   core::fallbackLevelName(Result->Fallback));
    if (Result->SourceTruncated)
      std::fprintf(stderr, "# warning: emission stopped early by the source "
                           "byte budget\n");
    for (size_t I = 0; I < Result->Kernels.size(); ++I) {
      const core::GeneratedKernel &Kernel = Result->Kernels[I];
      std::fprintf(stderr,
                   "# rank %zu: %s  cost=%.3g  predicted=%.0f GFLOPS\n",
                   I + 1, Kernel.Config.toString().c_str(),
                   Kernel.Cost.total(), Kernel.Predicted.Gflops);
    }
  }
  // A TTGT-fallback kernel targets the matricized GEMM contraction, so all
  // re-planning must use that, not the original spec.
  const ir::Contraction &PlanTC =
      Result->Fallback == core::FallbackLevel::TtgtBaseline
          ? *Result->FallbackContraction
          : *TC;
  if (Explain && !Quiet)
    std::fprintf(stderr, "%s\n",
                 core::explainKernel(PlanTC, Result->best(), Device,
                                     Options.ElementSize)
                     .c_str());
  if (ExplainLint && !Quiet) {
    core::KernelPlan Plan(PlanTC, Result->best().Config);
    analysis::LintOptions LintOpts = Options.Lint;
    LintOpts.ElementSize = Options.ElementSize;
    LintOpts.TransactionBytes = Device.TransactionBytes;
    std::fprintf(stderr, "%s\n",
                 analysis::explainLint(
                     Plan, Result->best().Source.KernelSource, LintOpts)
                     .c_str());
  }
  if (ExplainRaces && !Quiet) {
    core::KernelPlan Plan(PlanTC, Result->best().Config);
    analysis::RaceProverOptions RaceOpts;
    RaceOpts.WarpSize = Device.WarpSize;
    std::fprintf(stderr, "%s\n",
                 analysis::explainRaces(
                     Plan, Result->best().Source.KernelSource, RaceOpts)
                     .c_str());
  }
  if (ExplainDataflow && !Quiet) {
    ErrorOr<analysis::KernelModel> Model =
        analysis::parseKernelSource(Result->best().Source.KernelSource);
    if (!Model) {
      std::fprintf(stderr, "error: %s\n",
                   Model.error().renderWithCode().c_str());
      return 1;
    }
    ErrorOr<analysis::DataflowInfo> Flow = analysis::buildDataflow(*Model);
    if (!Flow) {
      std::fprintf(stderr, "error: %s\n",
                   Flow.error().renderWithCode().c_str());
      return 1;
    }
    std::fprintf(stderr, "%s\n",
                 analysis::explainDataflow(*Model, *Flow).c_str());
  }
  if (UseOpenCl || UseDoubleBuffer) {
    // Re-emit the winning plan in the requested dialect/pipeline.
    core::KernelPlan Plan(PlanTC, Result->best().Config);
    core::CodeGenOptions CG;
    CG.ElementType = Options.ElementSize == 8 ? "double" : "float";
    CG.DoubleBuffer = UseDoubleBuffer;
    core::GeneratedSource Source =
        UseOpenCl ? core::emitOpenCl(Plan, CG) : core::emitCuda(Plan, CG);
    if (!Quiet)
      std::printf("%s\n%s", Source.KernelSource.c_str(),
                  Source.DriverSource.c_str());
    return 0;
  }
  if (!Quiet)
    std::printf("%s\n%s", Result->best().Source.KernelSource.c_str(),
                Result->best().Source.DriverSource.c_str());
  return 0;
}
