//===- examples/ml_contractions.cpp - Machine-learning workloads -----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tensor-times-matrix contractions of the kind that appear in Tucker
/// decompositions and tensor-network machine-learning models (the TCCG
/// suite's first family). These are small contractions where kernel-launch
/// and transposition overheads matter: the example generates COGENT kernels
/// for each, runs them functionally through the simulator against the
/// reference oracle, and compares the modeled execution time with the TTGT
/// pipeline stage by stage.
///
//===----------------------------------------------------------------------===//

#include "baselines/Ttgt.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <cstdio>

using namespace cogent;
using ir::Operand;

int main() {
  gpu::DeviceSpec Device = gpu::makeP100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  core::Cogent Generator(Device);

  std::printf("Machine-learning tensor contractions on the simulated %s\n\n",
              Device.Name.c_str());
  std::printf("%-6s %-14s %10s %13s %13s %13s %9s\n", "name", "spec",
              "COGENT ms", "TTGT total", "..transpose", "..GEMM",
              "verified");

  Rng Rand(7);
  bool AllOk = true;
  for (const suite::SuiteEntry &Entry :
       suite::suiteByCategory(suite::Category::MachineLearning)) {
    ir::Contraction TC = Entry.contraction();
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
    if (!Result) {
      std::fprintf(stderr, "%s: %s\n", Entry.Name.c_str(),
                   Result.errorMessage().c_str());
      return 1;
    }
    baselines::TtgtEstimate Ttgt =
        baselines::estimateTtgt(TC, Device, Calib, 8);

    // Functional check at reduced mode sizes.
    ir::Contraction Small = Entry.contractionScaled(8);
    core::KernelPlan Plan(Small, Result->best().Config.clampedTo(Small));
    tensor::Tensor<double> A = tensor::makeOperand<double>(Small, Operand::A);
    tensor::Tensor<double> B = tensor::makeOperand<double>(Small, Operand::B);
    A.fillRandom(Rand);
    B.fillRandom(Rand);
    tensor::Tensor<double> Expected =
        tensor::makeOperand<double>(Small, Operand::C);
    tensor::contractReference(Small, Expected, A, B);
    tensor::Tensor<double> Actual =
        tensor::makeOperand<double>(Small, Operand::C);
    gpu::simulateKernel(Plan, Actual, A, B);
    bool Ok = tensor::maxAbsDifference(Expected, Actual) < 1e-10;
    AllOk &= Ok;

    std::printf("%-6s %-14s %9.3f %12.3f %13.3f %13.3f %9s\n",
                Entry.Name.c_str(), Entry.Spec.c_str(),
                Result->best().Predicted.TimeMs, Ttgt.TimeMs,
                Ttgt.TransposeMs, Ttgt.GemmMs, Ok ? "ok" : "FAIL");
  }

  std::printf("\nAt these mode sizes a single direct kernel beats the "
              "four-stage TTGT pipeline: the GEMM itself is cheap, so the "
              "transposes and extra launches dominate TTGT's budget.\n");
  return AllOk ? 0 : 1;
}
