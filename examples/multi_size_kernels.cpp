//===- examples/multi_size_kernels.cpp - §IV-B multi-size workflow ---------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's deployment workflow for applications whose tensor sizes vary
/// at runtime (§IV-B): generate one code version per representative
/// problem size, then select the closest version when the actual size
/// arrives. Also demonstrates the §VI refinement pass that "benchmarks"
/// (simulates) the cost model's top candidates before committing.
///
//===----------------------------------------------------------------------===//

#include "core/KernelRepository.h"
#include "gpu/Autotune.h"
#include "gpu/DeviceSpec.h"

#include <cstdio>

using namespace cogent;

int main() {
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);

  // A CCSD-style contraction whose block sizes vary between tiny (debug
  // runs), medium and production.
  const char *Spec = "abcd-aebf-dfce";
  core::KernelRepository Repo(Generator, Spec);
  for (int64_t Representative : {8, 32, 128}) {
    ErrorOr<size_t> Index = Repo.addRepresentativeUniform(Representative);
    if (!Index) {
      std::fprintf(stderr, "generation failed: %s\n",
                   Index.errorMessage().c_str());
      return 1;
    }
    const core::KernelVersion &Version = Repo.version(*Index);
    std::printf("version %zu (representative extent %lld): %s -> %.0f "
                "GFLOPS predicted\n",
                *Index, static_cast<long long>(Representative),
                Version.Kernel.Config.toString().c_str(),
                Version.Kernel.Predicted.Gflops);
  }

  std::printf("\nruntime selection:\n");
  for (int64_t Actual : {6, 24, 48, 300}) {
    std::vector<std::pair<char, int64_t>> Extents;
    for (char C : {'a', 'b', 'c', 'd', 'e', 'f'})
      Extents.emplace_back(C, Actual);
    const core::KernelVersion &Chosen = Repo.selectFor(Extents);
    std::printf("  actual extent %-4lld -> version tuned for extent %lld\n",
                static_cast<long long>(Actual),
                static_cast<long long>(
                    Chosen.RepresentativeExtents.front().second));
  }

  // §VI refinement: simulate the top candidates of one generation run and
  // keep the measured winner.
  ErrorOr<ir::Contraction> TC = ir::Contraction::parseUniform(Spec, 32);
  if (!TC)
    return 1;
  core::CogentOptions Options;
  Options.TopK = 6;
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  if (!Result)
    return 1;
  gpu::RefinementResult Refined = gpu::refineTopKBySimulation(
      *TC, *Result, Device, 8, /*MeasureExtent=*/10);

  std::printf("\nsimulation-refined top-%zu for extent 32:\n",
              Result->Kernels.size());
  for (const gpu::MeasuredCandidate &Candidate : Refined.Candidates)
    std::printf("  rank %zu: measured %.1f GFLOPS (%llu exact "
                "transactions)%s\n",
                Candidate.KernelIndex + 1, Candidate.MeasuredGflops,
                static_cast<unsigned long long>(Candidate.ExactTransactions),
                Candidate.KernelIndex == Refined.WinnerIndex ? "  <= winner"
                                                             : "");
  std::printf("cost-model pick %s by measurement\n",
              Refined.ModelPickConfirmed ? "confirmed" : "overturned");
  return 0;
}
