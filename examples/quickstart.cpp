//===- examples/quickstart.cpp - Five-minute tour of the API ---------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest useful COGENT program: describe a tensor contraction (the
/// paper's Eq. 1), pick a target GPU, and generate a CUDA kernel. Prints
/// the model-chosen mapping, the predicted performance, and the generated
/// source.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "gpu/DeviceSpec.h"

#include <cstdio>

using namespace cogent;

int main() {
  // Eq. 1 of the paper: C[a,b,c,d] = sum_{e,f} A[a,e,b,f] * B[d,f,c,e].
  // Notation is "C-A-B"; extents are a *representative* problem size used
  // for performance modeling — the generated kernel runs for any size.
  const char *Spec = "abcd-aebf-dfce";
  std::vector<std::pair<char, int64_t>> Extents = {
      {'a', 72}, {'b', 72}, {'c', 72}, {'d', 72}, {'e', 72}, {'f', 72}};

  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(Spec, Extents);
  if (!Result) {
    std::fprintf(stderr, "generation failed: %s\n",
                 Result.errorMessage().c_str());
    return 1;
  }

  const core::GeneratedKernel &Best = Result->best();
  std::printf("Contraction      : %s\n", Spec);
  std::printf("Chosen mapping   : %s\n", Best.Config.toString().c_str());
  std::printf("Thread block     : %lld x %lld threads, %lld x %lld register "
              "tile\n",
              static_cast<long long>(Best.Config.tbxSize()),
              static_cast<long long>(Best.Config.tbySize()),
              static_cast<long long>(Best.Config.regXSize()),
              static_cast<long long>(Best.Config.regYSize()));
  std::printf("Shared memory    : %lld bytes/block\n",
              static_cast<long long>(Best.Config.smemBytes(8)));
  std::printf("Occupancy        : %.1f%% (%u blocks/SM, limited by %s)\n",
              100.0 * Best.Occupancy.Occupancy, Best.Occupancy.BlocksPerSM,
              Best.Occupancy.Limiter);
  std::printf("Modeled traffic  : %.3g DRAM transactions\n",
              Best.Cost.total());
  std::printf("Predicted perf   : %.0f GFLOPS (%s bound) on V100\n",
              Best.Predicted.Gflops, Best.Predicted.Bound);
  std::printf("Search statistics: %llu candidate configs, %llu survived "
              "pruning, ranked in %.1f ms\n\n",
              static_cast<unsigned long long>(Result->Stats.RawConfigs),
              static_cast<unsigned long long>(Result->Stats.Survivors),
              Result->ElapsedMs);

  std::printf("---------------- generated CUDA ----------------\n%s\n%s",
              Best.Source.KernelSource.c_str(),
              Best.Source.DriverSource.c_str());
  return 0;
}
