//===- examples/triples_pipeline.cpp - A CCSD(T)-style mini-application ----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application pattern that motivates the paper: NWChem's perturbative
/// triples correction evaluates a sum of 6D = 4D * 4D contractions into a
/// shared T3 residual, then reduces T3 against a denominator tensor into a
/// scalar energy. This mini-app runs the full pipeline at a reduced tile
/// size through COGENT-generated schedules on the simulator, accumulating
/// all nine SD2 contraction terms, and cross-checks the final "energy"
/// against the same pipeline computed with the reference contraction.
///
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <cmath>
#include <cstdio>

using namespace cogent;
using ir::Operand;

int main() {
  constexpr int64_t Tile = 6; // reduced NWChem tile size for the demo
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);
  Rng Rand(1234);

  // T3 accumulators: one filled by generated kernels, one by the oracle.
  std::vector<suite::SuiteEntry> Terms = suite::sd2Set();
  ir::Contraction First = Terms.front().contractionScaled(Tile);
  tensor::Tensor<double> T3 = tensor::makeOperand<double>(First, Operand::C);
  tensor::Tensor<double> T3Ref =
      tensor::makeOperand<double>(First, Operand::C);
  std::vector<double> T3Sum(static_cast<size_t>(T3.numElements()), 0.0);
  std::vector<double> T3RefSum(T3Sum.size(), 0.0);

  std::printf("CCSD(T)-style triples pipeline, tile size %lld, %zu "
              "contraction terms\n\n",
              static_cast<long long>(Tile), Terms.size());

  double TotalPredictedMs = 0.0;
  uint64_t TotalTransactions = 0;
  for (const suite::SuiteEntry &Entry : Terms) {
    ir::Contraction TC = Entry.contractionScaled(Tile);
    ErrorOr<core::GenerationResult> Result = Generator.generate(
        TC, [] {
          core::CogentOptions Options;
          Options.Enumeration.MinThreadBlocks = 1;
          Options.Enumeration.MinOccupancy = 0.0;
          return Options;
        }());
    if (!Result) {
      std::fprintf(stderr, "%s: %s\n", Entry.Name.c_str(),
                   Result.errorMessage().c_str());
      return 1;
    }

    tensor::Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
    tensor::Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
    A.fillRandom(Rand);
    B.fillRandom(Rand);

    core::KernelPlan Plan(TC, Result->best().Config);
    gpu::SimResult Sim = gpu::simulateKernel(Plan, T3, A, B);
    tensor::contractReference(TC, T3Ref, A, B);
    for (size_t I = 0; I < T3Sum.size(); ++I) {
      T3Sum[I] += T3.at(static_cast<int64_t>(I));
      T3RefSum[I] += T3Ref.at(static_cast<int64_t>(I));
    }
    TotalTransactions += Sim.totalTransactions();
    TotalPredictedMs += Result->best().Predicted.TimeMs;
    std::printf("  %-7s %-18s  %-42s\n", Entry.Name.c_str(),
                Entry.Spec.c_str(), Result->best().Config.toString().c_str());
  }

  // Energy-style reduction: E = sum T3^2 / (1 + |denominator|), with a
  // synthetic denominator standing in for the orbital-energy differences.
  double Energy = 0.0, EnergyRef = 0.0;
  for (size_t I = 0; I < T3Sum.size(); ++I) {
    double Denominator = 1.0 + 0.25 * static_cast<double>(I % 17);
    Energy += T3Sum[I] * T3Sum[I] / Denominator;
    EnergyRef += T3RefSum[I] * T3RefSum[I] / Denominator;
  }

  std::printf("\npipeline 'energy'      : %.12f\n", Energy);
  std::printf("reference 'energy'     : %.12f\n", EnergyRef);
  std::printf("relative error         : %.3g\n",
              std::abs(Energy - EnergyRef) / std::abs(EnergyRef));
  std::printf("simulated transactions : %llu\n",
              static_cast<unsigned long long>(TotalTransactions));
  std::printf("predicted GPU time     : %.3f ms for all %zu terms at the "
              "representative size\n",
              TotalPredictedMs, Terms.size());

  return std::abs(Energy - EnergyRef) / std::abs(EnergyRef) < 1e-12 ? 0 : 1;
}
