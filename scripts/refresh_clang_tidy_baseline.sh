#!/bin/sh
# Regenerates scripts/clang_tidy_baseline.txt — the checked-in baseline
# the enforced static-analysis lane in scripts/run_all.sh compares fresh
# clang-tidy findings against. Run this from the repo root after
# deliberately accepting new findings (or after fixing baselined ones, to
# shrink the file); review the diff before committing, since every line
# added here is a finding the lane will stop reporting.
#
# Uses the exact same normalization pipeline as run_all.sh: repo-relative
# paths, line:column numbers stripped (pure line drift cannot churn the
# baseline), sort -u to collapse findings repeated across translation
# units.
set -eu

cd "$(dirname "$0")/.."
TIDY_BASELINE=scripts/clang_tidy_baseline.txt

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "refresh_clang_tidy_baseline: clang-tidy not installed" >&2
  exit 1
fi
if [ ! -f build/compile_commands.json ]; then
  echo "refresh_clang_tidy_baseline: build/compile_commands.json missing" >&2
  echo "  (configure first: cmake -S . -B build)" >&2
  exit 1
fi

find src -name '*.cpp' -print0 \
  | xargs -0 clang-tidy -p build --quiet 2>&1 | tee lint_output.txt || true
grep -E '(warning|error):' lint_output.txt \
  | sed -E "s|^$(pwd)/||; s|^([^:]+):[0-9]+:[0-9]+:|\1:|" \
  | sort -u > lint_findings.txt || true

# Preserve the baseline's leading comment block, then splice in the
# freshly normalized findings.
{
  grep -E '^#' "$TIDY_BASELINE" 2>/dev/null || true
  cat lint_findings.txt
} > "$TIDY_BASELINE.tmp"
mv "$TIDY_BASELINE.tmp" "$TIDY_BASELINE"
rm -f lint_output.txt lint_findings.txt

count=$(grep -cvE '^#|^$' "$TIDY_BASELINE" || true)
echo "refresh_clang_tidy_baseline: wrote $count finding(s) to $TIDY_BASELINE"
