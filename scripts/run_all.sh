#!/usr/bin/env bash
# Builds everything, runs the full test suite and every benchmark harness,
# and records the outputs the artifact appendix describes: test_output.txt,
# asan_output.txt, bench_output.txt plus the machine-readable
# bench_output.json (aggregated from each harness's per-figure JSON) and a
# --trace/--metrics smoke run whose artifacts are validated with the
# repo's own json_lint.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when configuring a tree from scratch, but never force a
# generator onto an already-configured build directory (CMake errors out
# if the generators differ).
GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi
configure() {
  local dir="$1"; shift
  if [ -f "$dir/CMakeCache.txt" ]; then
    cmake -B "$dir" "$@"
  else
    cmake -B "$dir" "${GENERATOR_ARGS[@]}" "$@"
  fi
}

configure build
cmake --build build

# Static-analysis lane: clang-tidy over the library sources against the
# compile_commands.json the build exported (.clang-tidy pins the check
# set). Skips gracefully when clang-tidy isn't installed — the tree must
# stay buildable in minimal containers — but where the tool exists the
# lane is ENFORCED against scripts/clang_tidy_baseline.txt: findings are
# normalized (line/column numbers stripped so pure line drift cannot
# churn the file) and any finding not present in the checked-in baseline
# fails the script. Fixing a baselined finding prints a reminder to
# shrink the baseline but does not fail.
TIDY_BASELINE=scripts/clang_tidy_baseline.txt
if command -v clang-tidy >/dev/null 2>&1 && [ -f build/compile_commands.json ]; then
  find src -name '*.cpp' -print0 \
    | xargs -0 clang-tidy -p build --quiet 2>&1 | tee lint_output.txt || true
  # Normalize to "file: severity: message [check]" with repo-relative
  # paths; sort -u collapses findings repeated across translation units.
  grep -E '(warning|error):' lint_output.txt \
    | sed -E "s|^$(pwd)/||; s|^([^:]+):[0-9]+:[0-9]+:|\1:|" \
    | sort -u > lint_findings.txt || true
  grep -vE '^#|^$' "$TIDY_BASELINE" | sort -u > lint_baseline.txt || true
  if new_findings=$(comm -13 lint_baseline.txt lint_findings.txt) \
      && [ -n "$new_findings" ]; then
    echo "clang-tidy lane: NEW findings not in $TIDY_BASELINE:"
    echo "$new_findings"
    exit 1
  fi
  if fixed=$(comm -23 lint_baseline.txt lint_findings.txt) && [ -n "$fixed" ]; then
    echo "clang-tidy lane: baselined findings no longer reported (consider removing from $TIDY_BASELINE):"
    echo "$fixed"
  fi
  rm -f lint_baseline.txt
  echo "clang-tidy lane: clean against baseline"
else
  echo "clang-tidy lane: skipped (clang-tidy or compile_commands.json missing)"
fi

# Fast lane first: the tier1 label excludes the long fuzz / full-scale
# sweeps, so structural breakage surfaces in seconds. (The CFG/liveness
# suite also carries its own "dataflow" label — `ctest -L dataflow` runs
# just that test during analysis work; it is already part of tier1.)
ctest --test-dir build -L tier1 --output-on-failure 2>&1 | tee test_output.txt
# ...then the chaos lane: the deterministic fault-injection sweeps
# (seed x site). The lane only exists when COGENT_CHAOS is ON, so skip
# it when empty rather than letting ctest fail on "no tests found" —
# but never mask a real chaos test failure.
if ctest --test-dir build -L chaos -N | grep -q "Total Tests: [1-9]"; then
  ctest --test-dir build -L chaos --output-on-failure 2>&1 \
    | tee chaos_output.txt
fi
# ...then the full suite (slow tests included) for the record.
ctest --test-dir build 2>&1 | tee -a test_output.txt

# Fuzz smoke test under AddressSanitizer + UBSan: the whole-pipeline fuzz
# harness re-runs in an instrumented tree so memory errors and signed
# overflow surface even when the uninstrumented asserts stay quiet.
configure build-asan -DCOGENT_SANITIZE=address
cmake --build build-asan --target test_fuzz_pipeline
ctest --test-dir build-asan -R test_fuzz_pipeline --output-on-failure \
  2>&1 | tee asan_output.txt

# ThreadSanitizer lane for the concurrent service layer: the worker pool,
# sharded cache, telemetry registry and counter scopes re-run instrumented
# so cross-thread ordering bugs surface as TSan reports instead of flaky
# tests. Skips gracefully when the toolchain cannot link TSan binaries
# (minimal containers ship no libtsan) — probe first, never half-fail.
if echo 'int main(){return 0;}' > /tmp/tsan_probe.cpp \
    && c++ -fsanitize=thread /tmp/tsan_probe.cpp -o /tmp/tsan_probe \
       >/dev/null 2>&1; then
  rm -f /tmp/tsan_probe /tmp/tsan_probe.cpp
  configure build-tsan -DCOGENT_SANITIZE=thread
  cmake --build build-tsan --target test_service test_service_chaos \
    test_telemetry 2>/dev/null \
    || cmake --build build-tsan --target test_service test_telemetry
  ctest --test-dir build-tsan -R 'test_service|test_telemetry' \
    --output-on-failure 2>&1 | tee tsan_output.txt
  echo "tsan lane: service tests clean under ThreadSanitizer"
else
  rm -f /tmp/tsan_probe /tmp/tsan_probe.cpp
  echo "tsan lane: skipped (toolchain cannot link -fsanitize=thread)"
fi

JSON_LINT=build/tools/json_lint

# Observability smoke: one CLI run must produce well-formed trace and
# metrics JSON; json_lint exits non-zero (failing the script) otherwise.
rm -rf smoke_artifacts && mkdir -p smoke_artifacts
build/examples/cogent_cli "ab-ac-cb" 512 --quiet \
  --trace=smoke_artifacts/trace.json --metrics=smoke_artifacts/metrics.json
"$JSON_LINT" smoke_artifacts/trace.json smoke_artifacts/metrics.json

# Telemetry smoke: a batch run must produce a well-formed registry
# snapshot (--telemetry-json) — counters, gauges, and the latency
# histograms with their quantile summaries — validated with json_lint
# like every other artifact.
cat > smoke_artifacts/telemetry_batch.txt <<'EOF'
ab-ac-cb 24
abc-abd-dc 12
ab-ac-cb 24
EOF
build/examples/cogent_cli --batch-file smoke_artifacts/telemetry_batch.txt \
  --jobs 2 --quiet --telemetry-json smoke_artifacts/telemetry.json
"$JSON_LINT" smoke_artifacts/telemetry.json
echo "telemetry smoke: snapshot validated"

# Each bench harness writes its own <name>.json next to the text output;
# run them from a scratch directory, validate every artifact, then
# aggregate into one bench_output.json keyed by harness name.
rm -rf bench_artifacts && mkdir -p bench_artifacts
: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    name=$(basename "$b")
    echo "==== $b ====" | tee -a bench_output.txt
    (cd bench_artifacts && "../$b") 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done

# Bounded chaos CLI sweep: drive the real binary through a deterministic
# all-sites seed sweep. Every run must exit 0 — the plan verifier either
# accepts the ranked plan or the fallback chain rescues the run — and
# must emit well-formed metrics JSON. The per-seed metrics are validated
# with json_lint and folded into bench_artifacts/ so they land in
# bench_output.json under the "chaos_sweep" key.
rm -rf chaos_artifacts && mkdir -p chaos_artifacts
for seed in 1 2 3 4 5 6 7 8; do
  build/examples/cogent_cli "abc-abd-dc" 24 --quiet \
    --chaos-seed "$seed" --chaos-sites all \
    --metrics="chaos_artifacts/seed_${seed}.json"
done
"$JSON_LINT" chaos_artifacts/*.json
{
  printf '{'
  first=1
  for f in chaos_artifacts/seed_*.json; do
    seed=$(basename "$f" .json)
    if [ "$first" -eq 1 ]; then first=0; else printf ','; fi
    printf '"%s":' "$seed"
    cat "$f"
  done
  printf '}'
} > bench_artifacts/chaos_sweep.json
"$JSON_LINT" bench_artifacts/chaos_sweep.json
echo "chaos sweep: 8 seeds, all sites, artifacts validated"

# Service chaos lane: the same storm aimed at the resilient batch path.
# A deterministic seed sweep drives cogent_cli --batch-file (worker pool,
# sharded cache, retries, deadline degradation) with every fault site
# armed. The contract is weaker than the single-shot sweep on purpose:
# exit 0 (every request produced a verified plan) or exit 3 (the batch
# completed with typed per-request errors) are both resilient outcomes;
# anything else — a hang, a crash, exit 1/2 — fails the script.
cat > chaos_artifacts/service_batch.txt <<'EOF'
# service chaos lane workload: small TCCG-shaped mix, one duplicate to
# exercise coalescing/cache sharing under fire.
ab-ac-cb 24
abc-abd-dc 12
ab-ac-cb 24
ij-ik-kj 24
abcd-aebf-dfce 8
EOF
for seed in 1 2 3 4 5 6 7 8; do
  rc=0
  build/examples/cogent_cli --batch-file chaos_artifacts/service_batch.txt \
    --jobs 4 --request-deadline-ms 250 --quiet \
    --chaos-seed "$seed" --chaos-sites all || rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
    echo "service chaos lane: seed $seed exited $rc (expected 0 or 3)"
    exit 1
  fi
done
echo "service chaos lane: 8 seeds, all sites, batch exit codes in {0,3}"

if compgen -G "bench_artifacts/*.json" >/dev/null; then
  "$JSON_LINT" bench_artifacts/*.json
  {
    printf '{'
    first=1
    for f in bench_artifacts/*.json; do
      name=$(basename "$f" .json)
      if [ "$first" -eq 1 ]; then first=0; else printf ','; fi
      printf '"%s":' "$name"
      cat "$f"
    done
    printf '}'
  } > bench_output.json
  "$JSON_LINT" bench_output.json
  echo "aggregated $(ls bench_artifacts/*.json | wc -l) reports into bench_output.json"
fi

# Perf-regression gate: diff this run's bench_service report against the
# checked-in BENCH_service.json BEFORE the refresh below overwrites it.
# Schema validation always runs (structure + conservation law on both
# reports); the throughput/latency comparison only runs on machines with
# enough cores for the headline numbers to be meaningful — shared/small
# CI boxes would flag phantom regressions. Tolerance is deliberately
# loose (run-to-run variance on a simulator-backed service is real) and
# overridable: COGENT_PERF_TOLERANCE is the allowed relative slip
# (default 0.5 = 50%).
BENCH_COMPARE=build/tools/bench_compare
PERF_TOLERANCE="${COGENT_PERF_TOLERANCE:-0.5}"
if [ -x "$BENCH_COMPARE" ] && [ -f BENCH_service.json ]; then
  "$BENCH_COMPARE" --schema BENCH_service.json
  if [ -f bench_artifacts/bench_service.json ]; then
    "$BENCH_COMPARE" --schema bench_artifacts/bench_service.json
    cores=$(nproc 2>/dev/null || echo 0)
    if [ "$cores" -ge 8 ]; then
      "$BENCH_COMPARE" --fresh bench_artifacts/bench_service.json \
        --baseline BENCH_service.json --tolerance "$PERF_TOLERANCE" \
        --throughput-floor 1000
      echo "perf gate: fresh report within ${PERF_TOLERANCE} of baseline"
    else
      echo "perf gate: comparison skipped ($cores cores < 8; schema-only)"
    fi
  fi
fi

# The service throughput report is a checked-in artifact: refresh the
# repo-root copy from this run so BENCH_service.json always reflects the
# tree it sits in. (bench_service itself enforces the >= 1000 req/s
# warm-cache floor and exits non-zero below it, failing the bench loop
# above before we ever get here.)
if [ -f bench_artifacts/bench_service.json ]; then
  "$JSON_LINT" bench_artifacts/bench_service.json
  cp bench_artifacts/bench_service.json BENCH_service.json
  echo "refreshed BENCH_service.json from this run"
fi
