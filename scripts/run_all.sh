#!/usr/bin/env bash
# Builds everything, runs the full test suite and every benchmark harness,
# and records the outputs the artifact appendix describes.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Fuzz smoke test under AddressSanitizer + UBSan: the whole-pipeline fuzz
# harness re-runs in an instrumented tree so memory errors and signed
# overflow surface even when the uninstrumented asserts stay quiet.
cmake -B build-asan -G Ninja -DCOGENT_SANITIZE=ON
cmake --build build-asan --target test_fuzz_pipeline
ctest --test-dir build-asan -R test_fuzz_pipeline --output-on-failure \
  2>&1 | tee asan_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "==== $b ====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done
