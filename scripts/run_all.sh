#!/usr/bin/env bash
# Builds everything, runs the full test suite and every benchmark harness,
# and records the outputs the artifact appendix describes.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "==== $b ====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done
