//===- analysis/KernelDataflow.cpp - CFG + liveness over emitted kernels --===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelDataflow.h"

#include "support/Counters.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

using namespace cogent;
using namespace cogent::analysis;

namespace {

COGENT_COUNTER(NumDataflowBuilds, "dataflow.kernels-analyzed",
               "Kernel models run through the dataflow solvers");
COGENT_COUNTER(NumDeadDefsFound, "dataflow.dead-stores",
               "Dead definitions detected across all dataflow runs");
COGENT_COUNTER(NumRedundantBarriersFound, "dataflow.redundant-barriers",
               "Redundant barriers detected across all dataflow runs");

/// Thread/block builtins of both dialects: implicitly defined at entry.
constexpr const char *Builtins[] = {
    "threadIdx.x",      "threadIdx.y",      "threadIdx.z",
    "blockIdx.x",       "blockIdx.y",       "blockIdx.z",
    "blockDim.x",       "blockDim.y",       "blockDim.z",
    "gridDim.x",        "gridDim.y",        "gridDim.z",
    "get_local_id(0)",  "get_local_id(1)",  "get_local_id(2)",
    "get_group_id(0)",  "get_group_id(1)",  "get_group_id(2)",
    "get_local_size(0)", "get_local_size(1)", "get_local_size(2)",
    "get_num_groups(0)", "get_num_groups(1)", "get_num_groups(2)",
    "get_global_id(0)", "get_global_id(1)", "get_global_id(2)",
};

/// 32-bit registers one value of declared type \p Type occupies.
unsigned widthOfType(const std::string &Type) {
  if (Type.find("long") != std::string::npos ||
      Type.find("double") != std::string::npos)
    return 2;
  return 1; // int / unsigned / bool / float
}

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

struct CfgBuilder {
  const KernelModel &M;
  DataflowInfo &Info;
  std::unordered_map<std::string, unsigned> LocIndex;
  Env DefineEnv;
  unsigned Cur = 0;

  CfgBuilder(const KernelModel &Model, DataflowInfo &Out)
      : M(Model), Info(Out) {
    for (const auto &[Name, Value] : M.Defines)
      DefineEnv[Name] = Value;
  }

  unsigned newBlock(std::string Label) {
    Info.Blocks.emplace_back();
    Info.Blocks.back().Label = std::move(Label);
    return static_cast<unsigned>(Info.Blocks.size() - 1);
  }

  void edge(unsigned From, unsigned To) {
    Info.Blocks[From].Succs.push_back(To);
    Info.Blocks[To].Preds.push_back(From);
  }

  unsigned makeLoc(const std::string &Name, LocSpace Space, unsigned Width,
                   int64_t Elements, bool Implicit) {
    auto It = LocIndex.find(Name);
    if (It != LocIndex.end())
      return It->second;
    unsigned Id = static_cast<unsigned>(Info.Locations.size());
    Info.Locations.push_back({Name, Space, Width, Elements, Implicit});
    LocIndex.emplace(Name, Id);
    return Id;
  }

  unsigned scalarLoc(const std::string &Name) {
    return makeLoc(Name, LocSpace::Scalar, 1, 1, false);
  }

  /// The location for an array base name: declared shared/register arrays
  /// keep their space; anything else is a global pointer parameter.
  unsigned arrayLoc(const std::string &Name) {
    auto It = LocIndex.find(Name);
    if (It != LocIndex.end())
      return It->second;
    return makeLoc(Name, LocSpace::GlobalArray, widthOfType(M.ElementType),
                   0, /*Implicit=*/true);
  }

  void emitUse(unsigned Loc, unsigned Line) {
    Info.Blocks[Cur].Events.push_back({Loc, AccessKind::Use, Line, ~0u});
  }

  void emitDef(unsigned Loc, unsigned Line, AccessKind Kind) {
    unsigned Id = static_cast<unsigned>(Info.Defs.size());
    Info.Defs.push_back({Loc, Line, Kind, false, {}});
    Info.Blocks[Cur].Events.push_back({Loc, Kind, Line, Id});
  }

  void usesInExpr(const Expr &E, unsigned Line) {
    if (E.Kind == ExprKind::Var) {
      emitUse(scalarLoc(E.Name), Line);
      return;
    }
    if (E.Kind == ExprKind::Index) {
      emitUse(arrayLoc(E.Name), Line);
      for (const Expr &Kid : E.Kids)
        usesInExpr(Kid, Line);
      return;
    }
    for (const Expr &Kid : E.Kids)
      usesInExpr(Kid, Line);
  }

  /// Loop variables lose their declared type in parsing; infer the width
  /// from the operands of the init and bound expressions.
  unsigned loopVarWidth(const Stmt &S) {
    unsigned Width = 1;
    std::vector<std::string> Names;
    collectVars(S.LoopInit, Names);
    collectVars(S.LoopBound, Names);
    for (const std::string &Name : Names) {
      auto It = LocIndex.find(Name);
      if (It != LocIndex.end())
        Width = std::max(Width, Info.Locations[It->second].Width);
    }
    return Width;
  }

  void seedEntry() {
    Cur = newBlock("entry");
    for (const auto &[Name, Value] : M.Defines) {
      (void)Value;
      emitDef(makeLoc(Name, LocSpace::Scalar, 1, 1, true), 0,
              AccessKind::Def);
    }
    for (const std::string &Name : M.ExtentParams)
      emitDef(makeLoc(Name, LocSpace::Scalar, 2, 1, true), 0,
              AccessKind::Def);
    for (const char *Name : Builtins)
      emitDef(makeLoc(Name, LocSpace::Scalar, 1, 1, true), 0,
              AccessKind::Def);

    unsigned ElemWidth = widthOfType(M.ElementType);
    auto declareArray = [&](const Stmt &S, LocSpace Space) {
      int64_t Elements = evalExpr(S.Value, DefineEnv).value_or(0);
      unsigned Width = S.Type.empty() ? ElemWidth : widthOfType(S.Type);
      makeLoc(S.Name, Space, Width, Elements, false);
    };
    for (const Stmt &S : M.SharedDecls)
      declareArray(S, LocSpace::SharedArray);
    for (const Stmt &S : M.RegisterDecls)
      declareArray(S, LocSpace::RegisterArray);
  }

  void walk(const std::vector<Stmt> &Body) {
    for (const Stmt &S : Body)
      walkStmt(S);
  }

  void walkStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Decl: {
      usesInExpr(S.Value, S.Line);
      unsigned Loc = scalarLoc(S.Name);
      Info.Locations[Loc].Width =
          std::max(Info.Locations[Loc].Width, widthOfType(S.Type));
      emitDef(Loc, S.Line, AccessKind::Def);
      break;
    }
    case StmtKind::Assign:
      usesInExpr(S.Value, S.Line);
      emitDef(scalarLoc(S.Name), S.Line, AccessKind::Def);
      break;
    case StmtKind::CompoundMul:
    case StmtKind::CompoundDiv: {
      usesInExpr(S.Value, S.Line);
      unsigned Loc = scalarLoc(S.Name);
      emitUse(Loc, S.Line);
      emitDef(Loc, S.Line, AccessKind::Def);
      break;
    }
    case StmtKind::ArrayStore: {
      usesInExpr(S.Index, S.Line);
      usesInExpr(S.Value, S.Line);
      unsigned Loc = arrayLoc(S.Name);
      if (S.Accumulate)
        emitUse(Loc, S.Line);
      emitDef(Loc, S.Line, AccessKind::MayDef);
      break;
    }
    case StmtKind::ArrayDecl: {
      // Body-level array declaration (top-level ones were seeded).
      int64_t Elements = evalExpr(S.Value, DefineEnv).value_or(0);
      LocSpace Space =
          S.Shared ? LocSpace::SharedArray : LocSpace::RegisterArray;
      makeLoc(S.Name, Space,
              S.Type.empty() ? widthOfType(M.ElementType)
                             : widthOfType(S.Type),
              Elements, false);
      break;
    }
    case StmtKind::Barrier: {
      Info.Blocks[Cur].EndsWithBarrier = true;
      Info.Blocks[Cur].BarrierLine = S.Line;
      unsigned Next = newBlock("barrier:" + std::to_string(S.Line));
      edge(Cur, Next);
      Cur = Next;
      break;
    }
    case StmtKind::Loop: {
      usesInExpr(S.LoopInit, S.Line);
      unsigned LV = scalarLoc(S.LoopVar);
      Info.Locations[LV].Width =
          std::max(Info.Locations[LV].Width, loopVarWidth(S));
      emitDef(LV, S.Line, AccessKind::Def);
      unsigned Header = newBlock("loop-header:" + S.LoopVar);
      edge(Cur, Header);
      Cur = Header;
      emitUse(LV, S.Line);
      usesInExpr(S.LoopBound, S.Line);
      unsigned BodyB = newBlock("loop-body:" + S.LoopVar);
      edge(Header, BodyB);
      Cur = BodyB;
      walk(S.Body);
      // Latch: the increment reads and rewrites the induction variable,
      // then branches back to the header.
      usesInExpr(S.LoopStep, S.Line);
      emitUse(LV, S.Line);
      emitDef(LV, S.Line, AccessKind::Def);
      edge(Cur, Header);
      unsigned Exit = newBlock("loop-exit:" + S.LoopVar);
      edge(Header, Exit); // Zero-trip bypass and normal exit.
      Cur = Exit;
      break;
    }
    case StmtKind::If: {
      usesInExpr(S.Value, S.Line);
      unsigned From = Cur;
      unsigned Then = newBlock("then:" + std::to_string(S.Line));
      edge(From, Then);
      Cur = Then;
      walk(S.Body);
      unsigned Join = newBlock("join:" + std::to_string(S.Line));
      edge(From, Join); // Fall-through: the schema has no else branch.
      edge(Cur, Join);
      Cur = Join;
      break;
    }
    case StmtKind::Block:
      walk(S.Body);
      break;
    }
  }
};

//===----------------------------------------------------------------------===//
// Liveness (backward, location-granular)
//===----------------------------------------------------------------------===//

void solveLiveness(DataflowInfo &Info) {
  size_t NB = Info.Blocks.size(), NL = Info.Locations.size();
  std::vector<std::vector<bool>> UpUse(NB), StrongDef(NB);
  std::vector<bool> ExitLive(NL, false);
  for (unsigned L = 0; L < NL; ++L)
    ExitLive[L] = Info.Locations[L].Space == LocSpace::GlobalArray;

  for (unsigned B = 0; B < NB; ++B) {
    UpUse[B].assign(NL, false);
    StrongDef[B].assign(NL, false);
    for (const Access &E : Info.Blocks[B].Events) {
      if (E.Kind == AccessKind::Use) {
        if (!StrongDef[B][E.Loc])
          UpUse[B][E.Loc] = true;
      } else if (E.Kind == AccessKind::Def) {
        StrongDef[B][E.Loc] = true;
      } // MayDef neither uses nor kills.
    }
  }

  Info.LiveIn.assign(NB, std::vector<bool>(NL, false));
  Info.LiveOut.assign(NB, std::vector<bool>(NL, false));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = NB; B-- > 0;) {
      std::vector<bool> Out(NL, false);
      if (Info.Blocks[B].Succs.empty()) {
        Out = ExitLive;
      } else {
        for (unsigned S : Info.Blocks[B].Succs)
          for (unsigned L = 0; L < NL; ++L)
            if (Info.LiveIn[S][L])
              Out[L] = true;
      }
      std::vector<bool> In(NL);
      for (unsigned L = 0; L < NL; ++L)
        In[L] = UpUse[B][L] || (Out[L] && !StrongDef[B][L]);
      if (Out != Info.LiveOut[B] || In != Info.LiveIn[B]) {
        Info.LiveOut[B] = std::move(Out);
        Info.LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
}

/// Backward in-block walk over the liveness fixpoint: marks dead
/// definitions and records the peak simultaneous live scalar width.
void walkLiveness(DataflowInfo &Info) {
  size_t NL = Info.Locations.size();
  std::vector<bool> ExitLive(NL, false);
  std::vector<unsigned> TotalUses(NL, 0);
  for (unsigned L = 0; L < NL; ++L)
    ExitLive[L] = Info.Locations[L].Space == LocSpace::GlobalArray;
  for (const BasicBlock &B : Info.Blocks)
    for (const Access &E : B.Events)
      if (E.Kind == AccessKind::Use)
        ++TotalUses[E.Loc];

  auto countsForPressure = [&](unsigned L) {
    return Info.Locations[L].Space == LocSpace::Scalar &&
           !Info.Locations[L].Implicit;
  };

  unsigned MaxRegs = 0;
  for (unsigned B = 0; B < Info.Blocks.size(); ++B) {
    std::vector<bool> Live = Info.LiveOut[B];
    unsigned Regs = 0;
    for (unsigned L = 0; L < NL; ++L)
      if (Live[L] && countsForPressure(L))
        Regs += Info.Locations[L].Width;
    MaxRegs = std::max(MaxRegs, Regs);
    for (size_t I = Info.Blocks[B].Events.size(); I-- > 0;) {
      const Access &E = Info.Blocks[B].Events[I];
      if (E.Kind == AccessKind::Use) {
        if (!Live[E.Loc]) {
          Live[E.Loc] = true;
          if (countsForPressure(E.Loc))
            Regs += Info.Locations[E.Loc].Width;
        }
      } else if (E.Kind == AccessKind::Def) {
        if (!Info.Locations[E.Loc].Implicit)
          Info.Defs[E.DefId].Dead = !Live[E.Loc] && !ExitLive[E.Loc];
        if (Live[E.Loc]) {
          Live[E.Loc] = false;
          if (countsForPressure(E.Loc))
            Regs -= Info.Locations[E.Loc].Width;
        }
      } else { // MayDef: dead only when the whole array is never read.
        Info.Defs[E.DefId].Dead =
            TotalUses[E.Loc] == 0 && !ExitLive[E.Loc];
      }
      MaxRegs = std::max(MaxRegs, Regs);
    }
  }
  Info.MaxLiveScalarRegs = MaxRegs;

  unsigned ArrayRegs = 0;
  for (const Location &Loc : Info.Locations)
    if (Loc.Space == LocSpace::RegisterArray && Loc.Elements > 0)
      ArrayRegs += static_cast<unsigned>(Loc.Elements) * Loc.Width;
  Info.RegisterArrayRegs = ArrayRegs;
}

//===----------------------------------------------------------------------===//
// Reaching definitions (forward, definition-granular)
//===----------------------------------------------------------------------===//

struct DefBits {
  std::vector<uint64_t> W;
  explicit DefBits(size_t N = 0) : W((N + 63) / 64, 0) {}
  void set(unsigned I) { W[I / 64] |= uint64_t(1) << (I % 64); }
  void clear(unsigned I) { W[I / 64] &= ~(uint64_t(1) << (I % 64)); }
  bool test(unsigned I) const {
    return (W[I / 64] >> (I % 64)) & 1;
  }
  bool orWith(const DefBits &O) {
    bool Changed = false;
    for (size_t I = 0; I < W.size(); ++I) {
      uint64_t Next = W[I] | O.W[I];
      Changed |= Next != W[I];
      W[I] = Next;
    }
    return Changed;
  }
};

void solveReachingDefs(DataflowInfo &Info) {
  size_t NB = Info.Blocks.size(), ND = Info.Defs.size();
  std::vector<std::vector<unsigned>> DefsOfLoc(Info.Locations.size());
  for (unsigned D = 0; D < ND; ++D)
    DefsOfLoc[Info.Defs[D].Loc].push_back(D);

  // Per-block transfer: apply events forward to a bitset.
  auto transfer = [&](unsigned B, DefBits &R,
                      const std::function<void(const Access &,
                                               const DefBits &)> &AtUse) {
    for (const Access &E : Info.Blocks[B].Events) {
      if (E.Kind == AccessKind::Use) {
        if (AtUse)
          AtUse(E, R);
        continue;
      }
      if (E.Kind == AccessKind::Def)
        for (unsigned D : DefsOfLoc[E.Loc])
          R.clear(D);
      R.set(E.DefId);
    }
  };

  std::vector<DefBits> In(NB, DefBits(ND)), Out(NB, DefBits(ND));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 0; B < NB; ++B) {
      DefBits NewIn(ND);
      for (unsigned P : Info.Blocks[B].Preds)
        NewIn.orWith(Out[P]);
      DefBits NewOut = NewIn;
      transfer(B, NewOut, nullptr);
      bool InChanged = NewIn.W != In[B].W;
      bool OutChanged = NewOut.W != Out[B].W;
      if (InChanged || OutChanged) {
        In[B] = std::move(NewIn);
        Out[B] = std::move(NewOut);
        Changed = true;
      }
    }
  }

  // Final walk: attach uses to the definitions that reach them.
  std::set<std::pair<unsigned, unsigned>> SeenUndef, SeenChain;
  for (unsigned B = 0; B < NB; ++B) {
    DefBits R = In[B];
    transfer(B, R, [&](const Access &E, const DefBits &Reach) {
      bool Any = false;
      for (unsigned D : DefsOfLoc[E.Loc])
        if (Reach.test(D)) {
          Any = true;
          if (SeenChain.insert({D, E.Line}).second)
            Info.Defs[D].UseLines.push_back(E.Line);
        }
      if (!Any && !Info.Locations[E.Loc].Implicit &&
          SeenUndef.insert({E.Loc, E.Line}).second)
        Info.UndefinedUses.push_back({E.Loc, E.Line});
    });
  }
}

//===----------------------------------------------------------------------===//
// Barrier replay and SMEM lifetimes over the unrolled execution trace
//===----------------------------------------------------------------------===//

struct TraceEvent {
  enum Kind { Write, Read, Barrier } K;
  unsigned Loc = 0; ///< Shared-array location for Write/Read.
  unsigned Line = 0;
};

struct TraceBuilder {
  const DataflowInfo &Info;
  const std::unordered_map<std::string, unsigned> &LocIndex;
  std::vector<TraceEvent> Trace;

  bool sharedLoc(const std::string &Name, unsigned &Loc) const {
    auto It = LocIndex.find(Name);
    if (It == LocIndex.end() ||
        Info.Locations[It->second].Space != LocSpace::SharedArray)
      return false;
    Loc = It->second;
    return true;
  }

  void readsInExpr(const Expr &E, unsigned Line,
                   std::vector<TraceEvent> &Out) const {
    unsigned Loc = 0;
    if (E.Kind == ExprKind::Index && sharedLoc(E.Name, Loc))
      Out.push_back({TraceEvent::Read, Loc, Line});
    for (const Expr &Kid : E.Kids)
      readsInExpr(Kid, Line, Out);
  }

  void walk(const std::vector<Stmt> &Body, std::vector<TraceEvent> &Out) {
    for (const Stmt &S : Body) {
      switch (S.Kind) {
      case StmtKind::Decl:
      case StmtKind::Assign:
      case StmtKind::CompoundMul:
      case StmtKind::CompoundDiv:
        readsInExpr(S.Value, S.Line, Out);
        break;
      case StmtKind::ArrayStore: {
        readsInExpr(S.Index, S.Line, Out);
        readsInExpr(S.Value, S.Line, Out);
        unsigned Loc = 0;
        if (sharedLoc(S.Name, Loc)) {
          if (S.Accumulate)
            Out.push_back({TraceEvent::Read, Loc, S.Line});
          Out.push_back({TraceEvent::Write, Loc, S.Line});
        }
        break;
      }
      case StmtKind::Barrier:
        Out.push_back({TraceEvent::Barrier, 0, S.Line});
        break;
      case StmtKind::If:
        readsInExpr(S.Value, S.Line, Out);
        walk(S.Body, Out);
        break;
      case StmtKind::Loop: {
        // Two-iteration unrolling exposes loop-carried hazards (the
        // next iteration's staging writes against this iteration's
        // compute reads).
        std::vector<TraceEvent> BodyTrace;
        walk(S.Body, BodyTrace);
        Out.insert(Out.end(), BodyTrace.begin(), BodyTrace.end());
        Out.insert(Out.end(), BodyTrace.begin(), BodyTrace.end());
        break;
      }
      case StmtKind::Block:
        walk(S.Body, Out);
        break;
      case StmtKind::ArrayDecl:
        break;
      }
    }
  }
};

/// Greedy left-to-right replay: pending accesses accumulate since the
/// last *kept* barrier; an occurrence is needed iff some pending access
/// hazards with an access before the next barrier. A barrier statement
/// is redundant only when every one of its trace occurrences is.
/// Counts hazard events in \p Trace: accesses that conflict (write-write,
/// write-read or read-write on the same buffer) with a pending access not
/// yet separated by a barrier. Barriers whose source line is \p SkipLine
/// are treated as absent. Skipping a barrier only merges segments, so the
/// count is monotone: it can never decrease.
unsigned countTraceHazards(const std::vector<TraceEvent> &Trace,
                           size_t NumLocations, unsigned SkipLine) {
  std::vector<bool> PendW(NumLocations, false), PendR(NumLocations, false);
  unsigned Hazards = 0;
  for (const TraceEvent &E : Trace) {
    if (E.K == TraceEvent::Barrier) {
      if (E.Line != SkipLine) {
        PendW.assign(NumLocations, false);
        PendR.assign(NumLocations, false);
      }
      continue;
    }
    if (E.K == TraceEvent::Write) {
      Hazards += PendW[E.Loc] || PendR[E.Loc];
      PendW[E.Loc] = true;
    } else {
      Hazards += PendW[E.Loc];
      PendR[E.Loc] = true;
    }
  }
  return Hazards;
}

/// Removal-based redundancy: a barrier line is redundant iff deleting all
/// its occurrences introduces no hazard the remaining barriers fail to
/// order. This is stronger than crediting each hazard to one barrier by
/// position — a barrier wedged between two already-ordered phases (say,
/// injected before the store phase) orders a real dependence only
/// *redundantly* with its neighbors, and this is exactly the drift the
/// pass exists to flag.
void replayBarriers(const std::vector<TraceEvent> &Trace,
                    DataflowInfo &Info) {
  std::set<unsigned> Lines;
  for (const TraceEvent &E : Trace)
    if (E.K == TraceEvent::Barrier)
      Lines.insert(E.Line);
  if (Lines.empty())
    return;

  // Baseline may contain intra-phase conflicts from the array-granular
  // abstraction (the unrolled staging loop writes one buffer repeatedly);
  // those occur identically with or without any barrier removed, so only
  // the delta matters.
  unsigned Baseline = countTraceHazards(Trace, Info.Locations.size(), 0);
  for (unsigned Line : Lines) {
    bool Redundant =
        countTraceHazards(Trace, Info.Locations.size(), Line) == Baseline;
    Info.Barriers.push_back({Line, Redundant});
  }
}

void computeSmemLifetimes(const std::vector<TraceEvent> &Trace,
                          bool TraceValid, DataflowInfo &Info) {
  struct Range {
    size_t FirstWrite = SIZE_MAX;
    size_t LastRead = 0;
    bool Written = false, Read = false;
  };
  std::map<unsigned, Range> Ranges;
  for (unsigned L = 0; L < Info.Locations.size(); ++L)
    if (Info.Locations[L].Space == LocSpace::SharedArray)
      Ranges[L];

  // Written/Read flags come from the CFG events (always available).
  for (const BasicBlock &B : Info.Blocks)
    for (const Access &E : B.Events) {
      auto It = Ranges.find(E.Loc);
      if (It == Ranges.end())
        continue;
      if (E.Kind == AccessKind::Use)
        It->second.Read = true;
      else if (E.Kind == AccessKind::MayDef)
        It->second.Written = true;
    }

  if (TraceValid)
    for (size_t I = 0; I < Trace.size(); ++I) {
      const TraceEvent &E = Trace[I];
      auto It = Ranges.find(E.Loc);
      if (E.K == TraceEvent::Barrier || It == Ranges.end())
        continue;
      if (E.K == TraceEvent::Write)
        It->second.FirstWrite = std::min(It->second.FirstWrite, I);
      else
        It->second.LastRead = std::max(It->second.LastRead, I);
    }

  for (const auto &[Loc, R] : Ranges)
    Info.SmemLifetimes.push_back({Loc, R.Written, R.Read});

  // Two fully-used buffers whose trace ranges never interleave could
  // share one allocation.
  if (!TraceValid)
    return;
  for (auto A = Ranges.begin(); A != Ranges.end(); ++A)
    for (auto B = std::next(A); B != Ranges.end(); ++B) {
      const Range &RA = A->second, &RB = B->second;
      if (!(RA.Written && RA.Read && RB.Written && RB.Read))
        continue;
      if (RA.LastRead < RB.FirstWrite || RB.LastRead < RA.FirstWrite)
        Info.DisjointSmemStaging = true;
    }
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

const char *cogent::analysis::locSpaceName(LocSpace Space) {
  switch (Space) {
  case LocSpace::Scalar:
    return "scalar";
  case LocSpace::RegisterArray:
    return "register-array";
  case LocSpace::SharedArray:
    return "shared-array";
  case LocSpace::GlobalArray:
    return "global-array";
  }
  return "unknown";
}

std::optional<unsigned>
DataflowInfo::location(const std::string &Name) const {
  for (unsigned I = 0; I < Locations.size(); ++I)
    if (Locations[I].Name == Name)
      return I;
  return std::nullopt;
}

unsigned DataflowInfo::useCount(unsigned Loc) const {
  unsigned N = 0;
  for (const BasicBlock &B : Blocks)
    for (const Access &E : B.Events)
      N += E.Kind == AccessKind::Use && E.Loc == Loc;
  return N;
}

ErrorOr<DataflowInfo>
cogent::analysis::buildDataflow(const KernelModel &M) {
  ++NumDataflowBuilds;
  DataflowInfo Info;
  CfgBuilder Builder(M, Info);
  Builder.seedEntry();
  Builder.walk(M.Body);

  solveLiveness(Info);
  walkLiveness(Info);
  solveReachingDefs(Info);

  // Barrier replay and lifetime ranges need a linear execution trace;
  // double-buffered kernels interleave phases through the buf toggle,
  // which the replay does not model — stay conservatively silent there.
  bool TraceValid = !M.DoubleBuffer && !M.SharedDecls.empty();
  TraceBuilder TB{Info, Builder.LocIndex, {}};
  if (TraceValid)
    TB.walk(M.Body, TB.Trace);
  if (TraceValid)
    replayBarriers(TB.Trace, Info);
  computeSmemLifetimes(TB.Trace, TraceValid, Info);

  for (const DefInfo &D : Info.Defs)
    NumDeadDefsFound += D.Dead;
  for (const BarrierVerdict &B : Info.Barriers)
    NumRedundantBarriersFound += B.Redundant;
  return Info;
}

std::string cogent::analysis::explainDataflow(const KernelModel &M,
                                              const DataflowInfo &Info) {
  std::ostringstream OS;
  OS << "KernelDataflow for " << M.KernelName << "\n";
  OS << "  blocks: " << Info.Blocks.size()
     << "  locations: " << Info.Locations.size()
     << "  definitions: " << Info.Defs.size() << "\n\n";

  OS << "  CFG:\n";
  for (unsigned B = 0; B < Info.Blocks.size(); ++B) {
    const BasicBlock &Blk = Info.Blocks[B];
    OS << "    [" << B << "] " << Blk.Label << " (" << Blk.Events.size()
       << " events) ->";
    if (Blk.Succs.empty())
      OS << " exit";
    for (unsigned S : Blk.Succs)
      OS << " " << S;
    if (Blk.EndsWithBarrier)
      OS << "  | barrier line " << Blk.BarrierLine;
    OS << "\n";
  }

  OS << "\n  register pressure:\n";
  OS << "    register arrays: " << Info.RegisterArrayRegs << " regs\n";
  OS << "    peak live scalars: " << Info.MaxLiveScalarRegs << " regs\n";
  OS << "    total estimate: " << Info.pressure() << " regs/thread\n";

  OS << "\n  shared staging lifetimes:\n";
  for (const SmemBufferLifetime &L : Info.SmemLifetimes)
    OS << "    " << Info.Locations[L.Loc].Name
       << (L.Written ? " written" : " never-written")
       << (L.Read ? " read" : " never-read") << "\n";
  if (Info.DisjointSmemStaging)
    OS << "    note: staging buffers have disjoint live ranges "
          "(storage could be shared)\n";

  OS << "\n  barriers:\n";
  if (Info.Barriers.empty())
    OS << "    (none analyzed)\n";
  for (const BarrierVerdict &B : Info.Barriers)
    OS << "    line " << B.Line << ": "
       << (B.Redundant ? "redundant" : "required") << "\n";

  unsigned Dead = 0;
  for (const DefInfo &D : Info.Defs)
    Dead += D.Dead;
  OS << "\n  dead definitions: " << Dead << "\n";
  for (const DefInfo &D : Info.Defs)
    if (D.Dead)
      OS << "    " << Info.Locations[D.Loc].Name << " at line " << D.Line
         << "\n";
  OS << "  undefined uses: " << Info.UndefinedUses.size() << "\n";
  for (const UndefinedUse &U : Info.UndefinedUses)
    OS << "    " << Info.Locations[U.Loc].Name << " at line " << U.Line
       << "\n";
  return OS.str();
}
