//===- analysis/KernelDataflow.h - CFG + liveness over emitted kernels ----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KernelDataflow: a classic dataflow framework over the KernelModel
/// statement tree of one emitted kernel. Where KernelLint's original
/// passes check *shape* (strides, guards, declarations), this layer
/// recovers *flow*: which values are live where, which definitions reach
/// which uses, and which synchronization actually orders anything.
///
/// CFG shape. Basic blocks are built by a single walk of the statement
/// tree. Three constructs end a block:
///   - a barrier (blocks therefore never straddle a synchronization
///     point, making barriers region boundaries exactly as the paper's
///     load/compute/store phases intend),
///   - a loop (pre-header -> header -> body... -> latch -> header back
///     edge, plus a header -> exit edge that models the zero-trip case),
///   - a guard (branch -> then-body -> join, plus the branch -> join
///     fall-through edge; the emitted schema has no else).
///
/// Locations and lattice. Every named value is a Location in one of four
/// spaces: per-thread scalars (strong, killing definitions), register
/// arrays and shared arrays (array-granular MayDef — a store never kills,
/// because other elements survive), and global arrays (MayDef and
/// exit-live, so output stores are never dead). The two solvers are
/// standard bitvector fixpoints:
///   - backward may-liveness over locations (drives dead-store detection,
///     the register-pressure walk and the SMEM lifetime ranges),
///   - forward reaching definitions over definition sites (drives the
///     def-use chains and use-without-definition detection).
/// #defines, extent parameters, kernel pointer parameters and the thread
/// builtins of both dialects are implicit entry definitions.
///
/// The four consumers (surfaced as KernelLint passes) are:
///   register pressure — peak simultaneous live scalar width plus the
///     declared register tiles, to compare against the plan and budget;
///   redundant barriers — a greedy replay over a two-iteration loop
///     unrolling that keeps a barrier only when a pending SMEM access
///     hazards with an access before the next barrier;
///   dead stores — definitions never observed by any reachable use;
///   SMEM lifetime — written/read/co-liveness per staging buffer.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_ANALYSIS_KERNELDATAFLOW_H
#define COGENT_ANALYSIS_KERNELDATAFLOW_H

#include "analysis/KernelModel.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cogent {
namespace analysis {

/// Address space of a Location.
enum class LocSpace {
  Scalar,        ///< Per-thread scalar; assignments kill.
  RegisterArray, ///< r_A / r_B / r_C; array-granular MayDef.
  SharedArray,   ///< __shared__/__local staging; array-granular MayDef.
  GlobalArray,   ///< g_A / g_B / g_C; MayDef and live at kernel exit.
};

const char *locSpaceName(LocSpace Space);

/// One named storage location.
struct Location {
  std::string Name;
  LocSpace Space = LocSpace::Scalar;
  /// 32-bit registers one element of this location occupies (2 for
  /// double / long long, 1 otherwise). Meaningful for Scalar and
  /// RegisterArray spaces.
  unsigned Width = 1;
  /// Element count for array spaces when the declared size evaluates
  /// under the #define table; 1 for scalars, 0 when unknown.
  int64_t Elements = 1;
  /// Defined at kernel entry (builtin, parameter, #define); implicit
  /// locations are exempt from dead-store and pressure accounting.
  bool Implicit = false;
};

/// How one statement touches one location.
enum class AccessKind {
  Use,    ///< Read.
  Def,    ///< Killing write (scalars only).
  MayDef, ///< Non-killing write (one array element).
};

/// One ordered access event within a basic block.
struct Access {
  unsigned Loc = 0;
  AccessKind Kind = AccessKind::Use;
  unsigned Line = 0;
  /// Definition number for Def/MayDef events (index into DataflowInfo::
  /// Defs), ~0u for uses.
  unsigned DefId = ~0u;
};

/// One basic block of the CFG.
struct BasicBlock {
  std::string Label;
  std::vector<Access> Events;
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
  bool EndsWithBarrier = false;
  unsigned BarrierLine = 0;
};

/// One definition site with its def-use chain.
struct DefInfo {
  unsigned Loc = 0;
  unsigned Line = 0;
  AccessKind Kind = AccessKind::Def;
  /// True when no reachable use observes this definition and the
  /// location is not exit-live: the store is dead.
  bool Dead = false;
  /// Source lines of uses this definition reaches, in discovery order.
  std::vector<unsigned> UseLines;
};

/// A read of a location no definition reaches (and that is not an
/// implicit entry definition).
struct UndefinedUse {
  unsigned Loc = 0;
  unsigned Line = 0;
};

/// Verdict for one barrier statement (keyed by source line).
struct BarrierVerdict {
  unsigned Line = 0;
  /// True when no trace occurrence of this barrier separates a pending
  /// SMEM access from a hazarding one: the barrier orders nothing.
  bool Redundant = false;
};

/// Lifetime summary for one shared staging buffer.
struct SmemBufferLifetime {
  unsigned Loc = 0;
  bool Written = false;
  bool Read = false;
};

/// Everything the solvers computed for one kernel.
struct DataflowInfo {
  std::vector<Location> Locations;
  std::vector<BasicBlock> Blocks; ///< Blocks[0] is the entry block.
  std::vector<DefInfo> Defs;
  std::vector<UndefinedUse> UndefinedUses;
  std::vector<BarrierVerdict> Barriers;
  std::vector<SmemBufferLifetime> SmemLifetimes;

  /// Per-block liveness fixpoint, one bit per location.
  std::vector<std::vector<bool>> LiveIn, LiveOut;

  /// Peak simultaneous live scalar width (32-bit registers) across all
  /// program points; implicit locations are excluded.
  unsigned MaxLiveScalarRegs = 0;
  /// Registers occupied by the declared register arrays (elements x
  /// element width).
  unsigned RegisterArrayRegs = 0;

  /// True when at least two shared buffers are each written and read
  /// yet never simultaneously live — the staging allocations could
  /// share storage.
  bool DisjointSmemStaging = false;

  /// Total register-pressure estimate per thread.
  unsigned pressure() const { return RegisterArrayRegs + MaxLiveScalarRegs; }

  /// Location index for \p Name, if known.
  std::optional<unsigned> location(const std::string &Name) const;
  /// Total number of uses of location \p Loc across every def-use chain
  /// and undefined use.
  unsigned useCount(unsigned Loc) const;
};

/// Builds the CFG over \p M and runs both solvers plus the four derived
/// analyses. Fails (VerificationFailed) only when the model is
/// structurally unusable — callers that hold a parsed model never see
/// that in practice.
ErrorOr<DataflowInfo> buildDataflow(const KernelModel &M);

/// Documented slack between the source-side pressure estimate and the
/// plan-side analytic estimate (core::planRegisterPressure). The source
/// walk counts every simultaneously-live declared scalar while the plan
/// mirror prices index arithmetic per dimension, and the two drift by
/// the per-phase temporaries (slice-load cursors, store coordinates) the
/// mirror folds into its base term. 64 registers bounds that drift with
/// ~2x headroom across the TCCG suite on both devices (asserted by
/// test_kernel_dataflow) while staying far below what the targeted
/// register-inflation mutations add (>= 168 registers).
inline constexpr unsigned PressureToleranceRegs = 64;

/// Human-oriented dump for cogent_cli --explain-dataflow: the CFG, the
/// per-buffer lifetimes, the def-use summary and the pressure table.
std::string explainDataflow(const KernelModel &M, const DataflowInfo &Info);

} // namespace analysis
} // namespace cogent

#endif // COGENT_ANALYSIS_KERNELDATAFLOW_H
