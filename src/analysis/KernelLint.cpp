//===- analysis/KernelLint.cpp - Static analyzer for emitted kernels ------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelLint.h"

#include "analysis/KernelRaceProver.h"

#include "analysis/KernelDataflow.h"
#include "core/CostModel.h"
#include "support/Counters.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

using namespace cogent;
using namespace cogent::analysis;
using core::CoordRole;
using core::KernelPlan;
using core::SliceDim;
using core::StoreDim;
using ir::Operand;

namespace {

COGENT_COUNTER(NumKernelsLinted, "lint.kernels-linted",
               "Kernel sources analyzed by KernelLint");
COGENT_COUNTER(NumLintFindingsTotal, "lint.findings",
               "Total findings reported across all KernelLint runs");

//===----------------------------------------------------------------------===//
// Name tables
//===----------------------------------------------------------------------===//

constexpr const char *PassNames[NumLintPasses] = {
    "structure",      "barrier-placement", "bank-conflict",
    "coalescing",     "bounds-check",      "resource-decl",
    "register-pressure", "redundant-barrier", "dead-store",
    "smem-lifetime",  "uniformity",        "race-freedom",
    "barrier-uniformity",
};

constexpr const char *ModeNames[3] = {"off", "warn", "strict"};

/// The coordinate variable CodeGen names for a slice/store dimension.
std::string roleCoordName(CoordRole Role, char Name) {
  switch (Role) {
  case CoordRole::ThreadX:
  case CoordRole::ThreadY:
    return std::string("t_") + Name;
  case CoordRole::RegX:
    return std::string("x_") + Name;
  case CoordRole::RegY:
    return std::string("y_") + Name;
  case CoordRole::Step:
    return std::string("k_") + Name;
  case CoordRole::Fixed:
    return std::string();
  }
  return std::string();
}

//===----------------------------------------------------------------------===//
// Shared pass context
//===----------------------------------------------------------------------===//

/// Executes one scalar statement into \p E. Returns false when the RHS
/// does not evaluate under E (a per-thread value at this scope).
bool execScalar(const Stmt &S, Env &E) {
  std::optional<int64_t> V = evalExpr(S.Value, E);
  if (!V)
    return false;
  switch (S.Kind) {
  case StmtKind::Decl:
  case StmtKind::Assign:
    E[S.Name] = *V;
    return true;
  case StmtKind::CompoundMul: {
    auto It = E.find(S.Name);
    if (It == E.end())
      return false;
    It->second *= *V;
    return true;
  }
  case StmtKind::CompoundDiv: {
    auto It = E.find(S.Name);
    if (It == E.end() || *V == 0)
      return false;
    It->second /= *V;
    return true;
  }
  default:
    return false;
  }
}

bool isScalarStmt(const Stmt &S) {
  return S.Kind == StmtKind::Decl || S.Kind == StmtKind::Assign ||
         S.Kind == StmtKind::CompoundMul || S.Kind == StmtKind::CompoundDiv;
}

void forEachStmt(const std::vector<Stmt> &Body,
                 const std::function<void(const Stmt &)> &Fn) {
  for (const Stmt &S : Body) {
    Fn(S);
    if (!S.Body.empty())
      forEachStmt(S.Body, Fn);
  }
}

void forEachIndexExpr(const Expr &E,
                      const std::function<void(const Expr &)> &Fn) {
  if (E.Kind == ExprKind::Index)
    Fn(E);
  for (const Expr &Kid : E.Kids)
    forEachIndexExpr(Kid, Fn);
}

struct LintContext {
  const KernelPlan &Plan;
  const KernelModel &M;
  const LintOptions &Opts;
  std::vector<LintFinding> &Findings;
  /// Defines + extent parameters + every top-level scalar that evaluates
  /// (stride variables, nt_/ns_ factors, totalBlocks, numSteps).
  Env Ambient;

  void report(LintPass Pass, unsigned Line, std::string Message,
              LintSeverity Severity = LintSeverity::Error) {
    Findings.push_back({Pass, Severity, Line, std::move(Message)});
  }
};

Env buildAmbient(const KernelPlan &Plan, const KernelModel &M) {
  Env E;
  for (const auto &[Name, Value] : M.Defines)
    E[Name] = Value;
  for (char Name : Plan.contraction().allIndices())
    E[std::string("N_") + Name] = Plan.contraction().extent(Name);
  forEachStmt(M.Body, [&](const Stmt &S) {
    if (isScalarStmt(S))
      execScalar(S, E); // Per-thread statements simply fail to apply.
  });
  return E;
}

//===----------------------------------------------------------------------===//
// ResourceDecl pass
//===----------------------------------------------------------------------===//

void passResourceDecl(LintContext &C) {
  const KernelPlan &Plan = C.Plan;
  auto checkDefine = [&](const char *Name, int64_t Expected) {
    auto It = C.M.Defines.find(Name);
    if (It == C.M.Defines.end()) {
      C.report(LintPass::ResourceDecl, 0,
               std::string("missing #define ") + Name);
      return;
    }
    if (It->second != Expected)
      C.report(LintPass::ResourceDecl, 0,
               std::string("#define ") + Name + " is " +
                   std::to_string(It->second) + " but the verified plan says " +
                   std::to_string(Expected));
  };
  checkDefine("TBX", Plan.tbX());
  checkDefine("TBY", Plan.tbY());
  checkDefine("NTHREADS", Plan.threadsPerBlock());
  checkDefine("REGX", Plan.regX());
  checkDefine("REGY", Plan.regY());
  checkDefine("TBK", Plan.tbk());

  const char *ExpectedElem = C.Opts.ElementSize == 4 ? "float" : "double";
  if (C.M.ElementType != ExpectedElem)
    C.report(LintPass::ResourceDecl, 0,
             "kernel element type is " + C.M.ElementType + " but options say " +
                 ExpectedElem + " (element size " +
                 std::to_string(C.Opts.ElementSize) + ")");

  int64_t BufCount = C.M.DoubleBuffer ? 2 : 1;
  auto checkShared = [&](const char *Name, Operand Op) {
    const Stmt *Decl = C.M.arrayDecl(Name);
    if (!Decl || !Decl->Shared) {
      C.report(LintPass::ResourceDecl, 0,
               std::string("missing shared-memory declaration ") + Name);
      return;
    }
    std::optional<int64_t> Size = evalExpr(Decl->Value, C.Ambient);
    int64_t Expected = BufCount * Plan.sliceElements(Op);
    if (!Size || *Size != Expected)
      C.report(LintPass::ResourceDecl, Decl->Line,
               std::string(Name) + " declares " +
                   (Size ? std::to_string(*Size) : std::string("?")) +
                   " elements but the plan stages " + std::to_string(Expected));
    if (Decl->Type != ExpectedElem)
      C.report(LintPass::ResourceDecl, Decl->Line,
               std::string(Name) + " is declared " + Decl->Type +
                   " but the element type is " + ExpectedElem);
  };
  checkShared("s_A", Operand::A);
  checkShared("s_B", Operand::B);

  auto checkReg = [&](const char *Name, int64_t Expected) {
    const Stmt *Decl = C.M.arrayDecl(Name);
    if (!Decl) {
      C.report(LintPass::ResourceDecl, 0,
               std::string("missing register-tile declaration ") + Name);
      return;
    }
    std::optional<int64_t> Size = evalExpr(Decl->Value, C.Ambient);
    if (!Size || *Size != Expected)
      C.report(LintPass::ResourceDecl, Decl->Line,
               std::string(Name) + " declares " +
                   (Size ? std::to_string(*Size) : std::string("?")) +
                   " elements but the plan's register tile needs " +
                   std::to_string(Expected));
  };
  checkReg("r_C", Plan.regX() * Plan.regY());
  checkReg("r_A", Plan.regX());
  checkReg("r_B", Plan.regY());
}

//===----------------------------------------------------------------------===//
// BankConflict pass (SMEM strides vs. plan)
//===----------------------------------------------------------------------===//

std::optional<Operand> smemOperand(const std::string &Array) {
  if (Array == "s_A")
    return Operand::A;
  if (Array == "s_B")
    return Operand::B;
  return std::nullopt;
}

/// Checks one linearized SMEM index against the expected coordinate ->
/// stride map; \p What names the access for messages.
void checkSmemForm(LintContext &C, unsigned Line, const std::string &What,
                   const IndexForm &Form,
                   const std::vector<std::pair<std::string, int64_t>> &Expected,
                   int64_t BufferElems, bool BufferAllowed) {
  std::vector<IndexTerm> Rest = Form.Terms;
  for (const auto &[Coord, Stride] : Expected) {
    auto It = std::find_if(Rest.begin(), Rest.end(), [&](const IndexTerm &T) {
      return T.Coord == Coord;
    });
    if (It == Rest.end()) {
      if (Stride != 0)
        C.report(LintPass::BankConflict, Line,
                 What + " drops the staging term for " + Coord +
                     " (plan stride " + std::to_string(Stride) + ")");
      continue;
    }
    if (It->Coeff != Stride)
      C.report(LintPass::BankConflict, Line,
               What + " strides " + Coord + " by " +
                   std::to_string(It->Coeff) + " but the plan's staging "
                   "layout says " + std::to_string(Stride));
    Rest.erase(It);
  }
  int64_t Constant = Form.Constant;
  if (BufferAllowed) {
    // Double-buffer bases: +buf*E (front) or E - buf*E (back).
    auto It = std::find_if(Rest.begin(), Rest.end(), [&](const IndexTerm &T) {
      return T.Coord == "buf";
    });
    if (It != Rest.end()) {
      bool Front = It->Coeff == BufferElems && Constant == 0;
      bool Back = It->Coeff == -BufferElems && Constant == BufferElems;
      if (!Front && !Back)
        C.report(LintPass::BankConflict, Line,
                 What + " uses a buffer base of " + std::to_string(It->Coeff) +
                     "*buf + " + std::to_string(Constant) +
                     " but the staged slice holds " +
                     std::to_string(BufferElems) + " elements");
      Rest.erase(It);
      Constant = 0;
    }
  }
  for (const IndexTerm &T : Rest)
    C.report(LintPass::BankConflict, Line,
             What + " has an unexpected index term " + T.Coord + " * " +
                 std::to_string(T.Coeff));
  if (Constant != 0)
    C.report(LintPass::BankConflict, Line,
             What + " has a constant offset " + std::to_string(Constant) +
                 " the plan does not explain");
}

void passBankConflict(LintContext &C) {
  forEachStmt(C.M.Body, [&](const Stmt &S) {
    if (S.Kind != StmtKind::ArrayStore)
      return;
    // Staging writes: s_X[...] = ...
    if (std::optional<Operand> Op = smemOperand(S.Name)) {
      std::optional<IndexForm> Form = linearizeIndex(S.Index, C.Ambient);
      if (!Form) {
        C.report(LintPass::BankConflict, S.Line,
                 "SMEM store index of " + S.Name + " is not affine: " +
                     renderExpr(S.Index));
        return;
      }
      std::vector<std::pair<std::string, int64_t>> Expected;
      for (const SliceDim &Dim : C.Plan.sliceDims(*Op))
        Expected.emplace_back(std::string("i_") + Dim.Name, Dim.SmemStride);
      checkSmemForm(C, S.Line, "staging write to " + S.Name, *Form, Expected,
                    C.Plan.sliceElements(*Op), C.M.DoubleBuffer);
    }
    // Compute reads: Index nodes over s_X inside any stored value.
    forEachIndexExpr(S.Value, [&](const Expr &Ref) {
      std::optional<Operand> Op = smemOperand(Ref.Name);
      if (!Op)
        return;
      std::optional<IndexForm> Form = linearizeIndex(Ref.Kids[0], C.Ambient);
      if (!Form) {
        C.report(LintPass::BankConflict, S.Line,
                 "SMEM read index of " + Ref.Name + " is not affine: " +
                     renderExpr(Ref.Kids[0]));
        return;
      }
      std::vector<std::pair<std::string, int64_t>> Expected;
      for (const SliceDim &Dim : C.Plan.sliceDims(*Op)) {
        if (Dim.Role == CoordRole::Fixed)
          continue;
        Expected.emplace_back(roleCoordName(Dim.Role, Dim.Name),
                              Dim.SmemStride);
      }
      checkSmemForm(C, S.Line, "compute read of " + Ref.Name, *Form, Expected,
                    C.Plan.sliceElements(*Op), C.M.DoubleBuffer);
    });
  });
}

//===----------------------------------------------------------------------===//
// Coalescing pass (GMEM strides and tile bases vs. plan)
//===----------------------------------------------------------------------===//

void checkGmemForm(LintContext &C, unsigned Line, const std::string &What,
                   const IndexForm &Form,
                   const std::vector<std::pair<std::string, int64_t>>
                       &Expected) {
  std::vector<IndexTerm> Rest = Form.Terms;
  for (const auto &[Coord, Stride] : Expected) {
    auto It = std::find_if(Rest.begin(), Rest.end(), [&](const IndexTerm &T) {
      return T.Coord == Coord;
    });
    if (It == Rest.end()) {
      if (Stride != 0)
        C.report(LintPass::Coalescing, Line,
                 What + " drops the global term for " + Coord +
                     " (plan stride " + std::to_string(Stride) + ")");
      continue;
    }
    if (It->Coeff != Stride)
      C.report(LintPass::Coalescing, Line,
               What + " strides " + Coord + " by " +
                   std::to_string(It->Coeff) +
                   " but the tensor layout says " + std::to_string(Stride) +
                   " (warp-lane coalescing depends on it)");
    Rest.erase(It);
  }
  for (const IndexTerm &T : Rest)
    C.report(LintPass::Coalescing, Line,
             What + " has an unexpected address term " + T.Coord + " * " +
                 std::to_string(T.Coeff));
  if (Form.Constant != 0)
    C.report(LintPass::Coalescing, Line,
             What + " carries a constant address offset " +
                 std::to_string(Form.Constant));
}

/// Checks a per-element coordinate definition (g_x = base_x + i_x, or
/// gc_x = base_x + <role coord>) against the plan's expectation.
void checkCoordDef(LintContext &C, const Stmt &S, const std::string &What,
                   const std::vector<std::pair<std::string, int64_t>>
                       &Expected) {
  std::optional<IndexForm> Form = linearizeIndex(S.Value, C.Ambient);
  if (!Form) {
    C.report(LintPass::Coalescing, S.Line,
             What + " is not affine: " + renderExpr(S.Value));
    return;
  }
  std::vector<IndexTerm> Rest = Form->Terms;
  for (const auto &[Coord, Coeff] : Expected) {
    auto It = std::find_if(Rest.begin(), Rest.end(), [&](const IndexTerm &T) {
      return T.Coord == Coord;
    });
    if (It == Rest.end()) {
      C.report(LintPass::Coalescing, S.Line,
               What + " does not add " + Coord + " (the plan's tile base "
               "for this index)");
      continue;
    }
    if (It->Coeff != Coeff)
      C.report(LintPass::Coalescing, S.Line,
               What + " scales " + Coord + " by " +
                   std::to_string(It->Coeff) + " instead of " +
                   std::to_string(Coeff));
    Rest.erase(It);
  }
  for (const IndexTerm &T : Rest)
    C.report(LintPass::Coalescing, S.Line,
             What + " adds an unexpected term " + T.Coord + " * " +
                 std::to_string(T.Coeff));
  if (Form->Constant != 0)
    C.report(LintPass::Coalescing, S.Line,
             What + " adds a constant " + std::to_string(Form->Constant));
}

void passCoalescing(LintContext &C) {
  const ir::Contraction &TC = C.Plan.contraction();

  // Global loads inside the staging stores.
  forEachStmt(C.M.Body, [&](const Stmt &S) {
    if (S.Kind == StmtKind::ArrayStore && smemOperand(S.Name)) {
      forEachIndexExpr(S.Value, [&](const Expr &Ref) {
        Operand Op;
        if (Ref.Name == "g_A")
          Op = Operand::A;
        else if (Ref.Name == "g_B")
          Op = Operand::B;
        else
          return;
        std::optional<IndexForm> Form =
            linearizeIndex(Ref.Kids[0], C.Ambient);
        if (!Form) {
          C.report(LintPass::Coalescing, S.Line,
                   "global load index of " + Ref.Name + " is not affine: " +
                       renderExpr(Ref.Kids[0]));
          return;
        }
        std::vector<std::pair<std::string, int64_t>> Expected;
        for (const SliceDim &Dim : C.Plan.sliceDims(Op))
          Expected.emplace_back(std::string("g_") + Dim.Name,
                                Dim.GlobalStride);
        checkGmemForm(C, S.Line, "global load of " + Ref.Name, *Form,
                      Expected);
      });
    }
    // The output store.
    if (S.Kind == StmtKind::ArrayStore && S.Name == "g_C") {
      std::optional<IndexForm> Form = linearizeIndex(S.Index, C.Ambient);
      if (!Form) {
        C.report(LintPass::Coalescing, S.Line,
                 "global store index of g_C is not affine: " +
                     renderExpr(S.Index));
        return;
      }
      std::vector<std::pair<std::string, int64_t>> Expected;
      for (const StoreDim &Dim : C.Plan.storeDims())
        Expected.emplace_back(std::string("gc_") + Dim.Name,
                              Dim.GlobalStride);
      checkGmemForm(C, S.Line, "global store of g_C", *Form, Expected);
    }
  });

  // Per-element coordinate definitions: g_<i> = (k)base_<i> + i_<i> in the
  // slice loops, gc_<i> = base_<i> + <role coord> in the store.
  forEachStmt(C.M.Body, [&](const Stmt &S) {
    if (S.Kind != StmtKind::Decl || S.Name.size() < 3)
      return;
    if (S.Name.rfind("g_", 0) == 0 && S.Name.size() == 3 &&
        std::islower(static_cast<unsigned char>(S.Name[2]))) {
      char Name = S.Name[2];
      std::string Base = (TC.isInternal(Name) ? "kbase_" : "base_") +
                         std::string(1, Name);
      checkCoordDef(C, S, "slice coordinate " + S.Name,
                    {{Base, 1}, {std::string("i_") + Name, 1}});
    }
    if (S.Name.rfind("gc_", 0) == 0 && S.Name.size() == 4) {
      char Name = S.Name[3];
      for (const StoreDim &Dim : C.Plan.storeDims()) {
        if (Dim.Name != Name)
          continue;
        std::vector<std::pair<std::string, int64_t>> Expected = {
            {std::string("base_") + Name, 1}};
        std::string Coord = roleCoordName(Dim.Role, Dim.Name);
        if (!Coord.empty())
          Expected.emplace_back(Coord, 1);
        checkCoordDef(C, S, "store coordinate " + S.Name, Expected);
      }
    }
  });
}

//===----------------------------------------------------------------------===//
// BoundsCheck pass
//===----------------------------------------------------------------------===//

struct Interval {
  int64_t Lo = 0, Hi = 0;
};

/// Interval evaluation over non-negative coordinate ranges; nullopt when a
/// variable has no known range and the ambient env cannot resolve it.
std::optional<Interval> intervalOf(const Expr &E, const Env &Ambient,
                                   const std::map<std::string, Interval>
                                       &Ranges) {
  if (std::optional<int64_t> V = evalExpr(E, Ambient))
    return Interval{*V, *V};
  switch (E.Kind) {
  case ExprKind::Var: {
    auto It = Ranges.find(E.Name);
    if (It == Ranges.end())
      return std::nullopt;
    return It->second;
  }
  case ExprKind::Add: {
    auto L = intervalOf(E.Kids[0], Ambient, Ranges);
    auto R = intervalOf(E.Kids[1], Ambient, Ranges);
    if (!L || !R)
      return std::nullopt;
    return Interval{L->Lo + R->Lo, L->Hi + R->Hi};
  }
  case ExprKind::Sub: {
    auto L = intervalOf(E.Kids[0], Ambient, Ranges);
    auto R = intervalOf(E.Kids[1], Ambient, Ranges);
    if (!L || !R)
      return std::nullopt;
    return Interval{L->Lo - R->Hi, L->Hi - R->Lo};
  }
  case ExprKind::Mul: {
    auto L = intervalOf(E.Kids[0], Ambient, Ranges);
    auto R = intervalOf(E.Kids[1], Ambient, Ranges);
    if (!L || !R)
      return std::nullopt;
    int64_t A = L->Lo * R->Lo, B = L->Lo * R->Hi;
    int64_t D = L->Hi * R->Lo, F = L->Hi * R->Hi;
    return Interval{std::min(std::min(A, B), std::min(D, F)),
                    std::max(std::max(A, B), std::max(D, F))};
  }
  case ExprKind::Mod: {
    std::optional<int64_t> R = evalExpr(E.Kids[1], Ambient);
    if (!R || *R <= 0)
      return std::nullopt;
    return Interval{0, *R - 1};
  }
  default:
    return std::nullopt;
  }
}

/// Builds coordinate ranges from the parsed decodes and loop bounds.
std::map<std::string, Interval> buildRanges(const LintContext &C) {
  std::map<std::string, Interval> Ranges;
  auto define = [&](const std::string &Name, int64_t HiExclusive) {
    if (HiExclusive > 0)
      Ranges[Name] = {0, HiExclusive - 1};
  };
  auto fromDefines = [&](const char *Name) -> int64_t {
    auto It = C.M.Defines.find(Name);
    return It == C.M.Defines.end() ? 0 : It->second;
  };
  define("threadIdx.x", fromDefines("TBX"));
  define("threadIdx.y", fromDefines("TBY"));
  define("get_local_id(0)", fromDefines("TBX"));
  define("get_local_id(1)", fromDefines("TBY"));
  define("tid", fromDefines("NTHREADS"));
  Ranges["buf"] = {0, 1};

  forEachStmt(C.M.Body, [&](const Stmt &S) {
    // Decode statements: `x = <scratch> % K` gives x the range [0, K-1].
    if (S.Kind == StmtKind::Decl && S.Value.Kind == ExprKind::Mod) {
      if (std::optional<int64_t> K = evalExpr(S.Value.Kids[1], C.Ambient))
        define(S.Name, *K);
    }
    // Loop variables: [init.Lo, bound-1] — for the emitted schema every
    // loop starts at 0 or tid, both >= 0.
    if (S.Kind == StmtKind::Loop && !S.LoopVar.empty()) {
      if (std::optional<int64_t> Bound = evalExpr(S.LoopBound, C.Ambient))
        define(S.LoopVar, *Bound);
    }
  });
  return Ranges;
}

void passBoundsCheck(LintContext &C) {
  const ir::Contraction &TC = C.Plan.contraction();
  std::map<std::string, Interval> Ranges = buildRanges(C);

  // 1. Decode moduli must equal the plan's tiles.
  forEachStmt(C.M.Body, [&](const Stmt &S) {
    if (S.Kind != StmtKind::Decl || S.Value.Kind != ExprKind::Mod ||
        S.Name.size() < 3 || S.Name[1] != '_')
      return;
    char Name = S.Name[2];
    std::optional<int64_t> K = evalExpr(S.Value.Kids[1], C.Ambient);
    if (!K)
      return;
    auto expectTile = [&](int64_t Tile) {
      if (*K != Tile)
        C.report(LintPass::BoundsCheck, S.Line,
                 "decode of " + S.Name + " uses modulus " +
                     std::to_string(*K) + " but the plan tiles index '" +
                     std::string(1, Name) + "' by " + std::to_string(Tile));
    };
    if (S.Name[0] == 'i' && S.Name.size() == 3) {
      for (Operand Op : {Operand::A, Operand::B}) {
        // A slice decode belongs to the operand whose staging loop it sits
        // in; both operands share index names only through the plan, so
        // check against the dims that actually carry this name.
        for (const SliceDim &Dim : C.Plan.sliceDims(Op))
          if (Dim.Name == Name && TC.contains(Op, Name))
            expectTile(Dim.Tile);
      }
    }
  });

  // 2. Interval analysis of every SMEM / register array access.
  auto checkAccess = [&](const std::string &Array, const Expr &Index,
                         unsigned Line) {
    const Stmt *Decl = C.M.arrayDecl(Array);
    if (!Decl)
      return; // ResourceDecl reports the missing declaration.
    std::optional<int64_t> Size = evalExpr(Decl->Value, C.Ambient);
    std::optional<Interval> Range = intervalOf(Index, C.Ambient, Ranges);
    if (!Size || !Range)
      return;
    if (Range->Hi >= *Size)
      C.report(LintPass::BoundsCheck, Line,
               "index into " + Array + " can reach " +
                   std::to_string(Range->Hi) + " but only " +
                   std::to_string(*Size) + " elements are declared");
    if (Range->Lo < 0)
      C.report(LintPass::BoundsCheck, Line,
               "index into " + Array + " can go negative (" +
                   std::to_string(Range->Lo) + ")");
  };
  forEachStmt(C.M.Body, [&](const Stmt &S) {
    if (S.Kind != StmtKind::ArrayStore)
      return;
    if (S.Name.rfind("s_", 0) == 0 || S.Name.rfind("r_", 0) == 0)
      checkAccess(S.Name, S.Index, S.Line);
    forEachIndexExpr(S.Value, [&](const Expr &Ref) {
      if (Ref.Name.rfind("s_", 0) == 0 || Ref.Name.rfind("r_", 0) == 0)
        checkAccess(Ref.Name, Ref.Kids[0], S.Line);
    });
  });

  // 3. Guard completeness: every slice load must bounds-test each staged
  // index, every store must bounds-test each output index.
  auto conjuncts = [](const Expr &E, auto &&Self,
                      std::vector<const Expr *> &Out) -> void {
    if (E.Kind == ExprKind::And) {
      Self(E.Kids[0], Self, Out);
      Self(E.Kids[1], Self, Out);
    } else {
      Out.push_back(&E);
    }
  };
  auto guardedNames = [&](const Expr &Cond, const std::string &Prefix) {
    std::set<char> Guarded;
    std::vector<const Expr *> Terms;
    conjuncts(Cond, conjuncts, Terms);
    for (const Expr *T : Terms) {
      if (T->Kind != ExprKind::Lt || T->Kids[0].Kind != ExprKind::Var ||
          T->Kids[1].Kind != ExprKind::Var)
        continue;
      const std::string &L = T->Kids[0].Name;
      const std::string &R = T->Kids[1].Name;
      if (L.rfind(Prefix, 0) == 0 && R.rfind("N_", 0) == 0 &&
          L.substr(Prefix.size()) == R.substr(2))
        Guarded.insert(L.back());
    }
    return Guarded;
  };

  // Slice loads: the staged value must be guarded by a conjunction over
  // every slice dimension. The `inb` guard is resolved within the store's
  // own statement list — each slice-load loop hoists its own `inb`, so a
  // global lookup would see another loop's guard.
  std::function<void(const std::vector<Stmt> &)> WalkLoads =
      [&](const std::vector<Stmt> &Body) {
        for (size_t I = 0; I < Body.size(); ++I) {
          const Stmt &S = Body[I];
          if (!S.Body.empty())
            WalkLoads(S.Body);
          if (S.Kind != StmtKind::ArrayStore)
            continue;
          std::optional<Operand> Op = smemOperand(S.Name);
          if (!Op)
            continue;
          const Expr *Cond = nullptr;
          if (S.Value.Kind == ExprKind::Ternary)
            Cond = &S.Value.Kids[0];
          if (!Cond) {
            C.report(LintPass::BoundsCheck, S.Line,
                     "staging store to " + S.Name +
                         " is not guarded by a bounds test");
            continue;
          }
          const Expr *Resolved = Cond;
          if (Cond->Kind == ExprKind::Var) {
            Resolved = nullptr;
            for (size_t J = 0; J < I; ++J)
              if (Body[J].Kind == StmtKind::Decl &&
                  Body[J].Name == Cond->Name)
                Resolved = &Body[J].Value;
            if (!Resolved) {
              C.report(LintPass::BoundsCheck, S.Line,
                       "staging guard '" + Cond->Name +
                           "' has no definition");
              continue;
            }
          }
          std::set<char> Guarded = guardedNames(*Resolved, "g_");
          for (const SliceDim &Dim : C.Plan.sliceDims(*Op))
            if (Dim.Extent > 0 && !Guarded.count(Dim.Name))
              C.report(LintPass::BoundsCheck, S.Line,
                       "slice load of " +
                           std::string(ir::operandName(*Op)) +
                           " does not bounds-test index '" +
                           std::string(1, Dim.Name) + "' against N_" +
                           std::string(1, Dim.Name));
        }
      };
  WalkLoads(C.M.Body);

  // The output store: find g_C stores and the guards above them.
  std::function<void(const std::vector<Stmt> &, std::vector<const Expr *>)>
      WalkStore = [&](const std::vector<Stmt> &Body,
                      std::vector<const Expr *> Conds) {
        for (const Stmt &S : Body) {
          std::vector<const Expr *> Inner = Conds;
          if (S.Kind == StmtKind::If)
            Inner.push_back(&S.Value);
          if (S.Kind == StmtKind::ArrayStore && S.Name == "g_C") {
            std::set<char> Guarded;
            for (const Expr *Cond : Inner) {
              std::set<char> G = guardedNames(*Cond, "gc_");
              Guarded.insert(G.begin(), G.end());
            }
            for (const StoreDim &Dim : C.Plan.storeDims())
              if (!Guarded.count(Dim.Name))
                C.report(LintPass::BoundsCheck, S.Line,
                         "store to g_C does not bounds-test index '" +
                             std::string(1, Dim.Name) + "' against N_" +
                             std::string(1, Dim.Name));
          }
          if (!S.Body.empty())
            WalkStore(S.Body, Inner);
        }
      };
  WalkStore(C.M.Body, {});
}

//===----------------------------------------------------------------------===//
// BarrierPlacement pass
//===----------------------------------------------------------------------===//

struct SyncEvent {
  enum Kind { Write, Read, Barrier, FlipBuf } K = Write;
  std::string Array;
  int BufSign = 0; ///< 0 whole-array, +1 front (buf), -1 back (1-buf).
  bool DivergentBarrier = false;
  unsigned Line = 0;
};

void collectSyncEvents(const LintContext &C, const std::vector<Stmt> &Body,
                       const std::set<std::string> &Div, bool Divergent,
                       std::vector<SyncEvent> &Out) {
  auto refsDivergent = [&](const Expr &E) {
    std::vector<std::string> Vars;
    collectVars(E, Vars);
    for (const std::string &V : Vars)
      if (Div.count(V))
        return true;
    return false;
  };
  auto bufSign = [&](const Expr &Index) {
    std::optional<IndexForm> Form = linearizeIndex(Index, C.Ambient);
    if (!Form)
      return 0;
    std::optional<int64_t> Coeff = Form->coeff("buf");
    if (!Coeff)
      return 0;
    return *Coeff > 0 ? 1 : -1;
  };
  for (const Stmt &S : Body) {
    switch (S.Kind) {
    case StmtKind::Barrier:
      Out.push_back({SyncEvent::Barrier, "", 0, Divergent, S.Line});
      break;
    case StmtKind::Assign:
      if (S.Name == "buf")
        Out.push_back({SyncEvent::FlipBuf, "", 0, false, S.Line});
      break;
    case StmtKind::ArrayStore: {
      if (smemOperand(S.Name))
        Out.push_back(
            {SyncEvent::Write, S.Name, bufSign(S.Index), false, S.Line});
      forEachIndexExpr(S.Value, [&](const Expr &Ref) {
        if (smemOperand(Ref.Name))
          Out.push_back({SyncEvent::Read, Ref.Name, bufSign(Ref.Kids[0]),
                         false, S.Line});
      });
      break;
    }
    case StmtKind::Loop: {
      bool LoopDivergent =
          Divergent || refsDivergent(S.LoopInit) ||
          refsDivergent(S.LoopBound) || refsDivergent(S.LoopStep);
      if (S.LoopVar == "step") {
        // Two abstract iterations expose write-after-read races across the
        // step boundary (the loop-carried dependence the second barrier
        // protects).
        std::vector<SyncEvent> Once;
        collectSyncEvents(C, S.Body, Div, LoopDivergent, Once);
        Out.insert(Out.end(), Once.begin(), Once.end());
        Out.insert(Out.end(), Once.begin(), Once.end());
      } else {
        collectSyncEvents(C, S.Body, Div, LoopDivergent, Out);
      }
      break;
    }
    case StmtKind::If:
      collectSyncEvents(C, S.Body, Div, Divergent || refsDivergent(S.Value),
                        Out);
      break;
    case StmtKind::Block:
      collectSyncEvents(C, S.Body, Div, Divergent, Out);
      break;
    default:
      break;
    }
  }
}

std::set<std::string> divergentVars(const KernelModel &M) {
  std::set<std::string> Div = {"tid", "threadIdx.x", "threadIdx.y",
                               "get_local_id(0)", "get_local_id(1)"};
  std::function<void(const std::vector<Stmt> &)> Walk =
      [&](const std::vector<Stmt> &Body) {
        auto refs = [&](const Expr &E) {
          std::vector<std::string> Vars;
          collectVars(E, Vars);
          for (const std::string &V : Vars)
            if (Div.count(V))
              return true;
          return false;
        };
        for (const Stmt &S : Body) {
          if ((S.Kind == StmtKind::Decl || S.Kind == StmtKind::Assign) &&
              refs(S.Value))
            Div.insert(S.Name);
          if ((S.Kind == StmtKind::CompoundMul ||
               S.Kind == StmtKind::CompoundDiv) &&
              Div.count(S.Name))
            Div.insert(S.Name);
          if (S.Kind == StmtKind::Loop &&
              (refs(S.LoopInit) || refs(S.LoopBound) || refs(S.LoopStep)))
            Div.insert(S.LoopVar);
          Walk(S.Body);
        }
      };
  // Two sweeps so definitions that precede their divergent source in the
  // walk order (there are none in the emitted schema, but mutations can
  // reorder) still converge.
  Walk(M.Body);
  Walk(M.Body);
  return Div;
}

void passBarrierPlacement(LintContext &C) {
  if (C.M.SharedDecls.empty())
    return; // No SMEM, no races.
  std::set<std::string> Div = divergentVars(C.M);
  std::vector<SyncEvent> Events;
  collectSyncEvents(C, C.M.Body, Div, false, Events);

  // Slot model: front = phase, back = 1 - phase; FlipBuf toggles phase.
  // Single-buffer accesses (BufSign 0) cover the whole array.
  int Phase = 0;
  struct Pending {
    bool Slot[3] = {false, false, false}; ///< [0], [1], whole-array.
    unsigned Line[3] = {0, 0, 0};
    void clear() { Slot[0] = Slot[1] = Slot[2] = false; }
    void mark(int Index, unsigned L) {
      Slot[Index] = true;
      Line[Index] = L;
    }
    /// Whether an access to \p Index overlaps anything pending.
    std::optional<unsigned> overlaps(int Index) const {
      if (Slot[2])
        return Line[2];
      if (Index == 2) {
        if (Slot[0])
          return Line[0];
        if (Slot[1])
          return Line[1];
        return std::nullopt;
      }
      if (Slot[Index])
        return Line[Index];
      return std::nullopt;
    }
  };
  std::map<std::string, Pending> Writes, Reads;
  std::set<unsigned> ReportedBarriers;

  auto slotOf = [&](int BufSign) {
    if (BufSign == 0)
      return 2;
    return BufSign > 0 ? Phase : 1 - Phase;
  };

  for (const SyncEvent &E : Events) {
    switch (E.K) {
    case SyncEvent::FlipBuf:
      Phase = 1 - Phase;
      break;
    case SyncEvent::Barrier:
      if (E.DivergentBarrier) {
        if (ReportedBarriers.insert(E.Line).second)
          C.report(LintPass::BarrierPlacement, E.Line,
                   "barrier sits under thread-divergent control flow "
                   "(deadlock on devices without independent thread "
                   "scheduling)");
        break; // A divergent barrier synchronizes nothing.
      }
      Writes.clear();
      Reads.clear();
      break;
    case SyncEvent::Write: {
      int Slot = slotOf(E.BufSign);
      if (std::optional<unsigned> At = Reads[E.Array].overlaps(Slot))
        C.report(LintPass::BarrierPlacement, E.Line,
                 "staging write to " + E.Array + " races the read at line " +
                     std::to_string(*At) + " (no barrier between them)");
      Writes[E.Array].mark(Slot, E.Line);
      break;
    }
    case SyncEvent::Read: {
      int Slot = slotOf(E.BufSign);
      if (std::optional<unsigned> At = Writes[E.Array].overlaps(Slot))
        C.report(LintPass::BarrierPlacement, E.Line,
                 "read of " + E.Array +
                     " may observe the in-flight write at line " +
                     std::to_string(*At) + " (no barrier between them)");
      Reads[E.Array].mark(Slot, E.Line);
      break;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Dataflow-backed passes — RegisterPressure, RedundantBarrier, DeadStore
// and SmemLifetime all consume one shared KernelDataflow build.
//===----------------------------------------------------------------------===//

void passRegisterPressure(LintContext &C, const DataflowInfo &Flow) {
  unsigned Source = Flow.pressure();
  unsigned PlanEstimate =
      core::planRegisterPressure(C.Plan, C.Opts.ElementSize);
  if (Source > PlanEstimate + PressureToleranceRegs)
    C.report(LintPass::RegisterPressure, 0,
             "liveness-derived register pressure " + std::to_string(Source) +
                 " exceeds the plan estimate " + std::to_string(PlanEstimate) +
                 " by more than " + std::to_string(PressureToleranceRegs) +
                 " registers");
  if (Source > C.Opts.RegisterBudget + PressureToleranceRegs)
    C.report(LintPass::RegisterPressure, 0,
             "liveness-derived register pressure " + std::to_string(Source) +
                 " exceeds the device budget of " +
                 std::to_string(C.Opts.RegisterBudget) + " registers");
}

void passRedundantBarrier(LintContext &C, const DataflowInfo &Flow) {
  for (const BarrierVerdict &V : Flow.Barriers)
    if (V.Redundant)
      C.report(LintPass::RedundantBarrier, V.Line,
               "barrier orders no cross-thread shared-memory dependence");
}

void passDeadStore(LintContext &C, const DataflowInfo &Flow) {
  for (const DefInfo &D : Flow.Defs) {
    if (!D.Dead)
      continue;
    const Location &Loc = Flow.Locations[D.Loc];
    if (Loc.Space == LocSpace::Scalar)
      C.report(LintPass::DeadStore, D.Line,
               Flow.useCount(D.Loc) == 0
                   ? "scalar '" + Loc.Name + "' is written but never used"
                   : "store to '" + Loc.Name +
                         "' is overwritten before any use");
    else if (Loc.Space == LocSpace::RegisterArray)
      C.report(LintPass::DeadStore, D.Line,
               "register tile '" + Loc.Name + "' is staged but never read");
  }
  for (const UndefinedUse &U : Flow.UndefinedUses)
    C.report(LintPass::DeadStore, U.Line,
             "'" + Flow.Locations[U.Loc].Name +
                 "' is read before any definition");
}

void passSmemLifetime(LintContext &C, const DataflowInfo &Flow) {
  for (const SmemBufferLifetime &L : Flow.SmemLifetimes) {
    const Location &Loc = Flow.Locations[L.Loc];
    if (L.Written && !L.Read)
      C.report(LintPass::SmemLifetime, 0,
               "shared buffer '" + Loc.Name + "' is written but never read");
    else if (L.Read && !L.Written)
      C.report(LintPass::SmemLifetime, 0,
               "shared buffer '" + Loc.Name + "' is read but never written");
  }
  if (Flow.DisjointSmemStaging)
    C.report(LintPass::SmemLifetime, 0,
             "staging buffers have disjoint live ranges; the allocations "
             "could share storage",
             LintSeverity::Warning);
}

//===----------------------------------------------------------------------===//
// Race prover passes (11-13): Uniformity / RaceFreedom / BarrierUniformity
//===----------------------------------------------------------------------===//

void passRaceProver(LintContext &C, const DataflowInfo &Flow) {
  RaceProverOptions Opts;
  Opts.WarpSize = C.Opts.WarpSize;
  RaceReport Report = proveRaces(C.Plan, C.M, Flow, Opts);
  for (const RaceFinding &F : Report.Findings) {
    LintPass Pass = LintPass::RaceFreedom;
    LintSeverity Severity = LintSeverity::Error;
    switch (F.Kind) {
    case RaceFindingKind::NonUniformValue:
      Pass = LintPass::Uniformity;
      break;
    case RaceFindingKind::UnknownUniformity:
      Pass = LintPass::Uniformity;
      Severity = LintSeverity::Warning;
      break;
    case RaceFindingKind::DivergentBarrier:
      Pass = LintPass::BarrierUniformity;
      break;
    case RaceFindingKind::UnprovenAccess:
      Severity = LintSeverity::Warning;
      break;
    case RaceFindingKind::WriteWriteRace:
    case RaceFindingKind::WriteReadRace:
    case RaceFindingKind::NonAffineAccess:
      break;
    }
    C.report(Pass, F.Line, F.render(), Severity);
  }
}

//===----------------------------------------------------------------------===//
// lintKernel
//===----------------------------------------------------------------------===//

void dedupeFindings(std::vector<LintFinding> &Findings) {
  std::set<std::tuple<unsigned, unsigned, std::string>> Seen;
  std::vector<LintFinding> Out;
  Out.reserve(Findings.size());
  for (LintFinding &F : Findings)
    if (Seen
            .insert({static_cast<unsigned>(F.Pass), F.Line, F.Message})
            .second)
      Out.push_back(std::move(F));
  Findings = std::move(Out);
}

} // namespace

const char *cogent::analysis::lintPassName(LintPass Pass) {
  unsigned I = static_cast<unsigned>(Pass);
  return I < NumLintPasses ? PassNames[I] : "unknown";
}

std::optional<LintPass>
cogent::analysis::lintPassFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumLintPasses; ++I)
    if (Name == PassNames[I])
      return static_cast<LintPass>(I);
  return std::nullopt;
}

bool cogent::analysis::isRacePass(LintPass Pass) {
  return Pass == LintPass::Uniformity || Pass == LintPass::RaceFreedom ||
         Pass == LintPass::BarrierUniformity;
}

const char *cogent::analysis::lintSeverityName(LintSeverity Severity) {
  return Severity == LintSeverity::Error ? "error" : "warning";
}

const char *cogent::analysis::lintModeName(LintMode Mode) {
  return ModeNames[static_cast<unsigned>(Mode)];
}

std::optional<LintMode>
cogent::analysis::lintModeFromName(const std::string &Name) {
  for (unsigned I = 0; I < 3; ++I)
    if (Name == ModeNames[I])
      return static_cast<LintMode>(I);
  return std::nullopt;
}

std::string LintFinding::render() const {
  std::string Out = std::string(lintSeverityName(Severity)) + ": [" +
                    lintPassName(Pass) + "]";
  if (Line > 0)
    Out += " line " + std::to_string(Line) + ":";
  return Out + " " + Message;
}

LintReport cogent::analysis::lintKernel(const KernelPlan &Plan,
                                        const std::string &KernelSource,
                                        const LintOptions &Options) {
  LintReport Report;
  if (Options.Mode == LintMode::Off)
    return Report;
  ++NumKernelsLinted;

  ErrorOr<KernelModel> Model = parseKernelSource(KernelSource);
  if (!Model) {
    Report.Findings.push_back({LintPass::Structure, LintSeverity::Error, 0,
                               Model.errorMessage()});
    NumLintFindingsTotal += Report.Findings.size();
    return Report;
  }
  for (const ParseIssue &Issue : Model->Issues)
    Report.Findings.push_back(
        {LintPass::Structure, LintSeverity::Error, Issue.Line, Issue.Message});

  LintContext Ctx{Plan, *Model, Options, Report.Findings,
                  buildAmbient(Plan, *Model)};
  passBarrierPlacement(Ctx);
  passBankConflict(Ctx);
  passCoalescing(Ctx);
  passBoundsCheck(Ctx);
  passResourceDecl(Ctx);
  if (ErrorOr<DataflowInfo> Flow = buildDataflow(*Model)) {
    Report.SourcePressure = Flow->pressure();
    passRegisterPressure(Ctx, *Flow);
    passRedundantBarrier(Ctx, *Flow);
    passDeadStore(Ctx, *Flow);
    passSmemLifetime(Ctx, *Flow);
    passRaceProver(Ctx, *Flow);
  }
  dedupeFindings(Report.Findings);
  NumLintFindingsTotal += Report.Findings.size();
  return Report;
}

//===----------------------------------------------------------------------===//
// predictTransactions — warp-exact replay of the parsed access pattern
//===----------------------------------------------------------------------===//

namespace {

/// Identical reduction to gpu::KernelSimulator's countSegments: addresses
/// to transaction-granularity segments, then distinct segments.
uint64_t countSegments(std::vector<int64_t> &Addrs, unsigned ElementSize,
                       unsigned TransactionBytes) {
  if (Addrs.empty())
    return 0;
  for (int64_t &Addr : Addrs)
    Addr = Addr * ElementSize / TransactionBytes;
  std::sort(Addrs.begin(), Addrs.end());
  uint64_t Segments = 1;
  for (size_t I = 1; I < Addrs.size(); ++I)
    Segments += Addrs[I] != Addrs[I - 1];
  return Segments;
}

bool bodyContainsStoreTo(const std::vector<Stmt> &Body,
                         const std::string &Array) {
  bool Found = false;
  forEachStmt(Body, [&](const Stmt &S) {
    if (S.Kind == StmtKind::ArrayStore && S.Name == Array)
      Found = true;
  });
  return Found;
}

struct Replay {
  const KernelModel &M;
  const LintOptions &Opts;
  int64_t NumThreads = 0, TBX = 0;
  std::vector<const Stmt *> ThreadStmts; ///< tid + thread decodes.
  TrafficPrediction Result;
  std::string Failure;

  bool fail(const std::string &Message) {
    if (Failure.empty())
      Failure = Message;
    return false;
  }

  bool mustExec(const Stmt &S, Env &E) {
    if (!execScalar(S, E))
      return fail("statement at line " + std::to_string(S.Line) +
                  " does not evaluate during replay");
    return true;
  }

  /// One cooperative staging loop: simulator round/warp partition over the
  /// flattened slice.
  bool replaySliceLoad(const Stmt &Loop, const Env &StepEnv) {
    std::optional<int64_t> SliceElems = evalExpr(Loop.LoopBound, StepEnv);
    if (!SliceElems)
      return fail("slice loop bound does not evaluate");
    uint64_t *Slot = bodyContainsStoreTo(Loop.Body, "s_A")
                         ? &Result.TransactionsA
                         : &Result.TransactionsB;
    std::vector<int64_t> Addrs;
    for (int64_t RoundBase = 0; RoundBase < *SliceElems;
         RoundBase += NumThreads) {
      int64_t RoundEnd = std::min(RoundBase + NumThreads, *SliceElems);
      for (int64_t WarpBase = RoundBase; WarpBase < RoundEnd;
           WarpBase += Opts.WarpSize) {
        int64_t WarpEnd =
            std::min<int64_t>(WarpBase + Opts.WarpSize, RoundEnd);
        Addrs.clear();
        for (int64_t Elem = WarpBase; Elem < WarpEnd; ++Elem) {
          Env E = StepEnv;
          E[Loop.LoopVar] = Elem;
          for (const Stmt &S : Loop.Body) {
            if (isScalarStmt(S)) {
              if (!mustExec(S, E))
                return false;
              continue;
            }
            if (S.Kind != StmtKind::ArrayStore)
              continue;
            const Expr *Load = nullptr;
            bool Guard = true;
            if (S.Value.Kind == ExprKind::Ternary) {
              std::optional<int64_t> Cond = evalExpr(S.Value.Kids[0], E);
              if (!Cond)
                return fail("staging guard does not evaluate");
              Guard = *Cond != 0;
              if (S.Value.Kids[1].Kind == ExprKind::Index)
                Load = &S.Value.Kids[1];
            } else if (S.Value.Kind == ExprKind::Index) {
              Load = &S.Value;
            }
            if (Guard && Load) {
              std::optional<int64_t> Addr = evalExpr(Load->Kids[0], E);
              if (!Addr)
                return fail("global load address does not evaluate");
              Addrs.push_back(*Addr);
            }
          }
        }
        *Slot += countSegments(Addrs, Opts.ElementSize,
                               Opts.TransactionBytes);
      }
    }
    return true;
  }

  /// The guarded register-tile store: Rx outer, Ry inner, warps over tid.
  bool replayStore(const Stmt &RxLoop, const Env &BlockEnv) {
    std::optional<int64_t> RxBound = evalExpr(RxLoop.LoopBound, BlockEnv);
    if (!RxBound)
      return fail("store rx bound does not evaluate");
    std::vector<int64_t> Addrs;
    for (int64_t Rx = 0; Rx < *RxBound; ++Rx) {
      Env EnvX = BlockEnv;
      EnvX[RxLoop.LoopVar] = Rx;
      const Stmt *RyLoop = nullptr;
      for (const Stmt &S : RxLoop.Body) {
        if (isScalarStmt(S)) {
          if (!mustExec(S, EnvX))
            return false;
        } else if (S.Kind == StmtKind::Loop) {
          RyLoop = &S;
        }
      }
      if (!RyLoop)
        return fail("store loop nest has no inner register loop");
      std::optional<int64_t> RyBound = evalExpr(RyLoop->LoopBound, EnvX);
      if (!RyBound)
        return fail("store ry bound does not evaluate");
      for (int64_t Ry = 0; Ry < *RyBound; ++Ry) {
        Env EnvY = EnvX;
        EnvY[RyLoop->LoopVar] = Ry;
        // Split the ry body into thread-independent scalars (y_ decode),
        // per-thread scalars (gc_ definitions) and the guarded store.
        std::vector<const Stmt *> PerThread;
        const Stmt *Guard = nullptr;
        const Stmt *Store = nullptr;
        for (const Stmt &S : RyLoop->Body) {
          if (isScalarStmt(S)) {
            if (!execScalar(S, EnvY))
              PerThread.push_back(&S);
          } else if (S.Kind == StmtKind::If) {
            Guard = &S;
            for (const Stmt &Inner : S.Body)
              if (Inner.Kind == StmtKind::ArrayStore && Inner.Name == "g_C")
                Store = &Inner;
          } else if (S.Kind == StmtKind::ArrayStore && S.Name == "g_C") {
            Store = &S;
          }
        }
        if (!Store)
          return fail("store loop nest has no g_C store");
        for (int64_t WarpBase = 0; WarpBase < NumThreads;
             WarpBase += Opts.WarpSize) {
          int64_t WarpEnd =
              std::min<int64_t>(WarpBase + Opts.WarpSize, NumThreads);
          Addrs.clear();
          for (int64_t Tid = WarpBase; Tid < WarpEnd; ++Tid) {
            Env E = EnvY;
            E["threadIdx.x"] = Tid % TBX;
            E["threadIdx.y"] = Tid / TBX;
            E["get_local_id(0)"] = Tid % TBX;
            E["get_local_id(1)"] = Tid / TBX;
            for (const Stmt *S : ThreadStmts)
              if (!mustExec(*S, E))
                return false;
            for (const Stmt *S : PerThread)
              if (!mustExec(*S, E))
                return false;
            bool GuardOk = true;
            if (Guard) {
              std::optional<int64_t> Cond = evalExpr(Guard->Value, E);
              if (!Cond)
                return fail("store guard does not evaluate");
              GuardOk = *Cond != 0;
            }
            if (!GuardOk)
              continue;
            std::optional<int64_t> Addr = evalExpr(Store->Index, E);
            if (!Addr)
              return fail("store address does not evaluate");
            Addrs.push_back(*Addr);
          }
          Result.TransactionsC +=
              countSegments(Addrs, Opts.ElementSize, Opts.TransactionBytes);
        }
      }
    }
    return true;
  }

  bool run() {
    // Function-scope setup: constants evaluate now, per-thread statements
    // (tid and the thread-index decodes) replay per simulated thread.
    Env Base;
    for (const auto &[Name, Value] : M.Defines)
      Base[Name] = Value;
    const Stmt *GridLoop = nullptr;
    for (const Stmt &S : M.Body) {
      if (S.Kind == StmtKind::Loop && !GridLoop &&
          bodyContainsStoreTo(S.Body, "g_C")) {
        GridLoop = &S;
        continue;
      }
      if (isScalarStmt(S) && !execScalar(S, Base))
        ThreadStmts.push_back(&S);
    }
    if (!GridLoop)
      return fail("no grid-stride loop found");
    auto lookup = [&](const char *Name) -> int64_t {
      auto It = Base.find(Name);
      return It == Base.end() ? 0 : It->second;
    };
    NumThreads = lookup("NTHREADS");
    TBX = lookup("TBX");
    std::optional<int64_t> TotalBlocks = evalExpr(GridLoop->LoopBound, Base);
    auto NumStepsIt = Base.find("numSteps");
    if (NumThreads <= 0 || TBX <= 0 || !TotalBlocks ||
        NumStepsIt == Base.end())
      return fail("kernel prologue does not define the launch shape");

    for (int64_t Block = 0; Block < *TotalBlocks; ++Block) {
      Env BlockEnv = Base;
      BlockEnv[GridLoop->LoopVar] = Block;
      BlockEnv["blockIdx.x"] = Block;
      BlockEnv["get_group_id(0)"] = Block;
      const Stmt *StepLoop = nullptr;
      const Stmt *StoreLoop = nullptr;
      for (const Stmt &S : GridLoop->Body) {
        if (isScalarStmt(S)) {
          if (!mustExec(S, BlockEnv))
            return false;
          continue;
        }
        if (S.Kind != StmtKind::Loop)
          continue;
        if (S.LoopVar == "step")
          StepLoop = &S;
        else if (bodyContainsStoreTo(S.Body, "g_C"))
          StoreLoop = &S;
        // Anything else (the register zero-init) touches no GMEM.
      }
      if (!StepLoop || !StoreLoop)
        return fail("grid body lacks the step loop or the store nest");

      for (int64_t Step = 0; Step < NumStepsIt->second; ++Step) {
        Env StepEnv = BlockEnv;
        StepEnv["step"] = Step;
        for (const Stmt &S : StepLoop->Body) {
          if (isScalarStmt(S)) {
            if (!mustExec(S, StepEnv))
              return false;
            continue;
          }
          if (S.Kind == StmtKind::Loop &&
              (bodyContainsStoreTo(S.Body, "s_A") ||
               bodyContainsStoreTo(S.Body, "s_B")))
            if (!replaySliceLoad(S, StepEnv))
              return false;
        }
      }
      if (!replayStore(*StoreLoop, BlockEnv))
        return false;
    }
    return true;
  }
};

} // namespace

ErrorOr<TrafficPrediction>
cogent::analysis::predictTransactions(const KernelPlan &Plan,
                                      const std::string &KernelSource,
                                      const LintOptions &Options) {
  ErrorOr<KernelModel> Model = parseKernelSource(KernelSource);
  if (!Model)
    return Model.takeError();
  if (Model->DoubleBuffer)
    return Error(ErrorCode::VerificationFailed,
                 "predictTransactions only replays single-buffer kernels "
                 "(the generation pipeline never emits double-buffered "
                 "sources)");
  // Bind the extent parameters exactly as the launcher would, then replay.
  for (char Name : Plan.contraction().allIndices())
    Model->Defines[std::string("N_") + Name] = Plan.contraction().extent(Name);
  Replay R{*Model, Options, 0, 0, {}, {}, {}};
  if (!R.run())
    return Error(ErrorCode::VerificationFailed,
                 "replay failed: " + R.Failure);
  return R.Result;
}

//===----------------------------------------------------------------------===//
// explainLint
//===----------------------------------------------------------------------===//

std::string cogent::analysis::explainLint(const KernelPlan &Plan,
                                          const std::string &KernelSource,
                                          const LintOptions &Options) {
  std::ostringstream OS;
  ErrorOr<KernelModel> Model = parseKernelSource(KernelSource);
  if (!Model) {
    OS << "KernelLint: source failed structural parse: "
       << Model.errorMessage() << "\n";
    return OS.str();
  }
  const KernelModel &M = *Model;
  OS << "KernelLint report for " << M.KernelName << " ("
     << (M.IsCuda ? "CUDA" : "OpenCL") << " dialect, " << M.ElementType
     << (M.DoubleBuffer ? ", double-buffered" : ", single-buffered")
     << ")\n";
  OS << "  defines:";
  for (const auto &[Name, Value] : M.Defines)
    OS << " " << Name << "=" << Value;
  OS << "\n  shared:";
  for (const Stmt &S : M.SharedDecls)
    OS << " " << S.Name << "[" << renderExpr(S.Value) << "]";
  OS << "  (plan stages " << Plan.sliceElements(Operand::A) << "/"
     << Plan.sliceElements(Operand::B) << " elements per step)\n";
  OS << "  barriers: " << M.BarrierCount << "\n";

  // Per-dimension staging strides, the quantities the BankConflict and
  // Coalescing passes check and a warp reads mod-32 banks through.
  for (Operand Op : {Operand::A, Operand::B}) {
    OS << "  slice " << ir::operandName(Op) << ":";
    for (const SliceDim &Dim : Plan.sliceDims(Op))
      OS << " " << Dim.Name << "(tile " << Dim.Tile << ", gmem stride "
         << Dim.GlobalStride << ", smem stride " << Dim.SmemStride
         << ", bank " << (Dim.SmemStride % 32) << ")";
    OS << "\n";
  }

  LintOptions Strict = Options;
  Strict.Mode = LintMode::Strict;
  LintReport Report = lintKernel(Plan, KernelSource, Strict);
  if (ErrorOr<TrafficPrediction> Traffic =
          predictTransactions(Plan, KernelSource, Options))
    OS << "  replayed transactions: A=" << Traffic->TransactionsA
       << " B=" << Traffic->TransactionsB << " C=" << Traffic->TransactionsC
       << " (total " << Traffic->total() << ")\n";
  if (Report.clean()) {
    OS << "  findings: none\n";
  } else {
    OS << "  findings (" << Report.Findings.size() << "):\n";
    for (const LintFinding &F : Report.Findings)
      OS << "    " << F.render() << "\n";
  }
  return OS.str();
}
