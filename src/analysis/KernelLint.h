//===- analysis/KernelLint.h - Static analyzer for emitted kernels --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KernelLint: independent static-analysis passes over the KernelModel of
/// one emitted kernel, cross-checked against the KernelPlan that produced
/// it. Where the PlanVerifier re-checks the *plan* against device budgets,
/// KernelLint re-checks the *source* against the plan — the two views can
/// only drift if codegen regresses, and that drift is exactly what each
/// pass detects:
///
///   BarrierPlacement — flow-sensitive SMEM race detection: every staging
///     write must be separated from cross-thread reads by a barrier, and
///     no barrier may sit under thread-divergent control flow.
///   BankConflict     — SMEM index expressions must use the plan's staging
///     strides (mod-32 bank behavior is a function of those strides).
///   Coalescing       — GMEM index expressions must use the plan's global
///     strides and tile bases; predictTransactions() replays the access
///     pattern so the analyzer can be diffed against KernelSimulator.
///   BoundsCheck      — affine index ranges vs. declared SMEM/register
///     array sizes, and guard completeness vs. tensor extents.
///   ResourceDecl     — #define table, __shared__ bytes and register-tile
///     declarations must match the verified plan.
///   RegisterPressure — KernelDataflow's per-thread liveness-derived
///     register estimate must stay within PressureToleranceRegs of the
///     plan's analytic estimate and the device budget.
///   RedundantBarrier — every __syncthreads() must order at least one
///     cross-thread SMEM dependence (trace replay over KernelDataflow).
///   DeadStore        — no scalar may be written and never read, or read
///     before any definition; no register tile may be staged yet unread.
///   SmemLifetime     — staging buffers must be both written and read;
///     disjoint A/B live ranges are surfaced as a reuse note.
///   Uniformity       — taint classes: tile bases, trip counts and stride
///     variables must be thread-uniform (KernelRaceProver).
///   RaceFreedom      — symbolic two-thread proof that no same-interval
///     SMEM/GMEM access pair can alias across threads (KernelRaceProver).
///   BarrierUniformity— every barrier sits under uniform control only
///     (KernelRaceProver).
///
/// Findings are typed (pass + severity + message + line) and deliberately
/// fire only on plan-vs-source inconsistency, never on inherent layout
/// quality: a clean emission lints clean by construction, which is what
/// lets the fuzz harness use strict lint as an oracle.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_ANALYSIS_KERNELLINT_H
#define COGENT_ANALYSIS_KERNELLINT_H

#include "analysis/KernelModel.h"
#include "core/KernelPlan.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cogent {
namespace analysis {

/// The independent analysis passes, in run order.
enum class LintPass {
  Structure,        ///< The source failed to parse as the emitted schema.
  BarrierPlacement,
  BankConflict,
  Coalescing,
  BoundsCheck,
  ResourceDecl,
  RegisterPressure, ///< Liveness-derived pressure vs. plan/device budget.
  RedundantBarrier, ///< Barriers that order no SMEM dependence.
  DeadStore,        ///< Writes never read; reads never written.
  SmemLifetime,     ///< Staging-buffer live ranges and reuse notes.
  Uniformity,       ///< Taint classes of schema-uniform/thread roles.
  RaceFreedom,      ///< Symbolic two-thread SMEM/GMEM race proof.
  BarrierUniformity,///< Every barrier under thread-uniform control.
};

/// Number of LintPass enumerators (name-table round-trip tests walk this).
inline constexpr unsigned NumLintPasses = 13;

/// Stable identifier, e.g. "barrier-placement".
const char *lintPassName(LintPass Pass);

/// Inverse of lintPassName; returns std::nullopt for unknown names.
std::optional<LintPass> lintPassFromName(const std::string &Name);

/// True for the three KernelRaceProver-backed passes (11-13): Uniformity,
/// RaceFreedom and BarrierUniformity. The generation gate counts their
/// findings separately (GenerationResult::RaceFindings/RaceRejections).
bool isRacePass(LintPass Pass);

enum class LintSeverity { Warning, Error };

const char *lintSeverityName(LintSeverity Severity);

/// One typed finding.
struct LintFinding {
  LintPass Pass = LintPass::Structure;
  LintSeverity Severity = LintSeverity::Error;
  unsigned Line = 0;  ///< 1-based kernel-source line, 0 when unanchored.
  std::string Message;

  /// "error: [bank-conflict] line 12: ..." for logs and --explain-lint.
  std::string render() const;
};

/// How the generation pipeline treats findings (CogentOptions::Lint,
/// cogent_cli --lint=MODE).
enum class LintMode {
  Off,    ///< Analyzer not run.
  Warn,   ///< Findings recorded in GenerationResult, candidates kept.
  Strict, ///< Error findings reject the candidate (demoting the rung).
};

const char *lintModeName(LintMode Mode);
std::optional<LintMode> lintModeFromName(const std::string &Name);

struct LintOptions {
  LintMode Mode = LintMode::Strict;
  unsigned ElementSize = 8;
  unsigned WarpSize = 32;
  unsigned TransactionBytes = 128;
  /// Per-thread register budget the RegisterPressure pass checks against
  /// (CUDA's 255 architectural limit by default; the pipeline syncs it
  /// from DeviceSpec::MaxRegistersPerThread).
  unsigned RegisterBudget = 255;
};

/// The result of one lintKernel run.
struct LintReport {
  std::vector<LintFinding> Findings;
  /// KernelDataflow's per-thread register-pressure estimate for the linted
  /// source (0 when the source did not parse or lint was off). Always
  /// filled when the analyzer runs, independent of findings — this is the
  /// always-on reporting half of the RegisterPressure pass.
  unsigned SourcePressure = 0;

  unsigned errorCount() const {
    unsigned N = 0;
    for (const LintFinding &F : Findings)
      N += F.Severity == LintSeverity::Error;
    return N;
  }
  bool clean() const { return Findings.empty(); }
};

/// Runs every pass over \p KernelSource against \p Plan. With Mode == Off
/// returns an empty report without parsing.
LintReport lintKernel(const core::KernelPlan &Plan,
                      const std::string &KernelSource,
                      const LintOptions &Options = LintOptions());

/// Per-operand GMEM transaction counts predicted by replaying the parsed
/// source's access pattern warp by warp — the Coalescing pass's
/// quantitative half, kept bit-identical to gpu::simulateKernel's counts
/// (asserted by tests, not just documented). Double-buffered sources are
/// a typed error: the pipeline only emits single-buffer kernels.
struct TrafficPrediction {
  uint64_t TransactionsA = 0;
  uint64_t TransactionsB = 0;
  uint64_t TransactionsC = 0;
  uint64_t total() const {
    return TransactionsA + TransactionsB + TransactionsC;
  }
};

ErrorOr<TrafficPrediction>
predictTransactions(const core::KernelPlan &Plan,
                    const std::string &KernelSource,
                    const LintOptions &Options = LintOptions());

/// Human-oriented dump for cogent_cli --explain-lint: the parsed resource
/// table, barrier/staging structure, per-access stride checks and any
/// findings.
std::string explainLint(const core::KernelPlan &Plan,
                        const std::string &KernelSource,
                        const LintOptions &Options = LintOptions());

} // namespace analysis
} // namespace cogent

#endif // COGENT_ANALYSIS_KERNELLINT_H
