//===- analysis/KernelModel.cpp - Structural model of emitted kernels -----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelModel.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace cogent;
using namespace cogent::analysis;

//===----------------------------------------------------------------------===//
// Expression evaluation / linearization
//===----------------------------------------------------------------------===//

std::optional<int64_t> cogent::analysis::evalExpr(const Expr &E,
                                                  const Env &Bindings) {
  auto kid = [&](size_t I) { return evalExpr(E.Kids[I], Bindings); };
  switch (E.Kind) {
  case ExprKind::Num:
    return E.Value;
  case ExprKind::Var: {
    auto It = Bindings.find(E.Name);
    if (It == Bindings.end())
      return std::nullopt;
    return It->second;
  }
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
  case ExprKind::Div:
  case ExprKind::Mod:
  case ExprKind::Lt:
  case ExprKind::Le:
  case ExprKind::Gt:
  case ExprKind::Ge:
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::And: {
    std::optional<int64_t> L = kid(0), R = kid(1);
    if (!L || !R)
      return std::nullopt;
    switch (E.Kind) {
    case ExprKind::Add: return *L + *R;
    case ExprKind::Sub: return *L - *R;
    case ExprKind::Mul: return *L * *R;
    case ExprKind::Div: return *R == 0 ? std::nullopt
                                       : std::optional<int64_t>(*L / *R);
    case ExprKind::Mod: return *R == 0 ? std::nullopt
                                       : std::optional<int64_t>(*L % *R);
    case ExprKind::Lt:  return *L < *R ? 1 : 0;
    case ExprKind::Le:  return *L <= *R ? 1 : 0;
    case ExprKind::Gt:  return *L > *R ? 1 : 0;
    case ExprKind::Ge:  return *L >= *R ? 1 : 0;
    case ExprKind::Eq:  return *L == *R ? 1 : 0;
    case ExprKind::Ne:  return *L != *R ? 1 : 0;
    case ExprKind::And: return (*L != 0 && *R != 0) ? 1 : 0;
    default: return std::nullopt;
    }
  }
  case ExprKind::Ternary: {
    std::optional<int64_t> C = kid(0);
    if (!C)
      return std::nullopt;
    return *C != 0 ? kid(1) : kid(2);
  }
  case ExprKind::Index:
    return std::nullopt;
  }
  return std::nullopt;
}

void cogent::analysis::collectVars(const Expr &E,
                                   std::vector<std::string> &Out) {
  if (E.Kind == ExprKind::Var)
    Out.push_back(E.Name);
  for (const Expr &Kid : E.Kids)
    collectVars(Kid, Out);
}

std::string cogent::analysis::renderExpr(const Expr &E) {
  auto bin = [&](const char *Op) {
    return "(" + renderExpr(E.Kids[0]) + " " + Op + " " +
           renderExpr(E.Kids[1]) + ")";
  };
  switch (E.Kind) {
  case ExprKind::Num: return std::to_string(E.Value);
  case ExprKind::Var: return E.Name;
  case ExprKind::Add: return bin("+");
  case ExprKind::Sub: return bin("-");
  case ExprKind::Mul: return bin("*");
  case ExprKind::Div: return bin("/");
  case ExprKind::Mod: return bin("%");
  case ExprKind::Lt:  return bin("<");
  case ExprKind::Le:  return bin("<=");
  case ExprKind::Gt:  return bin(">");
  case ExprKind::Ge:  return bin(">=");
  case ExprKind::Eq:  return bin("==");
  case ExprKind::Ne:  return bin("!=");
  case ExprKind::And: return bin("&&");
  case ExprKind::Ternary:
    return "(" + renderExpr(E.Kids[0]) + " ? " + renderExpr(E.Kids[1]) +
           " : " + renderExpr(E.Kids[2]) + ")";
  case ExprKind::Index:
    return E.Name + "[" + renderExpr(E.Kids[0]) + "]";
  }
  return "?";
}

std::optional<int64_t> IndexForm::coeff(const std::string &Coord) const {
  for (const IndexTerm &T : Terms)
    if (T.Coord == Coord)
      return T.Coeff;
  return std::nullopt;
}

namespace {

void addTerm(IndexForm &F, const std::string &Coord, int64_t Coeff) {
  for (IndexTerm &T : F.Terms)
    if (T.Coord == Coord) {
      T.Coeff += Coeff;
      return;
    }
  F.Terms.push_back({Coord, Coeff});
}

bool linearizeInto(const Expr &E, const Env &Ambient, int64_t Scale,
                   IndexForm &F) {
  // Whatever the ambient environment fully resolves is a constant, no
  // matter its shape — this is what turns stride variables into numbers.
  if (std::optional<int64_t> V = evalExpr(E, Ambient)) {
    F.Constant += Scale * *V;
    return true;
  }
  switch (E.Kind) {
  case ExprKind::Var:
    addTerm(F, E.Name, Scale);
    return true;
  case ExprKind::Add:
    return linearizeInto(E.Kids[0], Ambient, Scale, F) &&
           linearizeInto(E.Kids[1], Ambient, Scale, F);
  case ExprKind::Sub:
    return linearizeInto(E.Kids[0], Ambient, Scale, F) &&
           linearizeInto(E.Kids[1], Ambient, -Scale, F);
  case ExprKind::Mul: {
    if (std::optional<int64_t> L = evalExpr(E.Kids[0], Ambient))
      return linearizeInto(E.Kids[1], Ambient, Scale * *L, F);
    if (std::optional<int64_t> R = evalExpr(E.Kids[1], Ambient))
      return linearizeInto(E.Kids[0], Ambient, Scale * *R, F);
    return false; // Two unresolved coordinates multiplied: not affine.
  }
  default:
    return false;
  }
}

} // namespace

std::optional<IndexForm>
cogent::analysis::linearizeIndex(const Expr &E, const Env &Ambient) {
  IndexForm F;
  if (!linearizeInto(E, Ambient, 1, F))
    return std::nullopt;
  F.Terms.erase(std::remove_if(F.Terms.begin(), F.Terms.end(),
                               [](const IndexTerm &T) { return T.Coeff == 0; }),
                F.Terms.end());
  return F;
}

//===----------------------------------------------------------------------===//
// Expression parser
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over one statement's expression text. The
/// grammar is the emitted subset of C: integer arithmetic with casts,
/// comparisons, `&&` conjunctions, one level of ?:, and array accesses.
class ExprParser {
public:
  ExprParser(std::string_view Text) : S(Text) {}

  std::optional<Expr> parse() {
    std::optional<Expr> E = parseTernary();
    skipSpace();
    if (E && Pos != S.size()) {
      Err = "trailing text '" + std::string(S.substr(Pos)) + "'";
      return std::nullopt;
    }
    return E;
  }

  std::optional<Expr> parseTernary() {
    std::optional<Expr> C = parseAnd();
    if (!C)
      return std::nullopt;
    skipSpace();
    if (!eat('?'))
      return C;
    std::optional<Expr> T = parseTernary();
    skipSpace();
    if (!T || !eat(':'))
      return fail("malformed ?: expression");
    std::optional<Expr> F = parseTernary();
    if (!F)
      return std::nullopt;
    Expr E;
    E.Kind = ExprKind::Ternary;
    E.Kids = {std::move(*C), std::move(*T), std::move(*F)};
    return E;
  }

  const std::string &error() const { return Err; }

private:
  std::string_view S;
  size_t Pos = 0;
  std::string Err;

  std::optional<Expr> fail(std::string Message) {
    if (Err.empty())
      Err = std::move(Message);
    return std::nullopt;
  }

  void skipSpace() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipSpace();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool eatWord(std::string_view W) {
    skipSpace();
    if (S.substr(Pos, W.size()) != W)
      return false;
    size_t After = Pos + W.size();
    if (After < S.size() &&
        (std::isalnum(static_cast<unsigned char>(S[After])) || S[After] == '_'))
      return false;
    Pos = After;
    return true;
  }

  std::optional<Expr> parseAnd() {
    std::optional<Expr> L = parseCompare();
    while (L) {
      skipSpace();
      if (S.substr(Pos, 2) != "&&")
        break;
      Pos += 2;
      std::optional<Expr> R = parseCompare();
      if (!R)
        return std::nullopt;
      Expr E;
      E.Kind = ExprKind::And;
      E.Kids = {std::move(*L), std::move(*R)};
      L = std::move(E);
    }
    return L;
  }

  std::optional<Expr> parseCompare() {
    std::optional<Expr> L = parseAdd();
    if (!L)
      return std::nullopt;
    skipSpace();
    ExprKind Kind;
    if (S.substr(Pos, 2) == "<=") { Kind = ExprKind::Le; Pos += 2; }
    else if (S.substr(Pos, 2) == ">=") { Kind = ExprKind::Ge; Pos += 2; }
    else if (S.substr(Pos, 2) == "==") { Kind = ExprKind::Eq; Pos += 2; }
    else if (S.substr(Pos, 2) == "!=") { Kind = ExprKind::Ne; Pos += 2; }
    else if (Pos < S.size() && S[Pos] == '<') { Kind = ExprKind::Lt; ++Pos; }
    else if (Pos < S.size() && S[Pos] == '>') { Kind = ExprKind::Gt; ++Pos; }
    else
      return L;
    std::optional<Expr> R = parseAdd();
    if (!R)
      return std::nullopt;
    Expr E;
    E.Kind = Kind;
    E.Kids = {std::move(*L), std::move(*R)};
    return E;
  }

  std::optional<Expr> parseAdd() {
    std::optional<Expr> L = parseMul();
    while (L) {
      skipSpace();
      if (Pos >= S.size() || (S[Pos] != '+' && S[Pos] != '-'))
        break;
      // Leave "+=" / "/=" style compounds to the statement layer.
      if (Pos + 1 < S.size() && S[Pos + 1] == '=')
        break;
      ExprKind Kind = S[Pos] == '+' ? ExprKind::Add : ExprKind::Sub;
      ++Pos;
      std::optional<Expr> R = parseMul();
      if (!R)
        return std::nullopt;
      Expr E;
      E.Kind = Kind;
      E.Kids = {std::move(*L), std::move(*R)};
      L = std::move(E);
    }
    return L;
  }

  std::optional<Expr> parseMul() {
    std::optional<Expr> L = parseUnary();
    while (L) {
      skipSpace();
      if (Pos >= S.size() ||
          (S[Pos] != '*' && S[Pos] != '/' && S[Pos] != '%'))
        break;
      if (Pos + 1 < S.size() && S[Pos + 1] == '=')
        break;
      ExprKind Kind = S[Pos] == '*'   ? ExprKind::Mul
                      : S[Pos] == '/' ? ExprKind::Div
                                      : ExprKind::Mod;
      ++Pos;
      std::optional<Expr> R = parseUnary();
      if (!R)
        return std::nullopt;
      Expr E;
      E.Kind = Kind;
      E.Kids = {std::move(*L), std::move(*R)};
      L = std::move(E);
    }
    return L;
  }

  std::optional<Expr> parseUnary() {
    skipSpace();
    if (eat('-')) {
      std::optional<Expr> K = parseUnary();
      if (!K)
        return std::nullopt;
      Expr E;
      E.Kind = ExprKind::Sub;
      Expr Zero;
      E.Kids = {Zero, std::move(*K)};
      return E;
    }
    return parsePrimary();
  }

  /// True when the parenthesized text starting after '(' is a C cast of
  /// the emitted kind — a pure type-keyword sequence.
  bool tryEatCast() {
    size_t Save = Pos;
    if (!eat('('))
      return false;
    bool SawType = false;
    while (eatWord("long") || eatWord("int") || eatWord("unsigned") ||
           eatWord("short") || eatWord("char") || eatWord("float") ||
           eatWord("double") || eatWord("const"))
      SawType = true;
    if (SawType && eat(')'))
      return true;
    Pos = Save;
    return false;
  }

  std::optional<Expr> parsePrimary() {
    skipSpace();
    if (Pos >= S.size())
      return fail("expected expression, got end of statement");
    if (tryEatCast())
      return parseUnary(); // Erase the cast: the value grammar is integral.
    if (eat('(')) {
      std::optional<Expr> E = parseTernary();
      if (!E || !eat(')'))
        return fail("unbalanced parentheses");
      return E;
    }
    char C = S[Pos];
    if (std::isdigit(static_cast<unsigned char>(C)))
      return parseNumber();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return parseIdent();
    return fail(std::string("unexpected character '") + C + "'");
  }

  std::optional<Expr> parseNumber() {
    size_t Start = Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    Expr E;
    E.Value = std::strtoll(std::string(S.substr(Start, Pos - Start)).c_str(),
                           nullptr, 10);
    // Floating literals only appear as stored zeros (`0.0`, `0.0f`); keep
    // the integer part and discard fraction/suffix.
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    while (Pos < S.size() && (S[Pos] == 'f' || S[Pos] == 'F' ||
                              S[Pos] == 'l' || S[Pos] == 'L' ||
                              S[Pos] == 'u' || S[Pos] == 'U'))
      ++Pos;
    return E;
  }

  std::optional<Expr> parseIdent() {
    size_t Start = Pos;
    auto identChar = [&](char C) {
      return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
    };
    while (Pos < S.size() && identChar(S[Pos]))
      ++Pos;
    // Dotted builtins: threadIdx.x, blockIdx.x, gridDim.x.
    while (Pos + 1 < S.size() && S[Pos] == '.' && identChar(S[Pos + 1])) {
      ++Pos;
      while (Pos < S.size() && identChar(S[Pos]))
        ++Pos;
    }
    std::string Name(S.substr(Start, Pos - Start));
    if (Name == "true" || Name == "false") {
      Expr E;
      E.Value = Name == "true" ? 1 : 0;
      return E;
    }
    // Zero-arity-style builtin calls (get_local_id(0), get_group_id(1)):
    // kept whole as an opaque variable name.
    if (Pos < S.size() && S[Pos] == '(') {
      size_t Close = Pos + 1;
      while (Close < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Close])))
        ++Close;
      if (Close < S.size() && S[Close] == ')') {
        Name += std::string(S.substr(Pos, Close + 1 - Pos));
        Pos = Close + 1;
      } else {
        return fail("unsupported call expression '" + Name + "('");
      }
    }
    // Array element.
    if (eat('[')) {
      std::optional<Expr> Idx = parseTernary();
      if (!Idx || !eat(']'))
        return fail("unbalanced array subscript on '" + Name + "'");
      Expr E;
      E.Kind = ExprKind::Index;
      E.Name = std::move(Name);
      E.Kids = {std::move(*Idx)};
      return E;
    }
    Expr E;
    E.Kind = ExprKind::Var;
    E.Name = std::move(Name);
    return E;
  }
};

std::optional<Expr> parseExprText(std::string_view Text, std::string *Err) {
  ExprParser P(Text);
  std::optional<Expr> E = P.parse();
  if (!E && Err)
    *Err = P.error().empty() ? "unparseable expression" : P.error();
  return E;
}

//===----------------------------------------------------------------------===//
// Statement parser
//===----------------------------------------------------------------------===//

struct LineRec {
  std::string Text; ///< Trimmed, comment-stripped.
  unsigned Line = 0;
};

std::string trimCopy(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return std::string(S.substr(B, E - B));
}

bool startsWith(const std::string &S, std::string_view Prefix) {
  return S.compare(0, Prefix.size(), Prefix) == 0;
}

bool isBarrierText(const std::string &S) {
  return S == "__syncthreads();" || S == "__syncthreads()" ||
         S == "barrier(CLK_LOCAL_MEM_FENCE);" ||
         S == "barrier(CLK_LOCAL_MEM_FENCE)";
}

/// The statement-tree builder: consumes the body lines of one kernel.
class StmtParser {
public:
  StmtParser(const std::vector<LineRec> &Lines, KernelModel &Model)
      : Lines(Lines), M(Model) {}

  /// Parses statements until a closing '}' (consumed) or end of input.
  /// \p TopLevel routes array declarations into the model's decl lists.
  std::vector<Stmt> parseBlock(bool TopLevel) {
    std::vector<Stmt> Out;
    while (I < Lines.size()) {
      const std::string &Text = Lines[I].Text;
      if (Text.empty()) {
        ++I;
        continue;
      }
      if (Text[0] == '}') {
        ++I;
        return Out;
      }
      parseOne(Out, TopLevel);
    }
    issue(Lines.empty() ? 0 : Lines.back().Line,
          "block not closed before end of source");
    HardFailure = true;
    return Out;
  }

  bool hardFailure() const { return HardFailure; }

private:
  const std::vector<LineRec> &Lines;
  KernelModel &M;
  size_t I = 0;
  bool HardFailure = false;

  void issue(unsigned Line, std::string Message) {
    M.Issues.push_back({Line, std::move(Message)});
  }

  Expr exprOrIssue(std::string_view Text, unsigned Line) {
    std::string Err;
    if (std::optional<Expr> E = parseExprText(Text, &Err))
      return *E;
    issue(Line, "bad expression '" + std::string(trimCopy(Text)) + "': " + Err);
    return Expr();
  }

  /// Parses exactly one statement (consuming one or more lines) into Out.
  void parseOne(std::vector<Stmt> &Out, bool TopLevel) {
    const LineRec &L = Lines[I];
    const std::string &Text = L.Text;

    if (isBarrierText(Text)) {
      Stmt S;
      S.Kind = StmtKind::Barrier;
      S.Line = L.Line;
      ++M.BarrierCount;
      Out.push_back(std::move(S));
      ++I;
      return;
    }
    if (Text == "{") {
      Stmt S;
      S.Kind = StmtKind::Block;
      S.Line = L.Line;
      ++I;
      S.Body = parseBlock(false);
      Out.push_back(std::move(S));
      return;
    }
    if (startsWith(Text, "for (") || startsWith(Text, "for(")) {
      parseFor(Out);
      return;
    }
    if (startsWith(Text, "if (") || startsWith(Text, "if(")) {
      parseIf(Out);
      return;
    }

    // Plain statement line; decode lines carry two ';'-terminated
    // micro-statements ("const int t_a = txq % 4; txq /= 4;").
    ++I;
    size_t Start = 0;
    while (Start < Text.size()) {
      size_t Semi = Text.find(';', Start);
      std::string Chunk = trimCopy(
          Text.substr(Start, Semi == std::string::npos ? std::string::npos
                                                       : Semi - Start));
      Start = Semi == std::string::npos ? Text.size() : Semi + 1;
      if (Chunk.empty())
        continue;
      parseMicro(Chunk, L.Line, Out, TopLevel);
    }
  }

  /// Splits "for (init; cond; step)" and parses body ({...} or the next
  /// single statement, which may itself be a braceless loop).
  void parseFor(std::vector<Stmt> &Out) {
    const LineRec &L = Lines[I];
    const std::string &Text = L.Text;
    size_t Open = Text.find('(');
    size_t Close = Text.rfind(')');
    if (Open == std::string::npos || Close == std::string::npos ||
        Close < Open) {
      issue(L.Line, "malformed for header");
      ++I;
      return;
    }
    std::string Header = Text.substr(Open + 1, Close - Open - 1);
    std::string Tail = trimCopy(Text.substr(Close + 1));

    Stmt S;
    S.Kind = StmtKind::Loop;
    S.Line = L.Line;

    // init; cond; step
    size_t Semi1 = Header.find(';');
    size_t Semi2 = Semi1 == std::string::npos ? std::string::npos
                                              : Header.find(';', Semi1 + 1);
    if (Semi2 == std::string::npos) {
      issue(L.Line, "malformed for header '" + Header + "'");
      ++I;
      return;
    }
    std::string Init = trimCopy(Header.substr(0, Semi1));
    std::string Cond = trimCopy(Header.substr(Semi1 + 1, Semi2 - Semi1 - 1));
    std::string Step = trimCopy(Header.substr(Semi2 + 1));

    // Init: "[type] var = expr".
    size_t Eq = Init.find('=');
    if (Eq == std::string::npos) {
      issue(L.Line, "for init without '='");
    } else {
      std::string Lhs = trimCopy(Init.substr(0, Eq));
      size_t LastSpace = Lhs.find_last_of(' ');
      S.LoopVar = LastSpace == std::string::npos ? Lhs
                                                 : Lhs.substr(LastSpace + 1);
      S.LoopInit = exprOrIssue(Init.substr(Eq + 1), L.Line);
    }
    // Cond: "var < bound".
    size_t Lt = Cond.find('<');
    if (Lt == std::string::npos)
      issue(L.Line, "for condition is not an upper bound: '" + Cond + "'");
    else
      S.LoopBound = exprOrIssue(Cond.substr(Lt + 1), L.Line);
    // Step: "++var" or "var += expr".
    if (startsWith(Step, "++") || Step.find("++") != std::string::npos) {
      S.LoopStep.Value = 1;
    } else {
      size_t Plus = Step.find("+=");
      if (Plus == std::string::npos)
        issue(L.Line, "unsupported for increment '" + Step + "'");
      else
        S.LoopStep = exprOrIssue(Step.substr(Plus + 2), L.Line);
    }

    ++I;
    if (!Tail.empty() && Tail[0] == '{') {
      S.Body = parseBlock(false);
    } else if (I < Lines.size()) {
      parseOne(S.Body, false); // Braceless: exactly one statement.
    }
    Out.push_back(std::move(S));
  }

  void parseIf(std::vector<Stmt> &Out) {
    const LineRec &L = Lines[I];
    const std::string &Text = L.Text;
    size_t Open = Text.find('(');
    // The matching ')' for the condition: track nesting.
    int Depth = 0;
    size_t Close = std::string::npos;
    for (size_t K = Open; K < Text.size(); ++K) {
      if (Text[K] == '(')
        ++Depth;
      else if (Text[K] == ')' && --Depth == 0) {
        Close = K;
        break;
      }
    }
    if (Open == std::string::npos || Close == std::string::npos) {
      issue(L.Line, "malformed if condition");
      ++I;
      return;
    }
    Stmt S;
    S.Kind = StmtKind::If;
    S.Line = L.Line;
    S.Value = exprOrIssue(Text.substr(Open + 1, Close - Open - 1), L.Line);
    std::string Tail = trimCopy(Text.substr(Close + 1));

    ++I;
    if (!Tail.empty() && Tail[0] == '{') {
      std::string Inner = trimCopy(Tail.substr(1));
      if (!Inner.empty() && Inner.back() == '}') {
        // Single-line "if (c) { stmt; }" body.
        Inner = trimCopy(Inner.substr(0, Inner.size() - 1));
        if (isBarrierText(Inner)) {
          Stmt B;
          B.Kind = StmtKind::Barrier;
          B.Line = L.Line;
          ++M.BarrierCount;
          S.Body.push_back(std::move(B));
        } else if (!Inner.empty()) {
          parseMicro(Inner, L.Line, S.Body, false);
        }
      } else {
        S.Body = parseBlock(false);
      }
    } else if (!Tail.empty()) {
      parseMicro(Tail, L.Line, S.Body, false);
    } else if (I < Lines.size()) {
      parseOne(S.Body, false);
    }
    Out.push_back(std::move(S));
  }

  /// One ';'-free simple statement.
  void parseMicro(const std::string &Chunk, unsigned Line,
                  std::vector<Stmt> &Out, bool TopLevel) {
    std::string Text = Chunk;
    bool Shared = false;
    for (std::string_view Prefix : {"__shared__ ", "__local "}) {
      if (startsWith(Text, Prefix)) {
        Shared = true;
        Text = trimCopy(Text.substr(Prefix.size()));
      }
    }
    bool Const = false;
    if (startsWith(Text, "const ")) {
      Const = true;
      Text = trimCopy(Text.substr(6));
    }
    (void)Const;

    // Leading declared type?
    std::string Type;
    for (std::string_view T :
         {"long long ", "unsigned long long ", "unsigned ", "long ", "int ",
          "double ", "float ", "bool "}) {
      if (startsWith(Text, T)) {
        Type = trimCopy(std::string(T));
        Text = trimCopy(Text.substr(T.size()));
        break;
      }
    }

    size_t Eq = Text.find('=');
    size_t Bracket = Text.find('[');

    if (!Type.empty() && Bracket != std::string::npos &&
        (Eq == std::string::npos || Bracket < Eq)) {
      // Array declaration: name[size].
      size_t CloseBr = Text.rfind(']');
      if (CloseBr == std::string::npos || CloseBr < Bracket) {
        issue(Line, "malformed array declaration '" + Chunk + "'");
        return;
      }
      Stmt S;
      S.Kind = StmtKind::ArrayDecl;
      S.Line = Line;
      S.Name = trimCopy(Text.substr(0, Bracket));
      S.Type = Type;
      S.Shared = Shared;
      S.Value =
          exprOrIssue(Text.substr(Bracket + 1, CloseBr - Bracket - 1), Line);
      if (TopLevel)
        (Shared ? M.SharedDecls : M.RegisterDecls).push_back(std::move(S));
      else if (Shared)
        M.SharedDecls.push_back(std::move(S));
      else
        Out.push_back(std::move(S));
      return;
    }

    if (Eq == std::string::npos) {
      issue(Line, "statement outside the emitted schema: '" + Chunk + "'");
      return;
    }

    // Compound operators.
    char Before = Eq > 0 ? Text[Eq - 1] : '\0';
    if (Before == '*' || Before == '/') {
      Stmt S;
      S.Kind = Before == '*' ? StmtKind::CompoundMul : StmtKind::CompoundDiv;
      S.Line = Line;
      S.Name = trimCopy(Text.substr(0, Eq - 1));
      S.Value = exprOrIssue(Text.substr(Eq + 1), Line);
      Out.push_back(std::move(S));
      return;
    }

    bool Accumulate = Before == '+';
    size_t LhsEnd = Accumulate ? Eq - 1 : Eq;
    std::string Lhs = trimCopy(Text.substr(0, LhsEnd));
    std::string Rhs = trimCopy(Text.substr(Eq + 1));

    if (Lhs.find('[') != std::string::npos) {
      size_t Br = Lhs.find('[');
      size_t CloseBr = Lhs.rfind(']');
      if (CloseBr == std::string::npos || CloseBr < Br) {
        issue(Line, "malformed array store '" + Chunk + "'");
        return;
      }
      Stmt S;
      S.Kind = StmtKind::ArrayStore;
      S.Line = Line;
      S.Name = trimCopy(Lhs.substr(0, Br));
      S.Accumulate = Accumulate;
      S.Index = exprOrIssue(Lhs.substr(Br + 1, CloseBr - Br - 1), Line);
      S.Value = exprOrIssue(Rhs, Line);
      Out.push_back(std::move(S));
      return;
    }

    if (Accumulate) {
      issue(Line, "scalar '+=' outside a loop header: '" + Chunk + "'");
      return;
    }
    Stmt S;
    S.Kind = Type.empty() ? StmtKind::Assign : StmtKind::Decl;
    S.Line = Line;
    S.Name = Lhs;
    S.Type = Type;
    S.Value = exprOrIssue(Rhs, Line);
    if (S.Name == "buf")
      M.DoubleBuffer = true;
    Out.push_back(std::move(S));
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Model helpers
//===----------------------------------------------------------------------===//

const Stmt *KernelModel::findLoop(const std::vector<Stmt> &In,
                                  const std::string &Var) {
  for (const Stmt &S : In) {
    if (S.Kind == StmtKind::Loop && S.LoopVar == Var)
      return &S;
    if (!S.Body.empty())
      if (const Stmt *Found = findLoop(S.Body, Var))
        return Found;
  }
  return nullptr;
}

const Stmt *KernelModel::arrayDecl(const std::string &Name) const {
  for (const Stmt &S : SharedDecls)
    if (S.Name == Name)
      return &S;
  for (const Stmt &S : RegisterDecls)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Top-level parse
//===----------------------------------------------------------------------===//

ErrorOr<KernelModel>
cogent::analysis::parseKernelSource(const std::string &KernelSource) {
  KernelModel M;

  // Split into trimmed, comment-stripped lines. The emitted schema has no
  // string literals, so cutting at the first "//" is safe.
  std::vector<LineRec> Lines;
  {
    std::istringstream In(KernelSource);
    std::string Raw;
    unsigned Number = 0;
    while (std::getline(In, Raw)) {
      ++Number;
      size_t Comment = Raw.find("//");
      if (Comment != std::string::npos)
        Raw = Raw.substr(0, Comment);
      Lines.push_back({trimCopy(Raw), Number});
    }
  }

  // Quick structural sanity: brace balance over the whole source. A
  // truncated emission fails here with a typed error rather than deep in
  // the statement walk.
  {
    long Depth = 0;
    for (const LineRec &L : Lines)
      for (char C : L.Text)
        Depth += C == '{' ? 1 : C == '}' ? -1 : 0;
    if (Depth != 0)
      return Error(ErrorCode::VerificationFailed,
                   "kernel source has unbalanced braces (depth " +
                       std::to_string(Depth) + " at end of text)");
  }

  // Header scan: defines, then the kernel signature (which may span
  // several lines up to its opening '{').
  size_t I = 0;
  bool SawSignature = false;
  for (; I < Lines.size(); ++I) {
    const std::string &Text = Lines[I].Text;
    if (Text.empty() || startsWith(Text, "#pragma") ||
        startsWith(Text, "#include") || startsWith(Text, "#undef"))
      continue;
    if (startsWith(Text, "#define ")) {
      std::istringstream Def(Text.substr(8));
      std::string Name;
      long long Value = 0;
      if (Def >> Name >> Value)
        M.Defines[Name] = Value;
      continue;
    }
    if (Text.find("void ") != std::string::npos &&
        (Text.find("__global__") != std::string::npos ||
         Text.find("__kernel") != std::string::npos)) {
      SawSignature = true;
      M.IsCuda = Text.find("__global__") != std::string::npos;
      std::string Signature = Text;
      while (Signature.find('{') == std::string::npos && I + 1 < Lines.size())
        Signature += " " + Lines[++I].Text;
      ++I; // Past the line holding '{'.

      size_t Paren = Signature.find('(');
      if (Paren == std::string::npos)
        return Error(ErrorCode::VerificationFailed,
                     "kernel signature has no parameter list");
      size_t NameEnd = Paren;
      size_t NameBegin = Signature.find_last_of(" *", NameEnd - 1);
      M.KernelName = Signature.substr(NameBegin + 1, NameEnd - NameBegin - 1);
      M.ElementType =
          Signature.find("double *") != std::string::npos ? "double" : "float";
      // Extent parameters, in declaration order.
      for (size_t K = Paren; K + 2 < Signature.size(); ++K) {
        if (Signature.compare(K, 2, "N_") == 0 &&
            !(std::isalnum(static_cast<unsigned char>(Signature[K - 1])) ||
              Signature[K - 1] == '_')) {
          size_t E = K;
          while (E < Signature.size() &&
                 (std::isalnum(static_cast<unsigned char>(Signature[E])) ||
                  Signature[E] == '_'))
            ++E;
          M.ExtentParams.push_back(Signature.substr(K, E - K));
          K = E;
        }
      }
      break;
    }
    // Anything else before the signature is outside the schema.
    M.Issues.push_back({Lines[I].Line,
                        "unrecognized text before kernel signature: '" +
                            Text + "'"});
  }
  if (!SawSignature)
    return Error(ErrorCode::VerificationFailed,
                 "no __global__/__kernel signature found");

  // Body parse. Trailing lines after the function's closing brace must be
  // preprocessor cleanup only.
  std::vector<LineRec> BodyLines(Lines.begin() + static_cast<long>(I),
                                 Lines.end());
  StmtParser Parser(BodyLines, M);
  M.Body = Parser.parseBlock(true);
  if (Parser.hardFailure())
    return Error(ErrorCode::VerificationFailed,
                 "kernel body ended before its closing brace");
  return M;
}
