//===- analysis/KernelModel.h - Structural model of emitted kernels -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structural parser for the kernel sources CodeGen emits: a small
/// expression grammar (affine index arithmetic, comparisons, ternary
/// guards) plus a line-oriented statement-tree builder covering exactly
/// the shapes Algorithm 1 produces — #define tables, __shared__/__local
/// staging declarations, grid-stride loops, cooperative slice loads,
/// barriers and the guarded register-tile store. KernelLint's passes run
/// over this model instead of re-grepping raw text, so a single parser
/// change tracks a codegen change everywhere. Both dialect spellings
/// (CUDA and OpenCL) parse to the same tree.
///
/// The parser is deliberately *not* a C parser: anything outside the
/// emitted schema is a parse error, which the Structure lint pass turns
/// into a finding. That strictness is the point — a kernel the model
/// cannot explain is a kernel the pipeline should not ship.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_ANALYSIS_KERNELMODEL_H
#define COGENT_ANALYSIS_KERNELMODEL_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cogent {
namespace analysis {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Expression node kinds. Comparisons evaluate to 0/1; casts are erased
/// during parsing (every scalar in the emitted schema is integral).
enum class ExprKind {
  Num,     ///< Integer literal (bool literals fold to 0/1).
  Var,     ///< Identifier; dotted names (threadIdx.x) and zero-argument
           ///< builtin calls (get_local_id(0)) are kept whole.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,     ///< Logical &&.
  Ternary, ///< Kids = {condition, then, else}.
  Index,   ///< Array element: Name = array, Kids = {index}.
};

/// One parsed expression; a small value-semantics tree.
struct Expr {
  ExprKind Kind = ExprKind::Num;
  int64_t Value = 0;       ///< ExprKind::Num payload.
  std::string Name;        ///< Var / Index array name.
  std::vector<Expr> Kids;  ///< Operands, in source order.

  bool isNum(int64_t V) const { return Kind == ExprKind::Num && Value == V; }
};

/// Variable bindings for evaluation; values are signed 64-bit like every
/// scalar the emitted kernels compute with.
using Env = std::unordered_map<std::string, int64_t>;

/// Evaluates \p E under \p Bindings. Returns std::nullopt when a variable
/// is unbound, an Index/unsupported node is reached, or a divisor is zero.
std::optional<int64_t> evalExpr(const Expr &E, const Env &Bindings);

/// Appends every variable name referenced by \p E (with repeats).
void collectVars(const Expr &E, std::vector<std::string> &Out);

/// Renders \p E back to a compact infix string for diagnostics.
std::string renderExpr(const Expr &E);

/// One additive term of a linearized affine index: Coeff * Coord, where
/// Coord is the (single) factor that did not evaluate under the ambient
/// environment — a per-thread coordinate like `i_a` or `g_c`. A term
/// whose factors all evaluated folds into IndexForm::Constant instead.
struct IndexTerm {
  std::string Coord;
  int64_t Coeff = 1;
};

/// An affine index expression in sum-of-terms form.
struct IndexForm {
  std::vector<IndexTerm> Terms;
  int64_t Constant = 0;

  /// The coefficient of \p Coord, or std::nullopt when absent.
  std::optional<int64_t> coeff(const std::string &Coord) const;
};

/// Flattens \p E into coefficient * coordinate terms, evaluating whatever
/// sub-expressions \p Ambient can resolve (stride variables, #define
/// constants). Fails when a term multiplies two unresolved coordinates or
/// uses non-affine operators — which for this kernel schema is itself a
/// lint-worthy fact.
std::optional<IndexForm> linearizeIndex(const Expr &E, const Env &Ambient);

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Statement kinds covering the emitted schema.
enum class StmtKind {
  Decl,        ///< [const] <type> name = expr;
  Assign,      ///< name = expr;
  CompoundMul, ///< name *= expr;
  CompoundDiv, ///< name /= expr;
  ArrayStore,  ///< name[expr] = expr; or name[expr] += expr;
  ArrayDecl,   ///< <type> name[expr]; optionally __shared__/__local.
  Barrier,     ///< __syncthreads(); or barrier(CLK_LOCAL_MEM_FENCE);
  Loop,        ///< for (init; cond; step) body
  If,          ///< if (cond) body
  Block,       ///< bare { ... } scope (double-buffer prologue)
};

/// One statement; loops/ifs/blocks own their bodies.
struct Stmt {
  StmtKind Kind = StmtKind::Decl;
  unsigned Line = 0;        ///< 1-based source line of the statement head.
  std::string Name;         ///< Decl/Assign/Compound target, array name.
  std::string Type;         ///< Declared type text ("int", "long long", ...).
  bool Shared = false;      ///< ArrayDecl carries __shared__/__local.
  bool Accumulate = false;  ///< ArrayStore used += rather than =.
  Expr Value;               ///< RHS; If condition; ArrayDecl size.
  Expr Index;               ///< ArrayStore index expression.
  std::string LoopVar;      ///< Loop induction variable.
  Expr LoopInit;            ///< Loop initial value.
  Expr LoopBound;           ///< Loop exclusive upper bound (var < bound).
  Expr LoopStep;            ///< Loop increment amount (1 for ++var).
  std::vector<Stmt> Body;   ///< Loop/If/Block children.
};

/// A parse problem the Structure pass reports verbatim.
struct ParseIssue {
  unsigned Line = 0;
  std::string Message;
};

//===----------------------------------------------------------------------===//
// KernelModel
//===----------------------------------------------------------------------===//

/// The parsed kernel: preprocessor table, declarations, and the function
/// body as a statement tree in emission order.
struct KernelModel {
  std::string KernelName;
  bool IsCuda = true;             ///< False for the OpenCL dialect.
  std::string ElementType;        ///< "double" or "float".
  bool DoubleBuffer = false;      ///< A `buf` scalar was declared.
  std::map<std::string, int64_t> Defines;  ///< TBX/TBY/NTHREADS/REG*/TBK.
  std::vector<std::string> ExtentParams;   ///< N_<index> kernel parameters.
  std::vector<Stmt> SharedDecls;           ///< __shared__/__local arrays.
  std::vector<Stmt> RegisterDecls;         ///< r_C / r_A / r_B arrays.
  std::vector<Stmt> Body;                  ///< Function body, top scope.
  unsigned BarrierCount = 0;
  std::vector<ParseIssue> Issues;          ///< Non-fatal oddities.

  /// The first top-level statement of kind Loop whose variable is \p Var,
  /// or nullptr. Searches \p In recursively.
  static const Stmt *findLoop(const std::vector<Stmt> &In,
                              const std::string &Var);

  /// The ArrayDecl for \p Name among Shared/Register decls, or nullptr.
  const Stmt *arrayDecl(const std::string &Name) const;
};

/// Parses one emitted kernel source (the KernelSource member of
/// GeneratedSource, not the host driver). Structural failures — unbalanced
/// braces, a missing signature, statements outside the schema — come back
/// as ErrorCode::VerificationFailed; recoverable oddities are collected in
/// KernelModel::Issues for the Structure pass.
ErrorOr<KernelModel> parseKernelSource(const std::string &KernelSource);

} // namespace analysis
} // namespace cogent

#endif // COGENT_ANALYSIS_KERNELMODEL_H
