//===- analysis/KernelRaceProver.cpp - Symbolic race & divergence prover --===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Implementation layout:
//
//   1. Name tables for the public enums.
//   2. Taint fixpoint (uniformity + iteration-privacy) over the statement
//      tree.
//   3. An ambient environment restricted to single-assignment scalars (the
//      lint ambient would constant-fold loop-carried values like the
//      double-buffer parity and corrupt the symbolic forms).
//   4. Range analysis over atoms (decode coordinates, loop variables,
//      tile bases) via def-site recursion.
//   5. Thread-decode group detection: `q = <thread source>` followed by
//      `c = q % K; q /= D;` chains, the generator's only way of spreading
//      a thread id over coordinates. Bijective groups let the solver map
//      coordinate values back to the unique thread that produces them.
//   6. Access collection: a barrier-interval walk with two-iteration
//      unrolling of barrier-carrying loops; every SMEM/GMEM access is
//      linearized, expanded through single-assignment definitions, and
//      split into shared (uniform) and private (per-thread) atoms.
//   7. The two-thread solver: interval disjointness, GCD refutation, a
//      mixed-radix injectivity argument for same-access pairs, and a
//      hash-join bounded enumeration that either proves disjointness or
//      produces a replayable witness.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelRaceProver.h"

#include "support/Counters.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace cogent {
namespace analysis {

using core::KernelPlan;

COGENT_COUNTER(NumRaceFindings, "race.findings",
               "Typed findings emitted by the race prover");
COGENT_COUNTER(NumRacePairs, "race.pairs-checked",
               "Same-array same-interval access pairs solved");

//===----------------------------------------------------------------------===//
// Name tables
//===----------------------------------------------------------------------===//

const char *uniformityName(Uniformity U) {
  switch (U) {
  case Uniformity::Uniform:
    return "uniform";
  case Uniformity::Unknown:
    return "unknown";
  case Uniformity::ThreadDependent:
    return "thread-dependent";
  }
  return "uniform";
}

std::optional<Uniformity> uniformityFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumUniformityClasses; ++I)
    if (Name == uniformityName(static_cast<Uniformity>(I)))
      return static_cast<Uniformity>(I);
  return std::nullopt;
}

const char *raceFindingKindName(RaceFindingKind Kind) {
  switch (Kind) {
  case RaceFindingKind::WriteWriteRace:
    return "write-write-race";
  case RaceFindingKind::WriteReadRace:
    return "write-read-race";
  case RaceFindingKind::DivergentBarrier:
    return "divergent-barrier";
  case RaceFindingKind::NonUniformValue:
    return "non-uniform-value";
  case RaceFindingKind::UnknownUniformity:
    return "unknown-uniformity";
  case RaceFindingKind::NonAffineAccess:
    return "non-affine-access";
  case RaceFindingKind::UnprovenAccess:
    return "unproven-access";
  }
  return "write-write-race";
}

std::optional<RaceFindingKind>
raceFindingKindFromName(const std::string &N) {
  for (unsigned I = 0; I < NumRaceFindingKinds; ++I)
    if (N == raceFindingKindName(static_cast<RaceFindingKind>(I)))
      return static_cast<RaceFindingKind>(I);
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Small shared helpers
//===----------------------------------------------------------------------===//

namespace {

bool hasPrefix(const std::string &S, const char *P) {
  return S.rfind(P, 0) == 0;
}

bool isThreadBuiltin(const std::string &N) {
  return N == "threadIdx.x" || N == "threadIdx.y" || N == "threadIdx.z" ||
         N == "get_local_id(0)" || N == "get_local_id(1)" ||
         N == "get_local_id(2)" || N == "get_global_id(0)" ||
         N == "get_global_id(1)" || N == "get_global_id(2)";
}

bool isUniformBuiltin(const std::string &N) {
  return hasPrefix(N, "blockIdx.") || hasPrefix(N, "blockDim.") ||
         hasPrefix(N, "gridDim.") || hasPrefix(N, "get_group_id(") ||
         hasPrefix(N, "get_local_size(") || hasPrefix(N, "get_num_groups(");
}

bool isScalarStmt(const Stmt &S) {
  return S.Kind == StmtKind::Decl || S.Kind == StmtKind::Assign ||
         S.Kind == StmtKind::CompoundMul || S.Kind == StmtKind::CompoundDiv;
}

bool execScalar(const Stmt &S, Env &E) {
  std::optional<int64_t> V = evalExpr(S.Value, E);
  if (!V)
    return false;
  switch (S.Kind) {
  case StmtKind::Decl:
  case StmtKind::Assign:
    E[S.Name] = *V;
    return true;
  case StmtKind::CompoundMul: {
    auto It = E.find(S.Name);
    if (It == E.end())
      return false;
    It->second *= *V;
    return true;
  }
  case StmtKind::CompoundDiv: {
    auto It = E.find(S.Name);
    if (It == E.end() || *V == 0)
      return false;
    It->second /= *V;
    return true;
  }
  default:
    return false;
  }
}

void forEachStmt(const std::vector<Stmt> &Body,
                 const std::function<void(const Stmt &)> &Fn) {
  for (const Stmt &S : Body) {
    Fn(S);
    if (!S.Body.empty())
      forEachStmt(S.Body, Fn);
  }
}

void forEachIndexExpr(const Expr &E,
                      const std::function<void(const Expr &)> &Fn) {
  if (E.Kind == ExprKind::Index)
    Fn(E);
  for (const Expr &Kid : E.Kids)
    forEachIndexExpr(Kid, Fn);
}

bool containsBarrier(const std::vector<Stmt> &Body) {
  for (const Stmt &S : Body) {
    if (S.Kind == StmtKind::Barrier)
      return true;
    if (!S.Body.empty() && containsBarrier(S.Body))
      return true;
  }
  return false;
}

/// Strips the side prime and "@<iter>" instance suffixes an atom may carry,
/// recovering the source-level name.
std::string canonicalAtom(std::string Name) {
  while (!Name.empty() && Name.back() == '\'')
    Name.pop_back();
  size_t At = Name.find('@');
  if (At != std::string::npos)
    Name.resize(At);
  return Name;
}

//===----------------------------------------------------------------------===//
// Taint fixpoint
//===----------------------------------------------------------------------===//

Uniformity joinU(Uniformity A, Uniformity B) {
  return static_cast<Uniformity>(
      std::max(static_cast<int>(A), static_cast<int>(B)));
}

struct TaintResult {
  std::unordered_map<std::string, Uniformity> Class;
  std::unordered_map<std::string, bool> Priv;
  std::unordered_map<std::string, unsigned> FirstDefLine;
  bool Changed = false;

  Uniformity classOf(const std::string &Name) const {
    if (isThreadBuiltin(Name))
      return Uniformity::ThreadDependent;
    if (isUniformBuiltin(Name))
      return Uniformity::Uniform;
    auto It = Class.find(Name);
    return It == Class.end() ? Uniformity::Unknown : It->second;
  }
  bool privOf(const std::string &Name) const {
    auto It = Priv.find(Name);
    return It != Priv.end() && It->second;
  }

  void update(const std::string &Name, Uniformity U, bool P, unsigned Line) {
    auto [It, Inserted] = Class.emplace(Name, U);
    if (Inserted)
      Changed = true;
    else if (joinU(It->second, U) != It->second) {
      It->second = joinU(It->second, U);
      Changed = true;
    }
    bool &PR = Priv[Name];
    if (P && !PR) {
      PR = true;
      Changed = true;
    }
    FirstDefLine.emplace(Name, Line);
  }
};

Uniformity exprClass(const Expr &E, const TaintResult &T) {
  switch (E.Kind) {
  case ExprKind::Num:
    return Uniformity::Uniform;
  case ExprKind::Var:
    return T.classOf(E.Name);
  case ExprKind::Index:
    // The element an array load observes is chosen per thread; treat any
    // load as thread-dependent (conservative, and exact for this schema:
    // array values only ever flow into register tiles).
    return Uniformity::ThreadDependent;
  default: {
    Uniformity U = Uniformity::Uniform;
    for (const Expr &Kid : E.Kids)
      U = joinU(U, exprClass(Kid, T));
    return U;
  }
  }
}

bool exprPriv(const Expr &E, const TaintResult &T) {
  switch (E.Kind) {
  case ExprKind::Num:
    return false;
  case ExprKind::Var:
    return T.privOf(E.Name);
  case ExprKind::Index:
    return true;
  default:
    for (const Expr &Kid : E.Kids)
      if (exprPriv(Kid, T))
        return true;
    return false;
  }
}

void taintWalk(const std::vector<Stmt> &Body, Uniformity Ctrl, bool IterCtrl,
               TaintResult &T) {
  for (const Stmt &S : Body) {
    switch (S.Kind) {
    case StmtKind::Decl:
    case StmtKind::Assign:
    case StmtKind::CompoundMul:
    case StmtKind::CompoundDiv: {
      Uniformity U = joinU(exprClass(S.Value, T), Ctrl);
      bool P = exprPriv(S.Value, T) || IterCtrl;
      if (S.Kind == StmtKind::CompoundMul ||
          S.Kind == StmtKind::CompoundDiv) {
        U = joinU(U, T.classOf(S.Name));
        P = P || T.privOf(S.Name);
      }
      T.update(S.Name, U, P, S.Line);
      break;
    }
    case StmtKind::ArrayStore: {
      Uniformity U = joinU(joinU(exprClass(S.Value, T), exprClass(S.Index, T)),
                           Ctrl);
      bool P = exprPriv(S.Value, T) || exprPriv(S.Index, T) || IterCtrl;
      T.update(S.Name, U, P, S.Line);
      break;
    }
    case StmtKind::Loop: {
      Uniformity HC = joinU(
          Ctrl, joinU(exprClass(S.LoopInit, T),
                      joinU(exprClass(S.LoopBound, T),
                            exprClass(S.LoopStep, T))));
      // Iterations of a barrier-free loop are unsynchronized: two threads
      // inside one barrier interval may sit at different iterations, so
      // everything the loop variable feeds is iteration-private.
      bool BarrierFree = !containsBarrier(S.Body);
      bool P = IterCtrl || BarrierFree || exprPriv(S.LoopInit, T) ||
               exprPriv(S.LoopBound, T) || exprPriv(S.LoopStep, T);
      T.update(S.LoopVar, HC, P, S.Line);
      taintWalk(S.Body, HC, P, T);
      break;
    }
    case StmtKind::If: {
      Uniformity HC = joinU(Ctrl, exprClass(S.Value, T));
      bool P = IterCtrl || exprPriv(S.Value, T);
      taintWalk(S.Body, HC, P, T);
      break;
    }
    case StmtKind::Block:
      taintWalk(S.Body, Ctrl, IterCtrl, T);
      break;
    default:
      break;
    }
  }
}

TaintResult runTaint(const KernelModel &M, const DataflowInfo &Flow) {
  TaintResult T;
  for (const auto &[Name, Value] : M.Defines) {
    (void)Value;
    T.Class[Name] = Uniformity::Uniform;
  }
  for (const Location &L : Flow.Locations)
    if (L.Implicit && !isThreadBuiltin(L.Name))
      T.Class.emplace(L.Name, Uniformity::Uniform);
  for (unsigned Iter = 0; Iter < 64; ++Iter) {
    T.Changed = false;
    taintWalk(M.Body, Uniformity::Uniform, false, T);
    if (!T.Changed)
      break;
  }
  return T;
}

} // namespace

Uniformity UniformityInfo::classOf(const DataflowInfo &Flow,
                                   const std::string &Name) const {
  std::optional<unsigned> Loc = Flow.location(Name);
  if (!Loc || *Loc >= Classes.size())
    return Uniformity::Unknown;
  return Classes[*Loc];
}

UniformityInfo analyzeUniformity(const KernelModel &M,
                                 const DataflowInfo &Flow) {
  TaintResult T = runTaint(M, Flow);
  UniformityInfo Info;
  Info.Classes.reserve(Flow.Locations.size());
  Info.IterationPrivate.reserve(Flow.Locations.size());
  for (const Location &L : Flow.Locations) {
    Info.Classes.push_back(T.classOf(L.Name));
    Info.IterationPrivate.push_back(T.privOf(L.Name));
  }
  return Info;
}

namespace {

//===----------------------------------------------------------------------===//
// Ambient, definition index, ranges
//===----------------------------------------------------------------------===//

/// Defs/compound-def census plus, per first-defined name, the stack of
/// barrier-carrying loops lexically enclosing that definition (instance
/// suffixes are derived from it during the unrolled walk).
struct DefIndex {
  std::unordered_map<std::string, std::vector<const Stmt *>> Defs;
  std::unordered_map<std::string, unsigned> CompoundDefs;
  std::unordered_map<std::string, std::vector<const Stmt *>> BarrierLoopsOf;

  const Stmt *singleDef(const std::string &Name) const {
    auto It = Defs.find(Name);
    if (It == Defs.end() || It->second.size() != 1)
      return nullptr;
    auto CIt = CompoundDefs.find(Name);
    if (CIt != CompoundDefs.end() && CIt->second > 0)
      return nullptr;
    return It->second.front();
  }
};

void indexDefs(const std::vector<Stmt> &Body,
               std::vector<const Stmt *> &BarrierLoops, DefIndex &D) {
  for (const Stmt &S : Body) {
    switch (S.Kind) {
    case StmtKind::Decl:
    case StmtKind::Assign:
      D.Defs[S.Name].push_back(&S);
      D.BarrierLoopsOf.emplace(S.Name, BarrierLoops);
      break;
    case StmtKind::CompoundMul:
    case StmtKind::CompoundDiv:
      ++D.CompoundDefs[S.Name];
      break;
    case StmtKind::Loop: {
      // The loop variable of a barrier-carrying loop takes a different
      // value in each unrolled instance, so its suffix chain includes the
      // loop itself.
      bool Barr = containsBarrier(S.Body);
      if (Barr)
        BarrierLoops.push_back(&S);
      D.BarrierLoopsOf.emplace(S.LoopVar, BarrierLoops);
      indexDefs(S.Body, BarrierLoops, D);
      if (Barr)
        BarrierLoops.pop_back();
      break;
    }
    case StmtKind::If:
    case StmtKind::Block:
      indexDefs(S.Body, BarrierLoops, D);
      break;
    default:
      break;
    }
  }
}

/// Ambient restricted to single-assignment scalars: the lint ambient folds
/// every statement in program order, which would turn loop-carried values
/// (the double-buffer parity, linear cursors) into whichever constant the
/// last fold produced and silently corrupt both sides of a pair.
Env buildProverAmbient(const KernelPlan &Plan, const KernelModel &M,
                       const DefIndex &DI) {
  Env E;
  for (const auto &[Name, Value] : M.Defines)
    E[Name] = Value;
  for (char Name : Plan.contraction().allIndices())
    E[std::string("N_") + Name] = Plan.contraction().extent(Name);
  forEachStmt(M.Body, [&](const Stmt &S) {
    if (!isScalarStmt(S))
      return;
    auto It = DI.Defs.find(S.Name);
    bool Single = It != DI.Defs.end() && It->second.size() == 1;
    auto CIt = DI.CompoundDefs.find(S.Name);
    if (CIt != DI.CompoundDefs.end() && CIt->second > 0)
      Single = false;
    if (Single)
      execScalar(S, E);
  });
  return E;
}

struct ValueRange {
  int64_t Lo = 0, Hi = 0;
  int64_t size() const { return Hi - Lo + 1; }
};

struct RangeCtx {
  const KernelModel &M;
  const Env &Ambient;
  const DefIndex &DI;
  std::unordered_map<std::string, std::optional<ValueRange>> Memo;
  std::unordered_set<std::string> InFlight;
};

std::optional<ValueRange> rangeOfName(RangeCtx &C, const std::string &Raw);

std::optional<ValueRange> rangeOfExpr(RangeCtx &C, const Expr &E) {
  if (std::optional<int64_t> V = evalExpr(E, C.Ambient))
    return ValueRange{*V, *V};
  switch (E.Kind) {
  case ExprKind::Var:
    return rangeOfName(C, E.Name);
  case ExprKind::Add: {
    auto L = rangeOfExpr(C, E.Kids[0]);
    auto R = rangeOfExpr(C, E.Kids[1]);
    if (!L || !R)
      return std::nullopt;
    return ValueRange{L->Lo + R->Lo, L->Hi + R->Hi};
  }
  case ExprKind::Sub: {
    auto L = rangeOfExpr(C, E.Kids[0]);
    auto R = rangeOfExpr(C, E.Kids[1]);
    if (!L || !R)
      return std::nullopt;
    return ValueRange{L->Lo - R->Hi, L->Hi - R->Lo};
  }
  case ExprKind::Mul: {
    std::optional<int64_t> K = evalExpr(E.Kids[0], C.Ambient);
    const Expr *Other = &E.Kids[1];
    if (!K) {
      K = evalExpr(E.Kids[1], C.Ambient);
      Other = &E.Kids[0];
    }
    if (!K)
      return std::nullopt;
    auto R = rangeOfExpr(C, *Other);
    if (!R)
      return std::nullopt;
    if (*K >= 0)
      return ValueRange{R->Lo * *K, R->Hi * *K};
    return ValueRange{R->Hi * *K, R->Lo * *K};
  }
  case ExprKind::Mod: {
    std::optional<int64_t> K = evalExpr(E.Kids[1], C.Ambient);
    if (!K || *K <= 0)
      return std::nullopt;
    return ValueRange{0, *K - 1};
  }
  case ExprKind::Div: {
    std::optional<int64_t> K = evalExpr(E.Kids[1], C.Ambient);
    if (!K || *K <= 0)
      return std::nullopt;
    auto L = rangeOfExpr(C, E.Kids[0]);
    if (!L || L->Lo < 0)
      return std::nullopt;
    return ValueRange{L->Lo / *K, L->Hi / *K};
  }
  case ExprKind::Ternary: {
    auto A = rangeOfExpr(C, E.Kids[1]);
    auto B = rangeOfExpr(C, E.Kids[2]);
    if (!A || !B)
      return std::nullopt;
    return ValueRange{std::min(A->Lo, B->Lo), std::max(A->Hi, B->Hi)};
  }
  default:
    return std::nullopt;
  }
}

std::optional<ValueRange> rangeOfName(RangeCtx &C, const std::string &Raw) {
  std::string Name = canonicalAtom(Raw);
  if (auto It = C.Ambient.find(Name); It != C.Ambient.end())
    return ValueRange{It->second, It->second};
  auto defineRange = [&](const char *Dim) -> std::optional<ValueRange> {
    auto It = C.Ambient.find(Dim);
    if (It == C.Ambient.end())
      return std::nullopt;
    return ValueRange{0, It->second - 1};
  };
  if (Name == "threadIdx.x" || Name == "get_local_id(0)")
    return defineRange("TBX");
  if (Name == "threadIdx.y" || Name == "get_local_id(1)")
    return defineRange("TBY");
  if (Name == "threadIdx.z" || Name == "get_local_id(2)")
    return ValueRange{0, 0};
  if (C.M.DoubleBuffer && Name == "buf")
    return ValueRange{0, 1};
  if (auto It = C.Memo.find(Name); It != C.Memo.end())
    return It->second;
  if (!C.InFlight.insert(Name).second)
    return std::nullopt;
  std::optional<ValueRange> Result;
  if (const Stmt *L = KernelModel::findLoop(C.M.Body, Name)) {
    auto Init = rangeOfExpr(C, L->LoopInit);
    auto Bound = rangeOfExpr(C, L->LoopBound);
    if (Init && Bound && Init->Lo <= Bound->Hi - 1)
      Result = ValueRange{Init->Lo, Bound->Hi - 1};
  } else if (auto It = C.DI.Defs.find(Name); It != C.DI.Defs.end()) {
    // Join over every definition's RHS range; compound updates defeat the
    // bound (the value drifts), so any compound def voids the result.
    auto CIt = C.DI.CompoundDefs.find(Name);
    if (CIt == C.DI.CompoundDefs.end() || CIt->second == 0) {
      for (const Stmt *D : It->second) {
        auto R = rangeOfExpr(C, D->Value);
        if (!R) {
          Result = std::nullopt;
          break;
        }
        if (!Result)
          Result = R;
        else
          Result = ValueRange{std::min(Result->Lo, R->Lo),
                              std::max(Result->Hi, R->Hi)};
      }
    }
  }
  C.InFlight.erase(Name);
  C.Memo[Name] = Result;
  return Result;
}

//===----------------------------------------------------------------------===//
// Thread-decode groups
//===----------------------------------------------------------------------===//

enum class TidSrc { X, Y, Lin };

struct DecodeGroup {
  TidSrc Src = TidSrc::Lin;
  std::vector<std::string> Coords;
  std::vector<int64_t> Radix;
  /// True when the coordinate tuple determines the source value: every
  /// divisor matched its modulus and the radix product covers the source
  /// range. Non-bijective decodes pin nothing (sound: more threads race).
  bool Bijective = true;
  /// Exclusive upper bound of the source value (TBX/TBY for direct thread
  /// coordinates, the slice-loop trip bound for linear cursors).
  int64_t SrcBound = 0;
};

void findGroups(const std::vector<Stmt> &Body, const KernelModel &M,
                const Env &Ambient, std::vector<DecodeGroup> &Out,
                const Stmt *EnclosingLoop = nullptr) {
  auto define = [&](const char *Name) -> int64_t {
    auto It = Ambient.find(Name);
    return It == Ambient.end() ? 0 : It->second;
  };
  for (size_t I = 0; I < Body.size(); ++I) {
    const Stmt &S = Body[I];
    if (!S.Body.empty())
      findGroups(S.Body, M, Ambient, Out,
                 S.Kind == StmtKind::Loop ? &S : EnclosingLoop);
    if (S.Kind != StmtKind::Decl || S.Value.Kind != ExprKind::Var)
      continue;
    const std::string &SrcName = S.Value.Name;
    std::optional<TidSrc> Src;
    int64_t Bound = 0;
    if (SrcName == "threadIdx.x" || SrcName == "get_local_id(0)") {
      Src = TidSrc::X;
      Bound = define("TBX");
    } else if (SrcName == "threadIdx.y" || SrcName == "get_local_id(1)") {
      Src = TidSrc::Y;
      Bound = define("TBY");
    } else if (SrcName == "tid") {
      Src = TidSrc::Lin;
      Bound = define("NTHREADS");
    } else if (const Stmt *L = (EnclosingLoop &&
                                EnclosingLoop->LoopVar == SrcName)
                                   ? EnclosingLoop
                                   : KernelModel::findLoop(M.Body, SrcName)) {
      // A cooperative slice cursor: for (l = tid; l < N; l += NTHREADS).
      // Emitted staging loops all reuse the cursor name `l`, so the
      // *enclosing* loop must win over a whole-model name lookup — the
      // first loop named `l` may be a different slice with a different
      // trip bound (which would poison SrcBound below).
      std::optional<int64_t> Step = evalExpr(L->LoopStep, Ambient);
      std::optional<int64_t> B = evalExpr(L->LoopBound, Ambient);
      if (L->LoopInit.Kind == ExprKind::Var && L->LoopInit.Name == "tid" &&
          Step && *Step == define("NTHREADS") && B) {
        Src = TidSrc::Lin;
        Bound = *B;
      }
    }
    if (!Src || Bound <= 0)
      continue;
    DecodeGroup G;
    G.Src = *Src;
    G.SrcBound = Bound;
    int64_t LastK = 0;
    bool SawDiv = true; // The first coord needs no preceding divide.
    for (size_t J = I + 1; J < Body.size(); ++J) {
      const Stmt &N = Body[J];
      if (N.Kind == StmtKind::Decl && N.Value.Kind == ExprKind::Mod &&
          N.Value.Kids[0].Kind == ExprKind::Var &&
          N.Value.Kids[0].Name == S.Name) {
        std::optional<int64_t> K = evalExpr(N.Value.Kids[1], Ambient);
        if (!K || *K <= 0)
          break;
        if (!SawDiv)
          G.Bijective = false; // Two mods without a divide between them.
        G.Coords.push_back(N.Name);
        G.Radix.push_back(*K);
        LastK = *K;
        SawDiv = false;
        continue;
      }
      if (N.Kind == StmtKind::CompoundDiv && N.Name == S.Name) {
        std::optional<int64_t> D = evalExpr(N.Value, Ambient);
        if (!D || *D <= 0)
          break;
        if (D != LastK)
          G.Bijective = false;
        SawDiv = true;
        continue;
      }
      break;
    }
    if (G.Coords.empty())
      continue;
    int64_t Product = 1;
    for (int64_t K : G.Radix)
      Product = (Product > (int64_t{1} << 40)) ? Product : Product * K;
    if (Product < Bound)
      G.Bijective = false;
    Out.push_back(std::move(G));
  }
}

} // namespace
} // namespace analysis
} // namespace cogent

//===----------------------------------------------------------------------===//
// Access collection and the two-thread solver
//===----------------------------------------------------------------------===//

namespace cogent {
namespace analysis {
namespace {

/// One linearized guard conjunct: sum(Coeff * atom) + Const {<, <=} 0.
/// Shared atoms carry their instance suffix; private atoms are raw (the
/// side they belong to is implied by the owning access).
struct GuardLin {
  std::vector<std::pair<std::string, int64_t>> Terms;
  int64_t Const = 0;
  bool Strict = true;
};

/// One private (per-thread / per-iteration) term of an access form.
struct PTerm {
  std::string Name;
  int64_t Coeff = 0;
  std::optional<ValueRange> Range;
};

/// One SMEM/GMEM access instance inside the unrolled interval walk.
struct AccessInst {
  const Stmt *S = nullptr;
  std::string Instance; ///< Concatenated unroll iteration digits.
  std::string Array;
  bool Write = false;
  unsigned Line = 0;
  std::map<std::string, int64_t> Shared; ///< Suffixed uniform atoms.
  std::vector<PTerm> Priv;
  int64_t Const = 0;
  std::vector<GuardLin> Guards;
  unsigned Interval = 0;
};

struct PinState {
  std::optional<int64_t> X, Y, Lin;
  bool Bad = false;

  void pin(std::optional<int64_t> &Slot, int64_t V) {
    if (Slot && *Slot != V)
      Bad = true;
    else
      Slot = V;
  }
};

struct PairPick {
  bool Found = false;
  int64_t T1 = 0, T2 = 0;
  bool CrossWarp = false;
};

class Prover {
public:
  Prover(const KernelPlan &Plan, const KernelModel &M,
         const DataflowInfo &Flow, const RaceProverOptions &Opts)
      : Plan(Plan), M(M), Flow(Flow), Opts(Opts) {}

  RaceReport run();

private:
  const KernelPlan &Plan;
  const KernelModel &M;
  const DataflowInfo &Flow;
  const RaceProverOptions &Opts;

  RaceReport R;
  TaintResult Taint;
  DefIndex DI;
  Env Ambient;
  std::unique_ptr<RangeCtx> RC;
  std::vector<DecodeGroup> Groups;

  // Collection state.
  std::vector<AccessInst> Accesses;
  unsigned Interval = 0;
  std::vector<const Expr *> GuardStack;
  std::vector<std::pair<const Stmt *, unsigned>> UnrollStack;

  std::set<std::tuple<int, std::string, unsigned, unsigned>> Seen;
  std::set<std::string> WarnedUnknown;

  int64_t define(const char *Name) const {
    auto It = M.Defines.find(Name);
    return It == M.Defines.end() ? 1 : It->second;
  }

  void finding(RaceFindingKind K, std::string Array, unsigned Line,
               unsigned Other, std::string Msg) {
    auto Key = std::make_tuple(static_cast<int>(K), Array,
                               std::min(Line, Other ? Other : Line),
                               std::max(Line, Other));
    if (!Seen.insert(Key).second)
      return;
    RaceFinding F;
    F.Kind = K;
    F.Array = std::move(Array);
    F.Line = Line;
    F.OtherLine = Other;
    F.Message = std::move(Msg);
    R.Findings.push_back(std::move(F));
    ++NumRaceFindings;
  }

  // --- schema role + divergence checks ---
  void checkSchemaRoles();
  void divergenceWalk(const std::vector<Stmt> &Body, Uniformity Ctrl,
                      const std::string &CtrlDesc);

  // --- linearization ---
  std::optional<IndexForm> linearizeExpand(const Expr &E) const;
  std::string instanceSuffixFor(const std::string &Name) const;

  // --- collection ---
  void walk(const std::vector<Stmt> &Body);
  void scanReads(const Stmt &S, const Expr &E);
  void emitAccess(const Stmt &S, const Expr &IndexE,
                  const std::string &Array, bool Write);
  void addGuard(AccessInst &A, const Expr &Cond);

  // --- solving ---
  void solvePair(const AccessInst &A, const AccessInst &B, bool Self);
  bool proveInjective(const AccessInst &A);
  void enumeratePair(const AccessInst &A, const AccessInst &B,
                     const std::map<std::string, int64_t> &SharedDiff);
  PinState computePins(const AccessInst &A, const Env &Vals);
  std::vector<int64_t> threadsOf(const PinState &PS) const;
  PairPick pickPair(const std::vector<int64_t> &S1,
                    const std::vector<int64_t> &S2) const;
  void emitRace(const AccessInst &A, const AccessInst &B, const Env &Sig,
                const Env &AVals, const Env &BVals, int64_t T1, int64_t T2,
                int64_t Addr);
  void unproven(const AccessInst &A, const AccessInst &B, std::string Why);
  AccessForm formOf(const AccessInst &X, bool Second) const;
};

void addTermTo(IndexForm &F, const std::string &Coord, int64_t Coeff) {
  if (Coeff == 0)
    return;
  for (size_t I = 0; I < F.Terms.size(); ++I) {
    if (F.Terms[I].Coord == Coord) {
      F.Terms[I].Coeff += Coeff;
      if (F.Terms[I].Coeff == 0)
        F.Terms.erase(F.Terms.begin() + I);
      return;
    }
  }
  F.Terms.push_back({Coord, Coeff});
}

std::optional<IndexForm> Prover::linearizeExpand(const Expr &E) const {
  std::optional<IndexForm> F = linearizeIndex(E, Ambient);
  if (!F)
    return std::nullopt;
  // Substitute single-assignment definitions until only atoms remain:
  // decode coordinates and tile bases fail to linearize (Mod) and stop
  // the expansion naturally.
  for (unsigned Iter = 0; Iter < 8; ++Iter) {
    bool Changed = false;
    IndexForm NF;
    NF.Constant = F->Constant;
    for (const IndexTerm &T : F->Terms) {
      const Stmt *D = DI.singleDef(T.Coord);
      std::optional<IndexForm> Sub;
      if (D && D->Kind != StmtKind::ArrayStore)
        Sub = linearizeIndex(D->Value, Ambient);
      bool SelfRef = false;
      if (Sub)
        for (const IndexTerm &ST : Sub->Terms)
          SelfRef |= ST.Coord == T.Coord;
      if (Sub && !SelfRef) {
        NF.Constant += T.Coeff * Sub->Constant;
        for (const IndexTerm &ST : Sub->Terms)
          addTermTo(NF, ST.Coord, ST.Coeff * T.Coeff);
        Changed = true;
      } else {
        addTermTo(NF, T.Coord, T.Coeff);
      }
    }
    *F = std::move(NF);
    if (!Changed)
      break;
  }
  return F;
}

std::string Prover::instanceSuffixFor(const std::string &Name) const {
  auto It = DI.BarrierLoopsOf.find(canonicalAtom(Name));
  if (It == DI.BarrierLoopsOf.end())
    return std::string();
  std::string Suffix;
  for (const Stmt *L : It->second)
    for (const auto &[Loop, IterNo] : UnrollStack)
      if (Loop == L)
        Suffix += "@" + std::to_string(IterNo);
  return Suffix;
}

void Prover::checkSchemaRoles() {
  auto expectUniform = [](const std::string &N) {
    return N == "numSteps" || N == "totalBlocks" || hasPrefix(N, "nt_") ||
           hasPrefix(N, "ns_") || hasPrefix(N, "base_") ||
           hasPrefix(N, "kbase_") || hasPrefix(N, "strA_") ||
           hasPrefix(N, "strB_") || hasPrefix(N, "strC_");
  };
  auto expectThread = [](const std::string &N) {
    return N == "tid" || (N.size() == 3 && N[0] == 't' && N[1] == '_');
  };
  for (size_t I = 0; I < Flow.Locations.size(); ++I) {
    const Location &L = Flow.Locations[I];
    if (L.Space != LocSpace::Scalar || L.Implicit)
      continue;
    Uniformity U = R.Uniform.Classes[I];
    unsigned Line = 0;
    if (auto It = Taint.FirstDefLine.find(L.Name);
        It != Taint.FirstDefLine.end())
      Line = It->second;
    if (expectUniform(L.Name)) {
      if (U == Uniformity::ThreadDependent)
        finding(RaceFindingKind::NonUniformValue, L.Name, Line, 0,
                "schema role '" + L.Name +
                    "' must be thread-uniform but classified " +
                    uniformityName(U));
      else if (U == Uniformity::Unknown)
        finding(RaceFindingKind::UnknownUniformity, L.Name, Line, 0,
                "schema role '" + L.Name + "' has no classifiable definition");
    } else if (expectThread(L.Name) && U == Uniformity::Uniform) {
      finding(RaceFindingKind::NonUniformValue, L.Name, Line, 0,
              "schema role '" + L.Name +
                  "' must be thread-dependent but classified uniform");
    }
  }
}

void Prover::divergenceWalk(const std::vector<Stmt> &Body, Uniformity Ctrl,
                            const std::string &CtrlDesc) {
  for (const Stmt &S : Body) {
    switch (S.Kind) {
    case StmtKind::Barrier:
      if (Ctrl == Uniformity::ThreadDependent)
        finding(RaceFindingKind::DivergentBarrier, std::string(), S.Line, 0,
                "barrier under thread-divergent control (" + CtrlDesc + ")");
      else if (Ctrl == Uniformity::Unknown)
        finding(RaceFindingKind::UnknownUniformity, std::string(), S.Line, 0,
                "barrier under control of unknown uniformity (" + CtrlDesc +
                    ")");
      break;
    case StmtKind::Loop: {
      Uniformity HC = joinU(
          Ctrl, joinU(exprClass(S.LoopInit, Taint),
                      joinU(exprClass(S.LoopBound, Taint),
                            exprClass(S.LoopStep, Taint))));
      std::string Desc = CtrlDesc;
      if (HC != Ctrl || Desc.empty())
        Desc = "loop " + S.LoopVar + " < " + renderExpr(S.LoopBound);
      divergenceWalk(S.Body, HC, HC == Ctrl ? CtrlDesc : Desc);
      break;
    }
    case StmtKind::If: {
      Uniformity HC = joinU(Ctrl, exprClass(S.Value, Taint));
      divergenceWalk(S.Body, HC,
                     HC == Ctrl ? CtrlDesc : renderExpr(S.Value));
      break;
    }
    case StmtKind::Block:
      divergenceWalk(S.Body, Ctrl, CtrlDesc);
      break;
    default:
      break;
    }
  }
}

void Prover::scanReads(const Stmt &S, const Expr &E) {
  forEachIndexExpr(E, [&](const Expr &Ref) {
    std::optional<unsigned> Loc = Flow.location(Ref.Name);
    if (!Loc)
      return;
    LocSpace Space = Flow.Locations[*Loc].Space;
    if (Space != LocSpace::SharedArray && Space != LocSpace::GlobalArray)
      return;
    emitAccess(S, Ref.Kids[0], Ref.Name, /*Write=*/false);
  });
}

void Prover::walk(const std::vector<Stmt> &Body) {
  for (const Stmt &S : Body) {
    switch (S.Kind) {
    case StmtKind::Barrier:
      ++Interval;
      break;
    case StmtKind::ArrayStore: {
      if (std::optional<unsigned> Loc = Flow.location(S.Name)) {
        LocSpace Space = Flow.Locations[*Loc].Space;
        if (Space == LocSpace::SharedArray || Space == LocSpace::GlobalArray)
          emitAccess(S, S.Index, S.Name, /*Write=*/true);
      }
      scanReads(S, S.Value);
      break;
    }
    case StmtKind::Decl:
    case StmtKind::Assign:
    case StmtKind::CompoundMul:
    case StmtKind::CompoundDiv:
      scanReads(S, S.Value);
      break;
    case StmtKind::Loop:
      if (containsBarrier(S.Body)) {
        // Two abstract iterations expose the cross-iteration interval
        // (the region spanning a latch: stores of iteration k share an
        // interval with the first staging phase of iteration k+1).
        for (unsigned IterNo = 0; IterNo < 2; ++IterNo) {
          UnrollStack.emplace_back(&S, IterNo);
          walk(S.Body);
          UnrollStack.pop_back();
        }
      } else {
        walk(S.Body);
      }
      break;
    case StmtKind::If:
      GuardStack.push_back(&S.Value);
      walk(S.Body);
      GuardStack.pop_back();
      break;
    case StmtKind::Block:
      walk(S.Body);
      break;
    default:
      break;
    }
  }
}

void Prover::emitAccess(const Stmt &S, const Expr &IndexE,
                        const std::string &Array, bool Write) {
  AccessInst A;
  A.S = &S;
  A.Array = Array;
  A.Write = Write;
  A.Line = S.Line;
  A.Interval = Interval;
  for (const auto &[Loop, IterNo] : UnrollStack) {
    (void)Loop;
    A.Instance += std::to_string(IterNo);
  }
  std::optional<IndexForm> F = linearizeExpand(IndexE);
  if (!F) {
    finding(RaceFindingKind::NonAffineAccess, Array, S.Line, 0,
            "index expression is not affine: " + renderExpr(IndexE));
    return;
  }
  A.Const = F->Constant;
  for (const IndexTerm &T : F->Terms) {
    Uniformity U = Taint.classOf(T.Coord);
    bool IsPriv = U == Uniformity::ThreadDependent || Taint.privOf(T.Coord);
    if (U == Uniformity::Unknown) {
      if (WarnedUnknown.insert(T.Coord).second)
        finding(RaceFindingKind::UnknownUniformity, Array, S.Line, 0,
                "index atom '" + T.Coord +
                    "' has no classifiable definition");
      IsPriv = true;
    }
    if (IsPriv)
      A.Priv.push_back({T.Coord, T.Coeff, rangeOfName(*RC, T.Coord)});
    else
      A.Shared[T.Coord + instanceSuffixFor(T.Coord)] += T.Coeff;
  }
  for (const Expr *G : GuardStack)
    addGuard(A, *G);
  Accesses.push_back(std::move(A));
}

void Prover::addGuard(AccessInst &A, const Expr &Cond) {
  if (Cond.Kind == ExprKind::And) {
    for (const Expr &Kid : Cond.Kids)
      addGuard(A, Kid);
    return;
  }
  const Expr *L = nullptr, *R2 = nullptr;
  bool Strict = true;
  switch (Cond.Kind) {
  case ExprKind::Lt:
    L = &Cond.Kids[0];
    R2 = &Cond.Kids[1];
    break;
  case ExprKind::Le:
    L = &Cond.Kids[0];
    R2 = &Cond.Kids[1];
    Strict = false;
    break;
  case ExprKind::Gt:
    L = &Cond.Kids[1];
    R2 = &Cond.Kids[0];
    break;
  case ExprKind::Ge:
    L = &Cond.Kids[1];
    R2 = &Cond.Kids[0];
    Strict = false;
    break;
  default:
    return; // Unhandled conjunct: dropping it only widens the model.
  }
  std::optional<IndexForm> LF = linearizeExpand(*L);
  std::optional<IndexForm> RF = linearizeExpand(*R2);
  if (!LF || !RF)
    return;
  IndexForm Diff = *LF;
  Diff.Constant -= RF->Constant;
  for (const IndexTerm &T : RF->Terms)
    addTermTo(Diff, T.Coord, -T.Coeff);
  GuardLin G;
  G.Const = Diff.Constant;
  G.Strict = Strict;
  for (const IndexTerm &T : Diff.Terms) {
    Uniformity U = Taint.classOf(T.Coord);
    bool IsPriv = U != Uniformity::Uniform || Taint.privOf(T.Coord);
    std::string Name =
        IsPriv ? T.Coord : T.Coord + instanceSuffixFor(T.Coord);
    G.Terms.emplace_back(std::move(Name), T.Coeff);
  }
  A.Guards.push_back(std::move(G));
}

bool Prover::proveInjective(const AccessInst &A) {
  std::vector<const PTerm *> Sorted;
  for (const PTerm &T : A.Priv) {
    if (T.Coeff <= 0 || !T.Range)
      return false;
    Sorted.push_back(&T);
  }
  std::sort(Sorted.begin(), Sorted.end(),
            [](const PTerm *X, const PTerm *Y) { return X->Coeff < Y->Coeff; });
  for (size_t K = 1; K < Sorted.size(); ++K)
    if (Sorted[K]->Coeff < Sorted[K - 1]->Coeff * Sorted[K - 1]->Range->size())
      return false;
  // Same address now implies identical private atoms; the access is
  // race-free iff those atoms determine the thread.
  auto inForm = [&](const std::string &Name) {
    for (const PTerm &T : A.Priv)
      if (T.Name == Name)
        return true;
    return false;
  };
  auto covered = [&](const std::string &Name) {
    if (inForm(Name))
      return true;
    std::optional<ValueRange> VR = rangeOfName(*RC, Name);
    return VR && VR->Lo == VR->Hi;
  };
  bool DetX = inForm("threadIdx.x") || inForm("get_local_id(0)");
  bool DetY = inForm("threadIdx.y") || inForm("get_local_id(1)");
  bool DetLin = inForm("tid");
  for (const DecodeGroup &G : Groups) {
    if (!G.Bijective)
      continue;
    bool All = true;
    for (const std::string &Coord : G.Coords)
      All &= covered(Coord);
    if (!All)
      continue;
    if (G.Src == TidSrc::X)
      DetX = true;
    else if (G.Src == TidSrc::Y)
      DetY = true;
    else
      DetLin = true;
  }
  return DetLin ||
         ((DetX || define("TBX") <= 1) && (DetY || define("TBY") <= 1));
}

PinState Prover::computePins(const AccessInst &A, const Env &Vals) {
  (void)A;
  PinState PS;
  auto direct = [&](const char *Name, std::optional<int64_t> PinState::*Slot) {
    auto It = Vals.find(Name);
    if (It != Vals.end())
      PS.pin(PS.*Slot, It->second);
  };
  direct("threadIdx.x", &PinState::X);
  direct("get_local_id(0)", &PinState::X);
  direct("threadIdx.y", &PinState::Y);
  direct("get_local_id(1)", &PinState::Y);
  direct("tid", &PinState::Lin);
  int64_t NT = define("NTHREADS");
  for (const DecodeGroup &G : Groups) {
    if (!G.Bijective)
      continue;
    int64_t V = 0, Scale = 1;
    bool All = true;
    for (size_t J = 0; J < G.Coords.size(); ++J) {
      int64_t CV = 0;
      if (auto It = Vals.find(G.Coords[J]); It != Vals.end()) {
        CV = It->second;
      } else {
        std::optional<ValueRange> VR = rangeOfName(*RC, G.Coords[J]);
        if (!VR || VR->Lo != VR->Hi) {
          All = false;
          break;
        }
        CV = VR->Lo;
      }
      V += CV * Scale;
      Scale *= G.Radix[J];
    }
    if (!All)
      continue;
    if (V >= G.SrcBound) {
      PS.Bad = true; // No thread/iteration produces this combination.
      return PS;
    }
    if (G.Src == TidSrc::X)
      PS.pin(PS.X, V);
    else if (G.Src == TidSrc::Y)
      PS.pin(PS.Y, V);
    else if (NT > 0)
      PS.pin(PS.Lin, V % NT);
  }
  return PS;
}

std::vector<int64_t> Prover::threadsOf(const PinState &PS) const {
  std::vector<int64_t> Out;
  if (PS.Bad)
    return Out;
  int64_t TBX = std::max<int64_t>(1, define("TBX"));
  int64_t TBY = std::max<int64_t>(1, define("TBY"));
  if (PS.Lin) {
    int64_t T = *PS.Lin;
    if (PS.X && *PS.X != T % TBX)
      return Out;
    if (PS.Y && *PS.Y != (T / TBX) % TBY)
      return Out;
    Out.push_back(T);
    return Out;
  }
  int64_t XLo = PS.X ? *PS.X : 0, XHi = PS.X ? *PS.X : TBX - 1;
  int64_t YLo = PS.Y ? *PS.Y : 0, YHi = PS.Y ? *PS.Y : TBY - 1;
  for (int64_t Y = YLo; Y <= YHi; ++Y)
    for (int64_t X = XLo; X <= XHi; ++X)
      Out.push_back(X + TBX * Y);
  return Out;
}

PairPick Prover::pickPair(const std::vector<int64_t> &S1,
                          const std::vector<int64_t> &S2) const {
  PairPick P;
  int64_t W = std::max<unsigned>(1, Opts.WarpSize);
  for (int64_t T1 : S1)
    for (int64_t T2 : S2) {
      if (T1 == T2)
        continue;
      if (T1 / W != T2 / W)
        return {true, T1, T2, true};
      if (!P.Found)
        P = {true, T1, T2, false};
    }
  return P;
}

AccessForm Prover::formOf(const AccessInst &X, bool Second) const {
  AccessForm F;
  F.Array = X.Array;
  F.Write = X.Write;
  F.Line = X.Line;
  F.Constant = X.Const;
  for (const auto &[Name, Coeff] : X.Shared)
    F.Terms.push_back({Name, Coeff});
  for (const PTerm &T : X.Priv)
    F.Terms.push_back({Second ? T.Name + "'" : T.Name, T.Coeff});
  return F;
}

void Prover::emitRace(const AccessInst &A, const AccessInst &B,
                      const Env &Sig, const Env &AVals, const Env &BVals,
                      int64_t T1, int64_t T2, int64_t Addr) {
  RaceFindingKind K = (A.Write && B.Write) ? RaceFindingKind::WriteWriteRace
                                           : RaceFindingKind::WriteReadRace;
  const AccessInst &W = A.Write ? A : B;
  const AccessInst &O = A.Write ? B : A;
  auto Key = std::make_tuple(static_cast<int>(K), A.Array,
                             std::min(W.Line, O.Line),
                             std::max(W.Line, O.Line));
  if (!Seen.insert(Key).second)
    return;
  RaceFinding F;
  F.Kind = K;
  F.Array = A.Array;
  F.Line = W.Line;
  F.OtherLine = O.Line;
  F.Message = std::string("two threads can touch the same element (") +
              (K == RaceFindingKind::WriteWriteRace ? "write/write"
                                                    : "write/read") +
              ")";
  F.First = formOf(A, false);
  F.Second = formOf(B, true);
  RaceWitness Wit;
  Wit.Thread1 = T1;
  Wit.Thread2 = T2;
  Wit.Address = Addr;
  std::vector<std::pair<std::string, int64_t>> Rows;
  for (const auto &[N, V] : Sig)
    Rows.emplace_back(N, V);
  std::sort(Rows.begin(), Rows.end());
  for (const auto &[N, V] : Rows)
    Wit.Coords.push_back({N, V, V});
  auto pushSide = [&](const Env &Vals, bool Prime) {
    std::vector<std::pair<std::string, int64_t>> SideRows(Vals.begin(),
                                                          Vals.end());
    std::sort(SideRows.begin(), SideRows.end());
    for (const auto &[N, V] : SideRows)
      if (!Sig.count(N))
        Wit.Coords.push_back({Prime ? N + "'" : N, V, V});
  };
  pushSide(AVals, false);
  pushSide(BVals, true);
  F.Witness = std::move(Wit);
  R.Findings.push_back(std::move(F));
  ++NumRaceFindings;
}

void Prover::unproven(const AccessInst &A, const AccessInst &B,
                      std::string Why) {
  finding(RaceFindingKind::UnprovenAccess, A.Array, A.Line, B.Line,
          "solver gave up: " + std::move(Why));
}

void Prover::enumeratePair(const AccessInst &A, const AccessInst &B,
                           const std::map<std::string, int64_t> &SharedDiff) {
  struct Dim {
    std::string Name;
    int64_t Lo = 0, Hi = 0, Cur = 0;
  };
  std::set<std::string> Sigma;
  for (const auto &[N, C] : SharedDiff) {
    (void)C;
    Sigma.insert(N);
  }
  std::vector<Dim> SigD, AD, BD;
  for (const std::string &N : Sigma) {
    std::optional<ValueRange> VR = rangeOfName(*RC, N);
    if (!VR)
      return unproven(A, B, "unknown range for shared atom '" + N + "'");
    SigD.push_back({N, VR->Lo, VR->Hi, VR->Lo});
  }
  auto privDims = [&](const AccessInst &X, std::vector<Dim> &Out) {
    for (const PTerm &T : X.Priv) {
      if (!T.Range)
        return false;
      Out.push_back({T.Name, T.Range->Lo, T.Range->Hi, T.Range->Lo});
    }
    return true;
  };
  if (!privDims(A, AD) || !privDims(B, BD))
    return unproven(A, B, "unknown range for a private atom");
  long double Cost = 1.0L, PA = 1.0L, PB = 1.0L;
  for (const Dim &D : SigD)
    Cost *= static_cast<long double>(D.Hi - D.Lo + 1);
  for (const Dim &D : AD)
    PA *= static_cast<long double>(D.Hi - D.Lo + 1);
  for (const Dim &D : BD)
    PB *= static_cast<long double>(D.Hi - D.Lo + 1);
  Cost *= PA + PB;
  if (Cost > static_cast<long double>(Opts.EnumerationCap))
    return unproven(A, B, "enumeration cost exceeds cap");
  // Guard atoms are best-effort dimensions: pinning them lets guardsHold
  // prune infeasible points, but omitting one only *enlarges* the searched
  // superset (its conjuncts become unevaluable and are skipped), so the
  // check stays sound. Admit them cheapest-range-first while the total
  // enumeration cost stays under the cap.
  {
    std::map<std::string, ValueRange> Cands;
    auto guardAtoms = [&](const AccessInst &X) {
      for (const GuardLin &G : X.Guards)
        for (const auto &[N, C] : G.Terms) {
          (void)C;
          bool IsPriv = false;
          for (const PTerm &T : X.Priv)
            IsPriv |= T.Name == N;
          if (IsPriv || Sigma.count(N))
            continue;
          if (std::optional<ValueRange> VR = rangeOfName(*RC, N))
            Cands.emplace(N, *VR);
        }
    };
    guardAtoms(A);
    guardAtoms(B);
    std::vector<std::pair<std::string, ValueRange>> Order(Cands.begin(),
                                                          Cands.end());
    std::stable_sort(Order.begin(), Order.end(),
                     [](const auto &L, const auto &R) {
                       return L.second.size() < R.second.size();
                     });
    for (const auto &[N, VR] : Order) {
      long double Grown = Cost * static_cast<long double>(VR.size());
      if (Grown > static_cast<long double>(Opts.EnumerationCap))
        break;
      Cost = Grown;
      Sigma.insert(N);
      SigD.push_back({N, VR.Lo, VR.Hi, VR.Lo});
    }
  }
  uint64_t Budget = Opts.EnumerationCap;
  auto reset = [](std::vector<Dim> &Ds) {
    for (Dim &D : Ds)
      D.Cur = D.Lo;
  };
  auto advance = [](std::vector<Dim> &Ds) {
    for (Dim &D : Ds) {
      if (++D.Cur <= D.Hi)
        return true;
      D.Cur = D.Lo;
    }
    return false;
  };
  auto guardsHold = [](const AccessInst &X, const Env &Vals) {
    for (const GuardLin &G : X.Guards) {
      int64_t S = G.Const;
      bool All = true;
      for (const auto &[N, C] : G.Terms) {
        auto It = Vals.find(N);
        if (It == Vals.end()) {
          All = false;
          break;
        }
        S += C * It->second;
      }
      if (!All)
        continue; // Unevaluable conjunct: keep the superset.
      if (G.Strict ? !(S < 0) : !(S <= 0))
        return false;
    }
    return true;
  };
  auto addrOf = [&](const AccessInst &X, const Env &Vals) {
    // Shared atoms outside Sigma cancel between the two sides and are
    // consistently omitted from both pseudo-addresses.
    int64_t V = X.Const;
    for (const auto &[N, C] : X.Shared)
      if (auto It = Vals.find(N); It != Vals.end())
        V += C * It->second;
    for (const PTerm &T : X.Priv)
      V += T.Coeff * Vals.at(T.Name);
    return V;
  };
  bool WR = !(A.Write && B.Write);
  bool SawLockstepOnly = false;
  reset(SigD);
  do {
    Env Sig;
    for (const Dim &D : SigD)
      Sig[D.Name] = D.Cur;
    struct Entry {
      Env Vals;
      PinState Pins;
      int64_t Addr;
    };
    std::unordered_map<int64_t, std::vector<Entry>> Table;
    reset(AD);
    do {
      if (Budget-- == 0)
        return unproven(A, B, "enumeration budget exhausted");
      Env Vals = Sig;
      for (const Dim &D : AD)
        Vals[D.Name] = D.Cur;
      if (!guardsHold(A, Vals))
        continue;
      PinState PS = computePins(A, Vals);
      if (PS.Bad)
        continue;
      int64_t Addr = addrOf(A, Vals);
      Env PrivOnly;
      for (const Dim &D : AD)
        PrivOnly[D.Name] = D.Cur;
      Table[Addr].push_back({std::move(PrivOnly), PS, Addr});
    } while (advance(AD));
    reset(BD);
    do {
      if (Budget-- == 0)
        return unproven(A, B, "enumeration budget exhausted");
      Env Vals = Sig;
      for (const Dim &D : BD)
        Vals[D.Name] = D.Cur;
      if (!guardsHold(B, Vals))
        continue;
      PinState PS = computePins(B, Vals);
      if (PS.Bad)
        continue;
      int64_t Addr = addrOf(B, Vals);
      auto It = Table.find(Addr);
      if (It == Table.end())
        continue;
      std::vector<int64_t> S2 = threadsOf(PS);
      if (S2.empty())
        continue;
      for (const Entry &E : It->second) {
        std::vector<int64_t> S1 = threadsOf(E.Pins);
        if (S1.empty())
          continue;
        if (Budget < S1.size() * S2.size())
          return unproven(A, B, "enumeration budget exhausted");
        Budget -= S1.size() * S2.size();
        PairPick P = pickPair(S1, S2);
        if (!P.Found)
          continue;
        if (WR && !P.CrossWarp) {
          // Only intra-warp thread pairs collide at this address:
          // lockstep execution orders the write/read pair.
          SawLockstepOnly = true;
          continue;
        }
        Env BPriv;
        for (const Dim &D : BD)
          BPriv[D.Name] = D.Cur;
        emitRace(A, B, Sig, E.Vals, BPriv, P.T1, P.T2, Addr);
        return;
      }
    } while (advance(BD));
  } while (advance(SigD));
  if (SawLockstepOnly)
    ++R.LockstepSuppressed;
  else
    ++R.ProvedByEnumeration;
}

void Prover::solvePair(const AccessInst &A, const AccessInst &B, bool Self) {
  ++R.PairsChecked;
  ++NumRacePairs;
  std::map<std::string, int64_t> SD = A.Shared;
  for (const auto &[N, C] : B.Shared)
    SD[N] -= C;
  for (auto It = SD.begin(); It != SD.end();)
    It = It->second == 0 ? SD.erase(It) : std::next(It);
  int64_t CD = A.Const - B.Const;
  // 1. Interval disjointness of the address difference.
  bool RangesOK = true;
  int64_t Lo = CD, Hi = CD;
  auto accumulate = [&](int64_t Coeff, std::optional<ValueRange> VR) {
    if (!VR) {
      RangesOK = false;
      return;
    }
    if (Coeff >= 0) {
      Lo += Coeff * VR->Lo;
      Hi += Coeff * VR->Hi;
    } else {
      Lo += Coeff * VR->Hi;
      Hi += Coeff * VR->Lo;
    }
  };
  for (const auto &[N, C] : SD)
    accumulate(C, rangeOfName(*RC, N));
  for (const PTerm &T : A.Priv)
    accumulate(T.Coeff, T.Range);
  for (const PTerm &T : B.Priv)
    accumulate(-T.Coeff, T.Range);
  if (RangesOK && (Lo > 0 || Hi < 0)) {
    ++R.ProvedByInterval;
    return;
  }
  // 2. GCD refutation on the coefficient lattice.
  int64_t G = 0;
  for (const auto &[N, C] : SD) {
    (void)N;
    G = std::gcd(G, std::abs(C));
  }
  for (const PTerm &T : A.Priv)
    G = std::gcd(G, std::abs(T.Coeff));
  for (const PTerm &T : B.Priv)
    G = std::gcd(G, std::abs(T.Coeff));
  if (G > 0 && CD % G != 0) {
    ++R.ProvedByGcd;
    return;
  }
  // 3. Mixed-radix injectivity for a self pair: same address implies the
  // same private atoms, which (via a bijective thread decode) implies the
  // same thread.
  if (Self && proveInjective(A)) {
    ++R.ProvedByInjectivity;
    return;
  }
  // 4. Bounded concrete enumeration.
  enumeratePair(A, B, SD);
}

RaceReport Prover::run() {
  Taint = runTaint(M, Flow);
  R.Uniform.Classes.reserve(Flow.Locations.size());
  R.Uniform.IterationPrivate.reserve(Flow.Locations.size());
  for (const Location &L : Flow.Locations) {
    R.Uniform.Classes.push_back(Taint.classOf(L.Name));
    R.Uniform.IterationPrivate.push_back(Taint.privOf(L.Name));
  }
  checkSchemaRoles();
  divergenceWalk(M.Body, Uniformity::Uniform, std::string());
  std::vector<const Stmt *> LoopStack;
  indexDefs(M.Body, LoopStack, DI);
  Ambient = buildProverAmbient(Plan, M, DI);
  RC = std::make_unique<RangeCtx>(RangeCtx{M, Ambient, DI, {}, {}});
  findGroups(M.Body, M, Ambient, Groups);
  walk(M.Body);
  R.Intervals = Interval + 1;
  R.AccessesChecked = static_cast<unsigned>(Accesses.size());
  std::map<std::pair<std::string, unsigned>, std::vector<size_t>> Buckets;
  for (size_t I = 0; I < Accesses.size(); ++I)
    Buckets[{Accesses[I].Array, Accesses[I].Interval}].push_back(I);
  for (const auto &[Key, Idx] : Buckets) {
    (void)Key;
    for (size_t I = 0; I < Idx.size(); ++I)
      for (size_t J = I; J < Idx.size(); ++J) {
        const AccessInst &A = Accesses[Idx[I]];
        const AccessInst &B = Accesses[Idx[J]];
        if (!A.Write && !B.Write)
          continue;
        bool Self = I == J;
        if (Self && !A.Write)
          continue;
        solvePair(A, B, Self);
      }
  }
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public rendering / replay / entry points
//===----------------------------------------------------------------------===//

std::string RaceWitness::render() const {
  std::ostringstream OS;
  OS << "threads (" << Thread1 << "," << Thread2 << ") address " << Address;
  if (!Coords.empty()) {
    OS << " via";
    for (const WitnessCoord &C : Coords) {
      bool Prime = !C.Coord.empty() && C.Coord.back() == '\'';
      OS << ' ' << C.Coord << '=' << (Prime ? C.Second : C.First);
    }
  }
  return OS.str();
}

int64_t AccessForm::eval(const std::vector<WitnessCoord> &Coords,
                         bool Second) const {
  int64_t V = Constant;
  for (const IndexTerm &T : Terms)
    for (const WitnessCoord &C : Coords)
      if (C.Coord == T.Coord) {
        V += T.Coeff * (Second ? C.Second : C.First);
        break;
      }
  return V;
}

std::string RaceFinding::render() const {
  std::ostringstream OS;
  OS << raceFindingKindName(Kind) << ": ";
  if (!Array.empty())
    OS << Array << ' ';
  if (Line != 0) {
    OS << "line " << Line;
    if (OtherLine != 0)
      OS << " vs " << OtherLine;
    OS << ": ";
  }
  OS << Message;
  if (Witness)
    OS << " [" << Witness->render() << "]";
  return OS.str();
}

bool replayWitness(const RaceFinding &F) {
  if (!F.Witness)
    return false;
  if (F.Witness->Thread1 == F.Witness->Thread2)
    return false;
  return F.First.eval(F.Witness->Coords, false) ==
         F.Second.eval(F.Witness->Coords, true);
}

RaceReport proveRaces(const KernelPlan &Plan, const KernelModel &M,
                      const DataflowInfo &Flow,
                      const RaceProverOptions &Opts) {
  Prover P(Plan, M, Flow, Opts);
  return P.run();
}

std::string explainRaces(const KernelPlan &Plan,
                         const std::string &KernelSource,
                         const RaceProverOptions &Opts) {
  ErrorOr<KernelModel> Model = parseKernelSource(KernelSource);
  if (!Model)
    return "explain-races: kernel failed to parse: " + Model.errorMessage() +
           "\n";
  ErrorOr<DataflowInfo> Flow = buildDataflow(*Model);
  if (!Flow)
    return "explain-races: dataflow failed: " + Flow.errorMessage() + "\n";
  RaceReport R = proveRaces(Plan, *Model, *Flow, Opts);
  std::ostringstream OS;
  OS << "=== race prover: uniformity ===\n";
  for (size_t I = 0; I < Flow->Locations.size(); ++I) {
    const Location &L = Flow->Locations[I];
    if (L.Implicit)
      continue;
    OS << "  " << L.Name << ": " << uniformityName(R.Uniform.Classes[I]);
    if (R.Uniform.IterationPrivate[I])
      OS << " (iteration-private)";
    OS << "\n";
  }
  OS << "=== race prover: solver ===\n";
  OS << "  barrier intervals: " << R.Intervals
     << "  accesses: " << R.AccessesChecked
     << "  pairs: " << R.PairsChecked << "\n";
  OS << "  proved by: interval " << R.ProvedByInterval << ", gcd "
     << R.ProvedByGcd << ", injectivity " << R.ProvedByInjectivity
     << ", enumeration " << R.ProvedByEnumeration << "\n";
  OS << "  lockstep-suppressed write/read pairs: " << R.LockstepSuppressed
     << "\n";
  OS << "=== race prover: findings ===\n";
  if (R.Findings.empty())
    OS << "  none - race and divergence clean\n";
  for (const RaceFinding &F : R.Findings)
    OS << "  " << F.render() << "\n";
  return OS.str();
}

} // namespace analysis
} // namespace cogent
