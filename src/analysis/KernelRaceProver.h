//===- analysis/KernelRaceProver.h - Symbolic race & divergence prover ----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KernelRaceProver: a GPUVerify-style symbolic two-thread abstraction over
/// the KernelModel statement tree of one emitted kernel. Where the
/// BarrierPlacement pass replays a flow-sensitive trace of whole-array
/// access events, this layer reasons about *addresses*: it proves, for two
/// arbitrary distinct threads of the same block, that no pair of shared- or
/// global-memory accesses inside the same barrier interval can touch the
/// same element — or produces a concrete witness (thread pair + coordinate
/// vector + address) when they can.
///
/// Three analyses share the machinery:
///
///   Uniformity (taint). Every scalar location is classified Uniform
///     (provably identical across the threads of a block), ThreadDependent
///     (derived from threadIdx/tid), or Unknown (no classifiable
///     definition). The classification is a fixpoint over the statement
///     tree seeded from the thread/block builtins, flowing through data
///     dependences and control dependence (a value assigned under a
///     divergent guard or loop is itself divergent). Schema roles the
///     generator guarantees uniform — tile bases, step bases, stride
///     variables, trip counts — are checked against their class.
///
///   Race freedom. Accesses are linearized to affine forms over *atoms*:
///     decode coordinates (i_a = lr % 16), thread coordinates (t_a),
///     loop-private iteration coordinates (k_e, x_b) and shared uniform
///     symbols (base_a, kbase_e). Within one barrier interval — barrier
///     intervals reuse the CFG notion of barrier-terminated regions, with
///     barrier-carrying loops unrolled two abstract iterations — the
///     prover solves addr(t1, iv1) == addr(t2, iv2) with t1 != t2. The
///     solver tries, in order: interval disjointness, a GCD divisibility
///     test on the coefficient lattice, a mixed-radix injectivity argument
///     (sorted-stride packing plus a bijective thread decode implies same
///     address => same thread), and finally a bounded concrete enumeration
///     that either proves the pair disjoint or yields a witness. Write-read
///     pairs between distinct statements whose colliding threads all share
///     a warp are suppressed (intra-warp lockstep ordering).
///
///   Barrier divergence. Every barrier must sit under uniform control
///     only: each enclosing guard condition and loop header is classified
///     with the taint lattice, and any divergent enclosing control yields
///     a finding (a divergent barrier deadlocks devices without
///     independent thread scheduling and synchronizes nothing).
///
/// KernelLint surfaces the three analyses as passes 11-13 (uniformity,
/// race-freedom, barrier-uniformity); explainRaces() renders the full
/// derivation for cogent_cli --explain-races.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_ANALYSIS_KERNELRACEPROVER_H
#define COGENT_ANALYSIS_KERNELRACEPROVER_H

#include "analysis/KernelDataflow.h"
#include "analysis/KernelModel.h"
#include "core/KernelPlan.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cogent {
namespace analysis {

//===----------------------------------------------------------------------===//
// Uniformity lattice
//===----------------------------------------------------------------------===//

/// Taint class of one value with respect to the thread id. Ordered as a
/// join lattice: Uniform < Unknown < ThreadDependent.
enum class Uniformity {
  Uniform,         ///< Identical across every thread of a block.
  Unknown,         ///< No classifiable definition reaches the value.
  ThreadDependent, ///< Derived (data or control) from threadIdx/tid.
};

/// Number of Uniformity enumerators (name-table round-trips walk this).
inline constexpr unsigned NumUniformityClasses = 3;

/// Stable identifier, e.g. "thread-dependent".
const char *uniformityName(Uniformity U);

/// Inverse of uniformityName; std::nullopt for unknown names.
std::optional<Uniformity> uniformityFromName(const std::string &Name);

/// Result of the taint analysis, parallel to DataflowInfo::Locations.
struct UniformityInfo {
  /// Classes[i] classifies DataflowInfo::Locations[i]. Array locations
  /// carry the join over their stored values' classes.
  std::vector<Uniformity> Classes;
  /// True when the location's value additionally varies across the
  /// iterations of a barrier-free loop — two threads inside one barrier
  /// interval may observe *different* values even when the value is
  /// thread-uniform (they can sit at different iterations).
  std::vector<bool> IterationPrivate;

  /// Class of \p Name under \p Flow's location table; Unknown when the
  /// name is not a location.
  Uniformity classOf(const DataflowInfo &Flow, const std::string &Name) const;
};

/// Runs the taint fixpoint over \p M against \p Flow's location table.
UniformityInfo analyzeUniformity(const KernelModel &M,
                                 const DataflowInfo &Flow);

//===----------------------------------------------------------------------===//
// Findings
//===----------------------------------------------------------------------===//

/// Typed finding kinds the prover can report.
enum class RaceFindingKind {
  WriteWriteRace,    ///< Two threads can write the same element.
  WriteReadRace,     ///< A write and a read can touch the same element.
  DivergentBarrier,  ///< A barrier sits under thread-divergent control.
  NonUniformValue,   ///< A schema-uniform role classified thread-dependent.
  UnknownUniformity, ///< An index atom with no classifiable definition.
  NonAffineAccess,   ///< An SMEM/GMEM index failed to linearize.
  UnprovenAccess,    ///< Solver gave up (unknown range / enumeration cap).
};

/// Number of RaceFindingKind enumerators.
inline constexpr unsigned NumRaceFindingKinds = 7;

/// Stable identifier, e.g. "write-write-race".
const char *raceFindingKindName(RaceFindingKind Kind);

/// Inverse of raceFindingKindName; std::nullopt for unknown names.
std::optional<RaceFindingKind> raceFindingKindFromName(const std::string &N);

/// One atom assignment of a witness, giving the value each of the two
/// abstract threads binds. Shared atoms carry equal values by construction.
struct WitnessCoord {
  std::string Coord;
  int64_t First = 0;
  int64_t Second = 0;
};

/// A concrete two-thread counterexample: both threads' coordinate vectors
/// evaluate the reported access forms to the same element address.
struct RaceWitness {
  int64_t Thread1 = 0;
  int64_t Thread2 = 0;
  int64_t Address = 0;
  std::vector<WitnessCoord> Coords;

  /// "threads (17,33) address 33 via i_a=1 i_e=1 | i_a'=..." rendering.
  std::string render() const;
};

/// The affine form of one checked access, exported so tests can replay a
/// witness independently of the solver: address = sum(Coeff * value(Coord))
/// + Constant under either thread's witness column.
struct AccessForm {
  std::string Array;
  bool Write = false;
  unsigned Line = 0;
  std::vector<IndexTerm> Terms;
  int64_t Constant = 0;

  /// Evaluates the form under the witness column selected by \p Second;
  /// atoms absent from \p Coords evaluate to 0.
  int64_t eval(const std::vector<WitnessCoord> &Coords, bool Second) const;
};

/// One typed prover finding.
struct RaceFinding {
  RaceFindingKind Kind = RaceFindingKind::WriteWriteRace;
  std::string Array;      ///< Accessed array for race kinds; else empty.
  unsigned Line = 0;      ///< Primary source line (write for races).
  unsigned OtherLine = 0; ///< Second access line for race kinds.
  std::string Message;
  std::optional<RaceWitness> Witness; ///< Filled for race kinds.
  AccessForm First, Second;           ///< Filled for race kinds.

  /// "write-write-race: s_A line 84 vs 84: ..." rendering.
  std::string render() const;
};

/// True when \p F carries a witness that replays to a true same-address,
/// different-thread access under its recorded forms.
bool replayWitness(const RaceFinding &F);

//===----------------------------------------------------------------------===//
// Prover entry points
//===----------------------------------------------------------------------===//

struct RaceProverOptions {
  /// Threads per warp for the intra-warp lockstep relaxation.
  unsigned WarpSize = 32;
  /// Abort bounded enumeration past this many evaluated assignments per
  /// access pair (an UnprovenAccess warning is reported instead).
  uint64_t EnumerationCap = 1u << 20;
};

/// Everything one prover run computed.
struct RaceReport {
  std::vector<RaceFinding> Findings;
  UniformityInfo Uniform;

  // Solver statistics (rendered by explainRaces, asserted by tests).
  unsigned Intervals = 0;          ///< Barrier intervals analyzed.
  unsigned AccessesChecked = 0;    ///< SMEM/GMEM access instances.
  unsigned PairsChecked = 0;       ///< Same-array same-interval pairs.
  unsigned ProvedByInterval = 0;   ///< Disjoint address ranges.
  unsigned ProvedByGcd = 0;        ///< GCD divisibility refutation.
  unsigned ProvedByInjectivity = 0;///< Mixed-radix packing argument.
  unsigned ProvedByEnumeration = 0;///< Exhaustive bounded enumeration.
  unsigned LockstepSuppressed = 0; ///< W/R pairs ordered by warp lockstep.

  /// True when no finding of the given kind exists.
  bool raceFree() const {
    for (const RaceFinding &F : Findings)
      if (F.Kind == RaceFindingKind::WriteWriteRace ||
          F.Kind == RaceFindingKind::WriteReadRace)
        return false;
    return true;
  }
};

/// Runs all three analyses over \p M (parsed from a kernel \p Plan
/// emitted) using \p Flow's location table.
RaceReport proveRaces(const core::KernelPlan &Plan, const KernelModel &M,
                      const DataflowInfo &Flow,
                      const RaceProverOptions &Opts = RaceProverOptions());

/// Human-oriented dump for cogent_cli --explain-races: the uniformity
/// table, barrier control classes, interval/access census, solver
/// statistics and any findings with witnesses.
std::string explainRaces(const core::KernelPlan &Plan,
                         const std::string &KernelSource,
                         const RaceProverOptions &Opts = RaceProverOptions());

} // namespace analysis
} // namespace cogent

#endif // COGENT_ANALYSIS_KERNELRACEPROVER_H
