//===- analysis/SourceMutator.cpp -----------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/SourceMutator.h"

#include <cassert>
#include <cctype>
#include <cstdint>

using namespace cogent;
using namespace cogent::analysis;

const char *cogent::analysis::mutationKindName(MutationKind Kind) {
  switch (Kind) {
  case MutationKind::DropFirstBarrier:
    return "drop-first-barrier";
  case MutationKind::DropSecondBarrier:
    return "drop-second-barrier";
  case MutationKind::DivergentBarrier:
    return "divergent-barrier";
  case MutationKind::DivergentBarrierThread:
    return "divergent-barrier-thread";
  case MutationKind::SkewSmemReadStride:
    return "skew-smem-read-stride";
  case MutationKind::SkewSmemWriteStride:
    return "skew-smem-write-stride";
  case MutationKind::DropSmemTerm:
    return "drop-smem-term";
  case MutationKind::SkewGmemStride:
    return "skew-gmem-stride";
  case MutationKind::SwapGmemStrideVar:
    return "swap-gmem-stride-var";
  case MutationKind::WrongBaseVar:
    return "wrong-base-var";
  case MutationKind::SkewStoreStride:
    return "skew-store-stride";
  case MutationKind::DropLoadGuard:
    return "drop-load-guard";
  case MutationKind::WidenDecodeModulus:
    return "widen-decode-modulus";
  case MutationKind::DropStoreGuard:
    return "drop-store-guard";
  case MutationKind::ShrinkSmemDecl:
    return "shrink-smem-decl";
  case MutationKind::SkewDefineRegX:
    return "skew-define-regx";
  case MutationKind::SkewDefineNthreads:
    return "skew-define-nthreads";
  case MutationKind::ShrinkRegTile:
    return "shrink-reg-tile";
  }
  assert(false && "unknown mutation kind");
  return "?";
}

namespace {

constexpr const char *CudaBarrier = "__syncthreads();";
constexpr const char *ClBarrier = "barrier(CLK_LOCAL_MEM_FENCE);";

/// The barrier spelling this source uses, or nullptr when it has none.
const char *barrierToken(const std::string &S) {
  if (S.find(CudaBarrier) != std::string::npos)
    return CudaBarrier;
  if (S.find(ClBarrier) != std::string::npos)
    return ClBarrier;
  return nullptr;
}

size_t lineStartAt(const std::string &S, size_t Pos) {
  size_t NL = S.rfind('\n', Pos);
  return NL == std::string::npos ? 0 : NL + 1;
}

/// One past the line's text, i.e. the index of its '\n' (or S.size()).
size_t lineEndAt(const std::string &S, size_t Pos) {
  size_t NL = S.find('\n', Pos);
  return NL == std::string::npos ? S.size() : NL;
}

/// Erases the whole line containing \p Pos, including its newline.
std::string eraseLineAt(const std::string &S, size_t Pos) {
  size_t Start = lineStartAt(S, Pos);
  size_t End = lineEndAt(S, Pos);
  if (End < S.size())
    ++End; // take the newline too
  return S.substr(0, Start) + S.substr(End);
}

/// Replaces the line containing \p Pos (indent preserved) with \p Text.
std::string replaceLineAt(const std::string &S, size_t Pos,
                          const std::string &Text) {
  size_t Start = lineStartAt(S, Pos);
  size_t End = lineEndAt(S, Pos);
  size_t Indent = Start;
  while (Indent < End && S[Indent] == ' ')
    ++Indent;
  return S.substr(0, Start) + S.substr(Start, Indent - Start) + Text +
         S.substr(End);
}

/// Parses the decimal literal at \p Pos; returns one past it in \p End.
int64_t readNumber(const std::string &S, size_t Pos, size_t &End) {
  int64_t Value = 0;
  End = Pos;
  while (End < S.size() && std::isdigit(static_cast<unsigned char>(S[End]))) {
    Value = Value * 10 + (S[End] - '0');
    ++End;
  }
  return Value;
}

/// Finds the first "<Lead><digits>" at or after \p From (not past \p Limit)
/// and replaces the digits with Adjust(digits). Returns true on a change.
bool adjustNumberAfter(std::string &S, size_t From, size_t Limit,
                       const std::string &Lead, int64_t (*Adjust)(int64_t)) {
  size_t Pos = From;
  while ((Pos = S.find(Lead, Pos)) != std::string::npos && Pos < Limit) {
    size_t NumPos = Pos + Lead.size();
    size_t End;
    int64_t Value = readNumber(S, NumPos, End);
    if (End > NumPos) {
      int64_t Mutated = Adjust(Value);
      if (Mutated == Value)
        return false; // adjustment is a semantic no-op here
      S.replace(NumPos, End - NumPos, std::to_string(Mutated));
      return true;
    }
    Pos = NumPos;
  }
  return false;
}

/// First line whose text contains \p Token; npos when absent.
size_t findFirst(const std::string &S, const std::string &Token) {
  return S.find(Token);
}

/// The first SMEM staging store: a line assigning into s_A with the
/// `= inb ?` guard. Returns npos when absent (e.g. truncated source).
size_t findStagingStore(const std::string &S) {
  size_t Pos = 0;
  while ((Pos = S.find("s_A[", Pos)) != std::string::npos) {
    size_t End = lineEndAt(S, Pos);
    size_t Guard = S.find("= inb ?", Pos);
    if (Guard != std::string::npos && Guard < End)
      return Pos;
    Pos = End;
  }
  return std::string::npos;
}

} // namespace

std::string cogent::analysis::applyMutation(const std::string &KernelSource,
                                            MutationKind Kind) {
  std::string S = KernelSource;
  const char *Bar = barrierToken(S);

  switch (Kind) {
  case MutationKind::DropFirstBarrier: {
    if (!Bar)
      return S;
    return eraseLineAt(S, S.find(Bar));
  }
  case MutationKind::DropSecondBarrier: {
    if (!Bar)
      return S;
    return eraseLineAt(S, S.rfind(Bar));
  }
  case MutationKind::DivergentBarrier: {
    if (!Bar)
      return S;
    return replaceLineAt(S, S.find(Bar),
                         std::string("if (tid == 0) { ") + Bar + " }");
  }
  case MutationKind::DivergentBarrierThread: {
    if (!Bar)
      return S;
    return replaceLineAt(S, S.rfind(Bar),
                         std::string("if (threadIdx.x == 0) { ") + Bar +
                             " }");
  }
  case MutationKind::SkewSmemReadStride: {
    size_t Pos = findFirst(S, "r_A[rx] = ");
    if (Pos == std::string::npos)
      return S;
    adjustNumberAfter(S, Pos, lineEndAt(S, Pos), " * ",
                      [](int64_t V) { return V + 1; });
    return S;
  }
  case MutationKind::SkewSmemWriteStride: {
    size_t Pos = findStagingStore(S);
    if (Pos == std::string::npos)
      return S;
    // Only touch the index portion, not the `inb ? g_A[...]` value side.
    size_t Close = S.find("] = ", Pos);
    if (Close == std::string::npos)
      return S;
    adjustNumberAfter(S, Pos, Close, " * ",
                      [](int64_t V) { return V + 1; });
    return S;
  }
  case MutationKind::DropSmemTerm: {
    size_t Pos = findStagingStore(S);
    if (Pos == std::string::npos)
      return S;
    size_t Close = S.find("] = ", Pos);
    if (Close == std::string::npos)
      return S;
    // Drop the last `+ i_<x> * <stride>` term of the staging index.
    size_t Term = S.rfind(" + i_", Close);
    if (Term == std::string::npos || Term < Pos)
      return S; // rank-1 slice: single term, nothing to drop
    S.erase(Term, Close - Term);
    return S;
  }
  case MutationKind::SkewGmemStride: {
    size_t Pos = findFirst(S, "? g_A[");
    if (Pos == std::string::npos)
      return S;
    size_t Var = S.find("strA_", Pos);
    if (Var == std::string::npos || Var + 5 >= S.size())
      return S;
    std::string Name = S.substr(Var, 6); // "strA_" + index letter
    S.replace(Var, 6, "(2 * " + Name + ")");
    return S;
  }
  case MutationKind::SwapGmemStrideVar: {
    size_t Pos = findFirst(S, "? g_A[");
    if (Pos == std::string::npos)
      return S;
    size_t End = lineEndAt(S, Pos);
    size_t First = S.find("strA_", Pos);
    if (First == std::string::npos || First >= End)
      return S;
    size_t Second = S.find("strA_", First + 6);
    if (Second == std::string::npos || Second >= End)
      return S; // rank-1 operand: nothing to swap
    std::swap(S[First + 5], S[Second + 5]);
    return S;
  }
  case MutationKind::WrongBaseVar: {
    size_t Pos = findFirst(S, "= kbase_");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos + 2, 6, "base_"); // kbase_x -> base_x
    return S;
  }
  case MutationKind::SkewStoreStride: {
    size_t Pos = findFirst(S, "g_C[gc_");
    if (Pos == std::string::npos)
      return S;
    size_t Var = S.find("strC_", Pos);
    if (Var == std::string::npos || Var + 5 >= S.size())
      return S;
    std::string Name = S.substr(Var, 6);
    S.replace(Var, 6, "(2 * " + Name + ")");
    return S;
  }
  case MutationKind::DropLoadGuard: {
    size_t Pos = findFirst(S, "const bool inb =");
    if (Pos == std::string::npos)
      return S;
    size_t ValueStart = Pos + 16; // after "const bool inb ="
    size_t End = lineEndAt(S, Pos);
    size_t Conj = S.find(" &&", ValueStart);
    if (Conj != std::string::npos && Conj < End) {
      S.erase(ValueStart, Conj + 3 - ValueStart); // drop first conjunct
      return S;
    }
    S.replace(ValueStart, End - ValueStart, " true;"); // single conjunct
    return S;
  }
  case MutationKind::WidenDecodeModulus: {
    adjustNumberAfter(S, 0, S.size(), "lr % ",
                      [](int64_t V) { return V + 1; });
    return S;
  }
  case MutationKind::DropStoreGuard: {
    size_t Pos = findFirst(S, "if (gc_");
    if (Pos == std::string::npos)
      return S;
    return replaceLineAt(S, Pos, "if (true)");
  }
  case MutationKind::ShrinkSmemDecl: {
    size_t Pos = findFirst(S, " s_A[");
    if (Pos == std::string::npos)
      return S;
    adjustNumberAfter(S, Pos, lineEndAt(S, Pos), "s_A[",
                      [](int64_t V) { return V > 1 ? V - 1 : V; });
    return S;
  }
  case MutationKind::SkewDefineRegX: {
    adjustNumberAfter(S, 0, S.size(), "#define REGX ",
                      [](int64_t V) { return V + 1; });
    return S;
  }
  case MutationKind::SkewDefineNthreads: {
    adjustNumberAfter(S, 0, S.size(), "#define NTHREADS ",
                      [](int64_t V) { return V * 2; });
    return S;
  }
  case MutationKind::ShrinkRegTile: {
    size_t Pos = findFirst(S, "r_C[REGX * REGY];");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos, 17, "r_C[REGX];");
    return S;
  }
  }
  assert(false && "unknown mutation kind");
  return S;
}
