//===- analysis/SourceMutator.cpp -----------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/SourceMutator.h"

#include <cassert>
#include <cctype>
#include <cstdint>

using namespace cogent;
using namespace cogent::analysis;

const char *cogent::analysis::mutationKindName(MutationKind Kind) {
  switch (Kind) {
  case MutationKind::DropFirstBarrier:
    return "drop-first-barrier";
  case MutationKind::DropSecondBarrier:
    return "drop-second-barrier";
  case MutationKind::DivergentBarrier:
    return "divergent-barrier";
  case MutationKind::DivergentBarrierThread:
    return "divergent-barrier-thread";
  case MutationKind::SkewSmemReadStride:
    return "skew-smem-read-stride";
  case MutationKind::SkewSmemWriteStride:
    return "skew-smem-write-stride";
  case MutationKind::DropSmemTerm:
    return "drop-smem-term";
  case MutationKind::SkewGmemStride:
    return "skew-gmem-stride";
  case MutationKind::SwapGmemStrideVar:
    return "swap-gmem-stride-var";
  case MutationKind::WrongBaseVar:
    return "wrong-base-var";
  case MutationKind::SkewStoreStride:
    return "skew-store-stride";
  case MutationKind::DropLoadGuard:
    return "drop-load-guard";
  case MutationKind::WidenDecodeModulus:
    return "widen-decode-modulus";
  case MutationKind::DropStoreGuard:
    return "drop-store-guard";
  case MutationKind::ShrinkSmemDecl:
    return "shrink-smem-decl";
  case MutationKind::SkewDefineRegX:
    return "skew-define-regx";
  case MutationKind::SkewDefineNthreads:
    return "skew-define-nthreads";
  case MutationKind::ShrinkRegTile:
    return "shrink-reg-tile";
  case MutationKind::DuplicateFirstBarrier:
    return "duplicate-first-barrier";
  case MutationKind::DuplicateSecondBarrier:
    return "duplicate-second-barrier";
  case MutationKind::InjectStoreBarrier:
    return "inject-store-barrier";
  case MutationKind::InjectUnusedDecl:
    return "inject-unused-decl";
  case MutationKind::InjectDeadStore:
    return "inject-dead-store";
  case MutationKind::ShadowDecodeResult:
    return "shadow-decode-result";
  case MutationKind::InflateRegTileC:
    return "inflate-reg-tile-c";
  case MutationKind::InflateRegTileA:
    return "inflate-reg-tile-a";
  case MutationKind::InflateRegTileB:
    return "inflate-reg-tile-b";
  case MutationKind::RetargetComputeReadA:
    return "retarget-compute-read-a";
  case MutationKind::RetargetComputeReadB:
    return "retarget-compute-read-b";
  case MutationKind::RetargetStagingStore:
    return "retarget-staging-store";
  case MutationKind::TaintBlockBase:
    return "taint-block-base";
  case MutationKind::TaintStepBase:
    return "taint-step-base";
  case MutationKind::TaintStepCount:
    return "taint-step-count";
  case MutationKind::UniformizeSliceInit:
    return "uniformize-slice-init";
  case MutationKind::CollapseSmemWriteStride:
    return "collapse-smem-write-stride";
  case MutationKind::DropStoreCoordinate:
    return "drop-store-coordinate";
  case MutationKind::GuardBarrierOddTid:
    return "guard-barrier-odd-tid";
  case MutationKind::GuardBarrierHalfTile:
    return "guard-barrier-half-tile";
  case MutationKind::DivergeStepLoop:
    return "diverge-step-loop";
  }
  assert(false && "unknown mutation kind");
  return "?";
}

std::optional<MutationKind>
cogent::analysis::mutationKindFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumMutationKinds; ++I)
    if (Name == mutationKindName(static_cast<MutationKind>(I)))
      return static_cast<MutationKind>(I);
  return std::nullopt;
}

namespace {

constexpr const char *CudaBarrier = "__syncthreads();";
constexpr const char *ClBarrier = "barrier(CLK_LOCAL_MEM_FENCE);";

/// The barrier spelling this source uses, or nullptr when it has none.
const char *barrierToken(const std::string &S) {
  if (S.find(CudaBarrier) != std::string::npos)
    return CudaBarrier;
  if (S.find(ClBarrier) != std::string::npos)
    return ClBarrier;
  return nullptr;
}

size_t lineStartAt(const std::string &S, size_t Pos) {
  size_t NL = S.rfind('\n', Pos);
  return NL == std::string::npos ? 0 : NL + 1;
}

/// One past the line's text, i.e. the index of its '\n' (or S.size()).
size_t lineEndAt(const std::string &S, size_t Pos) {
  size_t NL = S.find('\n', Pos);
  return NL == std::string::npos ? S.size() : NL;
}

/// Erases the whole line containing \p Pos, including its newline.
std::string eraseLineAt(const std::string &S, size_t Pos) {
  size_t Start = lineStartAt(S, Pos);
  size_t End = lineEndAt(S, Pos);
  if (End < S.size())
    ++End; // take the newline too
  return S.substr(0, Start) + S.substr(End);
}

/// Replaces the line containing \p Pos (indent preserved) with \p Text.
std::string replaceLineAt(const std::string &S, size_t Pos,
                          const std::string &Text) {
  size_t Start = lineStartAt(S, Pos);
  size_t End = lineEndAt(S, Pos);
  size_t Indent = Start;
  while (Indent < End && S[Indent] == ' ')
    ++Indent;
  return S.substr(0, Start) + S.substr(Start, Indent - Start) + Text +
         S.substr(End);
}

/// Parses the decimal literal at \p Pos; returns one past it in \p End.
int64_t readNumber(const std::string &S, size_t Pos, size_t &End) {
  int64_t Value = 0;
  End = Pos;
  while (End < S.size() && std::isdigit(static_cast<unsigned char>(S[End]))) {
    Value = Value * 10 + (S[End] - '0');
    ++End;
  }
  return Value;
}

/// Finds the first "<Lead><digits>" at or after \p From (not past \p Limit)
/// and replaces the digits with Adjust(digits). Returns true on a change.
bool adjustNumberAfter(std::string &S, size_t From, size_t Limit,
                       const std::string &Lead, int64_t (*Adjust)(int64_t)) {
  size_t Pos = From;
  while ((Pos = S.find(Lead, Pos)) != std::string::npos && Pos < Limit) {
    size_t NumPos = Pos + Lead.size();
    size_t End;
    int64_t Value = readNumber(S, NumPos, End);
    if (End > NumPos) {
      int64_t Mutated = Adjust(Value);
      if (Mutated == Value)
        return false; // adjustment is a semantic no-op here
      S.replace(NumPos, End - NumPos, std::to_string(Mutated));
      return true;
    }
    Pos = NumPos;
  }
  return false;
}

/// First line whose text contains \p Token; npos when absent.
size_t findFirst(const std::string &S, const std::string &Token) {
  return S.find(Token);
}

/// The first SMEM staging store into \p Array: a line assigning into it
/// with the `= inb ?` guard. Returns npos when absent (e.g. truncated
/// source).
size_t findStagingStoreOf(const std::string &S, const std::string &Array) {
  size_t Pos = 0;
  std::string Token = Array + "[";
  while ((Pos = S.find(Token, Pos)) != std::string::npos) {
    size_t End = lineEndAt(S, Pos);
    size_t Guard = S.find("= inb ?", Pos);
    if (Guard != std::string::npos && Guard < End)
      return Pos;
    Pos = End;
  }
  return std::string::npos;
}

size_t findStagingStore(const std::string &S) {
  return findStagingStoreOf(S, "s_A");
}

/// Inserts \p Text as a new line directly after the line containing
/// \p Pos, copying that line's indentation.
std::string insertLineAfter(const std::string &S, size_t Pos,
                            const std::string &Text) {
  size_t Start = lineStartAt(S, Pos);
  size_t End = lineEndAt(S, Pos);
  size_t Indent = Start;
  while (Indent < End && S[Indent] == ' ')
    ++Indent;
  std::string Line = "\n" + S.substr(Start, Indent - Start) + Text;
  return S.substr(0, End) + Line + S.substr(End);
}

/// Inserts \p Text as a new line directly before the line containing
/// \p Pos, copying that line's indentation.
std::string insertLineBefore(const std::string &S, size_t Pos,
                             const std::string &Text) {
  size_t Start = lineStartAt(S, Pos);
  size_t End = lineEndAt(S, Pos);
  size_t Indent = Start;
  while (Indent < End && S[Indent] == ' ')
    ++Indent;
  std::string Line = S.substr(Start, Indent - Start) + Text + "\n";
  return S.substr(0, Start) + Line + S.substr(Start);
}

/// Flips the staging-buffer letter (A <-> B) right after \p Pos, which
/// points at the 's' of "s_A"/"s_B". Returns false when the text there
/// is not a staging-buffer name.
bool flipBufferAt(std::string &S, size_t Pos) {
  if (Pos + 2 >= S.size() || S[Pos] != 's' || S[Pos + 1] != '_')
    return false;
  if (S[Pos + 2] == 'A')
    S[Pos + 2] = 'B';
  else if (S[Pos + 2] == 'B')
    S[Pos + 2] = 'A';
  else
    return false;
  return true;
}

} // namespace

std::string cogent::analysis::applyMutation(const std::string &KernelSource,
                                            MutationKind Kind) {
  std::string S = KernelSource;
  const char *Bar = barrierToken(S);

  switch (Kind) {
  case MutationKind::DropFirstBarrier: {
    if (!Bar)
      return S;
    return eraseLineAt(S, S.find(Bar));
  }
  case MutationKind::DropSecondBarrier: {
    if (!Bar)
      return S;
    return eraseLineAt(S, S.rfind(Bar));
  }
  case MutationKind::DivergentBarrier: {
    if (!Bar)
      return S;
    return replaceLineAt(S, S.find(Bar),
                         std::string("if (tid == 0) { ") + Bar + " }");
  }
  case MutationKind::DivergentBarrierThread: {
    if (!Bar)
      return S;
    return replaceLineAt(S, S.rfind(Bar),
                         std::string("if (threadIdx.x == 0) { ") + Bar +
                             " }");
  }
  case MutationKind::SkewSmemReadStride: {
    size_t Pos = findFirst(S, "r_A[rx] = ");
    if (Pos == std::string::npos)
      return S;
    adjustNumberAfter(S, Pos, lineEndAt(S, Pos), " * ",
                      [](int64_t V) { return V + 1; });
    return S;
  }
  case MutationKind::SkewSmemWriteStride: {
    size_t Pos = findStagingStore(S);
    if (Pos == std::string::npos)
      return S;
    // Only touch the index portion, not the `inb ? g_A[...]` value side.
    size_t Close = S.find("] = ", Pos);
    if (Close == std::string::npos)
      return S;
    adjustNumberAfter(S, Pos, Close, " * ",
                      [](int64_t V) { return V + 1; });
    return S;
  }
  case MutationKind::DropSmemTerm: {
    size_t Pos = findStagingStore(S);
    if (Pos == std::string::npos)
      return S;
    size_t Close = S.find("] = ", Pos);
    if (Close == std::string::npos)
      return S;
    // Drop the last `+ i_<x> * <stride>` term of the staging index.
    size_t Term = S.rfind(" + i_", Close);
    if (Term == std::string::npos || Term < Pos)
      return S; // rank-1 slice: single term, nothing to drop
    S.erase(Term, Close - Term);
    return S;
  }
  case MutationKind::SkewGmemStride: {
    size_t Pos = findFirst(S, "? g_A[");
    if (Pos == std::string::npos)
      return S;
    size_t Var = S.find("strA_", Pos);
    if (Var == std::string::npos || Var + 5 >= S.size())
      return S;
    std::string Name = S.substr(Var, 6); // "strA_" + index letter
    S.replace(Var, 6, "(2 * " + Name + ")");
    return S;
  }
  case MutationKind::SwapGmemStrideVar: {
    size_t Pos = findFirst(S, "? g_A[");
    if (Pos == std::string::npos)
      return S;
    size_t End = lineEndAt(S, Pos);
    size_t First = S.find("strA_", Pos);
    if (First == std::string::npos || First >= End)
      return S;
    size_t Second = S.find("strA_", First + 6);
    if (Second == std::string::npos || Second >= End)
      return S; // rank-1 operand: nothing to swap
    std::swap(S[First + 5], S[Second + 5]);
    return S;
  }
  case MutationKind::WrongBaseVar: {
    size_t Pos = findFirst(S, "= kbase_");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos + 2, 6, "base_"); // kbase_x -> base_x
    return S;
  }
  case MutationKind::SkewStoreStride: {
    size_t Pos = findFirst(S, "g_C[gc_");
    if (Pos == std::string::npos)
      return S;
    size_t Var = S.find("strC_", Pos);
    if (Var == std::string::npos || Var + 5 >= S.size())
      return S;
    std::string Name = S.substr(Var, 6);
    S.replace(Var, 6, "(2 * " + Name + ")");
    return S;
  }
  case MutationKind::DropLoadGuard: {
    size_t Pos = findFirst(S, "const bool inb =");
    if (Pos == std::string::npos)
      return S;
    size_t ValueStart = Pos + 16; // after "const bool inb ="
    size_t End = lineEndAt(S, Pos);
    size_t Conj = S.find(" &&", ValueStart);
    if (Conj != std::string::npos && Conj < End) {
      S.erase(ValueStart, Conj + 3 - ValueStart); // drop first conjunct
      return S;
    }
    S.replace(ValueStart, End - ValueStart, " true;"); // single conjunct
    return S;
  }
  case MutationKind::WidenDecodeModulus: {
    adjustNumberAfter(S, 0, S.size(), "lr % ",
                      [](int64_t V) { return V + 1; });
    return S;
  }
  case MutationKind::DropStoreGuard: {
    size_t Pos = findFirst(S, "if (gc_");
    if (Pos == std::string::npos)
      return S;
    return replaceLineAt(S, Pos, "if (true)");
  }
  case MutationKind::ShrinkSmemDecl: {
    size_t Pos = findFirst(S, " s_A[");
    if (Pos == std::string::npos)
      return S;
    adjustNumberAfter(S, Pos, lineEndAt(S, Pos), "s_A[",
                      [](int64_t V) { return V > 1 ? V - 1 : V; });
    return S;
  }
  case MutationKind::SkewDefineRegX: {
    adjustNumberAfter(S, 0, S.size(), "#define REGX ",
                      [](int64_t V) { return V + 1; });
    return S;
  }
  case MutationKind::SkewDefineNthreads: {
    adjustNumberAfter(S, 0, S.size(), "#define NTHREADS ",
                      [](int64_t V) { return V * 2; });
    return S;
  }
  case MutationKind::ShrinkRegTile: {
    size_t Pos = findFirst(S, "r_C[REGX * REGY];");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos, 17, "r_C[REGX];");
    return S;
  }
  case MutationKind::DuplicateFirstBarrier: {
    if (!Bar)
      return S;
    return insertLineAfter(S, S.find(Bar), Bar);
  }
  case MutationKind::DuplicateSecondBarrier: {
    if (!Bar)
      return S;
    return insertLineAfter(S, S.rfind(Bar), Bar);
  }
  case MutationKind::InjectStoreBarrier: {
    size_t Pos = findFirst(S, "// (4) store");
    if (Pos == std::string::npos || !Bar)
      return S;
    return insertLineBefore(S, Pos, Bar);
  }
  case MutationKind::InjectUnusedDecl: {
    size_t Pos = findFirst(S, "int tid = ");
    if (Pos == std::string::npos)
      return S;
    return insertLineAfter(S, Pos, "int ds_unused = tid;");
  }
  case MutationKind::InjectDeadStore: {
    size_t Pos = findFirst(S, "int tid = ");
    if (Pos == std::string::npos)
      return S;
    // The declaration is read once, but the reassigned value never is.
    return insertLineAfter(S, Pos,
                           "int ds_over = tid; ds_over = ds_over + 1;");
  }
  case MutationKind::ShadowDecodeResult: {
    size_t Pos = findFirst(S, "const int i_");
    if (Pos == std::string::npos)
      return S;
    size_t NameStart = Pos + 10; // after "const int "
    size_t NameEnd = S.find(' ', NameStart);
    if (NameEnd == std::string::npos)
      return S;
    std::string Name = S.substr(NameStart, NameEnd - NameStart);
    return insertLineAfter(S, Pos, Name + " = 0;");
  }
  case MutationKind::InflateRegTileC: {
    size_t Pos = findFirst(S, "r_C[REGX * REGY];");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos, 17, "r_C[REGX * REGY * 8];");
    return S;
  }
  case MutationKind::InflateRegTileA: {
    size_t Pos = findFirst(S, "r_A[REGX];");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos, 10, "r_A[REGX * 64];");
    return S;
  }
  case MutationKind::InflateRegTileB: {
    size_t Pos = findFirst(S, "r_B[REGY];");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos, 10, "r_B[REGY * 64];");
    return S;
  }
  case MutationKind::RetargetComputeReadA: {
    size_t Pos = findFirst(S, "r_A[rx] = s_");
    if (Pos == std::string::npos)
      return S;
    flipBufferAt(S, Pos + 10); // the "s_X" after "r_A[rx] = "
    return S;
  }
  case MutationKind::RetargetComputeReadB: {
    size_t Pos = findFirst(S, "r_B[ry] = s_");
    if (Pos == std::string::npos)
      return S;
    flipBufferAt(S, Pos + 10);
    return S;
  }
  case MutationKind::RetargetStagingStore: {
    size_t Pos = findStagingStoreOf(S, "s_B");
    if (Pos == std::string::npos)
      return S;
    flipBufferAt(S, Pos);
    return S;
  }
  case MutationKind::TaintBlockBase: {
    // `base_a = (blk % nt_a) * 16;` -> `... * 16 + (tid % 2);`
    size_t Pos = findFirst(S, "= (blk % nt_");
    if (Pos == std::string::npos)
      return S;
    size_t Semi = S.find(';', Pos);
    if (Semi == std::string::npos || Semi > lineEndAt(S, Pos))
      return S;
    S.insert(Semi, " + (tid % 2)");
    return S;
  }
  case MutationKind::TaintStepBase: {
    size_t Pos = findFirst(S, "= (sq % ns_");
    if (Pos == std::string::npos)
      return S;
    size_t Semi = S.find(';', Pos);
    if (Semi == std::string::npos || Semi > lineEndAt(S, Pos))
      return S;
    S.insert(Semi, " + (tid % 2)");
    return S;
  }
  case MutationKind::TaintStepCount: {
    size_t Pos = findFirst(S, "numSteps = 1;");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos, 13, "numSteps = 1 + (tid % 2);");
    return S;
  }
  case MutationKind::UniformizeSliceInit: {
    size_t Pos = findFirst(S, "for (int l = tid;");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos, 17, "for (int l = 0;");
    return S;
  }
  case MutationKind::CollapseSmemWriteStride: {
    size_t Pos = findStagingStore(S);
    if (Pos == std::string::npos)
      return S;
    size_t Close = S.find("] = ", Pos);
    if (Close == std::string::npos)
      return S;
    // Flatten the *second* stride so two decode coordinates alias.
    size_t First = S.find(" * ", Pos);
    if (First == std::string::npos || First >= Close)
      return S;
    adjustNumberAfter(S, First + 3, Close, " * ",
                      [](int64_t) -> int64_t { return 1; });
    return S;
  }
  case MutationKind::DropStoreCoordinate: {
    // `gc_a = base_a + t_a;` -> `gc_a = base_a;` (two threads now share
    // a store address whenever their other coordinates agree).
    size_t Pos = 0;
    while ((Pos = S.find(" gc_", Pos)) != std::string::npos) {
      size_t End = lineEndAt(S, Pos);
      size_t Term = S.find(" + t_", Pos);
      if (Term != std::string::npos && Term < End) {
        S.erase(Term, 6); // " + t_x"
        return S;
      }
      Pos = End;
    }
    return S;
  }
  case MutationKind::GuardBarrierOddTid: {
    if (!Bar)
      return S;
    return replaceLineAt(S, S.find(Bar),
                         std::string("if (tid % 2 == 0) { ") + Bar + " }");
  }
  case MutationKind::GuardBarrierHalfTile: {
    if (!Bar)
      return S;
    return replaceLineAt(S, S.rfind(Bar),
                         std::string("if (t_a < 8) { ") + Bar + " }");
  }
  case MutationKind::DivergeStepLoop: {
    size_t Pos = findFirst(S, "step < numSteps");
    if (Pos == std::string::npos)
      return S;
    S.replace(Pos, 15, "step < numSteps + tid % 2");
    return S;
  }
  }
  assert(false && "unknown mutation kind");
  return S;
}
