//===- analysis/SourceMutator.h - Targeted kernel-source corruptions ------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Targeted, semantics-breaking corruptions of emitted kernel source — the
/// mutation corpus that proves each KernelLint pass actually fires. Every
/// MutationKind models one realistic codegen regression (a dropped
/// barrier, a skewed staging stride, a widened decode modulus, ...), is a
/// pure text transform, and leaves the source unchanged when its pattern
/// is absent so it can be applied blindly (the codegen-mutate chaos site
/// draws kinds at random).
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_ANALYSIS_SOURCEMUTATOR_H
#define COGENT_ANALYSIS_SOURCEMUTATOR_H

#include <optional>
#include <string>

namespace cogent {
namespace analysis {

/// The targeted corruptions. Grouped by the lint pass expected to catch
/// each (see tests/test_kernel_lint.cpp for the kill matrix).
enum class MutationKind : unsigned {
  // BarrierPlacement kills.
  DropFirstBarrier,       ///< Delete the first barrier statement.
  DropSecondBarrier,      ///< Delete the last barrier statement.
  DivergentBarrier,       ///< Wrap the first barrier in `if (tid == 0)`.
  DivergentBarrierThread, ///< Wrap the last barrier in
                          ///< `if (threadIdx.x == 0)`.
  // BankConflict kills.
  SkewSmemReadStride,  ///< +1 the first SMEM compute-read stride literal.
  SkewSmemWriteStride, ///< +1 the first SMEM staging-write stride literal.
  DropSmemTerm,        ///< Delete the last staging-index term.
  // Coalescing kills.
  SkewGmemStride,    ///< Double the first global-load stride variable.
  SwapGmemStrideVar, ///< Swap the first two global-load stride variables.
  WrongBaseVar,      ///< Use the block base where the step base belongs.
  SkewStoreStride,   ///< Double the first global-store stride variable.
  // BoundsCheck kills.
  DropLoadGuard,      ///< Remove one conjunct from (or blank) `inb`.
  WidenDecodeModulus, ///< +1 the first slice decode modulus.
  DropStoreGuard,     ///< Replace the store guard with `if (true)`.
  // ResourceDecl kills.
  ShrinkSmemDecl,     ///< Declare one fewer element in s_A.
  SkewDefineRegX,     ///< +1 the REGX define.
  SkewDefineNthreads, ///< Double the NTHREADS define.
  ShrinkRegTile,      ///< Declare r_C[REGX] instead of r_C[REGX * REGY].
  // RedundantBarrier kills.
  DuplicateFirstBarrier,  ///< Duplicate the first barrier statement.
  DuplicateSecondBarrier, ///< Duplicate the last barrier statement.
  InjectStoreBarrier,     ///< Insert a barrier before the store phase.
  // DeadStore kills.
  InjectUnusedDecl,   ///< Declare a scalar that is never read.
  InjectDeadStore,    ///< Assign a scalar whose value is never read.
  ShadowDecodeResult, ///< Overwrite a decode result before its first use.
  // RegisterPressure kills.
  InflateRegTileC, ///< Declare r_C 8x larger than the plan's tile.
  InflateRegTileA, ///< Declare r_A 64x larger than the plan's tile.
  InflateRegTileB, ///< Declare r_B 64x larger than the plan's tile.
  // SmemLifetime kills.
  RetargetComputeReadA, ///< Read r_A's staging from the other buffer.
  RetargetComputeReadB, ///< Read r_B's staging from the other buffer.
  RetargetStagingStore, ///< Store s_B's slice into s_A instead.
  // Uniformity kills (KernelRaceProver taint analysis).
  TaintBlockBase,  ///< Mix `tid` into the first block-tile base.
  TaintStepBase,   ///< Mix `tid` into the first k-slice base.
  TaintStepCount,  ///< Make the step-loop trip count thread-dependent.
  // RaceFreedom kills (symbolic two-thread solver).
  UniformizeSliceInit,    ///< Start the staging loop at 0 for every thread.
  CollapseSmemWriteStride,///< Flatten one staging-store stride to 1.
  DropStoreCoordinate,    ///< Drop a `+ t_x` term from a store coordinate.
  // BarrierUniformity kills (divergence prover).
  GuardBarrierOddTid,   ///< First barrier only for even tids.
  GuardBarrierHalfTile, ///< Last barrier only for half the thread tile.
  DivergeStepLoop,      ///< Thread-dependent step-loop bound (barrier in it).
};

/// Number of MutationKind enumerators.
inline constexpr unsigned NumMutationKinds = 39;

/// Stable identifier, e.g. "drop-first-barrier".
const char *mutationKindName(MutationKind Kind);

/// Inverse of mutationKindName; returns std::nullopt for unknown names.
/// The chaos codegen-mutate site draws kinds through this round-trip so
/// an enum/table drift surfaces as a refused mutation, not a wild cast.
std::optional<MutationKind> mutationKindFromName(const std::string &Name);

/// Applies \p Kind to \p KernelSource. Returns the mutated text, or the
/// input unchanged when the kind's pattern does not occur (never throws,
/// never unbalances braces).
std::string applyMutation(const std::string &KernelSource, MutationKind Kind);

} // namespace analysis
} // namespace cogent

#endif // COGENT_ANALYSIS_SOURCEMUTATOR_H
