//===- analysis/SourceMutator.h - Targeted kernel-source corruptions ------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Targeted, semantics-breaking corruptions of emitted kernel source — the
/// mutation corpus that proves each KernelLint pass actually fires. Every
/// MutationKind models one realistic codegen regression (a dropped
/// barrier, a skewed staging stride, a widened decode modulus, ...), is a
/// pure text transform, and leaves the source unchanged when its pattern
/// is absent so it can be applied blindly (the codegen-mutate chaos site
/// draws kinds at random).
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_ANALYSIS_SOURCEMUTATOR_H
#define COGENT_ANALYSIS_SOURCEMUTATOR_H

#include <string>

namespace cogent {
namespace analysis {

/// The targeted corruptions. Grouped by the lint pass expected to catch
/// each (see tests/test_kernel_lint.cpp for the kill matrix).
enum class MutationKind : unsigned {
  // BarrierPlacement kills.
  DropFirstBarrier,       ///< Delete the first barrier statement.
  DropSecondBarrier,      ///< Delete the last barrier statement.
  DivergentBarrier,       ///< Wrap the first barrier in `if (tid == 0)`.
  DivergentBarrierThread, ///< Wrap the last barrier in
                          ///< `if (threadIdx.x == 0)`.
  // BankConflict kills.
  SkewSmemReadStride,  ///< +1 the first SMEM compute-read stride literal.
  SkewSmemWriteStride, ///< +1 the first SMEM staging-write stride literal.
  DropSmemTerm,        ///< Delete the last staging-index term.
  // Coalescing kills.
  SkewGmemStride,    ///< Double the first global-load stride variable.
  SwapGmemStrideVar, ///< Swap the first two global-load stride variables.
  WrongBaseVar,      ///< Use the block base where the step base belongs.
  SkewStoreStride,   ///< Double the first global-store stride variable.
  // BoundsCheck kills.
  DropLoadGuard,      ///< Remove one conjunct from (or blank) `inb`.
  WidenDecodeModulus, ///< +1 the first slice decode modulus.
  DropStoreGuard,     ///< Replace the store guard with `if (true)`.
  // ResourceDecl kills.
  ShrinkSmemDecl,     ///< Declare one fewer element in s_A.
  SkewDefineRegX,     ///< +1 the REGX define.
  SkewDefineNthreads, ///< Double the NTHREADS define.
  ShrinkRegTile,      ///< Declare r_C[REGX] instead of r_C[REGX * REGY].
};

/// Number of MutationKind enumerators.
inline constexpr unsigned NumMutationKinds = 18;

/// Stable identifier, e.g. "drop-first-barrier".
const char *mutationKindName(MutationKind Kind);

/// Applies \p Kind to \p KernelSource. Returns the mutated text, or the
/// input unchanged when the kind's pattern does not occur (never throws,
/// never unbalances braces).
std::string applyMutation(const std::string &KernelSource, MutationKind Kind);

} // namespace analysis
} // namespace cogent

#endif // COGENT_ANALYSIS_SOURCEMUTATOR_H
