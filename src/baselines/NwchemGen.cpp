//===- baselines/NwchemGen.cpp -------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baselines/NwchemGen.h"

#include "core/CostModel.h"
#include "core/KernelPlan.h"
#include "support/Counters.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace cogent;
using namespace cogent::baselines;

COGENT_COUNTER(NumNwchemEstimates, "baselines.nwchem-estimates",
               "NWChem-style baseline cost estimates computed");
using cogent::core::IndexTile;
using cogent::core::KernelConfig;
using cogent::ir::Contraction;
using cogent::ir::Operand;

namespace {

/// NWChem hard-codes its mapping instead of searching; the paper attributes
/// COGENT's advantage to "superior mapping and tile size selection".
///
/// Greedy fill toward \p Target walking \p Pool in order (no rotation — the
/// fixed heuristic always takes the first choice).
std::vector<IndexTile> greedyFill(const Contraction &TC,
                                  const std::vector<char> &Pool,
                                  int64_t Target,
                                  std::vector<IndexTile> Seed,
                                  int64_t Product) {
  for (char Name : Pool) {
    if (Product >= Target)
      break;
    int64_t Remaining = Target / Product;
    if (Remaining <= 1)
      break;
    int64_t Tile = std::min<int64_t>(TC.extent(Name), Remaining);
    Seed.push_back({Name, Tile});
    Product *= Tile;
  }
  return Seed;
}

} // namespace

KernelConfig
cogent::baselines::nwchemConfig(const Contraction &TC,
                                const NwchemHeuristic &Heuristic) {
  char OutFvi = TC.fvi(Operand::C);
  Operand XInput = TC.inputContaining(OutFvi);
  Operand YInput = XInput == Operand::A ? Operand::B : Operand::A;

  auto externalPool = [&](Operand Input, char Exclude) {
    std::vector<char> Pool;
    for (char Name : TC.indices(Input))
      if (TC.isExternal(Name) && Name != Exclude)
        Pool.push_back(Name);
    return Pool;
  };
  std::vector<char> XPool = externalPool(XInput, OutFvi);
  std::vector<char> YPool = externalPool(YInput, 0);

  KernelConfig Config;
  Config.XInput = XInput;

  // TBx always led by the output FVI.
  int64_t LeadTile =
      std::min<int64_t>(TC.extent(OutFvi), Heuristic.TBTarget);
  Config.TBx = greedyFill(TC, XPool, Heuristic.TBTarget,
                          {{OutFvi, LeadTile}}, LeadTile);
  Config.TBy = greedyFill(TC, YPool, Heuristic.TBTarget, {}, 1);

  auto consumed = [&](const std::vector<IndexTile> &List, char Name) {
    for (const IndexTile &T : List)
      if (T.Name == Name)
        return true;
    return false;
  };
  std::vector<char> XLeft, YLeft;
  for (char Name : XPool)
    if (!consumed(Config.TBx, Name))
      XLeft.push_back(Name);
  for (char Name : YPool)
    if (!consumed(Config.TBy, Name))
      YLeft.push_back(Name);
  Config.RegX = greedyFill(TC, XLeft, Heuristic.RegTarget, {}, 1);
  Config.RegY = greedyFill(TC, YLeft, Heuristic.RegTarget, {}, 1);

  // NWChem's kernels coalesce the contraction-dimension loads of their own
  // fixed layouts: stage an internal index that is an input FVI first.
  std::vector<char> Internals = TC.internalIndices();
  std::stable_sort(Internals.begin(), Internals.end(),
                   [&](char X, char Y) {
                     auto isInputFvi = [&](char Name) {
                       return Name == TC.fvi(Operand::A) ||
                              Name == TC.fvi(Operand::B);
                     };
                     return isInputFvi(X) > isInputFvi(Y);
                   });
  Config.TBk = greedyFill(TC, Internals, Heuristic.TBkTarget, {}, 1);

  assert(Config.validate(TC).empty() && "NWChem heuristic produced an "
                                        "invalid configuration");
  return Config;
}

gpu::PerfEstimate
cogent::baselines::estimateNwchem(const Contraction &TC,
                                  const gpu::DeviceSpec &Device,
                                  const gpu::Calibration &Calib,
                                  unsigned ElementSize,
                                  const NwchemHeuristic &Heuristic) {
  ++NumNwchemEstimates;
  support::TraceSpan Span("baselines.nwchem-estimate");
  KernelConfig Config = nwchemConfig(TC, Heuristic);
  core::KernelPlan Plan(TC, Config);
  gpu::KernelProfile Profile =
      core::makeKernelProfile(Plan, Device, ElementSize);
  return gpu::estimateKernelTime(Device, Calib, Profile);
}
