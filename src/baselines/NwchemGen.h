//===- baselines/NwchemGen.h - NWChem-style direct generator ----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NWChem code-generator baseline (Ma et al.): direct tensor
/// contraction on the GPU with a fixed mapping heuristic instead of
/// COGENT's model-driven search. It uses the same kernel schema (Alg. 1)
/// but always picks the first greedy mapping — 8x8 thread blocks, 4x4
/// register tiles, TBk of 4 — walking each tensor's indices from the FVI,
/// which is what the hand-tuned NWChem CCSD(T) kernels amount to. The
/// paper's "superior mapping and tile size selection" gap between COGENT
/// and NWChem is exactly the gap between the searched and the fixed choice.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_BASELINES_NWCHEMGEN_H
#define COGENT_BASELINES_NWCHEMGEN_H

#include "core/KernelConfig.h"
#include "gpu/DeviceSpec.h"
#include "gpu/PerfModel.h"
#include "ir/Contraction.h"

namespace cogent {
namespace baselines {

/// Fixed tiling targets of the heuristic: 16x16 thread blocks with 4x4
/// register tiles and a 16-deep contraction stage, matching the hand-tuned
/// NWChem triples kernels.
struct NwchemHeuristic {
  int64_t TBTarget = 16;
  int64_t RegTarget = 4;
  int64_t TBkTarget = 16;
};

/// Builds NWChem's fixed-heuristic configuration for \p TC. Always valid.
core::KernelConfig nwchemConfig(const ir::Contraction &TC,
                                const NwchemHeuristic &Heuristic =
                                    NwchemHeuristic());

/// Predicted performance of the NWChem kernel for \p TC on \p Device,
/// evaluated through the same cost + roofline models as COGENT's kernels.
gpu::PerfEstimate estimateNwchem(const ir::Contraction &TC,
                                 const gpu::DeviceSpec &Device,
                                 const gpu::Calibration &Calib,
                                 unsigned ElementSize,
                                 const NwchemHeuristic &Heuristic =
                                     NwchemHeuristic());

} // namespace baselines
} // namespace cogent

#endif // COGENT_BASELINES_NWCHEMGEN_H
