//===- baselines/TcTuner.cpp ---------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baselines/TcTuner.h"

#include "core/CostModel.h"
#include "core/KernelPlan.h"
#include "gpu/PerfModel.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>

using namespace cogent;
using namespace cogent::baselines;
using cogent::core::IndexTile;
using cogent::core::KernelConfig;
using cogent::ir::Contraction;
using cogent::ir::Operand;

namespace {

/// TC's generated kernels lack COGENT's domain-specific schema (outer
/// product register tiles staged through shared memory with coalescing-
/// aware index placement); the paper measures TC's tuned best at roughly
/// 55-70% of COGENT on the SD2 set. Candidate fitness is discounted by
/// this schema factor (see DESIGN.md).
constexpr double TcSchemaEfficiency = 0.55;

const int64_t TileChoices[] = {1, 2, 4, 6, 8, 16};
constexpr int NumTileChoices = 6;

/// One locus per loop index: a mapping role and a tile-size choice.
struct Gene {
  /// Externals: 0 = grid only, 1 = thread block, 2 = register tile.
  /// Internals: 0 = sequential, 1 = TBk.
  uint8_t Role = 0;
  uint8_t TileIdx = 0;
};

using Genome = std::vector<Gene>;

/// Decodes a genome into a kernel configuration. The output FVI is always
/// repaired into the TBx lead slot (a hard schema requirement); everything
/// else follows the genome, including degenerate choices.
KernelConfig decode(const Contraction &TC, const Genome &Genome) {
  char OutFvi = TC.fvi(Operand::C);
  Operand XInput = TC.inputContaining(OutFvi);

  KernelConfig Config;
  Config.XInput = XInput;

  std::vector<char> Externals = TC.externalIndices();
  std::vector<char> Internals = TC.internalIndices();
  assert(Genome.size() == Externals.size() + Internals.size() &&
         "genome length mismatch");

  for (size_t I = 0; I < Externals.size(); ++I) {
    char Name = Externals[I];
    const Gene &G = Genome[I];
    int64_t Tile =
        std::min<int64_t>(TC.extent(Name), TileChoices[G.TileIdx]);
    bool OnXSide = TC.inputContaining(Name) == XInput;
    if (Name == OutFvi) {
      Config.TBx.insert(Config.TBx.begin(), {Name, std::max<int64_t>(Tile, 1)});
      continue;
    }
    if (G.Role == 1) {
      (OnXSide ? Config.TBx : Config.TBy).push_back({Name, Tile});
    } else if (G.Role == 2) {
      (OnXSide ? Config.RegX : Config.RegY).push_back({Name, Tile});
    }
    // Role 0: grid only (tile 1 implicitly).
  }
  for (size_t I = 0; I < Internals.size(); ++I) {
    const Gene &G = Genome[Externals.size() + I];
    if (G.Role == 1) {
      char Name = Internals[I];
      int64_t Tile =
          std::min<int64_t>(TC.extent(Name), TileChoices[G.TileIdx]);
      Config.TBk.push_back({Name, Tile});
    }
  }
  return Config;
}

/// "Benchmarks" one candidate: simulated GFLOPS of the decoded schedule, or
/// a floor score for configurations that do not fit the hardware (TC
/// candidates that fail to compile/launch).
double fitnessOf(const Contraction &TC, const KernelConfig &Config,
                 const gpu::DeviceSpec &Device,
                 const gpu::Calibration &Calib, unsigned ElementSize) {
  if (!Config.validate(TC).empty())
    return 0.0;
  if (Config.threadsPerBlock() > Device.MaxThreadsPerBlock ||
      Config.smemBytes(ElementSize) >
          static_cast<int64_t>(Device.SharedMemPerBlock) ||
      Config.registersPerThread(ElementSize) > Device.MaxRegistersPerThread)
    return 0.0;

  core::KernelPlan Plan(TC, Config);
  gpu::KernelProfile Profile =
      core::makeKernelProfile(Plan, Device, ElementSize);
  gpu::PerfEstimate Est = gpu::estimateKernelTime(Device, Calib, Profile);
  return Est.Gflops * TcSchemaEfficiency;
}

Genome randomGenome(size_t Length, Rng &Generator) {
  Genome G(Length);
  for (Gene &Locus : G) {
    Locus.Role = static_cast<uint8_t>(Generator.uniformInt(0, 2));
    Locus.TileIdx =
        static_cast<uint8_t>(Generator.uniformInt(0, NumTileChoices - 1));
  }
  return G;
}

} // namespace

double cogent::baselines::untunedTcGflops(const Contraction &TC,
                                          const gpu::DeviceSpec &Device,
                                          unsigned ElementSize) {
  // TC without tuning emits a naive schedule: one thread per output
  // element, no shared-memory staging, no register tiling — every index at
  // tile 1.
  Genome Naive(TC.externalIndices().size() + TC.internalIndices().size());
  KernelConfig Config = decode(TC, Naive);
  // Force even the FVI tile to 1.
  Config.TBx.front().Tile = 1;
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  return fitnessOf(TC, Config, Device, Calib, ElementSize);
}

TcTuneResult cogent::baselines::tuneTc(const Contraction &TC,
                                       const gpu::DeviceSpec &Device,
                                       const TcTunerOptions &Options) {
  Rng Generator(Options.Seed);
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  size_t GenomeLength =
      TC.externalIndices().size() + TC.internalIndices().size();

  TcTuneResult Result;
  Result.UntunedGflops = untunedTcGflops(TC, Device, Options.ElementSize);

  struct Individual {
    Genome Genes;
    double Fitness = 0.0;
  };
  std::vector<Individual> Population(
      static_cast<size_t>(Options.PopulationSize));

  auto evaluate = [&](Individual &Ind) {
    KernelConfig Config = decode(TC, Ind.Genes);
    Ind.Fitness =
        fitnessOf(TC, Config, Device, Calib, Options.ElementSize);
    ++Result.CandidatesEvaluated;
  };

  for (Individual &Ind : Population) {
    Ind.Genes = randomGenome(GenomeLength, Generator);
    evaluate(Ind);
  }

  double Best = 0.0;
  Genome BestGenes = Population.front().Genes;
  auto recordBest = [&]() {
    for (const Individual &Ind : Population)
      if (Ind.Fitness > Best) {
        Best = Ind.Fitness;
        BestGenes = Ind.Genes;
      }
    Result.BestGflopsPerGeneration.push_back(Best);
  };
  recordBest();

  auto tournament = [&]() -> const Individual & {
    const Individual *Winner = nullptr;
    for (int I = 0; I < Options.TournamentSize; ++I) {
      const Individual &Pick = Population[static_cast<size_t>(
          Generator.uniformInt(0, Options.PopulationSize - 1))];
      if (!Winner || Pick.Fitness > Winner->Fitness)
        Winner = &Pick;
    }
    return *Winner;
  };

  for (int Gen = 1; Gen < Options.Generations; ++Gen) {
    std::vector<Individual> Next;
    Next.reserve(Population.size());
    // Elitism: carry the best individual forward unchanged.
    size_t EliteIdx = 0;
    for (size_t I = 1; I < Population.size(); ++I)
      if (Population[I].Fitness > Population[EliteIdx].Fitness)
        EliteIdx = I;
    Next.push_back(Population[EliteIdx]);

    while (Next.size() < Population.size()) {
      Individual Child;
      const Individual &ParentA = tournament();
      const Individual &ParentB = tournament();
      Child.Genes = ParentA.Genes;
      if (Generator.flip(Options.CrossoverRate))
        for (size_t L = 0; L < GenomeLength; ++L)
          if (Generator.flip(0.5))
            Child.Genes[L] = ParentB.Genes[L];
      for (Gene &Locus : Child.Genes) {
        if (Generator.flip(Options.MutationRate))
          Locus.Role = static_cast<uint8_t>(Generator.uniformInt(0, 2));
        if (Generator.flip(Options.MutationRate))
          Locus.TileIdx = static_cast<uint8_t>(
              Generator.uniformInt(0, NumTileChoices - 1));
      }
      evaluate(Child);
      Next.push_back(std::move(Child));
    }
    Population = std::move(Next);
    recordBest();
  }

  Result.BestGflops = Best;
  Result.BestConfig = decode(TC, BestGenes);
  Result.ModeledTuningSeconds =
      static_cast<double>(Result.CandidatesEvaluated) *
      Options.SecondsPerCandidate;
  return Result;
}
