//===- baselines/TcTuner.h - Tensor-Comprehensions-style autotuner ----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A genetic autotuner in the style of Facebook Tensor Comprehensions
/// (paper §V, Figs. 6-8): instead of COGENT's model-driven ranking of a
/// domain-pruned space, the tuner searches the raw mapping/tile space with
/// a genetic algorithm (population 100, 20 generations in the paper),
/// "benchmarking" each candidate. Candidate fitness here is the simulated
/// GFLOPS of the decoded schedule; candidates that decode to degenerate
/// schedules score accordingly low — just as TC's untuned output runs below
/// 1 GFLOP.
///
/// Each candidate evaluation also accrues a modeled wall-clock charge (TC
/// compiles and runs every candidate on hardware; the paper reports
/// ~8514 s for 2000 candidates on SD2_1), which reproduces the
/// code-generation-time comparison.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_BASELINES_TCTUNER_H
#define COGENT_BASELINES_TCTUNER_H

#include "core/KernelConfig.h"
#include "gpu/DeviceSpec.h"
#include "ir/Contraction.h"

#include <cstdint>
#include <vector>

namespace cogent {
namespace baselines {

/// Tuner knobs; defaults follow the paper's TC experiments.
struct TcTunerOptions {
  int PopulationSize = 100;
  int Generations = 20;
  double MutationRate = 0.10;
  double CrossoverRate = 0.80;
  int TournamentSize = 3;
  uint64_t Seed = 0x7c7c7cULL;
  /// Figs. 6-8 run single precision.
  unsigned ElementSize = 4;
  /// Modeled compile+benchmark wall-clock per candidate, seconds
  /// (8514 s / 2000 candidates in the paper's SD2_1 run).
  double SecondsPerCandidate = 4.26;
};

/// Tuning outcome and convergence curve.
struct TcTuneResult {
  /// Best GFLOPS seen up to and including each generation (Fig. 8 series).
  std::vector<double> BestGflopsPerGeneration;
  /// GFLOPS of TC's untuned (naive) schedule.
  double UntunedGflops = 0.0;
  core::KernelConfig BestConfig;
  double BestGflops = 0.0;
  /// Modeled wall-clock the tuning would take on hardware, seconds.
  double ModeledTuningSeconds = 0.0;
  uint64_t CandidatesEvaluated = 0;
};

/// Runs the genetic autotuner for \p TC on \p Device.
TcTuneResult tuneTc(const ir::Contraction &TC, const gpu::DeviceSpec &Device,
                    const TcTunerOptions &Options = TcTunerOptions());

/// GFLOPS of the untuned (naive polyhedral) schedule alone.
double untunedTcGflops(const ir::Contraction &TC,
                       const gpu::DeviceSpec &Device, unsigned ElementSize);

} // namespace baselines
} // namespace cogent

#endif // COGENT_BASELINES_TCTUNER_H
