//===- baselines/Ttgt.cpp ------------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baselines/Ttgt.h"

#include "blas/GemmModel.h"
#include "support/Counters.h"
#include "support/Trace.h"
#include "transpose/TransposeModel.h"

#include <algorithm>
#include <cassert>

using namespace cogent;
using namespace cogent::baselines;

COGENT_COUNTER(NumTtgtEstimates, "baselines.ttgt-estimates",
               "TTGT pipeline cost estimates computed");
using cogent::ir::Contraction;
using cogent::ir::Operand;
using cogent::tensor::Tensor;

namespace {

bool isIdentity(const std::vector<unsigned> &Perm) {
  for (unsigned I = 0; I < Perm.size(); ++I)
    if (Perm[I] != I)
      return false;
  return true;
}

/// Externals of input \p In ordered as they appear in C.
std::vector<char> externalsOfInC(const Contraction &TC, Operand In) {
  std::vector<char> Result;
  for (char Name : TC.indices(Operand::C))
    if (TC.contains(In, Name))
      Result.push_back(Name);
  return Result;
}

/// Permutation mapping tensor \p Op's layout onto \p DstOrder: entry I is
/// the position in \p Op of the I-th destination index.
std::vector<unsigned> permFor(const Contraction &TC, Operand Op,
                              const std::vector<char> &DstOrder) {
  std::vector<unsigned> Perm;
  for (char Name : DstOrder)
    Perm.push_back(TC.positionIn(Op, Name));
  return Perm;
}

} // namespace

TtgtPlan cogent::baselines::planTtgt(const Contraction &TC) {
  TtgtPlan Plan;
  std::vector<char> ExtA = externalsOfInC(TC, Operand::A);
  std::vector<char> ExtB = externalsOfInC(TC, Operand::B);
  std::vector<char> Internals = TC.internalIndices();

  std::vector<char> OrderTA = ExtA;
  OrderTA.insert(OrderTA.end(), Internals.begin(), Internals.end());
  std::vector<char> OrderTB = Internals;
  OrderTB.insert(OrderTB.end(), ExtB.begin(), ExtB.end());

  Plan.PermA = permFor(TC, Operand::A, OrderTA);
  Plan.PermB = permFor(TC, Operand::B, OrderTB);
  Plan.PermAIsIdentity = isIdentity(Plan.PermA);
  Plan.PermBIsIdentity = isIdentity(Plan.PermB);

  for (char Name : ExtA)
    Plan.M *= TC.extent(Name);
  for (char Name : ExtB)
    Plan.N *= TC.extent(Name);
  for (char Name : Internals)
    Plan.K *= TC.extent(Name);

  // MC comes out as [ExtA..., ExtB...]; C wants its own order.
  std::vector<char> OrderMC = ExtA;
  OrderMC.insert(OrderMC.end(), ExtB.begin(), ExtB.end());
  for (char Name : TC.indices(Operand::C)) {
    auto It = std::find(OrderMC.begin(), OrderMC.end(), Name);
    assert(It != OrderMC.end() && "output index missing from matricization");
    Plan.PermC.push_back(static_cast<unsigned>(It - OrderMC.begin()));
  }
  Plan.PermCIsIdentity = isIdentity(Plan.PermC);

  for (char Name : TC.indices(Operand::A))
    Plan.ShapeA.push_back(TC.extent(Name));
  for (char Name : TC.indices(Operand::B))
    Plan.ShapeB.push_back(TC.extent(Name));
  for (char Name : OrderMC)
    Plan.ShapeMC.push_back(TC.extent(Name));
  return Plan;
}

template <typename ElementT>
void cogent::baselines::runTtgt(const Contraction &TC, Tensor<ElementT> &C,
                                const Tensor<ElementT> &A,
                                const Tensor<ElementT> &B) {
  TtgtPlan Plan = planTtgt(TC);

  Tensor<ElementT> TA =
      Plan.PermAIsIdentity ? A : transpose::permute(A, Plan.PermA);
  Tensor<ElementT> TB =
      Plan.PermBIsIdentity ? B : transpose::permute(B, Plan.PermB);

  Tensor<ElementT> MC(std::vector<int64_t>{Plan.M, Plan.N});
  blas::gemm<ElementT>(Plan.M, Plan.N, Plan.K, ElementT(1), TA.data(), Plan.M,
                       TB.data(), Plan.K, ElementT(0), MC.data(), Plan.M);

  if (Plan.PermCIsIdentity) {
    assert(C.numElements() == MC.numElements() && "output size mismatch");
    std::copy(MC.data(), MC.data() + MC.numElements(), C.data());
    return;
  }
  // Reinterpret MC with the multi-dimensional [ExtA..., ExtB...] shape and
  // permute into C's layout.
  Tensor<ElementT> MCShaped(Plan.ShapeMC);
  std::copy(MC.data(), MC.data() + MC.numElements(), MCShaped.data());
  Tensor<ElementT> Permuted = transpose::permute(MCShaped, Plan.PermC);
  assert(C.numElements() == Permuted.numElements() && "output size mismatch");
  std::copy(Permuted.data(), Permuted.data() + Permuted.numElements(),
            C.data());
}

template void cogent::baselines::runTtgt<double>(const Contraction &,
                                                 Tensor<double> &,
                                                 const Tensor<double> &,
                                                 const Tensor<double> &);
template void cogent::baselines::runTtgt<float>(const Contraction &,
                                                Tensor<float> &,
                                                const Tensor<float> &,
                                                const Tensor<float> &);

TtgtEstimate cogent::baselines::estimateTtgt(const Contraction &TC,
                                             const gpu::DeviceSpec &Device,
                                             const gpu::Calibration &Calib,
                                             unsigned ElementSize) {
  ++NumTtgtEstimates;
  support::TraceSpan Span("baselines.ttgt-estimate");
  TtgtPlan Plan = planTtgt(TC);
  TtgtEstimate Est;

  if (!Plan.PermAIsIdentity) {
    transpose::TransposeEstimate T = transpose::estimateTranspose(
        Device, Calib, Plan.ShapeA, Plan.PermA, ElementSize);
    Est.TransposeMs += T.TimeMs;
    Est.WorkspaceBytes +=
        static_cast<double>(TC.numElements(Operand::A)) * ElementSize;
    ++Est.KernelLaunches;
  }
  if (!Plan.PermBIsIdentity) {
    transpose::TransposeEstimate T = transpose::estimateTranspose(
        Device, Calib, Plan.ShapeB, Plan.PermB, ElementSize);
    Est.TransposeMs += T.TimeMs;
    Est.WorkspaceBytes +=
        static_cast<double>(TC.numElements(Operand::B)) * ElementSize;
    ++Est.KernelLaunches;
  }

  blas::GemmEstimate Gemm =
      blas::estimateGemm(Device, Calib, Plan.M, Plan.N, Plan.K, ElementSize);
  Est.GemmMs = Gemm.TimeMs;
  ++Est.KernelLaunches;

  if (!Plan.PermCIsIdentity) {
    transpose::TransposeEstimate T = transpose::estimateTranspose(
        Device, Calib, Plan.ShapeMC, Plan.PermC, ElementSize);
    Est.TransposeMs += T.TimeMs;
    Est.WorkspaceBytes +=
        static_cast<double>(TC.numElements(Operand::C)) * ElementSize;
    ++Est.KernelLaunches;
  }

  // TAL_SH dispatch: host-side tensor-block argument processing and stream
  // synchronization around the pipeline (measured at the 100-200 us scale
  // per contraction call on the real runtime).
  constexpr double DispatchOverheadMs = 0.15;
  Est.TimeMs = Est.TransposeMs + Est.GemmMs + DispatchOverheadMs;
  Est.Gflops = TC.flopCount() / (Est.TimeMs * 1e-3) / 1e9;
  return Est;
}
