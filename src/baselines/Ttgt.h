//===- baselines/Ttgt.h - TAL_SH-style TTGT baseline -----------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Transpose-Transpose-GEMM-Transpose baseline the paper compares
/// against (TAL_SH with cuTT transposition and cuBLAS GEMM): permute both
/// inputs so the contraction indices become a single matrix dimension, run
/// one GEMM, and permute the result into the output layout. Provides both a
/// functional CPU execution (validated against the reference contraction)
/// and a modeled GPU cost built from the transpose and GEMM performance
/// models.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_BASELINES_TTGT_H
#define COGENT_BASELINES_TTGT_H

#include "blas/Gemm.h"
#include "gpu/DeviceSpec.h"
#include "gpu/PerfModel.h"
#include "ir/Contraction.h"
#include "tensor/Tensor.h"
#include "transpose/Permute.h"

#include <vector>

namespace cogent {
namespace baselines {

/// The matricization plan: permutations (identity ones flagged) and the
/// resulting GEMM shape.
struct TtgtPlan {
  /// Permutes A into TA[externalsOfA (C-ordered), internals (A-ordered)].
  std::vector<unsigned> PermA;
  bool PermAIsIdentity = false;
  /// Permutes B into TB[internals (A-ordered), externalsOfB (C-ordered)].
  std::vector<unsigned> PermB;
  bool PermBIsIdentity = false;
  /// Permutes MC[externalsOfA, externalsOfB] into C's layout.
  std::vector<unsigned> PermC;
  bool PermCIsIdentity = false;

  /// GEMM dimensions: TA is M x K, TB is K x N.
  int64_t M = 1, N = 1, K = 1;

  /// Shapes (column-major) fed to the transpose cost model.
  std::vector<int64_t> ShapeA, ShapeB, ShapeMC;
};

/// Builds the matricization plan for \p TC.
TtgtPlan planTtgt(const ir::Contraction &TC);

/// Functional TTGT execution on the CPU substrate; writes into \p C.
template <typename ElementT>
void runTtgt(const ir::Contraction &TC, tensor::Tensor<ElementT> &C,
             const tensor::Tensor<ElementT> &A,
             const tensor::Tensor<ElementT> &B);

extern template void runTtgt<double>(const ir::Contraction &,
                                     tensor::Tensor<double> &,
                                     const tensor::Tensor<double> &,
                                     const tensor::Tensor<double> &);
extern template void runTtgt<float>(const ir::Contraction &,
                                    tensor::Tensor<float> &,
                                    const tensor::Tensor<float> &,
                                    const tensor::Tensor<float> &);

/// Modeled GPU cost of the TTGT pipeline.
struct TtgtEstimate {
  double TimeMs = 0.0;
  double Gflops = 0.0;
  double TransposeMs = 0.0;
  double GemmMs = 0.0;
  /// Extra device memory for the transposed temporaries, bytes.
  double WorkspaceBytes = 0.0;
  unsigned KernelLaunches = 0;
};

/// Predicts TTGT execution time for \p TC on \p Device.
TtgtEstimate estimateTtgt(const ir::Contraction &TC,
                          const gpu::DeviceSpec &Device,
                          const gpu::Calibration &Calib,
                          unsigned ElementSize);

} // namespace baselines
} // namespace cogent

#endif // COGENT_BASELINES_TTGT_H
