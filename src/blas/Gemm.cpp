//===- blas/Gemm.cpp --------------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "blas/Gemm.h"

#include <algorithm>
#include <cassert>

using namespace cogent;
using namespace cogent::blas;

namespace {
constexpr int64_t BlockM = 64;
constexpr int64_t BlockN = 64;
constexpr int64_t BlockK = 64;
} // namespace

template <typename ElementT>
void cogent::blas::gemm(int64_t M, int64_t N, int64_t K, ElementT Alpha,
                        const ElementT *A, int64_t Lda, const ElementT *B,
                        int64_t Ldb, ElementT Beta, ElementT *C, int64_t Ldc) {
  assert(M >= 0 && N >= 0 && K >= 0 && "negative GEMM dimension");
  assert(Lda >= std::max<int64_t>(1, M) && Ldb >= std::max<int64_t>(1, K) &&
         Ldc >= std::max<int64_t>(1, M) && "bad leading dimension");

  // Scale C by beta once up front.
  for (int64_t J = 0; J < N; ++J) {
    ElementT *Col = C + J * Ldc;
    if (Beta == ElementT(0))
      std::fill(Col, Col + M, ElementT(0));
    else if (Beta != ElementT(1))
      for (int64_t I = 0; I < M; ++I)
        Col[I] *= Beta;
  }
  if (K == 0 || Alpha == ElementT(0))
    return;

  // Blocked loops; the innermost pair is a jki order so the A column walk is
  // contiguous and C columns are updated streamingly.
  for (int64_t Jb = 0; Jb < N; Jb += BlockN) {
    int64_t Je = std::min(Jb + BlockN, N);
    for (int64_t Kb = 0; Kb < K; Kb += BlockK) {
      int64_t Ke = std::min(Kb + BlockK, K);
      for (int64_t Ib = 0; Ib < M; Ib += BlockM) {
        int64_t Ie = std::min(Ib + BlockM, M);
        for (int64_t J = Jb; J < Je; ++J) {
          ElementT *CCol = C + J * Ldc;
          const ElementT *BCol = B + J * Ldb;
          for (int64_t Kk = Kb; Kk < Ke; ++Kk) {
            ElementT Scale = Alpha * BCol[Kk];
            if (Scale == ElementT(0))
              continue;
            const ElementT *ACol = A + Kk * Lda;
            for (int64_t I = Ib; I < Ie; ++I)
              CCol[I] += Scale * ACol[I];
          }
        }
      }
    }
  }
}

template void cogent::blas::gemm<float>(int64_t, int64_t, int64_t, float,
                                        const float *, int64_t, const float *,
                                        int64_t, float, float *, int64_t);
template void cogent::blas::gemm<double>(int64_t, int64_t, int64_t, double,
                                         const double *, int64_t,
                                         const double *, int64_t, double,
                                         double *, int64_t);
