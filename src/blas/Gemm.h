//===- blas/Gemm.h - Blocked matrix multiplication --------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-major GEMM, C = alpha * A * B + beta * C, the compute core of the
/// TTGT baseline (TAL_SH performs its contraction as one cuBLAS GEMM after
/// transposition). A cache-blocked implementation with a small register
/// micro-kernel; functional-validation oriented, not a BLIS competitor.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_BLAS_GEMM_H
#define COGENT_BLAS_GEMM_H

#include <cstdint>

namespace cogent {
namespace blas {

/// C (M x N) = alpha * A (M x K) * B (K x N) + beta * C; all column-major
/// with leading dimensions Lda/Ldb/Ldc.
template <typename ElementT>
void gemm(int64_t M, int64_t N, int64_t K, ElementT Alpha, const ElementT *A,
          int64_t Lda, const ElementT *B, int64_t Ldb, ElementT Beta,
          ElementT *C, int64_t Ldc);

extern template void gemm<float>(int64_t, int64_t, int64_t, float,
                                 const float *, int64_t, const float *,
                                 int64_t, float, float *, int64_t);
extern template void gemm<double>(int64_t, int64_t, int64_t, double,
                                  const double *, int64_t, const double *,
                                  int64_t, double, double *, int64_t);

} // namespace blas
} // namespace cogent

#endif // COGENT_BLAS_GEMM_H
