//===- blas/GemmModel.cpp ----------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "blas/GemmModel.h"

#include "gpu/Occupancy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cogent;
using namespace cogent::blas;

GemmEstimate cogent::blas::estimateGemm(const gpu::DeviceSpec &Device,
                                        const gpu::Calibration &Calib,
                                        int64_t M, int64_t N, int64_t K,
                                        unsigned ElementSize) {
  assert(M > 0 && N > 0 && K > 0 && "GEMM dimensions must be positive");
  assert((ElementSize == 4 || ElementSize == 8) && "unsupported element size");

  GemmEstimate Est;
  double Flops = 2.0 * static_cast<double>(M) * static_cast<double>(N) *
                 static_cast<double>(K);
  double Peak = (ElementSize == 8 ? Device.PeakGflopsDouble
                                  : Device.PeakGflopsSingle) *
                1e9;

  // cuBLAS-style tiling: 128x64 thread-block tiles over C, K swept in 16
  // element slices. Partial tiles waste lanes (tile quantization).
  constexpr int64_t TileM = 128, TileN = 64, TileK = 16;
  auto quantized = [](int64_t Extent, int64_t Tile) {
    return static_cast<double>(Extent) /
           static_cast<double>((Extent + Tile - 1) / Tile * Tile);
  };
  double TileEff = quantized(M, TileM) * quantized(N, TileN);
  // Short-K sweeps cannot amortize the prologue/epilogue of the pipelined
  // main loop.
  double KEff = std::min(1.0, static_cast<double>(K) / (4.0 * TileK));

  long long NumBlocks = static_cast<long long>((M + TileM - 1) / TileM) *
                        ((N + TileN - 1) / TileN);
  // cuBLAS DGEMM blocks run 256 threads with heavy register use: roughly
  // two blocks per SM.
  double Wave = gpu::waveEfficiency(Device, NumBlocks, /*BlocksPerSM=*/2);
  if (Wave <= 0.0)
    Wave = 1.0 / Device.NumSMs;

  // 0.78: cuBLAS on the skewed, freshly-transposed layouts produced by
  // matricization runs below its square-GEMM headline efficiency.
  double ComputeRate =
      Peak * 0.78 * TileEff * KEff * std::max(Wave, 1e-3);
  double ComputeTimeMs = Flops / ComputeRate * 1e3;

  // Memory roofline: each operand streamed once (tiles provide the reuse).
  double Bytes = (static_cast<double>(M) * K + static_cast<double>(K) * N +
                  2.0 * static_cast<double>(M) * N) *
                 ElementSize;
  double DramBw = Device.DramBandwidthGBs * 1e9 * Calib.MaxDramEfficiency *
                  std::max(Wave, 1e-3);
  double DramTimeMs = Bytes / DramBw * 1e3;

  Est.TimeMs = std::max(ComputeTimeMs, DramTimeMs) +
               Device.KernelLaunchOverheadUs * 1e-3;
  Est.Gflops = Flops / (Est.TimeMs * 1e-3) / 1e9;
  Est.EfficiencyVsPeak = Est.Gflops * 1e9 / Peak;
  return Est;
}
