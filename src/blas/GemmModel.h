//===- blas/GemmModel.h - cuBLAS-like GEMM performance model ---------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicts cuBLAS GEMM execution time on the simulated devices. The
/// essential behaviour the TTGT comparison depends on (paper §II and §V):
/// large near-square GEMMs run close to peak, while the highly rectangular
/// matrices produced by flattening tensor contractions — short K from few
/// contraction indices, or skinny M/N — achieve a much lower fraction of
/// peak because of tile quantization and reduced data reuse.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_BLAS_GEMMMODEL_H
#define COGENT_BLAS_GEMMMODEL_H

#include "gpu/DeviceSpec.h"
#include "gpu/PerfModel.h"

#include <cstdint>

namespace cogent {
namespace blas {

/// Model output for one GEMM call.
struct GemmEstimate {
  double TimeMs = 0.0;
  double Gflops = 0.0;
  /// Achieved fraction of device peak for the element type.
  double EfficiencyVsPeak = 0.0;
};

/// Predicts the time of C(MxN) = A(MxK) * B(KxN) with \p ElementSize-byte
/// elements on \p Device.
GemmEstimate estimateGemm(const gpu::DeviceSpec &Device,
                          const gpu::Calibration &Calib, int64_t M, int64_t N,
                          int64_t K, unsigned ElementSize);

} // namespace blas
} // namespace cogent

#endif // COGENT_BLAS_GEMMMODEL_H
