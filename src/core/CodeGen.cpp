//===- core/CodeGen.cpp -------------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// One schedule emitter, two GPU dialects. The paper ships CUDA emission and
// plans OpenCL ("OpenCL code generation is planned for the future",
// footnote 1); both are realized here over a small Dialect table so the
// Algorithm-1 structure is written exactly once.
//
//===----------------------------------------------------------------------===//

#include "core/CodeGen.h"

#include "analysis/SourceMutator.h"
#include "support/Counters.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <cassert>
#include <sstream>

using namespace cogent;
using namespace cogent::core;
using cogent::ir::Contraction;
using cogent::ir::Operand;

COGENT_COUNTER(NumKernelsEmitted, "codegen.kernels-emitted",
               "kernel+driver source pairs emitted (both dialects)");
COGENT_COUNTER(NumBytesEmitted, "codegen.bytes-emitted",
               "total kernel+driver source bytes emitted");

namespace {

/// Target-language spellings of the execution-model builtins.
struct Dialect {
  const char *Name;
  /// printf-style pieces of the kernel signature.
  const char *KernelQualifier; // e.g. "extern \"C\" __global__ void"
  const char *GlobalOutPtr;    // "%T *__restrict__"
  const char *GlobalInPtr;     // "const %T *__restrict__"
  const char *SharedQualifier; // "__shared__" / "__local"
  const char *ExtentType;      // "const long long" / "const long"
  const char *OffsetType;      // "long long" / "long"
  const char *ThreadIdxX;
  const char *ThreadIdxY;
  const char *BlockIdxX;
  const char *GridDimX;
  const char *Barrier;
  /// Emitted before everything else (extensions pragma for CL fp64).
  const char *Prologue;
};

const Dialect CudaDialect = {
    "CUDA",
    "extern \"C\" __global__ void",
    "{T} *__restrict__",
    "const {T} *__restrict__",
    "__shared__",
    "const long long",
    "long long",
    "threadIdx.x",
    "threadIdx.y",
    "blockIdx.x",
    "gridDim.x",
    "__syncthreads();",
    "",
};

const Dialect OpenClDialect = {
    "OpenCL",
    "__kernel void",
    "__global {T} *restrict",
    "__global const {T} *restrict",
    "__local",
    "const long",
    "long",
    "(int)get_local_id(0)",
    "(int)get_local_id(1)",
    "(long)get_group_id(0)",
    "(long)get_num_groups(0)",
    "barrier(CLK_LOCAL_MEM_FENCE);",
    "", // set per element type below
};

/// Chaos site: a targeted codegen regression (dropped barrier, skewed
/// stride, ...). The SourceMutator kind is drawn from the same per-site
/// deterministic sequence as the fire decision, so a seed reproduces both
/// whether and how the source was corrupted. KernelLint's post-emit gate
/// in Cogent::generate is what absorbs these.
void maybeMutateSource(std::string &KernelSource) {
  if (!support::chaosShouldFire(support::ChaosSite::CodegenMutate))
    return;
  support::FaultInjector *Injector = support::activeFaultInjector();
  if (!Injector)
    return;
  unsigned Index = Injector->sample(support::ChaosSite::CodegenMutate) %
                   analysis::NumMutationKinds;
  // Draw through the name table's round-trip rather than a raw cast so a
  // kind/table drift shows up as a refused mutation, not arbitrary
  // enum values.
  std::optional<analysis::MutationKind> Kind = analysis::mutationKindFromName(
      analysis::mutationKindName(static_cast<analysis::MutationKind>(Index)));
  if (!Kind)
    return;
  KernelSource = analysis::applyMutation(KernelSource, *Kind);
}

std::string withType(const char *Pattern, const std::string &ElemT) {
  std::string Out = Pattern;
  if (size_t Pos = Out.find("{T}"); Pos != std::string::npos)
    Out.replace(Pos, 3, ElemT);
  return Out;
}

std::string extentVar(char Name) { return std::string("N_") + Name; }
std::string baseVar(char Name) { return std::string("base_") + Name; }
std::string kbaseVar(char Name) { return std::string("kbase_") + Name; }
std::string threadVar(char Name) { return std::string("t_") + Name; }

std::string strideVar(Operand Op, char Name) {
  return std::string("str") + ir::operandName(Op) + "_" + Name;
}

/// Emits `const <off> strT_x = ...;` lines for every index of \p Op,
/// column-major from the extent parameters.
void emitStrides(std::ostream &OS, const Dialect &Dia, const Contraction &TC,
                 Operand Op) {
  std::string Accum = std::string("(") + Dia.OffsetType + ")1";
  for (char Name : TC.indices(Op)) {
    OS << "  const " << Dia.OffsetType << " " << strideVar(Op, Name) << " = "
       << Accum << ";\n";
    Accum += " * " + extentVar(Name);
  }
}

/// Emits the mixed-radix decode of \p Source over \p List into variables
/// named <VarPrefix><index>, e.g. `const int x_b = rq % 4; rq /= 4;`.
void emitDecode(std::ostream &OS, const std::string &Indent,
                const std::string &Source, const std::string &Scratch,
                const std::vector<IndexTile> &List,
                const std::string &VarPrefix) {
  if (List.empty())
    return;
  OS << Indent << "int " << Scratch << " = " << Source << ";\n";
  for (size_t I = 0; I < List.size(); ++I) {
    OS << Indent << "const int " << VarPrefix << List[I].Name << " = "
       << Scratch << " % " << List[I].Tile << ";";
    if (I + 1 != List.size())
      OS << " " << Scratch << " /= " << List[I].Tile << ";";
    OS << "\n";
  }
}

/// Coordinate variable for a slice/store dimension according to its role.
std::string roleCoord(CoordRole Role, char Name) {
  switch (Role) {
  case CoordRole::ThreadX:
  case CoordRole::ThreadY:
    return threadVar(Name);
  case CoordRole::RegX:
    return std::string("x_") + Name;
  case CoordRole::RegY:
    return std::string("y_") + Name;
  case CoordRole::Step:
    return std::string("k_") + Name;
  case CoordRole::Fixed:
    return "0";
  }
  assert(false && "unknown role");
  return "0";
}

/// Emits the cooperative GMEM -> SMEM load loop for input \p Op.
/// \p SmemBase is prepended to the staging offset (double-buffer base).
void emitSliceLoad(std::ostream &OS, const Dialect &Dia,
                   const KernelPlan &Plan, Operand Op,
                   const std::string &SmemName, const std::string &GlobalName,
                   const std::string &ElementType,
                   const std::string &SmemBase = std::string()) {
  const Contraction &TC = Plan.contraction();
  const std::vector<SliceDim> &Dims = Plan.sliceDims(Op);
  int64_t SliceElems = Plan.sliceElements(Op);

  OS << "    // (1) load slice of " << ir::operandName(Op)
     << " from GMEM to SMEM\n";
  OS << "    for (int l = tid; l < " << SliceElems << "; l += NTHREADS) {\n";
  OS << "      int lr = l;\n";
  for (size_t I = 0; I < Dims.size(); ++I) {
    OS << "      const int i_" << Dims[I].Name << " = lr % " << Dims[I].Tile
       << ";";
    if (I + 1 != Dims.size())
      OS << " lr /= " << Dims[I].Tile << ";";
    OS << "\n";
  }
  for (const SliceDim &Dim : Dims) {
    bool IsInternal = TC.isInternal(Dim.Name);
    OS << "      const " << Dia.OffsetType << " g_" << Dim.Name << " = "
       << (IsInternal ? kbaseVar(Dim.Name) : baseVar(Dim.Name)) << " + i_"
       << Dim.Name << ";\n";
  }
  OS << "      const bool inb =";
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I != 0)
      OS << " &&";
    OS << " (g_" << Dims[I].Name << " < " << extentVar(Dims[I].Name) << ")";
  }
  OS << ";\n";
  // Store into the staging layout (thread-varying dims fastest; see
  // KernelPlan), not the load-flattening order.
  OS << "      " << SmemName << "[" << SmemBase;
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I != 0)
      OS << " + ";
    OS << "i_" << Dims[I].Name << " * " << Dims[I].SmemStride;
  }
  OS << "] = inb ? " << GlobalName << "[";
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I != 0)
      OS << " + ";
    OS << "g_" << Dims[I].Name << " * " << strideVar(Op, Dims[I].Name);
  }
  OS << "] : " << (ElementType == "double" ? "0.0" : "0.0f") << ";\n";
  OS << "    }\n";
}

/// SMEM offset expression for one staged element of \p Op given the
/// in-scope role coordinate variables.
std::string smemOffsetExpr(const KernelPlan &Plan, Operand Op) {
  std::string Expr;
  for (const SliceDim &Dim : Plan.sliceDims(Op)) {
    if (Dim.Role == CoordRole::Fixed)
      continue;
    if (!Expr.empty())
      Expr += " + ";
    Expr += roleCoord(Dim.Role, Dim.Name) + " * " +
            std::to_string(Dim.SmemStride);
  }
  return Expr.empty() ? "0" : Expr;
}

GeneratedSource emitKernel(const KernelPlan &Plan, const Dialect &Dia,
                           const CodeGenOptions &Options) {
  const Contraction &TC = Plan.contraction();
  const KernelConfig &Config = Plan.config();
  const std::string &ElemT = Options.ElementType;
  assert((ElemT == "double" || ElemT == "float") &&
         "unsupported element type");

  GeneratedSource Out;
  std::string SpecId = TC.toString();
  for (char &C : SpecId)
    if (C == '-')
      C = '_';
  Out.KernelName = Options.KernelPrefix + "_" + SpecId;

  Operand XIn = Config.XInput;
  Operand YIn = Config.yInput();

  std::ostringstream OS;
  OS << Dia.Prologue;
  OS << "// Generated by COGENT (reproduction), " << Dia.Name
     << " dialect.\n";
  OS << "// Contraction: " << TC.toString() << "\n";
  OS << "// Mapping:     " << Config.toString() << "\n";
  OS << "#define TBX " << Plan.tbX() << "\n";
  OS << "#define TBY " << Plan.tbY() << "\n";
  OS << "#define NTHREADS " << Plan.threadsPerBlock() << "\n";
  OS << "#define REGX " << Plan.regX() << "\n";
  OS << "#define REGY " << Plan.regY() << "\n";
  OS << "#define TBK " << Plan.tbk() << "\n";
  OS << Dia.KernelQualifier << " " << Out.KernelName << "(\n";
  OS << "    " << withType(Dia.GlobalOutPtr, ElemT) << " g_C, "
     << withType(Dia.GlobalInPtr, ElemT) << " g_A,\n";
  OS << "    " << withType(Dia.GlobalInPtr, ElemT) << " g_B";
  for (char Name : TC.allIndices())
    OS << ", " << Dia.ExtentType << " " << extentVar(Name);
  OS << ") {\n";

  // Shared-memory slices of the two inputs (x2 when double-buffered).
  int64_t BufCount = Options.DoubleBuffer ? 2 : 1;
  OS << "  " << Dia.SharedQualifier << " " << ElemT << " s_A["
     << BufCount * Plan.sliceElements(Operand::A) << "];\n";
  OS << "  " << Dia.SharedQualifier << " " << ElemT << " s_B["
     << BufCount * Plan.sliceElements(Operand::B) << "];\n";
  OS << "  " << ElemT << " r_C[REGX * REGY];\n";
  OS << "  " << ElemT << " r_A[REGX];\n";
  OS << "  " << ElemT << " r_B[REGY];\n";
  OS << "\n";

  emitStrides(OS, Dia, TC, Operand::A);
  emitStrides(OS, Dia, TC, Operand::B);
  emitStrides(OS, Dia, TC, Operand::C);
  OS << "\n";

  // Per-external tile counts and total tile count (loop-invariant).
  OS << "  " << Dia.OffsetType << " totalBlocks = 1;\n";
  for (const PlanDim &Dim : Plan.gridDims()) {
    OS << "  const " << Dia.OffsetType << " nt_" << Dim.Name << " = ("
       << extentVar(Dim.Name) << " + " << Dim.Tile << " - 1) / " << Dim.Tile
       << ";\n";
    OS << "  totalBlocks *= nt_" << Dim.Name << ";\n";
  }
  OS << "\n";

  // Thread decode over the TBx / TBy lists (loop-invariant).
  OS << "  const int tid = " << Dia.ThreadIdxX << " + TBX * "
     << Dia.ThreadIdxY << ";\n";
  emitDecode(OS, "  ", Dia.ThreadIdxX, "txq", Config.TBx, "t_");
  emitDecode(OS, "  ", Dia.ThreadIdxY, "tyq", Config.TBy, "t_");
  OS << "\n";

  // Sequential steps over the internal iteration space (loop-invariant).
  OS << "  // " << Plan.numSteps() << " steps for the representative size\n";
  OS << "  " << Dia.OffsetType << " numSteps = 1;\n";
  for (const PlanDim &Dim : Plan.stepDims()) {
    OS << "  const " << Dia.OffsetType << " ns_" << Dim.Name << " = ("
       << extentVar(Dim.Name) << " + " << Dim.Tile << " - 1) / " << Dim.Tile
       << ";\n";
    OS << "  numSteps *= ns_" << Dim.Name << ";\n";
  }
  OS << "\n";

  // Grid-stride loop: correct even when the launched grid is smaller than
  // the tile count (arbitrarily large problem sizes).
  OS << "  for (" << Dia.OffsetType << " blkLinear = " << Dia.BlockIdxX
     << "; blkLinear < totalBlocks; blkLinear += " << Dia.GridDimX
     << ") {\n";
  OS << "  // grid decode: per-external tile bases\n";
  if (!Plan.gridDims().empty())
    OS << "  " << Dia.OffsetType << " blk = blkLinear;\n";
  for (size_t I = 0; I < Plan.gridDims().size(); ++I) {
    const PlanDim &Dim = Plan.gridDims()[I];
    OS << "  const " << Dia.OffsetType << " " << baseVar(Dim.Name)
       << " = (blk % nt_" << Dim.Name << ") * " << Dim.Tile << ";";
    // The cursor after the last digit is dead; skip the divide.
    if (I + 1 != Plan.gridDims().size())
      OS << " blk /= nt_" << Dim.Name << ";";
    OS << "\n";
  }
  OS << "\n";
  OS << "  for (int i = 0; i < REGX * REGY; ++i)\n";
  OS << "    r_C[i] = " << (ElemT == "double" ? "0.0" : "0.0f") << ";\n";
  OS << "\n";
  auto emitStepDecode = [&](const std::string &Indent,
                            const std::string &StepExpr) {
    if (Plan.stepDims().empty())
      return;
    OS << Indent << Dia.OffsetType << " sq = " << StepExpr << ";\n";
    for (size_t I = 0; I < Plan.stepDims().size(); ++I) {
      const PlanDim &Dim = Plan.stepDims()[I];
      OS << Indent << "const " << Dia.OffsetType << " "
         << kbaseVar(Dim.Name) << " = (sq % ns_" << Dim.Name << ") * "
         << Dim.Tile << ";";
      if (I + 1 != Plan.stepDims().size())
        OS << " sq /= ns_" << Dim.Name << ";";
      OS << "\n";
    }
  };

  std::string ElemsA = std::to_string(Plan.sliceElements(Operand::A));
  std::string ElemsB = std::to_string(Plan.sliceElements(Operand::B));
  std::string ComputeBaseA, ComputeBaseB;
  if (Options.DoubleBuffer) {
    // Software pipeline: stage step 0, then overlap each step's compute
    // with the loads of step+1 into the other buffer; one barrier/step.
    OS << "  int buf = 0;\n";
    OS << "  {\n";
    emitStepDecode("    ", "0");
    emitSliceLoad(OS, Dia, Plan, Operand::A, "s_A", "g_A", ElemT);
    emitSliceLoad(OS, Dia, Plan, Operand::B, "s_B", "g_B", ElemT);
    OS << "  }\n";
    OS << "  " << Dia.Barrier << "\n";
    ComputeBaseA = "buf * " + ElemsA + " + ";
    ComputeBaseB = "buf * " + ElemsB + " + ";
  }

  OS << "  for (" << Dia.OffsetType << " step = 0; step < numSteps; ++step) "
     << "{\n";
  if (Options.DoubleBuffer) {
    OS << "    if (step + 1 < numSteps) {\n";
    emitStepDecode("      ", "step + 1");
    emitSliceLoad(OS, Dia, Plan, Operand::A, "s_A", "g_A", ElemT,
                  "(1 - buf) * " + ElemsA + " + ");
    emitSliceLoad(OS, Dia, Plan, Operand::B, "s_B", "g_B", ElemT,
                  "(1 - buf) * " + ElemsB + " + ");
    OS << "    }\n";
  } else {
    emitStepDecode("    ", "step");
    emitSliceLoad(OS, Dia, Plan, Operand::A, "s_A", "g_A", ElemT);
    emitSliceLoad(OS, Dia, Plan, Operand::B, "s_B", "g_B", ElemT);
    OS << "    " << Dia.Barrier << "\n";
  }

  // Compute: register staging + outer product, Alg. 1 steps (2) and (3).
  OS << "    for (int kk = 0; kk < TBK; ++kk) {\n";
  emitDecode(OS, "      ", "kk", "kq", Config.TBk, "k_");
  OS << "      // (2) load inputs from SMEM to REG\n";
  OS << "      for (int rx = 0; rx < REGX; ++rx) {\n";
  emitDecode(OS, "        ", "rx", "rxq", Config.RegX, "x_");
  OS << "        r_A[rx] = " << (XIn == Operand::A ? "s_A" : "s_B") << "["
     << (XIn == Operand::A ? ComputeBaseA : ComputeBaseB)
     << smemOffsetExpr(Plan, XIn) << "];\n";
  OS << "      }\n";
  OS << "      for (int ry = 0; ry < REGY; ++ry) {\n";
  emitDecode(OS, "        ", "ry", "ryq", Config.RegY, "y_");
  OS << "        r_B[ry] = " << (XIn == Operand::A ? "s_B" : "s_A") << "["
     << (XIn == Operand::A ? ComputeBaseB : ComputeBaseA)
     << smemOffsetExpr(Plan, YIn) << "];\n";
  OS << "      }\n";
  OS << "      // (3) outer product into the register tile\n";
  OS << "      for (int rx = 0; rx < REGX; ++rx)\n";
  OS << "        for (int ry = 0; ry < REGY; ++ry)\n";
  OS << "          r_C[rx * REGY + ry] += r_A[rx] * r_B[ry];\n";
  OS << "    }\n";
  OS << "    " << Dia.Barrier << "\n";
  if (Options.DoubleBuffer)
    OS << "    buf = 1 - buf;\n";
  OS << "  }\n";
  OS << "\n";

  // Store phase, Alg. 1 step (4).
  OS << "  // (4) store the output from REG to GMEM\n";
  OS << "  for (int rx = 0; rx < REGX; ++rx) {\n";
  emitDecode(OS, "    ", "rx", "rxq", Config.RegX, "x_");
  OS << "    for (int ry = 0; ry < REGY; ++ry) {\n";
  emitDecode(OS, "      ", "ry", "ryq", Config.RegY, "y_");
  for (const StoreDim &Dim : Plan.storeDims())
    OS << "      const " << Dia.OffsetType << " gc_" << Dim.Name << " = "
       << baseVar(Dim.Name) << " + " << roleCoord(Dim.Role, Dim.Name)
       << ";\n";
  OS << "      if (";
  {
    const std::vector<StoreDim> &Dims = Plan.storeDims();
    for (size_t I = 0; I < Dims.size(); ++I) {
      if (I != 0)
        OS << " && ";
      OS << "gc_" << Dims[I].Name << " < " << extentVar(Dims[I].Name);
    }
  }
  OS << ")\n";
  OS << "        g_C[";
  {
    const std::vector<StoreDim> &Dims = Plan.storeDims();
    for (size_t I = 0; I < Dims.size(); ++I) {
      if (I != 0)
        OS << " + ";
      OS << "gc_" << Dims[I].Name << " * "
         << strideVar(Operand::C, Dims[I].Name);
    }
  }
  OS << "] = r_C[rx * REGY + ry];\n";
  OS << "    }\n";
  OS << "  }\n";
  OS << "  } // grid-stride loop\n";
  OS << "}\n";
  OS << "#undef TBX\n#undef TBY\n#undef NTHREADS\n"
     << "#undef REGX\n#undef REGY\n#undef TBK\n";
  Out.KernelSource = OS.str();
  return Out;
}

} // namespace

GeneratedSource cogent::core::emitCuda(const KernelPlan &Plan,
                                       const CodeGenOptions &Options) {
  GeneratedSource Out = emitKernel(Plan, CudaDialect, Options);
  const Contraction &TC = Plan.contraction();

  // Host-side launcher.
  std::ostringstream DS;
  DS << "// Host launcher for " << Out.KernelName << "\n";
  DS << "void launch_" << Out.KernelName << "(\n";
  DS << "    " << Options.ElementType << " *g_C, const "
     << Options.ElementType << " *g_A, const " << Options.ElementType
     << " *g_B";
  for (char Name : TC.allIndices())
    DS << ",\n    long long " << extentVar(Name);
  DS << ") {\n";
  DS << "  long long numBlocks = 1LL;\n";
  for (const PlanDim &Dim : Plan.gridDims())
    DS << "  numBlocks *= (" << extentVar(Dim.Name) << " + " << Dim.Tile
       << " - 1) / " << Dim.Tile << ";\n";
  DS << "  // Cap at the hardware grid limit; the kernel grid-strides.\n";
  DS << "  long long gridX = numBlocks < 2147483647LL ? numBlocks : "
        "2147483647LL;\n";
  DS << "  dim3 block(" << Plan.tbX() << ", " << Plan.tbY() << ", 1);\n";
  DS << "  dim3 grid(static_cast<unsigned>(gridX), 1, 1);\n";
  DS << "  " << Out.KernelName << "<<<grid, block>>>(g_C, g_A, g_B";
  for (char Name : TC.allIndices())
    DS << ", " << extentVar(Name);
  DS << ");\n";
  DS << "}\n";
  Out.DriverSource = DS.str();
  // Chaos site: a truncated emission (interrupted write). Dropping the back
  // half of the kernel leaves unclosed braces for verifySource to find;
  // Cogent::generate re-emits or demotes on that verdict.
  if (support::chaosShouldFire(support::ChaosSite::CodegenTruncate))
    Out.KernelSource.resize(Out.KernelSource.size() / 2);
  maybeMutateSource(Out.KernelSource);
  ++NumKernelsEmitted;
  NumBytesEmitted += Out.KernelSource.size() + Out.DriverSource.size();
  return Out;
}

GeneratedSource cogent::core::emitOpenCl(const KernelPlan &Plan,
                                         const CodeGenOptions &Options) {
  Dialect Dia = OpenClDialect;
  if (Options.ElementType == "double")
    Dia.Prologue = "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n";
  GeneratedSource Out = emitKernel(Plan, Dia, Options);
  const Contraction &TC = Plan.contraction();

  // Host-side launcher: sets arguments and enqueues the NDRange.
  std::ostringstream DS;
  DS << "// Host launcher for " << Out.KernelName << " (OpenCL)\n";
  DS << "cl_int launch_" << Out.KernelName << "(\n";
  DS << "    cl_command_queue Queue, cl_kernel Kernel,\n";
  DS << "    cl_mem g_C, cl_mem g_A, cl_mem g_B";
  for (char Name : TC.allIndices())
    DS << ",\n    cl_long " << extentVar(Name);
  DS << ") {\n";
  DS << "  cl_long numBlocks = 1;\n";
  for (const PlanDim &Dim : Plan.gridDims())
    DS << "  numBlocks *= (" << extentVar(Dim.Name) << " + " << Dim.Tile
       << " - 1) / " << Dim.Tile << ";\n";
  DS << "  cl_uint Arg = 0;\n";
  DS << "  clSetKernelArg(Kernel, Arg++, sizeof(cl_mem), &g_C);\n";
  DS << "  clSetKernelArg(Kernel, Arg++, sizeof(cl_mem), &g_A);\n";
  DS << "  clSetKernelArg(Kernel, Arg++, sizeof(cl_mem), &g_B);\n";
  for (char Name : TC.allIndices())
    DS << "  clSetKernelArg(Kernel, Arg++, sizeof(cl_long), &"
       << extentVar(Name) << ");\n";
  DS << "  size_t Local[2] = {" << Plan.tbX() << ", " << Plan.tbY()
     << "};\n";
  DS << "  size_t Global[2] = {static_cast<size_t>(numBlocks) * "
     << Plan.tbX() << ", " << Plan.tbY() << "};\n";
  DS << "  return clEnqueueNDRangeKernel(Queue, Kernel, 2, nullptr, Global, "
        "Local, 0, nullptr, nullptr);\n";
  DS << "}\n";
  Out.DriverSource = DS.str();
  maybeMutateSource(Out.KernelSource);
  ++NumKernelsEmitted;
  NumBytesEmitted += Out.KernelSource.size() + Out.DriverSource.size();
  return Out;
}
