//===- core/CodeGen.h - CUDA source emission (Alg. 1) ---------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the CUDA C++ kernel realizing a KernelPlan, with the four-phase
/// structure of the paper's Algorithm 1:
///   (1) cooperative GMEM -> SMEM loads of both input slices,
///   (2) SMEM -> register staging of a column/row vector pair,
///   (3) outer-product accumulation into the per-thread register tile,
///   (4) guarded coalesced store of the output slice.
/// Extents are kernel parameters, so the generated code runs for any
/// problem size; tile sizes and mappings are baked in as constants chosen
/// for the representative problem size (paper §III / §IV-B).
///
/// There is no CUDA toolchain in this environment, so the emitted source is
/// validated structurally by tests, while the same KernelPlan is executed
/// semantically by gpu::KernelSimulator (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_CORE_CODEGEN_H
#define COGENT_CORE_CODEGEN_H

#include "core/KernelPlan.h"

#include <string>

namespace cogent {
namespace core {

/// Code-emission knobs.
struct CodeGenOptions {
  /// "double" or "float".
  std::string ElementType = "double";
  /// Base name for the kernel; the contraction string is appended.
  std::string KernelPrefix = "cogent_tc";
  /// Software-pipeline the staging: ping-pong shared-memory buffers let
  /// step i+1's global loads overlap step i's outer products, with one
  /// barrier per step instead of two. Doubles the shared-memory footprint
  /// (account for it when choosing tile sizes).
  bool DoubleBuffer = false;
};

/// Emitted artifact: the kernel plus a host-side launcher.
struct GeneratedSource {
  std::string KernelName;
  /// The __global__ kernel definition.
  std::string KernelSource;
  /// A host launcher computing the grid and invoking the kernel.
  std::string DriverSource;

  std::string full() const { return KernelSource + "\n" + DriverSource; }
};

/// Emits CUDA source for \p Plan.
GeneratedSource emitCuda(const KernelPlan &Plan,
                         const CodeGenOptions &Options = CodeGenOptions());

/// Emits OpenCL C source for \p Plan — the same Algorithm-1 schedule in the
/// OpenCL dialect (__kernel / __local / get_local_id / barrier), realizing
/// the backend the paper's footnote 1 plans as future work. The driver uses
/// the standard clSetKernelArg / clEnqueueNDRangeKernel host sequence.
GeneratedSource emitOpenCl(const KernelPlan &Plan,
                           const CodeGenOptions &Options = CodeGenOptions());

} // namespace core
} // namespace cogent

#endif // COGENT_CORE_CODEGEN_H
