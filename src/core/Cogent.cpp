//===- core/Cogent.cpp ---------------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"

#include "analysis/KernelLint.h"
#include "core/KernelPlan.h"
#include "support/JsonWriter.h"
#include "verify/PlanVerifier.h"

#include <algorithm>
#include <chrono>
#include <new>
#include <sstream>

using namespace cogent;
using namespace cogent::core;
using cogent::ir::Contraction;

COGENT_COUNTER(NumGenerateRuns, "cogent.generate-runs",
               "Cogent::generate invocations");
COGENT_COUNTER(NumFallbackMinimal, "cogent.fallback-minimal-tile",
               "runs that fell back to the minimal-tile configuration");
COGENT_COUNTER(NumFallbackTtgt, "cogent.fallback-ttgt",
               "runs that fell back to the TTGT baseline plan");
COGENT_COUNTER(NumSourceTruncations, "cogent.source-truncations",
               "runs whose emission was stopped by MaxSourceBytes");
COGENT_COUNTER(NumKernelsRanked, "cogent.kernels-ranked",
               "candidate kernels scored by the cost model ranking");
COGENT_COUNTER(NumEnumerationsAborted, "cogent.enumerations-aborted",
               "enumerations that died mid-search (allocation failure) and "
               "restarted on the fallback chain");
COGENT_COUNTER(NumVerifierDemotions, "cogent.verifier-demotions",
               "fallback-rung demotions caused by verification failures");
COGENT_COUNTER(NumLintRejections, "lint.rejections",
               "emitted sources rejected by the strict KernelLint gate");
COGENT_COUNTER(NumRaceRejections, "race.rejections",
               "strict-gate rejections carrying a race-prover error");

const char *cogent::core::fallbackLevelName(FallbackLevel Level) {
  switch (Level) {
  case FallbackLevel::None:
    return "none";
  case FallbackLevel::MinimalTile:
    return "minimal-tile";
  case FallbackLevel::TtgtBaseline:
    return "ttgt";
  }
  assert(false && "unknown fallback level");
  return "?";
}

std::optional<FallbackLevel>
cogent::core::fallbackLevelFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumFallbackLevels; ++I) {
    FallbackLevel Level = static_cast<FallbackLevel>(I);
    if (Name == fallbackLevelName(Level))
      return Level;
  }
  return std::nullopt;
}

namespace {

/// Fallback level 1: a directly constructed configuration — the output FVI
/// on TBx with the largest power-of-two tile the device accepts, nothing
/// else mapped, 1x1 register tiles. Structurally valid for every
/// well-formed contraction; returns false only when even the one-thread
/// variant exceeds the device's hardware limits.
bool buildMinimalConfig(const Contraction &TC, const gpu::DeviceSpec &Device,
                        unsigned ElementSize, KernelConfig *Out) {
  char OutFvi = TC.fvi(ir::Operand::C);
  for (int64_t Tile : {int64_t(32), int64_t(16), int64_t(8), int64_t(4),
                       int64_t(2), int64_t(1)}) {
    KernelConfig Config;
    Config.XInput = TC.inputContaining(OutFvi);
    Config.TBx = {{OutFvi, std::min<int64_t>(TC.extent(OutFvi), Tile)}};
    assert(Config.validate(TC).empty() && "minimal config must validate");
    if (Config.threadsPerBlock() > Device.MaxThreadsPerBlock ||
        Config.smemBytes(ElementSize) >
            static_cast<int64_t>(Device.SharedMemPerBlock) ||
        Config.registersPerThread(ElementSize) > Device.MaxRegistersPerThread)
      continue;
    *Out = std::move(Config);
    return true;
  }
  return false;
}

/// Fallback level 2: the TTGT evaluation plan. The contraction is
/// matricized exactly as baselines::planTtgt does — externals of A fuse
/// into M, externals of B into N, internals into K — yielding the GEMM
/// contraction "ab-ac-cb" (a=M, b=N, c=K; extent-1 dimensions keep the
/// spec well-formed when a side is empty). The kernel emitted for it is a
/// reference schedule; a production runtime would hand this plan to
/// transpose + library GEMM, which is why no device hardware check is
/// applied here: this rung must never fail.
Contraction buildTtgtGemm(const Contraction &TC) {
  int64_t M = 1, N = 1, K = 1;
  for (char Name : TC.allIndices()) {
    switch (TC.kindOf(Name)) {
    case ir::IndexKind::ExternalA:
      M *= TC.extent(Name);
      break;
    case ir::IndexKind::ExternalB:
      N *= TC.extent(Name);
      break;
    case ir::IndexKind::Internal:
      K *= TC.extent(Name);
      break;
    }
  }
  ErrorOr<Contraction> Gemm =
      Contraction::parse("ab-ac-cb", {{'a', M}, {'b', N}, {'c', K}});
  assert(Gemm.hasValue() && "matricized GEMM of a valid contraction must "
                            "be valid");
  return *Gemm;
}

} // namespace

ErrorOr<GenerationResult> Cogent::generate(const Contraction &TC,
                                           CogentOptions Options) const {
  auto Start = std::chrono::steady_clock::now();
  support::ScopedTraceActivation Activation(Options.Trace);

  // Never trust the caller's device description: a hostile or corrupted
  // spec is a typed error here, not nonsense plans downstream.
  if (ErrorOr<void> DeviceCheck = Device.validate(); !DeviceCheck)
    return DeviceCheck.takeError().withContext("generating " + TC.toString());

  // Per-run counter attribution: the scope only sees this thread's
  // increments, so concurrent generate() calls never bleed into each
  // other's GenerationResult::Counters.
  support::CounterScope RunCounters;
  ++NumGenerateRuns;
  support::TraceSpan GenerateSpan("cogent.generate");
  GenerateSpan.arg("contraction", TC.toStringWithExtents());
  GenerateSpan.arg("device", Device.Name);

  // Install this run's fault injector, if chaos was requested. With no
  // sites enabled the pipeline's chaos hooks stay disarmed.
  std::optional<support::FaultInjector> Injector;
  if (Options.Chaos.enabled())
    Injector.emplace(Options.Chaos);
  support::ScopedChaosActivation ChaosActivation(Injector ? &*Injector
                                                          : nullptr);

  Options.Enumeration.ElementSize = Options.ElementSize;
  Options.Enumeration.MaxConfigs = Options.Budget.MaxConfigs;
  Options.Enumeration.DeadlineMs = Options.Budget.DeadlineMs;
  GenerationResult Result;
  std::vector<KernelConfig> Configs;
  // Degraded entry (CogentOptions::StartRung): a caller out of deadline
  // budget skips the expensive search and starts the chain at a cheap
  // rung directly — enumeration never runs, so its cost is exactly zero.
  if (Options.StartRung == FallbackLevel::None) {
    support::TraceSpan Span("cogent.enumerate");
    try {
      Enumerator Enum(TC, Device, Options.Enumeration);
      Configs = Enum.enumerate(&Result.Stats);
    } catch (const std::bad_alloc &) {
      // Allocation failure mid-search (real or injected): discard the
      // partial search and continue on the fallback chain — the no-kernel
      // guarantee outranks the lost candidates.
      Configs.clear();
      Result.EnumerationAborted = true;
      ++NumEnumerationsAborted;
      support::traceInstant("cogent.enumeration-aborted");
    }
    Span.arg("survivors", std::to_string(Configs.size()));
    Result.Phases.EnumerateMs = Span.elapsedMs();
  } else {
    support::traceInstant(
        "cogent.degraded-start",
        {{"rung", fallbackLevelName(Options.StartRung)}});
  }

  // Chaos site: the working device limits shrink *after* enumeration
  // pruned against the original ones — a driver reporting different
  // numbers than the search assumed. Survivors that no longer fit must now
  // be caught by the verifier and demoted, not emitted.
  gpu::DeviceSpec Run = Device;
  if (support::chaosShouldFire(support::ChaosSite::DeviceMutate)) {
    Run.Name += "+chaos";
    Run.SharedMemPerBlock = std::max(1024u, Run.SharedMemPerBlock / 2);
    Run.SharedMemPerSM = std::max(Run.SharedMemPerBlock,
                                  Run.SharedMemPerSM / 2);
    Run.MaxThreadsPerBlock = std::max(32u, Run.MaxThreadsPerBlock / 2);
    Run.MaxRegistersPerThread = std::max(40u, Run.MaxRegistersPerThread / 2);
    Result.DeviceMutated = true;
    assert(Run.validate().hasValue() && "chaos mutation must stay valid");
  }

  const verify::PlanVerifier Verifier(Run, Options.ElementSize);
  auto NoteRejection = [&](const Error &E) {
    ++Result.VerifierRejections;
    if (Result.VerifierNotes.size() < 8)
      Result.VerifierNotes.push_back(E.render());
    support::traceInstant("cogent.verifier-reject", {{"error", E.message()}});
  };

  struct Ranked {
    KernelConfig Config;
    TransactionCost Cost;
    gpu::OccupancyResult Occ;
    /// Occupancy under planRegisterPressure; equals Occ unless
    /// PressureAwareRanking recomputed it.
    gpu::OccupancyResult RankOcc;
  };

  // Rank the candidates that pass verification by modeled DRAM
  // transactions; tie-break toward higher occupancy, then more threads
  // (determinism). A failed cost-sanity check re-estimates (a transiently
  // lying cost model costs retries, not the candidate); a failed plan
  // check drops the candidate outright.
  auto rankVerified = [&](std::vector<KernelConfig> &Candidates,
                          const Contraction &RankTC) {
    support::TraceSpan Span("cogent.rank");
    Span.arg("candidates", std::to_string(Candidates.size()));
    NumKernelsRanked += Candidates.size();
    constexpr unsigned CostRetries = 4;
    std::vector<Ranked> Ranking;
    Ranking.reserve(Candidates.size());
    for (KernelConfig &Config : Candidates) {
      KernelPlan Plan(RankTC, Config);
      if (ErrorOr<void> PlanCheck = Verifier.verifyPlan(Plan); !PlanCheck) {
        NoteRejection(PlanCheck.error());
        continue;
      }
      Ranked R;
      bool CostOk = false;
      for (unsigned Attempt = 0; Attempt < CostRetries && !CostOk;
           ++Attempt) {
        R.Cost = estimateTransactions(Plan, Options.ElementSize,
                                      Run.TransactionBytes);
        ErrorOr<void> CostCheck = Verifier.verifyCost(Plan, R.Cost);
        CostOk = CostCheck.hasValue();
        if (!CostOk)
          NoteRejection(CostCheck.error());
      }
      if (!CostOk)
        continue;
      R.Occ = planOccupancy(Plan, Run, Options.ElementSize);
      R.RankOcc = Options.PressureAwareRanking
                      ? planOccupancyUnderPressure(Plan, Run,
                                                   Options.ElementSize)
                      : R.Occ;
      R.Config = std::move(Config);
      Ranking.push_back(std::move(R));
    }
    // Pressure-aware mode sinks configurations whose refined register
    // footprint cannot be resident at all, and breaks cost ties with the
    // pressure-derived occupancy instead of the flat one.
    std::stable_sort(Ranking.begin(), Ranking.end(),
                     [](const Ranked &X, const Ranked &Y) {
                       bool XUnfit = X.RankOcc.BlocksPerSM == 0;
                       bool YUnfit = Y.RankOcc.BlocksPerSM == 0;
                       if (XUnfit != YUnfit)
                         return YUnfit;
                       if (X.Cost.total() != Y.Cost.total())
                         return X.Cost.total() < Y.Cost.total();
                       if (X.RankOcc.Occupancy != Y.RankOcc.Occupancy)
                         return X.RankOcc.Occupancy > Y.RankOcc.Occupancy;
                       return X.Config.threadsPerBlock() >
                              Y.Config.threadsPerBlock();
                     });
    Result.Phases.RankMs += Span.elapsedMs();
    return Ranking;
  };

  gpu::Calibration Calib = gpu::makeCalibration(Run);
  CodeGenOptions CGOptions;
  CGOptions.ElementType = Options.ElementSize == 8 ? "double" : "float";

  // Post-emit lint gate, symmetric with the verifier: sync the run's
  // element and transaction sizes into the analysis.
  analysis::LintOptions LintOpts = Options.Lint;
  LintOpts.ElementSize = Options.ElementSize;
  LintOpts.TransactionBytes = Run.TransactionBytes;
  LintOpts.RegisterBudget = Run.MaxRegistersPerThread;
  Result.PressureRanking = Options.PressureAwareRanking;
  auto NoteLintRejection = [&](const analysis::LintReport &Report) {
    ++Result.LintRejections;
    ++NumLintRejections;
    if (Result.LintNotes.size() < 8 && !Report.Findings.empty())
      Result.LintNotes.push_back(Report.Findings.front().render());
    support::traceInstant(
        "cogent.lint-reject",
        {{"findings", std::to_string(Report.Findings.size())}});
  };

  // Emit the top-K verified plans. Every emission is source-verified; a
  // failed emission (e.g. injected truncation) is retried before the
  // candidate is given up on. Returns true when at least one kernel was
  // materialized — the rung succeeded.
  auto emitVerified = [&](std::vector<Ranked> &Ranking,
                          const Contraction &EmitTC) {
    support::TraceSpan Span("cogent.emit");
    constexpr unsigned EmitRetries = 6;
    size_t Keep = std::min(std::max<size_t>(Options.TopK, 1), Ranking.size());
    uint64_t SourceBytes = 0;
    for (size_t I = 0; I < Keep; ++I) {
      // The byte budget truncates the tail, never the head: one kernel is
      // always materialized.
      if (!Result.Kernels.empty() && Options.Budget.MaxSourceBytes != 0 &&
          SourceBytes >= Options.Budget.MaxSourceBytes) {
        Result.SourceTruncated = true;
        ++NumSourceTruncations;
        support::traceInstant(
            "cogent.budget-trip",
            {{"budget", "max-source-bytes"},
             {"emitted", std::to_string(Result.Kernels.size())},
             {"bytes", std::to_string(SourceBytes)}});
        break;
      }
      GeneratedKernel Kernel;
      Kernel.Config = Ranking[I].Config;
      Kernel.Cost = Ranking[I].Cost;
      Kernel.Occupancy = Ranking[I].Occ;
      KernelPlan Plan(EmitTC, Kernel.Config);
      Kernel.PlanPressure = planRegisterPressure(Plan, Options.ElementSize);
      bool SourceOk = false;
      std::vector<analysis::LintFinding> Accepted;
      for (unsigned Attempt = 0; Attempt < EmitRetries && !SourceOk;
           ++Attempt) {
        Kernel.Source = emitCuda(Plan, CGOptions);
        ErrorOr<void> SourceCheck = Verifier.verifySource(Kernel.Source);
        SourceOk = SourceCheck.hasValue();
        if (!SourceOk) {
          NoteRejection(SourceCheck.error());
          continue;
        }
        if (LintOpts.Mode == analysis::LintMode::Off)
          continue;
        analysis::LintReport Report =
            analysis::lintKernel(Plan, Kernel.Source.KernelSource, LintOpts);
        uint64_t RaceErrors = 0;
        for (const analysis::LintFinding &F : Report.Findings) {
          if (!analysis::isRacePass(F.Pass))
            continue;
          ++Result.RaceFindings;
          RaceErrors += F.Severity == analysis::LintSeverity::Error;
        }
        if (LintOpts.Mode == analysis::LintMode::Strict &&
            Report.errorCount() > 0) {
          // A lint rejection re-emits like a verifier rejection; when the
          // retries run out the rung demotes down the fallback chain.
          SourceOk = false;
          NoteLintRejection(Report);
          if (RaceErrors > 0) {
            ++Result.RaceRejections;
            ++NumRaceRejections;
            support::traceInstant(
                "cogent.race-reject",
                {{"findings", std::to_string(RaceErrors)}});
          }
          continue;
        }
        Kernel.SourcePressure = Report.SourcePressure;
        Accepted = std::move(Report.Findings);
      }
      if (!SourceOk)
        continue;
      Result.LintFindings.insert(Result.LintFindings.end(),
                                 Accepted.begin(), Accepted.end());
      Kernel.Predicted = gpu::estimateKernelTime(
          Run, Calib, makeKernelProfile(Plan, Run, Options.ElementSize));
      SourceBytes += Kernel.Source.KernelSource.size() +
                     Kernel.Source.DriverSource.size();
      Result.Kernels.push_back(std::move(Kernel));
    }
    Span.arg("kernels", std::to_string(Result.Kernels.size()));
    Span.arg("bytes", std::to_string(SourceBytes));
    Result.Phases.EmitMs += Span.elapsedMs();
    return !Result.Kernels.empty();
  };

  // The guaranteed-fallback chain, each rung gated by the verifier:
  // pruned search -> minimal tiles -> TTGT. A rung that produces no
  // verified, emitted kernel demotes to the next.
  bool Done = false;
  if (!Configs.empty()) {
    std::vector<Ranked> Ranking = rankVerified(Configs, TC);
    if (!Ranking.empty())
      Done = emitVerified(Ranking, TC);
    if (!Done)
      ++NumVerifierDemotions;
  }

  if (!Done && Options.StartRung != FallbackLevel::TtgtBaseline) {
    support::TraceSpan Span("cogent.fallback");
    KernelConfig Minimal;
    if (buildMinimalConfig(TC, Run, Options.ElementSize, &Minimal)) {
      Result.Fallback = FallbackLevel::MinimalTile;
      ++NumFallbackMinimal;
      support::traceInstant(
          "cogent.fallback-rung",
          {{"level", fallbackLevelName(FallbackLevel::MinimalTile)}});
      std::vector<KernelConfig> One;
      One.push_back(std::move(Minimal));
      std::vector<Ranked> Ranking = rankVerified(One, TC);
      if (!Ranking.empty())
        Done = emitVerified(Ranking, TC);
      if (!Done)
        ++NumVerifierDemotions;
    }
    Result.Phases.FallbackMs += Span.elapsedMs();
  }

  if (!Done) {
    support::TraceSpan Span("cogent.fallback");
    Result.Fallback = FallbackLevel::TtgtBaseline;
    ++NumFallbackTtgt;
    Result.FallbackContraction = buildTtgtGemm(TC);
    const Contraction &Gemm = *Result.FallbackContraction;
    support::traceInstant(
        "cogent.fallback-rung",
        {{"level", fallbackLevelName(FallbackLevel::TtgtBaseline)}});
    char GemmFvi = Gemm.fvi(ir::Operand::C);
    KernelConfig GemmConfig;
    GemmConfig.XInput = Gemm.inputContaining(GemmFvi);
    GemmConfig.TBx = {{GemmFvi, 1}};
    assert(GemmConfig.validate(Gemm).empty());
    std::vector<KernelConfig> One;
    One.push_back(std::move(GemmConfig));
    std::vector<Ranked> Ranking = rankVerified(One, Gemm);
    if (!Ranking.empty())
      Done = emitVerified(Ranking, Gemm);
    Result.Phases.FallbackMs += Span.elapsedMs();
  }

  if (!Done)
    // Even the TTGT rung could not produce a verified kernel — an
    // unrescued verification failure (e.g. a device whose limits are valid
    // but below any kernel's footprint).
    return Error(ErrorCode::VerificationFailed,
                 "no kernel for contraction " + TC.toString() +
                     " passed verification on device " + Run.Name + " (" +
                     std::to_string(Result.VerifierRejections) +
                     " rejections)");
  assert(!Result.Kernels.empty() && "generation must materialize a kernel");

  auto End = std::chrono::steady_clock::now();
  Result.ElapsedMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  Result.Counters = RunCounters.take();
  return Result;
}

std::string cogent::core::explainKernel(const Contraction &TC,
                                        const GeneratedKernel &Kernel,
                                        const gpu::DeviceSpec &Device,
                                        unsigned ElementSize) {
  const KernelConfig &Config = Kernel.Config;
  KernelPlan Plan(TC, Config);
  std::ostringstream OS;

  OS << "contraction " << TC.toStringWithExtents() << " on " << Device.Name
     << "\n";
  OS << "mapping     " << Config.toString() << "\n\n";

  OS << "  idx  kind       reuses  mapped-to  tile  extent\n";
  auto dimensionOf = [&](char Name) -> std::string {
    for (const auto &[List, Label] :
         std::initializer_list<std::pair<const std::vector<IndexTile> &,
                                         const char *>>{
             {Config.TBx, "TBx"},
             {Config.TBy, "TBy"},
             {Config.RegX, "REGx"},
             {Config.RegY, "REGy"},
             {Config.TBk, "TBk"}})
      for (const IndexTile &T : List)
        if (T.Name == Name)
          return Label;
    return TC.isExternal(Name) ? "grid" : "serial";
  };
  for (char Name : TC.allIndices()) {
    const char *Kind = TC.isInternal(Name) ? "internal" : "external";
    OS << "  " << Name << "    " << Kind
       << (TC.isInternal(Name) ? "   " : "   ") << ir::operandName(
           TC.reuseTensor(Name))
       << "       " << dimensionOf(Name);
    OS << std::string(11 - std::min<size_t>(10, dimensionOf(Name).size()),
                      ' ');
    OS << Config.tileOf(Name) << "     " << TC.extent(Name) << "\n";
  }

  OS << "\nblock       " << Plan.tbX() << " x " << Plan.tbY()
     << " threads, register tile " << Plan.regX() << " x " << Plan.regY()
     << ", TBk " << Plan.tbk() << "\n";
  OS << "grid        " << Plan.numBlocks() << " blocks, " << Plan.numSteps()
     << " steps each\n";
  OS << "smem        " << Config.smemBytes(ElementSize)
     << " bytes/block; ~" << Config.registersPerThread(ElementSize)
     << " regs/thread\n";
  OS << "occupancy   " << 100.0 * Kernel.Occupancy.Occupancy << "% ("
     << Kernel.Occupancy.BlocksPerSM << " blocks/SM, limited by "
     << Kernel.Occupancy.Limiter << ")\n";
  OS << "traffic     " << Kernel.Cost.LoadA << " (A) + " << Kernel.Cost.LoadB
     << " (B) + " << Kernel.Cost.StoreC << " (C) = " << Kernel.Cost.total()
     << " transactions\n";
  OS << "roofline    " << Kernel.Predicted.Gflops << " GFLOPS ("
     << Kernel.Predicted.Bound << " bound), " << Kernel.Predicted.TimeMs
     << " ms\n";
  return OS.str();
}

ErrorOr<GenerationResult>
Cogent::generate(const std::string &Spec,
                 const std::vector<std::pair<char, int64_t>> &Extents,
                 CogentOptions Options) const {
  support::ScopedTraceActivation Activation(Options.Trace);
  double ParseMs = 0.0;
  ErrorOr<Contraction> TC = [&]() {
    support::TraceSpan Span("cogent.parse");
    Span.arg("spec", Spec);
    ErrorOr<Contraction> Parsed = Contraction::parse(Spec, Extents);
    ParseMs = Span.elapsedMs();
    return Parsed;
  }();
  if (!TC)
    return TC.takeError().withContext("parsing contraction \"" + Spec + "\"");
  ErrorOr<GenerationResult> Result = generate(*TC, std::move(Options));
  if (Result)
    Result->Phases.ParseMs = ParseMs;
  return Result;
}

std::string cogent::core::renderMetricsJson(const Contraction &TC,
                                            const GenerationResult &Result,
                                            const gpu::DeviceSpec &Device) {
  support::JsonWriter W;
  W.beginObject();
  W.member("contraction", TC.toString());
  W.key("extents");
  W.beginObject();
  for (char Name : TC.allIndices())
    W.member(std::string(1, Name), static_cast<uint64_t>(TC.extent(Name)));
  W.endObject();
  W.member("device", Device.Name);
  W.member("elapsed_ms", Result.ElapsedMs);

  W.key("phases");
  W.beginObject();
  W.member("parse_ms", Result.Phases.ParseMs);
  W.member("enumerate_ms", Result.Phases.EnumerateMs);
  W.member("fallback_ms", Result.Phases.FallbackMs);
  W.member("rank_ms", Result.Phases.RankMs);
  W.member("emit_ms", Result.Phases.EmitMs);
  W.endObject();

  W.key("stats");
  W.beginObject();
  W.member("raw_configs", Result.Stats.RawConfigs);
  W.member("examined", Result.Stats.Examined);
  W.member("invalid", Result.Stats.InvalidConfigs);
  W.member("hardware_pruned", Result.Stats.HardwarePruned);
  W.member("performance_pruned", Result.Stats.PerformancePruned);
  W.member("survivors", Result.Stats.Survivors);
  W.member("pruned_fraction", Result.Stats.prunedFraction());
  W.member("status", searchStatusName(Result.Stats.Status));
  W.endObject();

  W.member("fallback", fallbackLevelName(Result.Fallback));
  W.member("source_truncated", Result.SourceTruncated);
  W.member("verifier_rejections", Result.VerifierRejections);
  W.member("enumeration_aborted", Result.EnumerationAborted);
  W.member("device_mutated", Result.DeviceMutated);
  W.member("lint_rejections", Result.LintRejections);
  W.member("race_findings", Result.RaceFindings);
  W.member("race_rejections", Result.RaceRejections);
  W.member("pressure_ranking", Result.PressureRanking);

  W.key("lint_findings");
  W.beginArray();
  for (const analysis::LintFinding &Finding : Result.LintFindings) {
    W.beginObject();
    W.member("pass", analysis::lintPassName(Finding.Pass));
    W.member("severity", analysis::lintSeverityName(Finding.Severity));
    W.member("line", static_cast<uint64_t>(Finding.Line));
    W.member("message", Finding.Message);
    W.endObject();
  }
  W.endArray();

  W.key("kernels");
  W.beginArray();
  for (const GeneratedKernel &Kernel : Result.Kernels) {
    W.beginObject();
    W.member("config", Kernel.Config.toString());
    W.member("modeled_transactions", Kernel.Cost.total());
    W.member("transactions_a", Kernel.Cost.LoadA);
    W.member("transactions_b", Kernel.Cost.LoadB);
    W.member("transactions_c", Kernel.Cost.StoreC);
    W.member("occupancy", Kernel.Occupancy.Occupancy);
    W.member("occupancy_limiter", Kernel.Occupancy.Limiter);
    W.member("register_pressure_plan",
             static_cast<uint64_t>(Kernel.PlanPressure));
    W.member("register_pressure_source",
             static_cast<uint64_t>(Kernel.SourcePressure));
    W.member("predicted_gflops", Kernel.Predicted.Gflops);
    W.member("predicted_time_ms", Kernel.Predicted.TimeMs);
    W.member("bound", Kernel.Predicted.Bound);
    W.member("source_bytes",
             static_cast<uint64_t>(Kernel.Source.KernelSource.size() +
                                   Kernel.Source.DriverSource.size()));
    W.endObject();
  }
  W.endArray();

  W.key("counters");
  support::writeCountersJson(W, Result.Counters);
  W.endObject();
  return W.take();
}
