//===- core/Cogent.cpp ---------------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"

#include "core/KernelPlan.h"

#include <algorithm>
#include <chrono>
#include <sstream>

using namespace cogent;
using namespace cogent::core;
using cogent::ir::Contraction;

ErrorOr<GenerationResult> Cogent::generate(const Contraction &TC,
                                           CogentOptions Options) const {
  auto Start = std::chrono::steady_clock::now();

  Options.Enumeration.ElementSize = Options.ElementSize;
  Enumerator Enum(TC, Device, Options.Enumeration);
  GenerationResult Result;
  std::vector<KernelConfig> Configs = Enum.enumerate(&Result.Stats);
  if (Configs.empty())
    return Error("no valid kernel configuration for contraction " +
                 TC.toString());

  // Rank every surviving configuration by modeled DRAM transactions;
  // tie-break toward higher occupancy, then more threads (determinism).
  struct Ranked {
    KernelConfig Config;
    TransactionCost Cost;
    gpu::OccupancyResult Occ;
  };
  std::vector<Ranked> Ranking;
  Ranking.reserve(Configs.size());
  for (KernelConfig &Config : Configs) {
    KernelPlan Plan(TC, Config);
    Ranked R;
    R.Cost = estimateTransactions(Plan, Options.ElementSize,
                                  Device.TransactionBytes);
    R.Occ = planOccupancy(Plan, Device, Options.ElementSize);
    R.Config = std::move(Config);
    Ranking.push_back(std::move(R));
  }
  std::stable_sort(Ranking.begin(), Ranking.end(),
                   [](const Ranked &X, const Ranked &Y) {
                     if (X.Cost.total() != Y.Cost.total())
                       return X.Cost.total() < Y.Cost.total();
                     if (X.Occ.Occupancy != Y.Occ.Occupancy)
                       return X.Occ.Occupancy > Y.Occ.Occupancy;
                     return X.Config.threadsPerBlock() >
                            Y.Config.threadsPerBlock();
                   });

  size_t Keep = std::min(std::max<size_t>(Options.TopK, 1), Ranking.size());
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  CodeGenOptions CGOptions;
  CGOptions.ElementType = Options.ElementSize == 8 ? "double" : "float";
  for (size_t I = 0; I < Keep; ++I) {
    GeneratedKernel Kernel;
    Kernel.Config = Ranking[I].Config;
    Kernel.Cost = Ranking[I].Cost;
    Kernel.Occupancy = Ranking[I].Occ;
    KernelPlan Plan(TC, Kernel.Config);
    Kernel.Source = emitCuda(Plan, CGOptions);
    Kernel.Predicted = gpu::estimateKernelTime(
        Device, Calib, makeKernelProfile(Plan, Device, Options.ElementSize));
    Result.Kernels.push_back(std::move(Kernel));
  }

  auto End = std::chrono::steady_clock::now();
  Result.ElapsedMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  return Result;
}

std::string cogent::core::explainKernel(const Contraction &TC,
                                        const GeneratedKernel &Kernel,
                                        const gpu::DeviceSpec &Device,
                                        unsigned ElementSize) {
  const KernelConfig &Config = Kernel.Config;
  KernelPlan Plan(TC, Config);
  std::ostringstream OS;

  OS << "contraction " << TC.toStringWithExtents() << " on " << Device.Name
     << "\n";
  OS << "mapping     " << Config.toString() << "\n\n";

  OS << "  idx  kind       reuses  mapped-to  tile  extent\n";
  auto dimensionOf = [&](char Name) -> std::string {
    for (const auto &[List, Label] :
         std::initializer_list<std::pair<const std::vector<IndexTile> &,
                                         const char *>>{
             {Config.TBx, "TBx"},
             {Config.TBy, "TBy"},
             {Config.RegX, "REGx"},
             {Config.RegY, "REGy"},
             {Config.TBk, "TBk"}})
      for (const IndexTile &T : List)
        if (T.Name == Name)
          return Label;
    return TC.isExternal(Name) ? "grid" : "serial";
  };
  for (char Name : TC.allIndices()) {
    const char *Kind = TC.isInternal(Name) ? "internal" : "external";
    OS << "  " << Name << "    " << Kind
       << (TC.isInternal(Name) ? "   " : "   ") << ir::operandName(
           TC.reuseTensor(Name))
       << "       " << dimensionOf(Name);
    OS << std::string(11 - std::min<size_t>(10, dimensionOf(Name).size()),
                      ' ');
    OS << Config.tileOf(Name) << "     " << TC.extent(Name) << "\n";
  }

  OS << "\nblock       " << Plan.tbX() << " x " << Plan.tbY()
     << " threads, register tile " << Plan.regX() << " x " << Plan.regY()
     << ", TBk " << Plan.tbk() << "\n";
  OS << "grid        " << Plan.numBlocks() << " blocks, " << Plan.numSteps()
     << " steps each\n";
  OS << "smem        " << Config.smemBytes(ElementSize)
     << " bytes/block; ~" << Config.registersPerThread(ElementSize)
     << " regs/thread\n";
  OS << "occupancy   " << 100.0 * Kernel.Occupancy.Occupancy << "% ("
     << Kernel.Occupancy.BlocksPerSM << " blocks/SM, limited by "
     << Kernel.Occupancy.Limiter << ")\n";
  OS << "traffic     " << Kernel.Cost.LoadA << " (A) + " << Kernel.Cost.LoadB
     << " (B) + " << Kernel.Cost.StoreC << " (C) = " << Kernel.Cost.total()
     << " transactions\n";
  OS << "roofline    " << Kernel.Predicted.Gflops << " GFLOPS ("
     << Kernel.Predicted.Bound << " bound), " << Kernel.Predicted.TimeMs
     << " ms\n";
  return OS.str();
}

ErrorOr<GenerationResult>
Cogent::generate(const std::string &Spec,
                 const std::vector<std::pair<char, int64_t>> &Extents,
                 CogentOptions Options) const {
  ErrorOr<Contraction> TC = Contraction::parse(Spec, Extents);
  if (!TC)
    return Error(TC.errorMessage());
  return generate(*TC, std::move(Options));
}
