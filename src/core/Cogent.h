//===- core/Cogent.h - Top-level code generator API ------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: given a contraction (with representative problem
/// size) and a target device, enumerate the pruned configuration space,
/// rank it with the DRAM-transaction cost model, and emit CUDA source for
/// the winning configuration(s). This is the whole paper in one call.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_CORE_COGENT_H
#define COGENT_CORE_COGENT_H

#include "core/CodeGen.h"
#include "core/CostModel.h"
#include "core/Enumerator.h"
#include "core/KernelConfig.h"
#include "gpu/DeviceSpec.h"
#include "gpu/PerfModel.h"
#include "support/ErrorOr.h"

#include <string>
#include <vector>

namespace cogent {
namespace core {

/// Options for one generation run.
struct CogentOptions {
  /// 8 = double (paper Figs. 4/5), 4 = float (paper Figs. 6-8).
  unsigned ElementSize = 8;
  /// How many top-ranked kernels to materialize (the paper auto-tunes among
  /// a small model-selected set; 1 = pure model-driven choice).
  size_t TopK = 1;
  /// Enumeration knobs; ElementSize is synced from above.
  EnumerationOptions Enumeration;
};

/// One materialized kernel: its mapping, emitted source and model outputs.
struct GeneratedKernel {
  KernelConfig Config;
  GeneratedSource Source;
  TransactionCost Cost;
  gpu::OccupancyResult Occupancy;
  gpu::PerfEstimate Predicted;
};

/// Result of Cogent::generate.
struct GenerationResult {
  /// Ranked best-first by modeled transaction cost.
  std::vector<GeneratedKernel> Kernels;
  EnumerationStats Stats;
  /// Wall-clock spent enumerating + ranking + emitting, milliseconds (the
  /// paper's model-driven search takes seconds where TC's autotuner takes
  /// hours).
  double ElapsedMs = 0.0;

  const GeneratedKernel &best() const { return Kernels.front(); }
};

/// The code generator, bound to one target device.
class Cogent {
public:
  explicit Cogent(gpu::DeviceSpec Device) : Device(std::move(Device)) {}

  const gpu::DeviceSpec &device() const { return Device; }

  /// Runs enumeration, cost-model ranking and code emission for \p TC.
  /// Fails only for contractions with no valid configuration (never the
  /// case for well-formed inputs).
  ErrorOr<GenerationResult> generate(const ir::Contraction &TC,
                                     CogentOptions Options =
                                         CogentOptions()) const;

  /// Convenience: parse + generate.
  ErrorOr<GenerationResult>
  generate(const std::string &Spec,
           const std::vector<std::pair<char, int64_t>> &Extents,
           CogentOptions Options = CogentOptions()) const;

private:
  gpu::DeviceSpec Device;
};

/// Renders a human-readable diagnostic of one generated kernel: the per-
/// index mapping table (kind, reuse tensor, mapped dimension, tile), the
/// resource footprint and occupancy limiter, the modeled traffic breakdown
/// and the roofline verdict. Used by the CLI's --explain and handy when
/// debugging surprising mapping choices.
std::string explainKernel(const ir::Contraction &TC,
                          const GeneratedKernel &Kernel,
                          const gpu::DeviceSpec &Device,
                          unsigned ElementSize = 8);

} // namespace core
} // namespace cogent

#endif // COGENT_CORE_COGENT_H
