//===- core/Cogent.h - Top-level code generator API ------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: given a contraction (with representative problem
/// size) and a target device, enumerate the pruned configuration space,
/// rank it with the DRAM-transaction cost model, and emit CUDA source for
/// the winning configuration(s). This is the whole paper in one call.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_CORE_COGENT_H
#define COGENT_CORE_COGENT_H

#include "analysis/KernelLint.h"
#include "core/CodeGen.h"
#include "core/CostModel.h"
#include "core/Enumerator.h"
#include "core/KernelConfig.h"
#include "gpu/DeviceSpec.h"
#include "gpu/PerfModel.h"
#include "support/Counters.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"
#include "support/Trace.h"

#include <cassert>
#include <optional>
#include <string>
#include <vector>

namespace cogent {
namespace core {

/// Which rung of the guaranteed-fallback chain produced the result.
enum class FallbackLevel {
  /// The normal enumerate -> rank -> emit pipeline.
  None,
  /// Enumeration (even relaxed) found nothing; a minimal thread-block
  /// configuration with 1x1 register tiles was constructed directly.
  MinimalTile,
  /// Even the minimal configuration violates the device's limits; the
  /// result is the TTGT evaluation plan: a kernel for the matricized GEMM
  /// (spec "ab-ac-cb" over fused extents M/N/K), to be executed via
  /// transpose + library-GEMM the way TAL_SH would.
  TtgtBaseline,
};

/// Number of FallbackLevel enumerators; keep in sync when extending the
/// enum (the name-table round-trip test walks [0, NumFallbackLevels)).
inline constexpr unsigned NumFallbackLevels = 3;

/// "none", "minimal-tile" or "ttgt".
const char *fallbackLevelName(FallbackLevel Level);

/// Inverse of fallbackLevelName; nullopt for unknown strings.
std::optional<FallbackLevel> fallbackLevelFromName(const std::string &Name);

/// Caller-imposed resource limits for one generation run. All zero (the
/// default) means unlimited. Budgets degrade gracefully: hitting one never
/// fails the run, it truncates the search/emission and flags the result
/// (EnumerationStats::Status, GenerationResult::SourceTruncated).
struct GenerationBudget {
  /// Maximum full configurations the enumerator may examine.
  uint64_t MaxConfigs = 0;
  /// Wall-clock deadline for the enumeration loop, milliseconds.
  double DeadlineMs = 0.0;
  /// Cap on total emitted source bytes across the top-K kernels. At least
  /// one kernel is always emitted (the never-empty guarantee outranks the
  /// byte cap).
  uint64_t MaxSourceBytes = 0;
};

/// Options for one generation run.
struct CogentOptions {
  /// 8 = double (paper Figs. 4/5), 4 = float (paper Figs. 6-8).
  unsigned ElementSize = 8;
  /// How many top-ranked kernels to materialize (the paper auto-tunes among
  /// a small model-selected set; 1 = pure model-driven choice).
  size_t TopK = 1;
  /// Resource limits; synced into Enumeration by generate().
  GenerationBudget Budget;
  /// Enumeration knobs; ElementSize is synced from above.
  EnumerationOptions Enumeration;
  /// When non-null, generate() installs this sink for the duration of the
  /// run and records phase spans (cogent.parse/enumerate/rank/emit/
  /// fallback) plus instant events for fallback rungs and budget trips.
  /// Null (the default) leaves whatever sink is already active untouched;
  /// with no sink at all, tracing costs nothing.
  support::TraceSession *Trace = nullptr;
  /// Deterministic fault injection for this run (Seed + site mask; see
  /// support/FaultInjection.h). Disabled by default; generate() installs a
  /// FaultInjector for the run's duration when a site mask is set. Only
  /// effective in builds configured with COGENT_CHAOS=ON.
  support::ChaosOptions Chaos;
  /// Post-emit static-analysis gate (analysis/KernelLint.h), symmetric
  /// with the PlanVerifier: every source that survives verifySource is
  /// linted against its plan. Strict (the default) rejects sources with
  /// error findings — the emission is retried and, when retries run out,
  /// the rung demotes down the fallback chain exactly like a verifier
  /// rejection. Warn records findings in GenerationResult::LintFindings
  /// without rejecting; Off skips the analysis. ElementSize, the device's
  /// transaction size and register budget are synced by generate().
  analysis::LintOptions Lint;
  /// Lowest fallback rung the run may *start* at — the graceful-degradation
  /// seam for deadline-pressured callers (service::GenerationService).
  /// None (the default) runs the full enumerate -> rank -> emit pipeline.
  /// MinimalTile skips enumeration entirely and begins at the directly
  /// constructed minimal-tile configuration; TtgtBaseline additionally
  /// skips the minimal rung and emits the matricized-GEMM plan straight
  /// away. Each is orders of magnitude cheaper than a full search, at the
  /// cost of plan quality — a degraded answer instead of a deadline miss.
  FallbackLevel StartRung = FallbackLevel::None;
  /// When true, ranking uses planOccupancyUnderPressure — the occupancy
  /// term is computed from planRegisterPressure's refined per-thread
  /// estimate instead of KernelConfig's flat one, demoting configurations
  /// whose real register pressure caps residency. Off by default: the
  /// refined estimates are always *reported* (GeneratedKernel::
  /// PlanPressure/SourcePressure, metrics JSON), but only reorder the
  /// ranking behind this knob (cogent_cli --pressure-ranking).
  bool PressureAwareRanking = false;
};

/// One materialized kernel: its mapping, emitted source and model outputs.
struct GeneratedKernel {
  KernelConfig Config;
  GeneratedSource Source;
  TransactionCost Cost;
  gpu::OccupancyResult Occupancy;
  gpu::PerfEstimate Predicted;
  /// planRegisterPressure's analytic per-thread estimate for this plan.
  unsigned PlanPressure = 0;
  /// KernelDataflow's liveness-derived per-thread estimate for the emitted
  /// source (LintReport::SourcePressure; 0 when lint was off).
  unsigned SourcePressure = 0;
};

/// Wall-clock breakdown of one generation run by pipeline phase,
/// milliseconds. Measured unconditionally (a handful of monotonic clock
/// reads per run); the same intervals appear as spans in the trace when a
/// TraceSession is active. ParseMs is only nonzero for the string overload
/// of generate(). FallbackMs covers constructing the fallback
/// configuration, not ranking/emitting it.
struct PhaseTimings {
  double ParseMs = 0.0;
  double EnumerateMs = 0.0;
  double FallbackMs = 0.0;
  double RankMs = 0.0;
  double EmitMs = 0.0;
};

/// Result of Cogent::generate.
struct GenerationResult {
  /// Ranked best-first by modeled transaction cost. Non-empty whenever
  /// generate() returned a value (the fallback chain guarantees it).
  std::vector<GeneratedKernel> Kernels;
  EnumerationStats Stats;
  /// Which fallback rung fired; None on the normal path. When TtgtBaseline,
  /// the kernels target FallbackContraction (the matricized GEMM), not the
  /// original contraction.
  FallbackLevel Fallback = FallbackLevel::None;
  /// The matricized GEMM contraction backing a TtgtBaseline result.
  std::optional<ir::Contraction> FallbackContraction;
  /// True when GenerationBudget::MaxSourceBytes stopped emission before
  /// TopK kernels were materialized.
  bool SourceTruncated = false;
  /// Wall-clock spent enumerating + ranking + emitting, milliseconds (the
  /// paper's model-driven search takes seconds where TC's autotuner takes
  /// hours).
  double ElapsedMs = 0.0;
  /// Per-phase breakdown of ElapsedMs.
  PhaseTimings Phases;
  /// What this run contributed to every registered pipeline counter,
  /// recorded through a per-run support::CounterScope. Attribution is
  /// exact even when multiple threads generate concurrently: a scope only
  /// observes increments made on its own thread. Chaos firings appear
  /// here as the "chaos.fired.*" entries, lint activity as "lint.*".
  support::CounterSnapshot Counters;
  /// Candidate plans/costs/sources the PlanVerifier rejected during this
  /// run (each rejection either retried or demoted toward the next
  /// fallback rung, never emitted).
  uint64_t VerifierRejections = 0;
  /// Rendered messages of the first few verifier rejections, for reports.
  std::vector<std::string> VerifierNotes;
  /// Lint findings attached to the *accepted* kernels: everything
  /// KernelLint reported in Warn mode, or warning-severity leftovers in
  /// Strict mode (Strict never accepts a source with error findings).
  std::vector<analysis::LintFinding> LintFindings;
  /// Emitted sources the strict lint gate rejected during this run (each
  /// rejection either retried or demoted, never returned to the caller).
  uint64_t LintRejections = 0;
  /// Rendered first findings of the first few lint rejections.
  std::vector<std::string> LintNotes;
  /// Findings attributed to the race-prover passes (uniformity /
  /// race-freedom / barrier-uniformity) across this run, accepted or not.
  uint64_t RaceFindings = 0;
  /// Strict-gate rejections whose findings included at least one
  /// race-prover error (subset of LintRejections).
  uint64_t RaceRejections = 0;
  /// True when enumeration died mid-search (allocation failure — real or
  /// chaos-injected) and the run restarted on the fallback chain.
  bool EnumerationAborted = false;
  /// True when the device-mutate chaos site shrank the working DeviceSpec
  /// after enumeration (so ranking/verification saw tighter limits than
  /// the search did).
  bool DeviceMutated = false;
  /// True when CogentOptions::PressureAwareRanking reordered this run's
  /// ranking (echoed into the metrics JSON so reports are self-describing).
  bool PressureRanking = false;

  bool empty() const { return Kernels.empty(); }

  /// The top-ranked kernel. \pre !empty(); calling this on an empty result
  /// is a programming error (it was undefined behavior before the assert).
  const GeneratedKernel &best() const {
    assert(!Kernels.empty() && "best() on an empty GenerationResult");
    return Kernels.front();
  }
};

/// The code generator, bound to one target device.
class Cogent {
public:
  explicit Cogent(gpu::DeviceSpec Device) : Device(std::move(Device)) {}

  const gpu::DeviceSpec &device() const { return Device; }

  /// Runs enumeration, cost-model ranking and code emission for \p TC.
  /// Never returns an empty result for a well-formed contraction: when the
  /// pruned search comes up empty the fallback chain degrades to a minimal
  /// 1x1-register-tile configuration and, if even that exceeds the device,
  /// to the TTGT baseline plan — see GenerationResult::Fallback.
  ErrorOr<GenerationResult> generate(const ir::Contraction &TC,
                                     CogentOptions Options =
                                         CogentOptions()) const;

  /// Convenience: parse + generate.
  ErrorOr<GenerationResult>
  generate(const std::string &Spec,
           const std::vector<std::pair<char, int64_t>> &Extents,
           CogentOptions Options = CogentOptions()) const;

private:
  gpu::DeviceSpec Device;
};

/// Renders a human-readable diagnostic of one generated kernel: the per-
/// index mapping table (kind, reuse tensor, mapped dimension, tile), the
/// resource footprint and occupancy limiter, the modeled traffic breakdown
/// and the roofline verdict. Used by the CLI's --explain and handy when
/// debugging surprising mapping choices.
std::string explainKernel(const ir::Contraction &TC,
                          const GeneratedKernel &Kernel,
                          const gpu::DeviceSpec &Device,
                          unsigned ElementSize = 8);

/// Renders one generation run as a machine-readable metrics JSON document:
/// the contraction and device, elapsed/phase timings, the full
/// EnumerationStats (whose tallies equal the "enumerator.*" entries in the
/// counters section by construction), fallback level, per-kernel model
/// outputs, and the run's counter delta. Schema documented in
/// docs/ARCHITECTURE.md §10; written by cogent_cli --metrics=FILE.
std::string renderMetricsJson(const ir::Contraction &TC,
                              const GenerationResult &Result,
                              const gpu::DeviceSpec &Device);

} // namespace core
} // namespace cogent

#endif // COGENT_CORE_COGENT_H
