//===- core/CostModel.cpp ----------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"

#include "support/Counters.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cassert>

using namespace cogent;
using namespace cogent::core;

COGENT_COUNTER(NumCostEvaluations, "costmodel.evaluations",
               "Algorithm-3 transaction estimates computed");
using cogent::ir::Operand;

static int64_t ceilDiv(int64_t X, int64_t Y) { return (X + Y - 1) / Y; }

/// Transactions needed to move one staged slice: the slice decomposes into
/// SliceElems / Run contiguous runs, and each run of Run elements costs
/// ceil(Run / ElemsPerTransaction) transactions (the paper's
/// min(size_Cont, size_TBx) row treatment, generalized with the 128-byte
/// granularity cap).
static double transactionsPerSlice(int64_t SliceElems, int64_t Run,
                                   int64_t ElemsPerTransaction) {
  assert(SliceElems > 0 && Run > 0 && ElemsPerTransaction > 0);
  Run = std::min(Run, SliceElems);
  int64_t NumRuns = ceilDiv(SliceElems, Run);
  int64_t TransPerRun = ceilDiv(Run, ElemsPerTransaction);
  return static_cast<double>(NumRuns) * static_cast<double>(TransPerRun);
}

TransactionCost cogent::core::estimateTransactions(const KernelPlan &Plan,
                                                   unsigned ElementSize,
                                                   unsigned TransactionBytes) {
  assert((ElementSize == 4 || ElementSize == 8) && "unsupported element size");
  ++NumCostEvaluations;
  int64_t ElemsPerTrans = TransactionBytes / ElementSize;

  TransactionCost Cost;
  double BlockSteps = static_cast<double>(Plan.numBlocks()) *
                      static_cast<double>(Plan.numSteps());
  Cost.LoadA = transactionsPerSlice(Plan.sliceElements(Operand::A),
                                    Plan.contiguousRun(Operand::A),
                                    ElemsPerTrans) *
               BlockSteps;
  Cost.LoadB = transactionsPerSlice(Plan.sliceElements(Operand::B),
                                    Plan.contiguousRun(Operand::B),
                                    ElemsPerTrans) *
               BlockSteps;

  int64_t CSliceElems =
      Plan.tbX() * Plan.tbY() * Plan.regX() * Plan.regY();
  Cost.StoreC =
      transactionsPerSlice(CSliceElems, Plan.contiguousRunC(), ElemsPerTrans) *
      static_cast<double>(Plan.numBlocks());
  // Chaos site: a misranking cost model. All three components scale by one
  // factor so the lie is self-consistent; PlanVerifier::verifyCost catches
  // estimates perturbed below the compulsory-traffic bound.
  if (support::chaosShouldFire(support::ChaosSite::CostPerturb)) {
    double Factor = support::activeFaultInjector()->perturbFactor(
        support::ChaosSite::CostPerturb);
    Cost.LoadA *= Factor;
    Cost.LoadB *= Factor;
    Cost.StoreC *= Factor;
  }
  return Cost;
}

TransactionCost
cogent::core::estimateTransactionsPaper(const KernelPlan &Plan,
                                        unsigned ElementSize,
                                        unsigned TransactionBytes) {
  assert((ElementSize == 4 || ElementSize == 8) && "unsupported element size");
  // The paper fixes transactions at 128 bytes == 16 doubles; the element
  // count only matters through size_Cont's cap below.
  int64_t ElemsPerTrans = TransactionBytes / ElementSize;
  double BlockSteps = static_cast<double>(Plan.numBlocks()) *
                      static_cast<double>(Plan.numSteps());

  // One input is walked by the thread-block X row, the other by Y.
  Operand XIn = Plan.config().XInput;
  Operand YIn = Plan.config().yInput();

  auto inputCost = [&](Operand Op, int64_t SizeTB, int64_t SizeReg) {
    int64_t SizeCont =
        std::min(Plan.contiguousRun(Op), ElemsPerTrans); // cal_Cont capped
    int64_t NumTransTx =
        ceilDiv(SizeTB, std::min<int64_t>(SizeCont, SizeTB));
    int64_t NumTransTB = NumTransTx * Plan.tbk();   // rows: size_TBk
    int64_t NumTransStep = NumTransTB * SizeReg;     // x size_REGx
    return static_cast<double>(NumTransStep) * BlockSteps;
  };

  TransactionCost Cost;
  double XCost = inputCost(XIn, Plan.tbX(), Plan.regX());
  double YCost = inputCost(YIn, Plan.tbY(), Plan.regY());
  Cost.LoadA = XIn == Operand::A ? XCost : YCost;
  Cost.LoadB = XIn == Operand::A ? YCost : XCost;

  // Store: rows of TBx threads write along C's FVI, TBy rows, one batch
  // per register-tile element.
  int64_t ContC = std::min(Plan.contiguousRunC(), ElemsPerTrans);
  int64_t NumTransTx =
      ceilDiv(Plan.tbX(), std::min<int64_t>(ContC, Plan.tbX()));
  Cost.StoreC = static_cast<double>(NumTransTx * Plan.tbY() * Plan.regX() *
                                    Plan.regY()) *
                static_cast<double>(Plan.numBlocks());
  return Cost;
}

namespace {

/// Shared-memory offset contribution of one role coordinate for input
/// \p Op: Offsets[v] = sum over Op's slice dims with that role of
/// digit(v) * SmemStride (mirrors the simulator's staging tables).
std::vector<int64_t> smemOffsetsByRole(const KernelPlan &Plan, Operand Op,
                                       CoordRole Role,
                                       const std::vector<IndexTile> &List) {
  int64_t Count = 1;
  for (const IndexTile &T : List)
    Count *= T.Tile;
  std::vector<int64_t> Offsets(static_cast<size_t>(Count), 0);
  for (int64_t V = 0; V < Count; ++V) {
    std::vector<int64_t> Digits = decodeMixedRadix(V, List);
    int64_t Off = 0;
    for (const SliceDim &Dim : Plan.sliceDims(Op))
      if (Dim.Role == Role)
        Off += Digits[Dim.RolePos] * Dim.SmemStride;
    Offsets[static_cast<size_t>(V)] = Off;
  }
  return Offsets;
}

/// Conflict degree of one warp's offsets: the maximum number of *distinct*
/// words any bank must serve (identical offsets broadcast for free).
double warpConflictDegree(const std::vector<int64_t> &LaneOffsets,
                          unsigned NumBanks) {
  std::vector<std::vector<int64_t>> PerBank(NumBanks);
  for (int64_t Off : LaneOffsets) {
    std::vector<int64_t> &Bank =
        PerBank[static_cast<size_t>(Off % NumBanks)];
    if (std::find(Bank.begin(), Bank.end(), Off) == Bank.end())
      Bank.push_back(Off);
  }
  size_t Max = 1;
  for (const std::vector<int64_t> &Bank : PerBank)
    Max = std::max(Max, Bank.size());
  return static_cast<double>(Max);
}

/// Mean conflict degree of the staging loads of one input across warps and
/// register/TBk iterations. \p LaneRoleCoord maps a linear thread id to the
/// role coordinate that varies per lane (tx for the X side, ty for Y).
double sideConflictFactor(const KernelPlan &Plan, Operand Op,
                          bool VariesWithTx, unsigned WarpSize,
                          unsigned NumBanks) {
  const KernelConfig &Config = Plan.config();
  std::vector<int64_t> LaneOffs =
      smemOffsetsByRole(Plan, Op, VariesWithTx ? CoordRole::ThreadX
                                               : CoordRole::ThreadY,
                        VariesWithTx ? Config.TBx : Config.TBy);
  std::vector<int64_t> RegOffs = smemOffsetsByRole(
      Plan, Op, VariesWithTx ? CoordRole::RegX : CoordRole::RegY,
      VariesWithTx ? Config.RegX : Config.RegY);
  std::vector<int64_t> StepOffs =
      smemOffsetsByRole(Plan, Op, CoordRole::Step, Config.TBk);

  int64_t Threads = Plan.threadsPerBlock();
  int64_t TbX = Plan.tbX();
  double DegreeSum = 0.0;
  int64_t SamplesTaken = 0;
  // Sample a bounded number of (reg, kk) iterations; offsets only shift by
  // a constant between them, so a handful captures the pattern.
  constexpr int64_t MaxSamples = 8;
  for (int64_t R = 0; R < static_cast<int64_t>(RegOffs.size()) &&
                      SamplesTaken < MaxSamples;
       ++R) {
    for (int64_t K = 0; K < static_cast<int64_t>(StepOffs.size()) &&
                        SamplesTaken < MaxSamples;
         K += std::max<int64_t>(1, static_cast<int64_t>(StepOffs.size()) /
                                       2)) {
      double WarpSum = 0.0;
      int64_t Warps = 0;
      for (int64_t Base = 0; Base < Threads; Base += WarpSize) {
        std::vector<int64_t> Offsets;
        for (int64_t Tid = Base;
             Tid < std::min<int64_t>(Base + WarpSize, Threads); ++Tid) {
          int64_t Coord = VariesWithTx ? Tid % TbX : Tid / TbX;
          Offsets.push_back(LaneOffs[static_cast<size_t>(Coord)] +
                            RegOffs[static_cast<size_t>(R)] +
                            StepOffs[static_cast<size_t>(K)]);
        }
        WarpSum += warpConflictDegree(Offsets, NumBanks);
        ++Warps;
      }
      DegreeSum += WarpSum / static_cast<double>(Warps);
      ++SamplesTaken;
    }
  }
  return SamplesTaken == 0 ? 1.0
                           : DegreeSum / static_cast<double>(SamplesTaken);
}

} // namespace

double cogent::core::smemBankConflictFactor(const KernelPlan &Plan,
                                            unsigned WarpSize,
                                            unsigned NumBanks) {
  Operand XIn = Plan.config().XInput;
  Operand YIn = Plan.config().yInput();
  double XFactor =
      sideConflictFactor(Plan, XIn, /*VariesWithTx=*/true, WarpSize,
                         NumBanks);
  double YFactor =
      sideConflictFactor(Plan, YIn, /*VariesWithTx=*/false, WarpSize,
                         NumBanks);
  // The two staging loads move similar volumes; average their penalties.
  return (XFactor + YFactor) / 2.0;
}

gpu::OccupancyResult cogent::core::planOccupancy(const KernelPlan &Plan,
                                                 const gpu::DeviceSpec &Device,
                                                 unsigned ElementSize) {
  gpu::BlockResources Block;
  Block.ThreadsPerBlock = static_cast<unsigned>(Plan.threadsPerBlock());
  Block.SharedMemBytes =
      static_cast<unsigned>(Plan.config().smemBytes(ElementSize));
  Block.RegistersPerThread = Plan.config().registersPerThread(ElementSize);
  return gpu::computeOccupancy(Device, Block);
}

unsigned cogent::core::planRegisterPressure(const KernelPlan &Plan,
                                            unsigned ElementSize) {
  unsigned RegsPerElement = ElementSize / 4;
  int64_t Tile = Plan.regX() * Plan.regY() + Plan.regX() + Plan.regY();
  int64_t RankA = static_cast<int64_t>(Plan.sliceDims(Operand::A).size());
  int64_t RankB = static_cast<int64_t>(Plan.sliceDims(Operand::B).size());
  int64_t RankC = static_cast<int64_t>(Plan.storeDims().size());
  // Index arithmetic the emitter actually materializes, all 64-bit (2
  // registers each): the stride table, per-dimension tile counts and
  // bases of the grid and step decodes, and the global coordinates of
  // the wider slice load; 28 covers the remaining cursors and loop
  // state exactly as in KernelConfig::registersPerThread.
  int64_t Scalars = 28 + 2 * (RankA + RankB + RankC) +
                    4 * static_cast<int64_t>(Plan.gridDims().size()) +
                    4 * static_cast<int64_t>(Plan.stepDims().size()) +
                    2 * std::max(RankA, RankB);
  int64_t Total = Tile * RegsPerElement + Scalars;
  return static_cast<unsigned>(std::min<int64_t>(Total, 512));
}

gpu::OccupancyResult
cogent::core::planOccupancyUnderPressure(const KernelPlan &Plan,
                                         const gpu::DeviceSpec &Device,
                                         unsigned ElementSize) {
  gpu::BlockResources Block;
  Block.ThreadsPerBlock = static_cast<unsigned>(Plan.threadsPerBlock());
  Block.SharedMemBytes =
      static_cast<unsigned>(Plan.config().smemBytes(ElementSize));
  Block.RegistersPerThread = planRegisterPressure(Plan, ElementSize);
  return gpu::computeOccupancy(Device, Block);
}

gpu::KernelProfile
cogent::core::makeKernelProfile(const KernelPlan &Plan,
                                const gpu::DeviceSpec &Device,
                                unsigned ElementSize) {
  gpu::KernelProfile Profile;
  Profile.ElementSize = ElementSize;
  Profile.Flops = Plan.contraction().flopCount();

  TransactionCost Cost =
      estimateTransactions(Plan, ElementSize, Device.TransactionBytes);
  Profile.DramBytes = Cost.total() * Device.TransactionBytes;

  // Register staging: every thread reads REGx + REGy shared-memory elements
  // per intra-step iteration to produce 2*REGx*REGy flops.
  double InnerIterations = Profile.Flops / 2.0 /
                           static_cast<double>(Plan.regX() * Plan.regY());
  Profile.SmemBytes = InnerIterations *
                      static_cast<double>(Plan.regX() + Plan.regY()) *
                      ElementSize;
  // Bank conflicts serialize lanes: fold the modeled multiplier into the
  // effective SMEM traffic.
  Profile.SmemBytes *= smemBankConflictFactor(Plan);
  Profile.RegisterTileFlops =
      static_cast<double>(Plan.regX() * Plan.regY());

  gpu::OccupancyResult Occ = planOccupancy(Plan, Device, ElementSize);
  Profile.Occupancy = Occ.Occupancy;
  Profile.WaveEff =
      gpu::waveEfficiency(Device, Plan.numBlocks(), Occ.BlocksPerSM);
  return Profile;
}
