//===- core/CostModel.h - DRAM-transaction cost model (Alg. 3) ------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's analytic cost model: estimate the number of 128-byte DRAM
/// transactions needed to load both input-tensor slices for every step of
/// every thread block plus the transactions to store the output, and rank
/// candidate configurations by that total without running them. Also
/// assembles the full gpu::KernelProfile (flops, bytes, occupancy) used by
/// the roofline time model.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_CORE_COSTMODEL_H
#define COGENT_CORE_COSTMODEL_H

#include "core/KernelPlan.h"
#include "gpu/DeviceSpec.h"
#include "gpu/Occupancy.h"
#include "gpu/PerfModel.h"

namespace cogent {
namespace core {

/// Transaction estimate broken down per operand.
struct TransactionCost {
  double LoadA = 0.0;
  double LoadB = 0.0;
  double StoreC = 0.0;

  double total() const { return LoadA + LoadB + StoreC; }
};

/// Implements Algorithm 3 for both inputs and the output store: the number
/// of transactions per staged slice is the number of contiguous runs times
/// the transactions per run, multiplied by steps and thread blocks.
TransactionCost estimateTransactions(const KernelPlan &Plan,
                                     unsigned ElementSize,
                                     unsigned TransactionBytes = 128);

/// The paper's Algorithm 3 in its literal row-of-threads formulation:
///   numTransTx   = size_TBx / min(size_Cont, size_TBx)
///   numTransTB   = numTransTx * size_TBk
///   numTransStep = numTransTB * size_REGx
///   total        = numTransStep * numSteps * numTBs
/// (mirrored with TBy/REGy for the second input, plus the store term).
/// It differs from estimateTransactions in ignoring the 128-byte
/// transaction granularity cap on long runs; kept verbatim for fidelity
/// comparisons (see tests and DESIGN.md).
TransactionCost estimateTransactionsPaper(const KernelPlan &Plan,
                                          unsigned ElementSize,
                                          unsigned TransactionBytes = 128);

/// Builds the roofline profile for \p Plan on \p Device: exact flop count,
/// modeled DRAM bytes (from estimateTransactions), register-staging SMEM
/// traffic, occupancy and wave efficiency.
gpu::KernelProfile makeKernelProfile(const KernelPlan &Plan,
                                     const gpu::DeviceSpec &Device,
                                     unsigned ElementSize);

/// Occupancy of \p Plan's block footprint on \p Device.
gpu::OccupancyResult planOccupancy(const KernelPlan &Plan,
                                   const gpu::DeviceSpec &Device,
                                   unsigned ElementSize);

/// Refined per-thread register-pressure estimate for \p Plan: the declared
/// register tiles (r_C + r_A + r_B) plus an index-arithmetic term that
/// mirrors what the emitter actually generates — global strides for each
/// tensor dimension, the per-dimension tile counts and bases of the grid
/// and step decodes, and a fixed base of cursors/temporaries. Where
/// KernelConfig::registersPerThread prices all bookkeeping at a flat 28
/// registers, this estimate scales with contraction order, which is what
/// lets KernelDataflow's source-side liveness walk agree with it within
/// analysis::PressureToleranceRegs (asserted across the TCCG suite by
/// test_kernel_dataflow). Capped at 512 like the flat estimate.
unsigned planRegisterPressure(const KernelPlan &Plan, unsigned ElementSize);

/// planOccupancy with BlockResources::RegistersPerThread taken from
/// planRegisterPressure instead of the flat estimate: the occupancy term
/// used when CogentOptions::PressureAwareRanking is enabled, demoting
/// configurations whose real pressure caps residency.
gpu::OccupancyResult planOccupancyUnderPressure(const KernelPlan &Plan,
                                                const gpu::DeviceSpec &Device,
                                                unsigned ElementSize);

/// Average shared-memory bank-conflict multiplier of the compute phase's
/// register-staging loads (1.0 = conflict-free or pure broadcast). Lanes of
/// a warp that read distinct shared-memory words falling in the same bank
/// serialize; the returned factor scales the SMEM roofline term. Modeled
/// with \p NumBanks element-granularity banks and broadcast coalescing, per
/// warp, averaged over the register-tile and TBk iterations.
double smemBankConflictFactor(const KernelPlan &Plan, unsigned WarpSize = 32,
                              unsigned NumBanks = 32);

} // namespace core
} // namespace cogent

#endif // COGENT_CORE_COSTMODEL_H
