//===- core/Enumerator.cpp ----------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Enumerator.h"

#include "core/CostModel.h"
#include "core/KernelPlan.h"
#include "gpu/Occupancy.h"
#include "support/Counters.h"
#include "support/FaultInjection.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <new>
#include <set>
#include <string>

using namespace cogent;
using namespace cogent::core;
using cogent::ir::Contraction;
using cogent::ir::Operand;

// Mirrors of EnumerationStats as process-wide monotonic counters (bulk-added
// once per enumerate() run so they stay exactly in sync with the per-run
// stats and cost nothing in the candidate loop).
COGENT_COUNTER(NumRawConfigs, "enumerator.raw-configs",
               "Cartesian-product size of partial configurations");
COGENT_COUNTER(NumExamined, "enumerator.examined",
               "full configurations examined");
COGENT_COUNTER(NumInvalid, "enumerator.invalid",
               "configurations rejected as structurally invalid");
COGENT_COUNTER(NumHardwarePruned, "enumerator.hardware-pruned",
               "configurations pruned by hardware limits");
COGENT_COUNTER(NumPerformancePruned, "enumerator.performance-pruned",
               "configurations pruned by performance constraints");
COGENT_COUNTER(NumSurvivors, "enumerator.survivors",
               "configurations surviving all pruning");
COGENT_COUNTER(NumRelaxations, "enumerator.relaxations",
               "runs that fell back to performance-pruned candidates");
COGENT_COUNTER(NumBudgetTrips, "enumerator.budget-trips",
               "enumeration runs stopped early by a resource budget");

namespace {

/// A partially determined configuration: one TB list plus one register-tile
/// list for a single side (X or Y), or a TBk list (Reg unused).
struct PartialConfig {
  std::vector<IndexTile> TB;
  std::vector<IndexTile> Reg;
};

std::string keyOf(const std::vector<IndexTile> &List) {
  // Order-insensitive beyond the first element (the forced coalescing
  // index): sort the tail so rotations that produce the same set collapse.
  std::string Key;
  std::vector<std::string> Tail;
  for (size_t I = 0; I < List.size(); ++I) {
    std::string Entry;
    Entry += List[I].Name;
    Entry += ':';
    Entry += std::to_string(List[I].Tile);
    if (I == 0)
      Key += Entry;
    else
      Tail.push_back(Entry);
  }
  std::sort(Tail.begin(), Tail.end());
  for (const std::string &Entry : Tail)
    Key += "," + Entry;
  return Key;
}

std::string keyOf(const PartialConfig &Partial) {
  return keyOf(Partial.TB) + "|" + keyOf(Partial.Reg);
}

/// Greedily fills a tile list toward \p Target by walking \p Pool rotated to
/// start at \p StartIdx, exactly as Algorithm 2 walks an input's indices
/// from s_idx to the SVI and then wraps. \p Product carries the product of
/// tiles already placed (from a forced first index).
std::vector<IndexTile> fillToward(const Contraction &TC,
                                  const std::vector<char> &Pool,
                                  size_t StartIdx, int64_t Target,
                                  std::vector<IndexTile> Seed,
                                  int64_t Product) {
  for (size_t Step = 0; Step < Pool.size() && Product < Target; ++Step) {
    char Name = Pool[(StartIdx + Step) % Pool.size()];
    int64_t Remaining = Target / Product;
    if (Remaining <= 1)
      break;
    int64_t Tile = std::min<int64_t>(TC.extent(Name), Remaining);
    if (Tile < 1)
      Tile = 1;
    Seed.push_back({Name, Tile});
    Product *= Tile;
  }
  return Seed;
}

/// Enumerates (TB, Reg) partials for one side. \p Forced, when non-zero, is
/// an index that must lead the TB list (the output FVI on the X side).
/// \p Pool holds the side's remaining external indices in the input
/// tensor's own order (FVI -> SVI).
std::vector<PartialConfig>
enumerateSide(const Contraction &TC, char Forced,
              const std::vector<char> &Pool,
              const std::vector<int64_t> &TBSizes,
              const std::vector<int64_t> &RegSizes) {
  std::vector<PartialConfig> Result;
  std::set<std::string> Seen;

  auto emit = [&](PartialConfig Partial) {
    std::string Key = keyOf(Partial);
    if (Seen.insert(Key).second)
      Result.push_back(std::move(Partial));
  };

  std::vector<std::vector<IndexTile>> TBCandidates;
  std::set<std::string> SeenTB;
  auto emitTB = [&](std::vector<IndexTile> TB) {
    if (SeenTB.insert(keyOf(TB)).second)
      TBCandidates.push_back(std::move(TB));
  };

  for (int64_t TBSize : TBSizes) {
    std::vector<IndexTile> Seed;
    int64_t Product = 1;
    if (Forced != 0) {
      int64_t Tile = std::min<int64_t>(TC.extent(Forced), TBSize);
      Seed.push_back({Forced, Tile});
      Product = Tile;
    }
    if (Pool.empty()) {
      emitTB(Seed);
      continue;
    }
    for (size_t StartIdx = 0; StartIdx < Pool.size(); ++StartIdx)
      emitTB(fillToward(TC, Pool, StartIdx, TBSize, Seed, Product));
  }
  // A side with no indices at all still contributes one (empty) candidate.
  if (TBCandidates.empty())
    TBCandidates.push_back({});

  for (const std::vector<IndexTile> &TB : TBCandidates) {
    // The leftovers available for register tiling: externals of this side
    // that the TB list did not consume.
    std::vector<char> Leftover;
    for (char Name : Pool) {
      bool Consumed = false;
      for (const IndexTile &T : TB)
        Consumed |= T.Name == Name;
      if (!Consumed)
        Leftover.push_back(Name);
    }

    // Register tile absent (REG size 1) is always an option.
    emit({TB, {}});

    if (Leftover.empty())
      continue;
    std::set<std::string> SeenReg;
    for (int64_t RegSize : RegSizes) {
      for (size_t StartIdx = 0; StartIdx < Leftover.size(); ++StartIdx) {
        std::vector<IndexTile> Reg =
            fillToward(TC, Leftover, StartIdx, RegSize, {}, 1);
        if (Reg.empty())
          continue;
        if (SeenReg.insert(keyOf(Reg)).second)
          emit({TB, Reg});
      }
    }
  }
  return Result;
}

/// Enumerates TBk partials over the internal indices (Reg member unused).
/// Beyond the Algorithm-2 rotations, mixed assignments with independent
/// per-index tiles are generated so contractions whose two input FVIs are
/// both internal can coalesce both loads (smem pruning bounds the blowup).
std::vector<PartialConfig>
enumerateK(const Contraction &TC, const std::vector<int64_t> &TBSizes) {
  std::vector<char> Internals = TC.internalIndices();
  std::vector<PartialConfig> Result;
  if (Internals.empty()) {
    Result.push_back({});
    return Result;
  }
  std::set<std::string> Seen;
  auto emit = [&](std::vector<IndexTile> K) {
    if (K.empty())
      return;
    if (Seen.insert(keyOf(K)).second)
      Result.push_back({std::move(K), {}});
  };
  for (int64_t KSize : TBSizes)
    for (size_t StartIdx = 0; StartIdx < Internals.size(); ++StartIdx)
      emit(fillToward(TC, Internals, StartIdx, KSize, {}, 1));

  // Mixed per-index tiles: the Cartesian product over {1, 4, 8, 16} with a
  // bounded aggregate product.
  static const int64_t MixedTiles[] = {1, 4, 8, 16};
  constexpr int64_t MaxProduct = 256;
  size_t NumIdx = std::min<size_t>(Internals.size(), 4);
  std::vector<size_t> Choice(NumIdx, 0);
  for (;;) {
    std::vector<IndexTile> K;
    int64_t Product = 1;
    for (size_t I = 0; I < NumIdx; ++I) {
      int64_t Tile =
          std::min<int64_t>(MixedTiles[Choice[I]], TC.extent(Internals[I]));
      if (Tile > 1)
        K.push_back({Internals[I], Tile});
      Product *= Tile;
    }
    if (Product <= MaxProduct)
      emit(std::move(K));
    size_t Dim = 0;
    for (; Dim < NumIdx; ++Dim) {
      if (++Choice[Dim] < std::size(MixedTiles))
        break;
      Choice[Dim] = 0;
    }
    if (Dim == NumIdx)
      break;
  }
  assert(!Result.empty() && "no TBk candidates for non-empty internals");
  return Result;
}

} // namespace

Enumerator::Enumerator(const Contraction &TCIn,
                       const gpu::DeviceSpec &DeviceIn,
                       EnumerationOptions OptionsIn)
    : TC(TCIn), Device(DeviceIn), Options(std::move(OptionsIn)) {
  if (Options.MinThreadBlocks == 0)
    Options.MinThreadBlocks = 2 * static_cast<int64_t>(Device.NumSMs);
}

const char *cogent::core::searchStatusName(SearchStatus Status) {
  switch (Status) {
  case SearchStatus::Complete:
    return "complete";
  case SearchStatus::ConfigCapHit:
    return "config-cap";
  case SearchStatus::DeadlineHit:
    return "deadline";
  }
  assert(false && "unknown search status");
  return "?";
}

std::optional<SearchStatus>
cogent::core::searchStatusFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumSearchStatuses; ++I) {
    SearchStatus Status = static_cast<SearchStatus>(I);
    if (Name == searchStatusName(Status))
      return Status;
  }
  return std::nullopt;
}

double Enumerator::naiveSearchSpace(const Contraction &TC) {
  double NumExternal = static_cast<double>(TC.externalIndices().size());
  double NumInternal = static_cast<double>(TC.internalIndices().size());
  double Mapping = std::pow(4.0, NumExternal) *
                   std::pow(2.0, std::max(0.0, NumInternal - 1.0));
  double TileSizes = std::pow(6.0, NumExternal + NumInternal - 1.0);
  return Mapping * TileSizes;
}

std::vector<KernelConfig>
Enumerator::enumerate(EnumerationStats *Stats) const {
  char OutFvi = TC.fvi(Operand::C);
  Operand XInput = TC.inputContaining(OutFvi);
  Operand YInput = XInput == Operand::A ? Operand::B : Operand::A;

  // External pools in each input's own index order, FVI -> SVI.
  auto externalPool = [&](Operand Input, char Exclude) {
    std::vector<char> Pool;
    for (char Name : TC.indices(Input))
      if (TC.isExternal(Name) && Name != Exclude)
        Pool.push_back(Name);
    return Pool;
  };
  std::vector<char> XPool = externalPool(XInput, OutFvi);
  std::vector<char> YPool = externalPool(YInput, /*Exclude=*/0);

  std::vector<PartialConfig> XPartials =
      enumerateSide(TC, OutFvi, XPool, Options.TBSizes, Options.RegSizes);
  std::vector<PartialConfig> YPartials =
      enumerateSide(TC, /*Forced=*/0, YPool, Options.TBSizes,
                    Options.RegSizes);
  std::vector<PartialConfig> KPartials = enumerateK(TC, Options.TBSizes);

  EnumerationStats Local;
  Local.RawConfigs = static_cast<uint64_t>(XPartials.size()) *
                     YPartials.size() * KPartials.size();

  // FVI performance constraints (§IV-A2): each input's own FVI must be part
  // of the dimension that walks it during coalesced loads.
  char XFvi = TC.fvi(XInput);
  char YFvi = TC.fvi(YInput);
  auto listContains = [](const std::vector<IndexTile> &List, char Name) {
    for (const IndexTile &T : List)
      if (T.Name == Name)
        return true;
    return false;
  };

  auto passesFvi = [&](const KernelConfig &Config) {
    auto coversInputFvi = [&](char Fvi, const std::vector<IndexTile> &TBList) {
      if (TC.extent(Fvi) == 1)
        return true; // degenerate dimension: nothing to coalesce
      if (TC.isInternal(Fvi))
        return listContains(Config.TBk, Fvi);
      // External: it must be mapped with a real tile on its side's TB list
      // or covered fully by a register tile (which still yields contiguous
      // per-thread runs during the flattened slice load).
      return listContains(TBList, Fvi) ||
             Config.tileOf(Fvi) > 1;
    };
    return coversInputFvi(XFvi, Config.TBx) && coversInputFvi(YFvi, Config.TBy);
  };

  enum class PruneReason { None, Invalid, Hardware, Performance };
  struct Candidate {
    KernelConfig Config;
    PruneReason Reason = PruneReason::None;
  };

  std::vector<KernelConfig> Survivors;
  std::vector<KernelConfig> PerfPrunedOnly; // for relaxation

  // Cooperative budget checks: the candidate cap is tested per config, the
  // deadline every DeadlineStride configs (a steady_clock read per
  // candidate would dominate small enumerations).
  auto StartTime = std::chrono::steady_clock::now();
  constexpr uint64_t DeadlineStride = 256;
  auto budgetStop = [&]() -> bool {
    if (Options.MaxConfigs != 0 && Local.Examined >= Options.MaxConfigs) {
      Local.Status = SearchStatus::ConfigCapHit;
      return true;
    }
    if (Options.DeadlineMs > 0.0 && Local.Examined % DeadlineStride == 0) {
      double ElapsedMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - StartTime)
                             .count();
      if (ElapsedMs > Options.DeadlineMs) {
        Local.Status = SearchStatus::DeadlineHit;
        return true;
      }
    }
    return false;
  };

  // Chaos site: a simulated allocation failure mid-search. Thrown (not
  // returned) because that is how a real bad_alloc would surface here;
  // Cogent::generate contains it and demotes to the fallback chain.
  if (support::chaosShouldFire(support::ChaosSite::EnumeratorAlloc))
    throw std::bad_alloc();

  for (const PartialConfig &X : XPartials) {
    for (const PartialConfig &Y : YPartials) {
      for (const PartialConfig &K : KPartials) {
        if (budgetStop())
          goto searchDone;
        ++Local.Examined;
        KernelConfig Config;
        Config.XInput = XInput;
        Config.TBx = X.TB;
        Config.RegX = X.Reg;
        Config.TBy = Y.TB;
        Config.RegY = Y.Reg;
        Config.TBk = K.TB;

        if (!Config.validate(TC).empty()) {
          ++Local.InvalidConfigs;
          continue;
        }

        // Hardware constraints.
        int64_t Threads = Config.threadsPerBlock();
        int64_t Smem = Config.smemBytes(Options.ElementSize);
        unsigned Regs = Config.registersPerThread(Options.ElementSize);
        if (Threads > Device.MaxThreadsPerBlock ||
            Smem > static_cast<int64_t>(Device.SharedMemPerBlock) ||
            Regs > Device.MaxRegistersPerThread) {
          ++Local.HardwarePruned;
          continue;
        }

        // Performance constraints.
        bool PerfOk = true;
        if (Options.EnforceFviConstraints && !passesFvi(Config))
          PerfOk = false;
        if (PerfOk && Options.EnforceMinBlocks &&
            Config.numThreadBlocks(TC) < Options.MinThreadBlocks)
          PerfOk = false;
        if (PerfOk && Options.MinOccupancy > 0.0) {
          gpu::BlockResources Block;
          Block.ThreadsPerBlock = static_cast<unsigned>(Threads);
          Block.SharedMemBytes = static_cast<unsigned>(Smem);
          Block.RegistersPerThread = Regs;
          if (gpu::computeOccupancy(Device, Block).Occupancy <
              Options.MinOccupancy)
            PerfOk = false;
        }
        if (!PerfOk) {
          ++Local.PerformancePruned;
          PerfPrunedOnly.push_back(std::move(Config));
          continue;
        }
        Survivors.push_back(std::move(Config));
      }
    }
  }

searchDone:
  Local.Survivors = Survivors.size();
  if (Stats)
    *Stats = Local;

  // Mirror the per-run stats into the process-wide counters so metrics
  // snapshots agree with EnumerationStats exactly.
  NumRawConfigs += Local.RawConfigs;
  NumExamined += Local.Examined;
  NumInvalid += Local.InvalidConfigs;
  NumHardwarePruned += Local.HardwarePruned;
  NumPerformancePruned += Local.PerformancePruned;
  NumSurvivors += Local.Survivors;
  if (Local.truncated()) {
    ++NumBudgetTrips;
    support::traceInstant(
        "enumerator.budget-trip",
        {{"reason", searchStatusName(Local.Status)},
         {"examined", std::to_string(Local.Examined)},
         {"raw_configs", std::to_string(Local.RawConfigs)}});
  }

  if (Survivors.empty() && Options.RelaxWhenEmpty && !PerfPrunedOnly.empty()) {
    ++NumRelaxations;
    support::traceInstant(
        "enumerator.relaxation",
        {{"candidates", std::to_string(PerfPrunedOnly.size())}});
    return PerfPrunedOnly;
  }
  return Survivors;
}
