//===- core/Enumerator.h - Configuration enumeration (Alg. 2) -------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates candidate kernel configurations per the paper's §IV-A:
/// thread-block dimension targets limited to {4, 8, 16} and register-tile
/// targets to {2, 4, 6, 8}; index lists built by rotating through each
/// input's external indices from its FVI to its SVI (Algorithm 2); the
/// Cartesian product of X-side, Y-side and TBk partial configurations is
/// then pruned by hardware constraints (shared memory / registers / thread
/// counts) and performance constraints (input-FVI coalescing, minimum
/// thread-block count, minimum occupancy).
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_CORE_ENUMERATOR_H
#define COGENT_CORE_ENUMERATOR_H

#include "core/KernelConfig.h"
#include "gpu/DeviceSpec.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cogent {
namespace core {

/// Tunable knobs of the enumeration; defaults match the paper.
struct EnumerationOptions {
  std::vector<int64_t> TBSizes = {4, 8, 16};
  std::vector<int64_t> RegSizes = {2, 4, 6, 8};
  /// Minimum grid size before a config is considered load-balanced; 0
  /// derives 2 * NumSMs from the device.
  int64_t MinThreadBlocks = 0;
  double MinOccupancy = 0.125;
  unsigned ElementSize = 8;
  /// Performance-constraint toggles (ablation hooks; both on in the paper).
  bool EnforceFviConstraints = true;
  bool EnforceMinBlocks = true;
  /// When pruning removes every candidate (tiny problems), progressively
  /// relax performance constraints instead of failing.
  bool RelaxWhenEmpty = true;
  /// Cooperative resource budget, synced from CogentOptions::Budget by
  /// Cogent::generate. 0 = unlimited. MaxConfigs caps the number of full
  /// configurations examined; DeadlineMs bounds the wall clock of the
  /// enumeration loop (checked every few hundred candidates).
  uint64_t MaxConfigs = 0;
  double DeadlineMs = 0.0;
};

/// How an enumeration run ended: exhaustively, or cut short by a budget.
enum class SearchStatus {
  Complete,
  /// Stopped after EnumerationOptions::MaxConfigs candidates.
  ConfigCapHit,
  /// Stopped when EnumerationOptions::DeadlineMs elapsed.
  DeadlineHit,
};

/// Number of SearchStatus enumerators; keep in sync when extending the
/// enum (the name-table round-trip test walks [0, NumSearchStatuses)).
inline constexpr unsigned NumSearchStatuses = 3;

/// "complete", "config-cap" or "deadline".
const char *searchStatusName(SearchStatus Status);

/// Inverse of searchStatusName; nullopt for unknown strings.
std::optional<SearchStatus> searchStatusFromName(const std::string &Name);

/// Bookkeeping for the paper's "around 97% of the configurations were
/// pruned" statistic and the naive-search-space comparison.
struct EnumerationStats {
  /// Size of the Cartesian product of partial configurations (before any
  /// full-config pruning).
  uint64_t RawConfigs = 0;
  uint64_t InvalidConfigs = 0;
  uint64_t HardwarePruned = 0;
  uint64_t PerformancePruned = 0;
  uint64_t Survivors = 0;
  /// Candidates actually examined; equals RawConfigs unless a budget fired.
  uint64_t Examined = 0;
  /// Whether (and why) the search stopped before covering RawConfigs. When
  /// not Complete, the ranking is over a partial candidate set and callers
  /// should treat the winner as best-effort.
  SearchStatus Status = SearchStatus::Complete;

  bool truncated() const { return Status != SearchStatus::Complete; }

  double prunedFraction() const {
    return RawConfigs == 0
               ? 0.0
               : 1.0 - static_cast<double>(Survivors) /
                           static_cast<double>(RawConfigs);
  }
};

/// Enumerates pruned kernel configurations for one contraction on one
/// device.
class Enumerator {
public:
  Enumerator(const ir::Contraction &TC, const gpu::DeviceSpec &Device,
             EnumerationOptions Options = EnumerationOptions());

  /// Produces all surviving configurations; fills \p Stats when non-null.
  /// Never returns an empty vector for a valid contraction (relaxation
  /// kicks in for degenerate problems when RelaxWhenEmpty is set).
  std::vector<KernelConfig> enumerate(EnumerationStats *Stats = nullptr) const;

  /// The paper's naive full-search-space size (§IV): |mapping| x |tilesize|
  /// = 4^next * 2^(nint-1) * 6^(next+nint-1); evaluates to 3,981,312 for
  /// Eq. 1.
  static double naiveSearchSpace(const ir::Contraction &TC);

private:
  ir::Contraction TC;
  gpu::DeviceSpec Device;
  EnumerationOptions Options;
};

} // namespace core
} // namespace cogent

#endif // COGENT_CORE_ENUMERATOR_H
