//===- core/KernelConfig.cpp ------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/KernelConfig.h"

#include <algorithm>
#include <cassert>

using namespace cogent;
using namespace cogent::core;

static int64_t productOfTiles(const std::vector<IndexTile> &Tiles) {
  int64_t Product = 1;
  for (const IndexTile &T : Tiles)
    Product *= T.Tile;
  return Product;
}

int64_t KernelConfig::tbxSize() const { return productOfTiles(TBx); }
int64_t KernelConfig::tbySize() const { return productOfTiles(TBy); }
int64_t KernelConfig::regXSize() const { return productOfTiles(RegX); }
int64_t KernelConfig::regYSize() const { return productOfTiles(RegY); }
int64_t KernelConfig::tbkSize() const { return productOfTiles(TBk); }

const IndexTile *KernelConfig::findTile(char Name) const {
  for (const std::vector<IndexTile> *List : {&TBx, &TBy, &RegX, &RegY, &TBk})
    for (const IndexTile &T : *List)
      if (T.Name == Name)
        return &T;
  return nullptr;
}

int64_t KernelConfig::tileOf(char Name) const {
  const IndexTile *T = findTile(Name);
  return T ? T->Tile : 1;
}

static int64_t ceilDiv(int64_t X, int64_t Y) { return (X + Y - 1) / Y; }

int64_t KernelConfig::numThreadBlocks(const ir::Contraction &TC) const {
  int64_t Blocks = 1;
  for (char Name : TC.externalIndices())
    Blocks *= ceilDiv(TC.extent(Name), tileOf(Name));
  return Blocks;
}

int64_t KernelConfig::numSteps(const ir::Contraction &TC) const {
  int64_t Steps = 1;
  for (char Name : TC.internalIndices())
    Steps *= ceilDiv(TC.extent(Name), tileOf(Name));
  return Steps;
}

int64_t KernelConfig::smemElements() const {
  return (tbxSize() * regXSize() + tbySize() * regYSize()) * tbkSize();
}

unsigned KernelConfig::registersPerThread(unsigned ElementSize) const {
  assert((ElementSize == 4 || ElementSize == 8) && "unsupported element size");
  unsigned RegsPerElement = ElementSize / 4;
  int64_t Values = regXSize() * regYSize() + regXSize() + regYSize();
  // ~28 registers of index arithmetic / loop state in generated kernels.
  int64_t Total = Values * RegsPerElement + 28;
  return static_cast<unsigned>(std::min<int64_t>(Total, 512));
}

KernelConfig KernelConfig::clampedTo(const ir::Contraction &TC) const {
  KernelConfig Clamped = *this;
  for (std::vector<IndexTile> *List :
       {&Clamped.TBx, &Clamped.TBy, &Clamped.RegX, &Clamped.RegY,
        &Clamped.TBk})
    for (IndexTile &T : *List)
      T.Tile = std::min(T.Tile, TC.extent(T.Name));
  return Clamped;
}

std::string KernelConfig::validate(const ir::Contraction &TC) const {
  // Each index mapped at most once.
  std::array<int, 26> SeenCount{};
  for (const std::vector<IndexTile> *List : {&TBx, &TBy, &RegX, &RegY, &TBk})
    for (const IndexTile &T : *List) {
      if (T.Name < 'a' || T.Name > 'z')
        return "config maps invalid index name";
      ++SeenCount[T.Name - 'a'];
    }
  for (int S = 0; S < 26; ++S)
    if (SeenCount[S] > 1)
      return std::string("index '") + static_cast<char>('a' + S) +
             "' mapped to more than one dimension";

  // Tiles in range.
  for (const std::vector<IndexTile> *List : {&TBx, &TBy, &RegX, &RegY, &TBk})
    for (const IndexTile &T : *List) {
      if (T.Tile < 1)
        return std::string("index '") + T.Name + "' has tile < 1";
      if (T.Tile > TC.extent(T.Name))
        return std::string("index '") + T.Name + "' has tile > extent";
    }

  // Kind and ownership rules.
  ir::Operand YIn = yInput();
  auto checkExternalsFrom = [&](const std::vector<IndexTile> &List,
                                ir::Operand Input,
                                const char *Where) -> std::string {
    for (const IndexTile &T : List) {
      if (!TC.isExternal(T.Name))
        return std::string("internal index '") + T.Name + "' mapped on " +
               Where;
      if (TC.inputContaining(T.Name) != Input)
        return std::string("index '") + T.Name + "' on " + Where +
               " does not belong to the " +
               (Input == XInput ? "X" : "Y") + " input";
    }
    return std::string();
  };
  if (std::string Msg = checkExternalsFrom(TBx, XInput, "TBx"); !Msg.empty())
    return Msg;
  if (std::string Msg = checkExternalsFrom(RegX, XInput, "RegX"); !Msg.empty())
    return Msg;
  if (std::string Msg = checkExternalsFrom(TBy, YIn, "TBy"); !Msg.empty())
    return Msg;
  if (std::string Msg = checkExternalsFrom(RegY, YIn, "RegY"); !Msg.empty())
    return Msg;
  for (const IndexTile &T : TBk)
    if (!TC.isInternal(T.Name))
      return std::string("external index '") + T.Name + "' mapped on TBk";

  // The X input must contain the output FVI, which must lead TBx.
  char OutFvi = TC.fvi(ir::Operand::C);
  if (TC.inputContaining(OutFvi) != XInput)
    return "XInput does not contain the output tensor's FVI";
  if (TBx.empty() || TBx.front().Name != OutFvi)
    return "TBx must start with the output tensor's FVI";

  if (threadsPerBlock() < 1)
    return "empty thread block";
  return std::string();
}

std::string KernelConfig::toString() const {
  auto renderList = [](const char *Label,
                       const std::vector<IndexTile> &List) {
    std::string Out = std::string(Label) + "[";
    for (size_t I = 0; I < List.size(); ++I) {
      if (I != 0)
        Out += ',';
      Out += List[I].Name;
      Out += ':';
      Out += std::to_string(List[I].Tile);
    }
    Out += ']';
    return Out;
  };
  return renderList("TBx", TBx) + " " + renderList("TBy", TBy) + " " +
         renderList("RegX", RegX) + " " + renderList("RegY", RegY) + " " +
         renderList("TBk", TBk) + " X=" + ir::operandName(XInput);
}
