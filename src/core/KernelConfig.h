//===- core/KernelConfig.h - Generated-kernel parameters (Table II) -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel parameters of the paper's Table II: ordered lists of indices
/// mapped to the thread-block X/Y dimensions, to the per-thread register
/// tile X/Y dimensions, and to the shared-memory step dimension (TBk), each
/// with a tile size. External indices not mapped anywhere get tile size 1
/// and iterate across the grid (the paper's Blk mapping); internal indices
/// not in TBk get tile 1 and iterate across sequential steps.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_CORE_KERNELCONFIG_H
#define COGENT_CORE_KERNELCONFIG_H

#include "ir/Contraction.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cogent {
namespace core {

/// One index together with its tile size along that index.
struct IndexTile {
  char Name = '?';
  int64_t Tile = 1;

  friend bool operator==(const IndexTile &X, const IndexTile &Y) {
    return X.Name == Y.Name && X.Tile == Y.Tile;
  }
};

/// A complete mapping + tile-size choice for one contraction (Table II).
///
/// XInput identifies the input tensor that contains the output's FVI; its
/// external indices populate TBx/RegX, the other input's populate TBy/RegY,
/// exactly as in the paper's §III-B mapping scheme.
struct KernelConfig {
  ir::Operand XInput = ir::Operand::A;

  /// External indices mapped on the thread-block X dimension (l_TBx).
  /// The first entry is always the output tensor's FVI so stores coalesce.
  std::vector<IndexTile> TBx;
  /// External indices mapped on the thread-block Y dimension (l_TBy).
  std::vector<IndexTile> TBy;
  /// External indices register-tiled along X (REGx), drawn from XInput.
  std::vector<IndexTile> RegX;
  /// External indices register-tiled along Y (REGy), drawn from the other
  /// input.
  std::vector<IndexTile> RegY;
  /// Internal indices staged per step in shared memory (l_TBk).
  std::vector<IndexTile> TBk;

  /// The other input (the one providing TBy/RegY).
  ir::Operand yInput() const {
    return XInput == ir::Operand::A ? ir::Operand::B : ir::Operand::A;
  }

  int64_t tbxSize() const;
  int64_t tbySize() const;
  int64_t regXSize() const;
  int64_t regYSize() const;
  int64_t tbkSize() const;
  int64_t threadsPerBlock() const { return tbxSize() * tbySize(); }

  /// Tile assigned to index \p Name across all five lists (1 if unmapped).
  int64_t tileOf(char Name) const;

  /// True when \p Name appears in any of the five lists.
  bool isMapped(char Name) const { return findTile(Name) != nullptr; }

  /// Grid size: product over external indices of ceil(N_i / T_i).
  int64_t numThreadBlocks(const ir::Contraction &TC) const;

  /// Sequential steps: product over internal indices of ceil(N_i / T_i).
  int64_t numSteps(const ir::Contraction &TC) const;

  /// Shared-memory elements staged per step:
  /// TBx*REGx*TBk (for the X input) + TBy*REGy*TBk (for the Y input).
  int64_t smemElements() const;
  int64_t smemBytes(unsigned ElementSize) const {
    return smemElements() * ElementSize;
  }

  /// Estimated 32-bit registers per thread: the C accumulator tile, the two
  /// staging vectors, and a fixed addressing-arithmetic overhead.
  unsigned registersPerThread(unsigned ElementSize) const;

  /// Returns a copy with every tile clamped to the extents of \p TC. The
  /// emitted CUDA handles problem sizes smaller than the representative one
  /// through bounds guards; clamping mirrors that when re-planning the same
  /// configuration at a smaller (e.g. validation) size.
  KernelConfig clampedTo(const ir::Contraction &TC) const;

  /// Structural validation against \p TC: each index mapped at most once, to
  /// a legal dimension for its kind and owning input, with tile in
  /// [1, extent], and TBx led by the output FVI. Returns an empty string if
  /// valid, else a diagnostic.
  std::string validate(const ir::Contraction &TC) const;

  /// Compact human-readable rendering, e.g.
  /// "TBx[a:16] TBy[c:8,d:2] RegX[b:4] RegY[] TBk[e:8]".
  std::string toString() const;

private:
  const IndexTile *findTile(char Name) const;
};

} // namespace core
} // namespace cogent

#endif // COGENT_CORE_KERNELCONFIG_H
