//===- core/KernelPlan.cpp ---------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/KernelPlan.h"

#include <algorithm>
#include <cassert>
#include <tuple>

using namespace cogent;
using namespace cogent::core;
using cogent::ir::Contraction;
using cogent::ir::Operand;

std::vector<int64_t>
cogent::core::decodeMixedRadix(int64_t Value,
                               const std::vector<IndexTile> &List) {
  std::vector<int64_t> Digits(List.size());
  for (size_t I = 0; I < List.size(); ++I) {
    Digits[I] = Value % List[I].Tile;
    Value /= List[I].Tile;
  }
  return Digits;
}

/// Finds (Role, RolePos) of index \p Name within \p Config; Fixed when
/// unmapped or in TBk-serial position with tile 1.
static std::pair<CoordRole, unsigned> roleOf(const KernelConfig &Config,
                                             char Name) {
  auto searchIn = [&](const std::vector<IndexTile> &List, CoordRole Role)
      -> std::pair<CoordRole, unsigned> {
    for (unsigned I = 0; I < List.size(); ++I)
      if (List[I].Name == Name)
        return {Role, I};
    return {CoordRole::Fixed, 0};
  };
  for (const auto &[List, Role] :
       std::initializer_list<std::pair<const std::vector<IndexTile> &,
                                       CoordRole>>{
           {Config.TBx, CoordRole::ThreadX},
           {Config.TBy, CoordRole::ThreadY},
           {Config.RegX, CoordRole::RegX},
           {Config.RegY, CoordRole::RegY},
           {Config.TBk, CoordRole::Step}}) {
    auto [FoundRole, Pos] = searchIn(List, Role);
    if (FoundRole != CoordRole::Fixed)
      return {FoundRole, Pos};
  }
  return {CoordRole::Fixed, 0};
}

static int64_t ceilDiv(int64_t X, int64_t Y) { return (X + Y - 1) / Y; }

KernelPlan::KernelPlan(const Contraction &TCIn, KernelConfig ConfigIn)
    : TC(TCIn), Config(std::move(ConfigIn)) {
  assert(Config.validate(TC).empty() && "constructing plan from bad config");

  TBXSize = Config.tbxSize();
  TBYSize = Config.tbySize();
  REGXSize = Config.regXSize();
  REGYSize = Config.regYSize();
  TBKSize = Config.tbkSize();
  NumBlocks = Config.numThreadBlocks(TC);
  NumSteps = Config.numSteps(TC);

  for (char Name : TC.externalIndices()) {
    PlanDim Dim;
    Dim.Name = Name;
    Dim.Extent = TC.extent(Name);
    Dim.Tile = Config.tileOf(Name);
    Dim.NumTiles = ceilDiv(Dim.Extent, Dim.Tile);
    GridDims.push_back(Dim);
  }
  for (char Name : TC.internalIndices()) {
    PlanDim Dim;
    Dim.Name = Name;
    Dim.Extent = TC.extent(Name);
    Dim.Tile = Config.tileOf(Name);
    Dim.NumTiles = ceilDiv(Dim.Extent, Dim.Tile);
    StepDims.push_back(Dim);
  }

  auto buildSlice = [&](Operand Op) {
    std::vector<SliceDim> Dims;
    for (char Name : TC.indices(Op)) {
      SliceDim Dim;
      Dim.Name = Name;
      Dim.Extent = TC.extent(Name);
      Dim.Tile = Config.tileOf(Name);
      Dim.GlobalStride = TC.strideIn(Op, Name);
      std::tie(Dim.Role, Dim.RolePos) = roleOf(Config, Name);
      Dims.push_back(Dim);
    }
    // Shared-memory layout: thread-varying dimensions fastest so the
    // compute phase's per-lane staging reads hit consecutive banks
    // (conflict-free); register-tile dims next, staged contraction dims
    // last. The cooperative load scatters once per element, which is
    // cheap; the staging reads happen REGX+REGY times per 2*REGX*REGY
    // flops and must not serialize.
    auto priority = [](CoordRole Role) {
      switch (Role) {
      case CoordRole::ThreadX:
      case CoordRole::ThreadY:
        return 0;
      case CoordRole::RegX:
      case CoordRole::RegY:
        return 1;
      case CoordRole::Step:
        return 2;
      case CoordRole::Fixed:
        return 3;
      }
      return 3;
    };
    std::vector<size_t> Layout(Dims.size());
    for (size_t I = 0; I < Dims.size(); ++I)
      Layout[I] = I;
    std::stable_sort(Layout.begin(), Layout.end(), [&](size_t X, size_t Y) {
      return priority(Dims[X].Role) < priority(Dims[Y].Role);
    });
    int64_t SmemStride = 1;
    for (size_t I : Layout) {
      Dims[I].SmemStride = SmemStride;
      SmemStride *= Dims[I].Tile;
    }
    return Dims;
  };
  SliceA = buildSlice(Operand::A);
  SliceB = buildSlice(Operand::B);

  for (char Name : TC.indices(Operand::C)) {
    StoreDim Dim;
    Dim.Name = Name;
    Dim.Extent = TC.extent(Name);
    Dim.Tile = Config.tileOf(Name);
    Dim.GlobalStride = TC.strideIn(Operand::C, Name);
    std::tie(Dim.Role, Dim.RolePos) = roleOf(Config, Name);
    StoreDims.push_back(Dim);
  }
}

int64_t KernelPlan::sliceElements(Operand Op) const {
  assert(Op != Operand::C && "slices are for inputs");
  int64_t Elems = 1;
  for (const SliceDim &Dim : sliceDims(Op))
    Elems *= Dim.Tile;
  return Elems;
}

const std::vector<SliceDim> &KernelPlan::sliceDims(Operand Op) const {
  assert(Op != Operand::C && "slices are for inputs");
  return Op == Operand::A ? SliceA : SliceB;
}

/// Walks dims in layout order accumulating the contiguous run: a dimension
/// extends the run only while every faster dimension was covered in full.
template <typename DimT>
static int64_t contiguousRunOf(const std::vector<DimT> &Dims) {
  int64_t Run = 1;
  for (const DimT &Dim : Dims) {
    Run *= Dim.Tile;
    if (Dim.Tile < Dim.Extent)
      break;
  }
  return Run;
}

int64_t KernelPlan::contiguousRun(Operand Op) const {
  return contiguousRunOf(sliceDims(Op));
}

int64_t KernelPlan::contiguousRunC() const {
  return contiguousRunOf(StoreDims);
}
