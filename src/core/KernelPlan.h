//===- core/KernelPlan.h - Lowered execution plan for one config -----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a (Contraction, KernelConfig) pair into the concrete quantities
/// the rest of the system consumes: grid/step decompositions, per-slice
/// dimension descriptors with global and shared-memory strides, and
/// contiguity information. The CUDA emitter, the analytic cost model and
/// the functional simulator all derive from this one lowering so they are
/// guaranteed to describe the same schedule (Algorithm 1 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_CORE_KERNELPLAN_H
#define COGENT_CORE_KERNELPLAN_H

#include "core/KernelConfig.h"
#include "ir/Contraction.h"

#include <vector>

namespace cogent {
namespace core {

/// Where a slice dimension's intra-tile coordinate comes from at runtime.
enum class CoordRole {
  /// Decoded from threadIdx.x via the TBx list (mixed radix, first entry
  /// fastest).
  ThreadX,
  /// Decoded from threadIdx.y via the TBy list.
  ThreadY,
  /// Decoded from the register-tile X iterator via the RegX list.
  RegX,
  /// Decoded from the register-tile Y iterator via the RegY list.
  RegY,
  /// Decoded from the intra-step contraction iterator via the TBk list.
  Step,
  /// Tile 1: the coordinate is fixed by the block (external) or step
  /// (internal) base; nothing to decode.
  Fixed,
};

/// Grid/step decomposition of one loop index.
struct PlanDim {
  char Name = '?';
  int64_t Extent = 0;
  int64_t Tile = 1;
  int64_t NumTiles = 0;
};

/// One dimension of an input-tensor slice, in the owning tensor's own index
/// order (FVI first). The slice is stored flattened in this order in shared
/// memory, so loads walk global memory in the tensor's layout order.
struct SliceDim {
  char Name = '?';
  int64_t Tile = 1;
  int64_t Extent = 0;
  /// Column-major stride of this index in the owning global tensor.
  int64_t GlobalStride = 0;
  /// Stride of this dimension within the flattened shared-memory slice.
  int64_t SmemStride = 0;
  CoordRole Role = CoordRole::Fixed;
  /// Position of this index within its role's IndexTile list.
  unsigned RolePos = 0;
};

/// One dimension of the output tensor for the store phase, in C's index
/// order.
struct StoreDim {
  char Name = '?';
  int64_t Extent = 0;
  int64_t Tile = 1;
  int64_t GlobalStride = 0;
  CoordRole Role = CoordRole::Fixed;
  unsigned RolePos = 0;
};

/// Decodes \p Value as a mixed-radix number over the tiles of \p List
/// (first entry fastest varying), returning one digit per entry.
std::vector<int64_t> decodeMixedRadix(int64_t Value,
                                      const std::vector<IndexTile> &List);

/// Fully lowered plan; immutable after construction.
class KernelPlan {
public:
  /// \pre Config.validate(TC) returned an empty string.
  KernelPlan(const ir::Contraction &TC, KernelConfig Config);

  const ir::Contraction &contraction() const { return TC; }
  const KernelConfig &config() const { return Config; }

  int64_t tbX() const { return TBXSize; }
  int64_t tbY() const { return TBYSize; }
  int64_t regX() const { return REGXSize; }
  int64_t regY() const { return REGYSize; }
  int64_t tbk() const { return TBKSize; }
  int64_t threadsPerBlock() const { return TBXSize * TBYSize; }

  int64_t numBlocks() const { return NumBlocks; }
  int64_t numSteps() const { return NumSteps; }

  /// Slice elements staged per step for operand \p Op (A or B).
  int64_t sliceElements(ir::Operand Op) const;

  /// External-index grid decomposition, in C's index order.
  const std::vector<PlanDim> &gridDims() const { return GridDims; }
  /// Internal-index step decomposition, in A's index order.
  const std::vector<PlanDim> &stepDims() const { return StepDims; }

  /// Slice descriptors for input \p Op (A or B), in \p Op's index order.
  const std::vector<SliceDim> &sliceDims(ir::Operand Op) const;

  /// Store descriptors for C, in C's index order.
  const std::vector<StoreDim> &storeDims() const { return StoreDims; }

  /// Maximal contiguous global-memory run (in elements) of input \p Op's
  /// slice: the paper's cal_Cont().
  int64_t contiguousRun(ir::Operand Op) const;

  /// cal_Cont for the output store hyper-rectangle.
  int64_t contiguousRunC() const;

private:
  ir::Contraction TC;
  KernelConfig Config;

  int64_t TBXSize = 1, TBYSize = 1, REGXSize = 1, REGYSize = 1, TBKSize = 1;
  int64_t NumBlocks = 1, NumSteps = 1;

  std::vector<PlanDim> GridDims;
  std::vector<PlanDim> StepDims;
  std::vector<SliceDim> SliceA, SliceB;
  std::vector<StoreDim> StoreDims;
};

} // namespace core
} // namespace cogent

#endif // COGENT_CORE_KERNELPLAN_H
