//===- core/KernelRepository.cpp -----------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/KernelRepository.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace cogent;
using namespace cogent::core;

ErrorOr<size_t> KernelRepository::addRepresentative(
    const std::vector<std::pair<char, int64_t>> &Extents) {
  ErrorOr<GenerationResult> Result =
      Generator.generate(Spec, Extents, Options);
  if (!Result)
    return Result.takeError().withContext("adding representative size");
  assert(!Result->empty() && "generate() returned an empty kernel list");
  KernelVersion Version;
  Version.RepresentativeExtents = Extents;
  Version.Kernel = std::move(Result->Kernels.front());
  Versions.push_back(std::move(Version));
  return Versions.size() - 1;
}

ErrorOr<size_t> KernelRepository::addRepresentativeUniform(int64_t Extent) {
  std::vector<std::pair<char, int64_t>> Extents;
  for (char C = 'a'; C <= 'z'; ++C)
    if (Spec.find(C) != std::string::npos)
      Extents.emplace_back(C, Extent);
  return addRepresentative(Extents);
}

const KernelVersion &KernelRepository::selectFor(
    const std::vector<std::pair<char, int64_t>> &ActualExtents) const {
  assert(!Versions.empty() && "selection from an empty repository");

  auto extentOf = [](const std::vector<std::pair<char, int64_t>> &Extents,
                     char Name) -> int64_t {
    for (const auto &[N, E] : Extents)
      if (N == Name)
        return E;
    return -1;
  };

  size_t BestIdx = 0;
  double BestDistance = std::numeric_limits<double>::infinity();
  for (size_t I = 0; I < Versions.size(); ++I) {
    double Distance = 0.0;
    for (const auto &[Name, RepExtent] :
         Versions[I].RepresentativeExtents) {
      int64_t Actual = extentOf(ActualExtents, Name);
      assert(Actual > 0 && "actual extent missing for an index");
      double LogRatio = std::log(static_cast<double>(Actual) /
                                 static_cast<double>(RepExtent));
      Distance += LogRatio * LogRatio;
    }
    if (Distance < BestDistance) {
      BestDistance = Distance;
      BestIdx = I;
    }
  }
  return Versions[BestIdx];
}
