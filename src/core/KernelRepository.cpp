//===- core/KernelRepository.cpp -----------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/KernelRepository.h"

#include "support/Counters.h"
#include "support/FaultInjection.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

using namespace cogent;
using namespace cogent::core;

COGENT_COUNTER(NumCacheEntriesLoaded, "repository.entries-loaded",
               "intact on-disk cache entries re-generated into versions");
COGENT_COUNTER(NumCacheMisses, "repository.cache-misses",
               "on-disk cache entries rejected as corrupt/truncated/"
               "version-mismatched");

/// The on-disk cache format version. Bump on any layout change: a mismatch
/// is a full cache miss, never a best-effort parse of an older layout.
static const char *const RepoMagic = "COGENTREPO v2";

/// FNV-1a over the entry payload; cheap, stable across platforms, and
/// plenty to catch bit rot and truncation (this is integrity, not
/// authentication).
static uint64_t fnv1a(const std::string &Data) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (unsigned char Ch : Data) {
    Hash ^= Ch;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

ErrorOr<size_t> KernelRepository::addRepresentative(
    const std::vector<std::pair<char, int64_t>> &Extents) {
  ErrorOr<GenerationResult> Result =
      Generator.generate(Spec, Extents, Options);
  if (!Result)
    return Result.takeError().withContext("adding representative size");
  assert(!Result->empty() && "generate() returned an empty kernel list");
  KernelVersion Version;
  Version.RepresentativeExtents = Extents;
  Version.Kernel = std::move(Result->Kernels.front());
  Versions.push_back(std::move(Version));
  return Versions.size() - 1;
}

ErrorOr<size_t> KernelRepository::addRepresentativeUniform(int64_t Extent) {
  std::vector<std::pair<char, int64_t>> Extents;
  for (char C = 'a'; C <= 'z'; ++C)
    if (Spec.find(C) != std::string::npos)
      Extents.emplace_back(C, Extent);
  return addRepresentative(Extents);
}

const KernelVersion &KernelRepository::selectFor(
    const std::vector<std::pair<char, int64_t>> &ActualExtents) const {
  assert(!Versions.empty() && "selection from an empty repository");

  auto extentOf = [](const std::vector<std::pair<char, int64_t>> &Extents,
                     char Name) -> int64_t {
    for (const auto &[N, E] : Extents)
      if (N == Name)
        return E;
    return -1;
  };

  size_t BestIdx = 0;
  double BestDistance = std::numeric_limits<double>::infinity();
  for (size_t I = 0; I < Versions.size(); ++I) {
    double Distance = 0.0;
    for (const auto &[Name, RepExtent] :
         Versions[I].RepresentativeExtents) {
      int64_t Actual = extentOf(ActualExtents, Name);
      assert(Actual > 0 && "actual extent missing for an index");
      double LogRatio = std::log(static_cast<double>(Actual) /
                                 static_cast<double>(RepExtent));
      Distance += LogRatio * LogRatio;
    }
    if (Distance < BestDistance) {
      BestDistance = Distance;
      BestIdx = I;
    }
  }
  return Versions[BestIdx];
}

ErrorOr<void> KernelRepository::saveToFile(const std::string &Path) const {
  std::ostringstream OS;
  OS << RepoMagic << "\n";
  OS << "spec " << Spec << "\n";
  for (const KernelVersion &Version : Versions) {
    std::ostringstream Payload;
    Payload << Spec;
    for (const auto &[Name, Extent] : Version.RepresentativeExtents)
      Payload << " " << Name << "=" << Extent;
    OS << "entry" << Payload.str().substr(Spec.size()) << " fnv1a="
       << std::hex << fnv1a(Payload.str()) << std::dec << "\n";
  }
  std::ofstream File(Path, std::ios::trunc);
  if (!File || !(File << OS.str()) || !File.flush())
    return Error(ErrorCode::CorruptCache,
                 "cannot write repository cache '" + Path + "'");
  return {};
}

ErrorOr<size_t>
KernelRepository::loadFromFile(const std::string &Path,
                               std::vector<Error> *Warnings) {
  std::ifstream File(Path);
  if (!File)
    return Error(ErrorCode::CorruptCache,
                 "cannot read repository cache '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  std::string Content = Buffer.str();

  // Chaos site: bit rot on the cache medium. Corrupting the in-memory copy
  // after the read models a bad sector without touching the real file; the
  // checksum/parse hardening below must absorb it as a miss.
  if (support::chaosShouldFire(support::ChaosSite::RepositoryCorrupt)) {
    support::FaultInjector *Injector = support::activeFaultInjector();
    for (size_t I = 0; I < Content.size(); I += 37)
      Content[I] = static_cast<char>(Injector->corruptByte(I));
  }

  auto Warn = [&](std::string Message) {
    ++NumCacheMisses;
    if (Warnings)
      Warnings->push_back(Error(ErrorCode::CorruptCache, std::move(Message))
                              .withContext("loading '" + Path + "'"));
  };

  std::istringstream Lines(Content);
  std::string Line;
  if (!std::getline(Lines, Line) || Line != RepoMagic)
    return Error(ErrorCode::CorruptCache,
                 "repository cache '" + Path +
                     "' has a missing or incompatible version header "
                     "(expected '" + std::string(RepoMagic) + "')");
  if (!std::getline(Lines, Line) || Line.rfind("spec ", 0) != 0) {
    Warn("cache truncated before the spec line");
    return size_t(0);
  }
  if (Line.substr(5) != Spec) {
    Warn("cache is for contraction '" + Line.substr(5) +
         "', not this repository's '" + Spec + "'");
    return size_t(0);
  }

  size_t Loaded = 0;
  unsigned LineNo = 2;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Tag;
    LS >> Tag;
    if (Tag != "entry") {
      Warn("line " + std::to_string(LineNo) + ": unrecognized record '" +
           Tag + "'");
      continue;
    }
    std::vector<std::pair<char, int64_t>> Extents;
    std::string Token;
    std::optional<uint64_t> Checksum;
    bool Malformed = false;
    std::ostringstream Payload;
    Payload << Spec;
    while (LS >> Token) {
      if (Token.rfind("fnv1a=", 0) == 0) {
        const char *Digits = Token.c_str() + 6;
        char *End = nullptr;
        unsigned long long Value = std::strtoull(Digits, &End, 16);
        if (End != Digits && *End == '\0')
          Checksum = static_cast<uint64_t>(Value);
        else
          Malformed = true;
        break;
      }
      char Name = 0;
      long long Extent = 0;
      char Eq = 0;
      std::istringstream TS(Token);
      if (!(TS >> Name >> Eq >> Extent) || Eq != '=' || Name < 'a' ||
          Name > 'z' || Extent <= 0) {
        Malformed = true;
        break;
      }
      Extents.emplace_back(Name, static_cast<int64_t>(Extent));
      Payload << " " << Name << "=" << Extent;
    }
    if (Malformed || Extents.empty()) {
      Warn("line " + std::to_string(LineNo) + ": malformed cache entry");
      continue;
    }
    if (!Checksum) {
      Warn("line " + std::to_string(LineNo) +
           ": entry is truncated (no checksum)");
      continue;
    }
    if (*Checksum != fnv1a(Payload.str())) {
      Warn("line " + std::to_string(LineNo) +
           ": checksum mismatch (corrupt entry)");
      continue;
    }
    // Intact entry: re-generate rather than trusting any serialized kernel,
    // so a loaded version is exactly as verified as a fresh one.
    ErrorOr<size_t> Added = addRepresentative(Extents);
    if (!Added) {
      Warn("line " + std::to_string(LineNo) + ": entry re-generation failed: " +
           Added.errorMessage());
      continue;
    }
    ++NumCacheEntriesLoaded;
    ++Loaded;
  }
  return Loaded;
}
