//===- core/KernelRepository.h - Multi-size kernel versions (§IV-B) --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's multi-representative-size scheme (§IV-B): "When
/// the code generator receives a set of representative problem sizes, it
/// can generate different code versions targeted at each representative
/// problem size. ... the kernel is selected at runtime based on the closest
/// representative". A repository owns every generated version of one
/// contraction expression and answers runtime selection queries.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_CORE_KERNELREPOSITORY_H
#define COGENT_CORE_KERNELREPOSITORY_H

#include "core/Cogent.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cogent {
namespace core {

/// One generated code version together with the representative size it was
/// tuned for.
struct KernelVersion {
  std::vector<std::pair<char, int64_t>> RepresentativeExtents;
  GeneratedKernel Kernel;
};

/// All code versions of a single contraction expression.
class KernelRepository {
public:
  /// \p Spec in "C-A-B" notation; versions are added per representative
  /// size via addRepresentative().
  KernelRepository(const Cogent &Generator, std::string Spec,
                   CogentOptions Options = CogentOptions())
      : Generator(Generator), Spec(std::move(Spec)),
        Options(std::move(Options)) {}

  const std::string &spec() const { return Spec; }
  size_t numVersions() const { return Versions.size(); }
  const KernelVersion &version(size_t I) const { return Versions[I]; }

  /// Generates and stores a code version tuned for \p Extents. Returns the
  /// version index, or an error for malformed specs/extents.
  ErrorOr<size_t>
  addRepresentative(const std::vector<std::pair<char, int64_t>> &Extents);

  /// Convenience: uniform representative extent.
  ErrorOr<size_t> addRepresentativeUniform(int64_t Extent);

  /// Runtime selection: the stored version whose representative size is
  /// closest to \p ActualExtents in log-space (so 2x too big and 2x too
  /// small are equally distant). \pre numVersions() > 0 and every index of
  /// the expression has an actual extent.
  const KernelVersion &
  selectFor(const std::vector<std::pair<char, int64_t>> &ActualExtents) const;

  /// Writes the repository's representative-size list as a versioned,
  /// checksummed text cache ("COGENTREPO v2" header, one FNV-1a-guarded
  /// line per entry). Kernels are not serialized: generation is
  /// deterministic, so an entry re-generates from its extents on load.
  /// ErrorCode::CorruptCache when the file cannot be written.
  ErrorOr<void> saveToFile(const std::string &Path) const;

  /// Loads a cache written by saveToFile, re-generating one version per
  /// intact entry and returning how many were loaded. A missing/unreadable
  /// file or a wrong/missing version header is an ErrorCode::CorruptCache
  /// error; a corrupt, truncated or checksum-mismatched *entry* is
  /// appended to \p Warnings (if non-null) as a CorruptCache diagnostic and
  /// skipped — a cache miss, never a crash and never silent reuse of bad
  /// data. Entries whose spec disagrees with this repository's are rejected
  /// the same way.
  ErrorOr<size_t> loadFromFile(const std::string &Path,
                               std::vector<Error> *Warnings = nullptr);

private:
  const Cogent &Generator;
  std::string Spec;
  CogentOptions Options;
  std::vector<KernelVersion> Versions;
};

} // namespace core
} // namespace cogent

#endif // COGENT_CORE_KERNELREPOSITORY_H
