//===- core/KernelRepository.h - Multi-size kernel versions (§IV-B) --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's multi-representative-size scheme (§IV-B): "When
/// the code generator receives a set of representative problem sizes, it
/// can generate different code versions targeted at each representative
/// problem size. ... the kernel is selected at runtime based on the closest
/// representative". A repository owns every generated version of one
/// contraction expression and answers runtime selection queries.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_CORE_KERNELREPOSITORY_H
#define COGENT_CORE_KERNELREPOSITORY_H

#include "core/Cogent.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace cogent {
namespace support {
class MetricRegistry;
} // namespace support
namespace core {

/// One generated code version together with the representative size it was
/// tuned for.
struct KernelVersion {
  std::vector<std::pair<char, int64_t>> RepresentativeExtents;
  GeneratedKernel Kernel;
};

/// All code versions of a single contraction expression.
class KernelRepository {
public:
  /// \p Spec in "C-A-B" notation; versions are added per representative
  /// size via addRepresentative().
  KernelRepository(const Cogent &Generator, std::string Spec,
                   CogentOptions Options = CogentOptions())
      : Generator(Generator), Spec(std::move(Spec)),
        Options(std::move(Options)) {}

  const std::string &spec() const { return Spec; }
  size_t numVersions() const { return Versions.size(); }
  const KernelVersion &version(size_t I) const { return Versions[I]; }

  /// Generates and stores a code version tuned for \p Extents. Returns the
  /// version index, or an error for malformed specs/extents.
  ErrorOr<size_t>
  addRepresentative(const std::vector<std::pair<char, int64_t>> &Extents);

  /// Convenience: uniform representative extent.
  ErrorOr<size_t> addRepresentativeUniform(int64_t Extent);

  /// Runtime selection: the stored version whose representative size is
  /// closest to \p ActualExtents in log-space (so 2x too big and 2x too
  /// small are equally distant). \pre numVersions() > 0 and every index of
  /// the expression has an actual extent.
  const KernelVersion &
  selectFor(const std::vector<std::pair<char, int64_t>> &ActualExtents) const;

  /// Writes the repository's representative-size list as a versioned,
  /// checksummed text cache ("COGENTREPO v2" header, one FNV-1a-guarded
  /// line per entry). Kernels are not serialized: generation is
  /// deterministic, so an entry re-generates from its extents on load.
  /// ErrorCode::CorruptCache when the file cannot be written.
  ErrorOr<void> saveToFile(const std::string &Path) const;

  /// Loads a cache written by saveToFile, re-generating one version per
  /// intact entry and returning how many were loaded. A missing/unreadable
  /// file or a wrong/missing version header is an ErrorCode::CorruptCache
  /// error; a corrupt, truncated or checksum-mismatched *entry* is
  /// appended to \p Warnings (if non-null) as a CorruptCache diagnostic and
  /// skipped — a cache miss, never a crash and never silent reuse of bad
  /// data. Entries whose spec disagrees with this repository's are rejected
  /// the same way.
  ErrorOr<size_t> loadFromFile(const std::string &Path,
                               std::vector<Error> *Warnings = nullptr);

private:
  const Cogent &Generator;
  std::string Spec;
  CogentOptions Options;
  std::vector<KernelVersion> Versions;
};

/// Canonical cache key for one generation request: the spec, the
/// representative extents in input order and the element size. The device
/// is fixed per generator (one ShardedKernelRepository serves one Cogent),
/// and per-run knobs — deadlines, degraded start rungs, chaos seeds — are
/// deliberately excluded: a warm entry answers every variant of the same
/// contraction, which is exactly what lets a deadline-pressured request
/// skip the search entirely on a hit.
std::string contractionSignature(
    const std::string &Spec,
    const std::vector<std::pair<char, int64_t>> &Extents,
    unsigned ElementSize);

/// A concurrent, signature-hash-sharded plan cache for the service layer.
///
/// Each signature lives in exactly one of N shards (FNV-1a of the
/// signature modulo N) guarded by its own mutex, so lookups for different
/// contractions contend only when they collide on a shard — never on one
/// global lock. Generation always happens *outside* any shard lock.
///
/// Integrity: every entry carries an FNV-1a checksum of its kernel source
/// and configuration, validated on every hit. A mismatch (bit rot, or the
/// repository-corrupt chaos site) quarantines the entry — it is evicted
/// and counted, its shard is marked suspect, and the lookup proceeds as a
/// CorruptCache-style miss that regenerates a fresh, fully verified plan.
/// Corruption never crosses a shard boundary: only the owning shard's
/// entries are evicted or rescanned. rebuildQuarantined() is the
/// background-repair hook: it rescans every suspect shard, evicts any
/// further corrupt entries and regenerates all evicted signatures.
class ShardedKernelRepository {
public:
  ShardedKernelRepository(const Cogent &Generator, size_t NumShards = 16,
                          CogentOptions Options = CogentOptions());

  /// One lookup's outcome: the (copied) plan plus how it was obtained.
  struct Lookup {
    GeneratedKernel Kernel;
    FallbackLevel Fallback = FallbackLevel::None;
    /// Set when the plan came from the cache (checksum-validated).
    bool CacheHit = false;
    /// Set when this lookup found its cached entry corrupt and evicted it
    /// (the returned plan is freshly regenerated).
    bool Quarantined = false;
    /// Verifier/lint rejections the generation absorbed before producing
    /// the plan (0 on a cache hit). The service's circuit breaker feeds on
    /// these: a signature that keeps rejecting is in trouble even when the
    /// fallback chain ultimately rescues it.
    uint64_t VerifierRejections = 0;
    uint64_t LintRejections = 0;
  };

  /// Serves \p Spec x \p Extents from the cache, or generates, inserts and
  /// returns a fresh plan on a miss. \p Override, when non-null, replaces
  /// the repository's CogentOptions for the *generation* only (deadline
  /// budgets, degraded start rungs, chaos) — it never changes the cache
  /// key. Thread-safe; errors are the generator's typed errors.
  ErrorOr<Lookup>
  lookupOrGenerate(const std::string &Spec,
                   const std::vector<std::pair<char, int64_t>> &Extents,
                   const CogentOptions *Override = nullptr);

  /// Generates unconditionally (no cache lookup) and refreshes the cache
  /// with the fresh plan. For cold-path benchmarking and callers that need
  /// a guaranteed full-pipeline run (circuit-breaker probes).
  ErrorOr<Lookup>
  generateFresh(const std::string &Spec,
                const std::vector<std::pair<char, int64_t>> &Extents,
                const CogentOptions *Override = nullptr);

  /// Rescans every shard marked suspect by a quarantine, evicts entries
  /// whose checksums no longer match, regenerates every evicted signature
  /// and clears the suspect marks. Returns how many entries were rebuilt.
  /// Intended for a background/repair thread; safe concurrently with
  /// lookups.
  size_t rebuildQuarantined();

  size_t numShards() const { return Shards.size(); }
  /// Total cached entries across all shards.
  size_t size() const;
  /// Entries in shard \p I.
  size_t shardSize(size_t I) const;
  /// Which shard \p Signature maps to.
  size_t shardOf(const std::string &Signature) const;
  /// Shards currently marked suspect (quarantined since the last rebuild).
  size_t suspectShards() const;

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t quarantined() const {
    return Quarantined.load(std::memory_order_relaxed);
  }
  uint64_t rebuilt() const { return Rebuilt.load(std::memory_order_relaxed); }

  /// Mirrors the cache's tallies into \p Registry under "<Prefix>" names:
  /// hits/misses/quarantined/rebuilt as monotonic counters (bridgeTo, so
  /// repeated mirroring is idempotent), size/suspect-shards as gauges.
  /// The service's telemetry exporters call this before every render.
  void mirrorMetrics(support::MetricRegistry &Registry,
                     const std::string &Prefix = "cache.") const;

private:
  struct Entry {
    std::vector<std::pair<char, int64_t>> Extents;
    GeneratedKernel Kernel;
    FallbackLevel Fallback = FallbackLevel::None;
    uint64_t Checksum = 0;
  };
  struct Shard {
    mutable std::mutex Lock;
    std::unordered_map<std::string, Entry> Entries;
    /// Set when a quarantine happened here; cleared by rebuildQuarantined.
    bool Suspect = false;
  };

  ErrorOr<Lookup>
  generateInto(Shard &S, const std::string &Signature,
               const std::string &Spec,
               const std::vector<std::pair<char, int64_t>> &Extents,
               const CogentOptions *Override, bool WasQuarantine);

  const Cogent &Generator;
  CogentOptions Options;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Quarantined{0};
  std::atomic<uint64_t> Rebuilt{0};
};

} // namespace core
} // namespace cogent

#endif // COGENT_CORE_KERNELREPOSITORY_H
