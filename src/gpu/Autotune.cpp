//===- gpu/Autotune.cpp --------------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gpu/Autotune.h"

#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "support/Counters.h"
#include "support/FaultInjection.h"
#include "support/Random.h"
#include "support/Trace.h"
#include "tensor/Reference.h"

#include <algorithm>
#include <cassert>

using namespace cogent;
using namespace cogent::gpu;
using cogent::ir::Contraction;
using cogent::ir::Operand;

COGENT_COUNTER(NumCandidatesMeasured, "autotune.candidates-measured",
               "top-K candidates measured by simulation refinement");

namespace {

/// Rebuilds \p TC with every extent clamped to \p MaxExtent.
Contraction scaledContraction(const Contraction &TC, int64_t MaxExtent) {
  std::vector<std::pair<char, int64_t>> Extents;
  for (char Name : TC.allIndices())
    Extents.emplace_back(Name, std::min(TC.extent(Name), MaxExtent));
  ErrorOr<Contraction> Scaled = Contraction::parse(TC.toString(), Extents);
  assert(Scaled.hasValue() && "rescaling a valid contraction cannot fail");
  return *Scaled;
}

} // namespace

RefinementResult
cogent::gpu::refineTopKBySimulation(const Contraction &TC,
                                    const core::GenerationResult &Result,
                                    const DeviceSpec &Device,
                                    unsigned ElementSize,
                                    int64_t MeasureExtent) {
  assert(!Result.Kernels.empty() && "nothing to refine");
  support::TraceSpan Span("autotune.refine");
  Span.arg("candidates", std::to_string(Result.Kernels.size()));
  NumCandidatesMeasured += Result.Kernels.size();
  Contraction Small = scaledContraction(TC, MeasureExtent);

  Rng Generator(0xa070ULL);
  tensor::Tensor<double> A = tensor::makeOperand<double>(Small, Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(Small, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  tensor::Tensor<double> C = tensor::makeOperand<double>(Small, Operand::C);

  Calibration Calib = makeCalibration(Device);
  RefinementResult Refined;
  double BestGflops = -1.0;
  for (size_t I = 0; I < Result.Kernels.size(); ++I) {
    core::KernelConfig Config =
        Result.Kernels[I].Config.clampedTo(Small);
    core::KernelPlan Plan(Small, Config);
    SimResult Sim = simulateKernel(Plan, C, A, B);

    MeasuredCandidate Candidate;
    Candidate.KernelIndex = I;
    Candidate.ExactTransactions = Sim.totalTransactions();
    KernelProfile Profile =
        makeProfileFromSim(Plan, Device, ElementSize, Sim);
    Candidate.MeasuredGflops =
        estimateKernelTime(Device, Calib, Profile).Gflops;
    // Chaos site: a hostile autotuner whose measurements misrank the top-K.
    // Every candidate it promotes is still a verified plan, so a misranking
    // can cost performance but never validity.
    Candidate.MeasuredGflops = support::chaosPerturb(
        support::ChaosSite::AutotuneMisrank, Candidate.MeasuredGflops);
    if (Candidate.MeasuredGflops > BestGflops) {
      BestGflops = Candidate.MeasuredGflops;
      Refined.WinnerIndex = I;
    }
    Refined.Candidates.push_back(Candidate);
  }
  Refined.ModelPickConfirmed = Refined.WinnerIndex == 0;
  return Refined;
}
