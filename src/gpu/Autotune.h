//===- gpu/Autotune.h - Simulation-refined top-K selection (§VI) -----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's related-work section sketches the natural extension of the
/// model-driven pipeline: "auto-tuned across a selected set of
/// configurations" — run only the cost model's top few candidates and keep
/// the measured winner. Here "measurement" is the functional simulator's
/// exact transaction counts fed through the roofline model, optionally at a
/// scaled-down problem size to bound measurement cost, mirroring how one
/// would benchmark candidate kernels on hardware with a representative
/// input.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_GPU_AUTOTUNE_H
#define COGENT_GPU_AUTOTUNE_H

#include "core/Cogent.h"
#include "gpu/DeviceSpec.h"

#include <cstdint>
#include <vector>

namespace cogent {
namespace gpu {

/// Outcome of one candidate's simulated measurement.
struct MeasuredCandidate {
  size_t KernelIndex = 0;
  /// Simulated GFLOPS at the measurement size.
  double MeasuredGflops = 0.0;
  /// Exact transactions measured by the simulator.
  uint64_t ExactTransactions = 0;
};

/// Result of the refinement pass.
struct RefinementResult {
  /// Candidates ordered as in the GenerationResult.
  std::vector<MeasuredCandidate> Candidates;
  /// Index (into Result.Kernels) of the measured winner.
  size_t WinnerIndex = 0;
  /// True when measurement agreed with the cost model's #1 pick.
  bool ModelPickConfirmed = true;
};

/// Simulates every kernel of \p Result on \p Device at extents clamped to
/// \p MeasureExtent and returns the measured ranking. \p TC must be the
/// contraction \p Result was generated for.
RefinementResult refineTopKBySimulation(const ir::Contraction &TC,
                                        const core::GenerationResult &Result,
                                        const DeviceSpec &Device,
                                        unsigned ElementSize,
                                        int64_t MeasureExtent = 12);

} // namespace gpu
} // namespace cogent

#endif // COGENT_GPU_AUTOTUNE_H
