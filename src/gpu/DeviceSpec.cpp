//===- gpu/DeviceSpec.cpp --------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gpu/DeviceSpec.h"

using namespace cogent;
using namespace cogent::gpu;

ErrorOr<void> DeviceSpec::validate() const {
  auto Invalid = [&](const std::string &What) -> Error {
    return Error(ErrorCode::InvalidDeviceSpec,
                 "device '" + (Name.empty() ? "<unnamed>" : Name) + "': " +
                     What);
  };
  if (NumSMs == 0)
    return Invalid("SM count must be positive");
  if (CoresPerSM == 0)
    return Invalid("cores per SM must be positive");
  if (SharedMemPerSM == 0)
    return Invalid("shared memory per SM must be positive");
  if (SharedMemPerBlock == 0)
    return Invalid("shared memory per block must be positive");
  if (SharedMemPerBlock > SharedMemPerSM)
    return Invalid("per-block shared memory (" +
                   std::to_string(SharedMemPerBlock) +
                   " B) exceeds the SM capacity (" +
                   std::to_string(SharedMemPerSM) + " B)");
  if (RegistersPerSM == 0)
    return Invalid("register file size must be positive");
  if (MaxRegistersPerThread == 0)
    return Invalid("per-thread register cap must be positive");
  if (WarpSize == 0)
    return Invalid("warp size must be positive");
  if (MaxThreadsPerSM == 0 || MaxThreadsPerSM % WarpSize != 0)
    return Invalid("threads per SM (" + std::to_string(MaxThreadsPerSM) +
                   ") must be a positive multiple of the warp size (" +
                   std::to_string(WarpSize) + ")");
  if (MaxThreadsPerBlock == 0)
    return Invalid("threads per block must be positive");
  if (MaxThreadsPerBlock > MaxThreadsPerSM)
    return Invalid("per-block thread limit (" +
                   std::to_string(MaxThreadsPerBlock) +
                   ") exceeds the SM thread limit (" +
                   std::to_string(MaxThreadsPerSM) + ")");
  if (MaxBlocksPerSM == 0)
    return Invalid("blocks per SM must be positive");
  if (TransactionBytes == 0 || TransactionBytes % 128 != 0)
    return Invalid("transaction size (" + std::to_string(TransactionBytes) +
                   " B) must be a positive multiple of 128");
  if (!(DramBandwidthGBs > 0.0))
    return Invalid("DRAM bandwidth must be positive");
  if (!(PeakGflopsDouble > 0.0) || !(PeakGflopsSingle > 0.0))
    return Invalid("peak arithmetic throughput must be positive");
  return {};
}

DeviceSpec cogent::gpu::makeP100() {
  DeviceSpec Spec;
  Spec.Name = "P100";
  Spec.NumSMs = 56;
  Spec.CoresPerSM = 64;
  Spec.SharedMemPerSM = 64 * 1024;
  Spec.SharedMemPerBlock = 48 * 1024;
  Spec.RegistersPerSM = 65536;
  Spec.DramBandwidthGBs = 732.0;
  Spec.PeakGflopsDouble = 4759.0;
  Spec.PeakGflopsSingle = 9519.0;
  return Spec;
}

DeviceSpec cogent::gpu::makeV100() {
  DeviceSpec Spec;
  Spec.Name = "V100";
  Spec.NumSMs = 80;
  Spec.CoresPerSM = 64;
  Spec.SharedMemPerSM = 96 * 1024;
  Spec.SharedMemPerBlock = 48 * 1024;
  Spec.RegistersPerSM = 65536;
  Spec.DramBandwidthGBs = 900.0;
  Spec.PeakGflopsDouble = 7066.0;
  Spec.PeakGflopsSingle = 14131.0;
  return Spec;
}
