//===- gpu/DeviceSpec.cpp --------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gpu/DeviceSpec.h"

using namespace cogent;
using namespace cogent::gpu;

DeviceSpec cogent::gpu::makeP100() {
  DeviceSpec Spec;
  Spec.Name = "P100";
  Spec.NumSMs = 56;
  Spec.CoresPerSM = 64;
  Spec.SharedMemPerSM = 64 * 1024;
  Spec.SharedMemPerBlock = 48 * 1024;
  Spec.RegistersPerSM = 65536;
  Spec.DramBandwidthGBs = 732.0;
  Spec.PeakGflopsDouble = 4759.0;
  Spec.PeakGflopsSingle = 9519.0;
  return Spec;
}

DeviceSpec cogent::gpu::makeV100() {
  DeviceSpec Spec;
  Spec.Name = "V100";
  Spec.NumSMs = 80;
  Spec.CoresPerSM = 64;
  Spec.SharedMemPerSM = 96 * 1024;
  Spec.SharedMemPerBlock = 48 * 1024;
  Spec.RegistersPerSM = 65536;
  Spec.DramBandwidthGBs = 900.0;
  Spec.PeakGflopsDouble = 7066.0;
  Spec.PeakGflopsSingle = 14131.0;
  return Spec;
}
