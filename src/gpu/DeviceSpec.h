//===- gpu/DeviceSpec.h - GPU machine-model parameters ---------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architectural parameters of the simulated GPUs. The paper evaluates on an
/// Nvidia Pascal P100 and a Volta V100; since this environment has no GPU,
/// these specs parameterize the transaction-counting simulator and the
/// roofline performance model that substitute for hardware runs (see
/// DESIGN.md, "Hardware substitution").
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_GPU_DEVICESPEC_H
#define COGENT_GPU_DEVICESPEC_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace cogent {
namespace gpu {

/// Static hardware description of one GPU model.
struct DeviceSpec {
  std::string Name;

  /// Number of streaming multiprocessors.
  unsigned NumSMs = 0;
  /// FP32 cores per SM (both P100 and V100 have 64).
  unsigned CoresPerSM = 64;

  /// Shared memory capacity per SM, bytes.
  unsigned SharedMemPerSM = 0;
  /// Shared memory limit per thread block, bytes.
  unsigned SharedMemPerBlock = 0;
  /// 32-bit registers per SM.
  unsigned RegistersPerSM = 65536;
  /// Hardware cap on registers addressable by one thread.
  unsigned MaxRegistersPerThread = 255;

  unsigned MaxThreadsPerSM = 2048;
  unsigned MaxThreadsPerBlock = 1024;
  unsigned MaxBlocksPerSM = 32;
  unsigned WarpSize = 32;

  /// Size and alignment of one global-memory transaction (the cost model in
  /// the paper assumes 128 bytes == 16 doubles).
  unsigned TransactionBytes = 128;

  /// Peak DRAM bandwidth, GB/s.
  double DramBandwidthGBs = 0.0;
  /// Peak double- and single-precision throughput, GFLOP/s.
  double PeakGflopsDouble = 0.0;
  double PeakGflopsSingle = 0.0;

  /// Fixed kernel-launch latency, microseconds.
  double KernelLaunchOverheadUs = 5.0;

  unsigned maxWarpsPerSM() const { return MaxThreadsPerSM / WarpSize; }

  /// Checks that the spec describes a physically plausible device: positive
  /// SM count, shared memory, bandwidth and thread limits; a warp-divisible
  /// block limit; and a 128-multiple transaction size (the coalescing model
  /// assumes full 128-byte DRAM sectors). Every pipeline entry point calls
  /// this before trusting the spec, so hostile or corrupted DeviceSpecs
  /// surface as ErrorCode::InvalidDeviceSpec instead of nonsense plans.
  ErrorOr<void> validate() const;
};

/// Tesla P100 (Pascal, 56 SMs) as used in the paper's Fig. 4/6.
DeviceSpec makeP100();

/// Tesla V100 (Volta, 80 SMs) as used in the paper's Fig. 5/7/8.
DeviceSpec makeV100();

} // namespace gpu
} // namespace cogent

#endif // COGENT_GPU_DEVICESPEC_H
