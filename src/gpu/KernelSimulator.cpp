//===- gpu/KernelSimulator.cpp -------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gpu/KernelSimulator.h"

#include "core/CostModel.h"
#include "support/Counters.h"
#include "support/FaultInjection.h"
#include "support/Trace.h"

#include <algorithm>
#include <array>
#include <cassert>

using namespace cogent;
using namespace cogent::gpu;

COGENT_COUNTER(NumKernelsSimulated, "sim.kernels-simulated",
               "functional kernel simulations run");
COGENT_COUNTER(NumSimTransactions, "sim.transactions",
               "exact 128-byte DRAM transactions counted by the simulator");
COGENT_COUNTER(NumSimSmemBytes, "sim.smem-bytes-read",
               "shared-memory bytes read during simulated register staging");
using cogent::core::CoordRole;
using cogent::core::IndexTile;
using cogent::core::KernelPlan;
using cogent::core::PlanDim;
using cogent::core::SliceDim;
using cogent::core::StoreDim;
using cogent::ir::Operand;
using cogent::tensor::Tensor;

namespace {

/// Counts the distinct aligned segments touched by a set of element
/// addresses; \p Addrs is scratch, modified in place.
uint64_t countSegments(std::vector<int64_t> &Addrs, unsigned ElementSize,
                       unsigned TransactionBytes) {
  if (Addrs.empty())
    return 0;
  for (int64_t &Addr : Addrs)
    Addr = Addr * ElementSize / TransactionBytes;
  std::sort(Addrs.begin(), Addrs.end());
  uint64_t Count = 1;
  for (size_t I = 1; I < Addrs.size(); ++I)
    Count += Addrs[I] != Addrs[I - 1];
  return Count;
}

/// Per-(role coordinate) shared-memory offset tables for one input slice:
/// SmemOff[role coord] = sum over dims with that role of digit * SmemStride.
std::vector<int64_t> buildSmemOffsets(const std::vector<SliceDim> &Dims,
                                      CoordRole Role,
                                      const std::vector<IndexTile> &List) {
  int64_t Count = 1;
  for (const IndexTile &T : List)
    Count *= T.Tile;
  std::vector<int64_t> Offsets(static_cast<size_t>(Count), 0);
  for (int64_t V = 0; V < Count; ++V) {
    std::vector<int64_t> Digits = core::decodeMixedRadix(V, List);
    int64_t Off = 0;
    for (const SliceDim &Dim : Dims)
      if (Dim.Role == Role)
        Off += Digits[Dim.RolePos] * Dim.SmemStride;
    Offsets[static_cast<size_t>(V)] = Off;
  }
  return Offsets;
}

/// Cooperatively loads one input slice into \p Smem, counting warp-exact
/// transactions. \p ExtBase / \p IntBase give the block/step base
/// coordinate of every index ('a'..'z').
template <typename ElementT>
uint64_t loadSlice(const KernelPlan &Plan, Operand Op,
                   const Tensor<ElementT> &Global,
                   const std::array<int64_t, 26> &BaseCoord,
                   std::vector<ElementT> &Smem, int64_t NumThreads,
                   const SimOptions &Options) {
  const std::vector<SliceDim> &Dims = Plan.sliceDims(Op);
  int64_t SliceElems = Plan.sliceElements(Op);
  assert(static_cast<int64_t>(Smem.size()) == SliceElems &&
         "smem buffer size mismatch");

  uint64_t Transactions = 0;
  std::vector<int64_t> WarpAddrs;
  WarpAddrs.reserve(Options.WarpSize);

  for (int64_t RoundBase = 0; RoundBase < SliceElems;
       RoundBase += NumThreads) {
    int64_t RoundEnd = std::min(RoundBase + NumThreads, SliceElems);
    for (int64_t WarpBase = RoundBase; WarpBase < RoundEnd;
         WarpBase += Options.WarpSize) {
      int64_t WarpEnd =
          std::min<int64_t>(WarpBase + Options.WarpSize, RoundEnd);
      WarpAddrs.clear();
      for (int64_t S = WarpBase; S < WarpEnd; ++S) {
        // Decode the flattened slice element into per-dim digits. The
        // element lands at the (possibly permuted) SMEM offset given by
        // the plan's staging layout.
        int64_t Rem = S;
        int64_t Addr = 0;
        int64_t SmemOff = 0;
        bool InBounds = true;
        for (const SliceDim &Dim : Dims) {
          int64_t Digit = Rem % Dim.Tile;
          Rem /= Dim.Tile;
          SmemOff += Digit * Dim.SmemStride;
          int64_t Coord = BaseCoord[Dim.Name - 'a'] + Digit;
          if (Coord >= Dim.Extent) {
            InBounds = false;
            break;
          }
          Addr += Coord * Dim.GlobalStride;
        }
        if (InBounds) {
          Smem[static_cast<size_t>(SmemOff)] = Global.at(Addr);
          WarpAddrs.push_back(Addr);
        } else {
          // Out-of-bounds elements still zero their full staging slot.
          Rem = S;
          SmemOff = 0;
          for (const SliceDim &Dim : Dims) {
            SmemOff += (Rem % Dim.Tile) * Dim.SmemStride;
            Rem /= Dim.Tile;
          }
          Smem[static_cast<size_t>(SmemOff)] = ElementT(0);
        }
      }
      Transactions += countSegments(WarpAddrs, sizeof(ElementT),
                                    Options.TransactionBytes);
    }
  }
  return Transactions;
}

} // namespace

template <typename ElementT>
SimResult cogent::gpu::simulateKernel(const KernelPlan &Plan,
                                      Tensor<ElementT> &C,
                                      const Tensor<ElementT> &A,
                                      const Tensor<ElementT> &B,
                                      const SimOptions &Options) {
  [[maybe_unused]] const ir::Contraction &TC = Plan.contraction();
  const core::KernelConfig &Config = Plan.config();
  assert(C.numElements() == TC.numElements(Operand::C) &&
         A.numElements() == TC.numElements(Operand::A) &&
         B.numElements() == TC.numElements(Operand::B) &&
         "operand sizes do not match the contraction");

  support::TraceSpan Span("sim.kernel");
  if (Span.live())
    Span.arg("contraction", TC.toStringWithExtents());

  SimResult Result;
  const int64_t TBX = Plan.tbX(), TBY = Plan.tbY();
  const int64_t REGX = Plan.regX(), REGY = Plan.regY();
  const int64_t TBK = Plan.tbk();
  const int64_t NumThreads = TBX * TBY;

  Operand XIn = Config.XInput;
  Operand YIn = Config.yInput();

  // Shared-memory offset tables for the compute phase (step-invariant).
  const std::vector<SliceDim> &XDims = Plan.sliceDims(XIn);
  const std::vector<SliceDim> &YDims = Plan.sliceDims(YIn);
  std::vector<int64_t> XOffTx =
      buildSmemOffsets(XDims, CoordRole::ThreadX, Config.TBx);
  std::vector<int64_t> XOffRx =
      buildSmemOffsets(XDims, CoordRole::RegX, Config.RegX);
  std::vector<int64_t> XOffKk =
      buildSmemOffsets(XDims, CoordRole::Step, Config.TBk);
  std::vector<int64_t> YOffTy =
      buildSmemOffsets(YDims, CoordRole::ThreadY, Config.TBy);
  std::vector<int64_t> YOffRy =
      buildSmemOffsets(YDims, CoordRole::RegY, Config.RegY);
  std::vector<int64_t> YOffKk =
      buildSmemOffsets(YDims, CoordRole::Step, Config.TBk);

  // Per-(role coordinate) intra-tile digits for the store phase, one entry
  // per C dim: digit tables indexed by the role coordinate value.
  const std::vector<StoreDim> &CDims = Plan.storeDims();
  auto storeDigits = [&](CoordRole Role, const std::vector<IndexTile> &List) {
    int64_t Count = 1;
    for (const IndexTile &T : List)
      Count *= T.Tile;
    // Digits[v][dim] for C dims with this role; others 0.
    std::vector<std::vector<int64_t>> Digits(
        static_cast<size_t>(Count),
        std::vector<int64_t>(CDims.size(), 0));
    for (int64_t V = 0; V < Count; ++V) {
      std::vector<int64_t> Decoded = core::decodeMixedRadix(V, List);
      for (size_t D = 0; D < CDims.size(); ++D)
        if (CDims[D].Role == Role)
          Digits[static_cast<size_t>(V)][D] = Decoded[CDims[D].RolePos];
    }
    return Digits;
  };
  std::vector<std::vector<int64_t>> CDigTx =
      storeDigits(CoordRole::ThreadX, Config.TBx);
  std::vector<std::vector<int64_t>> CDigTy =
      storeDigits(CoordRole::ThreadY, Config.TBy);
  std::vector<std::vector<int64_t>> CDigRx =
      storeDigits(CoordRole::RegX, Config.RegX);
  std::vector<std::vector<int64_t>> CDigRy =
      storeDigits(CoordRole::RegY, Config.RegY);

  std::vector<ElementT> SmemX(
      static_cast<size_t>(Plan.sliceElements(XIn)));
  std::vector<ElementT> SmemY(
      static_cast<size_t>(Plan.sliceElements(YIn)));
  std::vector<ElementT> Acc(
      static_cast<size_t>(NumThreads * REGX * REGY));
  std::vector<ElementT> RegA(static_cast<size_t>(REGX));
  std::vector<ElementT> RegB(static_cast<size_t>(REGY));

  const std::vector<PlanDim> &GridDims = Plan.gridDims();
  const std::vector<PlanDim> &StepDims = Plan.stepDims();
  std::array<int64_t, 26> BaseCoord{}; // block + step base per index

  std::vector<int64_t> WarpAddrs;
  WarpAddrs.reserve(Options.WarpSize);

  for (int64_t Block = 0; Block < Plan.numBlocks(); ++Block) {
    // Grid decode.
    int64_t Rem = Block;
    for (const PlanDim &Dim : GridDims) {
      BaseCoord[Dim.Name - 'a'] = (Rem % Dim.NumTiles) * Dim.Tile;
      Rem /= Dim.NumTiles;
    }
    std::fill(Acc.begin(), Acc.end(), ElementT(0));

    for (int64_t Step = 0; Step < Plan.numSteps(); ++Step) {
      // Step decode.
      int64_t SRem = Step;
      for (const PlanDim &Dim : StepDims) {
        BaseCoord[Dim.Name - 'a'] = (SRem % Dim.NumTiles) * Dim.Tile;
        SRem /= Dim.NumTiles;
      }

      uint64_t TransX = loadSlice(Plan, XIn, XIn == Operand::A ? A : B,
                                  BaseCoord, SmemX, NumThreads, Options);
      uint64_t TransY = loadSlice(Plan, YIn, YIn == Operand::A ? A : B,
                                  BaseCoord, SmemY, NumThreads, Options);
      (XIn == Operand::A ? Result.TransactionsA : Result.TransactionsB) +=
          TransX;
      (YIn == Operand::A ? Result.TransactionsA : Result.TransactionsB) +=
          TransY;

      // Compute phase: every thread stages REGX + REGY values per kk and
      // accumulates the outer product.
      for (int64_t Ty = 0; Ty < TBY; ++Ty) {
        for (int64_t Tx = 0; Tx < TBX; ++Tx) {
          ElementT *ThreadAcc =
              Acc.data() + (Tx + TBX * Ty) * REGX * REGY;
          for (int64_t Kk = 0; Kk < TBK; ++Kk) {
            for (int64_t Rx = 0; Rx < REGX; ++Rx)
              RegA[static_cast<size_t>(Rx)] =
                  SmemX[static_cast<size_t>(XOffTx[Tx] + XOffRx[Rx] +
                                            XOffKk[Kk])];
            for (int64_t Ry = 0; Ry < REGY; ++Ry)
              RegB[static_cast<size_t>(Ry)] =
                  SmemY[static_cast<size_t>(YOffTy[Ty] + YOffRy[Ry] +
                                            YOffKk[Kk])];
            for (int64_t Rx = 0; Rx < REGX; ++Rx)
              for (int64_t Ry = 0; Ry < REGY; ++Ry)
                ThreadAcc[Rx * REGY + Ry] +=
                    RegA[static_cast<size_t>(Rx)] *
                    RegB[static_cast<size_t>(Ry)];
          }
        }
      }
      Result.SmemBytesRead += static_cast<double>(NumThreads) * TBK *
                              (REGX + REGY) * sizeof(ElementT);
    }

    // Store phase. The kernel stores r_C[rx][ry] across all threads; a warp
    // issues one coalesced batch per (rx, ry) pair.
    // Reset step-base coordinates: internal indices play no role in C.
    for (const PlanDim &Dim : StepDims)
      BaseCoord[Dim.Name - 'a'] = 0;

    for (int64_t Rx = 0; Rx < REGX; ++Rx) {
      for (int64_t Ry = 0; Ry < REGY; ++Ry) {
        for (int64_t WarpBase = 0; WarpBase < NumThreads;
             WarpBase += Options.WarpSize) {
          int64_t WarpEnd = std::min<int64_t>(WarpBase + Options.WarpSize,
                                              NumThreads);
          WarpAddrs.clear();
          for (int64_t Tid = WarpBase; Tid < WarpEnd; ++Tid) {
            int64_t Tx = Tid % TBX;
            int64_t Ty = Tid / TBX;
            int64_t Addr = 0;
            bool InBounds = true;
            for (size_t D = 0; D < CDims.size(); ++D) {
              int64_t Coord =
                  BaseCoord[CDims[D].Name - 'a'] +
                  CDigTx[static_cast<size_t>(Tx)][D] +
                  CDigTy[static_cast<size_t>(Ty)][D] +
                  CDigRx[static_cast<size_t>(Rx)][D] +
                  CDigRy[static_cast<size_t>(Ry)][D];
              if (Coord >= CDims[D].Extent) {
                InBounds = false;
                break;
              }
              Addr += Coord * CDims[D].GlobalStride;
            }
            if (!InBounds)
              continue;
            C.at(Addr) =
                Acc[static_cast<size_t>((Tx + TBX * Ty) * REGX * REGY +
                                        Rx * REGY + Ry)];
            WarpAddrs.push_back(Addr);
          }
          Result.TransactionsC += countSegments(
              WarpAddrs, sizeof(ElementT), Options.TransactionBytes);
        }
      }
    }
  }
  // Chaos site: a lying measurement channel. The numerics above are already
  // correct and untouched; only the reported traffic skews, exercising every
  // consumer that trusts simulator counts (autotune ranking, profiles, the
  // differential traffic cross-check).
  if (support::chaosShouldFire(support::ChaosSite::SimTrafficSkew)) {
    double Factor = support::activeFaultInjector()->perturbFactor(
        support::ChaosSite::SimTrafficSkew);
    auto Skew = [Factor](uint64_t N) {
      return static_cast<uint64_t>(static_cast<double>(N) * Factor) + 1;
    };
    Result.TransactionsA = Skew(Result.TransactionsA);
    Result.TransactionsB = Skew(Result.TransactionsB);
    Result.TransactionsC = Skew(Result.TransactionsC);
  }
  ++NumKernelsSimulated;
  NumSimTransactions += Result.totalTransactions();
  NumSimSmemBytes += static_cast<uint64_t>(Result.SmemBytesRead);
  if (Span.live())
    Span.arg("transactions", std::to_string(Result.totalTransactions()));
  return Result;
}

template SimResult cogent::gpu::simulateKernel<double>(
    const KernelPlan &, Tensor<double> &, const Tensor<double> &,
    const Tensor<double> &, const SimOptions &);
template SimResult cogent::gpu::simulateKernel<float>(
    const KernelPlan &, Tensor<float> &, const Tensor<float> &,
    const Tensor<float> &, const SimOptions &);

KernelProfile cogent::gpu::makeProfileFromSim(const KernelPlan &Plan,
                                              const DeviceSpec &Device,
                                              unsigned ElementSize,
                                              const SimResult &Sim) {
  KernelProfile Profile =
      core::makeKernelProfile(Plan, Device, ElementSize);
  Profile.DramBytes = static_cast<double>(Sim.totalTransactions()) *
                      Device.TransactionBytes;
  Profile.SmemBytes = Sim.SmemBytesRead;
  return Profile;
}
