//===- gpu/KernelSimulator.h - Functional kernel interpreter ---------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a lowered KernelPlan exactly as the emitted CUDA kernel would:
/// thread block by thread block, step by step, staging input slices into a
/// simulated shared memory with cooperative flattened loads, accumulating
/// outer products into per-thread register tiles, and storing the guarded
/// output slice. While doing so it counts, exactly, the distinct 128-byte
/// global-memory segments each warp touches — the ground truth the paper's
/// Algorithm-3 cost model approximates.
///
/// This is the substitute for running the generated kernels on real GPUs:
/// it validates the schedule's numerics against the reference contraction
/// and supplies exact traffic numbers to the roofline time model.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_GPU_KERNELSIMULATOR_H
#define COGENT_GPU_KERNELSIMULATOR_H

#include "core/KernelPlan.h"
#include "gpu/DeviceSpec.h"
#include "gpu/PerfModel.h"
#include "tensor/Tensor.h"

#include <cstdint>

namespace cogent {
namespace gpu {

/// Simulation knobs.
struct SimOptions {
  unsigned TransactionBytes = 128;
  unsigned WarpSize = 32;
};

/// Exact traffic measurements from one simulated kernel execution.
struct SimResult {
  uint64_t TransactionsA = 0;
  uint64_t TransactionsB = 0;
  uint64_t TransactionsC = 0;
  /// Shared-memory bytes read during register staging.
  double SmemBytesRead = 0.0;

  uint64_t totalTransactions() const {
    return TransactionsA + TransactionsB + TransactionsC;
  }
};

/// Runs \p Plan on the given operands, writing the contraction result into
/// \p C (which must have the natural shape of the output). Returns exact
/// transaction counts.
template <typename ElementT>
SimResult simulateKernel(const core::KernelPlan &Plan,
                         tensor::Tensor<ElementT> &C,
                         const tensor::Tensor<ElementT> &A,
                         const tensor::Tensor<ElementT> &B,
                         const SimOptions &Options = SimOptions());

extern template SimResult simulateKernel<double>(
    const core::KernelPlan &, tensor::Tensor<double> &,
    const tensor::Tensor<double> &, const tensor::Tensor<double> &,
    const SimOptions &);
extern template SimResult simulateKernel<float>(
    const core::KernelPlan &, tensor::Tensor<float> &,
    const tensor::Tensor<float> &, const tensor::Tensor<float> &,
    const SimOptions &);

/// Builds a roofline profile from simulator-exact traffic (rather than the
/// analytic Algorithm-3 estimate).
KernelProfile makeProfileFromSim(const core::KernelPlan &Plan,
                                 const DeviceSpec &Device,
                                 unsigned ElementSize, const SimResult &Sim);

} // namespace gpu
} // namespace cogent

#endif // COGENT_GPU_KERNELSIMULATOR_H
