//===- gpu/LearnedRanker.cpp ---------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gpu/LearnedRanker.h"

#include "core/CostModel.h"
#include "core/Enumerator.h"
#include "gpu/KernelSimulator.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace cogent;
using namespace cogent::gpu;
using cogent::core::KernelPlan;
using cogent::ir::Contraction;
using cogent::ir::Operand;

std::vector<double> LearnedRanker::featuresOf(const KernelPlan &Plan,
                                              const DeviceSpec &Device,
                                              unsigned ElementSize) {
  core::TransactionCost Cost =
      core::estimateTransactions(Plan, ElementSize, Device.TransactionBytes);
  OccupancyResult Occ = core::planOccupancy(Plan, Device, ElementSize);
  double Wave =
      waveEfficiency(Device, Plan.numBlocks(), Occ.BlocksPerSM);

  auto logOf = [](double V) { return std::log(std::max(V, 1.0)); };
  std::vector<double> Features;
  Features.reserve(NumFeatures);
  Features.push_back(1.0); // bias
  Features.push_back(logOf(Cost.total()));
  Features.push_back(Occ.Occupancy);
  Features.push_back(Wave);
  Features.push_back(logOf(static_cast<double>(Plan.threadsPerBlock())));
  Features.push_back(
      logOf(static_cast<double>(Plan.regX() * Plan.regY())));
  Features.push_back(logOf(static_cast<double>(Plan.numSteps())));
  Features.push_back(
      logOf(static_cast<double>(Plan.config().smemBytes(ElementSize))));
  Features.push_back(
      logOf(static_cast<double>(Plan.contiguousRun(Operand::A))));
  Features.push_back(
      logOf(static_cast<double>(Plan.contiguousRun(Operand::B))));
  assert(Features.size() == NumFeatures && "feature count drifted");
  return Features;
}

void LearnedRanker::train(const std::vector<std::vector<double>> &Samples,
                          const std::vector<double> &Targets, double Ridge) {
  assert(!Samples.empty() && Samples.size() == Targets.size() &&
         "bad training set");
  const size_t Dim = NumFeatures;

  // Standardize every non-bias column so the ridge penalty treats all
  // features equally (raw scales span log-traffic ~15 vs occupancy ~0.5).
  FeatureMean.assign(Dim, 0.0);
  FeatureScale.assign(Dim, 1.0);
  for (size_t J = 1; J < Dim; ++J) {
    double Mean = 0.0;
    for (const std::vector<double> &X : Samples)
      Mean += X[J];
    Mean /= static_cast<double>(Samples.size());
    double Var = 0.0;
    for (const std::vector<double> &X : Samples)
      Var += (X[J] - Mean) * (X[J] - Mean);
    Var /= static_cast<double>(Samples.size());
    FeatureMean[J] = Mean;
    FeatureScale[J] = Var > 1e-12 ? std::sqrt(Var) : 1.0;
  }
  auto standardized = [&](const std::vector<double> &X, size_t J) {
    return (X[J] - FeatureMean[J]) / FeatureScale[J];
  };

  // Normal equations: (X^T X + ridge I) w = X^T y (no penalty on bias).
  std::vector<double> XtX(Dim * Dim, 0.0), Xty(Dim, 0.0);
  for (size_t S = 0; S < Samples.size(); ++S) {
    assert(Samples[S].size() == Dim && "feature vector size mismatch");
    for (size_t I = 0; I < Dim; ++I) {
      double XI = standardized(Samples[S], I);
      Xty[I] += XI * Targets[S];
      for (size_t J = 0; J < Dim; ++J)
        XtX[I * Dim + J] += XI * standardized(Samples[S], J);
    }
  }
  for (size_t I = 1; I < Dim; ++I)
    XtX[I * Dim + I] += Ridge;
  XtX[0] += 1e-9; // keep the bias row invertible

  // Gaussian elimination with partial pivoting (Dim is tiny).
  std::vector<double> W = Xty;
  for (size_t Col = 0; Col < Dim; ++Col) {
    size_t Pivot = Col;
    for (size_t Row = Col + 1; Row < Dim; ++Row)
      if (std::abs(XtX[Row * Dim + Col]) > std::abs(XtX[Pivot * Dim + Col]))
        Pivot = Row;
    if (Pivot != Col) {
      for (size_t J = 0; J < Dim; ++J)
        std::swap(XtX[Col * Dim + J], XtX[Pivot * Dim + J]);
      std::swap(W[Col], W[Pivot]);
    }
    double Diag = XtX[Col * Dim + Col];
    assert(std::abs(Diag) > 1e-12 && "singular ridge system");
    for (size_t Row = Col + 1; Row < Dim; ++Row) {
      double Factor = XtX[Row * Dim + Col] / Diag;
      for (size_t J = Col; J < Dim; ++J)
        XtX[Row * Dim + J] -= Factor * XtX[Col * Dim + J];
      W[Row] -= Factor * W[Col];
    }
  }
  for (size_t Col = Dim; Col-- > 0;) {
    for (size_t J = Col + 1; J < Dim; ++J)
      W[Col] -= XtX[Col * Dim + J] * W[J];
    W[Col] /= XtX[Col * Dim + Col];
  }
  Weights = std::move(W);
}

double LearnedRanker::predict(const std::vector<double> &Features) const {
  assert(isTrained() && "predicting with an untrained ranker");
  assert(Features.size() == Weights.size() && "feature size mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I)
    Sum += Weights[I] * (Features[I] - FeatureMean[I]) / FeatureScale[I];
  return Sum;
}

LearnedRanker LearnedRanker::fitFromSimulation(const Contraction &TC,
                                               const DeviceSpec &Device,
                                               unsigned ElementSize,
                                               size_t MaxSamples,
                                               int64_t MeasureExtent,
                                               uint64_t Seed) {
  // Measurement-size version of the contraction.
  std::vector<std::pair<char, int64_t>> Extents;
  for (char Name : TC.allIndices())
    Extents.emplace_back(Name, std::min(TC.extent(Name), MeasureExtent));
  ErrorOr<Contraction> Small = Contraction::parse(TC.toString(), Extents);
  assert(Small.hasValue() && "rescaling a valid contraction cannot fail");

  core::EnumerationOptions Options;
  Options.MinThreadBlocks = 1;
  Options.MinOccupancy = 0.0;
  Options.ElementSize = ElementSize;
  core::Enumerator Enum(*Small, Device, Options);
  std::vector<core::KernelConfig> Configs = Enum.enumerate();
  assert(!Configs.empty() && "nothing to train on");

  // Deterministic stratified sample.
  std::vector<core::KernelConfig> Sampled;
  size_t Stride = std::max<size_t>(1, Configs.size() / MaxSamples);
  for (size_t I = 0; I < Configs.size() && Sampled.size() < MaxSamples;
       I += Stride)
    Sampled.push_back(Configs[I]);

  Rng Generator(Seed);
  tensor::Tensor<double> A = tensor::makeOperand<double>(*Small, Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(*Small, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  tensor::Tensor<double> C = tensor::makeOperand<double>(*Small, Operand::C);

  Calibration Calib = makeCalibration(Device);
  std::vector<std::vector<double>> Samples;
  std::vector<double> Targets;
  for (const core::KernelConfig &Config : Sampled) {
    KernelPlan Plan(*Small, Config);
    Samples.push_back(featuresOf(Plan, Device, ElementSize));
    SimResult Sim = simulateKernel(Plan, C, A, B);
    KernelProfile Profile =
        makeProfileFromSim(Plan, Device, ElementSize, Sim);
    double Gflops = estimateKernelTime(Device, Calib, Profile).Gflops;
    Targets.push_back(std::log(std::max(Gflops, 1e-3)));
  }

  LearnedRanker Ranker;
  Ranker.train(Samples, Targets);
  return Ranker;
}

std::vector<size_t>
LearnedRanker::rank(const Contraction &TC,
                    const core::GenerationResult &Result,
                    const DeviceSpec &Device, unsigned ElementSize) const {
  assert(isTrained() && "ranking with an untrained ranker");
  std::vector<double> Scores;
  Scores.reserve(Result.Kernels.size());
  for (const core::GeneratedKernel &Kernel : Result.Kernels) {
    KernelPlan Plan(TC, Kernel.Config);
    Scores.push_back(predict(featuresOf(Plan, Device, ElementSize)));
  }
  std::vector<size_t> Order(Scores.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](size_t X, size_t Y) {
    return Scores[X] > Scores[Y];
  });
  return Order;
}
