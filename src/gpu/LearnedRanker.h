//===- gpu/LearnedRanker.h - Learning-based candidate selection (§VI) ------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The enhancement sketched in the paper's related-work discussion: keep
/// COGENT's model-driven definition of the candidate space, but *learn* the
/// final selection among the top candidates instead of trusting the
/// analytic transaction count alone. A ridge-regression model maps cheap
/// per-configuration features (modeled traffic, occupancy, wave efficiency,
/// tile geometry, coalescing runs) to log-performance, trained on simulated
/// measurements of sampled configurations.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_GPU_LEARNEDRANKER_H
#define COGENT_GPU_LEARNEDRANKER_H

#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/DeviceSpec.h"

#include <cstdint>
#include <vector>

namespace cogent {
namespace gpu {

/// Linear model over hand-crafted configuration features.
class LearnedRanker {
public:
  /// Number of features produced by featuresOf (including the bias term).
  static constexpr size_t NumFeatures = 10;

  /// Extracts the feature vector of one lowered configuration.
  static std::vector<double> featuresOf(const core::KernelPlan &Plan,
                                        const DeviceSpec &Device,
                                        unsigned ElementSize);

  /// Fits ridge regression (normal equations) of \p Targets on \p Samples.
  /// Features are standardized internally (z-scored per column) so the
  /// ridge penalty is scale-free. \pre every sample has NumFeatures
  /// entries; Samples.size() == Targets.size() >= 1.
  void train(const std::vector<std::vector<double>> &Samples,
             const std::vector<double> &Targets, double Ridge = 1.0);

  bool isTrained() const { return !Weights.empty(); }

  /// Predicted target (log-GFLOPS by convention) of one feature vector.
  double predict(const std::vector<double> &Features) const;

  const std::vector<double> &weights() const { return Weights; }

  /// Trains a ranker for \p TC by sampling up to \p MaxSamples enumerated
  /// configurations, simulating each at extents clamped to
  /// \p MeasureExtent, and regressing log simulated GFLOPS on the features.
  static LearnedRanker fitFromSimulation(const ir::Contraction &TC,
                                         const DeviceSpec &Device,
                                         unsigned ElementSize,
                                         size_t MaxSamples = 32,
                                         int64_t MeasureExtent = 10,
                                         uint64_t Seed = 0x1ea5ULL);

  /// Ranks the kernels of \p Result best-first by predicted performance.
  std::vector<size_t> rank(const ir::Contraction &TC,
                           const core::GenerationResult &Result,
                           const DeviceSpec &Device,
                           unsigned ElementSize) const;

private:
  std::vector<double> Weights;
  /// Per-feature standardization parameters captured at training time.
  std::vector<double> FeatureMean;
  std::vector<double> FeatureScale;
};

} // namespace gpu
} // namespace cogent

#endif // COGENT_GPU_LEARNEDRANKER_H
