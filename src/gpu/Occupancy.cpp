//===- gpu/Occupancy.cpp ---------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gpu/Occupancy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cogent;
using namespace cogent::gpu;

OccupancyResult cogent::gpu::computeOccupancy(const DeviceSpec &Device,
                                              const BlockResources &Block) {
  OccupancyResult Result;
  if (Block.ThreadsPerBlock == 0 ||
      Block.ThreadsPerBlock > Device.MaxThreadsPerBlock ||
      Block.SharedMemBytes > Device.SharedMemPerBlock ||
      Block.RegistersPerThread > Device.MaxRegistersPerThread)
    return Result;

  unsigned ByThreads = Device.MaxThreadsPerSM / Block.ThreadsPerBlock;
  unsigned BySmem = Block.SharedMemBytes == 0
                        ? Device.MaxBlocksPerSM
                        : Device.SharedMemPerSM / Block.SharedMemBytes;
  unsigned RegsPerBlock = Block.RegistersPerThread * Block.ThreadsPerBlock;
  unsigned ByRegs = RegsPerBlock == 0 ? Device.MaxBlocksPerSM
                                      : Device.RegistersPerSM / RegsPerBlock;

  unsigned Blocks = std::min({ByThreads, BySmem, ByRegs,
                              Device.MaxBlocksPerSM});
  if (Blocks == 0)
    return Result;

  Result.BlocksPerSM = Blocks;
  if (Blocks == ByThreads)
    Result.Limiter = "threads";
  if (Blocks == ByRegs)
    Result.Limiter = "regs";
  if (Blocks == BySmem)
    Result.Limiter = "smem";
  if (Blocks == Device.MaxBlocksPerSM)
    Result.Limiter = "blocks";

  unsigned WarpsPerBlock =
      (Block.ThreadsPerBlock + Device.WarpSize - 1) / Device.WarpSize;
  Result.Occupancy = std::min(
      1.0, static_cast<double>(Blocks * WarpsPerBlock) /
               static_cast<double>(Device.maxWarpsPerSM()));
  return Result;
}

double cogent::gpu::waveEfficiency(const DeviceSpec &Device,
                                   long long NumBlocks,
                                   unsigned BlocksPerSM) {
  assert(NumBlocks >= 0 && "negative block count");
  if (NumBlocks == 0 || BlocksPerSM == 0)
    return 0.0;
  long long BlocksPerWave =
      static_cast<long long>(Device.NumSMs) * BlocksPerSM;
  double Waves = static_cast<double>(NumBlocks) /
                 static_cast<double>(BlocksPerWave);
  // A partially filled final wave leaves SMs idle; with fewer blocks than
  // SMs the machine is mostly dark.
  return Waves / std::ceil(Waves);
}
