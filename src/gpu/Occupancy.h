//===- gpu/Occupancy.h - SM occupancy calculator ---------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes achievable SM occupancy for a kernel's resource footprint, in
/// the manner of the CUDA occupancy calculator. Occupancy feeds both the
/// enumerator's performance pruning ("the shared memory size and number of
/// registers per thread affects achievable occupancy", §IV-A2) and the
/// roofline performance model's latency-hiding factors.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_GPU_OCCUPANCY_H
#define COGENT_GPU_OCCUPANCY_H

#include "gpu/DeviceSpec.h"

namespace cogent {
namespace gpu {

/// Resource footprint of one thread block.
struct BlockResources {
  unsigned ThreadsPerBlock = 0;
  unsigned SharedMemBytes = 0;
  unsigned RegistersPerThread = 0;
};

/// Result of the occupancy computation.
struct OccupancyResult {
  /// Resident blocks per SM (0 when the block does not fit at all).
  unsigned BlocksPerSM = 0;
  /// Resident warps / max warps, in [0, 1].
  double Occupancy = 0.0;
  /// Which resource capped BlocksPerSM ("threads", "smem", "regs",
  /// "blocks", or "unfit").
  const char *Limiter = "unfit";
};

/// Computes the number of co-resident blocks per SM and the resulting
/// occupancy for \p Block on \p Device.
OccupancyResult computeOccupancy(const DeviceSpec &Device,
                                 const BlockResources &Block);

/// Fraction of SMs doing useful work when \p NumBlocks blocks are launched
/// and \p BlocksPerSM fit per SM: accounts for the load-balancing tail the
/// paper's "number of thread blocks above a threshold" constraint targets.
double waveEfficiency(const DeviceSpec &Device, long long NumBlocks,
                      unsigned BlocksPerSM);

} // namespace gpu
} // namespace cogent

#endif // COGENT_GPU_OCCUPANCY_H
