//===- gpu/PerfModel.cpp ---------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gpu/PerfModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string_view>

using namespace cogent;
using namespace cogent::gpu;

const char *const *cogent::gpu::perfBoundNames() {
  static const char *const Names[] = {"dram", "compute", "smem", nullptr};
  return Names;
}

bool cogent::gpu::isPerfBoundName(const char *Name) {
  if (!Name)
    return false;
  for (const char *const *N = perfBoundNames(); *N; ++N)
    if (std::string_view(*N) == Name)
      return true;
  return false;
}

Calibration cogent::gpu::makeCalibration(const DeviceSpec &Device) {
  Calibration Calib;
  if (Device.Name == "P100") {
    // Pascal sustains a noticeably lower fraction of its peak bandwidth
    // (STREAM-like measurements ~550 of 732 GB/s) and is more sensitive to
    // latency, which is why the paper's P100 numbers sit well below V100's
    // beyond the raw bandwidth ratio.
    Calib.MaxDramEfficiency = 0.62;
    Calib.MaxComputeEfficiency = 0.80;
    Calib.SmemBandwidthGBs = 9000.0;
    Calib.DramSaturationOccupancy = 0.15;
  } else if (Device.Name == "V100") {
    Calib.MaxDramEfficiency = 0.80;
    Calib.MaxComputeEfficiency = 0.85;
    Calib.SmemBandwidthGBs = 12000.0;
    Calib.DramSaturationOccupancy = 0.10;
  }
  return Calib;
}

PerfEstimate cogent::gpu::estimateKernelTime(const DeviceSpec &Device,
                                             const Calibration &Calib,
                                             const KernelProfile &Profile) {
  assert(Profile.Flops >= 0 && Profile.DramBytes >= 0 &&
         "negative kernel profile");
  PerfEstimate Est;

  double Occ = std::clamp(Profile.Occupancy, 0.0, 1.0);
  double Wave = std::clamp(Profile.WaveEff, 0.0, 1.0);
  if (Occ == 0.0 || Wave == 0.0) {
    // Kernel cannot run (block does not fit): report infinite time.
    Est.TimeMs = std::numeric_limits<double>::infinity();
    return Est;
  }

  // DRAM: bandwidth ramps with occupancy until the saturation point.
  double LatencyFactor = std::min(1.0, Occ / Calib.DramSaturationOccupancy);
  double DramBw = Device.DramBandwidthGBs * 1e9 * Calib.MaxDramEfficiency *
                  LatencyFactor * Wave;
  Est.DramTimeMs = Profile.DramBytes / DramBw * 1e3;

  // Compute: ILP from the register tile plus occupancy hide pipeline
  // latency; double-rate distinction comes from the element size.
  double Peak = (Profile.ElementSize == 8 ? Device.PeakGflopsDouble
                                          : Device.PeakGflopsSingle) *
                1e9;
  double IlpFactor = std::clamp(
      Profile.RegisterTileFlops / Calib.IlpSaturationFlops, 0.05, 1.0);
  // Large register tiles supply enough ILP that even one resident block
  // per SM keeps the FMA pipes busy (Volkov-style low-occupancy execution).
  double OccFactor = std::min(1.0, Occ / 0.25 + IlpFactor * 0.75);
  double ComputeRate =
      Peak * Calib.MaxComputeEfficiency * IlpFactor * OccFactor * Wave;
  Est.ComputeTimeMs = Profile.Flops / ComputeRate * 1e3;

  // Shared memory: register-staging traffic at the SMEM roofline.
  double SmemBw = Calib.SmemBandwidthGBs * 1e9 * std::min(1.0, Occ / 0.25);
  Est.SmemTimeMs = Profile.SmemBytes / SmemBw * 1e3;

  double Longest =
      std::max({Est.DramTimeMs, Est.ComputeTimeMs, Est.SmemTimeMs});
  Est.Bound = Longest == Est.DramTimeMs      ? perfBoundNames()[0]
              : Longest == Est.ComputeTimeMs ? perfBoundNames()[1]
                                             : perfBoundNames()[2];
  double Slack =
      Profile.SoftwarePipelined ? Calib.OverlapSlack * 0.3 : Calib.OverlapSlack;
  Est.TimeMs = Longest * (1.0 + Slack) +
               Profile.Launches * Device.KernelLaunchOverheadUs * 1e-3;
  Est.Gflops = Profile.Flops / (Est.TimeMs * 1e-3) / 1e9;
  return Est;
}

double cogent::gpu::estimateStreamTimeMs(const DeviceSpec &Device,
                                         const Calibration &Calib,
                                         double Bytes, double Efficiency) {
  assert(Bytes >= 0 && Efficiency > 0 && "bad stream parameters");
  double Bw = Device.DramBandwidthGBs * 1e9 * Calib.MaxDramEfficiency *
              Efficiency;
  return Bytes / Bw * 1e3 + Device.KernelLaunchOverheadUs * 1e-3;
}
