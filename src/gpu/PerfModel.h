//===- gpu/PerfModel.h - Roofline-style kernel time model ------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts a kernel's measured resource usage (exact DRAM traffic from the
/// transaction-counting simulator, FLOP count, occupancy) into a predicted
/// execution time on a DeviceSpec. This is the stand-in for running nvcc
/// binaries on real P100/V100 hardware: a calibrated roofline
///
///   t = max(t_dram, t_compute, t_smem) (1 + overlap slack) + launch
///
/// whose calibration constants are documented in DESIGN.md / EXPERIMENTS.md.
/// Relative orderings between configurations — the thing the paper's search
/// depends on — follow from the exact traffic numbers, not the calibration.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_GPU_PERFMODEL_H
#define COGENT_GPU_PERFMODEL_H

#include "gpu/DeviceSpec.h"

namespace cogent {
namespace gpu {

/// Everything the model needs to know about one kernel execution.
struct KernelProfile {
  /// Useful arithmetic (2 * multiply-add count).
  double Flops = 0.0;
  /// Exact DRAM bytes moved (transactions * TransactionBytes).
  double DramBytes = 0.0;
  /// Shared-memory bytes read by the compute phase (register staging).
  double SmemBytes = 0.0;
  /// Achieved SM occupancy in [0, 1].
  double Occupancy = 1.0;
  /// Tail/load-balance efficiency in [0, 1] (see waveEfficiency).
  double WaveEff = 1.0;
  /// 8 for double precision, 4 for single.
  unsigned ElementSize = 8;
  /// Per-thread inner-loop FMAs (REGx * REGy); proxies instruction-level
  /// parallelism available to hide latency.
  double RegisterTileFlops = 16.0;
  /// Number of kernel launches the operation requires.
  unsigned Launches = 1;
  /// True when the kernel software-pipelines its staging (double-buffered
  /// shared memory): loads overlap compute, shrinking the non-overlap
  /// slack.
  bool SoftwarePipelined = false;
};

/// Model output.
struct PerfEstimate {
  double TimeMs = 0.0;
  double Gflops = 0.0;
  double DramTimeMs = 0.0;
  double ComputeTimeMs = 0.0;
  double SmemTimeMs = 0.0;
  /// Which roofline term dominated; always one of perfBoundNames().
  const char *Bound = "dram";
};

/// The closed set of strings PerfEstimate::Bound can take, nullptr-
/// terminated ({"dram", "compute", "smem", nullptr}). estimateKernelTime
/// must pick Bound from this table; the name-table test enforces it so a
/// new roofline term cannot ship without a reportable name.
const char *const *perfBoundNames();

/// True when \p Name is one of perfBoundNames().
bool isPerfBoundName(const char *Name);

/// Per-architecture calibration of achievable efficiency. Defaults are
/// chosen per device (Pascal sustains a lower fraction of its peak DRAM
/// bandwidth than Volta; see makeCalibration).
struct Calibration {
  /// Fraction of peak DRAM bandwidth achievable at full occupancy.
  double MaxDramEfficiency = 0.80;
  /// Fraction of peak FLOPS achievable with ideal ILP.
  double MaxComputeEfficiency = 0.85;
  /// Shared-memory bandwidth, GB/s.
  double SmemBandwidthGBs = 12000.0;
  /// Occupancy needed to saturate DRAM bandwidth.
  double DramSaturationOccupancy = 0.25;
  /// Per-thread FMA count at which ILP stops limiting compute.
  double IlpSaturationFlops = 16.0;
  /// Fractional time added for imperfect memory/compute overlap.
  double OverlapSlack = 0.15;
};

/// Default calibration for \p Device (keyed on its name).
Calibration makeCalibration(const DeviceSpec &Device);

/// Predicts execution time and achieved GFLOPS of \p Profile on \p Device.
PerfEstimate estimateKernelTime(const DeviceSpec &Device,
                                const Calibration &Calib,
                                const KernelProfile &Profile);

/// Predicted time (ms) of a pure streaming operation (e.g. a cuTT-style
/// transpose) that moves \p Bytes of DRAM traffic at \p Efficiency of the
/// calibrated bandwidth.
double estimateStreamTimeMs(const DeviceSpec &Device, const Calibration &Calib,
                            double Bytes, double Efficiency);

} // namespace gpu
} // namespace cogent

#endif // COGENT_GPU_PERFMODEL_H
