//===- ir/Contraction.cpp -------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Contraction.h"

#include "support/Checked.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace cogent;
using namespace cogent::ir;

const char *cogent::ir::operandName(Operand Op) {
  switch (Op) {
  case Operand::A:
    return "A";
  case Operand::B:
    return "B";
  case Operand::C:
    return "C";
  }
  assert(false && "unknown operand");
  return "?";
}

static bool isValidIndexName(char C) { return C >= 'a' && C <= 'z'; }

static int slot(char C) {
  assert(isValidIndexName(C) && "index name out of range");
  return C - 'a';
}

/// Checks an operand's index string: non-empty, lowercase letters, no
/// repeats. Returns an empty string on success, else the error message.
static std::string checkOperandString(const std::string &Str,
                                      const char *Which) {
  if (Str.empty())
    return std::string("operand ") + Which + " has no indices";
  std::array<bool, 26> Seen{};
  for (char C : Str) {
    if (!isValidIndexName(C))
      return std::string("operand ") + Which +
             " contains invalid index name '" + C + "'";
    if (Seen[slot(C)])
      return std::string("operand ") + Which + " repeats index '" + C + "'";
    Seen[slot(C)] = true;
  }
  return std::string();
}

ErrorOr<Contraction>
Contraction::parse(const std::string &Spec,
                   const std::vector<std::pair<char, int64_t>> &Extents) {
  std::vector<std::string> Parts = split(trim(Spec), '-');
  if (Parts.size() != 3)
    return Error(ErrorCode::InvalidSpec,
                 "contraction spec must have exactly three '-'-separated "
                 "operands (C-A-B), got \"" +
                 Spec + "\"");

  for (unsigned I = 0; I < 3; ++I) {
    static const char *Names[] = {"C", "A", "B"};
    if (std::string Msg = checkOperandString(Parts[I], Names[I]); !Msg.empty())
      return Error(ErrorCode::InvalidSpec, Msg);
  }

  Contraction TC;
  TC.CIdx.assign(Parts[0].begin(), Parts[0].end());
  TC.AIdx.assign(Parts[1].begin(), Parts[1].end());
  TC.BIdx.assign(Parts[2].begin(), Parts[2].end());

  // Classify every index by membership and reject degenerate patterns.
  std::array<int, 26> InC{}, InA{}, InB{};
  for (char C : TC.CIdx)
    InC[slot(C)] = 1;
  for (char C : TC.AIdx)
    InA[slot(C)] = 1;
  for (char C : TC.BIdx)
    InB[slot(C)] = 1;

  for (int S = 0; S < 26; ++S) {
    int Count = InC[S] + InA[S] + InB[S];
    if (Count == 0)
      continue;
    char Name = static_cast<char>('a' + S);
    if (Count == 1)
      return Error(ErrorCode::InvalidSpec, std::string("index '") + Name +
                   "' appears in only one tensor");
    if (Count == 3)
      return Error(ErrorCode::InvalidSpec, std::string("index '") + Name +
                   "' appears in all three tensors (batch/Hadamard indices "
                   "are not supported, as in the paper)");
    TC.Used26[S] = true;
    if (InC[S] && InA[S])
      TC.Kind26[S] = IndexKind::ExternalA;
    else if (InC[S] && InB[S])
      TC.Kind26[S] = IndexKind::ExternalB;
    else
      TC.Kind26[S] = IndexKind::Internal;
  }

  // Every index of C must have been matched by an input.
  for (char C : TC.CIdx)
    if (!TC.Used26[slot(C)])
      return Error(ErrorCode::InvalidSpec, std::string("output index '") + C +
                   "' does not appear in any input");

  // Attach extents.
  for (const auto &[Name, Ext] : Extents) {
    if (!isValidIndexName(Name))
      return Error(ErrorCode::InvalidSpec,
                   std::string("extent given for invalid index name '") +
                   Name + "'");
    if (!TC.Used26[slot(Name)])
      return Error(ErrorCode::InvalidSpec,
                   std::string("extent given for index '") + Name +
                   "' which does not appear in the contraction");
    if (Ext <= 0)
      return Error(ErrorCode::InvalidSpec, std::string("extent of index '") +
                   Name + "' must be positive");
    TC.Extent26[slot(Name)] = Ext;
  }
  for (int S = 0; S < 26; ++S)
    if (TC.Used26[S] && TC.Extent26[S] == 0)
      return Error(ErrorCode::InvalidSpec,
                   std::string("no extent given for index '") +
                   static_cast<char>('a' + S) + "'");

  // Guard against element-count overflow with exact checked arithmetic:
  // every operand's extent product must fit in int64 offsets (with headroom
  // so downstream grid/stride math cannot wrap either).
  constexpr int64_t MaxElements = int64_t(1) << 61;
  for (Operand Op : {Operand::C, Operand::A, Operand::B}) {
    int64_t Product = 1;
    for (char Name : TC.indices(Op)) {
      if (!checkedMulInt64(Product, TC.Extent26[slot(Name)], &Product) ||
          Product > MaxElements)
        return Error(ErrorCode::ExtentOverflow,
                     std::string("operand ") + operandName(Op) +
                     " has more elements than a 64-bit offset can address");
    }
  }

  return TC;
}

ErrorOr<Contraction> Contraction::parseUniform(const std::string &Spec,
                                               int64_t Extent) {
  std::vector<std::pair<char, int64_t>> Extents;
  for (char C = 'a'; C <= 'z'; ++C)
    if (Spec.find(C) != std::string::npos)
      Extents.emplace_back(C, Extent);
  return parse(Spec, Extents);
}

const std::vector<char> &Contraction::indices(Operand Op) const {
  switch (Op) {
  case Operand::A:
    return AIdx;
  case Operand::B:
    return BIdx;
  case Operand::C:
    return CIdx;
  }
  assert(false && "unknown operand");
  return CIdx;
}

int64_t Contraction::extent(char Name) const {
  assert(Used26[slot(Name)] && "extent of unused index");
  return Extent26[slot(Name)];
}

IndexKind Contraction::kindOf(char Name) const {
  assert(Used26[slot(Name)] && "kind of unused index");
  return Kind26[slot(Name)];
}

Operand Contraction::reuseTensor(char Name) const {
  switch (kindOf(Name)) {
  case IndexKind::ExternalA:
    return Operand::B; // not indexed by it -> B reuses across it
  case IndexKind::ExternalB:
    return Operand::A;
  case IndexKind::Internal:
    return Operand::C;
  }
  assert(false && "unknown index kind");
  return Operand::C;
}

Operand Contraction::inputContaining(char Name) const {
  IndexKind Kind = kindOf(Name);
  assert(Kind != IndexKind::Internal &&
         "internal indices live in both inputs");
  return Kind == IndexKind::ExternalA ? Operand::A : Operand::B;
}

bool Contraction::contains(Operand Op, char Name) const {
  const std::vector<char> &Idx = indices(Op);
  return std::find(Idx.begin(), Idx.end(), Name) != Idx.end();
}

unsigned Contraction::positionIn(Operand Op, char Name) const {
  const std::vector<char> &Idx = indices(Op);
  auto It = std::find(Idx.begin(), Idx.end(), Name);
  assert(It != Idx.end() && "index not present in operand");
  return static_cast<unsigned>(It - Idx.begin());
}

int64_t Contraction::strideIn(Operand Op, char Name) const {
  const std::vector<char> &Idx = indices(Op);
  int64_t Stride = 1;
  for (char C : Idx) {
    if (C == Name)
      return Stride;
    Stride = checkedProductAssert(Stride, extent(C));
  }
  assert(false && "index not present in operand");
  return 0;
}

std::vector<char> Contraction::allIndices() const {
  std::vector<char> All = externalIndices();
  std::vector<char> Internal = internalIndices();
  All.insert(All.end(), Internal.begin(), Internal.end());
  return All;
}

std::vector<char> Contraction::externalIndices() const { return CIdx; }

std::vector<char> Contraction::internalIndices() const {
  std::vector<char> Result;
  for (char C : AIdx)
    if (isInternal(C))
      Result.push_back(C);
  return Result;
}

int64_t Contraction::numElements(Operand Op) const {
  // parse() bounds every operand's extent product, so overflow here would
  // be an invariant violation, not an input condition; detect it anyway
  // rather than silently wrapping.
  int64_t N = 1;
  for (char C : indices(Op))
    N = checkedProductAssert(N, extent(C));
  return N;
}

int64_t Contraction::internalExtent() const {
  int64_t N = 1;
  for (char C : internalIndices())
    N = checkedProductAssert(N, extent(C));
  return N;
}

double Contraction::flopCount() const {
  double Flops = 2.0;
  for (char C : allIndices())
    Flops *= static_cast<double>(extent(C));
  return Flops;
}

double Contraction::minBytesMoved(unsigned ElementSize) const {
  double Bytes = 0.0;
  for (Operand Op : {Operand::C, Operand::A, Operand::B})
    Bytes += static_cast<double>(numElements(Op)) * ElementSize;
  return Bytes;
}

std::string Contraction::toString() const {
  std::string Result(CIdx.begin(), CIdx.end());
  Result += '-';
  Result.append(AIdx.begin(), AIdx.end());
  Result += '-';
  Result.append(BIdx.begin(), BIdx.end());
  return Result;
}

std::string Contraction::toStringWithExtents() const {
  std::string Result = toString() + " (";
  bool First = true;
  for (char C : allIndices()) {
    if (!First)
      Result += ',';
    First = false;
    Result += C;
    Result += '=';
    Result += std::to_string(extent(C));
  }
  Result += ')';
  return Result;
}
