//===- ir/Contraction.h - Tensor contraction IR ---------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contraction intermediate representation: an ordered index list for
/// each of the three tensors C, A, B plus per-index extents, with the
/// classification machinery the paper's code generator is built on.
///
/// Conventions follow the paper:
///  - Layout is column-major, so the index at position 0 of a tensor is its
///    fastest varying index (FVI) and is contiguous in memory.
///  - Indices appearing in C are "external"; indices appearing in both A and
///    B but not C are "internal" (contraction/summation) indices.
///  - Every index appears in exactly two of the three tensors, so each index
///    is a reuse direction for exactly one tensor: the one not indexed by it.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_IR_CONTRACTION_H
#define COGENT_IR_CONTRACTION_H

#include "support/ErrorOr.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cogent {
namespace ir {

/// Identifies one of the three tensors participating in a contraction.
enum class Operand { A, B, C };

/// Returns "A", "B" or "C".
const char *operandName(Operand Op);

/// Classification of a loop index per the paper's §II key property.
enum class IndexKind {
  /// Appears in C and A; a reuse direction for B.
  ExternalA,
  /// Appears in C and B; a reuse direction for A.
  ExternalB,
  /// Appears in A and B; a reuse direction for C (the summation dimension).
  Internal,
};

/// A binary tensor contraction C[...] = A[...] * B[...] with Einstein
/// summation over the indices absent from C.
///
/// Instances are immutable after construction via parse(); all queries are
/// O(1) or O(#indices).
class Contraction {
public:
  /// Parses "C-A-B" index-string notation, e.g. "abcd-aebf-dfce" for
  /// C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e] (Eq. 1 of the paper).
  ///
  /// \p Extents supplies the representative extent of every index used; a
  /// missing or non-positive extent is an error, as are malformed strings
  /// (repeated index within a tensor, an index appearing in only one or in
  /// all three tensors, empty operands, or non-letter index names).
  static ErrorOr<Contraction> parse(const std::string &Spec,
                                    const std::vector<std::pair<char, int64_t>>
                                        &Extents);

  /// Convenience: parse with the same extent for every index.
  static ErrorOr<Contraction> parseUniform(const std::string &Spec,
                                           int64_t Extent);

  /// Ordered index list of one operand, FVI first.
  const std::vector<char> &indices(Operand Op) const;

  /// Number of indices (tensor order/rank) of one operand.
  unsigned rank(Operand Op) const {
    return static_cast<unsigned>(indices(Op).size());
  }

  /// Extent of index \p Name.
  int64_t extent(char Name) const;

  /// Classification of index \p Name.
  IndexKind kindOf(char Name) const;

  /// True for ExternalA / ExternalB kinds.
  bool isExternal(char Name) const { return kindOf(Name) != IndexKind::Internal; }
  bool isInternal(char Name) const { return kindOf(Name) == IndexKind::Internal; }

  /// The tensor for which index \p Name is a reuse direction (the one tensor
  /// that is not indexed by it).
  Operand reuseTensor(char Name) const;

  /// The input tensor (A or B) containing external index \p Name.
  Operand inputContaining(char Name) const;

  /// True if \p Op's index list contains \p Name.
  bool contains(Operand Op, char Name) const;

  /// Position of \p Name within \p Op (0 == FVI). Asserts on absence.
  unsigned positionIn(Operand Op, char Name) const;

  /// The fastest varying index (position 0) of \p Op.
  char fvi(Operand Op) const { return indices(Op).front(); }

  /// Column-major stride of index \p Name within tensor \p Op: the product
  /// of extents of all faster-varying indices.
  int64_t strideIn(Operand Op, char Name) const;

  /// All distinct indices: externals in C order followed by internals in A
  /// order.
  std::vector<char> allIndices() const;

  /// External indices in the order they appear in C.
  std::vector<char> externalIndices() const;

  /// Internal (contraction) indices in the order they appear in A.
  std::vector<char> internalIndices() const;

  /// Number of elements of one operand: product of its index extents.
  int64_t numElements(Operand Op) const;

  /// Product of the extents of all internal indices (the paper's
  /// N_e x N_f term; the sequential reduction length).
  int64_t internalExtent() const;

  /// Useful-arithmetic count: 2 * prod(extent of every index) fused
  /// multiply-add work, the figure-of-merit denominator for GFLOPS.
  double flopCount() const;

  /// Bytes touched once for the three tensors at \p ElementSize bytes per
  /// element (the compulsory traffic lower bound).
  double minBytesMoved(unsigned ElementSize) const;

  /// Renders back to "C-A-B" notation.
  std::string toString() const;

  /// Renders with extents, e.g. "abcd-aebf-dfce (a=16,b=16,...)".
  std::string toStringWithExtents() const;

private:
  Contraction() = default;

  std::vector<char> CIdx, AIdx, BIdx;
  std::array<int64_t, 26> Extent26{};
  std::array<IndexKind, 26> Kind26{};
  std::array<bool, 26> Used26{};
};

} // namespace ir
} // namespace cogent

#endif // COGENT_IR_CONTRACTION_H
