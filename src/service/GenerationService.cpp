//===- service/GenerationService.cpp --------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "service/GenerationService.h"

#include "support/Counters.h"
#include "support/FaultInjection.h"
#include "support/JsonWriter.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

using namespace cogent;
using namespace cogent::service;
using core::CogentOptions;
using core::FallbackLevel;
using core::ShardedKernelRepository;

COGENT_COUNTER(NumServiceSubmitted, "service.submitted",
               "requests admitted past the service's admission control");
COGENT_COUNTER(NumServiceShed, "service.shed",
               "requests shed at admission (queue-full / overloaded / "
               "expired deadline)");
COGENT_COUNTER(NumServiceRetries, "service.retries",
               "generation attempts re-run after a transient failure");
COGENT_COUNTER(NumServiceCoalesced, "service.coalesced",
               "requests that rode another in-flight request's generation");
COGENT_COUNTER(NumServiceDeadlineDegraded, "service.deadline-degraded",
               "requests whose remaining deadline forced a degraded start "
               "rung");
COGENT_COUNTER(NumServiceBreakerTrips, "service.breaker-trips",
               "per-signature circuit breakers tripped open");

using Clock = std::chrono::steady_clock;

static double msBetween(Clock::time_point From, Clock::time_point To) {
  return std::chrono::duration<double, std::milli>(To - From).count();
}

/// splitmix64-style mixer for deriving per-(signature, attempt) chaos
/// seeds; any deterministic avalanche works here.
static uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

static uint64_t fnv1a(const std::string &Data) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (unsigned char Ch : Data) {
    Hash ^= Ch;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

namespace cogent {
namespace service {

/// One admitted request's whole lifecycle: the request, its telemetry id,
/// its absolute deadline, and a one-shot promise (Outcome) the worker pool
/// fulfills.
struct PendingRequest {
  ServiceRequest Request;
  uint64_t RequestId = 0;
  Clock::time_point SubmittedAt;
  bool HasDeadline = false;
  Clock::time_point Deadline;

  std::mutex Lock;
  std::condition_variable Cv;
  std::optional<ErrorOr<ServiceResult>> Outcome;
};

} // namespace service
} // namespace cogent

GenerationService::GenerationService(gpu::DeviceSpec Device,
                                     ServiceOptions Opts)
    : Options(std::move(Opts)), Generator(std::move(Device)),
      Repo(Generator, Options.NumShards, Options.Generation),
      Telem(Options.Telemetry) {
  Paused = Options.StartPaused;
  Workers.reserve(Options.NumWorkers);
  for (unsigned I = 0; I < Options.NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

GenerationService::~GenerationService() { stop(); }

void GenerationService::pause() {
  std::lock_guard<std::mutex> Guard(QueueLock);
  Paused = true;
}

void GenerationService::resume() {
  {
    std::lock_guard<std::mutex> Guard(QueueLock);
    Paused = false;
  }
  QueueCv.notify_all();
}

void GenerationService::stop() {
  std::deque<std::shared_ptr<PendingRequest>> Orphans;
  {
    std::lock_guard<std::mutex> Guard(QueueLock);
    if (Stopping)
      return;
    Stopping = true;
    Orphans.swap(Queue);
  }
  QueueCv.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
  Workers.clear();
  // Queued-but-never-executed requests fail typed, not silently: their
  // waiters unblock with ServiceStopped.
  for (const std::shared_ptr<PendingRequest> &Job : Orphans)
    fulfill(Job, Error(ErrorCode::ServiceStopped,
                       "service stopped before the request was executed"));
}

ErrorOr<std::shared_ptr<PendingRequest>>
GenerationService::submit(ServiceRequest Request) {
  Tallies.Submitted.fetch_add(1, std::memory_order_relaxed);
  const uint64_t RequestId = Telem.beginRequest();
  Telem.recordEvent(RequestId, RequestEventKind::Submitted, Request.Spec);

  double DeadlineMs = Request.DeadlineMs != 0.0 ? Request.DeadlineMs
                                                : Options.DefaultDeadlineMs;
  if (DeadlineMs < 0.0) {
    // Expired before any work could begin: the one deadline shape that is
    // an admission error rather than a degraded answer.
    Tallies.ShedExpired.fetch_add(1, std::memory_order_relaxed);
    ++NumServiceShed;
    Telem.recordEvent(RequestId, RequestEventKind::Shed, "expired-deadline");
    return Error(ErrorCode::DeadlineExceeded,
                 "request deadline expired before submission");
  }

  auto Job = std::make_shared<PendingRequest>();
  Job->Request = std::move(Request);
  Job->RequestId = RequestId;
  Job->SubmittedAt = Clock::now();
  if (DeadlineMs > 0.0) {
    Job->HasDeadline = true;
    Job->Deadline =
        Job->SubmittedAt +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(DeadlineMs));
  }

  // Admission control. Outstanding is checked before the queue so the
  // coarser limit (total admitted work, including coalesced followers and
  // executing jobs) sheds first.
  if (Outstanding.load(std::memory_order_relaxed) >= Options.MaxOutstanding) {
    Tallies.ShedOverloaded.fetch_add(1, std::memory_order_relaxed);
    ++NumServiceShed;
    Telem.recordEvent(RequestId, RequestEventKind::Shed, "overloaded");
    return Error(ErrorCode::Overloaded,
                 "service outstanding-work limit reached (" +
                     std::to_string(Options.MaxOutstanding) +
                     " requests in flight); retry after backoff");
  }
  {
    std::lock_guard<std::mutex> Guard(QueueLock);
    if (Stopping) {
      // Not a ServiceStats shed bucket (submissions after stop() are a
      // caller bug, not load), but the timeline law still holds: every
      // request id ends in exactly one terminal event.
      Telem.recordEvent(RequestId, RequestEventKind::Shed, "service-stopped");
      return Error(ErrorCode::ServiceStopped,
                   "service is stopped; request rejected at submission");
    }
    if (Queue.size() >= Options.QueueCapacity) {
      Tallies.ShedQueueFull.fetch_add(1, std::memory_order_relaxed);
      ++NumServiceShed;
      Telem.recordEvent(RequestId, RequestEventKind::Shed, "queue-full");
      return Error(ErrorCode::QueueFull,
                   "service intake queue is full (" +
                       std::to_string(Options.QueueCapacity) +
                       " requests queued); retry after backoff");
    }
    Queue.push_back(Job);
    Outstanding.fetch_add(1, std::memory_order_relaxed);
  }
  ++NumServiceSubmitted;
  QueueCv.notify_one();
  return Job;
}

ErrorOr<ServiceResult>
GenerationService::wait(const std::shared_ptr<PendingRequest> &Handle) {
  assert(Handle && "waiting on a null request handle");
  std::unique_lock<std::mutex> Guard(Handle->Lock);
  Handle->Cv.wait(Guard, [&] { return Handle->Outcome.has_value(); });
  return *Handle->Outcome;
}

ErrorOr<ServiceResult> GenerationService::process(ServiceRequest Request) {
  ErrorOr<std::shared_ptr<PendingRequest>> Handle = submit(std::move(Request));
  if (!Handle)
    return Handle.takeError();
  return wait(*Handle);
}

std::vector<ErrorOr<ServiceResult>>
GenerationService::processBatch(const std::vector<ServiceRequest> &Requests) {
  std::vector<ErrorOr<std::shared_ptr<PendingRequest>>> Handles;
  Handles.reserve(Requests.size());
  for (const ServiceRequest &Request : Requests)
    Handles.push_back(submit(Request));
  std::vector<ErrorOr<ServiceResult>> Results;
  Results.reserve(Requests.size());
  for (ErrorOr<std::shared_ptr<PendingRequest>> &Handle : Handles) {
    if (!Handle)
      Results.push_back(Handle.takeError());
    else
      Results.push_back(wait(*Handle));
  }
  return Results;
}

size_t GenerationService::repairCache() { return Repo.rebuildQuarantined(); }

void GenerationService::workerLoop() {
  while (true) {
    std::shared_ptr<PendingRequest> Job;
    {
      std::unique_lock<std::mutex> Guard(QueueLock);
      QueueCv.wait(Guard,
                   [&] { return Stopping || (!Paused && !Queue.empty()); });
      if (Stopping)
        return; // stop() fails whatever is still queued
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    execute(Job);
  }
}

void GenerationService::fulfill(const std::shared_ptr<PendingRequest> &Job,
                                ErrorOr<ServiceResult> Outcome) {
  double TotalMs = msBetween(Job->SubmittedAt, Clock::now());
  if (Outcome) {
    Outcome->RequestId = Job->RequestId;
    Outcome->TotalMs = TotalMs;
    Tallies.Completed.fetch_add(1, std::memory_order_relaxed);
    Telem.registry()
        .histogram("service.latency-ms",
                   "submit-to-completion wall clock of completed requests",
                   Options.Telemetry.HistogramShards)
        .record(TotalMs);
    Telem.recordEvent(Job->RequestId, RequestEventKind::Completed,
                      core::fallbackLevelName(Outcome->Fallback));
  } else {
    Tallies.Failed.fetch_add(1, std::memory_order_relaxed);
    Telem.recordEvent(Job->RequestId, RequestEventKind::Failed,
                      errorCodeName(Outcome.error().code()));
  }
  Outstanding.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Guard(Job->Lock);
    Job->Outcome.emplace(std::move(Outcome));
  }
  Job->Cv.notify_all();
}

void GenerationService::execute(const std::shared_ptr<PendingRequest> &Job) {
  const ServiceRequest &Request = Job->Request;
  double QueueMs = msBetween(Job->SubmittedAt, Clock::now());
  Telem.registry()
      .histogram("service.queue-wait-ms",
                 "time requests spent queued before a worker picked them up",
                 Options.Telemetry.HistogramShards)
      .record(QueueMs);
  Telem.recordEvent(Job->RequestId, RequestEventKind::Dequeued,
                    std::to_string(QueueMs));

  const std::string Signature = core::contractionSignature(
      Request.Spec, Request.Extents, Options.Generation.ElementSize);

  // Singleflight: if this signature is already generating, join its flight
  // and let the leader fulfill us. The table only holds entries while a
  // leader is executing, so warm cache hits pass straight through.
  {
    std::lock_guard<std::mutex> Guard(FlightsLock);
    auto [It, Inserted] = Flights.try_emplace(Signature);
    if (!Inserted) {
      It->second.Waiters.push_back(Job);
      Tallies.Coalesced.fetch_add(1, std::memory_order_relaxed);
      ++NumServiceCoalesced;
      Telem.recordEvent(Job->RequestId, RequestEventKind::Coalesced,
                        Signature);
      return;
    }
  }

  support::traceInstant("service.execute", {{"signature", Signature}});

  ErrorOr<ServiceResult> Outcome =
      Error(ErrorCode::Unknown, "request never attempted");
  unsigned Attempt = 0;
  const double Inf = std::numeric_limits<double>::infinity();
  while (true) {
    ++Attempt;
    Telem.recordEvent(Job->RequestId, RequestEventKind::AttemptStart,
                      std::to_string(Attempt));
    double RemainingMs =
        Job->HasDeadline ? msBetween(Clock::now(), Job->Deadline) : Inf;

    ServiceResult Meta;
    Meta.Attempts = Attempt;
    Meta.QueueMs = QueueMs;

    CogentOptions Gen = Options.Generation;
    // Deadline budgeting: plenty of budget left -> grant the enumeration
    // phase its share and run the full pipeline; running low -> degrade
    // the start rung instead of risking a deadline miss; already expired
    // (e.g. spent queued) -> the TTGT rung still produces an answer.
    if (Job->HasDeadline) {
      if (RemainingMs <= 0.0) {
        Gen.StartRung = FallbackLevel::TtgtBaseline;
        Meta.DeadlineDegraded = true;
        Meta.DeadlineExpired = true;
        Tallies.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
      } else if (RemainingMs < Options.DegradeTtgtMs) {
        Gen.StartRung = FallbackLevel::TtgtBaseline;
        Meta.DeadlineDegraded = true;
      } else if (RemainingMs < Options.DegradeMinimalTileMs) {
        Gen.StartRung = FallbackLevel::MinimalTile;
        Meta.DeadlineDegraded = true;
      } else {
        double Share = RemainingMs * Options.EnumerateBudgetFraction;
        Gen.Budget.DeadlineMs = Gen.Budget.DeadlineMs > 0.0
                                    ? std::min(Gen.Budget.DeadlineMs, Share)
                                    : Share;
      }
      if (Meta.DeadlineDegraded) {
        Tallies.DeadlineDegraded.fetch_add(1, std::memory_order_relaxed);
        ++NumServiceDeadlineDegraded;
        Telem.recordEvent(Job->RequestId, RequestEventKind::DeadlineBand,
                          core::fallbackLevelName(Gen.StartRung));
        support::traceInstant(
            "service.deadline-degrade",
            {{"signature", Signature},
             {"rung", core::fallbackLevelName(Gen.StartRung)}});
      }
    }

    // Circuit breaker: an open breaker forces the TTGT rung (cheap, never
    // feeds the expensive pipeline); after the cooldown the next request
    // becomes the half-open probe and runs the full pipeline.
    {
      std::string Transition;
      {
        std::lock_guard<std::mutex> Guard(BreakersLock);
        Breaker &B = Breakers[Signature];
        if (B.S == BreakerState::Open) {
          if (++B.OpenServed >= Options.BreakerCooldownRequests) {
            B.S = BreakerState::HalfOpen;
            B.OpenServed = 0;
            Transition = "open->half-open";
          } else {
            Gen.StartRung = FallbackLevel::TtgtBaseline;
            Meta.BreakerDegraded = true;
          }
        }
      }
      if (!Transition.empty())
        Telem.recordEvent(Job->RequestId,
                          RequestEventKind::BreakerTransition, Transition);
    }

    // Per-attempt chaos seed: deterministic in (base seed, signature,
    // attempt), different across attempts — injected faults behave like
    // transient infrastructure trouble a retry can out-wait.
    if (Gen.Chaos.enabled() && Options.ReseedChaosPerAttempt)
      Gen.Chaos.Seed =
          mix64(Gen.Chaos.Seed ^ mix64(fnv1a(Signature) + Attempt));

    // Arm this worker thread's injector for the whole attempt, so chaos
    // sites outside generate() — the cache's hit-path corruption check —
    // draw faults too. generate() nests its own activation (same options)
    // for the pipeline's interior sites; activation is thread-local, so
    // neighboring workers are unaffected.
    std::optional<support::FaultInjector> AttemptInjector;
    if (Gen.Chaos.enabled())
      AttemptInjector.emplace(Gen.Chaos);
    support::ScopedChaosActivation AttemptChaos(
        AttemptInjector ? &*AttemptInjector : nullptr);

    ErrorOr<ShardedKernelRepository::Lookup> Looked =
        Request.BypassCache
            ? Repo.generateFresh(Request.Spec, Request.Extents, &Gen)
            : Repo.lookupOrGenerate(Request.Spec, Request.Extents, &Gen);

    // Feed the breaker only with evidence about the *full* pipeline for
    // this signature: cache hits prove nothing and breaker-degraded runs
    // never entered it.
    bool FeedBreaker =
        !Meta.BreakerDegraded && !(Looked && Looked->CacheHit);
    bool Clean = Looked.hasValue() && Looked->VerifierRejections == 0 &&
                 Looked->LintRejections == 0;
    if (FeedBreaker) {
      std::string Transition;
      {
        std::lock_guard<std::mutex> Guard(BreakersLock);
        Breaker &B = Breakers[Signature];
        const BreakerState Before = B.S;
        if (Clean) {
          if (B.S == BreakerState::HalfOpen)
            Tallies.BreakerResets.fetch_add(1, std::memory_order_relaxed);
          B.S = BreakerState::Closed;
          B.ConsecutiveRejections = 0;
        } else {
          if (B.S == BreakerState::HalfOpen ||
              ++B.ConsecutiveRejections >= Options.BreakerThreshold) {
            if (B.S != BreakerState::Open) {
              Tallies.BreakerTrips.fetch_add(1, std::memory_order_relaxed);
              ++NumServiceBreakerTrips;
              support::traceInstant("service.breaker-open",
                                    {{"signature", Signature}});
            }
            B.S = BreakerState::Open;
            B.OpenServed = 0;
            B.ConsecutiveRejections = 0;
          }
        }
        if (B.S != Before)
          Transition = std::string(breakerStateName(Before)) + "->" +
                       breakerStateName(B.S);
      }
      if (!Transition.empty())
        Telem.recordEvent(Job->RequestId,
                          RequestEventKind::BreakerTransition, Transition);
    }

    if (Looked) {
      if (Looked->CacheHit)
        Telem.recordEvent(Job->RequestId, RequestEventKind::CacheHit,
                          Signature);
      if (Looked->Quarantined)
        Telem.recordEvent(Job->RequestId, RequestEventKind::CacheQuarantine,
                          Signature);
      Meta.Kernel = std::move(Looked->Kernel);
      Meta.Fallback = Looked->Fallback;
      Meta.CacheHit = Looked->CacheHit;
      Meta.Quarantined = Looked->Quarantined;
      Outcome = std::move(Meta);
      break;
    }

    Error Failure = Looked.takeError();
    Telem.recordEvent(Job->RequestId, RequestEventKind::AttemptFailed,
                      errorCodeName(Failure.code()));
    double RemainingAfter =
        Job->HasDeadline ? msBetween(Clock::now(), Job->Deadline) : Inf;
    bool Retryable = isTransient(Failure.code()) &&
                     Attempt <= Options.MaxRetries && RemainingAfter > 0.0;
    if (!Retryable) {
      Outcome = std::move(Failure).withContext(
          "service request '" + Signature + "' failed after " +
          std::to_string(Attempt) +
          (Attempt == 1 ? " attempt" : " attempts"));
      break;
    }
    Tallies.Retries.fetch_add(1, std::memory_order_relaxed);
    ++NumServiceRetries;
    double BackoffMs =
        std::min(Options.RetryBackoffBaseMs *
                     std::pow(2.0, static_cast<double>(Attempt - 1)),
                 Options.RetryBackoffMaxMs);
    BackoffMs = std::min(BackoffMs, RemainingAfter);
    support::traceInstant("service.retry",
                          {{"signature", Signature},
                           {"code", errorCodeName(Failure.code())}});
    Telem.recordEvent(Job->RequestId, RequestEventKind::Backoff,
                      std::to_string(BackoffMs));
    if (BackoffMs > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(BackoffMs));
  }

  // Fulfill the leader, then everyone who coalesced onto this flight.
  // Taking the flight out of the table and fulfilling are not atomic;
  // a request arriving in between simply starts a new flight.
  std::vector<std::shared_ptr<PendingRequest>> Waiters;
  {
    std::lock_guard<std::mutex> Guard(FlightsLock);
    auto It = Flights.find(Signature);
    assert(It != Flights.end() && "leader's flight vanished");
    Waiters = std::move(It->second.Waiters);
    Flights.erase(It);
  }
  for (const std::shared_ptr<PendingRequest> &Waiter : Waiters) {
    ErrorOr<ServiceResult> Shared = Outcome;
    if (Shared) {
      Shared->Coalesced = true;
      Shared->QueueMs = msBetween(Waiter->SubmittedAt, Clock::now());
    }
    fulfill(Waiter, std::move(Shared));
  }
  fulfill(Job, std::move(Outcome));
}

ServiceStats GenerationService::stats() const {
  ServiceStats Out;
  Out.Submitted = Tallies.Submitted.load(std::memory_order_relaxed);
  Out.Completed = Tallies.Completed.load(std::memory_order_relaxed);
  Out.Failed = Tallies.Failed.load(std::memory_order_relaxed);
  Out.ShedQueueFull = Tallies.ShedQueueFull.load(std::memory_order_relaxed);
  Out.ShedOverloaded =
      Tallies.ShedOverloaded.load(std::memory_order_relaxed);
  Out.ShedExpired = Tallies.ShedExpired.load(std::memory_order_relaxed);
  Out.Retries = Tallies.Retries.load(std::memory_order_relaxed);
  Out.Coalesced = Tallies.Coalesced.load(std::memory_order_relaxed);
  Out.CacheHits = Repo.hits();
  Out.CacheMisses = Repo.misses();
  Out.Quarantined = Repo.quarantined();
  Out.BreakerTrips = Tallies.BreakerTrips.load(std::memory_order_relaxed);
  Out.BreakerResets = Tallies.BreakerResets.load(std::memory_order_relaxed);
  Out.DeadlineDegraded =
      Tallies.DeadlineDegraded.load(std::memory_order_relaxed);
  Out.DeadlineExpired =
      Tallies.DeadlineExpired.load(std::memory_order_relaxed);
  return Out;
}

void GenerationService::syncRegistry() const {
  support::MetricRegistry &R = Telem.registry();
  const ServiceStats S = stats();
  R.counter("service.submitted", "requests entering submit()")
      .bridgeTo(S.Submitted);
  R.counter("service.completed", "requests fulfilled with a plan")
      .bridgeTo(S.Completed);
  R.counter("service.failed", "requests fulfilled with a typed error")
      .bridgeTo(S.Failed);
  R.counter("service.shed-queue-full", "requests shed on a full intake queue")
      .bridgeTo(S.ShedQueueFull);
  R.counter("service.shed-overloaded",
            "requests shed at the outstanding-work limit")
      .bridgeTo(S.ShedOverloaded);
  R.counter("service.shed-expired",
            "requests shed with a pre-expired deadline")
      .bridgeTo(S.ShedExpired);
  R.counter("service.retries", "attempts re-run after a transient failure")
      .bridgeTo(S.Retries);
  R.counter("service.coalesced",
            "requests that rode another request's generation")
      .bridgeTo(S.Coalesced);
  R.counter("service.breaker-trips", "circuit breakers tripped open")
      .bridgeTo(S.BreakerTrips);
  R.counter("service.breaker-resets",
            "breakers closed again by a clean half-open probe")
      .bridgeTo(S.BreakerResets);
  R.counter("service.deadline-degraded",
            "requests forced onto a degraded start rung by their deadline")
      .bridgeTo(S.DeadlineDegraded);
  R.counter("service.deadline-expired",
            "requests whose deadline had fully expired before execution")
      .bridgeTo(S.DeadlineExpired);
  R.counter("telemetry.events-recorded", "lifecycle events recorded")
      .bridgeTo(Telem.eventsRecorded());
  R.counter("telemetry.events-dropped",
            "events evicted from the bounded in-memory ring")
      .bridgeTo(Telem.eventsDropped());
  R.gauge("service.outstanding", "requests admitted but not yet fulfilled")
      .set(static_cast<double>(Outstanding.load(std::memory_order_relaxed)));
  {
    std::lock_guard<std::mutex> Guard(QueueLock);
    R.gauge("service.queue-depth", "requests waiting in the intake queue")
        .set(static_cast<double>(Queue.size()));
  }
  Repo.mirrorMetrics(R);
  support::bridgeProcessCounters(R);
}

std::string GenerationService::telemetrySnapshot() const {
  syncRegistry();
  return Telem.registry().renderJson();
}

std::string GenerationService::telemetryPrometheus() const {
  syncRegistry();
  return Telem.registry().renderPrometheus();
}

double GenerationService::percentileMs(std::vector<double> SamplesMs,
                                       double P) {
  if (SamplesMs.empty())
    return 0.0;
  std::sort(SamplesMs.begin(), SamplesMs.end());
  double Rank = (P / 100.0) * static_cast<double>(SamplesMs.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, SamplesMs.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return SamplesMs[Lo] * (1.0 - Frac) + SamplesMs[Hi] * Frac;
}
