//===- service/GenerationService.h - Resilient generation front-end -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel generation as a service: a bounded-queue worker pool in front of
/// Cogent::generate built to serve heavy concurrent traffic without
/// falling over. Robustness mechanisms, each observable in ServiceStats:
///
///  - Admission control and load shedding: a full intake queue is a typed
///    ErrorCode::QueueFull, too much outstanding work a typed
///    ErrorCode::Overloaded — callers are told to back off, never blocked
///    or hung.
///  - Deadline propagation: each request carries a wall-clock budget; the
///    remaining budget at execution time is split across pipeline phases
///    (the enumerate share flows into GenerationBudget::DeadlineMs), and
///    when it runs low the run *degrades* to a cheaper fallback rung
///    (CogentOptions::StartRung -> minimal-tile, then TTGT) instead of
///    erroring. Even a deadline that expired while queued produces the
///    TTGT plan — a degraded answer, never a hang and never a silent drop.
///  - Retry with exponential backoff: attempts that fail with a transient
///    error (isTransient(ErrorCode)) are re-run with doubled backoff, each
///    attempt under a distinct deterministic chaos seed so injected
///    faults model *transient* infrastructure trouble.
///  - Singleflight coalescing: concurrent requests for one contraction
///    signature generate once; followers receive the leader's plan.
///  - Sharded plan cache: warm requests are served by the
///    ShardedKernelRepository (per-shard locking, checksum-guarded
///    entries, corrupt-entry quarantine); a background repair pass
///    (rebuildQuarantined) rides the worker pool.
///  - Circuit breaker: a signature whose full-pipeline runs keep hitting
///    verifier/lint rejections trips to the TTGT rung for a cooldown
///    (closed -> open -> half-open probe -> closed), so a pathological
///    contraction cannot keep burning retries in the expensive pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SERVICE_GENERATIONSERVICE_H
#define COGENT_SERVICE_GENERATIONSERVICE_H

#include "core/Cogent.h"
#include "core/KernelRepository.h"
#include "gpu/DeviceSpec.h"
#include "service/Telemetry.h"
#include "support/Diagnostics.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace cogent {
namespace service {

/// Tuning knobs for one service instance. The defaults suit tests and
/// small tools; bench_service and production-style callers raise the
/// worker count and queue sizes.
struct ServiceOptions {
  /// Worker threads draining the queue. 0 is permitted (requests queue
  /// until resume()/stop(); useful for deterministic shedding tests).
  unsigned NumWorkers = 4;
  /// Intake queue capacity; a submit beyond it sheds with QueueFull.
  size_t QueueCapacity = 256;
  /// Cap on requests admitted but not yet completed (queued + executing +
  /// coalesced); beyond it a submit sheds with Overloaded.
  size_t MaxOutstanding = 1024;
  /// Extra attempts after the first for transiently-failed requests.
  unsigned MaxRetries = 2;
  /// Exponential backoff between attempts: Base * 2^(attempt-1), capped.
  double RetryBackoffBaseMs = 0.25;
  double RetryBackoffMaxMs = 4.0;
  /// Deadline applied to requests that carry none. 0 = unbounded.
  double DefaultDeadlineMs = 0.0;
  /// Remaining-budget thresholds for graceful degradation: below
  /// DegradeMinimalTileMs the run starts at the minimal-tile rung, below
  /// DegradeTtgtMs (or with the budget already spent) at the TTGT rung.
  double DegradeMinimalTileMs = 25.0;
  double DegradeTtgtMs = 6.0;
  /// Share of the remaining budget granted to the enumeration phase when
  /// the run is not degraded (the rest covers rank + emit + verification).
  double EnumerateBudgetFraction = 0.6;
  /// Consecutive rejection-carrying full-pipeline runs of one signature
  /// that trip its breaker open.
  unsigned BreakerThreshold = 3;
  /// Open-state requests served degraded before the half-open probe.
  unsigned BreakerCooldownRequests = 8;
  /// Shards in the plan cache.
  size_t NumShards = 16;
  /// Observability: event-ring capacity, histogram sharding, optional
  /// JSON-lines event sink (see service/Telemetry.h).
  TelemetryOptions Telemetry;
  /// Base options for every generation run (element size, lint mode,
  /// chaos, ...). Budget/StartRung fields are overwritten per request by
  /// the deadline/breaker machinery.
  core::CogentOptions Generation;
  /// Derive a distinct deterministic chaos seed per (signature, attempt)
  /// from Generation.Chaos.Seed, so a retry does not deterministically
  /// replay the exact fault pattern that failed the previous attempt.
  bool ReseedChaosPerAttempt = true;
  /// Construct with workers parked (resume() starts draining). For tests
  /// that need a deterministically full queue.
  bool StartPaused = false;
};

/// One contraction request.
struct ServiceRequest {
  /// "C-A-B" index notation, as everywhere else.
  std::string Spec;
  /// Per-index extents.
  std::vector<std::pair<char, int64_t>> Extents;
  /// Wall-clock budget, milliseconds, measured from submit. 0 uses
  /// ServiceOptions::DefaultDeadlineMs; negative is already expired and
  /// sheds with DeadlineExceeded at submit.
  double DeadlineMs = 0.0;
  /// Skip the cache lookup (the fresh plan still refreshes the cache).
  /// For benchmarking the cold path and exercising the breaker.
  bool BypassCache = false;
};

/// A completed request's payload plus how the service produced it.
struct ServiceResult {
  /// The service-assigned request id; keys this request's event timeline
  /// in the telemetry log.
  uint64_t RequestId = 0;
  core::GeneratedKernel Kernel;
  core::FallbackLevel Fallback = core::FallbackLevel::None;
  /// Served from a checksum-valid cache entry.
  bool CacheHit = false;
  /// This request rode another in-flight request's generation.
  bool Coalesced = false;
  /// Deadline pressure forced a degraded start rung.
  bool DeadlineDegraded = false;
  /// The deadline had fully expired before execution; the TTGT rung was
  /// produced anyway (a degraded answer, not an error).
  bool DeadlineExpired = false;
  /// An open circuit breaker forced the TTGT rung.
  bool BreakerDegraded = false;
  /// This lookup evicted a corrupt cache entry (served fresh).
  bool Quarantined = false;
  /// Generation attempts consumed (1 = first try succeeded).
  unsigned Attempts = 1;
  /// Time spent queued before a worker picked the request up, ms.
  double QueueMs = 0.0;
  /// Submit-to-completion wall clock, ms.
  double TotalMs = 0.0;
};

/// Monotonic service-lifetime tallies. completed + failed + shed equals
/// submitted once the service is idle — nothing is ever silently dropped.
struct ServiceStats {
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  uint64_t Failed = 0;
  uint64_t ShedQueueFull = 0;
  uint64_t ShedOverloaded = 0;
  uint64_t ShedExpired = 0;
  uint64_t Retries = 0;
  uint64_t Coalesced = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t Quarantined = 0;
  uint64_t BreakerTrips = 0;
  uint64_t BreakerResets = 0;
  uint64_t DeadlineDegraded = 0;
  uint64_t DeadlineExpired = 0;
};

/// Opaque handle to a submitted request; defined in the .cpp.
struct PendingRequest;

/// The service. One instance owns a generator bound to one device, a
/// sharded plan cache and a worker pool; submit/process are safe from any
/// number of client threads.
class GenerationService {
public:
  explicit GenerationService(gpu::DeviceSpec Device,
                             ServiceOptions Options = ServiceOptions());
  ~GenerationService();

  GenerationService(const GenerationService &) = delete;
  GenerationService &operator=(const GenerationService &) = delete;

  /// Non-blocking admission: returns a waitable handle, or sheds with a
  /// typed QueueFull / Overloaded / DeadlineExceeded / ServiceStopped
  /// error. Never blocks the caller on a full queue.
  ErrorOr<std::shared_ptr<PendingRequest>> submit(ServiceRequest Request);

  /// Blocks until \p Handle completes; returns its plan or typed error.
  ErrorOr<ServiceResult> wait(const std::shared_ptr<PendingRequest> &Handle);

  /// submit + wait.
  ErrorOr<ServiceResult> process(ServiceRequest Request);

  /// Submits every request, then waits for all. Index i of the output is
  /// request i's outcome (shed requests fail at their own index; the rest
  /// of the batch still runs).
  std::vector<ErrorOr<ServiceResult>>
  processBatch(const std::vector<ServiceRequest> &Requests);

  /// Park / unpark the workers (queued requests are held, not shed).
  void pause();
  void resume();

  /// Stops the pool: in-flight requests finish, queued ones fail with a
  /// typed ServiceStopped error, workers join. Idempotent; the destructor
  /// calls it.
  void stop();

  /// Runs one cache-repair pass (ShardedKernelRepository::
  /// rebuildQuarantined) on the calling thread; returns entries rebuilt.
  size_t repairCache();

  ServiceStats stats() const;
  const core::ShardedKernelRepository &repository() const { return Repo; }
  const gpu::DeviceSpec &device() const { return Generator.device(); }

  /// The telemetry hub: event timeline, metric registry, request ids.
  ServiceTelemetry &telemetry() { return Telem; }
  const ServiceTelemetry &telemetry() const { return Telem; }

  /// Point-in-time JSON snapshot of the whole registry (stats, cache and
  /// process counters bridged in, queue gauges refreshed, latency /
  /// queue-wait histograms): one {"counters":..,"gauges":..,
  /// "histograms":..} object. The cogent_cli --telemetry-json payload.
  std::string telemetrySnapshot() const;

  /// The same registry state in Prometheus text exposition format.
  std::string telemetryPrometheus() const;

  /// The \p P-th percentile (0..100) of \p SamplesMs; 0 when empty.
  /// Deprecated for service-side latency reporting — the service now keeps
  /// bounded histograms (telemetrySnapshot) instead of raw samples; this
  /// exact-sort helper remains for callers that collect their own samples
  /// (bench_service's warm-up slicing) and as the tests' reference
  /// implementation for the histogram error bound.
  static double percentileMs(std::vector<double> SamplesMs, double P);

private:
  void workerLoop();
  void execute(const std::shared_ptr<PendingRequest> &Job);
  void fulfill(const std::shared_ptr<PendingRequest> &Job,
               ErrorOr<ServiceResult> Outcome);
  /// Bridges Tallies, cache stats and the process counter table into the
  /// telemetry registry and refreshes the liveness gauges; both exporters
  /// call this so a snapshot is always current.
  void syncRegistry() const;

  ServiceOptions Options;
  core::Cogent Generator;
  core::ShardedKernelRepository Repo;

  mutable std::mutex QueueLock;
  std::condition_variable QueueCv;
  std::deque<std::shared_ptr<PendingRequest>> Queue;
  bool Paused = false;
  bool Stopping = false;
  std::vector<std::thread> Workers;
  std::atomic<size_t> Outstanding{0};

  /// Singleflight table: signature -> leader's flight, holding the
  /// followers to fulfill when the leader finishes.
  struct Flight {
    std::vector<std::shared_ptr<PendingRequest>> Waiters;
  };
  std::mutex FlightsLock;
  std::unordered_map<std::string, Flight> Flights;

  /// Per-signature circuit breaker (see docs/ARCHITECTURE.md §15 for the
  /// state machine; states/labels in service/Telemetry.h).
  struct Breaker {
    BreakerState S = BreakerState::Closed;
    unsigned ConsecutiveRejections = 0;
    unsigned OpenServed = 0;
  };
  mutable std::mutex BreakersLock;
  std::unordered_map<std::string, Breaker> Breakers;

  /// Mutable so the const exporters can bridge tallies into the registry
  /// (monotonic ratchets; logically read-only).
  mutable ServiceTelemetry Telem;

  struct AtomicStats {
    std::atomic<uint64_t> Submitted{0}, Completed{0}, Failed{0},
        ShedQueueFull{0}, ShedOverloaded{0}, ShedExpired{0}, Retries{0},
        Coalesced{0}, BreakerTrips{0}, BreakerResets{0},
        DeadlineDegraded{0}, DeadlineExpired{0};
  };
  AtomicStats Tallies;
};

} // namespace service
} // namespace cogent

#endif // COGENT_SERVICE_GENERATIONSERVICE_H
