//===- service/Telemetry.cpp ----------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "service/Telemetry.h"

#include "support/JsonWriter.h"
#include "support/Trace.h"

using namespace cogent;
using namespace cogent::service;

namespace {

constexpr const char *BreakerStateNames[NumBreakerStates] = {
    "closed",
    "open",
    "half-open",
};

constexpr const char *RequestEventKindNames[NumRequestEventKinds] = {
    "submitted",
    "shed",
    "dequeued",
    "deadline-band",
    "breaker-transition",
    "attempt-start",
    "attempt-failed",
    "backoff",
    "cache-hit",
    "cache-quarantine",
    "coalesced",
    "completed",
    "failed",
};

/// traceInstant keeps only the pointer, so instants need names with static
/// storage duration — one pre-composed "service.<kind>" per event kind.
constexpr const char *RequestEventTraceNames[NumRequestEventKinds] = {
    "service.submitted",
    "service.shed",
    "service.dequeued",
    "service.deadline-band",
    "service.breaker-transition",
    "service.attempt-start",
    "service.attempt-failed",
    "service.backoff",
    "service.cache-hit",
    "service.cache-quarantine",
    "service.coalesced",
    "service.completed",
    "service.failed",
};

} // namespace

const char *cogent::service::breakerStateName(BreakerState S) {
  unsigned I = static_cast<unsigned>(S);
  return I < NumBreakerStates ? BreakerStateNames[I] : "unknown";
}

std::optional<BreakerState>
cogent::service::breakerStateFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumBreakerStates; ++I)
    if (Name == BreakerStateNames[I])
      return static_cast<BreakerState>(I);
  return std::nullopt;
}

const char *cogent::service::requestEventKindName(RequestEventKind Kind) {
  unsigned I = static_cast<unsigned>(Kind);
  return I < NumRequestEventKinds ? RequestEventKindNames[I] : "unknown";
}

std::optional<RequestEventKind>
cogent::service::requestEventKindFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumRequestEventKinds; ++I)
    if (Name == RequestEventKindNames[I])
      return static_cast<RequestEventKind>(I);
  return std::nullopt;
}

bool cogent::service::isTerminalEvent(RequestEventKind Kind) {
  return Kind == RequestEventKind::Shed ||
         Kind == RequestEventKind::Completed ||
         Kind == RequestEventKind::Failed;
}

std::string RequestEvent::toJson() const {
  support::JsonWriter W;
  W.beginObject();
  W.member("request", RequestId);
  W.member("event", requestEventKindName(Kind));
  W.member("at_ms", AtMs);
  W.member("detail", Detail);
  W.endObject();
  return W.take();
}

ServiceTelemetry::ServiceTelemetry(TelemetryOptions Options)
    : Options(std::move(Options)), Epoch(std::chrono::steady_clock::now()) {
  if (this->Options.EventCapacity == 0)
    this->Options.EventCapacity = 1;
  if (!this->Options.EventLogJsonlPath.empty())
    JsonlSink = std::fopen(this->Options.EventLogJsonlPath.c_str(), "w");
}

ServiceTelemetry::~ServiceTelemetry() {
  if (JsonlSink)
    std::fclose(JsonlSink);
}

uint64_t ServiceTelemetry::beginRequest() {
  return NextRequestId.fetch_add(1, std::memory_order_relaxed) + 1;
}

double ServiceTelemetry::nowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void ServiceTelemetry::recordEvent(uint64_t RequestId, RequestEventKind Kind,
                                   std::string Detail) {
  RequestEvent Event;
  Event.RequestId = RequestId;
  Event.Kind = Kind;
  Event.AtMs = nowMs();
  Event.Detail = std::move(Detail);

  support::traceInstant(
      RequestEventTraceNames[static_cast<unsigned>(Kind) %
                             NumRequestEventKinds],
      {{"request", std::to_string(RequestId)}, {"detail", Event.Detail}});

  std::lock_guard<std::mutex> Guard(EventsLock);
  if (JsonlSink) {
    std::string Line = Event.toJson();
    Line += '\n';
    if (std::fwrite(Line.data(), 1, Line.size(), JsonlSink) != Line.size()) {
      // A failing sink (disk full, closed pipe) must not take the service
      // down or stall the workers: drop the file and keep going.
      std::fclose(JsonlSink);
      JsonlSink = nullptr;
    } else {
      std::fflush(JsonlSink);
    }
  }
  ++Recorded;
  Events.push_back(std::move(Event));
  while (Events.size() > Options.EventCapacity) {
    Events.pop_front();
    ++Dropped;
  }
}

std::vector<RequestEvent> ServiceTelemetry::events() const {
  std::lock_guard<std::mutex> Guard(EventsLock);
  return std::vector<RequestEvent>(Events.begin(), Events.end());
}

uint64_t ServiceTelemetry::eventsRecorded() const {
  std::lock_guard<std::mutex> Guard(EventsLock);
  return Recorded;
}

uint64_t ServiceTelemetry::eventsDropped() const {
  std::lock_guard<std::mutex> Guard(EventsLock);
  return Dropped;
}
