//===- service/Telemetry.h - Request timelines and service metrics --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-request observability for the generation service. Every admitted
/// (or shed) request carries a monotonically-assigned request id, and the
/// service narrates its whole lifecycle as a typed event timeline:
///
///   submitted -> dequeued -> [deadline-band] -> attempt-start
///             -> [breaker-transition | cache-hit | cache-quarantine
///                 | attempt-failed -> backoff -> attempt-start ...]
///             -> completed | failed            (or shed straight after
///                                               submitted)
///
/// Exactly one terminal event (completed / failed / shed) closes every
/// timeline — the event-log mirror of the ServiceStats conservation law —
/// and test_telemetry holds chaos-stormed runs to it.
///
/// Each event is (1) retained in a bounded in-memory ring for snapshots
/// and tests, (2) mirrored as an instant into the active Chrome-trace
/// session (support/Trace.h) so request lifecycles interleave with the
/// pipeline's spans, and (3) optionally streamed to a JSON-lines sink —
/// one self-contained JSON object per line, the grep-able production log.
///
/// ServiceTelemetry also owns the service's MetricRegistry
/// (support/Metrics.h): latency/queue-wait histograms, stat counters and
/// liveness gauges, exported as a JSON snapshot and as Prometheus text by
/// GenerationService::telemetrySnapshot()/telemetryPrometheus().
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SERVICE_TELEMETRY_H
#define COGENT_SERVICE_TELEMETRY_H

#include "support/Metrics.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace cogent {
namespace service {

/// Circuit-breaker states (docs/ARCHITECTURE.md §15). Lives here rather
/// than in GenerationService so the exporter label table is a public,
/// round-trip-tested name set.
enum class BreakerState : unsigned { Closed, Open, HalfOpen };

/// Number of BreakerState enumerators; keep in sync when extending the
/// enum (the name-table round-trip test walks [0, NumBreakerStates)).
inline constexpr unsigned NumBreakerStates = 3;

/// "closed", "open" or "half-open".
const char *breakerStateName(BreakerState S);

/// Inverse of breakerStateName; nullopt for unknown strings.
std::optional<BreakerState> breakerStateFromName(const std::string &Name);

/// The typed request-lifecycle events. Serialized into the event log and
/// trace instants; the name table is pinned by test_name_tables.
enum class RequestEventKind : unsigned {
  /// Request entered submit(). Always a timeline's first event.
  Submitted,
  /// Admission control refused the request (queue-full / overloaded /
  /// pre-expired deadline / stopped service). Terminal.
  Shed,
  /// A worker picked the request off the queue; detail carries the queue
  /// wait in ms.
  Dequeued,
  /// Remaining deadline re-banded the run onto a degraded start rung.
  DeadlineBand,
  /// This request drove its signature's breaker through a state change;
  /// detail is "from->to" in breakerStateName labels.
  BreakerTransition,
  /// One generation attempt began; detail is the attempt ordinal.
  AttemptStart,
  /// The attempt failed; detail is the typed error code name.
  AttemptFailed,
  /// A transient failure is being retried after a backoff; detail is the
  /// backoff in ms.
  Backoff,
  /// Served by a checksum-valid cache entry.
  CacheHit,
  /// The lookup found its cache entry corrupt and evicted it (served
  /// fresh).
  CacheQuarantine,
  /// This request rode another in-flight request's generation.
  Coalesced,
  /// The request completed with a plan. Terminal.
  Completed,
  /// The request failed with a typed error; detail is the code name.
  /// Terminal.
  Failed,
};

/// Number of RequestEventKind enumerators; keep in sync when extending
/// the enum (the name-table round-trip test walks [0,
/// NumRequestEventKinds)).
inline constexpr unsigned NumRequestEventKinds = 13;

/// Kebab-case label, e.g. "deadline-band".
const char *requestEventKindName(RequestEventKind Kind);

/// Inverse of requestEventKindName; nullopt for unknown strings.
std::optional<RequestEventKind>
requestEventKindFromName(const std::string &Name);

/// True for the three timeline-closing kinds: Shed, Completed, Failed.
bool isTerminalEvent(RequestEventKind Kind);

/// One recorded lifecycle event.
struct RequestEvent {
  uint64_t RequestId = 0;
  RequestEventKind Kind = RequestEventKind::Submitted;
  /// Milliseconds since the owning ServiceTelemetry was constructed.
  double AtMs = 0.0;
  /// Kind-specific payload (rung name, error code, "open->half-open",
  /// queue wait, ...). Free-form but short.
  std::string Detail;

  /// This event as one self-contained JSON object, e.g.
  /// {"request":7,"event":"completed","at_ms":1.25,"detail":""} — the
  /// JSON-lines log format.
  std::string toJson() const;
};

/// Telemetry configuration for one service instance.
struct TelemetryOptions {
  /// Events retained in memory (a ring: oldest dropped first, dropped
  /// count exposed). Sized so tests and snapshots see whole workloads;
  /// production sinks should stream via EventLogJsonlPath instead.
  size_t EventCapacity = 1 << 15;
  /// Shards per histogram (per-worker contention vs merge cost).
  size_t HistogramShards = 8;
  /// When non-empty, every event is appended to this file as one JSON
  /// object per line, as it happens. Open/write failures disable the sink
  /// (telemetry must never take the service down).
  std::string EventLogJsonlPath;
};

/// Thread-safe telemetry hub owned by one GenerationService: request-id
/// allocation, the bounded event log (+ trace mirror + JSONL sink) and
/// the metric registry.
class ServiceTelemetry {
public:
  explicit ServiceTelemetry(TelemetryOptions Options = TelemetryOptions());
  ~ServiceTelemetry();

  ServiceTelemetry(const ServiceTelemetry &) = delete;
  ServiceTelemetry &operator=(const ServiceTelemetry &) = delete;

  /// Allocates the next request id (1-based, monotonic).
  uint64_t beginRequest();

  /// Records one event: appends to the ring (dropping the oldest past
  /// capacity), streams to the JSONL sink when open, and mirrors a
  /// "service.<kind>" instant into the active trace session.
  void recordEvent(uint64_t RequestId, RequestEventKind Kind,
                   std::string Detail = std::string());

  /// Milliseconds since construction (the event timestamp base).
  double nowMs() const;

  support::MetricRegistry &registry() { return Registry; }
  const support::MetricRegistry &registry() const { return Registry; }

  /// Copy of the retained events, in record order.
  std::vector<RequestEvent> events() const;
  /// Events recorded so far (including any dropped from the ring).
  uint64_t eventsRecorded() const;
  /// Events evicted from the ring because it was full.
  uint64_t eventsDropped() const;

private:
  TelemetryOptions Options;
  std::chrono::steady_clock::time_point Epoch;
  std::atomic<uint64_t> NextRequestId{0};

  mutable std::mutex EventsLock;
  std::deque<RequestEvent> Events;
  uint64_t Recorded = 0;
  uint64_t Dropped = 0;
  std::FILE *JsonlSink = nullptr;

  support::MetricRegistry Registry;
};

} // namespace service
} // namespace cogent

#endif // COGENT_SERVICE_TELEMETRY_H
