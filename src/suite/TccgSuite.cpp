//===- suite/TccgSuite.cpp -----------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "suite/TccgSuite.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace cogent;
using namespace cogent::suite;

const char *cogent::suite::categoryName(Category Cat) {
  switch (Cat) {
  case Category::MachineLearning:
    return "ML";
  case Category::AoMoTransform:
    return "AO-MO";
  case Category::Ccsd:
    return "CCSD";
  case Category::CcsdT:
    return "CCSD(T)";
  }
  assert(false && "unknown category");
  return "?";
}

ErrorOr<ir::Contraction> SuiteEntry::tryContraction() const {
  return std::move(ir::Contraction::parse(Spec, Extents))
      .withContext("suite entry " + std::to_string(Id) + " (" + Name + ")");
}

ErrorOr<ir::Contraction>
SuiteEntry::tryContractionScaled(int64_t MaxExtent) const {
  std::vector<std::pair<char, int64_t>> Scaled = Extents;
  for (auto &[Name, Extent] : Scaled)
    Extent = std::min(Extent, MaxExtent);
  return std::move(ir::Contraction::parse(Spec, Scaled))
      .withContext("suite entry " + std::to_string(Id) + " (" + Name +
                   ") scaled to " + std::to_string(MaxExtent));
}

ir::Contraction SuiteEntry::contraction() const {
  ErrorOr<ir::Contraction> TC = tryContraction();
  assert(TC.hasValue() && "built-in suite entry failed to parse");
  return *TC;
}

ir::Contraction SuiteEntry::contractionScaled(int64_t MaxExtent) const {
  ErrorOr<ir::Contraction> TC = tryContractionScaled(MaxExtent);
  assert(TC.hasValue() && "scaled built-in suite entry failed to parse");
  return *TC;
}

namespace {

/// Uniform extents for every index occurring in \p Spec.
std::vector<std::pair<char, int64_t>> uniform(const std::string &Spec,
                                              int64_t Extent) {
  std::vector<std::pair<char, int64_t>> Extents;
  for (char C = 'a'; C <= 'z'; ++C)
    if (Spec.find(C) != std::string::npos)
      Extents.emplace_back(C, Extent);
  return Extents;
}

std::vector<SuiteEntry> buildSuite() {
  std::vector<SuiteEntry> Suite;
  int Id = 1;
  auto add = [&](const std::string &Name, const std::string &Spec,
                 Category Cat, int64_t Extent) {
    SuiteEntry Entry;
    Entry.Id = Id++;
    Entry.Name = Name;
    Entry.Spec = Spec;
    Entry.Cat = Cat;
    Entry.Extents = uniform(Spec, Extent);
    Suite.push_back(std::move(Entry));
  };

  // --- 1-8: tensor-matrix multiplications from machine learning ---------
  // ML workloads operate on modest mode sizes (Tucker/MPS factors), which
  // is what makes kernel-launch and transpose overheads visible for TTGT.
  add("ml_1", "abc-acd-db", Category::MachineLearning, 96);
  add("ml_2", "abc-adc-bd", Category::MachineLearning, 96);
  add("ml_3", "abc-bda-dc", Category::MachineLearning, 96);
  add("ml_4", "abc-dca-bd", Category::MachineLearning, 96);
  add("ml_5", "ab-acd-dbc", Category::MachineLearning, 96);
  add("ml_6", "ab-cad-dcb", Category::MachineLearning, 96);
  add("ml_7", "abcd-aebd-ce", Category::MachineLearning, 64);
  add("ml_8", "abcd-aecd-be", Category::MachineLearning, 64);

  // --- 9-11: AO-basis -> MO-basis integral transforms -------------------
  add("aomo_1", "abcd-ebcd-ea", Category::AoMoTransform, 72);
  add("aomo_2", "abcd-aecd-eb", Category::AoMoTransform, 72);
  add("aomo_3", "abcd-abed-ec", Category::AoMoTransform, 72);

  // --- 12-30: CCSD -------------------------------------------------------
  // 12 is the paper's running example, Eq. 1 (4D = 4D * 4D).
  add("ccsd_1", "abcd-aebf-dfce", Category::Ccsd, 72);
  add("ccsd_2", "abcd-ea-ebcd", Category::Ccsd, 72);
  add("ccsd_3", "abcd-eb-aecd", Category::Ccsd, 72);
  add("ccsd_4", "abcd-ec-abed", Category::Ccsd, 72);
  add("ccsd_5", "abcd-ed-abce", Category::Ccsd, 72);
  add("ccsd_6", "abcd-ebad-ce", Category::Ccsd, 72);
  add("ccsd_7", "abcd-aebd-ec", Category::Ccsd, 72);
  add("ccsd_8", "abcd-deca-be", Category::Ccsd, 72);
  // 20-30: the 4D = 4D * 4D family with two contraction indices.
  add("ccsd_9", "abcd-aebf-fdec", Category::Ccsd, 72);
  add("ccsd_10", "abcd-eafd-fbec", Category::Ccsd, 72);
  add("ccsd_11", "abcd-eafb-fdec", Category::Ccsd, 72);
  add("ccsd_12", "abcd-aefb-fdce", Category::Ccsd, 72);
  add("ccsd_13", "abcd-feab-dfce", Category::Ccsd, 72);
  add("ccsd_14", "abcd-ebaf-dcfe", Category::Ccsd, 72);
  add("ccsd_15", "abcd-fbea-cdef", Category::Ccsd, 72);
  add("ccsd_16", "abcd-bfae-dcef", Category::Ccsd, 72);
  add("ccsd_17", "abcd-afbe-cfde", Category::Ccsd, 72);
  add("ccsd_18", "abcd-aebf-cfde", Category::Ccsd, 72);
  add("ccsd_19", "abcd-befa-dcef", Category::Ccsd, 72);

  // --- 31-48: CCSD(T) triples (6D = 4D * 4D, one contraction index) -----
  // 31-39: the SD2 set; sd2_1 is quoted in the paper (Fig. 8 caption).
  add("sd2_1", "abcdef-gdab-efgc", Category::CcsdT, 16);
  add("sd2_2", "abcdef-gdac-efgb", Category::CcsdT, 16);
  add("sd2_3", "abcdef-gdbc-efga", Category::CcsdT, 16);
  add("sd2_4", "abcdef-geab-dfgc", Category::CcsdT, 16);
  add("sd2_5", "abcdef-geac-dfgb", Category::CcsdT, 16);
  add("sd2_6", "abcdef-gebc-dfga", Category::CcsdT, 16);
  add("sd2_7", "abcdef-gfab-degc", Category::CcsdT, 16);
  add("sd2_8", "abcdef-gfac-degb", Category::CcsdT, 16);
  add("sd2_9", "abcdef-gfbc-dega", Category::CcsdT, 16);
  // 40-48: the D1 set (contraction index in the slowest position).
  add("sd1_1", "abcdef-dabg-efcg", Category::CcsdT, 16);
  add("sd1_2", "abcdef-dacg-efbg", Category::CcsdT, 16);
  add("sd1_3", "abcdef-dbcg-efag", Category::CcsdT, 16);
  add("sd1_4", "abcdef-eabg-dfcg", Category::CcsdT, 16);
  add("sd1_5", "abcdef-eacg-dfbg", Category::CcsdT, 16);
  add("sd1_6", "abcdef-ebcg-dfag", Category::CcsdT, 16);
  add("sd1_7", "abcdef-fabg-decg", Category::CcsdT, 16);
  add("sd1_8", "abcdef-facg-debg", Category::CcsdT, 16);
  add("sd1_9", "abcdef-fbcg-deag", Category::CcsdT, 16);

  assert(Suite.size() == 48 && "the TCCG suite has 48 entries");
  return Suite;
}

} // namespace

const std::vector<SuiteEntry> &cogent::suite::tccgSuite() {
  static const std::vector<SuiteEntry> Suite = buildSuite();
  return Suite;
}

std::vector<SuiteEntry> cogent::suite::suiteByCategory(Category Cat) {
  std::vector<SuiteEntry> Result;
  for (const SuiteEntry &Entry : tccgSuite())
    if (Entry.Cat == Cat)
      Result.push_back(Entry);
  return Result;
}

const SuiteEntry &cogent::suite::suiteEntry(int Id) {
  const std::vector<SuiteEntry> &Suite = tccgSuite();
  assert(Id >= 1 && Id <= static_cast<int>(Suite.size()) &&
         "suite id out of range");
  return Suite[static_cast<size_t>(Id - 1)];
}

std::vector<SuiteEntry> cogent::suite::sd2Set() {
  std::vector<SuiteEntry> Result;
  for (const SuiteEntry &Entry : tccgSuite())
    if (Entry.Name.rfind("sd2_", 0) == 0)
      Result.push_back(Entry);
  return Result;
}

ErrorOr<std::vector<SuiteEntry>>
cogent::suite::parseSuiteListing(const std::string &Text) {
  std::vector<SuiteEntry> Entries;
  std::istringstream In(Text);
  std::string RawLine;
  int LineNo = 0;
  while (std::getline(In, RawLine)) {
    ++LineNo;
    std::string Line = trim(RawLine);
    if (Line.empty() || Line[0] == '#')
      continue;
    auto lineError = [&](ErrorCode Code, const std::string &Message) {
      return Error(Code, Message)
          .withContext("suite listing line " + std::to_string(LineNo));
    };

    std::istringstream Fields(Line);
    std::vector<std::string> Tokens;
    std::string Token;
    while (Fields >> Token)
      Tokens.push_back(Token);
    if (Tokens.size() < 4)
      return lineError(ErrorCode::InvalidSpec,
                       "expected \"id name family spec extents...\", got "
                       "only " + std::to_string(Tokens.size()) + " fields");

    SuiteEntry Entry;
    char *IdEnd = nullptr;
    long Id = std::strtol(Tokens[0].c_str(), &IdEnd, 10);
    if (IdEnd == Tokens[0].c_str() || *IdEnd != '\0' || Id <= 0)
      return lineError(ErrorCode::InvalidSpec,
                       "id field \"" + Tokens[0] +
                       "\" is not a positive integer");
    Entry.Id = static_cast<int>(Id);
    Entry.Name = Tokens[1];

    bool FamilyKnown = false;
    for (Category Cat : {Category::MachineLearning, Category::AoMoTransform,
                         Category::Ccsd, Category::CcsdT})
      if (Tokens[2] == categoryName(Cat)) {
        Entry.Cat = Cat;
        FamilyKnown = true;
      }
    if (!FamilyKnown)
      return lineError(ErrorCode::InvalidSpec,
                       "unknown family \"" + Tokens[2] + "\"");

    Entry.Spec = Tokens[3];
    for (size_t I = 4; I < Tokens.size(); ++I) {
      const std::string &Ext = Tokens[I];
      char *ValueEnd = nullptr;
      long long Value = 0;
      if (Ext.size() >= 3 && Ext[1] == '=')
        Value = std::strtoll(Ext.c_str() + 2, &ValueEnd, 10);
      if (Ext.size() < 3 || Ext[1] != '=' || ValueEnd == Ext.c_str() + 2 ||
          *ValueEnd != '\0')
        return lineError(ErrorCode::InvalidSpec,
                         "extent field \"" + Ext +
                         "\" is not of the form x=N");
      Entry.Extents.emplace_back(Ext[0], static_cast<int64_t>(Value));
    }

    // The entry must describe a well-formed contraction; reuse the parser
    // so extent errors (zero, overflow, unknown index) surface here with
    // the line number attached.
    if (ErrorOr<ir::Contraction> TC = Entry.tryContraction(); !TC)
      return TC.takeError().withContext("suite listing line " +
                                        std::to_string(LineNo));
    Entries.push_back(std::move(Entry));
  }
  return Entries;
}

ErrorOr<std::vector<SuiteEntry>>
cogent::suite::loadSuiteFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In.good())
    return Error(ErrorCode::InvalidSpec,
                 "cannot read suite file \"" + Path + "\"");
  std::ostringstream Text;
  Text << In.rdbuf();
  return std::move(parseSuiteListing(Text.str()))
      .withContext("loading \"" + Path + "\"");
}
