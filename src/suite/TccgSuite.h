//===- suite/TccgSuite.h - The 48-contraction TCCG benchmark ---------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TCCG tensor-contraction benchmark (Springer & Bientinesi) as used in
/// the paper's Figs. 4-8: 48 contractions in four families —
///   1-8   tensor-matrix multiplications from machine learning,
///   9-11  AO-basis to MO-basis two-electron integral transforms,
///   12-30 CCSD contractions (12 and 20-30 are 4D = 4D * 4D),
///   31-48 CCSD(T) triples contractions (31-39 form the SD2 set of
///         Figs. 6-8; SD2_1 is the paper's abcdef-gdab-efgc).
///
/// Index strings quoted in the paper are used verbatim; the remaining
/// entries reconstruct the published suite's structure (family sizes,
/// tensor arities, contraction-index counts and FVI placements) — see
/// DESIGN.md for the substitution note.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUITE_TCCGSUITE_H
#define COGENT_SUITE_TCCGSUITE_H

#include "ir/Contraction.h"

#include <string>
#include <vector>

namespace cogent {
namespace suite {

/// Benchmark family, matching the paper's grouping of Figs. 4/5.
enum class Category { MachineLearning, AoMoTransform, Ccsd, CcsdT };

const char *categoryName(Category Cat);

/// One suite entry: a contraction plus its representative problem size.
struct SuiteEntry {
  int Id = 0;
  std::string Name;
  std::string Spec;
  Category Cat = Category::MachineLearning;
  std::vector<std::pair<char, int64_t>> Extents;

  /// Parses at full representative size, propagating a typed error (with
  /// the entry named in the context chain) for inconsistent entries —
  /// e.g. ones loaded from a corrupted data file.
  ErrorOr<ir::Contraction> tryContraction() const;

  /// tryContraction with every extent clamped to \p MaxExtent — small
  /// enough for functional simulation in tests and examples.
  ErrorOr<ir::Contraction> tryContractionScaled(int64_t MaxExtent) const;

  /// Convenience for the built-in suite (internally consistent by
  /// construction): asserts instead of propagating.
  ir::Contraction contraction() const;
  ir::Contraction contractionScaled(int64_t MaxExtent) const;
};

/// The full 48-entry suite, ordered by Id (1-based, matching the x-axis of
/// the paper's Figs. 4/5).
const std::vector<SuiteEntry> &tccgSuite();

/// Entries of one family.
std::vector<SuiteEntry> suiteByCategory(Category Cat);

/// Entry lookup by 1-based id; asserts on range.
const SuiteEntry &suiteEntry(int Id);

/// The SD2 subset (ids 31-39) used by the Tensor Comprehensions comparison
/// in Figs. 6-8.
std::vector<SuiteEntry> sd2Set();

/// Parses an artifact-style suite listing (the data/tccg_suite.txt format:
/// "id name family spec x=E y=E ..." per line, '#' comments and blank
/// lines skipped). Every entry is validated — unknown families, unparsable
/// ids/extents and malformed contraction specs all come back as a typed
/// error naming the offending line instead of aborting.
ErrorOr<std::vector<SuiteEntry>> parseSuiteListing(const std::string &Text);

/// parseSuiteListing over the contents of \p Path; fails with a typed
/// error when the file cannot be read.
ErrorOr<std::vector<SuiteEntry>> loadSuiteFile(const std::string &Path);

} // namespace suite
} // namespace cogent

#endif // COGENT_SUITE_TCCGSUITE_H
