//===- support/Checked.h - Overflow-checked integer arithmetic ------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overflow-detecting int64 helpers for extent/stride products. Tensor
/// element counts are products of user-supplied extents, so wraparound is
/// an *input* condition, not a programming error — it must surface as a
/// typed diagnostic, never as silent two's-complement wrapping (UB for
/// signed types).
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_CHECKED_H
#define COGENT_SUPPORT_CHECKED_H

#include <cassert>
#include <cstdint>

namespace cogent {

/// Computes X * Y into *Out; returns false (leaving *Out unspecified) when
/// the product does not fit int64_t.
inline bool checkedMulInt64(int64_t X, int64_t Y, int64_t *Out) {
#if defined(__GNUC__) || defined(__clang__)
  return !__builtin_mul_overflow(X, Y, Out);
#else
  if (X != 0 && (Y > INT64_MAX / X || Y < INT64_MIN / X))
    return false;
  *Out = X * Y;
  return true;
#endif
}

/// Multiplies the positive factors of a product, asserting they were
/// validated overflow-free beforehand (e.g. by Contraction::parse).
inline int64_t checkedProductAssert(int64_t Acc, int64_t Factor) {
  int64_t Out = 0;
  bool Ok = checkedMulInt64(Acc, Factor, &Out);
  assert(Ok && "extent product overflow past parse-time validation");
  (void)Ok;
  return Out;
}

} // namespace cogent

#endif // COGENT_SUPPORT_CHECKED_H
