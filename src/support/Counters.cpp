//===- support/Counters.cpp ----------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Counters.h"

#include "support/JsonWriter.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cstring>

using namespace cogent;
using namespace cogent::support;

namespace {

/// Head of the process-wide registry. Lock-free push-front: counters are
/// only ever added (static storage duration), never removed.
std::atomic<Counter *> &registryHead() {
  static std::atomic<Counter *> Head{nullptr};
  return Head;
}

} // namespace

Counter::Counter(const char *Name, const char *Description)
    : Name(Name), Description(Description) {
  std::atomic<Counter *> &Head = registryHead();
  Counter *Expected = Head.load(std::memory_order_relaxed);
  do {
    Next = Expected;
  } while (!Head.compare_exchange_weak(Expected, this,
                                       std::memory_order_release,
                                       std::memory_order_relaxed));
}

CounterSnapshot cogent::support::snapshotCounters() {
  CounterSnapshot Snapshot;
  for (Counter *C = registryHead().load(std::memory_order_acquire); C;
       C = C->Next)
    Snapshot.push_back({C->name(), C->description(), C->value()});
  std::sort(Snapshot.begin(), Snapshot.end(),
            [](const CounterValue &X, const CounterValue &Y) {
              return std::strcmp(X.Name, Y.Name) < 0;
            });
  return Snapshot;
}

CounterSnapshot cogent::support::counterDelta(const CounterSnapshot &Before,
                                              const CounterSnapshot &After) {
  CounterSnapshot Delta;
  Delta.reserve(After.size());
  size_t BeforeIdx = 0;
  for (const CounterValue &AfterValue : After) {
    // Both snapshots are name-sorted; advance the Before cursor in step.
    while (BeforeIdx < Before.size() &&
           std::strcmp(Before[BeforeIdx].Name, AfterValue.Name) < 0)
      ++BeforeIdx;
    uint64_t Base = 0;
    if (BeforeIdx < Before.size() &&
        std::strcmp(Before[BeforeIdx].Name, AfterValue.Name) == 0)
      Base = Before[BeforeIdx].Value;
    Delta.push_back(
        {AfterValue.Name, AfterValue.Description, AfterValue.Value - Base});
  }
  return Delta;
}

thread_local CounterScope *cogent::support::counters_detail::ActiveScope =
    nullptr;

void cogent::support::counters_detail::recordScoped(const Counter *C,
                                                    uint64_t N) {
  for (CounterScope *Scope = ActiveScope; Scope; Scope = Scope->Parent)
    Scope->Deltas[C] += N;
}

CounterScope::CounterScope() : Parent(counters_detail::ActiveScope) {
  counters_detail::ActiveScope = this;
}

CounterScope::~CounterScope() { counters_detail::ActiveScope = Parent; }

CounterSnapshot CounterScope::take() const {
  CounterSnapshot Snapshot;
  for (Counter *C = registryHead().load(std::memory_order_acquire); C;
       C = C->Next) {
    auto It = Deltas.find(C);
    Snapshot.push_back(
        {C->name(), C->description(), It == Deltas.end() ? 0 : It->second});
  }
  std::sort(Snapshot.begin(), Snapshot.end(),
            [](const CounterValue &X, const CounterValue &Y) {
              return std::strcmp(X.Name, Y.Name) < 0;
            });
  return Snapshot;
}

void cogent::support::writeCountersJson(JsonWriter &W,
                                        const CounterSnapshot &Snapshot) {
  W.beginObject();
  for (const CounterValue &Entry : Snapshot)
    W.member(Entry.Name, Entry.Value);
  W.endObject();
}

void cogent::support::bridgeProcessCounters(MetricRegistry &Registry,
                                            const std::string &Prefix) {
  // bridgeTo only ratchets upward, so repeated bridging of the monotonic
  // process table is idempotent per value and safe from any thread.
  for (const CounterValue &Entry : snapshotCounters())
    Registry.counter(Prefix + Entry.Name, Entry.Description)
        .bridgeTo(Entry.Value);
}
