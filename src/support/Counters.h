//===- support/Counters.h - Named monotonic pipeline counters -------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-STATISTIC-style named counters: each pipeline component declares
/// file-static Counter objects (via COGENT_COUNTER) that register themselves
/// in a process-wide intrusive list at construction. Counters are monotonic,
/// thread-safe (relaxed atomics) and always on — incrementing one is a
/// single relaxed fetch_add, cheap enough to leave in hot paths.
///
/// Per-run attribution works by snapshotting: Cogent::generate snapshots
/// the registry before and after a run and stores the delta in
/// GenerationResult::Counters, so CLI metrics files and tests can report
/// exactly what one generation did even though the registry is process-wide
/// (concurrent generate() calls will see each other's increments in their
/// deltas; attribute per-run numbers only in single-generator processes).
///
/// Naming convention: "<component>.<noun>" in kebab-case, e.g.
/// "enumerator.hardware-pruned" — see docs/ARCHITECTURE.md §10.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_COUNTERS_H
#define COGENT_SUPPORT_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace cogent {
namespace support {

class JsonWriter;

/// One named monotonic counter. Construct with static storage duration only
/// (the registry keeps a pointer and never unregisters).
class Counter {
public:
  Counter(const char *Name, const char *Description);

  void add(uint64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  Counter &operator+=(uint64_t N) {
    add(N);
    return *this;
  }
  Counter &operator++() {
    add(1);
    return *this;
  }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  const char *name() const { return Name; }
  const char *description() const { return Description; }

private:
  friend std::vector<struct CounterValue> snapshotCounters();

  const char *Name;
  const char *Description;
  std::atomic<uint64_t> Value{0};
  Counter *Next = nullptr; // intrusive registry link
};

/// One counter's value at snapshot time. Name/Description point at the
/// counter's static strings and stay valid for the process lifetime.
struct CounterValue {
  const char *Name = nullptr;
  const char *Description = nullptr;
  uint64_t Value = 0;
};

/// All registered counters, sorted by name for deterministic output.
using CounterSnapshot = std::vector<CounterValue>;
CounterSnapshot snapshotCounters();

/// Per-entry After - Before. Entries present only in \p After (counters
/// whose translation unit registered between the snapshots) keep their
/// absolute value; zero-delta entries are retained so consumers see the
/// full, stable counter table.
CounterSnapshot counterDelta(const CounterSnapshot &Before,
                             const CounterSnapshot &After);

/// Writes \p Snapshot as one JSON object {"name": value, ...} into \p W
/// (the writer must be positioned where a value is expected).
void writeCountersJson(JsonWriter &W, const CounterSnapshot &Snapshot);

} // namespace support
} // namespace cogent

/// Declares a file-static registered counter.
#define COGENT_COUNTER(Var, Name, Desc)                                        \
  static ::cogent::support::Counter Var(Name, Desc)

#endif // COGENT_SUPPORT_COUNTERS_H
