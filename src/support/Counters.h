//===- support/Counters.h - Named monotonic pipeline counters -------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-STATISTIC-style named counters: each pipeline component declares
/// file-static Counter objects (via COGENT_COUNTER) that register themselves
/// in a process-wide intrusive list at construction. Counters are monotonic,
/// thread-safe (relaxed atomics) and always on — incrementing one is a
/// single relaxed fetch_add, cheap enough to leave in hot paths.
///
/// Per-run attribution: Cogent::generate opens a CounterScope for the
/// duration of a run and stores its per-thread delta in
/// GenerationResult::Counters. A scope only observes increments made on
/// its own thread, so concurrent generate() calls each get exact
/// attribution even though the registry itself is process-wide.
/// (snapshotCounters/counterDelta remain for whole-process views, where
/// cross-thread bleed is the desired semantics.)
///
/// Naming convention: "<component>.<noun>" in kebab-case, e.g.
/// "enumerator.hardware-pruned" — see docs/ARCHITECTURE.md §10.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_COUNTERS_H
#define COGENT_SUPPORT_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cogent {
namespace support {

class JsonWriter;
class Counter;
class CounterScope;

namespace counters_detail {
/// Innermost CounterScope active on this thread (nullptr almost always);
/// checked inline so the unscoped hot path stays one relaxed fetch_add
/// plus one thread-local load.
extern thread_local CounterScope *ActiveScope;
/// Out-of-line slow path: credits \p N to every scope on this thread's
/// active chain.
void recordScoped(const Counter *C, uint64_t N);
} // namespace counters_detail

/// One named monotonic counter. Construct with static storage duration only
/// (the registry keeps a pointer and never unregisters).
class Counter {
public:
  Counter(const char *Name, const char *Description);

  void add(uint64_t N) {
    Value.fetch_add(N, std::memory_order_relaxed);
    if (counters_detail::ActiveScope)
      counters_detail::recordScoped(this, N);
  }
  Counter &operator+=(uint64_t N) {
    add(N);
    return *this;
  }
  Counter &operator++() {
    add(1);
    return *this;
  }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  const char *name() const { return Name; }
  const char *description() const { return Description; }

private:
  friend std::vector<struct CounterValue> snapshotCounters();
  friend class CounterScope;

  const char *Name;
  const char *Description;
  std::atomic<uint64_t> Value{0};
  Counter *Next = nullptr; // intrusive registry link
};

/// One counter's value at snapshot time. Name/Description point at the
/// counter's static strings and stay valid for the process lifetime.
struct CounterValue {
  const char *Name = nullptr;
  const char *Description = nullptr;
  uint64_t Value = 0;
};

/// All registered counters, sorted by name for deterministic output.
using CounterSnapshot = std::vector<CounterValue>;
CounterSnapshot snapshotCounters();

/// Per-entry After - Before. Entries present only in \p After (counters
/// whose translation unit registered between the snapshots) keep their
/// absolute value; zero-delta entries are retained so consumers see the
/// full, stable counter table.
CounterSnapshot counterDelta(const CounterSnapshot &Before,
                             const CounterSnapshot &After);

/// Writes \p Snapshot as one JSON object {"name": value, ...} into \p W
/// (the writer must be positioned where a value is expected).
void writeCountersJson(JsonWriter &W, const CounterSnapshot &Snapshot);

/// RAII per-run counter attribution. While alive, every Counter increment
/// made *on the constructing thread* is also credited to this scope;
/// take() renders the credits as a full name-sorted table (zero entries
/// retained, same shape as counterDelta's output). Scopes nest — an inner
/// scope's increments credit every enclosing scope on the same thread —
/// and increments from other threads are never visible, which is what
/// gives concurrent Cogent::generate calls exact per-run attribution.
class CounterScope {
public:
  CounterScope();
  ~CounterScope();
  CounterScope(const CounterScope &) = delete;
  CounterScope &operator=(const CounterScope &) = delete;

  /// The full counter table with this scope's per-thread deltas.
  CounterSnapshot take() const;

private:
  friend void counters_detail::recordScoped(const Counter *C, uint64_t N);

  std::unordered_map<const Counter *, uint64_t> Deltas;
  CounterScope *Parent = nullptr; ///< Enclosing scope on this thread.
};

} // namespace support
} // namespace cogent

/// Declares a file-static registered counter.
#define COGENT_COUNTER(Var, Name, Desc)                                        \
  static ::cogent::support::Counter Var(Name, Desc)

#endif // COGENT_SUPPORT_COUNTERS_H
