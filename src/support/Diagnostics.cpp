//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace cogent;

const char *cogent::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Unknown:
    return "Unknown";
  case ErrorCode::InvalidSpec:
    return "InvalidSpec";
  case ErrorCode::ExtentOverflow:
    return "ExtentOverflow";
  case ErrorCode::ResourceExhausted:
    return "ResourceExhausted";
  case ErrorCode::BudgetExceeded:
    return "BudgetExceeded";
  case ErrorCode::NoValidConfig:
    return "NoValidConfig";
  case ErrorCode::InvalidDeviceSpec:
    return "InvalidDeviceSpec";
  case ErrorCode::VerificationFailed:
    return "VerificationFailed";
  case ErrorCode::CorruptCache:
    return "CorruptCache";
  case ErrorCode::DeadlineExceeded:
    return "DeadlineExceeded";
  case ErrorCode::Overloaded:
    return "Overloaded";
  case ErrorCode::QueueFull:
    return "QueueFull";
  case ErrorCode::ServiceStopped:
    return "ServiceStopped";
  }
  assert(false && "unknown error code");
  return "?";
}

std::optional<ErrorCode> cogent::errorCodeFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumErrorCodes; ++I) {
    ErrorCode Code = static_cast<ErrorCode>(I);
    if (Name == errorCodeName(Code))
      return Code;
  }
  return std::nullopt;
}

bool cogent::isTransient(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Overloaded:
  case ErrorCode::QueueFull:
  case ErrorCode::CorruptCache:
  case ErrorCode::VerificationFailed:
    return true;
  case ErrorCode::Unknown:
  case ErrorCode::InvalidSpec:
  case ErrorCode::ExtentOverflow:
  case ErrorCode::ResourceExhausted:
  case ErrorCode::BudgetExceeded:
  case ErrorCode::NoValidConfig:
  case ErrorCode::InvalidDeviceSpec:
  case ErrorCode::DeadlineExceeded:
  case ErrorCode::ServiceStopped:
    return false;
  }
  assert(false && "unknown error code");
  return false;
}

Error Error::withContext(std::string Frame) && {
  Context_.insert(Context_.begin(), std::move(Frame));
  return std::move(*this);
}

Error Error::withContext(std::string Frame) const & {
  Error Copy = *this;
  return std::move(Copy).withContext(std::move(Frame));
}

std::string Error::render() const {
  std::string Out;
  for (const std::string &Frame : Context_) {
    Out += Frame;
    Out += ": ";
  }
  Out += Message_;
  return Out;
}

std::string Error::renderWithCode() const {
  return std::string(errorCodeName(Code_)) + ": " + render();
}
