//===- support/Diagnostics.h - Structured error/diagnostic types ----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostics subsystem: a typed Error (category code + message +
/// context chain) and the ErrorOr<T> carrier threaded through every
/// recoverable path of the generation pipeline — parsing, suite loading,
/// enumeration and code emission. Programmatic invariants still use
/// assert(); everything an adversarial *input* can trigger must come back
/// as one of these instead of aborting.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_DIAGNOSTICS_H
#define COGENT_SUPPORT_DIAGNOSTICS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace cogent {

/// Coarse failure categories, stable across message-wording changes so
/// callers can branch (and tests can assert) on the *kind* of failure.
enum class ErrorCode {
  /// Unclassified failure (the legacy message-only constructor).
  Unknown,
  /// Malformed contraction spec, extents map or suite entry.
  InvalidSpec,
  /// An extent product no longer fits signed 64-bit arithmetic.
  ExtentOverflow,
  /// The device cannot host any kernel for this problem (and no fallback
  /// was permitted to absorb it).
  ResourceExhausted,
  /// A caller-imposed GenerationBudget stopped the work.
  BudgetExceeded,
  /// Enumeration produced no valid configuration.
  NoValidConfig,
  /// A DeviceSpec failed DeviceSpec::validate() (zero SM count, zero
  /// shared memory, non-128-multiple transaction size, ...).
  InvalidDeviceSpec,
  /// A KernelPlan (or emitted source) failed the PlanVerifier's invariant
  /// checks and no fallback rung could absorb the failure.
  VerificationFailed,
  /// An on-disk repository cache entry was corrupt, truncated or written
  /// by an incompatible version (always a cache miss, never silent reuse).
  CorruptCache,
  /// A request's wall-clock deadline was already spent before any work
  /// could begin (deadlines that expire mid-run degrade to cheaper
  /// fallback rungs instead — see service::GenerationService).
  DeadlineExceeded,
  /// The service's admission control shed the request: total outstanding
  /// work exceeds the configured limit. Retry after backoff.
  Overloaded,
  /// The service's bounded intake queue is at capacity (load shedding at
  /// the enqueue boundary, never a blocking producer). Retry after
  /// backoff.
  QueueFull,
  /// The service stopped while the request was queued or in flight; the
  /// request was abandoned, not silently dropped.
  ServiceStopped,
};

/// Number of ErrorCode enumerators; keep in sync when extending the enum
/// (the name-table round-trip test walks [0, NumErrorCodes)).
inline constexpr unsigned NumErrorCodes = 13;

/// Stable identifier string, e.g. "InvalidSpec".
const char *errorCodeName(ErrorCode Code);

/// Inverse of errorCodeName; nullopt for unknown strings.
std::optional<ErrorCode> errorCodeFromName(const std::string &Name);

/// Transient/permanent classification, the retry policy's oracle: true for
/// failures where an identical retry has a real chance of succeeding —
/// load shedding (Overloaded, QueueFull), cache corruption absorbed as a
/// miss (CorruptCache), and verification failures (VerificationFailed,
/// which injected faults and mid-run device mutations can cause and a
/// re-run can rescue). Everything input-shaped (InvalidSpec,
/// ExtentOverflow, InvalidDeviceSpec, ...), budget-shaped
/// (BudgetExceeded, DeadlineExceeded) or terminal (ServiceStopped) is
/// permanent: retrying cannot change the outcome.
bool isTransient(ErrorCode Code);

/// Describes a recoverable failure: a category code, a primary message and
/// an optional chain of context frames added as the error propagates out
/// ("while loading suite line 12", ...). Outermost frame first.
class Error {
public:
  explicit Error(std::string Message)
      : Code_(ErrorCode::Unknown), Message_(std::move(Message)) {}
  Error(ErrorCode Code, std::string Message)
      : Code_(Code), Message_(std::move(Message)) {}

  ErrorCode code() const { return Code_; }

  /// The primary message, without context frames.
  const std::string &message() const { return Message_; }

  /// Context frames, outermost first.
  const std::vector<std::string> &context() const { return Context_; }

  /// Returns *this with \p Frame prepended to the context chain. Chainable:
  /// Error(...).withContext("parsing X").withContext("loading file Y").
  Error withContext(std::string Frame) &&;
  Error withContext(std::string Frame) const &;

  /// "context1: context2: message" (no code name; see renderWithCode).
  std::string render() const;

  /// "InvalidSpec: context: message" — the CLI-facing form.
  std::string renderWithCode() const;

private:
  ErrorCode Code_;
  std::string Message_;
  std::vector<std::string> Context_;
};

/// Holds either a successfully produced \p T or an Error.
///
/// Unlike llvm::Expected, destruction of an unchecked error does not abort;
/// callers are expected to branch on the boolean conversion before access.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  ErrorOr(Error E) : Storage(std::move(E)) {}

  /// True when a value is present.
  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  bool hasValue() const { return std::holds_alternative<T>(Storage); }

  T &get() {
    assert(hasValue() && "accessing value of an error result");
    return std::get<T>(Storage);
  }
  const T &get() const {
    assert(hasValue() && "accessing value of an error result");
    return std::get<T>(Storage);
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// The held error. Only valid when !hasValue().
  const Error &error() const {
    assert(!hasValue() && "accessing error of a value result");
    return std::get<Error>(Storage);
  }

  /// Category code of the held error.
  ErrorCode errorCode() const { return error().code(); }

  /// Rendered message (context chain + primary message) of the held error.
  std::string errorMessage() const { return error().render(); }

  /// Moves the error out (for re-wrapping into a different ErrorOr<U>).
  Error takeError() {
    assert(!hasValue() && "taking error of a value result");
    return std::get<Error>(std::move(Storage));
  }

  /// Applies \p Fn to the value, passing an error through untouched:
  /// ErrorOr<T> -> ErrorOr<decltype(Fn(T))>.
  template <typename Fn> auto map(Fn &&F) && -> ErrorOr<decltype(F(std::declval<T &&>()))> {
    if (!hasValue())
      return takeError();
    return F(std::get<T>(std::move(Storage)));
  }

  /// Adds a context frame to the held error, if any; values pass through.
  ErrorOr<T> withContext(std::string Frame) && {
    if (hasValue())
      return std::move(*this);
    return takeError().withContext(std::move(Frame));
  }

private:
  std::variant<T, Error> Storage;
};

/// Success-or-Error for operations with no payload (validators, verifiers).
/// Default construction is success; mirrors the ErrorOr<T> accessors so
/// call sites and tests treat both uniformly.
template <> class ErrorOr<void> {
public:
  ErrorOr() = default;
  ErrorOr(Error E) : Err(std::move(E)) {}

  /// True on success.
  explicit operator bool() const { return !Err.has_value(); }
  bool hasValue() const { return !Err.has_value(); }

  /// The held error. Only valid when !hasValue().
  const Error &error() const {
    assert(Err.has_value() && "accessing error of a success result");
    return *Err;
  }

  ErrorCode errorCode() const { return error().code(); }
  std::string errorMessage() const { return error().render(); }

  Error takeError() {
    assert(Err.has_value() && "taking error of a success result");
    Error Out = std::move(*Err);
    Err.reset();
    return Out;
  }

  /// Adds a context frame to the held error, if any; success passes
  /// through.
  ErrorOr<void> withContext(std::string Frame) && {
    if (hasValue())
      return {};
    return takeError().withContext(std::move(Frame));
  }

private:
  std::optional<Error> Err;
};

} // namespace cogent

#endif // COGENT_SUPPORT_DIAGNOSTICS_H
