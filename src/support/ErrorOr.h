//===- support/ErrorOr.h - Lightweight expected-style error type ---------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal value-or-error-message carrier, in the spirit of
/// llvm::Expected<T>, used for recoverable errors such as malformed
/// contraction strings. Programmatic invariants use assert().
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_ERROROR_H
#define COGENT_SUPPORT_ERROROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace cogent {

/// Describes a recoverable failure with a human-readable message.
class Error {
public:
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Holds either a successfully produced \p T or an Error.
///
/// Unlike llvm::Expected, destruction of an unchecked error does not abort;
/// callers are expected to branch on the boolean conversion before access.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  ErrorOr(Error E) : Storage(std::move(E)) {}

  /// True when a value is present.
  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  bool hasValue() const { return std::holds_alternative<T>(Storage); }

  T &get() {
    assert(hasValue() && "accessing value of an error result");
    return std::get<T>(Storage);
  }
  const T &get() const {
    assert(hasValue() && "accessing value of an error result");
    return std::get<T>(Storage);
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// The error message. Only valid when !hasValue().
  const std::string &errorMessage() const {
    assert(!hasValue() && "accessing error of a value result");
    return std::get<Error>(Storage).message();
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace cogent

#endif // COGENT_SUPPORT_ERROROR_H
