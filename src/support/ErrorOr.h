//===- support/ErrorOr.h - Lightweight expected-style error type ---------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility forwarding header: Error and ErrorOr<T> grew into the
/// diagnostics subsystem (error codes, context chaining, combinators) and
/// now live in support/Diagnostics.h. Include that directly in new code.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_ERROROR_H
#define COGENT_SUPPORT_ERROROR_H

#include "support/Diagnostics.h"

#endif // COGENT_SUPPORT_ERROROR_H
