//===- support/FaultInjection.cpp -----------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Counters.h"
#include "support/Trace.h"

#include <cassert>
#include <cmath>

using namespace cogent;
using namespace cogent::support;

COGENT_COUNTER(NumChaosFired, "chaos.fired",
               "Total fault injections fired across all sites");
COGENT_COUNTER(NumChaosEnumeratorAlloc, "chaos.fired.enumerator-alloc",
               "Injected allocation failures during enumeration");
COGENT_COUNTER(NumChaosCostPerturb, "chaos.fired.cost-perturb",
               "Injected cost-model score perturbations");
COGENT_COUNTER(NumChaosCodegenTruncate, "chaos.fired.codegen-truncate",
               "Injected kernel source truncations");
COGENT_COUNTER(NumChaosSimTraffic, "chaos.fired.sim-traffic",
               "Injected simulator transaction-count skews");
COGENT_COUNTER(NumChaosAutotuneMisrank, "chaos.fired.autotune-misrank",
               "Injected autotuner measurement perturbations");
COGENT_COUNTER(NumChaosRepositoryCorrupt, "chaos.fired.repository-corrupt",
               "Injected repository cache-entry corruptions");
COGENT_COUNTER(NumChaosDeviceMutate, "chaos.fired.device-mutate",
               "Injected mid-search DeviceSpec mutations");
COGENT_COUNTER(NumChaosCodegenMutate, "chaos.fired.codegen-mutate",
               "Injected targeted kernel-source mutations");

static Counter *siteCounter(ChaosSite Site) {
  switch (Site) {
  case ChaosSite::EnumeratorAlloc:
    return &NumChaosEnumeratorAlloc;
  case ChaosSite::CostPerturb:
    return &NumChaosCostPerturb;
  case ChaosSite::CodegenTruncate:
    return &NumChaosCodegenTruncate;
  case ChaosSite::SimTrafficSkew:
    return &NumChaosSimTraffic;
  case ChaosSite::AutotuneMisrank:
    return &NumChaosAutotuneMisrank;
  case ChaosSite::RepositoryCorrupt:
    return &NumChaosRepositoryCorrupt;
  case ChaosSite::DeviceMutate:
    return &NumChaosDeviceMutate;
  case ChaosSite::CodegenMutate:
    return &NumChaosCodegenMutate;
  }
  assert(false && "unknown chaos site");
  return &NumChaosFired;
}

const char *support::chaosSiteName(ChaosSite Site) {
  switch (Site) {
  case ChaosSite::EnumeratorAlloc:
    return "enumerator-alloc";
  case ChaosSite::CostPerturb:
    return "cost-perturb";
  case ChaosSite::CodegenTruncate:
    return "codegen-truncate";
  case ChaosSite::SimTrafficSkew:
    return "sim-traffic";
  case ChaosSite::AutotuneMisrank:
    return "autotune-misrank";
  case ChaosSite::RepositoryCorrupt:
    return "repository-corrupt";
  case ChaosSite::DeviceMutate:
    return "device-mutate";
  case ChaosSite::CodegenMutate:
    return "codegen-mutate";
  }
  assert(false && "unknown chaos site");
  return "?";
}

std::optional<ChaosSite> support::chaosSiteFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumChaosSites; ++I) {
    ChaosSite Site = static_cast<ChaosSite>(I);
    if (Name == chaosSiteName(Site))
      return Site;
  }
  return std::nullopt;
}

std::optional<uint32_t> support::parseChaosSites(const std::string &List) {
  if (List == "all")
    return AllChaosSites;
  uint32_t Mask = 0;
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    std::string Name = List.substr(Pos, Comma - Pos);
    std::optional<ChaosSite> Site = chaosSiteFromName(Name);
    if (!Site)
      return std::nullopt;
    Mask |= chaosSiteBit(*Site);
    Pos = Comma + 1;
  }
  return Mask;
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

/// splitmix64 finalizer: a cheap, high-quality 64-bit mix.
static uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

FaultInjector::FaultInjector(const ChaosOptions &Options) : Options(Options) {
  for (unsigned I = 0; I < NumChaosSites; ++I) {
    Queries[I].store(0, std::memory_order_relaxed);
    Fired[I].store(0, std::memory_order_relaxed);
  }
}

uint64_t FaultInjector::draw(ChaosSite Site) {
  size_t Index = static_cast<size_t>(Site);
  uint64_t Query = Queries[Index].fetch_add(1, std::memory_order_relaxed);
  // Mix the seed and site first so consecutive queries at one site walk an
  // unrelated (seed, site)-keyed sequence, then fold in the query number.
  return mix64(mix64(Options.Seed ^ (0xc0fee000ull + Index)) ^ Query);
}

bool FaultInjector::shouldFire(ChaosSite Site) {
  if (!enabled(Site))
    return false;
  uint64_t Hash = draw(Site);
  // Map the top 53 bits to [0, 1) — exact for any representable probability.
  double Uniform =
      static_cast<double>(Hash >> 11) * (1.0 / 9007199254740992.0);
  if (Uniform >= Options.FireProbability)
    return false;
  Fired[static_cast<size_t>(Site)].fetch_add(1, std::memory_order_relaxed);
  ++NumChaosFired;
  ++*siteCounter(Site);
  traceInstant("chaos.fire", {{"site", chaosSiteName(Site)}});
  return true;
}

double FaultInjector::perturbFactor(ChaosSite Site, double Magnitude) {
  assert(Magnitude >= 1.0 && "perturbation magnitude must be >= 1");
  uint64_t Hash = draw(Site);
  double Uniform =
      static_cast<double>(Hash >> 11) * (1.0 / 9007199254740992.0);
  // Exponent uniform in [-1, 1] -> factor uniform in log space over
  // [1/Magnitude, Magnitude].
  return std::pow(Magnitude, 2.0 * Uniform - 1.0);
}

uint8_t FaultInjector::corruptByte(uint64_t Pos) const {
  return static_cast<uint8_t>(mix64(Options.Seed ^ ~Pos));
}

uint64_t FaultInjector::firedTotal() const {
  uint64_t Total = 0;
  for (unsigned I = 0; I < NumChaosSites; ++I)
    Total += Fired[I].load(std::memory_order_relaxed);
  return Total;
}

//===----------------------------------------------------------------------===//
// Activation
//===----------------------------------------------------------------------===//

namespace {
// Per-thread, not process-wide: every run installs its own injector for its
// own duration (Cogent::generate), and concurrent runs on a worker pool
// must neither see each other's injectors nor race the install/restore
// pair. A process-wide slot would let thread B keep reading thread A's
// injector after A's run (and injector) ended — a use-after-free the
// service layer's chaos lane would hit constantly.
thread_local FaultInjector *ActiveInjector = nullptr;
} // namespace

FaultInjector *support::activeFaultInjector() { return ActiveInjector; }

ScopedChaosActivation::ScopedChaosActivation(FaultInjector *Injector) {
  if (!Injector)
    return;
  Previous = ActiveInjector;
  ActiveInjector = Injector;
  Installed = true;
}

ScopedChaosActivation::~ScopedChaosActivation() {
  if (Installed)
    ActiveInjector = Previous;
}

#ifdef COGENT_CHAOS_ENABLED

bool support::chaosShouldFire(ChaosSite Site) {
  FaultInjector *Injector = activeFaultInjector();
  return Injector && Injector->shouldFire(Site);
}

double support::chaosPerturb(ChaosSite Site, double Value, double Magnitude) {
  FaultInjector *Injector = activeFaultInjector();
  if (!Injector || !Injector->shouldFire(Site))
    return Value;
  return Value * Injector->perturbFactor(Site, Magnitude);
}

#endif // COGENT_CHAOS_ENABLED
