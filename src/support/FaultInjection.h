//===- support/FaultInjection.h - Deterministic chaos layer ----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seed-driven fault-injection ("chaos") layer for proving
/// the generation pipeline's robustness claims adversarially. Named
/// injection sites are threaded through the Enumerator, CostModel, CodeGen,
/// KernelSimulator, Autotune and KernelRepository; when a FaultInjector is
/// installed (ScopedChaosActivation, normally via CogentOptions::Chaos) and
/// a site is enabled in its mask, queries at that site draw from a
/// counter-indexed hash of the seed — the same seed always fires the same
/// faults in the same places, so every chaos failure reproduces exactly.
///
/// Every firing is observable: it bumps a per-site "chaos.fired.<site>"
/// counter (visible in GenerationResult::Counters deltas and metrics JSON)
/// and records a "chaos.fire" trace instant event.
///
/// With no injector installed a site query is one relaxed atomic load and a
/// branch — cheap enough to stay in release builds. Configuring CMake with
/// -DCOGENT_CHAOS=OFF compiles the query helpers down to constants so the
/// hooks vanish entirely.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_FAULTINJECTION_H
#define COGENT_SUPPORT_FAULTINJECTION_H

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace cogent {
namespace support {

/// The named injection sites. Each corresponds to one concrete misbehavior
/// of one pipeline component (see docs/ARCHITECTURE.md §11 for the list of
/// what each simulates and which guarantee it attacks).
enum class ChaosSite : unsigned {
  /// Enumerator::enumerate throws std::bad_alloc mid-search (allocation
  /// failure during candidate generation).
  EnumeratorAlloc,
  /// estimateTransactions returns scores perturbed by a factor in
  /// [1/4, 4] — a misranking cost model.
  CostPerturb,
  /// emitCuda/emitOpenCl drops the tail of the kernel source (truncated
  /// emission, e.g. an interrupted write).
  CodegenTruncate,
  /// simulateKernel skews its reported transaction counts (numerics stay
  /// correct; the measurement channel lies).
  SimTrafficSkew,
  /// refineTopKBySimulation perturbs measured GFLOPS (hostile autotuner).
  AutotuneMisrank,
  /// KernelRepository::loadFromFile sees corrupted bytes while parsing a
  /// cache entry (bit rot / truncated write on disk).
  RepositoryCorrupt,
  /// Cogent::generate's working DeviceSpec shrinks mid-search (hostile
  /// driver reporting different limits than the search assumed).
  DeviceMutate,
  /// emitCuda/emitOpenCl applies one targeted SourceMutator corruption to
  /// the emitted kernel (a codegen regression: dropped barrier, skewed
  /// stride, widened extent, ...) — the fault KernelLint's gate absorbs.
  CodegenMutate,
};

/// Number of ChaosSite enumerators; keep in sync when extending the enum
/// (the name-table round-trip test walks [0, NumChaosSites)).
inline constexpr unsigned NumChaosSites = 8;

/// "enumerator-alloc", "cost-perturb", "codegen-truncate", "sim-traffic",
/// "autotune-misrank", "repository-corrupt", "device-mutate" or
/// "codegen-mutate".
const char *chaosSiteName(ChaosSite Site);

/// Inverse of chaosSiteName; nullopt for unknown strings.
std::optional<ChaosSite> chaosSiteFromName(const std::string &Name);

/// Bit for \p Site in a ChaosOptions::Sites mask.
constexpr uint32_t chaosSiteBit(ChaosSite Site) {
  return 1u << static_cast<unsigned>(Site);
}

/// Mask with every site enabled.
inline constexpr uint32_t AllChaosSites = (1u << NumChaosSites) - 1;

/// Parses a comma-separated site list ("cost-perturb,device-mutate" or
/// "all") into a mask; nullopt when any name is unknown.
std::optional<uint32_t> parseChaosSites(const std::string &List);

/// Chaos configuration for one run. Sites == 0 (the default) means chaos
/// is off and the layer costs nothing.
struct ChaosOptions {
  /// Seed for the deterministic fire decisions; two runs with equal seed,
  /// sites and workload inject identical faults.
  uint64_t Seed = 0;
  /// Bitmask of enabled ChaosSites (chaosSiteBit / parseChaosSites).
  uint32_t Sites = 0;
  /// Probability that one query at an enabled site fires, in [0, 1].
  double FireProbability = 0.25;

  bool enabled() const { return Sites != 0; }
};

/// The seed-driven decision engine. Each site keeps its own query counter;
/// decision n at site s is a pure function of (Seed, s, n), independent of
/// every other site, so enabling an extra site never shifts the faults an
/// already-enabled site injects.
class FaultInjector {
public:
  explicit FaultInjector(const ChaosOptions &Options);

  const ChaosOptions &options() const { return Options; }

  bool enabled(ChaosSite Site) const {
    return (Options.Sites & chaosSiteBit(Site)) != 0;
  }

  /// Draws the next decision for \p Site: true = inject. Records the
  /// firing (counter + trace instant) when it does.
  bool shouldFire(ChaosSite Site);

  /// Deterministic multiplicative perturbation in [1/Magnitude, Magnitude]
  /// for the next draw at \p Site (used by value-skew sites).
  double perturbFactor(ChaosSite Site, double Magnitude = 4.0);

  /// Deterministic corruption byte for position \p Pos (repository reads).
  uint8_t corruptByte(uint64_t Pos) const;

  /// The next deterministic raw draw for \p Site — for sites that need a
  /// value beyond the fire decision (e.g. picking which source mutation to
  /// apply). Advances the same per-site query counter as shouldFire, so
  /// the choice is as seed-stable and site-independent as the firing.
  uint64_t sample(ChaosSite Site) { return draw(Site); }

  /// Firings of \p Site since construction.
  uint64_t fired(ChaosSite Site) const {
    return Fired[static_cast<size_t>(Site)].load(std::memory_order_relaxed);
  }
  /// Total firings across all sites.
  uint64_t firedTotal() const;

private:
  uint64_t draw(ChaosSite Site);

  ChaosOptions Options;
  std::array<std::atomic<uint64_t>, NumChaosSites> Queries;
  std::array<std::atomic<uint64_t>, NumChaosSites> Fired;
};

/// The injector installed on the *calling thread*, or nullptr when chaos
/// is off for this thread. Activation is thread-local (like per-run
/// counter scopes): a run's injector only affects work done on the thread
/// that installed it, so concurrent runs on a worker pool get independent,
/// race-free fault streams.
FaultInjector *activeFaultInjector();

/// Installs \p Injector on the calling thread for this object's lifetime,
/// restoring the previous injector on destruction. A null \p Injector is a
/// no-op so callers can pass through unconditionally.
class ScopedChaosActivation {
public:
  explicit ScopedChaosActivation(FaultInjector *Injector);
  ~ScopedChaosActivation();

  ScopedChaosActivation(const ScopedChaosActivation &) = delete;
  ScopedChaosActivation &operator=(const ScopedChaosActivation &) = delete;

private:
  FaultInjector *Previous = nullptr;
  bool Installed = false;
};

#ifdef COGENT_CHAOS_ENABLED

/// True when an injector is installed and \p Site is in its mask and the
/// deterministic draw says "inject now". The instrumented components call
/// this at their injection points.
bool chaosShouldFire(ChaosSite Site);

/// \p Value, multiplicatively perturbed when \p Site fires (identity
/// otherwise). One query per call.
double chaosPerturb(ChaosSite Site, double Value, double Magnitude = 4.0);

#else

inline bool chaosShouldFire(ChaosSite) { return false; }
inline double chaosPerturb(ChaosSite, double Value, double = 4.0) {
  return Value;
}

#endif // COGENT_CHAOS_ENABLED

} // namespace support
} // namespace cogent

#endif // COGENT_SUPPORT_FAULTINJECTION_H
