//===- support/JsonValue.cpp ----------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/JsonValue.h"

#include <cassert>
#include <cctype>
#include <cstdlib>

using namespace cogent;
using namespace cogent::support;

JsonValue JsonValue::makeBool(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

JsonValue JsonValue::makeNumber(double D) {
  JsonValue V;
  V.K = Kind::Number;
  V.D = D;
  return V;
}

JsonValue JsonValue::makeString(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.S = std::move(S);
  return V;
}

JsonValue JsonValue::makeArray() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}

JsonValue JsonValue::makeObject() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

bool JsonValue::asBool() const {
  assert(isBool() && "not a bool");
  return B;
}

double JsonValue::asNumber() const {
  assert(isNumber() && "not a number");
  return D;
}

const std::string &JsonValue::asString() const {
  assert(isString() && "not a string");
  return S;
}

const std::vector<JsonValue> &JsonValue::asArray() const {
  assert(isArray() && "not an array");
  return Arr;
}

std::vector<JsonValue> &JsonValue::asArray() {
  assert(isArray() && "not an array");
  return Arr;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::asObject() const {
  assert(isObject() && "not an object");
  return Obj;
}

std::vector<std::pair<std::string, JsonValue>> &JsonValue::asObject() {
  assert(isObject() && "not an object");
  return Obj;
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[Name, Value] : Obj)
    if (Name == Key)
      return &Value;
  return nullptr;
}

std::optional<double> JsonValue::findNumber(const std::string &Key) const {
  const JsonValue *V = find(Key);
  if (!V || !V->isNumber())
    return std::nullopt;
  return V->asNumber();
}

namespace {

/// Recursive-descent parser, structurally the twin of the
/// json_detail::Checker in JsonWriter.h but building a DOM.
class Parser {
public:
  Parser(const char *P, const char *End) : Begin(P), P(P), End(End) {}

  ErrorOr<JsonValue> run() {
    skipWs();
    ErrorOr<JsonValue> V = parseValue();
    if (!V)
      return V;
    skipWs();
    if (P != End)
      return fail("trailing garbage");
    return V;
  }

private:
  Error fail(const std::string &Msg) const {
    return Error(ErrorCode::InvalidSpec,
                 Msg + " at offset " +
                     std::to_string(static_cast<size_t>(P - Begin)));
  }

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool literal(const char *Word) {
    const char *Save = P;
    for (; *Word; ++Word, ++P)
      if (P == End || *P != *Word) {
        P = Save;
        return false;
      }
    return true;
  }

  ErrorOr<std::string> parseString() {
    if (P == End || *P != '"')
      return fail("expected string");
    ++P;
    std::string Out;
    while (P != End && *P != '"') {
      if (static_cast<unsigned char>(*P) < 0x20)
        return fail("unescaped control character in string");
      if (*P == '\\') {
        ++P;
        if (P == End)
          return fail("truncated escape");
        switch (*P) {
        case '"': Out += '"'; ++P; break;
        case '\\': Out += '\\'; ++P; break;
        case '/': Out += '/'; ++P; break;
        case 'b': Out += '\b'; ++P; break;
        case 'f': Out += '\f'; ++P; break;
        case 'n': Out += '\n'; ++P; break;
        case 'r': Out += '\r'; ++P; break;
        case 't': Out += '\t'; ++P; break;
        case 'u': {
          ++P;
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I, ++P) {
            if (P == End || !std::isxdigit(static_cast<unsigned char>(*P)))
              return fail("bad \\u escape");
            Code = Code * 16 +
                   static_cast<unsigned>(
                       std::isdigit(static_cast<unsigned char>(*P))
                           ? *P - '0'
                           : std::tolower(static_cast<unsigned char>(*P)) -
                                 'a' + 10);
          }
          // Minimal UTF-8 encoding of the BMP code point; surrogate
          // pairs are passed through as two 3-byte sequences (our
          // emitters never produce them).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape character");
        }
      } else {
        Out += *P++;
      }
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing quote
    return Out;
  }

  ErrorOr<JsonValue> parseNumber() {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
      return fail("bad number");
    if (*P == '0')
      ++P;
    else
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    if (P != End && *P == '.') {
      ++P;
      if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
        return fail("bad fraction");
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    if (P != End && (*P == 'e' || *P == 'E')) {
      ++P;
      if (P != End && (*P == '+' || *P == '-'))
        ++P;
      if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
        return fail("bad exponent");
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    return JsonValue::makeNumber(
        std::strtod(std::string(Start, P).c_str(), nullptr));
  }

  ErrorOr<JsonValue> parseValue() {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    ErrorOr<JsonValue> V = parseValueImpl();
    --Depth;
    return V;
  }

  ErrorOr<JsonValue> parseValueImpl() {
    if (P == End)
      return fail("unexpected end of input");
    switch (*P) {
    case '{': {
      ++P;
      JsonValue Obj = JsonValue::makeObject();
      skipWs();
      if (P != End && *P == '}') {
        ++P;
        return Obj;
      }
      for (;;) {
        skipWs();
        ErrorOr<std::string> Key = parseString();
        if (!Key)
          return Key.takeError();
        if (Obj.find(*Key))
          return fail("duplicate object key '" + *Key + "'");
        skipWs();
        if (P == End || *P != ':')
          return fail("expected ':'");
        ++P;
        skipWs();
        ErrorOr<JsonValue> Value = parseValue();
        if (!Value)
          return Value;
        Obj.asObject().emplace_back(std::move(*Key), std::move(*Value));
        skipWs();
        if (P != End && *P == ',') {
          ++P;
          continue;
        }
        if (P != End && *P == '}') {
          ++P;
          return Obj;
        }
        return fail("expected ',' or '}'");
      }
    }
    case '[': {
      ++P;
      JsonValue Arr = JsonValue::makeArray();
      skipWs();
      if (P != End && *P == ']') {
        ++P;
        return Arr;
      }
      for (;;) {
        skipWs();
        ErrorOr<JsonValue> Value = parseValue();
        if (!Value)
          return Value;
        Arr.asArray().push_back(std::move(*Value));
        skipWs();
        if (P != End && *P == ',') {
          ++P;
          continue;
        }
        if (P != End && *P == ']') {
          ++P;
          return Arr;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '"':
      return std::move(parseString()).map(
          [](std::string S) { return JsonValue::makeString(std::move(S)); });
    case 't':
      if (literal("true"))
        return JsonValue::makeBool(true);
      return fail("bad literal");
    case 'f':
      if (literal("false"))
        return JsonValue::makeBool(false);
      return fail("bad literal");
    case 'n':
      if (literal("null"))
        return JsonValue();
      return fail("bad literal");
    default:
      return parseNumber();
    }
  }

  static constexpr int MaxDepth = 256;
  const char *Begin;
  const char *P;
  const char *End;
  int Depth = 0;
};

} // namespace

ErrorOr<JsonValue> cogent::support::parseJson(const std::string &Text) {
  Parser P(Text.data(), Text.data() + Text.size());
  return P.run();
}
