//===- support/JsonValue.h - Minimal JSON DOM parser ----------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reading half of the dependency-free JSON layer: JsonWriter.h emits
/// and syntax-checks, this file *parses* into a small DOM so tools can
/// inspect values — bench_compare reads throughput/latency fields out of
/// BENCH_service.json, tests read exporter snapshots back. Accepts exactly
/// the RFC 8259 grammar (same limits as the checker: 256-deep nesting);
/// numbers are doubles, objects preserve insertion order and reject
/// duplicate keys (none of our emitters produce them, and catching one
/// here catches an emitter bug).
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_JSONVALUE_H
#define COGENT_SUPPORT_JSONVALUE_H

#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cogent {
namespace support {

/// One parsed JSON value. A small tagged union; arrays/objects own their
/// children. Copyable (deep copy) — the trees we parse are tiny reports.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  static JsonValue makeBool(bool B);
  static JsonValue makeNumber(double D);
  static JsonValue makeString(std::string S);
  static JsonValue makeArray();
  static JsonValue makeObject();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// \pre matching kind (asserted).
  bool asBool() const;
  double asNumber() const;
  const std::string &asString() const;
  const std::vector<JsonValue> &asArray() const;
  std::vector<JsonValue> &asArray();
  const std::vector<std::pair<std::string, JsonValue>> &asObject() const;
  std::vector<std::pair<std::string, JsonValue>> &asObject();

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;

  /// find() + number access: nullopt when absent or not a number.
  std::optional<double> findNumber(const std::string &Key) const;

private:
  Kind K;
  bool B = false;
  double D = 0.0;
  std::string S;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

/// Parses \p Text as one RFC 8259 JSON value. Errors (including duplicate
/// object keys and trailing garbage) come back as ErrorCode::InvalidSpec
/// with a byte-offset message.
ErrorOr<JsonValue> parseJson(const std::string &Text);

} // namespace support
} // namespace cogent

#endif // COGENT_SUPPORT_JSONVALUE_H
