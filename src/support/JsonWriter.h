//===- support/JsonWriter.h - Dependency-free JSON emission/checking -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal streaming JSON writer (and a matching validity checker) shared
/// by the tracing sink, the counter/metrics exporter, the CLI and the bench
/// harness reporters. Header-only and dependency-free on purpose: the
/// observability layer must never pull a third-party serializer into the
/// core libraries.
///
/// The writer inserts commas automatically and escapes strings per RFC
/// 8259. Non-finite doubles (which JSON cannot represent) are emitted as
/// null. The checker is a recursive-descent parser that accepts exactly the
/// RFC 8259 grammar; tests and scripts/run_all.sh use it to reject
/// malformed trace/metrics/bench files.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_JSONWRITER_H
#define COGENT_SUPPORT_JSONWRITER_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace cogent {
namespace support {

/// Streaming JSON writer over an owned string buffer.
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("name"); W.value("eq1");
///   W.key("gflops"); W.value(1234.5);
///   W.endObject();
///   std::string Out = W.take();
class JsonWriter {
public:
  JsonWriter() { Buffer.reserve(256); }

  void beginObject() { beginValue(); Buffer += '{'; push(/*IsObject=*/true); }
  void endObject() { pop(); Buffer += '}'; }
  void beginArray() { beginValue(); Buffer += '['; push(/*IsObject=*/false); }
  void endArray() { pop(); Buffer += ']'; }

  /// Emits an object key. Must alternate with exactly one value inside an
  /// object scope.
  void key(const std::string &Name) {
    separate();
    appendEscaped(Name);
    Buffer += ':';
    PendingKey = true;
  }

  void value(const std::string &S) { beginValue(); appendEscaped(S); }
  void value(const char *S) { value(std::string(S)); }
  void value(bool B) { beginValue(); Buffer += B ? "true" : "false"; }
  void value(double D) {
    beginValue();
    if (!std::isfinite(D)) {
      Buffer += "null"; // JSON has no NaN/Inf
      return;
    }
    char Tmp[32];
    std::snprintf(Tmp, sizeof(Tmp), "%.17g", D);
    Buffer += Tmp;
  }
  void value(uint64_t U) {
    beginValue();
    Buffer += std::to_string(U);
  }
  void value(int64_t I) { beginValue(); Buffer += std::to_string(I); }
  void value(int I) { value(static_cast<int64_t>(I)); }
  void value(unsigned U) { value(static_cast<uint64_t>(U)); }
  void null() { beginValue(); Buffer += "null"; }

  /// Convenience: key + value in one call.
  template <typename T> void member(const std::string &Name, T &&V) {
    key(Name);
    value(std::forward<T>(V));
  }

  const std::string &str() const { return Buffer; }
  std::string take() { return std::move(Buffer); }

private:
  struct Scope {
    bool IsObject = false;
    bool HasEntries = false;
  };

  void push(bool IsObject) { Scopes.push_back({IsObject, false}); }
  void pop() {
    if (!Scopes.empty())
      Scopes.pop_back();
  }
  /// Emits the separating comma when a sibling entry precedes this one.
  void separate() {
    if (!Scopes.empty()) {
      if (Scopes.back().HasEntries)
        Buffer += ',';
      Scopes.back().HasEntries = true;
    }
  }
  /// Called before every value: array elements need their own comma, object
  /// values had it emitted by key().
  void beginValue() {
    if (PendingKey)
      PendingKey = false;
    else
      separate();
  }

  void appendEscaped(const std::string &S) {
    Buffer += '"';
    for (char C : S) {
      switch (C) {
      case '"': Buffer += "\\\""; break;
      case '\\': Buffer += "\\\\"; break;
      case '\n': Buffer += "\\n"; break;
      case '\r': Buffer += "\\r"; break;
      case '\t': Buffer += "\\t"; break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Tmp[8];
          std::snprintf(Tmp, sizeof(Tmp), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(C)));
          Buffer += Tmp;
        } else {
          Buffer += C;
        }
      }
    }
    Buffer += '"';
  }

  std::string Buffer;
  std::vector<Scope> Scopes;
  bool PendingKey = false;
};

namespace json_detail {

/// Recursive-descent RFC 8259 checker over [P, End).
class Checker {
public:
  Checker(const char *P, const char *End) : P(P), End(End) {}

  bool run(std::string *Err, size_t *ErrOffset = nullptr) {
    skipWs();
    if (!parseValue()) {
      if (Err)
        *Err = Error + " at offset " + std::to_string(Offset());
      if (ErrOffset)
        *ErrOffset = Offset();
      return false;
    }
    skipWs();
    if (P != End) {
      if (Err)
        *Err = "trailing garbage at offset " + std::to_string(Offset());
      if (ErrOffset)
        *ErrOffset = Offset();
      return false;
    }
    return true;
  }

private:
  size_t Offset() const { return static_cast<size_t>(P - Begin); }

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool fail(const char *Msg) {
    Error = Msg;
    return false;
  }

  bool literal(const char *Word) {
    for (; *Word; ++Word, ++P)
      if (P == End || *P != *Word)
        return fail("bad literal");
    return true;
  }

  bool parseString() {
    if (P == End || *P != '"')
      return fail("expected string");
    ++P;
    while (P != End && *P != '"') {
      if (static_cast<unsigned char>(*P) < 0x20)
        return fail("unescaped control character in string");
      if (*P == '\\') {
        ++P;
        if (P == End)
          return fail("truncated escape");
        switch (*P) {
        case '"': case '\\': case '/': case 'b': case 'f':
        case 'n': case 'r': case 't':
          ++P;
          break;
        case 'u':
          ++P;
          for (int I = 0; I < 4; ++I, ++P)
            if (P == End || !std::isxdigit(static_cast<unsigned char>(*P)))
              return fail("bad \\u escape");
          break;
        default:
          return fail("bad escape character");
        }
      } else {
        ++P;
      }
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing quote
    return true;
  }

  bool parseNumber() {
    if (P != End && *P == '-')
      ++P;
    if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
      return fail("bad number");
    if (*P == '0')
      ++P;
    else
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    if (P != End && *P == '.') {
      ++P;
      if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
        return fail("bad fraction");
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    if (P != End && (*P == 'e' || *P == 'E')) {
      ++P;
      if (P != End && (*P == '+' || *P == '-'))
        ++P;
      if (P == End || !std::isdigit(static_cast<unsigned char>(*P)))
        return fail("bad exponent");
      while (P != End && std::isdigit(static_cast<unsigned char>(*P)))
        ++P;
    }
    return true;
  }

  bool parseValue() {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    bool Ok = parseValueImpl();
    --Depth;
    return Ok;
  }

  bool parseValueImpl() {
    if (P == End)
      return fail("unexpected end of input");
    switch (*P) {
    case '{': {
      ++P;
      skipWs();
      if (P != End && *P == '}') {
        ++P;
        return true;
      }
      for (;;) {
        skipWs();
        if (!parseString())
          return false;
        skipWs();
        if (P == End || *P != ':')
          return fail("expected ':'");
        ++P;
        skipWs();
        if (!parseValue())
          return false;
        skipWs();
        if (P != End && *P == ',') {
          ++P;
          continue;
        }
        if (P != End && *P == '}') {
          ++P;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    case '[': {
      ++P;
      skipWs();
      if (P != End && *P == ']') {
        ++P;
        return true;
      }
      for (;;) {
        skipWs();
        if (!parseValue())
          return false;
        skipWs();
        if (P != End && *P == ',') {
          ++P;
          continue;
        }
        if (P != End && *P == ']') {
          ++P;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '"':
      return parseString();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return parseNumber();
    }
  }

  static constexpr int MaxDepth = 256;
  const char *P;
  const char *Begin = P;
  const char *End;
  int Depth = 0;
  std::string Error;
};

} // namespace json_detail

/// Returns true when \p Text is one well-formed RFC 8259 JSON value; on
/// failure \p Err (when non-null) receives a one-line reason with offset.
inline bool validateJson(const std::string &Text, std::string *Err = nullptr) {
  json_detail::Checker C(Text.data(), Text.data() + Text.size());
  return C.run(Err);
}

/// Like validateJson, but also reports where the first error was found:
/// \p ErrLine / \p ErrColumn (when non-null) receive the 1-based position
/// of the byte the checker stopped at. Tools print "file:line:col".
inline bool validateJsonAt(const std::string &Text, std::string *Err,
                           size_t *ErrLine, size_t *ErrColumn) {
  json_detail::Checker C(Text.data(), Text.data() + Text.size());
  size_t Offset = 0;
  if (C.run(Err, &Offset))
    return true;
  size_t Line = 1, Column = 1;
  for (size_t I = 0; I < Offset && I < Text.size(); ++I) {
    if (Text[I] == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
  }
  if (ErrLine)
    *ErrLine = Line;
  if (ErrColumn)
    *ErrColumn = Column;
  return false;
}

} // namespace support
} // namespace cogent

#endif // COGENT_SUPPORT_JSONWRITER_H
