//===- support/Metrics.cpp ------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/JsonWriter.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

using namespace cogent;
using namespace cogent::support;

//===----------------------------------------------------------------------===//
// MetricKind name table
//===----------------------------------------------------------------------===//

static const char *const MetricKindNames[NumMetricKinds] = {
    "counter",
    "gauge",
    "histogram",
};

const char *support::metricKindName(MetricKind Kind) {
  unsigned I = static_cast<unsigned>(Kind);
  return I < NumMetricKinds ? MetricKindNames[I] : "?";
}

std::optional<MetricKind> support::metricKindFromName(const std::string &Name) {
  for (unsigned I = 0; I < NumMetricKinds; ++I)
    if (Name == MetricKindNames[I])
      return static_cast<MetricKind>(I);
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// LatencyHistogram
//===----------------------------------------------------------------------===//

double LatencyHistogram::maxTrackableMs() {
  return MinTrackableMs * std::exp2(static_cast<double>(Octaves));
}

double LatencyHistogram::quantileErrorBound() {
  return std::exp2(1.0 / (2.0 * SubBucketsPerOctave)) - 1.0;
}

double LatencyHistogram::bucketLowerMs(unsigned I) {
  if (I == 0)
    return 0.0;
  return MinTrackableMs *
         std::exp2(static_cast<double>(I - 1) / SubBucketsPerOctave);
}

double LatencyHistogram::bucketUpperMs(unsigned I) {
  if (I >= NumBuckets - 1)
    return std::numeric_limits<double>::infinity();
  return MinTrackableMs *
         std::exp2(static_cast<double>(I) / SubBucketsPerOctave);
}

unsigned LatencyHistogram::bucketIndex(double Ms) {
  if (!(Ms >= MinTrackableMs)) // NaN and negatives underflow too
    return 0;
  double Raw = std::log2(Ms / MinTrackableMs) * SubBucketsPerOctave;
  Raw = std::clamp(Raw, 0.0, static_cast<double>(NumBuckets));
  unsigned I = 1 + static_cast<unsigned>(Raw);
  if (I >= NumBuckets)
    I = NumBuckets - 1;
  // log2 rounding can land a boundary value one bucket off either way;
  // nudge until the bucket's half-open range [lower, upper) contains Ms,
  // which makes boundary placement exact and deterministic.
  while (I > 1 && Ms < bucketLowerMs(I))
    --I;
  while (I < NumBuckets - 1 && Ms >= bucketUpperMs(I))
    ++I;
  return I;
}

void LatencyHistogram::record(double Ms) {
  if (std::isnan(Ms))
    Ms = 0.0;
  ++Counts_[bucketIndex(Ms)];
  if (Count_ == 0) {
    MinMs_ = MaxMs_ = Ms;
  } else {
    MinMs_ = std::min(MinMs_, Ms);
    MaxMs_ = std::max(MaxMs_, Ms);
  }
  ++Count_;
  SumMs_ += Ms;
}

void LatencyHistogram::merge(const LatencyHistogram &Other) {
  if (Other.Count_ == 0)
    return;
  for (unsigned I = 0; I < NumBuckets; ++I)
    Counts_[I] += Other.Counts_[I];
  if (Count_ == 0) {
    MinMs_ = Other.MinMs_;
    MaxMs_ = Other.MaxMs_;
  } else {
    MinMs_ = std::min(MinMs_, Other.MinMs_);
    MaxMs_ = std::max(MaxMs_, Other.MaxMs_);
  }
  Count_ += Other.Count_;
  SumMs_ += Other.SumMs_;
}

double LatencyHistogram::quantileMs(double P) const {
  if (Count_ == 0)
    return 0.0;
  P = std::clamp(P, 0.0, 100.0);
  // The order statistic at rank ceil(P/100 * N), rank 1 = min.
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil((P / 100.0) * static_cast<double>(Count_)));
  Rank = std::clamp<uint64_t>(Rank, 1, Count_);
  uint64_t Cum = 0;
  unsigned Bucket = NumBuckets - 1;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Cum += Counts_[I];
    if (Cum >= Rank) {
      Bucket = I;
      break;
    }
  }
  double Estimate;
  if (Bucket == 0)
    Estimate = MinMs_; // underflow: exact min is the best statement
  else if (Bucket == NumBuckets - 1)
    Estimate = MaxMs_; // overflow: exact max
  else
    Estimate = std::sqrt(bucketLowerMs(Bucket) * bucketUpperMs(Bucket));
  // Clamping into the observed range never hurts the bound and makes
  // single-sample and uniform distributions exact.
  return std::clamp(Estimate, MinMs_, MaxMs_);
}

void LatencyHistogram::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.member("count", Count_);
  W.member("sum_ms", SumMs_);
  W.member("min_ms", minMs());
  W.member("max_ms", maxMs());
  W.member("mean_ms", meanMs());
  W.member("p50_ms", quantileMs(50.0));
  W.member("p90_ms", quantileMs(90.0));
  W.member("p99_ms", quantileMs(99.0));
  W.member("p999_ms", quantileMs(99.9));
  W.endObject();
}

//===----------------------------------------------------------------------===//
// ConcurrentHistogram
//===----------------------------------------------------------------------===//

ConcurrentHistogram::ConcurrentHistogram(size_t NumShards) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (size_t I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

void ConcurrentHistogram::record(double Ms) {
  Shard &S = *Shards[traceThreadId() % Shards.size()];
  std::lock_guard<std::mutex> Guard(S.Lock);
  S.Hist.record(Ms);
}

LatencyHistogram ConcurrentHistogram::merged() const {
  LatencyHistogram Out;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->Lock);
    Out.merge(S->Hist);
  }
  return Out;
}

LatencyHistogram ConcurrentHistogram::shardSnapshot(size_t I) const {
  assert(I < Shards.size() && "shard index out of range");
  std::lock_guard<std::mutex> Guard(Shards[I]->Lock);
  return Shards[I]->Hist;
}

//===----------------------------------------------------------------------===//
// MetricRegistry
//===----------------------------------------------------------------------===//

MetricRegistry::Entry &MetricRegistry::getOrCreate(const std::string &Name,
                                                   MetricKind Kind,
                                                   const std::string &Help,
                                                   size_t NumShards) {
  std::lock_guard<std::mutex> Guard(Lock);
  auto [It, Inserted] = Entries.try_emplace(Name);
  Entry &E = It->second;
  if (Inserted) {
    E.Kind = Kind;
    E.Help = Help;
    switch (Kind) {
    case MetricKind::Counter:
      E.Counter = std::make_unique<MetricCounter>();
      break;
    case MetricKind::Gauge:
      E.Gauge = std::make_unique<MetricGauge>();
      break;
    case MetricKind::Histogram:
      E.Histogram = std::make_unique<ConcurrentHistogram>(NumShards);
      break;
    }
  } else {
    assert(E.Kind == Kind && "metric re-registered with a different kind");
    if (E.Help.empty() && !Help.empty())
      E.Help = Help;
  }
  return E;
}

MetricCounter &MetricRegistry::counter(const std::string &Name,
                                       const std::string &Help) {
  return *getOrCreate(Name, MetricKind::Counter, Help, 0).Counter;
}

MetricGauge &MetricRegistry::gauge(const std::string &Name,
                                   const std::string &Help) {
  return *getOrCreate(Name, MetricKind::Gauge, Help, 0).Gauge;
}

ConcurrentHistogram &MetricRegistry::histogram(const std::string &Name,
                                               const std::string &Help,
                                               size_t NumShards) {
  return *getOrCreate(Name, MetricKind::Histogram, Help, NumShards).Histogram;
}

std::optional<MetricKind> MetricRegistry::kindOf(const std::string &Name) const {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Entries.find(Name);
  if (It == Entries.end())
    return std::nullopt;
  return It->second.Kind;
}

void MetricRegistry::writeJson(JsonWriter &W) const {
  std::lock_guard<std::mutex> Guard(Lock);
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const auto &[Name, E] : Entries)
    if (E.Kind == MetricKind::Counter)
      W.member(Name, E.Counter->value());
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const auto &[Name, E] : Entries)
    if (E.Kind == MetricKind::Gauge)
      W.member(Name, E.Gauge->value());
  W.endObject();
  W.key("histograms");
  W.beginObject();
  for (const auto &[Name, E] : Entries)
    if (E.Kind == MetricKind::Histogram) {
      W.key(Name);
      E.Histogram->merged().writeJson(W);
    }
  W.endObject();
  W.endObject();
}

std::string MetricRegistry::renderJson() const {
  JsonWriter W;
  writeJson(W);
  return W.take();
}

std::string support::prometheusName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size() + 1);
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  if (!Out.empty() && Out[0] >= '0' && Out[0] <= '9')
    Out.insert(Out.begin(), '_');
  return Out;
}

/// %.17g, matching JsonWriter's double formatting so the two exporters
/// render identical registry state identically.
static std::string formatDouble(double D) {
  char Tmp[32];
  std::snprintf(Tmp, sizeof(Tmp), "%.17g", D);
  return Tmp;
}

std::string
MetricRegistry::renderPrometheus(const std::string &Namespace) const {
  std::lock_guard<std::mutex> Guard(Lock);
  std::string Out;
  auto header = [&](const std::string &FullName, const std::string &Help,
                    const char *Type) {
    if (!Help.empty())
      Out += "# HELP " + FullName + " " + Help + "\n";
    Out += "# TYPE " + FullName + " " + Type + "\n";
  };
  for (const auto &[Name, E] : Entries) {
    std::string Full = prometheusName(Namespace + "_" + Name);
    switch (E.Kind) {
    case MetricKind::Counter:
      header(Full + "_total", E.Help, "counter");
      Out += Full + "_total " + std::to_string(E.Counter->value()) + "\n";
      break;
    case MetricKind::Gauge:
      header(Full, E.Help, "gauge");
      Out += Full + " " + formatDouble(E.Gauge->value()) + "\n";
      break;
    case MetricKind::Histogram: {
      LatencyHistogram H = E.Histogram->merged();
      header(Full, E.Help, "summary");
      static constexpr struct {
        const char *Label;
        double P;
      } Quantiles[] = {{"0.5", 50.0}, {"0.9", 90.0}, {"0.99", 99.0},
                       {"0.999", 99.9}};
      for (const auto &Q : Quantiles)
        Out += Full + "{quantile=\"" + Q.Label + "\"} " +
               formatDouble(H.quantileMs(Q.P)) + "\n";
      Out += Full + "_sum " + formatDouble(H.sumMs()) + "\n";
      Out += Full + "_count " + std::to_string(H.count()) + "\n";
      break;
    }
    }
  }
  return Out;
}
