//===- support/Metrics.h - Service metrics registry and histograms --------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The continuously-measured half of the observability layer. Where
/// support/Counters.h gives the *pipeline* its always-on monotonic tallies
/// and support/Trace.h its per-run spans, this file gives the *service*
/// layer live, queryable operational metrics:
///
///  - LatencyHistogram: a bounded log-scale latency histogram with
///    p50/p90/p99/p999 quantile estimation. Memory is O(1) regardless of
///    sample count (the fix for the service's old unbounded LatenciesMs
///    vector) and two histograms merge by bucket-wise addition, so
///    per-worker shards combine into one distribution without locks on
///    the hot path's critical section.
///  - ConcurrentHistogram: N mutex-guarded LatencyHistogram shards keyed
///    by the calling thread, merged on demand.
///  - MetricRegistry: a thread-safe name -> metric table of monotonic
///    counters, gauges and histograms with two deterministic exporters:
///    a JSON object (via the repo's own JsonWriter) and the Prometheus
///    text exposition format (counters/gauges as-is, histograms as
///    quantile summaries).
///
/// Naming convention matches Counters.h: "<component>.<noun>" kebab-case
/// ("service.latency-ms"); the Prometheus renderer sanitizes to
/// [a-zA-Z0-9_] and prefixes a namespace ("cogent_service_latency_ms").
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_METRICS_H
#define COGENT_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace cogent {
namespace support {

class JsonWriter;

/// The closed set of metric kinds a registry can hold. Serialized into
/// exporter output; the name table is pinned by test_name_tables.
enum class MetricKind : unsigned {
  Counter,   ///< Monotonically non-decreasing uint64.
  Gauge,     ///< Instantaneous double, may move both ways.
  Histogram, ///< Bounded log-scale latency distribution.
};

/// Number of MetricKind enumerators; keep in sync when extending the enum
/// (the name-table round-trip test walks [0, NumMetricKinds)).
inline constexpr unsigned NumMetricKinds = 3;

/// "counter", "gauge" or "histogram".
const char *metricKindName(MetricKind Kind);

/// Inverse of metricKindName; nullopt for unknown strings.
std::optional<MetricKind> metricKindFromName(const std::string &Name);

/// A bounded log-scale histogram of millisecond latencies.
///
/// Bucket layout: bucket 0 is the underflow bucket (samples below
/// MinTrackableMs, including zero/negative); buckets 1..N-2 cover
/// [MinTrackableMs, MaxTrackableMs) with SubBucketsPerOctave buckets per
/// power of two (bucket ratio 2^(1/SubBucketsPerOctave)); bucket N-1 is
/// the overflow bucket. Quantiles report the geometric mean of the
/// selected bucket's bounds, clamped into the observed [min, max], so for
/// in-range samples the estimate is within a relative factor of
/// sqrt(bucket ratio) of the true order statistic — quantileErrorBound(),
/// about 4.4% at the default 8 sub-buckets per octave. Underflow and
/// overflow quantiles report the exactly-tracked min/max.
///
/// This is a plain value type (copyable, mergeable, not thread-safe);
/// ConcurrentHistogram adds the locking.
class LatencyHistogram {
public:
  /// ~0.98 microseconds: finer than anything the service can produce.
  static constexpr double MinTrackableMs = 1.0 / 1024.0;
  static constexpr unsigned SubBucketsPerOctave = 8;
  /// 28 octaves above MinTrackableMs: MaxTrackableMs ~= 262 seconds.
  static constexpr unsigned Octaves = 28;
  static constexpr unsigned NumBuckets = 2 + Octaves * SubBucketsPerOctave;

  /// Upper edge of the last regular bucket; samples at or above it land
  /// in the overflow bucket.
  static double maxTrackableMs();

  /// The documented relative error of quantileMs for in-range samples:
  /// 2^(1/(2*SubBucketsPerOctave)) - 1.
  static double quantileErrorBound();

  /// Bucket index for \p Ms (boundary values land in the bucket whose
  /// lower edge they equal).
  static unsigned bucketIndex(double Ms);
  /// Lower/upper edge of bucket \p I. Bucket 0's lower edge is 0; the
  /// overflow bucket's upper edge is +inf.
  static double bucketLowerMs(unsigned I);
  static double bucketUpperMs(unsigned I);

  void record(double Ms);

  /// Bucket-wise addition; min/max/sum/count combine exactly. The shard
  /// merge the service's per-worker histograms rely on.
  void merge(const LatencyHistogram &Other);

  uint64_t count() const { return Count_; }
  double sumMs() const { return SumMs_; }
  /// 0 when empty.
  double minMs() const { return Count_ ? MinMs_ : 0.0; }
  double maxMs() const { return Count_ ? MaxMs_ : 0.0; }
  double meanMs() const {
    return Count_ ? SumMs_ / static_cast<double>(Count_) : 0.0;
  }
  uint64_t bucketCount(unsigned I) const { return Counts_[I]; }

  /// The \p P-th percentile estimate (P in [0, 100]); 0 when empty. See
  /// the class comment for the error bound.
  double quantileMs(double P) const;

  /// Writes {"count":..,"sum_ms":..,"min_ms":..,"max_ms":..,"mean_ms":..,
  /// "p50_ms":..,"p90_ms":..,"p99_ms":..,"p999_ms":..} into \p W (the
  /// writer must be positioned where a value is expected).
  void writeJson(JsonWriter &W) const;

private:
  std::array<uint64_t, NumBuckets> Counts_{};
  uint64_t Count_ = 0;
  double SumMs_ = 0.0;
  double MinMs_ = 0.0;
  double MaxMs_ = 0.0;
};

/// A thread-safe histogram: per-thread-sharded LatencyHistogram instances,
/// each behind its own mutex, merged on demand. record() touches only the
/// calling thread's shard, so concurrent workers contend only when the
/// dense thread id hashes collide.
class ConcurrentHistogram {
public:
  explicit ConcurrentHistogram(size_t NumShards = 8);

  ConcurrentHistogram(const ConcurrentHistogram &) = delete;
  ConcurrentHistogram &operator=(const ConcurrentHistogram &) = delete;

  void record(double Ms);

  /// All shards merged into one distribution.
  LatencyHistogram merged() const;

  size_t numShards() const { return Shards.size(); }
  /// Copy of one shard's histogram (tests assert the shard-merge law).
  LatencyHistogram shardSnapshot(size_t I) const;

private:
  struct Shard {
    mutable std::mutex Lock;
    LatencyHistogram Hist;
  };
  std::vector<std::unique_ptr<Shard>> Shards;
};

/// A monotonic registry counter. Handles returned by MetricRegistry stay
/// valid for the registry's lifetime.
class MetricCounter {
public:
  void add(uint64_t N = 1) { Value_.fetch_add(N, std::memory_order_relaxed); }
  MetricCounter &operator++() {
    add(1);
    return *this;
  }
  /// Raises the counter to \p V if below it (never decreases): the bridge
  /// for mirroring an externally-maintained monotonic tally — the
  /// process-wide support::Counter table, the service's atomic stats —
  /// into the registry.
  void bridgeTo(uint64_t V) {
    uint64_t Cur = Value_.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Value_.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }
  uint64_t value() const { return Value_.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value_{0};
};

/// An instantaneous registry gauge.
class MetricGauge {
public:
  void set(double V) { Value_.store(V, std::memory_order_relaxed); }
  double value() const { return Value_.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Value_{0.0};
};

/// Thread-safe name -> metric table with deterministic (name-sorted)
/// exporters. Metrics are get-or-create and never removed; the returned
/// references stay valid for the registry's lifetime. Re-asking for a
/// name with a different kind is a programming error (asserted).
class MetricRegistry {
public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry &) = delete;
  MetricRegistry &operator=(const MetricRegistry &) = delete;

  MetricCounter &counter(const std::string &Name,
                         const std::string &Help = "");
  MetricGauge &gauge(const std::string &Name, const std::string &Help = "");
  ConcurrentHistogram &histogram(const std::string &Name,
                                 const std::string &Help = "",
                                 size_t NumShards = 8);

  /// The registered kind of \p Name, or nullopt when absent.
  std::optional<MetricKind> kindOf(const std::string &Name) const;

  /// Writes one JSON object {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,...,p999_ms},...}} with name-sorted keys
  /// into \p W.
  void writeJson(JsonWriter &W) const;
  /// writeJson as a standalone string.
  std::string renderJson() const;

  /// Prometheus text exposition format: counters ("_total" suffix) and
  /// gauges as single samples, histograms as quantile summaries
  /// ({quantile="0.5"|"0.9"|"0.99"|"0.999"} plus _sum/_count). Metric
  /// names are sanitized to [a-zA-Z0-9_] and prefixed with
  /// "<Namespace>_". Deterministic: name-sorted, trailing newline.
  std::string renderPrometheus(const std::string &Namespace = "cogent") const;

private:
  struct Entry {
    MetricKind Kind;
    std::string Help;
    std::unique_ptr<MetricCounter> Counter;
    std::unique_ptr<MetricGauge> Gauge;
    std::unique_ptr<ConcurrentHistogram> Histogram;
  };

  Entry &getOrCreate(const std::string &Name, MetricKind Kind,
                     const std::string &Help, size_t NumShards);

  mutable std::mutex Lock;
  /// std::map: sorted iteration gives the exporters their determinism.
  std::map<std::string, Entry> Entries;
};

/// Sanitizes \p Name for Prometheus: every character outside
/// [a-zA-Z0-9_] becomes '_'; a leading digit gains a '_' prefix.
std::string prometheusName(const std::string &Name);

/// Bridges the process-wide support::Counter table (snapshotCounters)
/// into \p Registry as monotonic counters named "<Prefix><name>". Safe to
/// call repeatedly — values only ratchet upward. Defined in Counters.cpp
/// next to the snapshot it consumes.
void bridgeProcessCounters(MetricRegistry &Registry,
                           const std::string &Prefix = "process.");

} // namespace support
} // namespace cogent

#endif // COGENT_SUPPORT_METRICS_H
