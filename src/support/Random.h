//===- support/Random.h - Deterministic random helpers --------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random number helpers. Everything in the repository that needs
/// randomness (tensor fills, genetic-algorithm mutation, property tests)
/// routes through this so runs are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_RANDOM_H
#define COGENT_SUPPORT_RANDOM_H

#include <cstdint>
#include <random>

namespace cogent {

/// A seeded mersenne-twister wrapper with convenience draws.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eedULL) : Engine(Seed) {}

  /// Uniform integer in [Lo, Hi], inclusive on both ends.
  int64_t uniformInt(int64_t Lo, int64_t Hi) {
    std::uniform_int_distribution<int64_t> Dist(Lo, Hi);
    return Dist(Engine);
  }

  /// Uniform real in [Lo, Hi).
  double uniformReal(double Lo = 0.0, double Hi = 1.0) {
    std::uniform_real_distribution<double> Dist(Lo, Hi);
    return Dist(Engine);
  }

  /// Bernoulli draw with probability \p P of returning true.
  bool flip(double P = 0.5) { return uniformReal() < P; }

  std::mt19937_64 &engine() { return Engine; }

private:
  std::mt19937_64 Engine;
};

} // namespace cogent

#endif // COGENT_SUPPORT_RANDOM_H
