//===- support/StringUtils.cpp --------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace cogent;

std::vector<std::string> cogent::split(const std::string &Text,
                                       char Separator) {
  std::vector<std::string> Pieces;
  std::string Current;
  for (char C : Text) {
    if (C == Separator) {
      Pieces.push_back(Current);
      Current.clear();
      continue;
    }
    Current.push_back(C);
  }
  Pieces.push_back(Current);
  return Pieces;
}

std::string cogent::join(const std::vector<std::string> &Pieces,
                         const std::string &Separator) {
  std::string Result;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Pieces[I];
  }
  return Result;
}

std::string cogent::trim(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string cogent::indent(unsigned Level) {
  return std::string(static_cast<size_t>(Level) * 2, ' ');
}
