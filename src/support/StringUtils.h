//===- support/StringUtils.h - Small string helpers -----------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String splitting/joining/trimming helpers used by the contraction parser
/// and the CUDA source emitter.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_STRINGUTILS_H
#define COGENT_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace cogent {

/// Splits \p Text on every occurrence of \p Separator. Empty pieces are kept,
/// so "a--b" split on '-' yields {"a", "", "b"}.
std::vector<std::string> split(const std::string &Text, char Separator);

/// Joins \p Pieces with \p Separator between consecutive elements.
std::string join(const std::vector<std::string> &Pieces,
                 const std::string &Separator);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string &Text);

/// Repeats two-space indentation \p Level times; used by the code emitter.
std::string indent(unsigned Level);

} // namespace cogent

#endif // COGENT_SUPPORT_STRINGUTILS_H
