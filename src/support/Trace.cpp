//===- support/Trace.cpp -------------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/JsonWriter.h"

#include <atomic>
#include <cstdio>

using namespace cogent;
using namespace cogent::support;

namespace {

std::atomic<TraceSession *> &activeSessionSlot() {
  static std::atomic<TraceSession *> Slot{nullptr};
  return Slot;
}

} // namespace

uint32_t cogent::support::traceThreadId() {
  static std::atomic<uint32_t> NextId{0};
  thread_local uint32_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

TraceSession *cogent::support::activeTraceSession() {
  return activeSessionSlot().load(std::memory_order_acquire);
}

TraceSession::TraceSession() : Epoch(std::chrono::steady_clock::now()) {}

TraceSession::~TraceSession() {
  TraceSession *Self = this;
  activeSessionSlot().compare_exchange_strong(Self, nullptr,
                                              std::memory_order_acq_rel);
}

double TraceSession::nowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void TraceSession::record(TraceEvent Event) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.push_back(std::move(Event));
}

size_t TraceSession::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

std::vector<TraceEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events;
}

std::string TraceSession::toChromeTraceJson() const {
  std::vector<TraceEvent> Snapshot = events();
  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (const TraceEvent &Event : Snapshot) {
    W.beginObject();
    W.member("name", Event.Name);
    W.member("cat", "cogent");
    W.member("ph", std::string(1, Event.Phase));
    W.member("ts", Event.TimestampUs);
    if (Event.Phase == 'X')
      W.member("dur", Event.DurationUs);
    else
      W.member("s", "t"); // instant scope: thread
    W.member("pid", uint64_t(1));
    W.member("tid", uint64_t(Event.ThreadId));
    if (!Event.Args.empty()) {
      W.key("args");
      W.beginObject();
      for (const auto &[Key, Value] : Event.Args)
        W.member(Key, Value);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.member("displayTimeUnit", "ms");
  W.endObject();
  return W.take();
}

bool TraceSession::writeChromeTrace(const std::string &Path) const {
  std::string Json = toChromeTraceJson();
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), File);
  bool Ok = Written == Json.size();
  Ok &= std::fclose(File) == 0;
  return Ok;
}

ScopedTraceActivation::ScopedTraceActivation(TraceSession *Session) {
  if (!Session)
    return;
  Previous = activeSessionSlot().exchange(Session, std::memory_order_acq_rel);
  Installed = true;
}

ScopedTraceActivation::~ScopedTraceActivation() {
  if (Installed)
    activeSessionSlot().store(Previous, std::memory_order_release);
}

TraceSpan::TraceSpan(const char *Name)
    : Session(activeTraceSession()), Name(Name),
      Start(std::chrono::steady_clock::now()) {}

double TraceSpan::elapsedMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

TraceSpan::~TraceSpan() {
  if (!Session)
    return;
  TraceEvent Event;
  Event.Name = Name;
  Event.Phase = 'X';
  Event.ThreadId = traceThreadId();
  Event.DurationUs = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
  Event.TimestampUs = Session->nowUs() - Event.DurationUs;
  Event.Args = std::move(Args);
  Session->record(std::move(Event));
}

void cogent::support::traceInstant(
    const char *Name, std::vector<std::pair<std::string, std::string>> Args) {
  TraceSession *Session = activeTraceSession();
  if (!Session)
    return;
  TraceEvent Event;
  Event.Name = Name;
  Event.Phase = 'i';
  Event.ThreadId = traceThreadId();
  Event.TimestampUs = Session->nowUs();
  Event.Args = std::move(Args);
  Session->record(std::move(Event));
}
