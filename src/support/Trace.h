//===- support/Trace.h - Scoped spans with a Chrome-trace JSON sink -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock tracing for the generation pipeline: RAII TraceSpan objects
/// record Chrome trace-event "complete" (ph:"X") events, traceInstant
/// records point events (fallback rungs, budget trips), and TraceSession is
/// the thread-safe process-wide sink that serializes everything as Chrome
/// trace-event JSON — load the file in chrome://tracing or
/// https://ui.perfetto.dev to see the pipeline's phase breakdown.
///
/// Enabling is per-run: construct a TraceSession, point
/// CogentOptions::Trace at it (or install it directly with
/// ScopedTraceActivation), and write the file afterwards. When no session
/// is active, creating a span is one relaxed atomic load, a branch and a
/// monotonic clock read (kept so PhaseTimings work untraced) — no
/// allocation, no recorded state — so instrumentation can stay in release
/// builds.
///
/// Span taxonomy ("<component>.<phase>", see docs/ARCHITECTURE.md §10):
/// cogent.parse / cogent.enumerate / cogent.rank / cogent.emit /
/// cogent.fallback, sim.kernel, autotune.refine, ...
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_SUPPORT_TRACE_H
#define COGENT_SUPPORT_TRACE_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cogent {
namespace support {

/// One recorded trace event, in Chrome trace-event terms.
struct TraceEvent {
  /// Static string (span names are compile-time literals).
  const char *Name = "";
  /// 'X' = complete (has DurationUs), 'i' = instant.
  char Phase = 'X';
  /// Microseconds since the session's epoch.
  double TimestampUs = 0.0;
  double DurationUs = 0.0;
  /// Small dense per-thread id (not the OS tid).
  uint32_t ThreadId = 0;
  /// Optional string arguments shown in the trace viewer.
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Thread-safe in-memory event sink for one tracing run.
class TraceSession {
public:
  TraceSession();
  /// Deactivates itself if still installed (defensive; normal users go
  /// through ScopedTraceActivation or CogentOptions and never leave a
  /// dangling active session).
  ~TraceSession();

  TraceSession(const TraceSession &) = delete;
  TraceSession &operator=(const TraceSession &) = delete;

  /// Appends one event (thread-safe).
  void record(TraceEvent Event);

  /// Microseconds since this session was constructed.
  double nowUs() const;

  size_t eventCount() const;
  /// Copy of the recorded events, in record order.
  std::vector<TraceEvent> events() const;

  /// Serializes as Chrome trace-event JSON ({"traceEvents": [...]}).
  std::string toChromeTraceJson() const;
  /// toChromeTraceJson to a file; false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;

private:
  mutable std::mutex Mutex;
  std::vector<TraceEvent> Events;
  std::chrono::steady_clock::time_point Epoch;
};

/// The currently installed sink, or nullptr when tracing is off.
TraceSession *activeTraceSession();

/// Installs \p Session process-wide for this object's lifetime, restoring
/// the previous sink on destruction. A null \p Session is a no-op (the
/// previous sink, if any, stays active) so callers can pass their options
/// pointer through unconditionally.
class ScopedTraceActivation {
public:
  explicit ScopedTraceActivation(TraceSession *Session);
  ~ScopedTraceActivation();

  ScopedTraceActivation(const ScopedTraceActivation &) = delete;
  ScopedTraceActivation &operator=(const ScopedTraceActivation &) = delete;

private:
  TraceSession *Previous = nullptr;
  bool Installed = false;
};

/// RAII span: records one 'X' event covering its lifetime on the active
/// session. Captures the session at construction, so a span spans
/// consistently even if the active session changes while it is open.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name);
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// True when a session is recording this span.
  bool live() const { return Session != nullptr; }

  /// Attaches a key/value argument (no-op when not live).
  void arg(const char *Key, std::string Value) {
    if (Session)
      Args.emplace_back(Key, std::move(Value));
  }

  /// Elapsed milliseconds since construction (works with tracing off; used
  /// for PhaseTimings).
  double elapsedMs() const;

private:
  TraceSession *Session;
  const char *Name;
  std::chrono::steady_clock::time_point Start;
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Records one instant event on the active session (no-op when off).
void traceInstant(
    const char *Name,
    std::vector<std::pair<std::string, std::string>> Args = {});

/// This thread's small dense id (0 for the first thread that asks).
uint32_t traceThreadId();

} // namespace support
} // namespace cogent

#endif // COGENT_SUPPORT_TRACE_H
