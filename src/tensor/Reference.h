//===- tensor/Reference.h - Naive reference contraction --------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The numerical oracle: a direct nested-loop implementation of an arbitrary
/// contraction, used to validate every other execution path (kernel
/// simulator, TTGT, generated-code schedules).
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_TENSOR_REFERENCE_H
#define COGENT_TENSOR_REFERENCE_H

#include "ir/Contraction.h"
#include "tensor/Tensor.h"

namespace cogent {
namespace tensor {

/// Allocates operand \p Op of \p TC with its natural shape (extents in the
/// operand's own index order, FVI first).
template <typename ElementT>
Tensor<ElementT> makeOperand(const ir::Contraction &TC, ir::Operand Op) {
  std::vector<int64_t> Shape;
  for (char Name : TC.indices(Op))
    Shape.push_back(TC.extent(Name));
  return Tensor<ElementT>(Shape);
}

/// Computes C = A * B by direct summation: for every external multi-index,
/// accumulate over the full internal iteration space. O(prod of all extents)
/// work, intended for validation at small sizes only.
template <typename ElementT>
void contractReference(const ir::Contraction &TC, Tensor<ElementT> &C,
                       const Tensor<ElementT> &A, const Tensor<ElementT> &B) {
  std::vector<char> Externals = TC.externalIndices();
  std::vector<char> Internals = TC.internalIndices();

  // Per loop-index strides into each operand (0 when the operand does not
  // contain the index), so offsets are simple dot products.
  auto stridesFor = [&](ir::Operand Op, const std::vector<char> &Names) {
    std::vector<int64_t> Strides;
    for (char Name : Names)
      Strides.push_back(TC.contains(Op, Name) ? TC.strideIn(Op, Name) : 0);
    return Strides;
  };
  std::vector<int64_t> ExtStrideC = stridesFor(ir::Operand::C, Externals);
  std::vector<int64_t> ExtStrideA = stridesFor(ir::Operand::A, Externals);
  std::vector<int64_t> ExtStrideB = stridesFor(ir::Operand::B, Externals);
  std::vector<int64_t> IntStrideA = stridesFor(ir::Operand::A, Internals);
  std::vector<int64_t> IntStrideB = stridesFor(ir::Operand::B, Internals);

  auto extentsOf = [&](const std::vector<char> &Names) {
    std::vector<int64_t> Extents;
    for (char Name : Names)
      Extents.push_back(TC.extent(Name));
    return Extents;
  };
  std::vector<int64_t> ExtShape = extentsOf(Externals);
  std::vector<int64_t> IntShape = extentsOf(Internals);

  auto dot = [](const std::vector<int64_t> &X, const std::vector<int64_t> &Y) {
    int64_t Sum = 0;
    for (size_t I = 0; I < X.size(); ++I)
      Sum += X[I] * Y[I];
    return Sum;
  };

  std::vector<int64_t> Ext(Externals.size(), 0);
  do {
    int64_t BaseA = dot(Ext, ExtStrideA);
    int64_t BaseB = dot(Ext, ExtStrideB);
    double Acc = 0.0;
    std::vector<int64_t> Int(Internals.size(), 0);
    do {
      int64_t OffA = BaseA + dot(Int, IntStrideA);
      int64_t OffB = BaseB + dot(Int, IntStrideB);
      Acc += static_cast<double>(A.at(OffA)) * static_cast<double>(B.at(OffB));
    } while (advanceOdometer(Int, IntShape));
    C.at(dot(Ext, ExtStrideC)) = static_cast<ElementT>(Acc);
  } while (advanceOdometer(Ext, ExtShape));
}

} // namespace tensor
} // namespace cogent

#endif // COGENT_TENSOR_REFERENCE_H
