//===- tensor/Tensor.cpp ---------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tensor/Tensor.h"

using namespace cogent;
using namespace cogent::tensor;

bool cogent::tensor::advanceOdometer(std::vector<int64_t> &MultiIndex,
                                     const std::vector<int64_t> &Shape) {
  assert(MultiIndex.size() == Shape.size() && "rank mismatch");
  for (size_t I = 0; I < MultiIndex.size(); ++I) {
    if (++MultiIndex[I] < Shape[I])
      return true;
    MultiIndex[I] = 0;
  }
  return false;
}
