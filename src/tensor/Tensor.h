//===- tensor/Tensor.h - Dense column-major tensors ------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal dense tensor with column-major (FVI-first) layout, the storage
/// substrate shared by the reference contraction, the kernel simulator and
/// the TTGT baseline. Elements are any arithmetic type; double and float are
/// the two instantiations the project uses.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_TENSOR_TENSOR_H
#define COGENT_TENSOR_TENSOR_H

#include "support/Random.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace cogent {
namespace tensor {

/// Dense tensor with column-major layout: the first ("fastest varying")
/// dimension is contiguous, matching the paper's FVI convention.
template <typename ElementT> class Tensor {
public:
  Tensor() = default;

  /// Allocates a zero-filled tensor of the given \p Shape (FVI first).
  explicit Tensor(std::vector<int64_t> Shape) : Shape(std::move(Shape)) {
    Strides.resize(this->Shape.size());
    int64_t Stride = 1;
    for (size_t I = 0; I < this->Shape.size(); ++I) {
      assert(this->Shape[I] > 0 && "tensor dimensions must be positive");
      Strides[I] = Stride;
      Stride *= this->Shape[I];
    }
    Data.assign(static_cast<size_t>(Stride), ElementT(0));
  }

  unsigned rank() const { return static_cast<unsigned>(Shape.size()); }
  const std::vector<int64_t> &shape() const { return Shape; }
  const std::vector<int64_t> &strides() const { return Strides; }
  int64_t numElements() const { return static_cast<int64_t>(Data.size()); }

  ElementT *data() { return Data.data(); }
  const ElementT *data() const { return Data.data(); }

  ElementT &at(int64_t Flat) {
    assert(Flat >= 0 && Flat < numElements() && "flat index out of range");
    return Data[static_cast<size_t>(Flat)];
  }
  ElementT at(int64_t Flat) const {
    assert(Flat >= 0 && Flat < numElements() && "flat index out of range");
    return Data[static_cast<size_t>(Flat)];
  }

  /// Flat offset of a multi-index (FVI first). Size must equal rank().
  int64_t offsetOf(const std::vector<int64_t> &MultiIndex) const {
    assert(MultiIndex.size() == Shape.size() && "rank mismatch");
    int64_t Offset = 0;
    for (size_t I = 0; I < MultiIndex.size(); ++I) {
      assert(MultiIndex[I] >= 0 && MultiIndex[I] < Shape[I] &&
             "multi-index out of range");
      Offset += MultiIndex[I] * Strides[I];
    }
    return Offset;
  }

  ElementT &operator()(const std::vector<int64_t> &MultiIndex) {
    return Data[static_cast<size_t>(offsetOf(MultiIndex))];
  }
  ElementT operator()(const std::vector<int64_t> &MultiIndex) const {
    return Data[static_cast<size_t>(offsetOf(MultiIndex))];
  }

  /// Fills with uniform values in [-1, 1) from the given generator.
  void fillRandom(Rng &Generator) {
    for (ElementT &V : Data)
      V = static_cast<ElementT>(Generator.uniformReal(-1.0, 1.0));
  }

  /// Fills with 0, 1, 2, ... useful for layout-sensitive tests.
  void fillSequential() {
    for (size_t I = 0; I < Data.size(); ++I)
      Data[I] = static_cast<ElementT>(I);
  }

  void fillZero() { std::fill(Data.begin(), Data.end(), ElementT(0)); }

  /// Sum of all elements; a cheap checksum for cross-path comparisons.
  double sum() const {
    double Total = 0.0;
    for (ElementT V : Data)
      Total += static_cast<double>(V);
    return Total;
  }

private:
  std::vector<int64_t> Shape;
  std::vector<int64_t> Strides;
  std::vector<ElementT> Data;
};

/// Returns the largest absolute element-wise difference between two tensors
/// of identical shape.
template <typename ElementT>
double maxAbsDifference(const Tensor<ElementT> &X, const Tensor<ElementT> &Y) {
  assert(X.shape() == Y.shape() && "shape mismatch");
  double Max = 0.0;
  for (int64_t I = 0, E = X.numElements(); I < E; ++I)
    Max = std::max(Max, std::abs(static_cast<double>(X.at(I)) -
                                 static_cast<double>(Y.at(I))));
  return Max;
}

/// Steps a multi-index through a shape in column-major (FVI-first) order.
/// Returns false when iteration wraps past the final element.
bool advanceOdometer(std::vector<int64_t> &MultiIndex,
                     const std::vector<int64_t> &Shape);

} // namespace tensor
} // namespace cogent

#endif // COGENT_TENSOR_TENSOR_H
