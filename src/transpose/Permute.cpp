//===- transpose/Permute.cpp -----------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "transpose/Permute.h"

#include <algorithm>

using namespace cogent;
using namespace cogent::transpose;

bool cogent::transpose::isValidPermutation(const std::vector<unsigned> &Perm,
                                           unsigned Rank) {
  if (Perm.size() != Rank)
    return false;
  std::vector<bool> Seen(Rank, false);
  for (unsigned P : Perm) {
    if (P >= Rank || Seen[P])
      return false;
    Seen[P] = true;
  }
  return true;
}

std::vector<unsigned>
cogent::transpose::invertPermutation(const std::vector<unsigned> &Perm) {
  std::vector<unsigned> Inverse(Perm.size());
  for (unsigned I = 0; I < Perm.size(); ++I)
    Inverse[Perm[I]] = I;
  return Inverse;
}
