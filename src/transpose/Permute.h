//===- transpose/Permute.h - Tensor index permutation ----------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Index-permutation (generalized transpose) of dense tensors — the HPTT /
/// cuTT equivalent that the TTGT baseline depends on. A cache-blocked kernel
/// handles the common case where both the source and destination FVI tiles
/// fit a small 2D block; everything else falls back to odometer iteration.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_TRANSPOSE_PERMUTE_H
#define COGENT_TRANSPOSE_PERMUTE_H

#include "tensor/Tensor.h"

#include <cstdint>
#include <vector>

namespace cogent {
namespace transpose {

/// Validates a permutation vector: a bijection of [0, rank).
bool isValidPermutation(const std::vector<unsigned> &Perm, unsigned Rank);

/// Returns the inverse permutation.
std::vector<unsigned> invertPermutation(const std::vector<unsigned> &Perm);

namespace detail {
/// Generic odometer-driven permutation copy operating on raw buffers.
///
/// Dst dimension I takes its values from Src dimension Perm[I]:
///   Dst[i_0, ..., i_{r-1}] = Src[i_{Perm^-1(0)}, ...]  (stride formulation
/// below avoids materializing inverse indices).
template <typename ElementT>
void permuteRaw(ElementT *Dst, const std::vector<int64_t> &DstShape,
                const std::vector<int64_t> &DstStrides, const ElementT *Src,
                const std::vector<int64_t> &SrcStridesByDstDim) {
  std::vector<int64_t> Index(DstShape.size(), 0);
  int64_t DstOff = 0, SrcOff = 0;
  for (;;) {
    Dst[DstOff] = Src[SrcOff];
    // Advance the odometer, updating both offsets incrementally.
    size_t Dim = 0;
    for (; Dim < Index.size(); ++Dim) {
      DstOff += DstStrides[Dim];
      SrcOff += SrcStridesByDstDim[Dim];
      if (++Index[Dim] < DstShape[Dim])
        break;
      Index[Dim] = 0;
      DstOff -= DstStrides[Dim] * DstShape[Dim];
      SrcOff -= SrcStridesByDstDim[Dim] * DstShape[Dim];
    }
    if (Dim == Index.size())
      return;
  }
}
} // namespace detail

/// Permutes \p Src into a new tensor whose dimension I is Src dimension
/// \p Perm[I]. With Perm = {1, 0} on a matrix this is the ordinary
/// transpose. Uses 2D cache blocking over (dst FVI, src FVI) when those
/// dimensions differ, which is the stride-pathological pair.
template <typename ElementT>
tensor::Tensor<ElementT> permute(const tensor::Tensor<ElementT> &Src,
                                 const std::vector<unsigned> &Perm) {
  assert(isValidPermutation(Perm, Src.rank()) && "invalid permutation");
  std::vector<int64_t> DstShape(Perm.size());
  for (size_t I = 0; I < Perm.size(); ++I)
    DstShape[I] = Src.shape()[Perm[I]];
  tensor::Tensor<ElementT> Dst(DstShape);

  std::vector<int64_t> SrcStridesByDstDim(Perm.size());
  for (size_t I = 0; I < Perm.size(); ++I)
    SrcStridesByDstDim[I] = Src.strides()[Perm[I]];

  if (Src.rank() <= 1 || Perm[0] == 0) {
    // FVI preserved: the innermost copy is already contiguous in both.
    detail::permuteRaw(Dst.data(), DstShape, Dst.strides(), Src.data(),
                       SrcStridesByDstDim);
    return Dst;
  }

  // Cache-blocked path: tile the destination FVI (contiguous in Dst) against
  // the source FVI (contiguous in Src). All remaining dimensions iterate via
  // an odometer around the 2D block copies.
  constexpr int64_t BlockSize = 32;
  unsigned SrcFviDstDim = 0;
  for (size_t I = 0; I < Perm.size(); ++I)
    if (Perm[I] == 0)
      SrcFviDstDim = static_cast<unsigned>(I);

  int64_t DstFviExtent = DstShape[0];
  int64_t SrcFviExtent = DstShape[SrcFviDstDim];
  int64_t DstFviSrcStride = SrcStridesByDstDim[0];
  int64_t SrcFviDstStride = Dst.strides()[SrcFviDstDim];

  // Outer odometer over every destination dimension except 0 and
  // SrcFviDstDim.
  std::vector<unsigned> OuterDims;
  for (unsigned I = 1; I < Dst.rank(); ++I)
    if (I != SrcFviDstDim)
      OuterDims.push_back(I);

  std::vector<int64_t> OuterIndex(OuterDims.size(), 0);
  for (;;) {
    int64_t DstBase = 0, SrcBase = 0;
    for (size_t I = 0; I < OuterDims.size(); ++I) {
      DstBase += OuterIndex[I] * Dst.strides()[OuterDims[I]];
      SrcBase += OuterIndex[I] * SrcStridesByDstDim[OuterDims[I]];
    }
    for (int64_t JB = 0; JB < SrcFviExtent; JB += BlockSize) {
      int64_t JEnd = std::min(JB + BlockSize, SrcFviExtent);
      for (int64_t IB = 0; IB < DstFviExtent; IB += BlockSize) {
        int64_t IEnd = std::min(IB + BlockSize, DstFviExtent);
        for (int64_t J = JB; J < JEnd; ++J)
          for (int64_t I = IB; I < IEnd; ++I)
            Dst.data()[DstBase + I + J * SrcFviDstStride] =
                Src.data()[SrcBase + I * DstFviSrcStride + J];
      }
    }
    // Advance the outer odometer.
    size_t Dim = 0;
    for (; Dim < OuterIndex.size(); ++Dim) {
      if (++OuterIndex[Dim] < DstShape[OuterDims[Dim]])
        break;
      OuterIndex[Dim] = 0;
    }
    if (Dim == OuterIndex.size())
      return Dst;
  }
}

} // namespace transpose
} // namespace cogent

#endif // COGENT_TRANSPOSE_PERMUTE_H
