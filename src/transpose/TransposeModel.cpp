//===- transpose/TransposeModel.cpp ----------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "transpose/TransposeModel.h"

#include "transpose/Permute.h"

#include <algorithm>
#include <cassert>

using namespace cogent;
using namespace cogent::transpose;

/// Length of the contiguous run shared between source and destination when
/// leading dimensions are preserved: the product of extents over the maximal
/// prefix with Perm[I] == I.
static int64_t preservedPrefixRun(const std::vector<int64_t> &SrcShape,
                                  const std::vector<unsigned> &Perm) {
  int64_t Run = 1;
  for (size_t I = 0; I < Perm.size() && Perm[I] == I; ++I)
    Run *= SrcShape[I];
  return Run;
}

TransposeEstimate
cogent::transpose::estimateTranspose(const gpu::DeviceSpec &Device,
                                     const gpu::Calibration &Calib,
                                     const std::vector<int64_t> &SrcShape,
                                     const std::vector<unsigned> &Perm,
                                     unsigned ElementSize) {
  assert(isValidPermutation(Perm, static_cast<unsigned>(SrcShape.size())) &&
         "invalid permutation");
  assert((ElementSize == 4 || ElementSize == 8) && "unsupported element size");

  TransposeEstimate Est;
  int64_t NumElements = 1;
  for (int64_t Extent : SrcShape)
    NumElements *= Extent;
  Est.BytesMoved = 2.0 * static_cast<double>(NumElements) * ElementSize;

  bool Identity = true;
  for (size_t I = 0; I < Perm.size(); ++I)
    Identity &= Perm[I] == I;

  // Higher-dimensional permutations fragment the access pattern across
  // more stride levels; cuTT's achievable fraction of streaming bandwidth
  // degrades markedly beyond matrices (the effect that makes TTGT
  // transpose-dominated on the 6D CCSD(T) tensors, paper SS V).
  double RankPenalty =
      Identity ? 1.0
               : std::pow(0.72, std::max<int>(0, static_cast<int>(
                                                     SrcShape.size()) -
                                                     2));

  if (Identity || SrcShape.size() <= 1) {
    // Plain device-to-device copy.
    Est.Efficiency = 0.92;
  } else if (int64_t Run = preservedPrefixRun(SrcShape, Perm); Run > 1) {
    // Leading dimensions preserved: large contiguous chunks on both sides.
    int64_t ChunkElems = Run;
    double ChunkBytes = static_cast<double>(ChunkElems) * ElementSize;
    Est.Efficiency =
        0.90 * RankPenalty * std::min(1.0, ChunkBytes / Device.TransactionBytes);
    Est.Efficiency = std::max(Est.Efficiency, 0.08);
  } else {
    // True transpose: a cuTT-style tiled kernel stages TileDim x TileDim
    // blocks in shared memory. Coalescing on each side is limited by the
    // respective FVI extent (short FVIs leave transactions partly empty).
    int64_t SrcRun = SrcShape[0];
    unsigned DstFvi = Perm[0];
    int64_t DstRun = SrcShape[DstFvi];
    unsigned ElemsPerTransaction = Device.TransactionBytes / ElementSize;
    double SrcCoalesce = std::min<double>(
        1.0, static_cast<double>(SrcRun) / ElemsPerTransaction);
    double DstCoalesce = std::min<double>(
        1.0, static_cast<double>(DstRun) / ElemsPerTransaction);
    // cuTT reaches ~70-80% of streaming bandwidth on well-formed transposes.
    Est.Efficiency = 0.78 * RankPenalty * std::min(SrcCoalesce, DstCoalesce);
    Est.Efficiency = std::max(Est.Efficiency, 0.08);
  }

  Est.TimeMs = gpu::estimateStreamTimeMs(Device, Calib, Est.BytesMoved,
                                         Est.Efficiency);
  return Est;
}
