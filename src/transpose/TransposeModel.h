//===- transpose/TransposeModel.h - GPU transpose cost model ---------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Performance model of a cuTT-style GPU tensor transposition, used to cost
/// the T steps of the TTGT baseline (TAL_SH links cuTT for exactly this).
/// A transpose is bandwidth bound — every element is read once and written
/// once — and its achievable bandwidth fraction is governed by the shorter
/// of the source/destination contiguous runs (the classic shared-memory
/// tiled-transpose coalescing argument).
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_TRANSPOSE_TRANSPOSEMODEL_H
#define COGENT_TRANSPOSE_TRANSPOSEMODEL_H

#include "gpu/DeviceSpec.h"
#include "gpu/PerfModel.h"

#include <cstdint>
#include <vector>

namespace cogent {
namespace transpose {

/// Model output for one transposition.
struct TransposeEstimate {
  double TimeMs = 0.0;
  double BytesMoved = 0.0;
  /// Achieved fraction of the calibrated streaming bandwidth.
  double Efficiency = 0.0;
};

/// Predicts the GPU cost of permuting a tensor of \p SrcShape (column-major)
/// by \p Perm with \p ElementSize-byte elements.
TransposeEstimate estimateTranspose(const gpu::DeviceSpec &Device,
                                    const gpu::Calibration &Calib,
                                    const std::vector<int64_t> &SrcShape,
                                    const std::vector<unsigned> &Perm,
                                    unsigned ElementSize);

} // namespace transpose
} // namespace cogent

#endif // COGENT_TRANSPOSE_TRANSPOSEMODEL_H
