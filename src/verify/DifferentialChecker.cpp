//===- verify/DifferentialChecker.cpp -------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "verify/DifferentialChecker.h"

#include "core/CostModel.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "support/Checked.h"
#include "support/Counters.h"
#include "support/Random.h"
#include "support/Trace.h"
#include "tensor/Reference.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace cogent;
using namespace cogent::verify;

COGENT_COUNTER(NumDiffTrials, "verifier.diff-trials",
               "Differential simulator-vs-reference trials executed");
COGENT_COUNTER(NumDiffFailures, "verifier.diff-failures",
               "Differential trials that diverged from the oracle");

namespace {

/// NaN-aware elementwise agreement: both NaN, both the same infinity, or
/// within relative/absolute tolerance. Returns the finite relative error
/// (0 for agreeing specials), or nullopt on divergence.
std::optional<double> compareElements(double Got, double Want,
                                      double Tolerance) {
  if (std::isnan(Got) || std::isnan(Want))
    return (std::isnan(Got) && std::isnan(Want))
               ? std::optional<double>(0.0)
               : std::nullopt;
  if (std::isinf(Got) || std::isinf(Want))
    return (std::isinf(Got) && std::isinf(Want) &&
            std::signbit(Got) == std::signbit(Want))
               ? std::optional<double>(0.0)
               : std::nullopt;
  double Diff = std::abs(Got - Want);
  double Scale = std::max({std::abs(Got), std::abs(Want), 1.0});
  double Rel = Diff / Scale;
  if (Rel > Tolerance)
    return std::nullopt;
  return Rel;
}

struct TrialOutcome {
  double MaxRelError = 0.0;
  double TrafficRatio = 1.0;
};

/// One execution of the schedule at concrete extents, against the oracle
/// and the analytic traffic model.
ErrorOr<TrialOutcome> runTrial(const ir::Contraction &TC,
                               const core::KernelConfig &Config,
                               const gpu::DeviceSpec &Device,
                               const DifferentialOptions &Options, Rng &Gen,
                               bool SeedSpecials) {
  ++NumDiffTrials;
  auto Fail = [&](std::string Message) -> Error {
    ++NumDiffFailures;
    return Error(ErrorCode::VerificationFailed,
                 std::move(Message) + " [" +
                     TC.toStringWithExtents() + " with " +
                     Config.toString() + "]");
  };

  core::KernelConfig Clamped = Config.clampedTo(TC);
  std::string Issue = Clamped.validate(TC);
  if (!Issue.empty())
    return Fail("clamped config invalid at trial extents: " + Issue);
  core::KernelPlan Plan(TC, Clamped);

  tensor::Tensor<double> A = tensor::makeOperand<double>(TC, ir::Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(TC, ir::Operand::B);
  tensor::Tensor<double> CSim = tensor::makeOperand<double>(TC, ir::Operand::C);
  tensor::Tensor<double> CRef = tensor::makeOperand<double>(TC, ir::Operand::C);
  A.fillRandom(Gen);
  B.fillRandom(Gen);

  if (SeedSpecials) {
    // One NaN, one +Inf and one denormal per operand at random positions:
    // the schedule must carry them to exactly the elements the oracle does.
    const double Specials[3] = {std::numeric_limits<double>::quiet_NaN(),
                                std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::denorm_min()};
    for (double Special : Specials) {
      A.at(Gen.uniformInt(0, A.numElements() - 1)) = Special;
      B.at(Gen.uniformInt(0, B.numElements() - 1)) = Special;
    }
  }

  gpu::SimOptions Sim;
  Sim.TransactionBytes = Device.TransactionBytes;
  Sim.WarpSize = Device.WarpSize;
  gpu::SimResult Result = gpu::simulateKernel<double>(Plan, CSim, A, B, Sim);
  tensor::contractReference(TC, CRef, A, B);

  TrialOutcome Outcome;
  for (int64_t I = 0, E = CRef.numElements(); I < E; ++I) {
    std::optional<double> Rel =
        compareElements(CSim.at(I), CRef.at(I), Options.NumericTolerance);
    if (!Rel)
      return Fail("schedule diverges from the reference at element " +
                  std::to_string(I) + ": simulated " +
                  std::to_string(CSim.at(I)) + ", reference " +
                  std::to_string(CRef.at(I)));
    Outcome.MaxRelError = std::max(Outcome.MaxRelError, *Rel);
  }

  core::TransactionCost Model =
      core::estimateTransactions(Plan, Options.ElementSize,
                                 Device.TransactionBytes);
  double Simulated = static_cast<double>(Result.totalTransactions());
  double Modeled = Model.total();
  double Hi = std::max(Simulated, Modeled);
  double Lo = std::min(Simulated, Modeled);
  if (Hi > Lo * Options.TrafficFactor + Options.TrafficSlack)
    return Fail("modeled traffic " + std::to_string(Modeled) +
                " and simulated traffic " + std::to_string(Simulated) +
                " disagree beyond factor " +
                std::to_string(Options.TrafficFactor));
  Outcome.TrafficRatio = Lo > 0.0 ? Hi / Lo : 1.0;
  return Outcome;
}

} // namespace

ErrorOr<DifferentialReport>
verify::runDifferentialCheck(const ir::Contraction &TC,
                             const core::KernelConfig &Config,
                             const gpu::DeviceSpec &Device,
                             const DifferentialOptions &Options) {
  support::TraceSpan Span("verify.differential");
  Rng Gen(Options.Seed);
  DifferentialReport Report;

  auto Accumulate = [&](ErrorOr<TrialOutcome> Outcome,
                        const char *Label) -> std::optional<Error> {
    if (!Outcome)
      return Outcome.takeError().withContext(Label);
    ++Report.TrialsRun;
    Report.MaxRelError = std::max(Report.MaxRelError, Outcome->MaxRelError);
    Report.WorstTrafficRatio =
        std::max(Report.WorstTrafficRatio, Outcome->TrafficRatio);
    return std::nullopt;
  };

  std::string Spec = TC.toString();
  for (unsigned Trial = 0; Trial < Options.Trials; ++Trial) {
    // Redraw every index extent in [1, MaxExtent] so remainder tiles,
    // degenerate extent-1 dimensions and non-uniform shapes all get hit.
    std::vector<std::pair<char, int64_t>> Extents;
    for (char Name : TC.allIndices())
      Extents.emplace_back(Name, Gen.uniformInt(1, Options.MaxExtent));
    ErrorOr<ir::Contraction> Small = ir::Contraction::parse(Spec, Extents);
    if (!Small)
      return Small.takeError().withContext("differential trial re-parse");
    if (std::optional<Error> E =
            Accumulate(runTrial(*Small, Config, Device, Options, Gen,
                                /*SeedSpecials=*/false),
                       "randomized-extent trial"))
      return std::move(*E);
  }

  if (Options.SeedSpecialValues) {
    if (std::optional<Error> E =
            Accumulate(runTrial(TC, Config, Device, Options, Gen,
                                /*SeedSpecials=*/true),
                       "special-value trial"))
      return std::move(*E);
  }

  if (Options.ProbeOverflow) {
    // Extents near 2^31.5 per index: any product of two or more overflows
    // int64, so planning must be impossible — the parser has to reject this
    // with a typed error (Checked.h), never hand it to the scheduler.
    std::vector<std::pair<char, int64_t>> Huge;
    for (char Name : TC.allIndices())
      Huge.emplace_back(Name, int64_t(3037000499LL));
    ErrorOr<ir::Contraction> Overflow = ir::Contraction::parse(Spec, Huge);
    if (Overflow) {
      ++NumDiffFailures;
      return Error(ErrorCode::VerificationFailed,
                   "overflow-prone extents were accepted by the parser for " +
                       Spec);
    }
  }

  return Report;
}
