//===- verify/DifferentialChecker.h - Simulator-vs-reference checking -----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the verification subsystem: executes the
/// KernelSimulator's rendering of a configuration against the naive
/// reference contraction on randomized small extents and cross-checks the
/// simulator's exact DRAM transaction counts against the Algorithm-3
/// analytic estimate within a declared tolerance. Trials seed NaN/Inf/
/// denormal values into the operands (the schedule must propagate them
/// identically to the oracle, NaN-aware) and probe overflow-prone extents,
/// which must be rejected as typed errors upstream, never planned.
///
/// This is O(prod extents) per trial — run it at clamped validation sizes
/// (tests, the chaos lane, bench --verify), not inside Cogent::generate.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_VERIFY_DIFFERENTIALCHECKER_H
#define COGENT_VERIFY_DIFFERENTIALCHECKER_H

#include "core/KernelConfig.h"
#include "gpu/DeviceSpec.h"
#include "ir/Contraction.h"
#include "support/Diagnostics.h"

#include <cstdint>

namespace cogent {
namespace verify {

/// Knobs for one differential-checking session.
struct DifferentialOptions {
  /// Seed for extent draws, operand fills and special-value placement.
  uint64_t Seed = 0x5eedULL;
  /// Randomized-extent trials per contraction (plus the special-value and
  /// overflow probes).
  unsigned Trials = 3;
  /// Upper clamp for randomized per-index extents; keeps the dense oracle
  /// affordable.
  int64_t MaxExtent = 10;
  /// 8 = double (the only element size the checker executes).
  unsigned ElementSize = 8;
  /// Relative numeric tolerance between simulator and reference.
  double NumericTolerance = 1e-9;
  /// Allowed multiplicative disagreement between simulated and modeled
  /// transaction totals (either direction), after \p TrafficSlack absolute
  /// transactions are forgiven for tiny-tile boundary effects.
  double TrafficFactor = 4.0;
  double TrafficSlack = 64.0;
  /// Seed NaN/Inf/denormal values into the operands of one extra trial.
  bool SeedSpecialValues = true;
  /// Probe that overflow-prone extents are rejected as typed errors.
  bool ProbeOverflow = true;
};

/// What a successful differential check measured.
struct DifferentialReport {
  unsigned TrialsRun = 0;
  /// Worst finite relative error seen across all trials.
  double MaxRelError = 0.0;
  /// Worst modeled/simulated transaction ratio (>= 1; direction folded).
  double WorstTrafficRatio = 1.0;
};

/// Runs \p Trials randomized-extent executions of \p Config's schedule for
/// \p TC (tiles clamped per trial), comparing against the reference oracle
/// and the analytic cost model. Returns ErrorCode::VerificationFailed with
/// a trial-identifying context on the first divergence.
ErrorOr<DifferentialReport>
runDifferentialCheck(const ir::Contraction &TC,
                     const core::KernelConfig &Config,
                     const gpu::DeviceSpec &Device,
                     const DifferentialOptions &Options = {});

} // namespace verify
} // namespace cogent

#endif // COGENT_VERIFY_DIFFERENTIALCHECKER_H
