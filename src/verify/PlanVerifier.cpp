//===- verify/PlanVerifier.cpp --------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "verify/PlanVerifier.h"

#include "gpu/Occupancy.h"
#include "support/Counters.h"

#include <cmath>
#include <set>

using namespace cogent;
using namespace cogent::verify;

COGENT_COUNTER(NumPlansVerified, "verifier.plans-checked",
               "KernelPlans run through PlanVerifier::verifyPlan");
COGENT_COUNTER(NumVerifierRejections, "verifier.rejections",
               "Verification failures across all PlanVerifier checks");

static Error fail(std::string Message) {
  ++NumVerifierRejections;
  return Error(ErrorCode::VerificationFailed, std::move(Message));
}

double verify::transactionLowerBound(const ir::Contraction &TC,
                                     unsigned ElementSize,
                                     unsigned TransactionBytes) {
  // Derived from extents alone — deliberately not via estimateTransactions,
  // whose output is what this bound cross-examines.
  double Bytes = 0.0;
  for (ir::Operand Op : {ir::Operand::A, ir::Operand::B, ir::Operand::C})
    Bytes += static_cast<double>(TC.numElements(Op)) * ElementSize;
  return Bytes / static_cast<double>(TransactionBytes);
}

ErrorOr<void> PlanVerifier::verifyPlan(const core::KernelPlan &Plan) const {
  ++NumPlansVerified;
  const ir::Contraction &TC = Plan.contraction();
  const core::KernelConfig &Config = Plan.config();

  std::string ConfigIssue = Config.validate(TC);
  if (!ConfigIssue.empty())
    return fail("config rejected: " + ConfigIssue + " [" + Config.toString() +
                "]");

  // Every loop index must be decomposed exactly once — externals across the
  // grid, internals across steps — with a consistent tile count.
  std::set<char> Seen;
  auto CheckDim = [&](const core::PlanDim &Dim,
                      bool External) -> std::optional<Error> {
    if (!Seen.insert(Dim.Name).second)
      return fail(std::string("index '") + Dim.Name +
                  "' decomposed more than once");
    if (TC.isExternal(Dim.Name) != External)
      return fail(std::string("index '") + Dim.Name +
                  "' placed in the wrong decomposition for its kind");
    if (Dim.Extent != TC.extent(Dim.Name))
      return fail(std::string("index '") + Dim.Name + "' extent " +
                  std::to_string(Dim.Extent) +
                  " disagrees with the contraction's " +
                  std::to_string(TC.extent(Dim.Name)));
    if (Dim.Tile < 1 || Dim.Tile > Dim.Extent)
      return fail(std::string("index '") + Dim.Name + "' tile " +
                  std::to_string(Dim.Tile) + " outside [1, " +
                  std::to_string(Dim.Extent) + "]");
    int64_t Expected = (Dim.Extent + Dim.Tile - 1) / Dim.Tile;
    if (Dim.NumTiles != Expected)
      return fail(std::string("index '") + Dim.Name + "' tile count " +
                  std::to_string(Dim.NumTiles) + " != ceil(" +
                  std::to_string(Dim.Extent) + "/" +
                  std::to_string(Dim.Tile) + ") = " +
                  std::to_string(Expected));
    return std::nullopt;
  };
  int64_t Blocks = 1, Steps = 1;
  for (const core::PlanDim &Dim : Plan.gridDims()) {
    if (std::optional<Error> E = CheckDim(Dim, /*External=*/true))
      return std::move(*E);
    Blocks *= Dim.NumTiles;
  }
  for (const core::PlanDim &Dim : Plan.stepDims()) {
    if (std::optional<Error> E = CheckDim(Dim, /*External=*/false))
      return std::move(*E);
    Steps *= Dim.NumTiles;
  }
  for (char Name : TC.allIndices())
    if (!Seen.count(Name))
      return fail(std::string("index '") + Name +
                  "' missing from the grid/step decomposition");
  if (Blocks != Plan.numBlocks())
    return fail("grid tile product " + std::to_string(Blocks) +
                " disagrees with numBlocks() = " +
                std::to_string(Plan.numBlocks()));
  if (Steps != Plan.numSteps())
    return fail("step tile product " + std::to_string(Steps) +
                " disagrees with numSteps() = " +
                std::to_string(Plan.numSteps()));

  // Device-resource budgets, recomputed from the config's own footprint.
  int64_t Threads = Plan.threadsPerBlock();
  if (Threads < 1 || Threads > Device.MaxThreadsPerBlock)
    return fail("block of " + std::to_string(Threads) +
                " threads outside [1, " +
                std::to_string(Device.MaxThreadsPerBlock) + "] on " +
                Device.Name);
  int64_t SmemBytes = Config.smemBytes(ElementSize);
  if (SmemBytes > static_cast<int64_t>(Device.SharedMemPerBlock))
    return fail("staged slices need " + std::to_string(SmemBytes) +
                " B shared memory, over the per-block limit of " +
                std::to_string(Device.SharedMemPerBlock) + " B on " +
                Device.Name);
  unsigned Regs = Config.registersPerThread(ElementSize);
  if (Regs > Device.MaxRegistersPerThread)
    return fail("estimated " + std::to_string(Regs) +
                " registers/thread, over the cap of " +
                std::to_string(Device.MaxRegistersPerThread) + " on " +
                Device.Name);

  gpu::BlockResources Block;
  Block.ThreadsPerBlock = static_cast<unsigned>(Threads);
  Block.SharedMemBytes = static_cast<unsigned>(SmemBytes);
  Block.RegistersPerThread = Regs;
  gpu::OccupancyResult Occ = gpu::computeOccupancy(Device, Block);
  if (Occ.BlocksPerSM < 1)
    return fail(std::string("block does not fit on an SM (limiter: ") +
                Occ.Limiter + ") on " + Device.Name);
  return {};
}

ErrorOr<void> PlanVerifier::verifyCost(const core::KernelPlan &Plan,
                                       const core::TransactionCost &Cost)
    const {
  double Total = Cost.total();
  if (!std::isfinite(Total) || Cost.LoadA < 0.0 || Cost.LoadB < 0.0 ||
      Cost.StoreC < 0.0)
    return fail("transaction cost is not a finite non-negative number");
  double LowerBound = transactionLowerBound(Plan.contraction(), ElementSize,
                                            Device.TransactionBytes);
  // 1% slack plus half a transaction absorbs the bound's lack of per-run
  // ceil rounding; anything below that claims impossible traffic.
  if (Total + 0.5 < 0.99 * LowerBound)
    return fail("claimed cost " + std::to_string(Total) +
                " transactions is below the compulsory-traffic bound of " +
                std::to_string(LowerBound));
  return {};
}

ErrorOr<void> PlanVerifier::verifySource(const core::GeneratedSource &Source)
    const {
  if (Source.KernelSource.empty())
    return fail("emitted kernel source is empty");
  if (Source.KernelName.empty() ||
      Source.KernelSource.find(Source.KernelName) == std::string::npos)
    return fail("emitted source does not define kernel '" +
                Source.KernelName + "'");
  int64_t Depth = 0;
  for (char Ch : Source.full()) {
    if (Ch == '{')
      ++Depth;
    else if (Ch == '}' && --Depth < 0)
      return fail("emitted source has unbalanced braces (extra '}')");
  }
  if (Depth != 0)
    return fail("emitted source has unbalanced braces (" +
                std::to_string(Depth) + " unclosed '{'), likely truncated");
  return {};
}

ErrorOr<void> PlanVerifier::verifyAll(const core::KernelPlan &Plan,
                                      const core::TransactionCost &Cost,
                                      const core::GeneratedSource &Source)
    const {
  if (ErrorOr<void> Check = verifyPlan(Plan); !Check)
    return Check;
  if (ErrorOr<void> Check = verifyCost(Plan, Cost); !Check)
    return Check;
  return verifySource(Source);
}
