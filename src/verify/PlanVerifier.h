//===- verify/PlanVerifier.h - Static invariant checks on KernelPlans -----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static half of the verification subsystem: a checker run on every
/// KernelPlan before its source is handed to the caller, proving the
/// enumerator/fallback guarantees rather than assuming them. The verifier
/// recomputes each invariant from first principles (it never reuses the
/// number it is checking), so a misbehaving cost model, a mutated
/// DeviceSpec or a truncated emission is caught here and demoted to the
/// next fallback rung by Cogent::generate instead of reaching the user.
///
/// Invariants checked (docs/ARCHITECTURE.md §11):
///  - the configuration is structurally valid for the contraction
///    (KernelConfig::validate) and every loop index is tiled exactly once
///    across the grid/step decompositions with NumTiles == ceil(N/T);
///  - the block fits the device: threads within MaxThreadsPerBlock, the
///    staged slices within SharedMemPerBlock (and the SM), the register
///    estimate within MaxRegistersPerThread, and occupancy >= 1 block/SM;
///  - the claimed transaction cost is finite, non-negative and at least the
///    compulsory-traffic lower bound (every tensor element moved once),
///    computed here independently of estimateTransactions;
///  - the emitted source is plausible: non-empty, named, brace-balanced.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_VERIFY_PLANVERIFIER_H
#define COGENT_VERIFY_PLANVERIFIER_H

#include "core/CodeGen.h"
#include "core/CostModel.h"
#include "core/KernelPlan.h"
#include "gpu/DeviceSpec.h"
#include "support/Diagnostics.h"

namespace cogent {
namespace verify {

/// Independent compulsory-traffic lower bound for \p TC: each element of
/// A, B and C must cross the DRAM bus at least once, so no legitimate
/// schedule can claim fewer than bytes / TransactionBytes transactions.
double transactionLowerBound(const ir::Contraction &TC, unsigned ElementSize,
                             unsigned TransactionBytes);

/// Checks the invariants of plans targeted at one device. Stateless apart
/// from the device/element-size pair; cheap enough to run on every emitted
/// kernel in the default build.
class PlanVerifier {
public:
  PlanVerifier(const gpu::DeviceSpec &Device, unsigned ElementSize)
      : Device(Device), ElementSize(ElementSize) {}

  /// Structural + resource invariants of \p Plan (everything except the
  /// cost and source checks). ErrorCode::VerificationFailed on violation.
  ErrorOr<void> verifyPlan(const core::KernelPlan &Plan) const;

  /// Sanity of a claimed transaction cost for \p Plan: finite,
  /// non-negative, and >= the analytic lower bound (with a small slack for
  /// rounding). Catches perturbed or corrupted cost-model outputs.
  ErrorOr<void> verifyCost(const core::KernelPlan &Plan,
                           const core::TransactionCost &Cost) const;

  /// Plausibility of emitted source: non-empty kernel text containing the
  /// kernel name, balanced braces across kernel + driver. Catches truncated
  /// emissions.
  ErrorOr<void> verifySource(const core::GeneratedSource &Source) const;

  /// All three checks in sequence; first failure wins.
  ErrorOr<void> verifyAll(const core::KernelPlan &Plan,
                          const core::TransactionCost &Cost,
                          const core::GeneratedSource &Source) const;

  const gpu::DeviceSpec &device() const { return Device; }
  unsigned elementSize() const { return ElementSize; }

private:
  gpu::DeviceSpec Device;
  unsigned ElementSize;
};

} // namespace verify
} // namespace cogent

#endif // COGENT_VERIFY_PLANVERIFIER_H
