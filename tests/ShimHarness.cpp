//===- tests/ShimHarness.cpp ----------------------------------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ShimHarness.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace cogent;
using namespace cogent::testsupport;
using core::KernelPlan;
using ir::Contraction;
using ir::Operand;

const char *cogent::testsupport::CudaShimHeader = R"shim(
#ifndef COGENT_CUDA_SHIM_H
#define COGENT_CUDA_SHIM_H
#include <barrier>
#include <thread>
#include <vector>

struct Dim3 { unsigned x = 1, y = 1, z = 1; };
inline Dim3 blockIdx;                 // blocks run sequentially
inline thread_local Dim3 threadIdx;   // one OS thread per CUDA thread
inline Dim3 blockDim;
inline Dim3 gridDim;
inline std::barrier<> *cogentBarrier = nullptr;

#define __global__
#define __restrict__
#define __shared__ static
#define __syncthreads() cogentBarrier->arrive_and_wait()

template <typename KernelT>
void launchShim(unsigned GridX, unsigned BlockX, unsigned BlockY,
                KernelT Kernel) {
  blockDim.x = BlockX;
  blockDim.y = BlockY;
  gridDim.x = GridX;
  std::barrier<> Barrier(static_cast<long>(BlockX) * BlockY);
  cogentBarrier = &Barrier;
  for (unsigned Blk = 0; Blk < GridX; ++Blk) {
    blockIdx.x = Blk;
    std::vector<std::thread> Threads;
    for (unsigned Ty = 0; Ty < BlockY; ++Ty)
      for (unsigned Tx = 0; Tx < BlockX; ++Tx)
        Threads.emplace_back([=] {
          threadIdx.x = Tx;
          threadIdx.y = Ty;
          Kernel();
        });
    for (std::thread &T : Threads)
      T.join();
  }
}
#endif
)shim";

const char *cogent::testsupport::OpenClShimHeader = R"shim(
#ifndef COGENT_CL_SHIM_H
#define COGENT_CL_SHIM_H
#include <barrier>
#include <thread>
#include <vector>

inline unsigned shimGroupId;
inline unsigned shimNumGroups = 1;
inline thread_local unsigned shimLocalId0, shimLocalId1;
inline std::barrier<> *clShimBarrier = nullptr;

#define __kernel
#define __global
#define __local static
#define restrict
#define CLK_LOCAL_MEM_FENCE 0
inline void barrier(int) { clShimBarrier->arrive_and_wait(); }
inline unsigned get_local_id(unsigned Dim) {
  return Dim == 0 ? shimLocalId0 : shimLocalId1;
}
inline unsigned get_group_id(unsigned) { return shimGroupId; }
inline unsigned get_num_groups(unsigned) { return shimNumGroups; }

template <typename KernelT>
void launchShim(unsigned NumGroups, unsigned LocalX, unsigned LocalY,
                KernelT Kernel) {
  std::barrier<> Barrier(static_cast<long>(LocalX) * LocalY);
  clShimBarrier = &Barrier;
  shimNumGroups = NumGroups;
  for (unsigned G = 0; G < NumGroups; ++G) {
    shimGroupId = G;
    std::vector<std::thread> Threads;
    for (unsigned Ty = 0; Ty < LocalY; ++Ty)
      for (unsigned Tx = 0; Tx < LocalX; ++Tx)
        Threads.emplace_back([=] {
          shimLocalId0 = Tx;
          shimLocalId1 = Ty;
          Kernel();
        });
    for (std::thread &T : Threads)
      T.join();
  }
}
#endif
)shim";

std::string cogent::testsupport::emitHarnessMain(const Contraction &TC,
                                                 const KernelPlan &Plan,
                                                 const std::string &KernelName,
                                                 int64_t LaunchGroups,
                                                 bool OpenCl) {
  std::vector<char> All = TC.allIndices();
  std::ostringstream OS;
  OS << "#include <cmath>\n#include <cstdio>\n#include <vector>\n";
  OS << "int main() {\n";
  OS << "  const int NumIdx = " << All.size() << ";\n";
  auto arrayOf = [&](const char *Name, auto ValueOf) {
    OS << "  const long long " << Name << "[] = {";
    for (size_t I = 0; I < All.size(); ++I)
      OS << (I ? ", " : "") << ValueOf(All[I]);
    OS << "};\n";
  };
  arrayOf("Ext", [&](char N) { return TC.extent(N); });
  arrayOf("StrA", [&](char N) {
    return TC.contains(Operand::A, N) ? TC.strideIn(Operand::A, N) : 0;
  });
  arrayOf("StrB", [&](char N) {
    return TC.contains(Operand::B, N) ? TC.strideIn(Operand::B, N) : 0;
  });
  arrayOf("StrC", [&](char N) {
    return TC.contains(Operand::C, N) ? TC.strideIn(Operand::C, N) : 0;
  });
  OS << "  std::vector<double> A(" << TC.numElements(Operand::A) << "), B("
     << TC.numElements(Operand::B) << ");\n";
  OS << "  std::vector<double> C(" << TC.numElements(Operand::C)
     << ", 0.0), Ref(" << TC.numElements(Operand::C) << ", 0.0);\n";
  OS << "  unsigned long long S = 88172645463325252ULL;\n";
  OS << "  auto next = [&]() { S ^= S << 13; S ^= S >> 7; S ^= S << 17;\n";
  OS << "    return (double)(S % 2001) / 1000.0 - 1.0; };\n";
  OS << "  for (double &V : A) V = next();\n";
  OS << "  for (double &V : B) V = next();\n";
  OS << "  long long Idx[NumIdx] = {};\n";
  OS << "  for (;;) {\n";
  OS << "    long long OffA = 0, OffB = 0, OffC = 0;\n";
  OS << "    for (int I = 0; I < NumIdx; ++I) {\n";
  OS << "      OffA += Idx[I] * StrA[I]; OffB += Idx[I] * StrB[I];\n";
  OS << "      OffC += Idx[I] * StrC[I];\n";
  OS << "    }\n";
  OS << "    Ref[OffC] += A[OffA] * B[OffB];\n";
  OS << "    int D = 0;\n";
  OS << "    for (; D < NumIdx; ++D) { if (++Idx[D] < Ext[D]) break; "
        "Idx[D] = 0; }\n";
  OS << "    if (D == NumIdx) break;\n";
  OS << "  }\n";
  OS << "  launchShim("
     << (LaunchGroups > 0 ? LaunchGroups : Plan.numBlocks()) << ", "
     << Plan.tbX() << ", " << Plan.tbY() << ", [&] {\n";
  OS << "    " << KernelName << "(C.data(), A.data(), B.data()";
  for (char Name : All)
    OS << ", " << TC.extent(Name);
  OS << ");\n  });\n";
  OS << "  double MaxDiff = 0.0;\n";
  OS << "  for (size_t I = 0; I < C.size(); ++I)\n";
  OS << "    MaxDiff = std::max(MaxDiff, std::fabs(C[I] - Ref[I]));\n";
  OS << "  std::printf(\"maxdiff=%g\\n\", MaxDiff);\n";
  OS << "  return MaxDiff < 1e-10 ? 0 : 1;\n";
  OS << "}\n";
  (void)OpenCl; // the harness text is dialect-independent
  return OS.str();
}

int cogent::testsupport::compileAndRunKernel(
    const Contraction &TC, const core::KernelConfig &Config,
    const std::string &Tag, const core::CodeGenOptions &Options,
    int64_t LaunchGroups, bool OpenCl) {
  KernelPlan Plan(TC, Config);
  core::GeneratedSource Source =
      OpenCl ? emitOpenCl(Plan, Options) : emitCuda(Plan, Options);

  std::string Dir = ::testing::TempDir() + "cogent_shim_" + Tag;
  EXPECT_EQ(std::system(("mkdir -p " + Dir).c_str()), 0);
  {
    std::ofstream Shim(Dir + "/shim.h");
    Shim << (OpenCl ? OpenClShimHeader : CudaShimHeader);
  }
  {
    std::ofstream Main(Dir + "/main.cpp");
    Main << "#include \"shim.h\"\n\n"
         << Source.KernelSource << "\n"
         << emitHarnessMain(TC, Plan, Source.KernelName, LaunchGroups,
                            OpenCl);
  }
  std::string Compile = "g++ -std=c++20 -O1 -pthread -o " + Dir + "/run " +
                        Dir + "/main.cpp 2> " + Dir + "/compile.log";
  if (std::system(Compile.c_str()) != 0) {
    std::ifstream Log(Dir + "/compile.log");
    std::stringstream Buffer;
    Buffer << Log.rdbuf();
    ADD_FAILURE() << "generated source failed to compile:\n"
                  << Buffer.str();
    return -1;
  }
  return std::system((Dir + "/run > " + Dir + "/run.log").c_str());
}
