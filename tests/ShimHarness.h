//===- tests/ShimHarness.h - Shared compile-and-execute test support -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the strongest validation in the suite: write the
/// emitted CUDA/OpenCL source to disk with an execution-model shim (one OS
/// thread per GPU thread, std::barrier for the block barrier), compile it
/// with the host compiler, run it against a generic reference contraction,
/// and report the child's exit status.
///
//===----------------------------------------------------------------------===//

#ifndef COGENT_TESTS_SHIMHARNESS_H
#define COGENT_TESTS_SHIMHARNESS_H

#include "core/CodeGen.h"
#include "core/KernelPlan.h"

#include <cstdint>
#include <string>

namespace cogent {
namespace testsupport {

/// The CUDA execution-model shim header text.
extern const char *CudaShimHeader;

/// The OpenCL execution-model shim header text.
extern const char *OpenClShimHeader;

/// Emits a standalone main(): deterministic inputs, generic stride-array
/// reference, a launch of \p KernelName through the shim, comparison, and
/// exit status 0 on agreement. \p LaunchGroups = 0 launches one block per
/// output tile.
std::string emitHarnessMain(const ir::Contraction &TC,
                            const core::KernelPlan &Plan,
                            const std::string &KernelName,
                            int64_t LaunchGroups, bool OpenCl);

/// Emits the kernel for \p Config with \p Options, writes shim + harness to
/// a temp dir tagged \p Tag, compiles with g++ and runs. Returns the child
/// exit code (0 == outputs matched); adds a gtest failure with the compile
/// log when compilation fails and returns -1.
int compileAndRunKernel(const ir::Contraction &TC,
                        const core::KernelConfig &Config,
                        const std::string &Tag,
                        const core::CodeGenOptions &Options =
                            core::CodeGenOptions(),
                        int64_t LaunchGroups = 0, bool OpenCl = false);

} // namespace testsupport
} // namespace cogent

#endif // COGENT_TESTS_SHIMHARNESS_H
