//===- tests/test_api_contracts.cpp - Public API contract tests ------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::Cogent;
using core::CogentOptions;
using ir::Contraction;
using ir::Operand;

namespace {

TEST(CogentApi, TopKZeroIsClampedToOne) {
  Cogent Generator(gpu::makeV100());
  ir::Contraction TC = *Contraction::parseUniform("ij-ik-kj", 512);
  CogentOptions Options;
  Options.TopK = 0;
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(Result->Kernels.size(), 1u);
}

TEST(CogentApi, TopKLargerThanSurvivorsReturnsAll) {
  Cogent Generator(gpu::makeV100());
  ir::Contraction TC = *Contraction::parseUniform("ij-ik-kj", 512);
  CogentOptions Options;
  Options.TopK = 1000000;
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(Result->Kernels.size(), Result->Stats.Survivors);
}

TEST(CogentApi, ElementSizePropagatesToEnumerationAndEmission) {
  Cogent Generator(gpu::makeV100());
  ir::Contraction TC = *Contraction::parseUniform("abcd-aebf-dfce", 72);
  CogentOptions Sp;
  Sp.ElementSize = 4;
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Sp);
  ASSERT_TRUE(Result.hasValue());
  // Emitted type reflects the element size...
  EXPECT_NE(Result->best().Source.KernelSource.find("float r_C"),
            std::string::npos);
  // ...and the hardware check used the 4-byte footprint.
  EXPECT_LE(Result->best().Config.smemBytes(4),
            static_cast<int64_t>(gpu::makeV100().SharedMemPerBlock));
}

TEST(CogentApi, ErrorMessagesAreActionable) {
  Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result =
      Generator.generate("abcd-aebf", {{'a', 4}});
  ASSERT_FALSE(Result.hasValue());
  EXPECT_NE(Result.errorMessage().find("three"), std::string::npos);
}

TEST(CogentApi, DeviceIsObservable) {
  Cogent Generator(gpu::makeP100());
  EXPECT_EQ(Generator.device().Name, "P100");
}

TEST(CogentApi, StatsPrunedFractionInRange) {
  Cogent Generator(gpu::makeV100());
  ir::Contraction TC = *Contraction::parseUniform("abcdef-gdab-efgc", 16);
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_GE(Result->Stats.prunedFraction(), 0.0);
  EXPECT_LE(Result->Stats.prunedFraction(), 1.0);
}

TEST(CogentApi, ExplainKernelCoversTheDecision) {
  Cogent Generator(gpu::makeV100());
  ir::Contraction TC = *Contraction::parseUniform("abcdef-gdab-efgc", 16);
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  std::string Report =
      core::explainKernel(TC, Result->best(), Generator.device());
  // One row per loop index with kind and reuse tensor.
  for (char Name : TC.allIndices())
    EXPECT_NE(Report.find(std::string("  ") + Name + "    "),
              std::string::npos)
        << Name;
  EXPECT_NE(Report.find("internal"), std::string::npos);
  EXPECT_NE(Report.find("occupancy"), std::string::npos);
  EXPECT_NE(Report.find("roofline"), std::string::npos);
  EXPECT_NE(Report.find("transactions"), std::string::npos);
  EXPECT_NE(Report.find(Result->best().Config.toString()),
            std::string::npos);
}

#if GTEST_HAS_DEATH_TEST
TEST(ApiDeath, SimulatorRejectsMismatchedOperands) {
  ir::Contraction TC = *Contraction::parseUniform("ij-ik-kj", 8);
  core::KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'i', 8}};
  Config.TBy = {{'j', 8}};
  Config.TBk = {{'k', 8}};
  core::KernelPlan Plan(TC, Config);
  tensor::Tensor<double> C({8, 8}), A({8, 8}), BadB({4, 4});
  EXPECT_DEATH(gpu::simulateKernel(Plan, C, A, BadB),
               "operand sizes do not match");
}

TEST(ApiDeath, PlanRequiresValidConfig) {
  ir::Contraction TC = *Contraction::parseUniform("ij-ik-kj", 8);
  core::KernelConfig Bad;
  Bad.XInput = Operand::A;
  Bad.TBx = {{'j', 8}}; // TBx must start with the output FVI 'i'
  EXPECT_DEATH(core::KernelPlan(TC, Bad), "bad config");
}

TEST(ApiDeath, TensorBoundsChecked) {
  tensor::Tensor<double> T({2, 2});
  EXPECT_DEATH((void)T.at(4), "out of range");
}
#endif

} // namespace
