//===- tests/test_baselines.cpp - Baseline framework tests -----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baselines/NwchemGen.h"
#include "baselines/TcTuner.h"
#include "baselines/Ttgt.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

using namespace cogent;
using ir::Contraction;
using ir::Operand;
using tensor::Tensor;

namespace {

Contraction parse(const std::string &Spec, int64_t Extent) {
  ErrorOr<Contraction> TC = Contraction::parseUniform(Spec, Extent);
  EXPECT_TRUE(TC.hasValue()) << Spec;
  return *TC;
}

// --- TTGT ----------------------------------------------------------------

TEST(TtgtPlan, Eq1Matricization) {
  Contraction TC = parse("abcd-aebf-dfce", 8);
  baselines::TtgtPlan Plan = baselines::planTtgt(TC);
  // Externals of A = {a, b}, of B = {c, d}, internals = {e, f}.
  EXPECT_EQ(Plan.M, 64);
  EXPECT_EQ(Plan.N, 64);
  EXPECT_EQ(Plan.K, 64);
  // A = [a,e,b,f] -> TA = [a,b,e,f]: not identity.
  EXPECT_FALSE(Plan.PermAIsIdentity);
  EXPECT_EQ(Plan.PermA, (std::vector<unsigned>{0, 2, 1, 3}));
  // MC = [a,b,c,d] == C: identity.
  EXPECT_TRUE(Plan.PermCIsIdentity);
}

TEST(TtgtPlan, IdentityPipelinesDetected) {
  // C[a,b,c,d] = A[e,a] * B[e,b,c,d]: TA needs [a,e] (swap), TB is already
  // [e,b,c,d], MC == C.
  Contraction TC = parse("abcd-ea-ebcd", 6);
  baselines::TtgtPlan Plan = baselines::planTtgt(TC);
  EXPECT_FALSE(Plan.PermAIsIdentity);
  EXPECT_TRUE(Plan.PermBIsIdentity);
  EXPECT_TRUE(Plan.PermCIsIdentity);
  EXPECT_EQ(Plan.M, 6);
  EXPECT_EQ(Plan.K, 6);
  EXPECT_EQ(Plan.N, 216);
}

TEST(Ttgt, MatchesReferenceOnEq1) {
  Contraction TC = parse("abcd-aebf-dfce", 6);
  Rng Generator(21);
  Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
  Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  Tensor<double> Expected = tensor::makeOperand<double>(TC, Operand::C);
  tensor::contractReference(TC, Expected, A, B);
  Tensor<double> Actual = tensor::makeOperand<double>(TC, Operand::C);
  baselines::runTtgt(TC, Actual, A, B);
  EXPECT_LT(tensor::maxAbsDifference(Expected, Actual), 1e-10);
}

/// TTGT functional execution equals the reference on every suite entry at
/// scaled sizes — including entries whose final permutation is non-trivial.
class TtgtSuite : public ::testing::TestWithParam<int> {};

TEST_P(TtgtSuite, MatchesReferenceScaled) {
  const suite::SuiteEntry &Entry = suite::suiteEntry(GetParam());
  Contraction TC = Entry.contractionScaled(5);
  Rng Generator(100 + GetParam());
  Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
  Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  Tensor<double> Expected = tensor::makeOperand<double>(TC, Operand::C);
  tensor::contractReference(TC, Expected, A, B);
  Tensor<double> Actual = tensor::makeOperand<double>(TC, Operand::C);
  baselines::runTtgt(TC, Actual, A, B);
  EXPECT_LT(tensor::maxAbsDifference(Expected, Actual), 1e-10)
      << Entry.Spec;
}

INSTANTIATE_TEST_SUITE_P(Tccg, TtgtSuite, ::testing::Range(1, 49));

TEST(Ttgt, FloatPath) {
  Contraction TC = parse("abc-bda-dc", 5);
  Rng Generator(3);
  Tensor<float> A = tensor::makeOperand<float>(TC, Operand::A);
  Tensor<float> B = tensor::makeOperand<float>(TC, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  Tensor<float> Expected = tensor::makeOperand<float>(TC, Operand::C);
  tensor::contractReference(TC, Expected, A, B);
  Tensor<float> Actual = tensor::makeOperand<float>(TC, Operand::C);
  baselines::runTtgt(TC, Actual, A, B);
  EXPECT_LT(tensor::maxAbsDifference(Expected, Actual), 1e-3);
}

TEST(TtgtEstimate, AccountsForEveryStage) {
  Contraction TC = parse("abcdef-gdab-efgc", 16); // sd2_1
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  baselines::TtgtEstimate Est = baselines::estimateTtgt(TC, Device, Calib, 8);
  EXPECT_GT(Est.TransposeMs, 0.0);
  EXPECT_GT(Est.GemmMs, 0.0);
  EXPECT_GE(Est.TimeMs, Est.TransposeMs + Est.GemmMs);
  EXPECT_GT(Est.Gflops, 0.0);
  EXPECT_GT(Est.WorkspaceBytes, 0.0); // TTGT's extra temporary space
  EXPECT_GE(Est.KernelLaunches, 3u);
}

TEST(TtgtEstimate, TransposeDominatedOnCcsdT) {
  // The paper's central observation: on the 6D CCSD(T) contractions the
  // transposition time dominates and TTGT collapses.
  Contraction TC = parse("abcdef-gdab-efgc", 16);
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  baselines::TtgtEstimate Est = baselines::estimateTtgt(TC, Device, Calib, 8);
  EXPECT_GT(Est.TransposeMs, Est.GemmMs);
}

TEST(TtgtEstimate, GemmDominatedOn4D4D4D) {
  // ...while on 4D = 4D * 4D cases the GEMM dwarfs the transposes.
  Contraction TC = parse("abcd-aebf-dfce", 72);
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  baselines::TtgtEstimate Est = baselines::estimateTtgt(TC, Device, Calib, 8);
  EXPECT_GT(Est.GemmMs, Est.TransposeMs);
}

// --- NWChem-style generator ----------------------------------------------

TEST(NwchemGen, ProducesValidConfigForWholeSuite) {
  for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
    Contraction TC = Entry.contraction();
    core::KernelConfig Config = baselines::nwchemConfig(TC);
    EXPECT_EQ(Config.validate(TC), "") << Entry.Spec;
  }
}

TEST(NwchemGen, RespectsTargets) {
  Contraction TC = parse("abcd-aebf-dfce", 72);
  baselines::NwchemHeuristic Heuristic;
  core::KernelConfig Config = baselines::nwchemConfig(TC, Heuristic);
  EXPECT_LE(Config.tbxSize(), Heuristic.TBTarget);
  EXPECT_LE(Config.tbySize(), Heuristic.TBTarget);
  EXPECT_LE(Config.regXSize(), Heuristic.RegTarget);
  EXPECT_LE(Config.regYSize(), Heuristic.RegTarget);
  EXPECT_LE(Config.tbkSize(), Heuristic.TBkTarget);
}

TEST(NwchemGen, DeterministicHeuristic) {
  Contraction TC = parse("abcdef-gdab-efgc", 16);
  EXPECT_EQ(baselines::nwchemConfig(TC).toString(),
            baselines::nwchemConfig(TC).toString());
}

TEST(NwchemGen, EstimatePositive) {
  Contraction TC = parse("abcdef-gdab-efgc", 16);
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::PerfEstimate Est = baselines::estimateNwchem(
      TC, Device, gpu::makeCalibration(Device), 8);
  EXPECT_GT(Est.Gflops, 0.0);
  EXPECT_LT(Est.Gflops, Device.PeakGflopsDouble);
}

// --- TC-style genetic tuner ----------------------------------------------

TEST(TcTuner, BestCurveIsMonotone) {
  Contraction TC = parse("abcdef-gdab-efgc", 16);
  baselines::TcTunerOptions Options;
  Options.PopulationSize = 20;
  Options.Generations = 8;
  baselines::TcTuneResult Result =
      baselines::tuneTc(TC, gpu::makeV100(), Options);
  ASSERT_EQ(Result.BestGflopsPerGeneration.size(), 8u);
  for (size_t I = 1; I < Result.BestGflopsPerGeneration.size(); ++I)
    EXPECT_GE(Result.BestGflopsPerGeneration[I],
              Result.BestGflopsPerGeneration[I - 1]);
  EXPECT_DOUBLE_EQ(Result.BestGflops,
                   Result.BestGflopsPerGeneration.back());
}

TEST(TcTuner, TuningBeatsUntuned) {
  Contraction TC = parse("abcdef-gdab-efgc", 16);
  baselines::TcTunerOptions Options;
  Options.PopulationSize = 30;
  Options.Generations = 5;
  baselines::TcTuneResult Result =
      baselines::tuneTc(TC, gpu::makeV100(), Options);
  EXPECT_GT(Result.BestGflops, Result.UntunedGflops);
  // The untuned naive schedule runs at single-digit GFLOPS, as in Fig. 8.
  EXPECT_LT(Result.UntunedGflops, 10.0);
}

TEST(TcTuner, BestConfigIsValid) {
  Contraction TC = parse("abcd-aebf-dfce", 24);
  baselines::TcTunerOptions Options;
  Options.PopulationSize = 20;
  Options.Generations = 5;
  baselines::TcTuneResult Result =
      baselines::tuneTc(TC, gpu::makeV100(), Options);
  EXPECT_EQ(Result.BestConfig.validate(TC), "");
}

TEST(TcTuner, DeterministicBySeed) {
  Contraction TC = parse("abcd-aebf-dfce", 24);
  baselines::TcTunerOptions Options;
  Options.PopulationSize = 15;
  Options.Generations = 4;
  baselines::TcTuneResult First =
      baselines::tuneTc(TC, gpu::makeV100(), Options);
  baselines::TcTuneResult Second =
      baselines::tuneTc(TC, gpu::makeV100(), Options);
  EXPECT_EQ(First.BestGflopsPerGeneration,
            Second.BestGflopsPerGeneration);
}

TEST(TcTuner, ModeledTuningTimeScalesWithEvaluations) {
  Contraction TC = parse("abcd-aebf-dfce", 24);
  baselines::TcTunerOptions Options;
  Options.PopulationSize = 10;
  Options.Generations = 3;
  Options.SecondsPerCandidate = 2.0;
  baselines::TcTuneResult Result =
      baselines::tuneTc(TC, gpu::makeV100(), Options);
  EXPECT_DOUBLE_EQ(Result.ModeledTuningSeconds,
                   2.0 * Result.CandidatesEvaluated);
  // Population 10 evaluated up front, then 9 children per generation
  // (elitism carries one forward) for two more generations.
  EXPECT_EQ(Result.CandidatesEvaluated, 10u + 2u * 9u);
}

} // namespace
