//===- tests/test_bench_common.cpp - Figure-harness + headline claims ------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks in the paper's headline comparative claims as regression tests
/// over the figure harness: CCSD(T) dominance over TTGT, the NWChem gap,
/// TTGT's strength on the 4D = 4D * 4D family, and the V100-over-P100
/// scaling. If a calibration change breaks the reproduced shape, these
/// fail.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <gtest/gtest.h>

#include <map>

using namespace cogent;
using bench::ComparisonRow;

namespace {

const std::vector<ComparisonRow> &v100Rows() {
  static const std::vector<ComparisonRow> Rows =
      bench::runTccgComparison(gpu::makeV100(), 8);
  return Rows;
}

const std::vector<ComparisonRow> &p100Rows() {
  static const std::vector<ComparisonRow> Rows =
      bench::runTccgComparison(gpu::makeP100(), 8);
  return Rows;
}

std::vector<ComparisonRow> rowsOf(const std::vector<ComparisonRow> &All,
                                  const std::string &Category) {
  std::vector<ComparisonRow> Out;
  for (const ComparisonRow &Row : All)
    if (Row.Category == Category)
      Out.push_back(Row);
  return Out;
}

TEST(FigureHarness, FortyEightRowsAllPopulated) {
  const std::vector<ComparisonRow> &Rows = v100Rows();
  ASSERT_EQ(Rows.size(), 48u);
  for (const ComparisonRow &Row : Rows) {
    EXPECT_GT(Row.CogentGflops, 0.0) << Row.Name;
    EXPECT_GT(Row.NwchemGflops, 0.0) << Row.Name;
    EXPECT_GT(Row.TalshGflops, 0.0) << Row.Name;
    EXPECT_FALSE(Row.CogentConfig.empty()) << Row.Name;
  }
}

TEST(HeadlineClaims, CcsdTDominanceOverTtgt) {
  // Paper: 4.4x geomean over TAL_SH on V100, driven by CCSD(T), where the
  // per-entry gap exceeds 5x.
  for (const ComparisonRow &Row : rowsOf(v100Rows(), "CCSD(T)"))
    EXPECT_GT(Row.CogentGflops / Row.TalshGflops, 4.0) << Row.Name;
  for (const ComparisonRow &Row : rowsOf(p100Rows(), "CCSD(T)"))
    EXPECT_GT(Row.CogentGflops / Row.TalshGflops, 3.0) << Row.Name;
}

TEST(HeadlineClaims, CcsdTAbsoluteRanges) {
  // Paper: COGENT 1800-2100 GFLOPS on V100 CCSD(T), 1050-1300 on P100.
  for (const ComparisonRow &Row : rowsOf(v100Rows(), "CCSD(T)")) {
    EXPECT_GT(Row.CogentGflops, 1500.0) << Row.Name;
    EXPECT_LT(Row.CogentGflops, 2500.0) << Row.Name;
  }
  for (const ComparisonRow &Row : rowsOf(p100Rows(), "CCSD(T)")) {
    EXPECT_GT(Row.CogentGflops, 800.0) << Row.Name;
    EXPECT_LT(Row.CogentGflops, 1500.0) << Row.Name;
  }
}

TEST(HeadlineClaims, NwchemGapGeomean) {
  // Paper: 1.7x geomean on V100 (max 5.1x), 1.69x on P100.
  double V100 = bench::geomeanSpeedup(v100Rows(), /*UseNwchem=*/true);
  EXPECT_GT(V100, 1.3);
  EXPECT_LT(V100, 2.2);
  double P100 = bench::geomeanSpeedup(p100Rows(), true);
  EXPECT_GT(P100, 1.2);
  EXPECT_LT(P100, 2.2);
}

TEST(HeadlineClaims, TtgtStrongOn4D4D4D) {
  // Paper: TAL_SH achieves very good performance on the 12th and 20th-30th
  // benchmarks (4D = 4D * 4D); COGENT is merely competitive there.
  const int FourDIds[] = {12, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30};
  const std::vector<ComparisonRow> &Rows = p100Rows();
  int TalshWins = 0;
  for (int Id : FourDIds) {
    const ComparisonRow &Row = Rows[static_cast<size_t>(Id - 1)];
    TalshWins += Row.TalshGflops > Row.CogentGflops;
  }
  EXPECT_GE(TalshWins, 6) << "TTGT should win most 4D=4D*4D cases on P100";
}

TEST(HeadlineClaims, V100FasterThanP100Everywhere) {
  const std::vector<ComparisonRow> &V = v100Rows();
  const std::vector<ComparisonRow> &P = p100Rows();
  ASSERT_EQ(V.size(), P.size());
  for (size_t I = 0; I < V.size(); ++I)
    EXPECT_GT(V[I].CogentGflops, P[I].CogentGflops) << V[I].Name;
}

TEST(HeadlineClaims, GenerationIsFast) {
  // Paper: model-driven generation takes seconds (vs TC's hours); here the
  // entire suite generates in well under a second per entry.
  for (const ComparisonRow &Row : v100Rows())
    EXPECT_LT(Row.CogentElapsedMs, 1000.0) << Row.Name;
}

TEST(FigureHarness, GeomeanHelperMatchesHandComputation) {
  std::vector<ComparisonRow> Rows(2);
  Rows[0].CogentGflops = 200;
  Rows[0].NwchemGflops = 100;
  Rows[0].TalshGflops = 50;
  Rows[1].CogentGflops = 100;
  Rows[1].NwchemGflops = 200;
  Rows[1].TalshGflops = 100;
  // Speedups vs NWChem: 2.0 and 0.5 -> geomean 1.0.
  EXPECT_NEAR(bench::geomeanSpeedup(Rows, true), 1.0, 1e-12);
  // vs TAL_SH: 4.0 and 1.0 -> geomean 2.0.
  EXPECT_NEAR(bench::geomeanSpeedup(Rows, false), 2.0, 1e-12);
}

} // namespace
