//===- tests/test_blas.cpp - GEMM substrate tests --------------------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "blas/Gemm.h"
#include "blas/GemmModel.h"

#include "gpu/DeviceSpec.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace cogent;

namespace {

/// Naive oracle: column-major C = alpha A B + beta C.
template <typename T>
void gemmNaive(int64_t M, int64_t N, int64_t K, T Alpha, const T *A,
               int64_t Lda, const T *B, int64_t Ldb, T Beta, T *C,
               int64_t Ldc) {
  for (int64_t J = 0; J < N; ++J)
    for (int64_t I = 0; I < M; ++I) {
      double Acc = 0;
      for (int64_t Kk = 0; Kk < K; ++Kk)
        Acc += static_cast<double>(A[I + Kk * Lda]) * B[Kk + J * Ldb];
      C[I + J * Ldc] =
          static_cast<T>(Alpha * Acc + Beta * C[I + J * Ldc]);
    }
}

TEST(Gemm, HandComputed2x2) {
  // A = [1 3; 2 4], B = [5 7; 6 8] (column-major).
  std::vector<double> A = {1, 2, 3, 4}, B = {5, 6, 7, 8}, C(4, 0.0);
  blas::gemm<double>(2, 2, 2, 1.0, A.data(), 2, B.data(), 2, 0.0, C.data(),
                     2);
  EXPECT_DOUBLE_EQ(C[0], 23);
  EXPECT_DOUBLE_EQ(C[1], 34);
  EXPECT_DOUBLE_EQ(C[2], 31);
  EXPECT_DOUBLE_EQ(C[3], 46);
}

TEST(Gemm, BetaAccumulates) {
  std::vector<double> A = {1, 0, 0, 1}, B = {1, 2, 3, 4}, C = {10, 20, 30, 40};
  blas::gemm<double>(2, 2, 2, 1.0, A.data(), 2, B.data(), 2, 1.0, C.data(),
                     2);
  EXPECT_DOUBLE_EQ(C[0], 11);
  EXPECT_DOUBLE_EQ(C[3], 44);
}

TEST(Gemm, AlphaScales) {
  std::vector<double> A = {1, 0, 0, 1}, B = {1, 2, 3, 4}, C(4, 5.0);
  blas::gemm<double>(2, 2, 2, 2.0, A.data(), 2, B.data(), 2, 0.0, C.data(),
                     2);
  EXPECT_DOUBLE_EQ(C[0], 2);
  EXPECT_DOUBLE_EQ(C[1], 4);
}

TEST(Gemm, ZeroKOnlyScalesC) {
  std::vector<double> C = {1, 2};
  blas::gemm<double>(2, 1, 0, 1.0, nullptr, 2, nullptr, 1, 0.5, C.data(), 2);
  EXPECT_DOUBLE_EQ(C[0], 0.5);
  EXPECT_DOUBLE_EQ(C[1], 1.0);
}

TEST(Gemm, RespectsLeadingDimensions) {
  // 2x2 data embedded in larger leading dimensions.
  std::vector<double> A(3 * 2, -1), B(4 * 2, -1), C(5 * 2, 0.0);
  A[0] = 1;
  A[1] = 2;
  A[3] = 3;
  A[4] = 4; // Lda = 3
  B[0] = 5;
  B[1] = 6;
  B[4] = 7;
  B[5] = 8; // Ldb = 4
  blas::gemm<double>(2, 2, 2, 1.0, A.data(), 3, B.data(), 4, 0.0, C.data(),
                     5);
  EXPECT_DOUBLE_EQ(C[0], 23);
  EXPECT_DOUBLE_EQ(C[1], 34);
  EXPECT_DOUBLE_EQ(C[5], 31);
  EXPECT_DOUBLE_EQ(C[6], 46);
}

/// Property sweep: blocked GEMM equals the oracle across random shapes that
/// straddle the 64-element block boundaries.
class GemmProperty : public ::testing::TestWithParam<int> {};

TEST_P(GemmProperty, MatchesNaive) {
  Rng Generator(GetParam());
  int64_t M = Generator.uniformInt(1, 130);
  int64_t N = Generator.uniformInt(1, 130);
  int64_t K = Generator.uniformInt(1, 130);
  double Alpha = Generator.flip() ? 1.0 : -0.5;
  double Beta = Generator.flip() ? 0.0 : 2.0;

  std::vector<double> A(static_cast<size_t>(M * K));
  std::vector<double> B(static_cast<size_t>(K * N));
  std::vector<double> C(static_cast<size_t>(M * N));
  for (double &V : A)
    V = Generator.uniformReal(-1, 1);
  for (double &V : B)
    V = Generator.uniformReal(-1, 1);
  for (double &V : C)
    V = Generator.uniformReal(-1, 1);
  std::vector<double> Expected = C;

  blas::gemm<double>(M, N, K, Alpha, A.data(), M, B.data(), K, Beta,
                     C.data(), M);
  gemmNaive<double>(M, N, K, Alpha, A.data(), M, B.data(), K, Beta,
                    Expected.data(), M);
  double MaxDiff = 0;
  for (size_t I = 0; I < C.size(); ++I)
    MaxDiff = std::max(MaxDiff, std::abs(C[I] - Expected[I]));
  EXPECT_LT(MaxDiff, 1e-10) << "M=" << M << " N=" << N << " K=" << K;
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, GemmProperty, ::testing::Range(0, 25));

TEST(Gemm, FloatInstantiation) {
  std::vector<float> A = {1, 2, 3, 4}, B = {5, 6, 7, 8}, C(4, 0.0f);
  blas::gemm<float>(2, 2, 2, 1.0f, A.data(), 2, B.data(), 2, 0.0f, C.data(),
                    2);
  EXPECT_FLOAT_EQ(C[0], 23.0f);
}

// --- performance model ---------------------------------------------------

TEST(GemmModel, SquareBeatsSkinnyK) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  blas::GemmEstimate Square =
      blas::estimateGemm(Device, Calib, 4096, 4096, 4096, 8);
  blas::GemmEstimate SkinnyK =
      blas::estimateGemm(Device, Calib, 4096, 4096, 16, 8);
  EXPECT_GT(Square.EfficiencyVsPeak, SkinnyK.EfficiencyVsPeak);
}

TEST(GemmModel, LargeSquareNearsPeak) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  blas::GemmEstimate Est =
      blas::estimateGemm(Device, Calib, 8192, 8192, 8192, 8);
  EXPECT_GT(Est.EfficiencyVsPeak, 0.6);
  EXPECT_LT(Est.EfficiencyVsPeak, 1.0);
}

TEST(GemmModel, TileQuantizationPenalty) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  // 129 rows wastes nearly half of the second 128-row tile.
  blas::GemmEstimate Aligned =
      blas::estimateGemm(Device, Calib, 4096, 4096, 1024, 8);
  blas::GemmEstimate Ragged =
      blas::estimateGemm(Device, Calib, 4096 + 1, 4096, 1024, 8);
  EXPECT_GE(Aligned.Gflops, Ragged.Gflops);
}

TEST(GemmModel, SinglePrecisionFaster) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  blas::GemmEstimate Dp = blas::estimateGemm(Device, Calib, 4096, 4096,
                                             4096, 8);
  blas::GemmEstimate Sp = blas::estimateGemm(Device, Calib, 4096, 4096,
                                             4096, 4);
  EXPECT_GT(Sp.Gflops, Dp.Gflops);
}

TEST(GemmModel, TinyProblemDominatedByLaunch) {
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::Calibration Calib = gpu::makeCalibration(Device);
  blas::GemmEstimate Est = blas::estimateGemm(Device, Calib, 8, 8, 8, 8);
  EXPECT_GE(Est.TimeMs, Device.KernelLaunchOverheadUs * 1e-3);
  EXPECT_LT(Est.EfficiencyVsPeak, 0.01);
}

} // namespace
