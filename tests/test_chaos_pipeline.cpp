//===- tests/test_chaos_pipeline.cpp - Seed x site chaos sweeps ------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chaos harness (ctest label "chaos", registered only when
/// COGENT_CHAOS is configured ON): sweeps deterministic fault-injection
/// seeds across every named site and asserts the pipeline's hard contract
/// under fault — every run terminates within its GenerationBudget, every
/// returned plan passes the PlanVerifier against the real device, and
/// every injected fault is visible in GenerationResult::Counters. Also
/// pins determinism (same seed => same faults => same result) and the
/// repository cache's behavior under injected bit rot.
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelLint.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "core/KernelRepository.h"
#include "support/FaultInjection.h"
#include "verify/PlanVerifier.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cogent;
using core::Cogent;
using core::CogentOptions;
using core::FallbackLevel;
using ir::Contraction;
using support::ChaosSite;

namespace {

uint64_t counterValue(const support::CounterSnapshot &Snapshot,
                      const std::string &Name) {
  for (const support::CounterValue &CV : Snapshot)
    if (Name == CV.Name)
      return CV.Value;
  return 0;
}

/// Runs one chaos-armed generation and asserts the contract: termination
/// within budget, a non-empty verified result, and counter-recorded
/// firings. Returns the per-run firing count of \p Site.
uint64_t runOne(const Cogent &Generator, const Contraction &TC,
                uint64_t Seed, uint32_t Sites, ChaosSite Site,
                const verify::PlanVerifier &Verifier) {
  CogentOptions Options;
  Options.Chaos.Seed = Seed;
  Options.Chaos.Sites = Sites;
  Options.Budget.MaxConfigs = 512;
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
  EXPECT_TRUE(Result.hasValue())
      << "seed " << Seed << " site " << support::chaosSiteName(Site) << ": "
      << (Result.hasValue() ? std::string() : Result.errorMessage());
  if (!Result)
    return 0;

  // Terminated within the budget (the sweep completing at all is the
  // wall-clock half of the claim; the config cap is the enumerative half).
  EXPECT_LE(Result->Stats.Examined, 512u);
  EXPECT_FALSE(Result->empty());

  // Every returned plan passes the verifier against the *original* device
  // — chaos only ever shrinks the working limits, so anything verified
  // against the mutated spec must also fit the real one.
  const Contraction &PlanTC = Result->Fallback == FallbackLevel::TtgtBaseline
                                  ? *Result->FallbackContraction
                                  : TC;
  for (const core::GeneratedKernel &Kernel : Result->Kernels) {
    core::KernelPlan Plan(PlanTC, Kernel.Config);
    ErrorOr<void> Check = Verifier.verifyAll(Plan, Kernel.Cost, Kernel.Source);
    EXPECT_TRUE(Check.hasValue())
        << "seed " << Seed << " site " << support::chaosSiteName(Site) << ": "
        << Check.errorMessage();
  }

  // Firings are recorded in the run's counter delta, per site and total.
  uint64_t Fired = counterValue(
      Result->Counters,
      std::string("chaos.fired.") + support::chaosSiteName(Site));
  EXPECT_LE(Fired, counterValue(Result->Counters, "chaos.fired"));

  // The result flags agree with the counters for the sites that set them.
  if (Result->EnumerationAborted) {
    EXPECT_GT(counterValue(Result->Counters,
                           "chaos.fired.enumerator-alloc"), 0u);
  }
  if (Result->DeviceMutated) {
    EXPECT_GT(counterValue(Result->Counters, "chaos.fired.device-mutate"),
              0u);
  }
  return Fired;
}

TEST(ChaosPipeline, SweepSeedsAcrossEverySiteStaysVerified) {
  // >= 200 combinations: NumChaosSites (8) x 30 seeds = 240 single-site
  // runs. Each must terminate in budget and return verifier-clean plans.
  gpu::DeviceSpec Device = gpu::makeV100();
  Cogent Generator(Device);
  verify::PlanVerifier Verifier(Device, 8);
  Contraction TC = *Contraction::parseUniform("abc-abd-dc", 24);

  uint64_t TotalFired = 0;
  unsigned Combos = 0;
  for (unsigned SiteIdx = 0; SiteIdx < support::NumChaosSites; ++SiteIdx) {
    ChaosSite Site = static_cast<ChaosSite>(SiteIdx);
    for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
      TotalFired += runOne(Generator, TC, Seed,
                           support::chaosSiteBit(Site), Site, Verifier);
      ++Combos;
    }
  }
  EXPECT_GE(Combos, 200u);
  // The sweep genuinely injected faults: with FireProbability 0.25 and
  // hundreds of queries per pipeline site, a sweep with no firings at all
  // would mean the hooks are disconnected.
  EXPECT_GT(TotalFired, 50u);
}

TEST(ChaosPipeline, AllSitesAtOnceStillRescues) {
  // Every site armed simultaneously — the worst storm the layer can
  // produce — across 20 seeds and two contraction shapes.
  gpu::DeviceSpec Device = gpu::makeV100();
  Cogent Generator(Device);
  verify::PlanVerifier Verifier(Device, 8);
  for (const char *Spec : {"ab-ac-cb", "abcd-aebf-dfce"}) {
    Contraction TC = *Contraction::parseUniform(Spec, 16);
    for (uint64_t Seed = 1; Seed <= 20; ++Seed)
      runOne(Generator, TC, Seed, support::AllChaosSites,
             ChaosSite::CostPerturb, Verifier);
  }
}

TEST(ChaosPipeline, SameSeedInjectsIdenticalFaults) {
  gpu::DeviceSpec Device = gpu::makeV100();
  Cogent Generator(Device);
  Contraction TC = *Contraction::parseUniform("abc-abd-dc", 24);

  auto run = [&](uint64_t Seed) {
    CogentOptions Options;
    Options.Chaos.Seed = Seed;
    Options.Chaos.Sites = support::AllChaosSites;
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
    EXPECT_TRUE(Result.hasValue());
    return Result;
  };

  for (uint64_t Seed : {7ull, 19ull, 101ull}) {
    ErrorOr<core::GenerationResult> R1 = run(Seed);
    ErrorOr<core::GenerationResult> R2 = run(Seed);
    ASSERT_TRUE(R1.hasValue() && R2.hasValue());
    EXPECT_EQ(counterValue(R1->Counters, "chaos.fired"),
              counterValue(R2->Counters, "chaos.fired"))
        << "seed " << Seed;
    for (unsigned I = 0; I < support::NumChaosSites; ++I) {
      std::string Name = std::string("chaos.fired.") +
                         support::chaosSiteName(static_cast<ChaosSite>(I));
      EXPECT_EQ(counterValue(R1->Counters, Name),
                counterValue(R2->Counters, Name))
          << "seed " << Seed << " " << Name;
    }
    EXPECT_EQ(R1->VerifierRejections, R2->VerifierRejections);
    EXPECT_EQ(R1->LintRejections, R2->LintRejections);
    EXPECT_EQ(R1->Fallback, R2->Fallback);
    EXPECT_EQ(R1->DeviceMutated, R2->DeviceMutated);
    EXPECT_EQ(R1->EnumerationAborted, R2->EnumerationAborted);
    EXPECT_EQ(R1->best().Config.toString(), R2->best().Config.toString());
  }
}

TEST(ChaosPipeline, SitesAreIndependent) {
  // Arming an extra site must not shift the faults an already-armed site
  // injects: the device-mutate decision for a seed is the same whether it
  // is armed alone or alongside everything else.
  gpu::DeviceSpec Device = gpu::makeV100();
  Cogent Generator(Device);
  Contraction TC = *Contraction::parseUniform("ab-ac-cb", 24);
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    CogentOptions Alone;
    Alone.Chaos.Seed = Seed;
    Alone.Chaos.Sites = support::chaosSiteBit(ChaosSite::DeviceMutate);
    CogentOptions Together;
    Together.Chaos.Seed = Seed;
    Together.Chaos.Sites = support::AllChaosSites;
    ErrorOr<core::GenerationResult> R1 = Generator.generate(TC, Alone);
    ErrorOr<core::GenerationResult> R2 = Generator.generate(TC, Together);
    ASSERT_TRUE(R1.hasValue() && R2.hasValue());
    EXPECT_EQ(R1->DeviceMutated, R2->DeviceMutated) << "seed " << Seed;
  }
}

TEST(ChaosPipeline, RepositoryCacheSurvivesInjectedBitRot) {
  // Injected corruption of the on-disk cache must always resolve to a
  // typed error or a warned cache miss — never a crash, never silent
  // acceptance of corrupt entries.
  Cogent Generator(gpu::makeV100());
  std::string Path = ::testing::TempDir() + "cogent_chaos_repo.cache";
  {
    core::KernelRepository Repo(Generator, "ij-ik-kj");
    ASSERT_TRUE(Repo.addRepresentativeUniform(32).hasValue());
    ASSERT_TRUE(Repo.addRepresentativeUniform(256).hasValue());
    ASSERT_TRUE(Repo.saveToFile(Path).hasValue());
  }

  unsigned CleanLoads = 0, Rejections = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    support::ChaosOptions Chaos;
    Chaos.Seed = Seed;
    Chaos.Sites = support::chaosSiteBit(ChaosSite::RepositoryCorrupt);
    support::FaultInjector Injector(Chaos);
    support::ScopedChaosActivation Activation(&Injector);

    core::KernelRepository Repo(Generator, "ij-ik-kj");
    std::vector<Error> Warnings;
    ErrorOr<size_t> Loaded = Repo.loadFromFile(Path, &Warnings);
    if (!Loaded) {
      // The injected rot hit the version header: full typed miss.
      EXPECT_EQ(Loaded.errorCode(), ErrorCode::CorruptCache);
      ++Rejections;
      continue;
    }
    EXPECT_EQ(Repo.numVersions(), *Loaded);
    for (const Error &W : Warnings)
      EXPECT_EQ(W.code(), ErrorCode::CorruptCache);
    if (Injector.fired(ChaosSite::RepositoryCorrupt) == 0 &&
        Warnings.empty() && *Loaded == 2)
      ++CleanLoads;
  }
  // With FireProbability 0.25 over 40 seeds, both outcomes must occur.
  EXPECT_GT(Rejections, 0u);
  EXPECT_GT(CleanLoads, 0u);
}

TEST(ChaosPipeline, CodegenMutateIsCaughtByTheStrictLintGate) {
  // The codegen-mutate site corrupts emitted kernel source *after*
  // emission; the strict KernelLint gate is the only defense on that path.
  // Arm it alone: every run must still come back with a kernel, every
  // rejection must trace to a firing (never a false positive on a clean
  // source), and the kernel finally accepted must lint clean.
  gpu::DeviceSpec Device = gpu::makeV100();
  Cogent Generator(Device);
  Contraction TC = *Contraction::parseUniform("abc-abd-dc", 24);

  uint64_t TotalFired = 0, TotalRejected = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    CogentOptions Options;
    Options.Chaos.Seed = Seed;
    Options.Chaos.Sites = support::chaosSiteBit(ChaosSite::CodegenMutate);
    ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
    ASSERT_TRUE(Result.hasValue()) << "seed " << Seed;
    EXPECT_FALSE(Result->empty());

    uint64_t Fired =
        counterValue(Result->Counters, "chaos.fired.codegen-mutate");
    EXPECT_LE(Result->LintRejections, Fired) << "seed " << Seed;

    const Contraction &PlanTC =
        Result->Fallback == FallbackLevel::TtgtBaseline
            ? *Result->FallbackContraction
            : TC;
    core::KernelPlan Plan(PlanTC, Result->best().Config);
    analysis::LintReport Report =
        analysis::lintKernel(Plan, Result->best().Source.KernelSource);
    EXPECT_TRUE(Report.clean())
        << "seed " << Seed << ": "
        << (Report.Findings.empty() ? std::string()
                                    : Report.Findings.front().render());

    TotalFired += Fired;
    TotalRejected += Result->LintRejections;
  }
  // The sweep genuinely mutated sources and the gate genuinely caught
  // some: a zero in either place means the site or the gate is dead.
  EXPECT_GT(TotalFired, 0u);
  EXPECT_GT(TotalRejected, 0u);
}

TEST(ChaosPipeline, ChaosOffRunsAreUnaffected) {
  // The same options object with Sites == 0 must behave exactly like a
  // chaos-free run: no firings, no rejections, no fallback.
  Cogent Generator(gpu::makeV100());
  Contraction TC = *Contraction::parseUniform("abcd-aebf-dfce", 24);
  CogentOptions Options;
  Options.Chaos.Seed = 42; // a seed without sites is inert
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(counterValue(Result->Counters, "chaos.fired"), 0u);
  EXPECT_EQ(Result->VerifierRejections, 0u);
  EXPECT_EQ(Result->LintRejections, 0u);
  EXPECT_TRUE(Result->LintFindings.empty());
  EXPECT_EQ(Result->Fallback, FallbackLevel::None);
  EXPECT_FALSE(Result->DeviceMutated);
  EXPECT_FALSE(Result->EnumerationAborted);
}

} // namespace
