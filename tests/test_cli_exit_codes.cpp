//===- tests/test_cli_exit_codes.cpp - CLI exit-code discipline ------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the cogent_cli exit-code contract by invoking the real binary
/// (path injected via COGENT_CLI_PATH at configure time):
///
///   0  success — including verifier failures rescued by the fallback
///      chain, which print a one-line "# notice:" unless --quiet;
///   1  typed rejection (InvalidDeviceSpec, VerificationFailed, parse
///      errors) rendered as "error: <Code>: ...";
///   2  usage errors;
///   3  batch mode (--batch-file) completed but at least one request
///      failed with a typed per-request error.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace {

struct CliRun {
  int ExitCode = -1;
  std::string Output; // stdout + stderr interleaved
};

/// Runs the CLI with \p Args, capturing combined output and the exit code.
CliRun runCli(const std::string &Args) {
  CliRun Run;
  std::string Command = std::string(COGENT_CLI_PATH) + " " + Args + " 2>&1";
  std::FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return Run;
  char Buffer[4096];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), Pipe)) > 0)
    Run.Output.append(Buffer, Got);
  int Status = pclose(Pipe);
  if (WIFEXITED(Status))
    Run.ExitCode = WEXITSTATUS(Status);
  return Run;
}

TEST(CliExitCodes, CleanRunExitsZero) {
  CliRun Run = runCli("ab-ac-cb 24 --quiet");
  EXPECT_EQ(Run.ExitCode, 0) << Run.Output;
  EXPECT_EQ(Run.Output.find("# notice:"), std::string::npos) << Run.Output;
}

TEST(CliExitCodes, UnrescuedVerificationFailureExitsNonZeroTyped) {
  // 8 bytes of staging memory passes DeviceSpec::validate but cannot host
  // even the TTGT kernel: the verifier rejects every fallback rung and the
  // CLI must exit non-zero with the typed error rendered.
  CliRun Run = runCli("ab-ac-cb 24 --smem-per-block 8");
  EXPECT_EQ(Run.ExitCode, 1) << Run.Output;
  EXPECT_NE(Run.Output.find("error: VerificationFailed"), std::string::npos)
      << Run.Output;
}

TEST(CliExitCodes, InvalidDeviceExitsNonZeroTyped) {
  CliRun Run = runCli("ab-ac-cb 24 --smem-per-block 0");
  EXPECT_EQ(Run.ExitCode, 1) << Run.Output;
  EXPECT_NE(Run.Output.find("error: InvalidDeviceSpec"), std::string::npos)
      << Run.Output;
}

TEST(CliExitCodes, UsageErrorExitsTwo) {
  EXPECT_EQ(runCli("ab-ac-cb 24 --no-such-flag").ExitCode, 2);
  EXPECT_EQ(runCli("").ExitCode, 2);
  EXPECT_EQ(runCli("ab-ac-cb 24 --chaos-sites no-such-site").ExitCode, 2);
}

/// Writes \p Contents to a scratch batch file and returns its path.
std::string writeBatchFile(const std::string &Name,
                           const std::string &Contents) {
  std::string Path =
      ::testing::TempDir() + "cogent_cli_batch_" + Name + ".txt";
  std::ofstream Out(Path, std::ios::trunc);
  Out << Contents;
  return Path;
}

TEST(CliExitCodes, BatchAllOkExitsZero) {
  std::string Path = writeBatchFile("ok", "# warm then duplicate\n"
                                          "ab-ac-cb 24\n"
                                          "ab-ac-cb 24\n"
                                          "\n"
                                          "abc-abd-dc 12\n");
  CliRun Run = runCli("--batch-file " + Path + " --jobs 2");
  EXPECT_EQ(Run.ExitCode, 0) << Run.Output;
  EXPECT_NE(Run.Output.find("# batch:"), std::string::npos) << Run.Output;
  std::remove(Path.c_str());
}

TEST(CliExitCodes, BatchWithTypedPerRequestErrorExitsThree) {
  // A malformed spec fails its own request with a typed error but must
  // not sink the batch: the good line still completes and the summary
  // exit code is 3, distinguishable from infrastructure failure (1).
  std::string Path = writeBatchFile("mixed", "ab-ac-cb 24\n"
                                             "not-a-valid-spec!! 24\n");
  CliRun Run = runCli("--batch-file " + Path);
  EXPECT_EQ(Run.ExitCode, 3) << Run.Output;
  EXPECT_NE(Run.Output.find("# ok:"), std::string::npos) << Run.Output;
  EXPECT_NE(Run.Output.find("error:"), std::string::npos) << Run.Output;
  std::remove(Path.c_str());
}

TEST(CliExitCodes, BatchBadExtentLineExitsThree) {
  std::string Path = writeBatchFile("extent", "ab-ac-cb 0\n"
                                              "ab-ac-cb 16\n");
  CliRun Run = runCli("--batch-file " + Path + " --quiet");
  EXPECT_EQ(Run.ExitCode, 3) << Run.Output;
  EXPECT_NE(Run.Output.find("error: line 1"), std::string::npos)
      << Run.Output;
  std::remove(Path.c_str());
}

TEST(CliExitCodes, BatchUnreadableFileExitsOne) {
  CliRun Run = runCli("--batch-file /no/such/dir/batch.txt");
  EXPECT_EQ(Run.ExitCode, 1) << Run.Output;
  EXPECT_NE(Run.Output.find("error:"), std::string::npos) << Run.Output;
}

TEST(CliExitCodes, BatchUsageErrorsExitTwo) {
  std::string Path = writeBatchFile("usage", "ab-ac-cb 16\n");
  EXPECT_EQ(runCli("--batch-file " + Path + " --jobs -1").ExitCode, 2);
  EXPECT_EQ(runCli("--batch-file").ExitCode, 2); // missing operand
  std::remove(Path.c_str());
}

TEST(CliExitCodes, BatchRequestDeadlineStillCompletesBatch) {
  // A microscopic per-request deadline forces the degraded rungs, never
  // a hang or an unexplained failure: the batch still exits 0.
  std::string Path = writeBatchFile("deadline", "ab-ac-cb 24\n"
                                                "abc-abd-dc 12\n");
  CliRun Run =
      runCli("--batch-file " + Path + " --request-deadline-ms 0.01");
  EXPECT_EQ(Run.ExitCode, 0) << Run.Output;
  std::remove(Path.c_str());
}

#ifdef COGENT_CHAOS_ENABLED

TEST(CliExitCodes, RescuedVerifierFailureExitsZeroWithNotice) {
  // Under an all-sites chaos storm some seed in a short deterministic
  // range must provoke verifier rejections that the pipeline rescues; the
  // rescued run exits 0 and prints the one-line notice.
  bool SawNotice = false;
  for (int Seed = 1; Seed <= 32 && !SawNotice; ++Seed) {
    CliRun Run = runCli("ab-ac-cb 24 --chaos-seed " + std::to_string(Seed) +
                        " --chaos-sites all");
    ASSERT_EQ(Run.ExitCode, 0) << "seed " << Seed << "\n" << Run.Output;
    if (Run.Output.find("# notice:") != std::string::npos) {
      SawNotice = true;
      // The same run under --quiet suppresses the notice but keeps exit 0.
      CliRun Quiet = runCli("ab-ac-cb 24 --chaos-seed " +
                            std::to_string(Seed) +
                            " --chaos-sites all --quiet");
      EXPECT_EQ(Quiet.ExitCode, 0) << Quiet.Output;
      EXPECT_EQ(Quiet.Output.find("# notice:"), std::string::npos)
          << Quiet.Output;
    }
  }
  EXPECT_TRUE(SawNotice)
      << "no seed in 1..32 provoked a rescued verifier rejection";
}

#endif // COGENT_CHAOS_ENABLED

} // namespace
