//===- tests/test_cli_exit_codes.cpp - CLI exit-code discipline ------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the cogent_cli exit-code contract by invoking the real binary
/// (path injected via COGENT_CLI_PATH at configure time):
///
///   0  success — including verifier failures rescued by the fallback
///      chain, which print a one-line "# notice:" unless --quiet;
///   1  typed rejection (InvalidDeviceSpec, VerificationFailed, parse
///      errors) rendered as "error: <Code>: ...";
///   2  usage errors.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

struct CliRun {
  int ExitCode = -1;
  std::string Output; // stdout + stderr interleaved
};

/// Runs the CLI with \p Args, capturing combined output and the exit code.
CliRun runCli(const std::string &Args) {
  CliRun Run;
  std::string Command = std::string(COGENT_CLI_PATH) + " " + Args + " 2>&1";
  std::FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return Run;
  char Buffer[4096];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), Pipe)) > 0)
    Run.Output.append(Buffer, Got);
  int Status = pclose(Pipe);
  if (WIFEXITED(Status))
    Run.ExitCode = WEXITSTATUS(Status);
  return Run;
}

TEST(CliExitCodes, CleanRunExitsZero) {
  CliRun Run = runCli("ab-ac-cb 24 --quiet");
  EXPECT_EQ(Run.ExitCode, 0) << Run.Output;
  EXPECT_EQ(Run.Output.find("# notice:"), std::string::npos) << Run.Output;
}

TEST(CliExitCodes, UnrescuedVerificationFailureExitsNonZeroTyped) {
  // 8 bytes of staging memory passes DeviceSpec::validate but cannot host
  // even the TTGT kernel: the verifier rejects every fallback rung and the
  // CLI must exit non-zero with the typed error rendered.
  CliRun Run = runCli("ab-ac-cb 24 --smem-per-block 8");
  EXPECT_EQ(Run.ExitCode, 1) << Run.Output;
  EXPECT_NE(Run.Output.find("error: VerificationFailed"), std::string::npos)
      << Run.Output;
}

TEST(CliExitCodes, InvalidDeviceExitsNonZeroTyped) {
  CliRun Run = runCli("ab-ac-cb 24 --smem-per-block 0");
  EXPECT_EQ(Run.ExitCode, 1) << Run.Output;
  EXPECT_NE(Run.Output.find("error: InvalidDeviceSpec"), std::string::npos)
      << Run.Output;
}

TEST(CliExitCodes, UsageErrorExitsTwo) {
  EXPECT_EQ(runCli("ab-ac-cb 24 --no-such-flag").ExitCode, 2);
  EXPECT_EQ(runCli("").ExitCode, 2);
  EXPECT_EQ(runCli("ab-ac-cb 24 --chaos-sites no-such-site").ExitCode, 2);
}

#ifdef COGENT_CHAOS_ENABLED

TEST(CliExitCodes, RescuedVerifierFailureExitsZeroWithNotice) {
  // Under an all-sites chaos storm some seed in a short deterministic
  // range must provoke verifier rejections that the pipeline rescues; the
  // rescued run exits 0 and prints the one-line notice.
  bool SawNotice = false;
  for (int Seed = 1; Seed <= 32 && !SawNotice; ++Seed) {
    CliRun Run = runCli("ab-ac-cb 24 --chaos-seed " + std::to_string(Seed) +
                        " --chaos-sites all");
    ASSERT_EQ(Run.ExitCode, 0) << "seed " << Seed << "\n" << Run.Output;
    if (Run.Output.find("# notice:") != std::string::npos) {
      SawNotice = true;
      // The same run under --quiet suppresses the notice but keeps exit 0.
      CliRun Quiet = runCli("ab-ac-cb 24 --chaos-seed " +
                            std::to_string(Seed) +
                            " --chaos-sites all --quiet");
      EXPECT_EQ(Quiet.ExitCode, 0) << Quiet.Output;
      EXPECT_EQ(Quiet.Output.find("# notice:"), std::string::npos)
          << Quiet.Output;
    }
  }
  EXPECT_TRUE(SawNotice)
      << "no seed in 1..32 provoked a rescued verifier rejection";
}

#endif // COGENT_CHAOS_ENABLED

} // namespace
