//===- tests/test_codegen.cpp - CUDA emission structural tests -------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// No CUDA toolchain exists in this environment, so the emitted source is
/// validated structurally: the Algorithm-1 phases must be present, array
/// extents and loop bounds must match the configuration, every tensor index
/// must be guarded, and the driver must compute the right grid.
///
//===----------------------------------------------------------------------===//

#include "core/CodeGen.h"
#include "core/Enumerator.h"
#include "core/KernelPlan.h"
#include "suite/TccgSuite.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::CodeGenOptions;
using core::GeneratedSource;
using core::KernelConfig;
using core::KernelPlan;
using ir::Contraction;
using ir::Operand;

namespace {

Contraction eq1(int64_t Extent = 16) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcd-aebf-dfce", Extent);
  EXPECT_TRUE(TC.hasValue());
  return *TC;
}

KernelConfig fig2Config() {
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 16}};
  Config.TBy = {{'c', 8}};
  Config.RegX = {{'b', 4}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 4}, {'f', 2}};
  return Config;
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

TEST(CodeGen, KernelNameEncodesContraction) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  EXPECT_EQ(Source.KernelName, "cogent_tc_abcd_aebf_dfce");
  EXPECT_NE(Source.KernelSource.find("__global__ void " + Source.KernelName),
            std::string::npos);
}

TEST(CodeGen, TileConstantsMatchConfig) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  EXPECT_NE(Source.KernelSource.find("#define TBX 16"), std::string::npos);
  EXPECT_NE(Source.KernelSource.find("#define TBY 8"), std::string::npos);
  EXPECT_NE(Source.KernelSource.find("#define NTHREADS 128"),
            std::string::npos);
  EXPECT_NE(Source.KernelSource.find("#define REGX 4"), std::string::npos);
  EXPECT_NE(Source.KernelSource.find("#define REGY 2"), std::string::npos);
  EXPECT_NE(Source.KernelSource.find("#define TBK 8"), std::string::npos);
}

TEST(CodeGen, SharedMemoryArraysSizedToSlices) {
  Contraction TC = eq1();
  KernelPlan Plan(TC, fig2Config());
  GeneratedSource Source = emitCuda(Plan);
  // A slice 512 elements, B slice 128 (see test_kernel_plan).
  EXPECT_NE(Source.KernelSource.find("__shared__ double s_A[512]"),
            std::string::npos);
  EXPECT_NE(Source.KernelSource.find("__shared__ double s_B[128]"),
            std::string::npos);
}

TEST(CodeGen, FourPhasesPresent) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  const std::string &Src = Source.KernelSource;
  EXPECT_NE(Src.find("load slice of A from GMEM to SMEM"),
            std::string::npos);
  EXPECT_NE(Src.find("load slice of B from GMEM to SMEM"),
            std::string::npos);
  EXPECT_NE(Src.find("(2) load inputs from SMEM to REG"), std::string::npos);
  EXPECT_NE(Src.find("(3) outer product"), std::string::npos);
  EXPECT_NE(Src.find("(4) store the output"), std::string::npos);
  // Two barriers per step, as in Algorithm 1.
  EXPECT_EQ(countOccurrences(Src, "__syncthreads()"), 2u);
}

TEST(CodeGen, SignatureHasOneExtentPerIndex) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  for (char Name : TC.allIndices())
    EXPECT_NE(
        Source.KernelSource.find(std::string("const long long N_") + Name),
        std::string::npos)
        << Name;
}

TEST(CodeGen, LoadsAreGuardedPerIndex) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  // Guard expressions reference every index of each input tensor.
  for (char Name : TC.indices(Operand::A))
    EXPECT_NE(Source.KernelSource.find(std::string("(g_") + Name + " < N_" +
                                       Name + ")"),
              std::string::npos)
        << Name;
}

TEST(CodeGen, StoreUsesOutputStridesAndGuards) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  const std::string &Src = Source.KernelSource;
  for (char Name : TC.indices(Operand::C)) {
    EXPECT_NE(Src.find(std::string("gc_") + Name + " * strC_" + Name),
              std::string::npos)
        << Name;
    EXPECT_NE(Src.find(std::string("gc_") + Name + " < N_" + Name),
              std::string::npos)
        << Name;
  }
}

TEST(CodeGen, ColumnMajorStrideChains) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  const std::string &Src = Source.KernelSource;
  // A = [a, e, b, f]: strA_a = 1, strA_e = N_a, strA_b = N_a * N_e, ...
  EXPECT_NE(Src.find("const long long strA_a = (long long)1;"),
            std::string::npos);
  EXPECT_NE(Src.find("const long long strA_e = (long long)1 * N_a;"),
            std::string::npos);
  EXPECT_NE(Src.find("const long long strA_b = (long long)1 * N_a * N_e;"),
            std::string::npos);
  EXPECT_NE(Src.find("const long long strC_d = (long long)1 * N_a * N_b * "
                     "N_c;"),
            std::string::npos);
}

TEST(CodeGen, FloatEmission) {
  Contraction TC = eq1();
  CodeGenOptions Options;
  Options.ElementType = "float";
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()), Options);
  EXPECT_NE(Source.KernelSource.find("__shared__ float s_A"),
            std::string::npos);
  EXPECT_NE(Source.KernelSource.find("0.0f"), std::string::npos);
  EXPECT_EQ(Source.KernelSource.find("__shared__ double"),
            std::string::npos);
}

TEST(CodeGen, DriverComputesGridFromExtents) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  const std::string &Drv = Source.DriverSource;
  EXPECT_NE(Drv.find("void launch_cogent_tc_abcd_aebf_dfce"),
            std::string::npos);
  EXPECT_NE(Drv.find("numBlocks *= (N_a + 16 - 1) / 16;"),
            std::string::npos);
  EXPECT_NE(Drv.find("numBlocks *= (N_b + 4 - 1) / 4;"), std::string::npos);
  EXPECT_NE(Drv.find("dim3 block(16, 8, 1);"), std::string::npos);
  EXPECT_NE(Drv.find("<<<grid, block>>>"), std::string::npos);
}

TEST(CodeGen, GridStrideLoopCoversOversizedGrids) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  const std::string &Src = Source.KernelSource;
  EXPECT_NE(Src.find("for (long long blkLinear = blockIdx.x; blkLinear < "
                     "totalBlocks; blkLinear += gridDim.x)"),
            std::string::npos);
  // Accumulators reset inside the stride loop, per output tile.
  size_t LoopPos = Src.find("blkLinear");
  size_t ZeroPos = Src.find("r_C[i] = 0.0");
  EXPECT_LT(LoopPos, ZeroPos);
  // The driver caps the launched grid at the hardware limit.
  EXPECT_NE(Source.DriverSource.find("2147483647"), std::string::npos);
}

TEST(CodeGen, FullSourceConcatenatesKernelAndDriver) {
  Contraction TC = eq1();
  GeneratedSource Source = emitCuda(KernelPlan(TC, fig2Config()));
  std::string Full = Source.full();
  EXPECT_NE(Full.find("__global__"), std::string::npos);
  EXPECT_NE(Full.find("launch_"), std::string::npos);
}

TEST(CodeGen, MappingCommentDocumentsConfig) {
  Contraction TC = eq1();
  KernelConfig Config = fig2Config();
  GeneratedSource Source = emitCuda(KernelPlan(TC, Config));
  EXPECT_NE(Source.KernelSource.find(Config.toString()), std::string::npos);
  EXPECT_NE(Source.KernelSource.find("abcd-aebf-dfce"), std::string::npos);
}

/// Emission works for every suite entry's top enumerated configuration and
/// always contains balanced braces (a cheap well-formedness proxy).
class EmitSuite : public ::testing::TestWithParam<int> {};

TEST_P(EmitSuite, EmitsStructurallySaneSource) {
  ir::Contraction TC = suite::suiteEntry(GetParam()).contraction();
  core::Enumerator Enum(TC, gpu::makeV100());
  std::vector<KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty());
  GeneratedSource Source = emitCuda(KernelPlan(TC, Configs.front()));
  const std::string &Src = Source.KernelSource;
  EXPECT_EQ(countOccurrences(Src, "{"), countOccurrences(Src, "}"));
  EXPECT_EQ(countOccurrences(Src, "("), countOccurrences(Src, ")"));
  EXPECT_NE(Src.find("__global__"), std::string::npos);
  EXPECT_EQ(countOccurrences(Src, "__syncthreads()"), 2u);
}

INSTANTIATE_TEST_SUITE_P(Tccg, EmitSuite,
                         ::testing::Values(1, 5, 9, 12, 13, 20, 25, 31, 40,
                                           48));

} // namespace
