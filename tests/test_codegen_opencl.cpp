//===- tests/test_codegen_opencl.cpp - OpenCL backend tests ----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OpenCL dialect of the emitter (the paper's planned future backend):
/// structural checks of the emitted OpenCL C, dialect-purity checks (no
/// CUDA builtins leak through), and a compile-and-execute pass through the
/// shared OpenCL execution-model shim (ShimHarness).
///
//===----------------------------------------------------------------------===//

#include "ShimHarness.h"

#include "core/CodeGen.h"
#include "core/KernelPlan.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::CodeGenOptions;
using core::GeneratedSource;
using core::KernelConfig;
using core::KernelPlan;
using ir::Contraction;
using ir::Operand;

namespace {

Contraction eq1(int64_t Extent = 16) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcd-aebf-dfce", Extent);
  EXPECT_TRUE(TC.hasValue());
  return *TC;
}

KernelConfig fig2Config() {
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 16}};
  Config.TBy = {{'c', 8}};
  Config.RegX = {{'b', 4}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 4}, {'f', 2}};
  return Config;
}

TEST(OpenClCodeGen, UsesOpenClBuiltins) {
  GeneratedSource Source = emitOpenCl(KernelPlan(eq1(), fig2Config()));
  const std::string &Src = Source.KernelSource;
  EXPECT_NE(Src.find("__kernel void"), std::string::npos);
  EXPECT_NE(Src.find("__local double s_A"), std::string::npos);
  EXPECT_NE(Src.find("get_local_id(0)"), std::string::npos);
  EXPECT_NE(Src.find("get_local_id(1)"), std::string::npos);
  EXPECT_NE(Src.find("get_group_id(0)"), std::string::npos);
  EXPECT_NE(Src.find("get_num_groups(0)"), std::string::npos);
  EXPECT_NE(Src.find("barrier(CLK_LOCAL_MEM_FENCE);"), std::string::npos);
  EXPECT_NE(Src.find("__global const double *restrict g_A"),
            std::string::npos);
}

TEST(OpenClCodeGen, NoCudaBuiltinsLeak) {
  GeneratedSource Source = emitOpenCl(KernelPlan(eq1(), fig2Config()));
  const std::string &Src = Source.KernelSource;
  EXPECT_EQ(Src.find("__global__"), std::string::npos);
  EXPECT_EQ(Src.find("__shared__"), std::string::npos);
  EXPECT_EQ(Src.find("threadIdx"), std::string::npos);
  EXPECT_EQ(Src.find("blockIdx"), std::string::npos);
  EXPECT_EQ(Src.find("gridDim"), std::string::npos);
  EXPECT_EQ(Src.find("__syncthreads"), std::string::npos);
  EXPECT_EQ(Src.find("long long"), std::string::npos)
      << "OpenCL C has no long long";
}

TEST(OpenClCodeGen, DoubleNeedsFp64Pragma) {
  GeneratedSource Dp = emitOpenCl(KernelPlan(eq1(), fig2Config()));
  EXPECT_EQ(Dp.KernelSource.rfind("#pragma OPENCL EXTENSION cl_khr_fp64", 0),
            0u)
      << "fp64 pragma must lead the file";
  CodeGenOptions Options;
  Options.ElementType = "float";
  GeneratedSource Sp = emitOpenCl(KernelPlan(eq1(), fig2Config()), Options);
  EXPECT_EQ(Sp.KernelSource.find("cl_khr_fp64"), std::string::npos);
}

TEST(OpenClCodeGen, DriverUsesStandardHostSequence) {
  GeneratedSource Source = emitOpenCl(KernelPlan(eq1(), fig2Config()));
  const std::string &Drv = Source.DriverSource;
  EXPECT_NE(Drv.find("clSetKernelArg"), std::string::npos);
  EXPECT_NE(Drv.find("clEnqueueNDRangeKernel"), std::string::npos);
  EXPECT_NE(Drv.find("size_t Local[2] = {16, 8};"), std::string::npos);
}

TEST(OpenClCodeGen, SameScheduleAsCuda) {
  // Both dialects must encode identical tiling constants and slice sizes.
  KernelPlan Plan(eq1(), fig2Config());
  GeneratedSource Cuda = emitCuda(Plan);
  GeneratedSource Cl = emitOpenCl(Plan);
  for (const char *Define :
       {"#define TBX 16", "#define TBY 8", "#define REGX 4",
        "#define REGY 2", "#define TBK 8", "s_A[512]", "s_B[128]"}) {
    EXPECT_NE(Cuda.KernelSource.find(Define), std::string::npos) << Define;
    EXPECT_NE(Cl.KernelSource.find(Define), std::string::npos) << Define;
  }
}

TEST(OpenClCodeGen, EmittedSourceCompilesAndComputes) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-aebf-dfce", 4);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 2}, {'f', 2}};
  // Grid has 4 output tiles; launch only 3 groups so the grid-stride loop
  // covers the remainder.
  EXPECT_EQ(testsupport::compileAndRunKernel(*TC, Config, "cl_exec",
                                             CodeGenOptions(),
                                             /*LaunchGroups=*/3,
                                             /*OpenCl=*/true),
            0);
}

} // namespace
