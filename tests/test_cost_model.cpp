//===- tests/test_cost_model.cpp - Algorithm-3 cost-model tests ------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"
#include "core/Enumerator.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::KernelConfig;
using core::KernelPlan;
using core::TransactionCost;
using ir::Contraction;
using ir::Operand;

namespace {

Contraction eq1(int64_t Extent = 16) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcd-aebf-dfce", Extent);
  EXPECT_TRUE(TC.hasValue());
  return *TC;
}

TEST(CostModel, FullyCoalescedMatrixHandComputed) {
  // 64x64 GEMM, 16x16 block, TBk 16: every load/store is a full 128-byte
  // transaction of 16 doubles.
  ErrorOr<Contraction> TC = Contraction::parseUniform("ij-ik-kj", 64);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'i', 16}};
  Config.TBy = {{'j', 16}};
  Config.TBk = {{'k', 16}};
  KernelPlan Plan(*TC, Config);

  TransactionCost Cost = core::estimateTransactions(Plan, 8);
  // Grid: 4*4 = 16 blocks; steps: 4.
  // A slice: 16 (i) * 16 (k) = 256 elements; contiguous run = 16 -> 16
  // transactions per slice -> 16 * 4 * 16 = 1024.
  EXPECT_DOUBLE_EQ(Cost.LoadA, 1024.0);
  EXPECT_DOUBLE_EQ(Cost.LoadB, 1024.0);
  // C slice 256 elements, run 16 -> 16 transactions * 16 blocks = 256.
  EXPECT_DOUBLE_EQ(Cost.StoreC, 256.0);
  EXPECT_DOUBLE_EQ(Cost.total(), 2304.0);
}

TEST(CostModel, UncoalescedTileOnePaysPerElement) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("ij-ik-kj", 64);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Coalesced;
  Coalesced.XInput = Operand::A;
  Coalesced.TBx = {{'i', 16}};
  Coalesced.TBy = {{'j', 16}};
  Coalesced.TBk = {{'k', 16}};
  KernelConfig Uncoalesced = Coalesced;
  Uncoalesced.TBx = {{'i', 1}};
  double Good =
      core::estimateTransactions(KernelPlan(*TC, Coalesced), 8).total();
  double Bad =
      core::estimateTransactions(KernelPlan(*TC, Uncoalesced), 8).total();
  EXPECT_GT(Bad, Good);
}

TEST(CostModel, SinglePrecisionPacksMorePerTransaction) {
  Contraction TC = eq1(16);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 16}};
  Config.TBy = {{'c', 16}};
  Config.RegX = {{'b', 4}};
  Config.RegY = {{'d', 4}};
  Config.TBk = {{'e', 16}};
  KernelPlan Plan(TC, Config);
  double Dp = core::estimateTransactions(Plan, 8).total();
  double Sp = core::estimateTransactions(Plan, 4).total();
  EXPECT_LT(Sp, Dp);
}

TEST(CostModel, ProfileFieldsPopulated) {
  Contraction TC = eq1(16);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 16}};
  Config.TBy = {{'c', 16}};
  Config.RegX = {{'b', 4}};
  Config.RegY = {{'d', 4}};
  Config.TBk = {{'e', 16}};
  KernelPlan Plan(TC, Config);
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::KernelProfile Profile = core::makeKernelProfile(Plan, Device, 8);
  EXPECT_DOUBLE_EQ(Profile.Flops, TC.flopCount());
  EXPECT_GT(Profile.DramBytes, 0.0);
  EXPECT_GT(Profile.SmemBytes, 0.0);
  EXPECT_GT(Profile.Occupancy, 0.0);
  EXPECT_DOUBLE_EQ(Profile.RegisterTileFlops, 16.0);
  EXPECT_EQ(Profile.ElementSize, 8u);
}

TEST(CostModel, DramBytesAtLeastCompulsoryForGoodConfig) {
  Contraction TC = eq1(16);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 16}};
  Config.TBy = {{'c', 16}};
  Config.RegX = {{'b', 4}};
  Config.RegY = {{'d', 4}};
  Config.TBk = {{'e', 16}, {'f', 16}};
  KernelPlan Plan(TC, Config);
  gpu::KernelProfile Profile =
      core::makeKernelProfile(Plan, gpu::makeV100(), 8);
  EXPECT_GE(Profile.DramBytes, TC.numElements(Operand::C) * 8.0);
}

TEST(CostModel, OccupancyMatchesCalculator) {
  Contraction TC = eq1(16);
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 16}};
  Config.TBy = {{'c', 16}};
  Config.TBk = {{'e', 8}};
  KernelPlan Plan(TC, Config);
  gpu::DeviceSpec Device = gpu::makeV100();
  gpu::OccupancyResult Occ = core::planOccupancy(Plan, Device, 8);
  gpu::BlockResources Block;
  Block.ThreadsPerBlock = 256;
  Block.SharedMemBytes = static_cast<unsigned>(Config.smemBytes(8));
  Block.RegistersPerThread = Config.registersPerThread(8);
  EXPECT_DOUBLE_EQ(Occ.Occupancy,
                   gpu::computeOccupancy(Device, Block).Occupancy);
}

TEST(CostModel, PaperLiteralFormulationAgreesOnCoalescedGemm) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("ij-ik-kj", 64);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'i', 16}};
  Config.TBy = {{'j', 16}};
  Config.TBk = {{'k', 16}};
  KernelPlan Plan(*TC, Config);
  TransactionCost Ours = core::estimateTransactions(Plan, 8);
  TransactionCost Paper = core::estimateTransactionsPaper(Plan, 8);
  EXPECT_DOUBLE_EQ(Ours.LoadA, Paper.LoadA);
  EXPECT_DOUBLE_EQ(Ours.LoadB, Paper.LoadB);
  EXPECT_DOUBLE_EQ(Ours.StoreC, Paper.StoreC);
}

TEST(CostModel, PaperLiteralTracksGeneralizedModel) {
  // Across enumerated configurations the two formulations stay within a
  // small factor and preserve each other's ordering tendencies.
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-aebf-dfce", 32);
  ASSERT_TRUE(TC.hasValue());
  core::EnumerationOptions Options;
  Options.MinThreadBlocks = 1;
  Options.MinOccupancy = 0.0;
  core::Enumerator Enum(*TC, gpu::makeV100(), Options);
  std::vector<KernelConfig> Configs = Enum.enumerate();
  size_t Stride = std::max<size_t>(1, Configs.size() / 20);
  for (size_t I = 0; I < Configs.size(); I += Stride) {
    KernelPlan Plan(*TC, Configs[I]);
    double Ours = core::estimateTransactions(Plan, 8).total();
    double Paper = core::estimateTransactionsPaper(Plan, 8).total();
    EXPECT_GT(Paper, 0.0);
    EXPECT_LT(Ours / Paper, 3.0) << Configs[I].toString();
    EXPECT_GT(Ours / Paper, 1.0 / 3.0) << Configs[I].toString();
  }
}

TEST(CostModel, StagingLayoutIsConflictFreeByConstruction) {
  // KernelPlan lays shared memory out with thread-varying dimensions
  // fastest, so the compute phase's staging reads are stride-1 per lane
  // (or broadcast): the modeled bank-conflict factor must be exactly 1
  // for every enumerated configuration.
  for (const char *Spec :
       {"abcd-aebf-dfce", "ij-ik-kj", "abcdef-gdab-efgc", "abc-bda-dc"}) {
    ErrorOr<Contraction> TC = Contraction::parseUniform(Spec, 16);
    ASSERT_TRUE(TC.hasValue());
    core::EnumerationOptions Options;
    Options.MinThreadBlocks = 1;
    Options.MinOccupancy = 0.0;
    core::Enumerator Enum(*TC, gpu::makeV100(), Options);
    std::vector<KernelConfig> Configs = Enum.enumerate();
    size_t Stride = std::max<size_t>(1, Configs.size() / 10);
    for (size_t I = 0; I < Configs.size(); I += Stride) {
      KernelPlan Plan(*TC, Configs[I]);
      EXPECT_DOUBLE_EQ(core::smemBankConflictFactor(Plan), 1.0)
          << Spec << " " << Configs[I].toString();
    }
  }
}

/// Property: the analytic Algorithm-3 estimate stays within a small factor
/// of the simulator's exact transaction count across enumerated configs.
class CostVsSimulator : public ::testing::TestWithParam<const char *> {};

TEST_P(CostVsSimulator, WithinFactorTwo) {
  ErrorOr<Contraction> TC = Contraction::parseUniform(GetParam(), 8);
  ASSERT_TRUE(TC.hasValue());
  gpu::DeviceSpec Device = gpu::makeV100();
  core::EnumerationOptions Options;
  Options.MinThreadBlocks = 1;
  Options.MinOccupancy = 0.0;
  core::Enumerator Enum(*TC, Device, Options);
  std::vector<KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty());

  Rng Generator(5);
  tensor::Tensor<double> A = tensor::makeOperand<double>(*TC, Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(*TC, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  tensor::Tensor<double> C = tensor::makeOperand<double>(*TC, Operand::C);

  size_t Stride = std::max<size_t>(1, Configs.size() / 12);
  for (size_t I = 0; I < Configs.size(); I += Stride) {
    KernelPlan Plan(*TC, Configs[I]);
    double Estimated = core::estimateTransactions(Plan, 8).total();
    gpu::SimResult Sim = gpu::simulateKernel(Plan, C, A, B);
    double Exact = static_cast<double>(Sim.totalTransactions());
    EXPECT_GT(Estimated, 0.0);
    EXPECT_GT(Exact, 0.0);
    EXPECT_LT(Estimated / Exact, 2.5) << Configs[I].toString();
    EXPECT_GT(Estimated / Exact, 0.4) << Configs[I].toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Contractions, CostVsSimulator,
                         ::testing::Values("abcd-aebf-dfce", "ij-ik-kj",
                                           "abc-bda-dc", "abcd-ebcd-ea",
                                           "ab-acd-dbc"));

} // namespace
