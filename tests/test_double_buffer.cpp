//===- tests/test_double_buffer.cpp - Software-pipelined emission ----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The double-buffered staging option: structural checks (two buffers, one
/// barrier per step, prefetch guard) and compile-and-execute validation of
/// the pipelined CUDA and OpenCL through the execution shims, including
/// grid-stride launches smaller than the tile count.
///
//===----------------------------------------------------------------------===//

#include "ShimHarness.h"

#include "core/CodeGen.h"
#include "core/KernelPlan.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::CodeGenOptions;
using core::GeneratedSource;
using core::KernelConfig;
using core::KernelPlan;
using ir::Contraction;
using ir::Operand;
using testsupport::compileAndRunKernel;

namespace {

Contraction eq1(int64_t Extent) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcd-aebf-dfce", Extent);
  EXPECT_TRUE(TC.hasValue());
  return *TC;
}

KernelConfig smallConfig() {
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 2}};
  return Config;
}

CodeGenOptions pipelined() {
  CodeGenOptions Options;
  Options.DoubleBuffer = true;
  return Options;
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

TEST(DoubleBuffer, StructuralShape) {
  Contraction TC = eq1(4);
  KernelPlan Plan(TC, smallConfig());
  GeneratedSource Source = emitCuda(Plan, pipelined());
  const std::string &Src = Source.KernelSource;

  std::string ExpectA = "__shared__ double s_A[" +
                        std::to_string(2 * Plan.sliceElements(Operand::A)) +
                        "]";
  EXPECT_NE(Src.find(ExpectA), std::string::npos);
  EXPECT_NE(Src.find("int buf = 0;"), std::string::npos);
  EXPECT_NE(Src.find("if (step + 1 < numSteps)"), std::string::npos);
  EXPECT_NE(Src.find("buf = 1 - buf;"), std::string::npos);
  // One prologue barrier + one barrier per step in the loop.
  EXPECT_EQ(countOccurrences(Src, "__syncthreads()"), 2u);
  // Compute phase reads the current buffer; prefetch writes the other one.
  EXPECT_NE(Src.find("s_A[buf * "), std::string::npos);
  EXPECT_NE(Src.find("s_A[(1 - buf) * "), std::string::npos);
}

TEST(DoubleBuffer, OffByDefault) {
  Contraction TC = eq1(4);
  GeneratedSource Source = emitCuda(KernelPlan(TC, smallConfig()));
  EXPECT_EQ(Source.KernelSource.find("buf"), std::string::npos);
}

TEST(DoubleBuffer, OpenClVariant) {
  Contraction TC = eq1(4);
  GeneratedSource Source =
      emitOpenCl(KernelPlan(TC, smallConfig()), pipelined());
  EXPECT_NE(Source.KernelSource.find("int buf = 0;"), std::string::npos);
  EXPECT_NE(Source.KernelSource.find("barrier(CLK_LOCAL_MEM_FENCE);"),
            std::string::npos);
}

TEST(DoubleBuffer, PipelinedKernelComputesCorrectly) {
  Contraction TC = eq1(4);
  EXPECT_EQ(compileAndRunKernel(TC, smallConfig(), "db_full", pipelined()),
            0);
}

TEST(DoubleBuffer, PipelinedGridStride) {
  // Fewer launched blocks than tiles: the pipeline must reset per tile.
  Contraction TC = eq1(4);
  EXPECT_EQ(compileAndRunKernel(TC, smallConfig(), "db_stride", pipelined(),
                                /*LaunchGroups=*/1),
            0);
}

TEST(DoubleBuffer, RaggedExtents) {
  ErrorOr<Contraction> TC = Contraction::parse(
      "abcd-aebf-dfce",
      {{'a', 5}, {'b', 3}, {'c', 6}, {'d', 2}, {'e', 3}, {'f', 2}});
  ASSERT_TRUE(TC.hasValue());
  EXPECT_EQ(compileAndRunKernel(*TC, smallConfig().clampedTo(*TC),
                                "db_ragged", pipelined()),
            0);
}

TEST(DoubleBuffer, PipelinedOpenClComputesCorrectly) {
  Contraction TC = eq1(4);
  EXPECT_EQ(compileAndRunKernel(TC, smallConfig(), "db_cl", pipelined(),
                                /*LaunchGroups=*/0, /*OpenCl=*/true),
            0);
}

} // namespace
