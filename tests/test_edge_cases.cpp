//===- tests/test_edge_cases.cpp - Degenerate and adversarial inputs -------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "core/Enumerator.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace cogent;
using core::KernelConfig;
using core::KernelPlan;
using ir::Contraction;
using ir::Operand;

namespace {

void expectGenerateAndSimulate(const Contraction &TC) {
  gpu::DeviceSpec Device = gpu::makeV100();
  core::Cogent Generator(Device);
  core::CogentOptions Options;
  Options.Enumeration.MinThreadBlocks = 1;
  Options.Enumeration.MinOccupancy = 0.0;
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, Options);
  ASSERT_TRUE(Result.hasValue()) << TC.toString();

  KernelPlan Plan(TC, Result->best().Config);
  Rng Generator2(1);
  tensor::Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
  A.fillRandom(Generator2);
  B.fillRandom(Generator2);
  tensor::Tensor<double> Expected = tensor::makeOperand<double>(TC, Operand::C);
  tensor::contractReference(TC, Expected, A, B);
  tensor::Tensor<double> Actual = tensor::makeOperand<double>(TC, Operand::C);
  gpu::simulateKernel(Plan, Actual, A, B);
  EXPECT_LT(tensor::maxAbsDifference(Expected, Actual), 1e-10)
      << TC.toString() << " via " << Result->best().Config.toString();
}

TEST(EdgeCases, ExtentOneIndices) {
  ErrorOr<Contraction> TC = Contraction::parse(
      "abcd-aebf-dfce",
      {{'a', 1}, {'b', 4}, {'c', 1}, {'d', 3}, {'e', 1}, {'f', 2}});
  ASSERT_TRUE(TC.hasValue());
  expectGenerateAndSimulate(*TC);
}

TEST(EdgeCases, AllExtentsOne) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("ij-ik-kj", 1);
  ASSERT_TRUE(TC.hasValue());
  expectGenerateAndSimulate(*TC);
}

TEST(EdgeCases, MatrixVectorProduct) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("i-ik-k", 33);
  ASSERT_TRUE(TC.hasValue());
  expectGenerateAndSimulate(*TC);
}

TEST(EdgeCases, VectorOutputFromB) {
  // Output is 1D and its only index lives in B.
  ErrorOr<Contraction> TC = Contraction::parseUniform("i-k-ki", 17);
  ASSERT_TRUE(TC.hasValue());
  expectGenerateAndSimulate(*TC);
}

TEST(EdgeCases, EightDimensionalOutput) {
  // 8D = 5D * 7D with two contraction indices, tiny extents.
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcdefgh-aicbj-jdefgih", 2);
  ASSERT_TRUE(TC.hasValue());
  EXPECT_EQ(TC->rank(Operand::C), 8u);
  expectGenerateAndSimulate(*TC);
}

TEST(EdgeCases, PrimeExtentsNeverDivideTiles) {
  ErrorOr<Contraction> TC = Contraction::parse(
      "abcd-aebf-dfce",
      {{'a', 13}, {'b', 7}, {'c', 11}, {'d', 5}, {'e', 3}, {'f', 17}});
  ASSERT_TRUE(TC.hasValue());
  expectGenerateAndSimulate(*TC);
}

TEST(EdgeCases, ParserFuzzNeverCrashes) {
  Rng Generator(0xf022);
  const char Alphabet[] = "abcxyz-Z1 .";
  for (int Trial = 0; Trial < 3000; ++Trial) {
    std::string Input;
    int Length = static_cast<int>(Generator.uniformInt(0, 18));
    for (int I = 0; I < Length; ++I)
      Input += Alphabet[Generator.uniformInt(0, sizeof(Alphabet) - 2)];
    ErrorOr<Contraction> TC = Contraction::parseUniform(Input, 4);
    if (TC.hasValue())
      EXPECT_FALSE(TC->indices(Operand::C).empty());
    else
      EXPECT_FALSE(TC.errorMessage().empty());
  }
}

TEST(EdgeCases, SimulatorAltWarpAndTransactionSizes) {
  // Numerics are independent of the counting granularity; counts are not.
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-aebf-dfce", 6);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 3}};
  KernelPlan Plan(*TC, Config);

  Rng Generator(8);
  tensor::Tensor<double> A = tensor::makeOperand<double>(*TC, Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(*TC, Operand::B);
  A.fillRandom(Generator);
  B.fillRandom(Generator);
  tensor::Tensor<double> Expected =
      tensor::makeOperand<double>(*TC, Operand::C);
  tensor::contractReference(*TC, Expected, A, B);

  gpu::SimOptions Narrow;
  Narrow.TransactionBytes = 32;
  Narrow.WarpSize = 8;
  tensor::Tensor<double> OutNarrow =
      tensor::makeOperand<double>(*TC, Operand::C);
  gpu::SimResult SimNarrow = gpu::simulateKernel(Plan, OutNarrow, A, B, Narrow);
  EXPECT_LT(tensor::maxAbsDifference(Expected, OutNarrow), 1e-10);

  gpu::SimOptions Wide; // defaults: 128 B, warp 32
  tensor::Tensor<double> OutWide =
      tensor::makeOperand<double>(*TC, Operand::C);
  gpu::SimResult SimWide = gpu::simulateKernel(Plan, OutWide, A, B, Wide);
  EXPECT_LT(tensor::maxAbsDifference(Expected, OutWide), 1e-10);

  // Smaller transactions mean at least as many of them.
  EXPECT_GE(SimNarrow.totalTransactions(), SimWide.totalTransactions());
}

TEST(EdgeCases, ClampedToShrinksOversizedTiles) {
  ErrorOr<Contraction> Big = Contraction::parseUniform("ij-ik-kj", 64);
  ErrorOr<Contraction> Small = Contraction::parseUniform("ij-ik-kj", 5);
  ASSERT_TRUE(Big.hasValue() && Small.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'i', 16}};
  Config.TBy = {{'j', 16}};
  Config.TBk = {{'k', 16}};
  ASSERT_EQ(Config.validate(*Big), "");
  EXPECT_NE(Config.validate(*Small), ""); // tiles exceed extents
  KernelConfig Clamped = Config.clampedTo(*Small);
  EXPECT_EQ(Clamped.validate(*Small), "");
  EXPECT_EQ(Clamped.tbxSize(), 5);
  // Clamping never touches a config that already fits.
  EXPECT_EQ(Config.clampedTo(*Big).toString(), Config.toString());
}

TEST(EdgeCases, LopsidedExtents) {
  // One huge index, the rest tiny: stresses grid decomposition.
  ErrorOr<Contraction> TC = Contraction::parse(
      "ab-acd-dbc", {{'a', 200}, {'b', 2}, {'c', 2}, {'d', 3}});
  ASSERT_TRUE(TC.hasValue());
  expectGenerateAndSimulate(*TC);
}

TEST(EdgeCases, CliSmokeTest) {
  // Drive the example CLI end to end when the binary is reachable.
  std::string Cli = "../examples/cogent_cli";
  if (std::system(("test -x " + Cli).c_str()) != 0)
    GTEST_SKIP() << "cogent_cli binary not found relative to test dir";
  EXPECT_EQ(std::system((Cli + " abcd-aebf-dfce 24 > /dev/null 2>&1").c_str()),
            0);
  // Malformed input must fail with a nonzero exit.
  EXPECT_NE(std::system((Cli + " abcd-aebf 24 > /dev/null 2>&1").c_str()), 0);
}

} // namespace
