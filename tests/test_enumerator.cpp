//===- tests/test_enumerator.cpp - Algorithm-2 enumeration tests -----------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Enumerator.h"
#include "core/KernelPlan.h"
#include "suite/TccgSuite.h"

#include <gtest/gtest.h>

#include <set>

using namespace cogent;
using core::EnumerationOptions;
using core::EnumerationStats;
using core::Enumerator;
using core::KernelConfig;
using ir::Contraction;
using ir::Operand;

namespace {

Contraction eq1(int64_t Extent = 72) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcd-aebf-dfce", Extent);
  EXPECT_TRUE(TC.hasValue());
  return *TC;
}

TEST(Enumerator, ProducesOnlyValidConfigs) {
  Contraction TC = eq1();
  gpu::DeviceSpec Device = gpu::makeV100();
  Enumerator Enum(TC, Device);
  std::vector<KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty());
  for (const KernelConfig &Config : Configs)
    EXPECT_EQ(Config.validate(TC), "") << Config.toString();
}

TEST(Enumerator, RespectsHardwareLimits) {
  Contraction TC = eq1();
  gpu::DeviceSpec Device = gpu::makeV100();
  EnumerationOptions Options;
  Enumerator Enum(TC, Device, Options);
  for (const KernelConfig &Config : Enum.enumerate()) {
    EXPECT_LE(Config.threadsPerBlock(), Device.MaxThreadsPerBlock);
    EXPECT_LE(Config.smemBytes(8),
              static_cast<int64_t>(Device.SharedMemPerBlock));
    EXPECT_LE(Config.registersPerThread(8), Device.MaxRegistersPerThread);
  }
}

TEST(Enumerator, TBxAlwaysLedByOutputFvi) {
  Contraction TC = eq1();
  Enumerator Enum(TC, gpu::makeV100());
  for (const KernelConfig &Config : Enum.enumerate()) {
    ASSERT_FALSE(Config.TBx.empty());
    EXPECT_EQ(Config.TBx.front().Name, 'a');
  }
}

TEST(Enumerator, FviConstraintHolds) {
  // ccsd_10: both input FVIs are internal (e in A, f in B); with the FVI
  // rule enabled every config must stage them in TBk.
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-eafd-fbec", 72);
  ASSERT_TRUE(TC.hasValue());
  EnumerationOptions Options;
  Options.EnforceFviConstraints = true;
  Enumerator Enum(*TC, gpu::makeV100(), Options);
  std::vector<KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty());
  for (const KernelConfig &Config : Configs) {
    auto inTbk = [&](char Name) {
      for (const core::IndexTile &T : Config.TBk)
        if (T.Name == Name)
          return true;
      return false;
    };
    EXPECT_TRUE(inTbk('e')) << Config.toString();
    EXPECT_TRUE(inTbk('f')) << Config.toString();
  }
}

TEST(Enumerator, MinBlocksConstraintHolds) {
  Contraction TC = eq1();
  gpu::DeviceSpec Device = gpu::makeV100();
  EnumerationOptions Options;
  Options.MinThreadBlocks = 500;
  Enumerator Enum(TC, Device, Options);
  for (const KernelConfig &Config : Enum.enumerate())
    EXPECT_GE(Config.numThreadBlocks(TC), 500);
}

TEST(Enumerator, DisablingConstraintsGrowsTheSpace) {
  Contraction TC = eq1();
  gpu::DeviceSpec Device = gpu::makeV100();
  EnumerationOptions Strict;
  EnumerationOptions Loose;
  Loose.EnforceFviConstraints = false;
  Loose.EnforceMinBlocks = false;
  Loose.MinOccupancy = 0.0;
  size_t StrictCount = Enumerator(TC, Device, Strict).enumerate().size();
  size_t LooseCount = Enumerator(TC, Device, Loose).enumerate().size();
  EXPECT_GE(LooseCount, StrictCount);
}

TEST(Enumerator, StatsAreConsistent) {
  Contraction TC = eq1();
  Enumerator Enum(TC, gpu::makeV100());
  EnumerationStats Stats;
  std::vector<KernelConfig> Configs = Enum.enumerate(&Stats);
  EXPECT_EQ(Stats.Survivors, Configs.size());
  EXPECT_EQ(Stats.RawConfigs, Stats.InvalidConfigs + Stats.HardwarePruned +
                                  Stats.PerformancePruned + Stats.Survivors);
  EXPECT_GT(Stats.prunedFraction(), 0.0);
  EXPECT_LT(Stats.prunedFraction(), 1.0);
}

TEST(Enumerator, Deterministic) {
  Contraction TC = eq1();
  Enumerator Enum(TC, gpu::makeV100());
  std::vector<KernelConfig> First = Enum.enumerate();
  std::vector<KernelConfig> Second = Enum.enumerate();
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I)
    EXPECT_EQ(First[I].toString(), Second[I].toString());
}

TEST(Enumerator, NoDuplicateConfigs) {
  Contraction TC = eq1();
  Enumerator Enum(TC, gpu::makeV100());
  std::set<std::string> Seen;
  for (const KernelConfig &Config : Enum.enumerate())
    EXPECT_TRUE(Seen.insert(Config.toString()).second)
        << "duplicate " << Config.toString();
}

TEST(Enumerator, TinyProblemRelaxesInsteadOfFailing) {
  // A 4x4 GEMM cannot satisfy the minimum-thread-block rule; relaxation
  // must still return something runnable.
  ErrorOr<Contraction> TC = Contraction::parseUniform("ij-ik-kj", 4);
  ASSERT_TRUE(TC.hasValue());
  Enumerator Enum(*TC, gpu::makeV100());
  std::vector<KernelConfig> Configs = Enum.enumerate();
  EXPECT_FALSE(Configs.empty());
}

TEST(Enumerator, OutputFviInBSwapsSides) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-ebcd-ea", 72);
  ASSERT_TRUE(TC.hasValue());
  Enumerator Enum(*TC, gpu::makeV100());
  std::vector<KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty());
  for (const KernelConfig &Config : Configs)
    EXPECT_EQ(Config.XInput, Operand::B);
}

TEST(Enumerator, HandlesContractionWithoutInternals) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("ij-i-j", 128);
  ASSERT_TRUE(TC.hasValue());
  Enumerator Enum(*TC, gpu::makeV100());
  std::vector<KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty());
  for (const KernelConfig &Config : Configs)
    EXPECT_TRUE(Config.TBk.empty());
}

TEST(Enumerator, NaiveSearchSpaceMatchesPaper) {
  // §IV: Eq. 1 has (4^4 x 2) x 6^5 = 3,981,312 naive configurations.
  EXPECT_DOUBLE_EQ(Enumerator::naiveSearchSpace(eq1()), 3981312.0);
}

TEST(Enumerator, PrunedFractionSubstantial) {
  // The paper prunes ~97% of configurations; our domain-restricted raw set
  // is already tight, but pruning must still bite on big contractions.
  ir::Contraction TC = suite::suiteEntry(40).contraction(); // sd1_1
  Enumerator Enum(TC, gpu::makeV100());
  EnumerationStats Stats;
  Enum.enumerate(&Stats);
  EXPECT_GT(Stats.prunedFraction(), 0.25);
}

/// Sweep: enumeration succeeds and yields valid configs for every suite
/// entry on both devices.
class EnumerateSuite : public ::testing::TestWithParam<int> {};

TEST_P(EnumerateSuite, EveryEntryEnumerable) {
  ir::Contraction TC = suite::suiteEntry(GetParam()).contraction();
  for (const gpu::DeviceSpec &Device : {gpu::makeP100(), gpu::makeV100()}) {
    Enumerator Enum(TC, Device);
    std::vector<KernelConfig> Configs = Enum.enumerate();
    ASSERT_FALSE(Configs.empty()) << TC.toString();
    // Spot-check structural validity of a few.
    size_t Stride = std::max<size_t>(1, Configs.size() / 8);
    for (size_t I = 0; I < Configs.size(); I += Stride)
      EXPECT_EQ(Configs[I].validate(TC), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Tccg, EnumerateSuite, ::testing::Range(1, 49));

} // namespace
