//===- tests/test_explain.cpp - explainKernel report tests -----------------===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the shape of the human-readable kernel report behind --explain:
/// for a TCCG suite kernel the report must carry the index-mapping table,
/// the block/grid geometry, the occupancy line with its limiting resource,
/// the per-tensor traffic breakdown, and the roofline verdict. These are
/// substring tests on structure, not on model numbers — the numbers move
/// with calibration, the sections must not silently disappear.
///
//===----------------------------------------------------------------------===//

#include "core/Cogent.h"
#include "gpu/PerfModel.h"
#include "suite/TccgSuite.h"

#include <gtest/gtest.h>

#include <string>

using namespace cogent;

namespace {

/// Generates the best kernel for TCCG entry \p Id and renders its report.
std::string explainSuiteEntry(int Id, const gpu::DeviceSpec &Device) {
  const suite::SuiteEntry &Entry = suite::suiteEntry(Id);
  ir::Contraction TC = Entry.contraction();
  core::Cogent Generator(Device);
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC, {});
  EXPECT_TRUE(Result.hasValue());
  if (!Result)
    return "";
  return core::explainKernel(TC, Result->best(),
                             Device, /*ElementSize=*/8);
}

TEST(Explain, ReportCarriesMappingTable) {
  gpu::DeviceSpec Device = gpu::makeV100();
  std::string Report = explainSuiteEntry(1, Device);

  EXPECT_NE(Report.find("contraction "), std::string::npos);
  EXPECT_NE(Report.find(" on V100"), std::string::npos);
  EXPECT_NE(Report.find("mapping     "), std::string::npos);
  // The per-index table: header plus one row per index of the entry.
  EXPECT_NE(Report.find("idx  kind       reuses  mapped-to  tile  extent"),
            std::string::npos);
  const suite::SuiteEntry &Entry = suite::suiteEntry(1);
  ir::Contraction TC = Entry.contraction();
  for (char Name : TC.allIndices())
    EXPECT_NE(Report.find(std::string("\n  ") + Name + "    "),
              std::string::npos)
        << "no table row for index '" << Name << "'";
  EXPECT_NE(Report.find("external"), std::string::npos);
  EXPECT_NE(Report.find("internal"), std::string::npos);
}

TEST(Explain, ReportCarriesGeometryAndOccupancy) {
  gpu::DeviceSpec Device = gpu::makeV100();
  std::string Report = explainSuiteEntry(1, Device);

  EXPECT_NE(Report.find("block       "), std::string::npos);
  EXPECT_NE(Report.find("register tile "), std::string::npos);
  EXPECT_NE(Report.find("grid        "), std::string::npos);
  EXPECT_NE(Report.find(" blocks, "), std::string::npos);
  EXPECT_NE(Report.find("smem        "), std::string::npos);
  EXPECT_NE(Report.find(" bytes/block"), std::string::npos);
  EXPECT_NE(Report.find("regs/thread"), std::string::npos);

  // The occupancy line names its limiting resource.
  size_t OccPos = Report.find("occupancy   ");
  ASSERT_NE(OccPos, std::string::npos);
  EXPECT_NE(Report.find("limited by ", OccPos), std::string::npos);
}

TEST(Explain, ReportCarriesTrafficBreakdownAndRooflineVerdict) {
  gpu::DeviceSpec Device = gpu::makeV100();
  std::string Report = explainSuiteEntry(1, Device);

  // Per-tensor transaction breakdown: A + B + C = total.
  size_t TrafficPos = Report.find("traffic     ");
  ASSERT_NE(TrafficPos, std::string::npos);
  EXPECT_NE(Report.find(" (A) + ", TrafficPos), std::string::npos);
  EXPECT_NE(Report.find(" (B) + ", TrafficPos), std::string::npos);
  EXPECT_NE(Report.find(" (C) = ", TrafficPos), std::string::npos);
  EXPECT_NE(Report.find(" transactions", TrafficPos), std::string::npos);

  // Roofline verdict: GFLOPS plus one of the closed bound names.
  size_t RooflinePos = Report.find("roofline    ");
  ASSERT_NE(RooflinePos, std::string::npos);
  EXPECT_NE(Report.find(" GFLOPS (", RooflinePos), std::string::npos);
  bool NamedBound = false;
  for (const char *const *Bound = gpu::perfBoundNames(); *Bound; ++Bound)
    NamedBound |= Report.find(std::string(*Bound) + " bound)",
                              RooflinePos) != std::string::npos;
  EXPECT_TRUE(NamedBound) << Report.substr(RooflinePos);
  EXPECT_NE(Report.find(" ms\n", RooflinePos), std::string::npos);
}

TEST(Explain, ReportStructureHoldsOnP100Too) {
  gpu::DeviceSpec Device = gpu::makeP100();
  std::string Report = explainSuiteEntry(5, Device);
  EXPECT_NE(Report.find(" on P100"), std::string::npos);
  for (const char *Section : {"mapping     ", "block       ", "grid        ",
                              "occupancy   ", "traffic     ",
                              "roofline    "})
    EXPECT_NE(Report.find(Section), std::string::npos) << Section;
}

} // namespace
