//===- tests/test_full_scale.cpp - Representative-size functional runs -----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Most functional tests run at reduced extents for speed; this binary
/// executes selected suite entries at their *full representative size*
/// through the simulator and the TTGT pipeline, so the exact tile/guard
/// arithmetic is exercised at the scale the benchmarks model
/// (sd2_1: 16^6-element output, ~5.4e8 flops).
///
//===----------------------------------------------------------------------===//

#include "baselines/Ttgt.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

using namespace cogent;
using ir::Contraction;
using ir::Operand;
using tensor::Tensor;

namespace {

TEST(FullScale, Sd2_1AtRepresentativeSize) {
  const suite::SuiteEntry &Entry = suite::suiteEntry(31);
  Contraction TC = Entry.contraction(); // extent 16 everywhere

  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(TC);
  ASSERT_TRUE(Result.hasValue());
  core::KernelPlan Plan(TC, Result->best().Config);

  Rng Rand(31);
  Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
  Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
  A.fillRandom(Rand);
  B.fillRandom(Rand);

  // TTGT provides an independent full-scale oracle (itself validated
  // against the naive reference at reduced sizes elsewhere) much faster
  // than the naive loops at this volume.
  Tensor<double> FromTtgt = tensor::makeOperand<double>(TC, Operand::C);
  baselines::runTtgt(TC, FromTtgt, A, B);

  Tensor<double> FromSim = tensor::makeOperand<double>(TC, Operand::C);
  gpu::SimResult Sim = gpu::simulateKernel(Plan, FromSim, A, B);
  EXPECT_LT(tensor::maxAbsDifference(FromTtgt, FromSim), 1e-9);

  // Traffic sanity at scale: at least the compulsory output bytes, and
  // within a small multiple of the analytic estimate.
  double OutputTransactions = TC.numElements(Operand::C) * 8.0 / 128.0;
  EXPECT_GE(static_cast<double>(Sim.totalTransactions()),
            OutputTransactions);
  double Modeled = Result->best().Cost.total();
  EXPECT_LT(Modeled / static_cast<double>(Sim.totalTransactions()), 2.0);
  EXPECT_GT(Modeled / static_cast<double>(Sim.totalTransactions()), 0.5);
}

TEST(FullScale, CcsdTtmAtRepresentativeSize) {
  // ccsd_2 (abcd-ea-ebcd) at a near-representative extent, simulator vs
  // TTGT (which is a single GEMM for this entry).
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-ea-ebcd", 48);
  ASSERT_TRUE(TC.hasValue());

  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC);
  ASSERT_TRUE(Result.hasValue());
  core::KernelPlan Plan(*TC, Result->best().Config);

  Rng Rand(13);
  Tensor<double> A = tensor::makeOperand<double>(*TC, Operand::A);
  Tensor<double> B = tensor::makeOperand<double>(*TC, Operand::B);
  A.fillRandom(Rand);
  B.fillRandom(Rand);
  Tensor<double> FromTtgt = tensor::makeOperand<double>(*TC, Operand::C);
  baselines::runTtgt(*TC, FromTtgt, A, B);
  Tensor<double> FromSim = tensor::makeOperand<double>(*TC, Operand::C);
  gpu::simulateKernel(Plan, FromSim, A, B);
  EXPECT_LT(tensor::maxAbsDifference(FromTtgt, FromSim), 1e-9);
}

} // namespace
