//===- tests/test_fuzz_pipeline.cpp - Whole-pipeline robustness fuzzing ----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fuzzing of the hardened generation pipeline: thousands of
/// seeded random / mutated specs, extent maps, device specs and budgets are
/// fed through parse -> enumerate -> rank -> emit. The contract under test:
///
///   - nothing crashes or asserts, ever;
///   - malformed inputs come back as *typed* errors (never ErrorCode::
///     Unknown, never an empty message);
///   - well-formed inputs always yield at least one kernel — via the
///     fallback chain when the search or the device is hostile — whose
///     simulated numerics match the reference contraction.
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelLint.h"
#include "baselines/Ttgt.h"
#include "core/Cogent.h"
#include "core/KernelPlan.h"
#include "gpu/KernelSimulator.h"
#include "suite/TccgSuite.h"
#include "support/Random.h"
#include "tensor/Reference.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace cogent;
using core::FallbackLevel;
using ir::Contraction;
using ir::Operand;

namespace {

/// Builds a random well-formed contraction: every index in exactly two
/// tensors, operands non-empty, extents in [1, MaxExtent].
struct RandomCase {
  std::string Spec;
  std::vector<std::pair<char, int64_t>> Extents;
};

RandomCase randomWellFormed(Rng &Gen, int64_t MaxExtent) {
  int NumInternal = static_cast<int>(Gen.uniformInt(0, 2));
  int NumExtA = static_cast<int>(Gen.uniformInt(0, 2));
  int NumExtB = static_cast<int>(Gen.uniformInt(0, 2));
  // C must be non-empty; A and B must be non-empty.
  if (NumExtA + NumExtB == 0)
    NumExtA = 1;
  if (NumInternal == 0) {
    if (NumExtA == 0)
      NumExtA = 1;
    if (NumExtB == 0)
      NumExtB = 1;
  }

  char Next = 'a';
  std::vector<char> ExtA, ExtB, Internals;
  for (int I = 0; I < NumExtA; ++I)
    ExtA.push_back(Next++);
  for (int I = 0; I < NumExtB; ++I)
    ExtB.push_back(Next++);
  for (int I = 0; I < NumInternal; ++I)
    Internals.push_back(Next++);

  auto shuffled = [&](std::vector<char> V) {
    for (size_t I = V.size(); I > 1; --I)
      std::swap(V[I - 1], V[Gen.uniformInt(0, static_cast<int64_t>(I) - 1)]);
    return V;
  };
  std::vector<char> C = ExtA;
  C.insert(C.end(), ExtB.begin(), ExtB.end());
  C = shuffled(C);
  std::vector<char> A = ExtA;
  A.insert(A.end(), Internals.begin(), Internals.end());
  A = shuffled(A);
  std::vector<char> B = ExtB;
  B.insert(B.end(), Internals.begin(), Internals.end());
  B = shuffled(B);

  RandomCase Case;
  Case.Spec.assign(C.begin(), C.end());
  Case.Spec += '-';
  Case.Spec.append(A.begin(), A.end());
  Case.Spec += '-';
  Case.Spec.append(B.begin(), B.end());
  for (char Name = 'a'; Name < Next; ++Name)
    Case.Extents.emplace_back(Name, Gen.uniformInt(1, MaxExtent));
  return Case;
}

/// Applies a random corruption to a spec string. May happen to stay valid;
/// the pipeline contract covers both outcomes.
std::string mutateSpec(Rng &Gen, std::string Spec) {
  if (Spec.empty())
    return Spec;
  switch (Gen.uniformInt(0, 5)) {
  case 0: // delete a character
    Spec.erase(Gen.uniformInt(0, static_cast<int64_t>(Spec.size()) - 1), 1);
    break;
  case 1: // duplicate a character in place
    {
      size_t At = Gen.uniformInt(0, static_cast<int64_t>(Spec.size()) - 1);
      Spec.insert(At, 1, Spec[At]);
    }
    break;
  case 2: // replace with a hostile character
    {
      const char Hostile[] = {'-', 'A', '1', ' ', 'z'};
      Spec[Gen.uniformInt(0, static_cast<int64_t>(Spec.size()) - 1)] =
          Hostile[Gen.uniformInt(0, 4)];
    }
    break;
  case 3: // append garbage
    Spec += "-zz";
    break;
  case 4: // truncate
    Spec.resize(Spec.size() / 2);
    break;
  default: // swap two characters
    {
      size_t X = Gen.uniformInt(0, static_cast<int64_t>(Spec.size()) - 1);
      size_t Y = Gen.uniformInt(0, static_cast<int64_t>(Spec.size()) - 1);
      std::swap(Spec[X], Spec[Y]);
    }
    break;
  }
  return Spec;
}

/// Draws a device spec: the two real models plus hostile mutants with
/// starved shared memory / registers / thread slots.
gpu::DeviceSpec randomDevice(Rng &Gen) {
  gpu::DeviceSpec Device = Gen.flip() ? gpu::makeV100() : gpu::makeP100();
  switch (Gen.uniformInt(0, 4)) {
  case 0: // unmodified
    break;
  case 1: // no shared memory at all: even minimal tiles cannot stage
    Device.SharedMemPerBlock = 0;
    Device.SharedMemPerSM = 0;
    break;
  case 2: // a few bytes of shared memory
    Device.SharedMemPerBlock = static_cast<unsigned>(Gen.uniformInt(1, 256));
    Device.SharedMemPerSM = Device.SharedMemPerBlock;
    break;
  case 3: // starved registers
    Device.MaxRegistersPerThread =
        static_cast<unsigned>(Gen.uniformInt(1, 40));
    break;
  default: // tiny thread slots
    Device.MaxThreadsPerBlock = static_cast<unsigned>(Gen.uniformInt(1, 64));
    break;
  }
  return Device;
}

/// Validates the numerics of a generation result against the reference
/// contraction. For TTGT fallbacks the functional TTGT execution is the
/// artifact under test (the generated kernel targets the matricized GEMM).
void checkNumerics(const Contraction &TC, const core::GenerationResult &R,
                   Rng &Gen) {
  tensor::Tensor<double> A = tensor::makeOperand<double>(TC, Operand::A);
  tensor::Tensor<double> B = tensor::makeOperand<double>(TC, Operand::B);
  A.fillRandom(Gen);
  B.fillRandom(Gen);
  tensor::Tensor<double> Expected = tensor::makeOperand<double>(TC, Operand::C);
  tensor::contractReference(TC, Expected, A, B);
  tensor::Tensor<double> Actual = tensor::makeOperand<double>(TC, Operand::C);

  if (R.Fallback == FallbackLevel::TtgtBaseline) {
    ASSERT_TRUE(R.FallbackContraction.has_value());
    baselines::runTtgt(TC, Actual, A, B);
  } else {
    core::KernelPlan Plan(TC, R.best().Config);
    gpu::simulateKernel(Plan, Actual, A, B);
  }
  EXPECT_LT(tensor::maxAbsDifference(Expected, Actual), 1e-9)
      << TC.toStringWithExtents() << " fallback "
      << core::fallbackLevelName(R.Fallback);
}

/// How one pipeline iteration ended.
enum class PipelineOutcome {
  /// Parse + generate succeeded and the invariants held.
  Generated,
  /// The spec/extents were rejected at parse with a typed error.
  InputRejected,
  /// The (deliberately hostile) device was rejected with a typed error —
  /// InvalidDeviceSpec up front or VerificationFailed when even TTGT
  /// cannot fit.
  DeviceRejected,
};

/// One pipeline iteration; every rejection path asserts the error is typed.
PipelineOutcome runPipeline(
    const std::string &Spec,
    const std::vector<std::pair<char, int64_t>> &Extents, Rng &Gen,
    bool CheckNumerics) {
  ErrorOr<Contraction> TC = Contraction::parse(Spec, Extents);
  if (!TC) {
    EXPECT_NE(TC.errorCode(), ErrorCode::Unknown)
        << "untyped parse error for \"" << Spec << "\"";
    EXPECT_FALSE(TC.error().message().empty());
    return PipelineOutcome::InputRejected;
  }

  gpu::DeviceSpec Device = randomDevice(Gen);
  core::Cogent Generator(Device);
  core::CogentOptions Options;
  Options.TopK = static_cast<size_t>(Gen.uniformInt(1, 3));
  if (Gen.flip(0.3))
    Options.Budget.MaxConfigs = static_cast<uint64_t>(Gen.uniformInt(1, 200));
  if (Gen.flip(0.1))
    Options.Budget.DeadlineMs = 0.001; // expires essentially immediately
  if (Gen.flip(0.3))
    Options.Budget.MaxSourceBytes =
        static_cast<uint64_t>(Gen.uniformInt(1, 1 << 16));
  if (Gen.flip()) {
    Options.Enumeration.MinThreadBlocks = 1;
    Options.Enumeration.MinOccupancy = 0.0;
  }

  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  if (!Result) {
    // Hostile devices are no longer silently absorbed: a nonsense spec
    // (zero shared memory) is rejected up front as InvalidDeviceSpec, and
    // a valid-but-starved device that cannot host even the TTGT kernel is
    // an unrescued VerificationFailed. Anything else is a regression.
    EXPECT_TRUE(Result.errorCode() == ErrorCode::InvalidDeviceSpec ||
                Result.errorCode() == ErrorCode::VerificationFailed)
        << "well-formed contraction rejected with unexpected code "
        << errorCodeName(Result.errorCode()) << ": "
        << TC->toStringWithExtents() << " on " << Device.Name;
    EXPECT_FALSE(Result.error().message().empty());
    return PipelineOutcome::DeviceRejected;
  }
  EXPECT_FALSE(Result->empty()) << TC->toStringWithExtents();
  EXPECT_LE(Result->Stats.Examined, Result->Stats.RawConfigs);
  if (Result->Stats.truncated()) {
    EXPECT_TRUE(Options.Budget.MaxConfigs != 0 ||
                Options.Budget.DeadlineMs > 0.0);
  }
  for (const core::GeneratedKernel &Kernel : Result->Kernels)
    EXPECT_FALSE(Kernel.Source.KernelSource.empty());
  if (Result->Fallback == FallbackLevel::TtgtBaseline) {
    EXPECT_TRUE(Result->FallbackContraction.has_value());
  }

  // Strict KernelLint over the winning kernel: every source the fuzzed
  // pipeline accepts must lint clean, whatever fallback rung produced it,
  // and with no chaos injector active the strict gate inside generate()
  // must never have fired.
  if (!Result->empty()) {
    const Contraction &PlanTC =
        Result->Fallback == FallbackLevel::TtgtBaseline
            ? *Result->FallbackContraction
            : *TC;
    core::KernelPlan Plan(PlanTC, Result->best().Config);
    analysis::LintReport Report =
        analysis::lintKernel(Plan, Result->best().Source.KernelSource);
    EXPECT_TRUE(Report.clean()) << TC->toStringWithExtents() << " fallback "
                                << core::fallbackLevelName(Result->Fallback)
                                << ": "
                                << (Report.Findings.empty()
                                        ? std::string()
                                        : Report.Findings.front().render());
    EXPECT_EQ(Result->LintRejections, 0u) << TC->toStringWithExtents();
  }

  if (CheckNumerics && !Result->empty())
    checkNumerics(*TC, *Result, Gen);
  return PipelineOutcome::Generated;
}

TEST(FuzzPipeline, ThousandsOfSeededIterationsNeverCrash) {
  Rng Gen(0xC06E27);
  int WellFormed = 0, Rejected = 0, DeviceRejected = 0;
  for (int Iter = 0; Iter < 2200; ++Iter) {
    RandomCase Case = randomWellFormed(Gen, /*MaxExtent=*/5);

    // One third run unmodified, one third with a mutated spec, one third
    // with mutated extents (zero, negative, huge, unknown index, missing).
    int Mode = Iter % 3;
    if (Mode == 1) {
      Case.Spec = mutateSpec(Gen, Case.Spec);
    } else if (Mode == 2 && !Case.Extents.empty()) {
      size_t At = Gen.uniformInt(0, static_cast<int64_t>(Case.Extents.size()) - 1);
      switch (Gen.uniformInt(0, 4)) {
      case 0:
        Case.Extents[At].second = 0;
        break;
      case 1:
        Case.Extents[At].second = -7;
        break;
      case 2: // per-operand products overflow int64
        for (auto &[Name, Extent] : Case.Extents)
          Extent = int64_t(1) << 62;
        break;
      case 3: // extent for an index the spec does not use
        Case.Extents.emplace_back('z', 4);
        break;
      default: // drop one extent entirely
        Case.Extents.erase(Case.Extents.begin() + At);
        break;
      }
    }

    // Numerics on a deterministic subset of small well-formed problems to
    // keep the whole harness inside a few seconds.
    bool CheckNumerics = (Iter % 5 == 0);
    switch (runPipeline(Case.Spec, Case.Extents, Gen, CheckNumerics)) {
    case PipelineOutcome::Generated:
      ++WellFormed;
      break;
    case PipelineOutcome::InputRejected:
      ++Rejected;
      break;
    case PipelineOutcome::DeviceRejected:
      ++DeviceRejected;
      break;
    }
  }
  // The split is seed-deterministic; pin rough shape so a regression that
  // silently rejects everything (or accepts garbage) is caught. The device
  // draw is hostile by design (zero/starved shared memory, starved
  // registers), so a healthy fraction of well-formed inputs must come back
  // as *typed* device rejections rather than bogus kernels.
  EXPECT_GT(WellFormed, 400);
  EXPECT_GT(Rejected, 300);
  EXPECT_GT(DeviceRejected, 200);
}

TEST(FuzzPipeline, RandomGarbageStringsNeverCrash) {
  Rng Gen(0xF00D);
  const char Alphabet[] = "abcdxyz--Z9 .\t=";
  for (int Iter = 0; Iter < 800; ++Iter) {
    std::string Input;
    int Length = static_cast<int>(Gen.uniformInt(0, 24));
    for (int I = 0; I < Length; ++I)
      Input += Alphabet[Gen.uniformInt(0, static_cast<int64_t>(sizeof(Alphabet)) - 2)];
    runPipeline(Input, {{'a', 3}, {'b', 3}, {'c', 3}, {'d', 3},
                        {'x', 3}, {'y', 3}, {'z', 3}},
                Gen, /*CheckNumerics=*/false);
  }
}

TEST(FuzzPipeline, SuiteSurvivesHostileDevices) {
  // A device with no shared memory at all is a *nonsense spec*, not a
  // hostile-but-real one: DeviceSpec::validate rejects it at the entry
  // point with a typed error instead of the old silent TTGT absorption.
  gpu::DeviceSpec NoSmem = gpu::makeV100();
  NoSmem.SharedMemPerBlock = 0;
  NoSmem.SharedMemPerSM = 0;
  EXPECT_EQ(NoSmem.validate().errorCode(), ErrorCode::InvalidDeviceSpec);
  {
    core::Cogent Generator(NoSmem);
    for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
      ErrorOr<Contraction> TC = Entry.tryContractionScaled(16);
      ASSERT_TRUE(TC.hasValue()) << Entry.Name;
      ErrorOr<core::GenerationResult> Result = Generator.generate(*TC);
      ASSERT_FALSE(Result.hasValue()) << Entry.Name;
      EXPECT_EQ(Result.errorCode(), ErrorCode::InvalidDeviceSpec)
          << Entry.Name;
    }
  }

  // A valid but starved device (100 bytes of staging memory) engages the
  // fallback chain; every TCCG entry still yields a verified kernel.
  gpu::DeviceSpec TinySmem = gpu::makeP100();
  TinySmem.SharedMemPerBlock = 100;
  TinySmem.SharedMemPerSM = 100;
  ASSERT_TRUE(TinySmem.validate().hasValue());
  {
    core::Cogent Generator(TinySmem);
    for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
      ErrorOr<Contraction> TC = Entry.tryContractionScaled(16);
      ASSERT_TRUE(TC.hasValue()) << Entry.Name;
      ErrorOr<core::GenerationResult> Result = Generator.generate(*TC);
      ASSERT_TRUE(Result.hasValue()) << Entry.Name << " on " << TinySmem.Name;
      EXPECT_FALSE(Result->empty()) << Entry.Name;
      EXPECT_NE(Result->Fallback, FallbackLevel::None)
          << Entry.Name << ": hostile device must engage the fallback chain";
    }
  }
}

TEST(FuzzPipeline, SuiteGeneratesOnRealDevices) {
  // The fallback chain must stay dormant where the normal path works.
  core::Cogent Generator(gpu::makeV100());
  for (const suite::SuiteEntry &Entry : suite::tccgSuite()) {
    ErrorOr<core::GenerationResult> Result =
        Generator.generate(Entry.contractionScaled(32));
    ASSERT_TRUE(Result.hasValue()) << Entry.Name;
    EXPECT_FALSE(Result->empty()) << Entry.Name;
    EXPECT_EQ(Result->Fallback, FallbackLevel::None) << Entry.Name;
  }
}

TEST(FuzzPipeline, MinimalTileFallbackOnDegenerateShapes) {
  // All-extent-1: pruning leaves nothing even after relaxation on a normal
  // device; the minimal-tile rung must absorb it.
  ErrorOr<Contraction> TC = Contraction::parseUniform("i-ik-k", 1);
  ASSERT_TRUE(TC.hasValue());
  core::CogentOptions Options;
  Options.Enumeration.RelaxWhenEmpty = false;
  Options.Enumeration.MinThreadBlocks = 1 << 30; // unreachable floor
  core::Cogent Generator(gpu::makeV100());
  ErrorOr<core::GenerationResult> Result = Generator.generate(*TC, Options);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(Result->Fallback, FallbackLevel::MinimalTile);
  Rng Gen(7);
  checkNumerics(*TC, *Result, Gen);
}

TEST(FuzzPipeline, BudgetsTruncateWithoutFailing) {
  Contraction TC = *Contraction::parseUniform("abcd-aebf-dfce", 24);
  core::Cogent Generator(gpu::makeV100());

  core::CogentOptions CapConfigs;
  CapConfigs.Budget.MaxConfigs = 3;
  ErrorOr<core::GenerationResult> R1 = Generator.generate(TC, CapConfigs);
  ASSERT_TRUE(R1.hasValue());
  EXPECT_FALSE(R1->empty());
  EXPECT_EQ(R1->Stats.Status, core::SearchStatus::ConfigCapHit);
  EXPECT_LE(R1->Stats.Examined, 3u);

  core::CogentOptions CapTime;
  CapTime.Budget.DeadlineMs = 1e-6;
  ErrorOr<core::GenerationResult> R2 = Generator.generate(TC, CapTime);
  ASSERT_TRUE(R2.hasValue());
  EXPECT_FALSE(R2->empty());
  EXPECT_EQ(R2->Stats.Status, core::SearchStatus::DeadlineHit);

  core::CogentOptions CapBytes;
  CapBytes.TopK = 4;
  CapBytes.Budget.MaxSourceBytes = 1;
  ErrorOr<core::GenerationResult> R3 = Generator.generate(TC, CapBytes);
  ASSERT_TRUE(R3.hasValue());
  EXPECT_EQ(R3->Kernels.size(), 1u);
  EXPECT_TRUE(R3->SourceTruncated);

  // No budget: exhaustive search, untruncated.
  ErrorOr<core::GenerationResult> R4 = Generator.generate(TC);
  ASSERT_TRUE(R4.hasValue());
  EXPECT_EQ(R4->Stats.Status, core::SearchStatus::Complete);
  EXPECT_EQ(R4->Stats.Examined, R4->Stats.RawConfigs);
}

TEST(FuzzPipeline, MalformedInputsYieldTypedErrors) {
  using Case = std::pair<std::string, std::vector<std::pair<char, int64_t>>>;
  const std::vector<std::pair<Case, ErrorCode>> Cases = {
      {{"", {}}, ErrorCode::InvalidSpec},                      // empty spec
      {{"aab-ab-b", {{'a', 4}, {'b', 4}}}, ErrorCode::InvalidSpec}, // dup idx
      {{"ab-ac-cb", {{'a', 4}, {'b', 4}, {'c', 4}, {'z', 4}}},
       ErrorCode::InvalidSpec}, // unknown index in extents
      {{"ab-ac-cb", {{'a', 4}, {'b', 0}, {'c', 4}}},
       ErrorCode::InvalidSpec}, // extent 0
      {{"ab-ac-cb", {{'a', int64_t(1) << 32},
                     {'b', int64_t(1) << 32},
                     {'c', 4}}},
       ErrorCode::ExtentOverflow}, // product wraps int64
  };
  for (const auto &[Input, ExpectedCode] : Cases) {
    ErrorOr<Contraction> TC = Contraction::parse(Input.first, Input.second);
    ASSERT_FALSE(TC.hasValue()) << "\"" << Input.first << "\"";
    EXPECT_EQ(TC.errorCode(), ExpectedCode) << "\"" << Input.first << "\"";
    EXPECT_FALSE(TC.error().message().empty());
  }

  // Extent 1 everywhere is well-formed, not an error.
  EXPECT_TRUE(Contraction::parseUniform("ab-ac-cb", 1).hasValue());
}

TEST(FuzzPipeline, TwentySixIndexBoundary) {
  // All 26 index names in one contraction: 13 externals in C and A, 13
  // internals shared by A and B. The full a-z namespace must work.
  std::string C = "abcdefghijklm";
  std::string Internals = "nopqrstuvwxyz";
  std::string Spec = C + "-" + (C + Internals) + "-" + Internals;
  ErrorOr<Contraction> TC = Contraction::parseUniform(Spec, 2);
  ASSERT_TRUE(TC.hasValue());
  EXPECT_EQ(TC->allIndices().size(), 26u);
  core::CogentOptions Options;
  Options.Enumeration.MinThreadBlocks = 1;
  Options.Enumeration.MinOccupancy = 0.0;
  ErrorOr<core::GenerationResult> Result =
      core::Cogent(gpu::makeV100()).generate(*TC, Options);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_FALSE(Result->empty());
}

TEST(FuzzPipeline, CorruptedSuiteListingReportsOffendingLine) {
  // A bad spec on line 3 (index 'q' in only one tensor).
  ErrorOr<std::vector<suite::SuiteEntry>> Bad = suite::parseSuiteListing(
      "# comment\n"
      "1 ml_1 ML abc-acd-db a=8 b=8 c=8 d=8\n"
      "2 bad CCSD abq-ac-cb a=8 b=8 c=8 q=8\n");
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_EQ(Bad.errorCode(), ErrorCode::InvalidSpec);
  EXPECT_NE(Bad.errorMessage().find("line 3"), std::string::npos)
      << Bad.errorMessage();

  // Structural corruption: too few fields, bad id, unknown family, bad
  // extent syntax — each names its line.
  const std::vector<std::pair<std::string, std::string>> Corruptions = {
      {"1 ml_1 ML\n", "line 1"},
      {"zero ml_1 ML abc-acd-db a=8 b=8 c=8 d=8\n", "line 1"},
      {"\n\n7 x NOPE abc-acd-db a=8 b=8 c=8 d=8\n", "line 3"},
      {"3 ml_1 ML abc-acd-db a=8 b=eight c=8 d=8\n", "line 1"},
      {"4 ml_1 ML abc-acd-db a=8 b=8 c=8 d=0\n", "line 1"},
  };
  for (const auto &[Text, Where] : Corruptions) {
    ErrorOr<std::vector<suite::SuiteEntry>> Parsed =
        suite::parseSuiteListing(Text);
    ASSERT_FALSE(Parsed.hasValue()) << Text;
    EXPECT_NE(Parsed.errorMessage().find(Where), std::string::npos)
        << Parsed.errorMessage();
  }

  // And the pristine listing round-trips.
  ErrorOr<std::vector<suite::SuiteEntry>> Good = suite::parseSuiteListing(
      "1 ml_1 ML abc-acd-db a=8 b=8 c=8 d=8\n");
  ASSERT_TRUE(Good.hasValue());
  ASSERT_EQ(Good->size(), 1u);
  EXPECT_EQ((*Good)[0].Name, "ml_1");
  EXPECT_TRUE((*Good)[0].tryContraction().hasValue());
}

} // namespace
