//===- tests/test_generated_execution.cpp - Run the emitted CUDA source ----===//
//
// Part of the COGENT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strongest validation of the code generator available without a GPU:
/// take the emitted CUDA kernel *text*, compile it with the host compiler
/// against a small CUDA-execution-model shim (threadIdx/blockIdx globals,
/// std::thread per CUDA thread, std::barrier for __syncthreads()), execute
/// it, and compare the output against a reference contraction — all driven
/// end to end through files and a child process, exactly as a user would
/// consume the generated source. Shared machinery lives in ShimHarness.
///
//===----------------------------------------------------------------------===//

#include "ShimHarness.h"

#include "core/Enumerator.h"
#include "suite/TccgSuite.h"

#include <gtest/gtest.h>

using namespace cogent;
using core::KernelConfig;
using ir::Contraction;
using ir::Operand;
using testsupport::compileAndRunKernel;

namespace {

TEST(GeneratedExecution, Eq1KernelComputesTheContraction) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-aebf-dfce", 4);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 2}, {'f', 2}};
  EXPECT_EQ(compileAndRunKernel(*TC, Config, "eq1"), 0);
}

TEST(GeneratedExecution, RaggedExtentsExerciseGuards) {
  ErrorOr<Contraction> TC = Contraction::parse(
      "abcd-aebf-dfce",
      {{'a', 5}, {'b', 3}, {'c', 7}, {'d', 2}, {'e', 3}, {'f', 2}});
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 2}};
  EXPECT_EQ(compileAndRunKernel(*TC, Config, "ragged"), 0);
}

TEST(GeneratedExecution, OutputFviInBKernel) {
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-ebcd-ea", 4);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::B;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'b', 4}};
  Config.RegY = {{'c', 2}};
  Config.TBk = {{'e', 4}};
  EXPECT_EQ(compileAndRunKernel(*TC, Config, "fvib"), 0);
}

TEST(GeneratedExecution, GridStrideWithFewerBlocksThanTiles) {
  // 4 output tiles but fewer launched blocks: blocks must stride.
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-aebf-dfce", 4);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 2}};
  EXPECT_EQ(compileAndRunKernel(*TC, Config, "stride",
                                core::CodeGenOptions(), /*LaunchGroups=*/3),
            0);
  EXPECT_EQ(compileAndRunKernel(*TC, Config, "stride1",
                                core::CodeGenOptions(), /*LaunchGroups=*/1),
            0);
}

TEST(GeneratedExecution, Ccsd6DKernel) {
  ErrorOr<Contraction> TC =
      Contraction::parseUniform("abcdef-gdab-efgc", 3);
  ASSERT_TRUE(TC.hasValue());
  core::EnumerationOptions Options;
  Options.MinThreadBlocks = 1;
  Options.MinOccupancy = 0.0;
  core::Enumerator Enum(*TC, gpu::makeV100(), Options);
  std::vector<KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty());
  EXPECT_EQ(compileAndRunKernel(*TC, Configs.front(), "sd2"), 0);
}

TEST(GeneratedExecution, InternalFviInputsStagedOnTbk) {
  // Both input FVIs are internal (e leads A, f leads B): the staged TBk
  // dimension carries the coalescing for both loads.
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-eafd-fbec", 4);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'b', 4}};
  Config.RegX = {{'d', 2}};
  Config.RegY = {{'c', 2}};
  Config.TBk = {{'e', 2}, {'f', 2}};
  EXPECT_EQ(compileAndRunKernel(*TC, Config, "intfvi"), 0);
}

TEST(GeneratedExecution, SerialInternalWithTileOne) {
  // Only one of two internals staged; the other iterates serially across
  // steps with tile 1.
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-aebf-dfce", 4);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 4}}; // f unmapped -> serial
  EXPECT_EQ(compileAndRunKernel(*TC, Config, "serialf"), 0);
}

TEST(GeneratedExecution, SingleThreadDimension) {
  // The Y input has no externals: TBy/RegY empty, blockDim.y == 1.
  ErrorOr<Contraction> TC = Contraction::parseUniform("ab-akb-k", 4);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.RegX = {{'b', 2}};
  Config.TBk = {{'k', 4}};
  EXPECT_EQ(compileAndRunKernel(*TC, Config, "noy"), 0);
}

/// The definitive sweep: the generated CUDA for every TCCG entry's top
/// enumerated configuration compiles and computes the contraction.
class SuiteExecution : public ::testing::TestWithParam<int> {};

TEST_P(SuiteExecution, GeneratedCudaComputesEntry) {
  const suite::SuiteEntry &Entry = suite::suiteEntry(GetParam());
  Contraction TC = Entry.contractionScaled(3);
  core::EnumerationOptions Options;
  Options.MinThreadBlocks = 1;
  Options.MinOccupancy = 0.0;
  core::Enumerator Enum(TC, gpu::makeV100(), Options);
  std::vector<KernelConfig> Configs = Enum.enumerate();
  ASSERT_FALSE(Configs.empty()) << Entry.Spec;
  EXPECT_EQ(compileAndRunKernel(TC, Configs.front(),
                                "suite" + std::to_string(Entry.Id)),
            0)
      << Entry.Spec;
}

INSTANTIATE_TEST_SUITE_P(Tccg, SuiteExecution, ::testing::Range(1, 49));

TEST(GeneratedExecution, OpenClGridStride) {
  // The OpenCL dialect through the shared harness, with striding.
  ErrorOr<Contraction> TC = Contraction::parseUniform("abcd-aebf-dfce", 4);
  ASSERT_TRUE(TC.hasValue());
  KernelConfig Config;
  Config.XInput = Operand::A;
  Config.TBx = {{'a', 4}};
  Config.TBy = {{'c', 4}};
  Config.RegX = {{'b', 2}};
  Config.RegY = {{'d', 2}};
  Config.TBk = {{'e', 2}, {'f', 2}};
  EXPECT_EQ(compileAndRunKernel(*TC, Config, "clstride",
                                core::CodeGenOptions(), /*LaunchGroups=*/2,
                                /*OpenCl=*/true),
            0);
}

} // namespace
